package xydiff_test

import (
	"strings"
	"testing"

	"xydiff"
)

func TestFacadeQuickstart(t *testing.T) {
	oldDoc, err := xydiff.ParseString(`<cat><p>old</p><q>same</q></cat>`)
	if err != nil {
		t.Fatal(err)
	}
	newDoc, err := xydiff.ParseString(`<cat><q>same</q><p>new</p></cat>`)
	if err != nil {
		t.Fatal(err)
	}
	d, err := xydiff.Diff(oldDoc, newDoc)
	if err != nil {
		t.Fatal(err)
	}
	if d.Empty() {
		t.Fatal("expected changes")
	}
	v2, err := xydiff.ApplyClone(oldDoc, d)
	if err != nil {
		t.Fatal(err)
	}
	if !xydiff.Equal(v2, newDoc) {
		t.Fatal("apply did not produce the new version")
	}
	inv, err := d.Invert()
	if err != nil {
		t.Fatal(err)
	}
	v1, err := xydiff.ApplyClone(v2, inv)
	if err != nil {
		t.Fatal(err)
	}
	if !xydiff.Equal(v1, oldDoc) {
		t.Fatal("inverse did not restore the old version")
	}
}

func TestFacadeDeltaXML(t *testing.T) {
	oldDoc, _ := xydiff.ParseString(`<a><b>1</b></a>`)
	newDoc, _ := xydiff.ParseString(`<a><b>2</b></a>`)
	d, err := xydiff.Diff(oldDoc, newDoc)
	if err != nil {
		t.Fatal(err)
	}
	text, err := d.MarshalText()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(text), "<delta") || !strings.Contains(string(text), "<update") {
		t.Fatalf("delta XML = %s", text)
	}
	d2, err := xydiff.ParseDeltaString(string(text))
	if err != nil {
		t.Fatal(err)
	}
	got, err := xydiff.ApplyClone(oldDoc, d2)
	if err != nil {
		t.Fatal(err)
	}
	if !xydiff.Equal(got, newDoc) {
		t.Fatal("round-tripped delta broken")
	}
}

func TestFacadeOptionsAndDetailed(t *testing.T) {
	oldDoc, _ := xydiff.ParseString(`<r><x>1</x></r>`)
	newDoc, _ := xydiff.ParseString(`<r><x>2</x></r>`)
	r, err := xydiff.DiffDetailed(oldDoc, newDoc, xydiff.Options{EagerDown: true})
	if err != nil {
		t.Fatal(err)
	}
	if r.Delta.Count().Updates != 1 {
		t.Fatalf("counts = %v", r.Delta.Count())
	}
	if r.OldNodes == 0 || r.Timings.Total() <= 0 {
		t.Error("detailed stats missing")
	}
}

func TestFacadeApplyInPlace(t *testing.T) {
	oldDoc, _ := xydiff.ParseString(`<r><x>1</x></r>`)
	newDoc, _ := xydiff.ParseString(`<r><x>2</x></r>`)
	d, err := xydiff.Diff(oldDoc, newDoc)
	if err != nil {
		t.Fatal(err)
	}
	if err := xydiff.Apply(oldDoc, d); err != nil {
		t.Fatal(err)
	}
	if !xydiff.Equal(oldDoc, newDoc) {
		t.Fatal("in-place apply failed")
	}
}

func TestFacadeWarehouse(t *testing.T) {
	w := xydiff.NewWarehouse()
	w.Subscribe(xydiff.Subscription{
		ID:    "watch",
		Query: xydiff.MustCompileQuery(`//item`),
	})
	v1, _ := xydiff.ParseString(`<list><item>a</item></list>`)
	v2, _ := xydiff.ParseString(`<list><item>a</item><item>b</item></list>`)
	if _, err := w.Load("l", v1); err != nil {
		t.Fatal(err)
	}
	res, err := w.Load("l", v2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Alerts) == 0 {
		t.Error("no alerts fired")
	}
	if docs := w.Search("b"); len(docs) != 1 {
		t.Errorf("search = %v", docs)
	}
	old, err := w.Version("l", 1)
	if err != nil {
		t.Fatal(err)
	}
	if !xydiff.Equal(old, func() *xydiff.Node { d, _ := xydiff.ParseString(`<list><item>a</item></list>`); return d }()) {
		t.Error("version 1 wrong")
	}
}

func TestFacadeQuery(t *testing.T) {
	doc, _ := xydiff.ParseString(`<r><p><v>10</v></p><p><v>20</v></p></r>`)
	q, err := xydiff.CompileQuery(`//p[v>15]/v`)
	if err != nil {
		t.Fatal(err)
	}
	if got := q.Value(doc); got != "20" {
		t.Errorf("query value = %q", got)
	}
	if _, err := xydiff.CompileQuery(`[broken`); err == nil {
		t.Error("bad query accepted")
	}
}
