// Catalog monitoring: the paper's subscription scenario (Section 2).
// A product catalog evolves through versions in a version store; an
// alerter watches the deltas for interesting changes — new products,
// price updates, disappearing items — exactly what the Xyleme
// subscription system did.
//
//	go run ./examples/catalog
package main

import (
	"fmt"
	"log"

	"xydiff"
	"xydiff/internal/alert"
	"xydiff/internal/delta"
	"xydiff/internal/diff"
	"xydiff/internal/store"
)

var versions = []string{
	`<Catalog>
	  <Category><Title>Cameras</Title>
	    <Product><Name>tx123</Name><Price>$499</Price></Product>
	    <Product><Name>zy456</Name><Price>$799</Price></Product>
	  </Category>
	</Catalog>`,
	// v2: a new product appears, one price drops.
	`<Catalog>
	  <Category><Title>Cameras</Title>
	    <Product><Name>tx123</Name><Price>$499</Price></Product>
	    <Product><Name>zy456</Name><Price>$699</Price></Product>
	    <Product><Name>mk900</Name><Price>$1299</Price></Product>
	  </Category>
	</Catalog>`,
	// v3: tx123 is discontinued, mk900 gets cheaper.
	`<Catalog>
	  <Category><Title>Cameras</Title>
	    <Product><Name>zy456</Name><Price>$699</Price></Product>
	    <Product><Name>mk900</Name><Price>$999</Price></Product>
	  </Category>
	</Catalog>`,
}

func main() {
	repo := store.New(diff.Options{})
	alerter := alert.New(
		alert.Subscription{
			ID:    "new-products",
			Path:  "Category/Product",
			Kinds: []delta.Kind{delta.KindInsert},
		},
		alert.Subscription{
			ID:    "price-changes",
			Path:  "Product/Price",
			Kinds: []delta.Kind{delta.KindUpdate},
		},
		alert.Subscription{
			ID:    "discontinued",
			Path:  "Category/Product",
			Kinds: []delta.Kind{delta.KindDelete},
		},
	)

	const docID = "shop/catalog.xml"
	var prev *xydiff.Node
	for i, src := range versions {
		doc, err := xydiff.ParseString(src)
		if err != nil {
			log.Fatal(err)
		}
		// Keep the exact stored version (XIDs included) for alerting.
		version, d, err := repo.Put(docID, doc)
		if err != nil {
			log.Fatal(err)
		}
		cur, _, err := repo.Latest(docID)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("== installed version %d ==\n", version)
		if d == nil {
			fmt.Println("  (first version: nothing to compare)")
			prev = cur
			continue
		}
		fmt.Printf("  delta: %s\n", d.Count())
		for _, a := range alerter.Notify(docID, version, prev, cur, d) {
			fmt.Printf("  ALERT %s\n", a)
		}
		prev = cur
		_ = i
	}

	// The past stays queryable: what did the catalog look like at v1?
	v1, err := repo.Version(docID, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nversion 1 reconstructed from the latest version and the inverted deltas:\n%s\n", v1)
}
