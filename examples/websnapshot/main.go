// Websnapshot reproduces the paper's Section 6.2 headline experiment:
// diffing two XML snapshots of an entire web site (www.inria.fr was
// about fourteen thousand pages, five megabytes of XML) and reporting
// how the time splits between the diff core and XML handling, plus how
// the delta compares to a Unix diff of the same files.
//
//	go run ./examples/websnapshot            # 2000 pages, a few seconds
//	go run ./examples/websnapshot -pages 14000
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"xydiff/internal/changesim"
	"xydiff/internal/diff"
	"xydiff/internal/textdiff"
)

func main() {
	pages := flag.Int("pages", 2_000, "number of pages in the site snapshot")
	flag.Parse()

	fmt.Printf("generating two snapshots of a %d-page site...\n", *pages)
	oldDoc, newDoc, err := changesim.SiteSnapshotPair(2002, *pages)
	if err != nil {
		log.Fatal(err)
	}

	oldText := oldDoc.String()
	newText := newDoc.String()
	fmt.Printf("snapshot size: %.1f MB\n", float64(len(oldText))/1e6)

	start := time.Now()
	r, err := diff.DiffDetailed(oldDoc, newDoc, diff.Options{})
	if err != nil {
		log.Fatal(err)
	}
	wall := time.Since(start)

	core := r.Timings.Phase3 + r.Timings.Phase4
	fmt.Printf("\ndiff completed in %v\n", wall)
	fmt.Printf("  core matching (phases 3+4): %v\n", core)
	fmt.Printf("  XML handling (annotate + delta construction): %v\n", wall-core)
	fmt.Printf("  nodes: %d old, %d new, %d matched\n", r.OldNodes, r.NewNodes, r.MatchedNodes)
	fmt.Printf("  delta: %d bytes, %s\n", r.Delta.Size(), r.Delta.Count())

	fmt.Println("\ncomparing with Unix diff on the serialized snapshots...")
	start = time.Now()
	unixSize := textdiff.Size(lines(oldText), lines(newText))
	fmt.Printf("  unix diff: %d bytes in %v\n", unixSize, time.Since(start))
	if unixSize > 0 {
		fmt.Printf("  delta / unix-diff size ratio: %.2f\n", float64(r.Delta.Size())/float64(unixSize))
	}
}

// lines breaks the canonical single-line XML after every tag so the
// line diff has realistic line structure to work with.
func lines(xml string) string {
	out := make([]byte, 0, len(xml)+len(xml)/8)
	for i := 0; i < len(xml); i++ {
		out = append(out, xml[i])
		if xml[i] == '>' {
			out = append(out, '\n')
		}
	}
	return string(out)
}
