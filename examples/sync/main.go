// Sync: offline synchronization of divergent document copies (the
// paper's Section 2: "different users may modify the same XML document
// off-line, and later want to synchronize their respective versions
// ... detect conflicts and solve some of them").
//
// Two editors start from the same catalog, work offline, and their
// changes are reconciled through the diffs: non-conflicting operations
// merge, genuine collisions are reported.
//
//	go run ./examples/sync
package main

import (
	"fmt"
	"log"

	"xydiff"
	"xydiff/internal/diff"
	"xydiff/internal/merge"
)

const baseXML = `<Catalog>
  <Product><Name>tx123</Name><Price>$499</Price><Stock>4</Stock></Product>
  <Product><Name>zy456</Name><Price>$799</Price><Stock>9</Stock></Product>
</Catalog>`

// Alice reprices tx123 and adds a product.
const aliceXML = `<Catalog>
  <Product><Name>tx123</Name><Price>$459</Price><Stock>4</Stock></Product>
  <Product><Name>zy456</Name><Price>$799</Price><Stock>9</Stock></Product>
  <Product><Name>new-from-alice</Name><Price>$100</Price><Stock>1</Stock></Product>
</Catalog>`

// Bob also reprices tx123 (differently!) and updates zy456's stock.
const bobXML = `<Catalog>
  <Product><Name>tx123</Name><Price>$449</Price><Stock>4</Stock></Product>
  <Product><Name>zy456</Name><Price>$799</Price><Stock>7</Stock></Product>
</Catalog>`

func main() {
	base, err := xydiff.ParseString(baseXML)
	if err != nil {
		log.Fatal(err)
	}
	alice, err := xydiff.ParseString(aliceXML)
	if err != nil {
		log.Fatal(err)
	}
	bob, err := xydiff.ParseString(bobXML)
	if err != nil {
		log.Fatal(err)
	}

	// Each editor's offline work, described as a delta against the
	// shared base.
	dAlice, err := diff.Diff(base, alice, diff.Options{})
	if err != nil {
		log.Fatal(err)
	}
	dBob, err := diff.Diff(base, bob, diff.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("alice's changes: %s\n", dAlice.Count())
	fmt.Printf("bob's changes:   %s\n", dBob.Count())

	// Reconcile, with Alice's copy as the winning side.
	res, err := merge.ThreeWay(base, dAlice, dBob)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nmerged: %d of bob's ops applied, %d converged, %d conflicts\n",
		res.Applied, res.Converged, len(res.Conflicts))
	for _, c := range res.Conflicts {
		fmt.Printf("  CONFLICT %s\n", c)
	}
	fmt.Printf("\nsynchronized document:\n%s\n", res.Doc)
}
