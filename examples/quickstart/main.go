// Quickstart: diff two versions of the paper's running example, print
// the delta, apply it, and invert it.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"xydiff"
)

const oldVersion = `<Category>
  <Title>Digital Cameras</Title>
  <Discount>
    <Product><Name>tx123</Name><Price>$499</Price></Product>
  </Discount>
  <NewProducts>
    <Product><Name>zy456</Name><Price>$799</Price></Product>
  </NewProducts>
</Category>`

const newVersion = `<Category>
  <Title>Digital Cameras</Title>
  <Discount>
    <Product><Name>zy456</Name><Price>$699</Price></Product>
  </Discount>
  <NewProducts>
    <Product><Name>abc</Name><Price>$899</Price></Product>
  </NewProducts>
</Category>`

func main() {
	oldDoc, err := xydiff.ParseString(oldVersion)
	if err != nil {
		log.Fatal(err)
	}
	newDoc, err := xydiff.ParseString(newVersion)
	if err != nil {
		log.Fatal(err)
	}

	// Compute the delta. The product that moved from NewProducts to
	// Discount is detected as a move, not a delete+insert — the
	// distinguishing feature of the algorithm.
	d, err := xydiff.Diff(oldDoc, newDoc)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("operations:")
	fmt.Print(d)
	fmt.Println("summary:", d.Count())

	// The delta is itself an XML document.
	xml, err := d.MarshalText()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ndelta document (%d bytes):\n%s\n", len(xml), xml)

	// Apply it forward...
	v2, err := xydiff.ApplyClone(oldDoc, d)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\napply(old, delta) == new:", xydiff.Equal(v2, newDoc))

	// ...and backward: completed deltas are invertible.
	inv, err := d.Invert()
	if err != nil {
		log.Fatal(err)
	}
	v1, err := xydiff.ApplyClone(v2, inv)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("apply(new, delta⁻¹) == old:", xydiff.Equal(v1, oldDoc))
}
