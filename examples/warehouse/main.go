// Warehouse: versions and querying the past (Section 2 of the paper).
// A document accumulates simulated weekly changes in a version store;
// the example reconstructs old versions, extracts the delta chain
// between two arbitrary versions, and persists the whole warehouse to
// disk and back.
//
//	go run ./examples/warehouse
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"

	"xydiff/internal/changesim"
	"xydiff/internal/delta"
	"xydiff/internal/diff"
	"xydiff/internal/dom"
	"xydiff/internal/store"
	"xydiff/internal/xpathlite"
)

func main() {
	rng := rand.New(rand.NewSource(2002))
	repo := store.New(diff.Options{})
	const docID = "inria/catalog.xml"

	// Week 0: the first crawl of the document.
	doc := changesim.Catalog(rng, 3, 6)
	if _, _, err := repo.Put(docID, doc); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("week 0: stored %d bytes\n", len(doc.String()))

	// Weeks 1..5: the crawler brings changed versions; only the delta
	// is added to the history.
	cur := doc
	for week := 1; week <= 5; week++ {
		sim, err := changesim.Simulate(cur, changesim.Uniform(0.08, int64(week)))
		if err != nil {
			log.Fatal(err)
		}
		v, d, err := repo.Put(docID, sim.New)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("week %d: version %d, delta %d bytes (%s)\n",
			week, v, d.Size(), d.Count())
		cur = sim.New
	}

	// Query the past: reconstruct week 2's version and count products.
	v3, err := repo.Version(docID, 3)
	if err != nil {
		log.Fatal(err)
	}
	products := dom.Select(v3.Root(), "Category/Product")
	fmt.Printf("\nweek 2 (version 3) had %d products\n", len(products))

	// What changed between versions 2 and 5? The delta chain answers
	// without touching the documents.
	chain, err := repo.DeltasBetween(docID, 2, 5)
	if err != nil {
		log.Fatal(err)
	}
	total := 0
	for _, d := range chain {
		total += d.Count().Total()
	}
	fmt.Printf("versions 2 -> 5: %d deltas, %d operations in total\n", len(chain), total)

	// Temporal queries: the price history of the first product, by path
	// expression, across all versions.
	tl, err := repo.Timeline(docID, xpathlite.MustCompile(`//Category[1]/Product[1]/Price`))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nprice history of the first product:")
	for _, vv := range tl {
		if vv.Found {
			fmt.Printf("  v%d: %s\n", vv.Version, vv.Value)
		} else {
			fmt.Printf("  v%d: (product absent)\n", vv.Version)
		}
	}

	// "List of items recently introduced": inserted products since v3.
	hits, err := repo.ChangesMatching(docID, 3, 6,
		xpathlite.MustCompile(`//Product`), delta.KindInsert)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nproducts introduced after week 2: %d\n", len(hits))

	// Aggregate the whole chain into a single delta.
	agg, err := repo.Aggregate(docID, 1, 6)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("aggregated delta v1->v6: %d bytes (%s)\n", agg.Size(), agg.Count())

	// Persist the warehouse and load it back.
	dir, err := os.MkdirTemp("", "xydiff-warehouse-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	if err := repo.Save(dir); err != nil {
		log.Fatal(err)
	}
	loaded, err := store.Load(dir, diff.Options{})
	if err != nil {
		log.Fatal(err)
	}
	check, err := loaded.Version(docID, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsaved to %s and reloaded: version 3 identical: %v\n",
		dir, dom.Equal(check, v3))
}
