// Indexing: maintaining a full-text index with deltas instead of
// re-indexing (the paper's Section 2 "Indexing" motivation: "we are
// considering the possibility to use the diff to maintain such
// indexes"). The example indexes a catalog, feeds weekly deltas to the
// index, and shows that the incrementally maintained index stays
// identical to a full rebuild — while touching only the changed nodes.
//
//	go run ./examples/indexing
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"xydiff/internal/changesim"
	"xydiff/internal/diff"
	"xydiff/internal/dom"
	"xydiff/internal/index"
	"xydiff/internal/xid"
)

func main() {
	rng := rand.New(rand.NewSource(7))
	doc := changesim.Catalog(rng, 10, 40) // ~400 products
	fmt.Printf("catalog: %d nodes, %d bytes\n", doc.Size(), len(doc.String()))

	ix := index.New()
	cur := doc.Clone()
	xid.Assign(cur) // postings are keyed by persistent identifiers
	ix.AddDocument("catalog", cur)
	fmt.Printf("indexed: %+v\n", ix.Stats())

	for week := 1; week <= 4; week++ {
		sim, err := changesim.Simulate(cur, changesim.Uniform(0.05, int64(week)))
		if err != nil {
			log.Fatal(err)
		}
		d, err := diff.Diff(cur, sim.New, diff.Options{})
		if err != nil {
			log.Fatal(err)
		}

		start := time.Now()
		ix.ApplyDelta("catalog", d)
		incTime := time.Since(start)

		start = time.Now()
		rebuilt := index.New()
		rebuilt.AddDocument("catalog", sim.New)
		fullTime := time.Since(start)

		same := index.Equal(ix, rebuilt)
		fmt.Printf("week %d: %s | incremental %v vs rebuild %v | identical: %v\n",
			week, d.Count(), incTime, fullTime, same)
		if !same {
			log.Fatal("incremental index diverged from rebuild")
		}
		cur = sim.New
	}

	// Structured search: postings carry XIDs, so hits resolve to paths
	// in the current version.
	hits := ix.Search("warehouse")
	fmt.Printf("\n%d text nodes currently contain \"warehouse\"\n", len(hits))
	for i, h := range hits {
		if i == 3 {
			fmt.Println("  ...")
			break
		}
		if n := dom.FindByXID(cur, h.XID); n != nil {
			fmt.Printf("  %s\n", n.Parent.Path())
		}
	}
}
