// Crawl demonstrates the acquisition layer — the first box of the
// paper's Figure 1 — end to end in one process: a deterministic
// changesim origin plays the changing web, a crawler polls it on the
// adaptive change-rate schedule, and every changed document flows
// through the versioned store's diff, raising alerts on the way.
//
// Three sources make the adaptive policy visible: one document mutates
// every epoch (the crawler converges to the minimum interval), one
// mutates occasionally, and one never changes (the crawler backs off to
// the maximum interval and revalidates with conditional GETs that cost
// no parse and no diff).
//
//	go run ./examples/crawl            # ~5 seconds
//	go run ./examples/crawl -epochs 40
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"log/slog"
	"net/http/httptest"
	"time"

	"xydiff/internal/changesim"
	"xydiff/internal/crawl"
	"xydiff/internal/diff"
	"xydiff/internal/dom"
	"xydiff/internal/stats"
	"xydiff/internal/store"
)

func main() {
	epochs := flag.Int("epochs", 50, "simulation epochs (the origin mutates each epoch)")
	flag.Parse()

	// The changing web: three documents behind correct HTTP
	// revalidation (ETag / Last-Modified, 304s for unchanged content).
	origin, err := changesim.ServeCorpus(2002, 3)
	if err != nil {
		log.Fatal(err)
	}
	ts := httptest.NewServer(origin)
	defer ts.Close()
	paths := origin.Paths()

	// The repository: an in-memory versioned store; every new version
	// is diffed against its predecessor.
	st := store.New(diff.Options{})
	ingest := func(ctx context.Context, id string, body []byte) (bool, error) {
		doc, err := dom.Parse(bytes.NewReader(body))
		if err != nil {
			return false, err
		}
		v, d, err := st.PutContext(ctx, id, doc)
		if err != nil {
			return false, err
		}
		return v == 1 || (d != nil && !d.Empty()), nil
	}

	c := crawl.New(crawl.NewRegistry(), ingest, stats.NewCollector(), crawl.Config{
		MinInterval:     150 * time.Millisecond,
		MaxInterval:     1200 * time.Millisecond,
		PerHostInterval: -1, // one local origin; politeness would only slow the demo
		Logger:          slog.New(slog.NewTextHandler(io.Discard, nil)),
	})
	for i, name := range []string{"fast", "medium", "static"} {
		if _, err := c.Add(crawl.Source{ID: name, URL: ts.URL + paths[i]}); err != nil {
			log.Fatal(err)
		}
	}

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		if err := c.Run(ctx); err != nil {
			log.Print(err)
		}
	}()

	fmt.Printf("crawling 3 sources for %d epochs (~%v)...\n", *epochs, time.Duration(*epochs)*100*time.Millisecond)
	for e := 0; e < *epochs; e++ {
		time.Sleep(100 * time.Millisecond)
		// fast mutates every epoch, medium every eighth, static never.
		if err := origin.Mutate(paths[0]); err != nil {
			log.Fatal(err)
		}
		if e%8 == 7 {
			if err := origin.Mutate(paths[1]); err != nil {
				log.Fatal(err)
			}
		}
	}
	cancel()
	<-done

	fmt.Printf("\n%-8s %9s %8s %8s %8s %10s %7s\n",
		"source", "interval", "fetches", "304s", "changes", "changeRate", "stored")
	for _, s := range c.Status() {
		fmt.Printf("%-8s %9s %8d %8d %8d %10.2f %7d\n",
			s.ID, s.Interval.Round(10*time.Millisecond), s.Fetches, s.NotModified,
			s.Changes, s.Rate, st.Versions(s.ID))
	}
	snap := c.Metrics().Snapshot()
	fmt.Printf("\ntotals: %d fetches, %d answered 304 (%.0f%% skipped parse+diff), %d ingests, %d KB downloaded\n",
		snap.Fetches, snap.NotModified,
		100*float64(snap.NotModified)/float64(max64(snap.Fetches, 1)),
		snap.Ingests, snap.FetchedBytes/1024)
	fmt.Println("\nthe fast source converged toward the minimum interval, the static one")
	fmt.Println("toward the maximum — change rate drives the revisit schedule.")
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
