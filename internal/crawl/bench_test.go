package crawl

import (
	"bytes"
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"xydiff/internal/alert"
	"xydiff/internal/changesim"
	"xydiff/internal/diff"
	"xydiff/internal/dom"
	"xydiff/internal/stats"
	"xydiff/internal/store"
)

// versionRing captures successive versions of one corpus document and
// serves them in rotation, each with its real ETag. Benchmarking
// against the ring instead of a live endlessly-mutating CorpusServer
// keeps the document at its natural size: tens of thousands of
// cumulative simulator mutations would otherwise erode it to a stub and
// the benchmark would measure an empty pipeline.
type versionRing struct {
	mu     sync.Mutex
	i      int
	bodies [][]byte
	etags  []string
}

func newVersionRing(b *testing.B, seed int64, versions int) *versionRing {
	b.Helper()
	origin, err := changesim.ServeCorpus(seed, 1)
	if err != nil {
		b.Fatal(err)
	}
	ts := httptest.NewServer(origin)
	defer ts.Close()
	path := origin.Paths()[0]
	r := &versionRing{}
	for v := 0; v < versions; v++ {
		resp, err := ts.Client().Get(ts.URL + path)
		if err != nil {
			b.Fatal(err)
		}
		body, err := io.ReadAll(resp.Body)
		if cerr := resp.Body.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			b.Fatal(err)
		}
		r.bodies = append(r.bodies, body)
		r.etags = append(r.etags, resp.Header.Get("ETag"))
		if err := origin.Mutate(path); err != nil {
			b.Fatal(err)
		}
	}
	return r
}

// advance moves to the next version so the upcoming GET serves fresh
// content (and a fresh ETag).
func (r *versionRing) advance() {
	r.mu.Lock()
	r.i = (r.i + 1) % len(r.bodies)
	r.mu.Unlock()
}

func (r *versionRing) ServeHTTP(w http.ResponseWriter, req *http.Request) {
	r.mu.Lock()
	body, etag := r.bodies[r.i], r.etags[r.i]
	r.mu.Unlock()
	w.Header().Set("ETag", etag)
	if req.Header.Get("If-None-Match") == etag {
		w.WriteHeader(http.StatusNotModified)
		return
	}
	w.Header().Set("Content-Type", "application/xml")
	if _, err := w.Write(body); err != nil {
		return // client hung up
	}
}

// BenchmarkCrawlIngest measures a full acquisition round trip — HTTP
// fetch of a mutated document, parse, versioning diff in the store, and
// alert evaluation — i.e. the per-document cost of one crawler visit
// when the document HAS changed (the expensive path; unchanged visits
// are a single conditional GET).
func BenchmarkCrawlIngest(b *testing.B) {
	ring := newVersionRing(b, 7, 16)
	ts := httptest.NewServer(ring)
	defer ts.Close()

	st := store.New(diff.Options{})
	alerter := alert.New(alert.Subscription{ID: "bench", Path: "Product"})
	st.SetObserver(func(id string, version int, oldDoc, newDoc *dom.Node, r *diff.Result) {
		alerter.Notify(id, version, oldDoc, newDoc, r.Delta)
	})
	ingest := func(ctx context.Context, id string, body []byte) (bool, error) {
		doc, err := dom.Parse(bytes.NewReader(body))
		if err != nil {
			return false, err
		}
		v, d, err := st.PutContext(ctx, id, doc)
		if err != nil {
			return false, err
		}
		return v == 1 || (d != nil && !d.Empty()), nil
	}

	cfg := Config{
		MinInterval:     time.Millisecond,
		MaxInterval:     2 * time.Millisecond,
		PerHostInterval: -1,
		Logger:          quietLogger(),
	}
	c := New(NewRegistry(), ingest, stats.NewCollector(), cfg)
	if _, err := c.Add(Source{ID: "bench", URL: ts.URL + "/doc"}); err != nil {
		b.Fatal(err)
	}

	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ring.advance()
		c.fetchCycle(ctx, "bench")
	}
	b.StopTimer()
	snap := c.Metrics().Snapshot()
	if snap.Failures > 0 {
		b.Fatalf("%d fetch cycles failed", snap.Failures)
	}
	b.ReportMetric(float64(snap.FetchedBytes)/float64(b.N), "bytes/doc")
}

// TestConditionalGetSkipRatio measures — and asserts — the payoff of
// HTTP revalidation on a mostly-static corpus: when few documents
// change per revisit cycle, most visits must resolve to a 304 and never
// reach parse or diff. The measured ratio is recorded in EXPERIMENTS.md.
func TestConditionalGetSkipRatio(t *testing.T) {
	const docs = 20
	origin, err := changesim.ServeCorpus(11, docs)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(origin)
	defer ts.Close()

	ing := newMemIngester()
	cfg := Config{
		MinInterval:     20 * time.Millisecond,
		MaxInterval:     60 * time.Millisecond,
		Concurrency:     4,
		PerHostInterval: -1,
		Logger:          quietLogger(),
	}
	c := New(NewRegistry(), ing.ingest, stats.NewCollector(), cfg)
	for i, p := range origin.Paths() {
		if _, err := c.Add(Source{ID: origin.Paths()[i][1:], URL: ts.URL + p}); err != nil {
			t.Fatal(err)
		}
	}

	stop := startCrawler(t, c)
	// Mutate ~5% of the corpus every 100ms: a mostly-static web.
	tickDone := make(chan struct{})
	go func() {
		defer close(tickDone)
		for i := 0; i < 20; i++ {
			time.Sleep(100 * time.Millisecond)
			if _, err := origin.Tick(0.05); err != nil {
				t.Errorf("tick: %v", err)
				return
			}
		}
	}()
	<-tickDone
	stop()

	snap := c.Metrics().Snapshot()
	if snap.Fetches < 2*docs {
		t.Fatalf("only %d fetches in the measurement window", snap.Fetches)
	}
	skip := float64(snap.NotModified) / float64(snap.Fetches)
	t.Logf("skip ratio: %d/%d fetches answered 304 (%.1f%%), %d ingests, %d bytes downloaded",
		snap.NotModified, snap.Fetches, 100*skip, snap.Ingests, snap.FetchedBytes)
	// Every doc costs one initial 200; after that, a mostly-static
	// corpus must be mostly 304s.
	if skip < 0.5 {
		t.Errorf("conditional GET skip ratio = %.2f, want >= 0.5 on a mostly-static corpus", skip)
	}
}
