package crawl

import (
	"fmt"
	"io"
	"sync"
)

// Metrics is the crawler's observability surface, rendered into the
// embedding service's /metrics (Prometheus text format) under a caller
// -chosen prefix so the daemon (xydiffd_crawl) and the standalone
// crawler (xycrawl) expose the same series.
type Metrics struct {
	mu           sync.Mutex
	fetches      int64 // completed fetch cycles (200 or 304)
	notModified  int64 // conditional GETs answered 304
	ingests      int64 // fetches that installed a new version
	unchanged    int64 // 200s whose content was byte-equivalent
	retries      int64 // in-cycle HTTP re-attempts
	failures     int64 // fetch cycles that exhausted their attempts
	circuitOpens int64 // times a circuit transitioned to open
	fetchedBytes int64 // body bytes downloaded (200s only)

	// gauges polled at scrape time
	queueDepth   func() int
	sources      func() int
	openCircuits func() int
}

func newMetrics() *Metrics { return &Metrics{} }

func (m *Metrics) addFetch(out fetchOutcome) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.fetches++
	switch {
	case out.notModified:
		m.notModified++
	case out.changed:
		m.ingests++
	default:
		m.unchanged++
	}
	m.fetchedBytes += out.bytes
}

func (m *Metrics) addRetry() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.retries++
}

func (m *Metrics) addFailure() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.failures++
}

func (m *Metrics) addCircuitOpen() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.circuitOpens++
}

// Snapshot is a point-in-time copy of the counters, for tests and
// status logs.
type Snapshot struct {
	Fetches      int64
	NotModified  int64
	Ingests      int64
	Unchanged    int64
	Retries      int64
	Failures     int64
	CircuitOpens int64
	FetchedBytes int64
	OpenCircuits int
	QueueDepth   int
	Sources      int
}

// Snapshot copies the counters and polls the gauges.
func (m *Metrics) Snapshot() Snapshot {
	m.mu.Lock()
	s := Snapshot{
		Fetches:      m.fetches,
		NotModified:  m.notModified,
		Ingests:      m.ingests,
		Unchanged:    m.unchanged,
		Retries:      m.retries,
		Failures:     m.failures,
		CircuitOpens: m.circuitOpens,
		FetchedBytes: m.fetchedBytes,
	}
	queueDepth, sources, openCircuits := m.queueDepth, m.sources, m.openCircuits
	m.mu.Unlock()
	// Gauges poll other locks (registry, scheduler); never under m.mu.
	if queueDepth != nil {
		s.QueueDepth = queueDepth()
	}
	if sources != nil {
		s.Sources = sources()
	}
	if openCircuits != nil {
		s.OpenCircuits = openCircuits()
	}
	return s
}

// WritePrometheus renders the registry with the given metric prefix
// (e.g. "xydiffd_crawl" or "xycrawl").
func (m *Metrics) WritePrometheus(w io.Writer, prefix string) {
	s := m.Snapshot()
	fmt.Fprintf(w, "# HELP %s_fetches_total Completed fetch cycles (200 or 304).\n", prefix)
	fmt.Fprintf(w, "# TYPE %s_fetches_total counter\n", prefix)
	fmt.Fprintf(w, "%s_fetches_total %d\n", prefix, s.Fetches)
	fmt.Fprintf(w, "# HELP %s_not_modified_total Conditional GETs answered 304 (parse/diff skipped).\n", prefix)
	fmt.Fprintf(w, "# TYPE %s_not_modified_total counter\n", prefix)
	fmt.Fprintf(w, "%s_not_modified_total %d\n", prefix, s.NotModified)
	fmt.Fprintf(w, "# HELP %s_ingests_total Fetches that installed a new version.\n", prefix)
	fmt.Fprintf(w, "# TYPE %s_ingests_total counter\n", prefix)
	fmt.Fprintf(w, "%s_ingests_total %d\n", prefix, s.Ingests)
	fmt.Fprintf(w, "# HELP %s_unchanged_total 200 responses whose content matched the stored version.\n", prefix)
	fmt.Fprintf(w, "# TYPE %s_unchanged_total counter\n", prefix)
	fmt.Fprintf(w, "%s_unchanged_total %d\n", prefix, s.Unchanged)
	fmt.Fprintf(w, "# HELP %s_retries_total In-cycle HTTP re-attempts.\n", prefix)
	fmt.Fprintf(w, "# TYPE %s_retries_total counter\n", prefix)
	fmt.Fprintf(w, "%s_retries_total %d\n", prefix, s.Retries)
	fmt.Fprintf(w, "# HELP %s_failures_total Fetch cycles that exhausted their attempts.\n", prefix)
	fmt.Fprintf(w, "# TYPE %s_failures_total counter\n", prefix)
	fmt.Fprintf(w, "%s_failures_total %d\n", prefix, s.Failures)
	fmt.Fprintf(w, "# HELP %s_circuit_opens_total Times a source's circuit opened.\n", prefix)
	fmt.Fprintf(w, "# TYPE %s_circuit_opens_total counter\n", prefix)
	fmt.Fprintf(w, "%s_circuit_opens_total %d\n", prefix, s.CircuitOpens)
	fmt.Fprintf(w, "# HELP %s_fetched_bytes_total Body bytes downloaded.\n", prefix)
	fmt.Fprintf(w, "# TYPE %s_fetched_bytes_total counter\n", prefix)
	fmt.Fprintf(w, "%s_fetched_bytes_total %d\n", prefix, s.FetchedBytes)
	fmt.Fprintf(w, "# HELP %s_open_circuits Sources whose circuit is currently open.\n", prefix)
	fmt.Fprintf(w, "# TYPE %s_open_circuits gauge\n", prefix)
	fmt.Fprintf(w, "%s_open_circuits %d\n", prefix, s.OpenCircuits)
	fmt.Fprintf(w, "# HELP %s_queue_depth Sources waiting for their due time.\n", prefix)
	fmt.Fprintf(w, "# TYPE %s_queue_depth gauge\n", prefix)
	fmt.Fprintf(w, "%s_queue_depth %d\n", prefix, s.QueueDepth)
	fmt.Fprintf(w, "# HELP %s_sources Registered sources.\n", prefix)
	fmt.Fprintf(w, "# TYPE %s_sources gauge\n", prefix)
	fmt.Fprintf(w, "%s_sources %d\n", prefix, s.Sources)
}
