package crawl

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"xydiff/internal/retry"
	"xydiff/internal/stats"
)

func quietLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

// memIngester is a pipeline stand-in: "changed" means the body differs
// from the previous one for the same doc — exactly the contract the
// store's diff provides, without the parse/diff cost.
type memIngester struct {
	mu    sync.Mutex
	calls map[string]int
	last  map[string][]byte
}

func newMemIngester() *memIngester {
	return &memIngester{calls: make(map[string]int), last: make(map[string][]byte)}
}

func (m *memIngester) ingest(ctx context.Context, id string, body []byte) (bool, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.calls[id]++
	changed := !bytes.Equal(m.last[id], body)
	m.last[id] = append([]byte(nil), body...)
	return changed, nil
}

func (m *memIngester) callCount(id string) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.calls[id]
}

func (m *memIngester) lastBody(id string) string {
	m.mu.Lock()
	defer m.mu.Unlock()
	return string(m.last[id])
}

// startCrawler runs c until the returned stop function is called.
func startCrawler(t *testing.T, c *Crawler) (stop func()) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		if err := c.Run(ctx); err != nil {
			t.Errorf("crawler run: %v", err)
		}
	}()
	return func() {
		cancel()
		<-done
	}
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestAdaptiveScheduleFastVsStatic is the acceptance scenario: of two
// sources, one changes on every fetch and one never does. The adaptive
// scheduler must poll the fast one at least factor× as often, and the
// static one's interval must converge to MaxInterval.
func TestAdaptiveScheduleFastVsStatic(t *testing.T) {
	var fastN atomic.Int64
	fast := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// A fresh body on every GET, no validators: every visit changes.
		n := fastN.Add(1)
		w.Header().Set("Content-Type", "application/xml")
		fmt.Fprintf(w, "<doc><n>%d</n></doc>", n)
	}))
	defer fast.Close()
	staticBody := `<doc><v>immutable</v></doc>`
	static := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("ETag", `"static-1"`)
		if r.Header.Get("If-None-Match") == `"static-1"` {
			w.WriteHeader(http.StatusNotModified)
			return
		}
		w.Header().Set("Content-Type", "application/xml")
		fmt.Fprint(w, staticBody)
	}))
	defer static.Close()

	const factor = 3
	ing := newMemIngester()
	cfg := Config{
		MinInterval:     20 * time.Millisecond,
		MaxInterval:     320 * time.Millisecond,
		Concurrency:     2,
		PerHostInterval: -1,
		FetchTimeout:    2 * time.Second,
		Logger:          quietLogger(),
	}
	c := New(NewRegistry(), ing.ingest, stats.NewCollector(), cfg)
	if _, err := c.Add(Source{ID: "fast", URL: fast.URL + "/doc"}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Add(Source{ID: "static", URL: static.URL + "/doc"}); err != nil {
		t.Fatal(err)
	}
	stop := startCrawler(t, c)
	time.Sleep(2500 * time.Millisecond)
	stop()

	fastSrc, _ := c.reg.Get("fast")
	staticSrc, _ := c.reg.Get("static")
	if fastSrc.Fetches == 0 || staticSrc.Fetches == 0 {
		t.Fatalf("no fetches: fast=%d static=%d", fastSrc.Fetches, staticSrc.Fetches)
	}
	if fastSrc.Fetches < factor*staticSrc.Fetches {
		t.Errorf("fast source fetched %d times, static %d: want at least %d×",
			fastSrc.Fetches, staticSrc.Fetches, factor)
	}
	// The static source converged to the interval ceiling (±10% jitter).
	if staticSrc.Interval < time.Duration(0.7*float64(cfg.MaxInterval)) {
		t.Errorf("static interval = %v, want near MaxInterval %v", staticSrc.Interval, cfg.MaxInterval)
	}
	if rate, _ := c.rates.ChangeRate("static"); rate > 0.2 {
		t.Errorf("static change rate = %v, want near 0", rate)
	}
	if rate, _ := c.rates.ChangeRate("fast"); rate < 0.8 {
		t.Errorf("fast change rate = %v, want near 1", rate)
	}
	// Conditional GET did its job on the static source: exactly one
	// ingest (the first 200), everything after a 304.
	if got := ing.callCount("static"); got != 1 {
		t.Errorf("static ingested %d times, want 1 (304s must bypass ingest)", got)
	}
	if staticSrc.NotModified == 0 {
		t.Error("static source never answered 304")
	}
}

// TestRobustnessBackoffCircuitAndRecovery is the second acceptance
// scenario: an origin emitting 5xx bursts triggers retries and backoff,
// persistent failure opens the circuit (visible in metrics), and
// recovery closes it again.
func TestRobustnessBackoffCircuitAndRecovery(t *testing.T) {
	var healthy atomic.Bool
	var hits atomic.Int64
	origin := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		if !healthy.Load() {
			http.Error(w, "boom", http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/xml")
		fmt.Fprint(w, "<doc><v>recovered</v></doc>")
	}))
	defer origin.Close()

	ing := newMemIngester()
	cfg := Config{
		MinInterval:      10 * time.Millisecond,
		MaxInterval:      50 * time.Millisecond,
		Concurrency:      1,
		PerHostInterval:  -1,
		FetchTimeout:     time.Second,
		MaxAttempts:      2,
		CircuitThreshold: 2,
		CircuitCooldown:  120 * time.Millisecond,
		Retry:            retryPolicy(2*time.Millisecond, 10*time.Millisecond),
		Logger:           quietLogger(),
	}
	c := New(NewRegistry(), ing.ingest, stats.NewCollector(), cfg)
	if _, err := c.Add(Source{ID: "flaky", URL: origin.URL + "/doc"}); err != nil {
		t.Fatal(err)
	}
	stop := startCrawler(t, c)
	defer stop()

	// Phase 1: the origin fails; the circuit must open.
	waitFor(t, 5*time.Second, "circuit to open", func() bool {
		s := c.Metrics().Snapshot()
		return s.CircuitOpens >= 1 && s.OpenCircuits == 1
	})
	snap := c.Metrics().Snapshot()
	if snap.Retries == 0 {
		t.Errorf("no in-cycle retries recorded before the circuit opened")
	}
	if snap.Failures < int64(cfg.CircuitThreshold) {
		t.Errorf("failures = %d, want >= %d", snap.Failures, cfg.CircuitThreshold)
	}
	src, _ := c.reg.Get("flaky")
	if !src.CircuitOpen(time.Now()) {
		t.Error("source status does not show an open circuit")
	}
	// While open, the source is parked: the hit counter must go quiet.
	before := hits.Load()
	time.Sleep(60 * time.Millisecond) // well inside the cooldown
	if after := hits.Load(); after != before {
		t.Errorf("origin hit %d times while the circuit was open", after-before)
	}

	// Phase 2: the origin recovers; the cooldown probe must close the
	// circuit and resume normal fetching.
	healthy.Store(true)
	waitFor(t, 5*time.Second, "circuit to close", func() bool {
		s := c.Metrics().Snapshot()
		src, ok := c.reg.Get("flaky")
		return ok && s.OpenCircuits == 0 && src.Failures == 0 && src.Fetches >= 1
	})
	if got := ing.callCount("flaky"); got == 0 {
		t.Error("recovered source never ingested")
	}
}

// retryPolicy builds a fast deterministic policy for tests: no jitter,
// tight caps, so backoff waits stay in the low milliseconds.
func retryPolicy(base, ceiling time.Duration) retry.Policy {
	return retry.Policy{Base: base, Max: ceiling, Multiplier: 2, Jitter: -1}
}

// TestHangingOriginTimesOut: a handler that sleeps past FetchTimeout
// must surface as a transient failure, not a stuck worker.
func TestHangingOriginTimesOut(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	origin := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-release:
		case <-r.Context().Done():
		}
	}))
	defer origin.Close()

	ing := newMemIngester()
	cfg := Config{
		MinInterval:      10 * time.Millisecond,
		MaxInterval:      50 * time.Millisecond,
		Concurrency:      1,
		PerHostInterval:  -1,
		FetchTimeout:     30 * time.Millisecond,
		MaxAttempts:      1,
		CircuitThreshold: 100, // keep the circuit out of this test
		Retry:            retryPolicy(2*time.Millisecond, 10*time.Millisecond),
		Logger:           quietLogger(),
	}
	c := New(NewRegistry(), ing.ingest, stats.NewCollector(), cfg)
	if _, err := c.Add(Source{ID: "hang", URL: origin.URL + "/doc"}); err != nil {
		t.Fatal(err)
	}
	stop := startCrawler(t, c)
	defer stop()
	waitFor(t, 5*time.Second, "timeout failures", func() bool {
		return c.Metrics().Snapshot().Failures >= 2
	})
	if got := ing.callCount("hang"); got != 0 {
		t.Errorf("hanging origin ingested %d times, want 0", got)
	}
}

// TestTruncatedBodyIsTransient: a response shorter than its declared
// Content-Length is retried, and once the origin heals the document is
// ingested.
func TestTruncatedBodyIsTransient(t *testing.T) {
	const body = "<doc><v>whole</v></doc>"
	var healthy atomic.Bool
	origin := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if healthy.Load() {
			w.Header().Set("Content-Type", "application/xml")
			fmt.Fprint(w, body)
			return
		}
		// Hijack so we can lie about Content-Length and cut the body.
		conn, buf, err := w.(http.Hijacker).Hijack()
		if err != nil {
			t.Errorf("hijack: %v", err)
			return
		}
		fmt.Fprintf(buf, "HTTP/1.1 200 OK\r\nContent-Length: %d\r\nContent-Type: application/xml\r\n\r\n<doc>", len(body)+64)
		if err := buf.Flush(); err != nil {
			t.Logf("flush truncated response: %v", err)
		}
		if err := conn.Close(); err != nil {
			t.Logf("close hijacked conn: %v", err)
		}
	}))
	defer origin.Close()

	ing := newMemIngester()
	cfg := Config{
		MinInterval:      10 * time.Millisecond,
		MaxInterval:      50 * time.Millisecond,
		Concurrency:      1,
		PerHostInterval:  -1,
		FetchTimeout:     time.Second,
		MaxAttempts:      2,
		CircuitThreshold: 100,
		Retry:            retryPolicy(2*time.Millisecond, 10*time.Millisecond),
		Logger:           quietLogger(),
	}
	c := New(NewRegistry(), ing.ingest, stats.NewCollector(), cfg)
	if _, err := c.Add(Source{ID: "cut", URL: origin.URL + "/doc"}); err != nil {
		t.Fatal(err)
	}
	stop := startCrawler(t, c)
	defer stop()
	waitFor(t, 5*time.Second, "truncation retries", func() bool {
		return c.Metrics().Snapshot().Retries >= 1
	})
	if got := ing.callCount("cut"); got != 0 {
		t.Errorf("truncated body reached the ingester %d times", got)
	}
	healthy.Store(true)
	waitFor(t, 5*time.Second, "recovery ingest", func() bool {
		return ing.callCount("cut") >= 1
	})
	if m := ing.lastBody("cut"); m != body {
		t.Errorf("ingested body = %q, want %q", m, body)
	}
}

// TestRemoveStopsFetching: deleting a source drains it from the
// schedule even though the heap uses lazy deletion.
func TestRemoveStopsFetching(t *testing.T) {
	var hits atomic.Int64
	origin := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		fmt.Fprintf(w, "<doc><n>%d</n></doc>", hits.Load())
	}))
	defer origin.Close()

	ing := newMemIngester()
	cfg := Config{
		MinInterval:     10 * time.Millisecond,
		MaxInterval:     20 * time.Millisecond,
		Concurrency:     1,
		PerHostInterval: -1,
		Logger:          quietLogger(),
	}
	c := New(NewRegistry(), ing.ingest, stats.NewCollector(), cfg)
	if _, err := c.Add(Source{ID: "doomed", URL: origin.URL + "/doc"}); err != nil {
		t.Fatal(err)
	}
	stop := startCrawler(t, c)
	defer stop()
	waitFor(t, 5*time.Second, "first fetches", func() bool { return hits.Load() >= 2 })
	if !c.Remove("doomed") {
		t.Fatal("remove reported missing source")
	}
	// Let any in-flight fetch land, then the counter must freeze.
	time.Sleep(50 * time.Millisecond)
	before := hits.Load()
	time.Sleep(150 * time.Millisecond)
	if after := hits.Load(); after != before {
		t.Errorf("removed source fetched %d more times", after-before)
	}
	if c.Metrics().Snapshot().Sources != 0 {
		t.Errorf("sources gauge = %d after removal", c.Metrics().Snapshot().Sources)
	}
}

// TestRegistryPersistenceRoundTrip: learned schedule state survives
// Save/OpenRegistry, so a restarted crawler resumes where it left off.
func TestRegistryPersistenceRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sources.json")
	reg, err := OpenRegistry(path)
	if err != nil {
		t.Fatal(err)
	}
	if reg.Len() != 0 {
		t.Fatalf("fresh registry has %d sources", reg.Len())
	}
	next := time.Now().Add(42 * time.Second).UTC().Truncate(time.Millisecond)
	if _, err := reg.Add(Source{
		ID: "a", URL: "http://origin.example/a",
		Interval: 17 * time.Second, NextFetch: next,
		ETag: `"v3"`, LastModified: "Tue, 26 Feb 2002 00:00:00 GMT",
		Fetches: 9, NotModified: 4, Changes: 3, Errors: 1,
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Add(Source{ID: "b", URL: "https://origin.example/b"}); err != nil {
		t.Fatal(err)
	}
	if err := reg.Save(); err != nil {
		t.Fatal(err)
	}

	re, err := OpenRegistry(path)
	if err != nil {
		t.Fatal(err)
	}
	if re.Len() != 2 {
		t.Fatalf("reloaded registry has %d sources, want 2", re.Len())
	}
	a, ok := re.Get("a")
	if !ok {
		t.Fatal("source a missing after reload")
	}
	if a.Interval != 17*time.Second || !a.NextFetch.Equal(next) {
		t.Errorf("schedule state lost: interval=%v next=%v", a.Interval, a.NextFetch)
	}
	if a.ETag != `"v3"` || a.LastModified == "" {
		t.Errorf("validators lost: etag=%q lastModified=%q", a.ETag, a.LastModified)
	}
	if a.Fetches != 9 || a.NotModified != 4 || a.Changes != 3 || a.Errors != 1 {
		t.Errorf("counters lost: %+v", a)
	}
}

// TestRegistryRejectsBadSources: validation covers the ways a source
// can be malformed.
func TestRegistryRejectsBadSources(t *testing.T) {
	reg := NewRegistry()
	for _, src := range []Source{
		{ID: "", URL: "http://ok.example/x"},
		{ID: "x", URL: "ftp://nope.example/x"},
		{ID: "x", URL: "http://"},
		{ID: "x", URL: "::not a url"},
	} {
		if _, err := reg.Add(src); err == nil {
			t.Errorf("Add(%+v) accepted an invalid source", src)
		}
	}
	if reg.Len() != 0 {
		t.Errorf("invalid sources were stored: %d", reg.Len())
	}
}

// TestPerHostSpacingIsHonored: two sources on one host with a per-host
// interval cannot be fetched closer together than that interval.
func TestPerHostSpacingIsHonored(t *testing.T) {
	var mu sync.Mutex
	var stamps []time.Time
	origin := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		stamps = append(stamps, time.Now())
		mu.Unlock()
		fmt.Fprint(w, "<doc/>")
	}))
	defer origin.Close()

	const spacing = 40 * time.Millisecond
	ing := newMemIngester()
	cfg := Config{
		MinInterval:     5 * time.Millisecond,
		MaxInterval:     25 * time.Millisecond,
		Concurrency:     4,
		PerHostInterval: spacing,
		Logger:          quietLogger(),
	}
	c := New(NewRegistry(), ing.ingest, stats.NewCollector(), cfg)
	for _, id := range []string{"p1", "p2", "p3"} {
		if _, err := c.Add(Source{ID: id, URL: origin.URL + "/" + id}); err != nil {
			t.Fatal(err)
		}
	}
	stop := startCrawler(t, c)
	waitFor(t, 5*time.Second, "enough fetches", func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(stamps) >= 6
	})
	stop()

	mu.Lock()
	defer mu.Unlock()
	// Allow a small scheduling slop; the reservation math itself is exact.
	const slop = 5 * time.Millisecond
	for i := 1; i < len(stamps); i++ {
		if gap := stamps[i].Sub(stamps[i-1]); gap < spacing-slop {
			t.Errorf("fetches %d and %d only %v apart, want >= %v", i-1, i, gap, spacing)
		}
	}
}
