package crawl

import (
	"encoding/json"
	"fmt"
	"net/url"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"xydiff/internal/diff"
)

// Source is one registered acquisition target: a URL polled on the
// adaptive schedule, feeding one document id in the store. All fields
// are persisted with the registry so a restarted crawler resumes with
// its learned intervals and validators instead of re-fetching the
// world.
type Source struct {
	// ID is the document id the fetched versions are installed under.
	ID string `json:"id"`
	// URL is the polled HTTP(S) location.
	URL string `json:"url"`

	// Matcher names the diff matcher used for this source's versions
	// ("buld" or "sftm"; empty = store default). Crawled HTML pages
	// usually want "sftm": no DTD IDs, unstable attributes, text
	// rewritten in place.
	Matcher string `json:"matcher,omitempty"`

	// Interval is the current adaptive revisit interval.
	Interval time.Duration `json:"interval"`
	// NextFetch is when the source is next due.
	NextFetch time.Time `json:"nextFetch"`

	// ETag and LastModified are the validators from the last 200
	// response, replayed as If-None-Match / If-Modified-Since so an
	// unchanged document costs one conditional GET and no parse/diff.
	ETag         string `json:"etag,omitempty"`
	LastModified string `json:"lastModified,omitempty"`

	// Failures counts consecutive failed fetch cycles; reaching the
	// circuit threshold opens the circuit until CircuitOpenUntil.
	Failures         int       `json:"failures,omitempty"`
	CircuitOpenUntil time.Time `json:"circuitOpenUntil,omitempty"`

	// Lifetime counters, kept for /sources introspection.
	Fetches     int64 `json:"fetches"`
	NotModified int64 `json:"notModified"`
	Changes     int64 `json:"changes"`
	Errors      int64 `json:"errors"`
}

// CircuitOpen reports whether the source's circuit is open at now.
func (s Source) CircuitOpen(now time.Time) bool {
	return s.CircuitOpenUntil.After(now)
}

// Registry is the persisted set of sources — the crawler's counterpart
// of the store's document table, saved alongside it. All methods are
// safe for concurrent use. Mutations happen through the registry so the
// crawler, the HTTP endpoints, and persistence always see one state.
type Registry struct {
	mu   sync.Mutex
	path string // "" = memory-only
	srcs map[string]*Source
}

// NewRegistry returns an empty, memory-only registry.
func NewRegistry() *Registry {
	return &Registry{srcs: make(map[string]*Source)}
}

// OpenRegistry loads the registry persisted at path, or returns an
// empty one bound to path when the file does not exist yet. Save writes
// back to the same path.
func OpenRegistry(path string) (*Registry, error) {
	r := NewRegistry()
	r.path = path
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return r, nil
	}
	if err != nil {
		return nil, fmt.Errorf("crawl: read registry: %w", err)
	}
	var list []Source
	if err := json.Unmarshal(data, &list); err != nil {
		return nil, fmt.Errorf("crawl: parse registry %s: %w", path, err)
	}
	for i := range list {
		s := list[i]
		if err := validateSource(s); err != nil {
			return nil, fmt.Errorf("crawl: registry %s: %w", path, err)
		}
		r.srcs[s.ID] = &s
	}
	return r, nil
}

func validateSource(s Source) error {
	if s.ID == "" {
		return fmt.Errorf("source needs an id")
	}
	u, err := url.Parse(s.URL)
	if err != nil {
		return fmt.Errorf("source %s: parse url: %w", s.ID, err)
	}
	if u.Scheme != "http" && u.Scheme != "https" {
		return fmt.Errorf("source %s: url must be http or https, got %q", s.ID, s.URL)
	}
	if u.Host == "" {
		return fmt.Errorf("source %s: url %q has no host", s.ID, s.URL)
	}
	if _, err := diff.ParseMatcher(s.Matcher); err != nil {
		return fmt.Errorf("source %s: %w", s.ID, err)
	}
	return nil
}

// Add registers src (replacing any source with the same id) and returns
// the stored copy. A zero Interval or NextFetch means "let the
// scheduler decide" — the crawler fills them on first fetch.
func (r *Registry) Add(src Source) (Source, error) {
	if err := validateSource(src); err != nil {
		return Source{}, fmt.Errorf("crawl: %w", err)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s := src
	r.srcs[s.ID] = &s
	return s, nil
}

// Remove deletes the source, reporting whether it existed.
func (r *Registry) Remove(id string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	_, ok := r.srcs[id]
	delete(r.srcs, id)
	return ok
}

// Get returns a copy of the source.
func (r *Registry) Get(id string) (Source, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	s, ok := r.srcs[id]
	if !ok {
		return Source{}, false
	}
	return *s, true
}

// List returns copies of all sources, sorted by id.
func (r *Registry) List() []Source {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Source, 0, len(r.srcs))
	for _, s := range r.srcs {
		out = append(out, *s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Len reports how many sources are registered.
func (r *Registry) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.srcs)
}

// OpenCircuits counts sources whose circuit is open at now.
func (r *Registry) OpenCircuits(now time.Time) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for _, s := range r.srcs {
		if s.CircuitOpenUntil.After(now) {
			n++
		}
	}
	return n
}

// update applies f to the live source under the registry lock,
// reporting whether the source still exists (it may have been removed
// while a fetch was in flight).
func (r *Registry) update(id string, f func(*Source)) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	s, ok := r.srcs[id]
	if !ok {
		return false
	}
	f(s)
	return true
}

// Save persists the registry to its path (no-op when memory-only) with
// the store's crash-safe idiom: temp file, fsync, rename.
func (r *Registry) Save() error {
	r.mu.Lock()
	list := make([]Source, 0, len(r.srcs))
	for _, s := range r.srcs {
		list = append(list, *s)
	}
	path := r.path
	r.mu.Unlock()
	if path == "" {
		return nil
	}
	sort.Slice(list, func(i, j int) bool { return list[i].ID < list[j].ID })
	data, err := json.MarshalIndent(list, "", "  ")
	if err != nil {
		return fmt.Errorf("crawl: encode registry: %w", err)
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), ".crawl-sources-*")
	if err != nil {
		return fmt.Errorf("crawl: save registry: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		_ = tmp.Close() // the write error is the one worth reporting
		return fmt.Errorf("crawl: save registry: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		_ = tmp.Close() // the sync error is the one worth reporting
		return fmt.Errorf("crawl: sync registry: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("crawl: close registry temp: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("crawl: publish registry: %w", err)
	}
	return nil
}
