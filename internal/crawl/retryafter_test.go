package crawl

import (
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"xydiff/internal/stats"
)

func TestParseRetryAfter(t *testing.T) {
	cases := []struct {
		in   string
		want time.Duration
	}{
		{"", 0},
		{"7", 7 * time.Second},
		{" 3 ", 3 * time.Second},
		{"0", 0},
		{"-5", 0},
		{"soon", 0},
		{"3.5", 0}, // delta-seconds is an integer per RFC 9110
	}
	for _, c := range cases {
		if got := ParseRetryAfter(c.in); got != c.want {
			t.Errorf("ParseRetryAfter(%q) = %v, want %v", c.in, got, c.want)
		}
	}
	// HTTP-date form: a moment in the future parses to a positive wait,
	// one in the past to zero.
	future := time.Now().Add(10 * time.Second).UTC().Format(http.TimeFormat)
	if got := ParseRetryAfter(future); got <= 0 || got > 11*time.Second {
		t.Errorf("ParseRetryAfter(future date) = %v", got)
	}
	past := time.Now().Add(-10 * time.Second).UTC().Format(http.TimeFormat)
	if got := ParseRetryAfter(past); got != 0 {
		t.Errorf("ParseRetryAfter(past date) = %v, want 0", got)
	}
}

// TestRetryAfterSurvivesTransientWrap: the typed hint must stay
// reachable through the transient() wrapping fetchOnce applies to
// ingest failures, or fetchCycle could never see it.
func TestRetryAfterSurvivesTransientWrap(t *testing.T) {
	base := &RetryAfterError{After: 5 * time.Second, Err: errors.New("busy")}
	wrapped := transient(fmt.Errorf("ingest d0: %w", error(base)))
	if !isTransient(wrapped) {
		t.Fatal("wrapped RetryAfterError not transient")
	}
	var ra *RetryAfterError
	if !errors.As(wrapped, &ra) || ra.After != 5*time.Second {
		t.Fatalf("RetryAfterError lost in the chain: %v", wrapped)
	}
}

// TestRetryAfterPacesInCycleRetries: an origin shedding load with
// 503 + Retry-After must see its hint honored (clamped by the retry
// policy's Max) instead of the fixed exponential schedule. The policy
// base is 2ms and the hint 2s with a 120ms cap, so the gap between the
// two attempts proves which path the crawler took.
func TestRetryAfterPacesInCycleRetries(t *testing.T) {
	var mu sync.Mutex
	var hits []time.Time
	origin := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		hits = append(hits, time.Now())
		n := len(hits)
		mu.Unlock()
		if n <= 2 {
			w.Header().Set("Retry-After", "2")
			http.Error(w, "shedding", http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "application/xml")
		fmt.Fprint(w, "<doc><v>ok</v></doc>")
	}))
	defer origin.Close()

	ing := newMemIngester()
	cfg := Config{
		MinInterval:      10 * time.Millisecond,
		MaxInterval:      50 * time.Millisecond,
		Concurrency:      1,
		PerHostInterval:  -1,
		FetchTimeout:     time.Second,
		MaxAttempts:      2,
		CircuitThreshold: 100, // keep the circuit out of this test's way
		Retry:            retryPolicy(2*time.Millisecond, 120*time.Millisecond),
		Logger:           quietLogger(),
	}
	c := New(NewRegistry(), ing.ingest, stats.NewCollector(), cfg)
	if _, err := c.Add(Source{ID: "shed", URL: origin.URL + "/doc"}); err != nil {
		t.Fatal(err)
	}
	stop := startCrawler(t, c)
	defer stop()
	waitFor(t, 5*time.Second, "origin to recover and ingest", func() bool {
		return ing.callCount("shed") >= 1
	})
	stop()

	mu.Lock()
	defer mu.Unlock()
	if len(hits) < 2 {
		t.Fatalf("only %d origin hits", len(hits))
	}
	// Attempt 1 → attempt 2 is the in-cycle retry after the first 503:
	// the 2s hint clamps to the 120ms Max; the fixed schedule would have
	// come back after ~2ms.
	gap := hits[1].Sub(hits[0])
	if gap < 90*time.Millisecond {
		t.Errorf("retry after 503 came back in %v: Retry-After hint ignored", gap)
	}
	if gap > 2*time.Second {
		t.Errorf("retry waited %v: hint not clamped by Retry.Max", gap)
	}
}
