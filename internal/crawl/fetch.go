package crawl

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"
)

// fetchOutcome is what one successful HTTP attempt produced.
type fetchOutcome struct {
	notModified  bool
	changed      bool // ingester installed a new version
	bytes        int64
	etag         string
	lastModified string
}

// transientError marks a failure worth retrying (network trouble, 5xx,
// 429, ingest backpressure) as opposed to a permanent one (4xx, body
// too large) that only the next scheduled cycle should revisit.
type transientError struct{ err error }

func (e *transientError) Error() string { return e.err.Error() }
func (e *transientError) Unwrap() error { return e.err }

func transient(err error) error { return &transientError{err: err} }

// RetryAfterError is a transient failure where the server named its
// own pacing: a 503 (the daemon's ErrBusy shedding) or 429 carrying a
// Retry-After header. The retry loop honors After — clamped by the
// retry policy's Max — instead of its computed backoff, so a loaded
// daemon's "come back in N seconds" is respected rather than hammered
// through on a fixed schedule.
type RetryAfterError struct {
	After time.Duration // server-suggested wait; pre-clamp
	Err   error
}

func (e *RetryAfterError) Error() string {
	return fmt.Sprintf("%v (retry after %s)", e.Err, e.After)
}
func (e *RetryAfterError) Unwrap() error { return e.Err }

// ParseRetryAfter reads a Retry-After header value: delta-seconds or
// an HTTP-date. Zero means absent/unparseable/in the past.
func ParseRetryAfter(v string) time.Duration {
	v = strings.TrimSpace(v)
	if v == "" {
		return 0
	}
	if secs, err := strconv.Atoi(v); err == nil {
		if secs <= 0 {
			return 0
		}
		return time.Duration(secs) * time.Second
	}
	if t, err := http.ParseTime(v); err == nil {
		if d := time.Until(t); d > 0 {
			return d
		}
	}
	return 0
}

func isTransient(err error) bool {
	var t *transientError
	return errors.As(err, &t)
}

// fetchCycle runs one complete visit of the source: up to MaxAttempts
// HTTP attempts with backoff between them, then the success or failure
// bookkeeping, and finally rescheduling. A source removed mid-flight is
// dropped silently.
func (c *Crawler) fetchCycle(ctx context.Context, id string) {
	src, ok := c.reg.Get(id)
	if !ok {
		return
	}
	var out fetchOutcome
	var err error
	for attempt := 0; ; attempt++ {
		out, err = c.fetchOnce(ctx, src)
		if err == nil || ctx.Err() != nil {
			break
		}
		if !isTransient(err) || attempt+1 >= c.cfg.MaxAttempts {
			break
		}
		c.metrics.addRetry()
		delay := c.cfg.Retry.Delay(attempt, nil) // in-cycle pacing; jitter comes from the cross-cycle path
		var ra *RetryAfterError
		if errors.As(err, &ra) {
			// The server told us when to come back; its word wins over
			// the computed backoff, bounded by the policy's Max.
			delay = c.cfg.Retry.Clamp(ra.After)
		}
		c.log.Debug("crawl retry", "source", id, "attempt", attempt+1, "delay", delay, "err", err)
		pause := time.NewTimer(delay)
		select {
		case <-ctx.Done():
			pause.Stop()
			return
		case <-pause.C:
		}
	}
	if ctx.Err() != nil {
		return // shutting down: leave the source state as it was
	}
	if err != nil {
		c.failCycle(id, err)
		return
	}
	c.succeedCycle(id, out)
}

// fetchOnce is one conditional GET attempt against the source.
func (c *Crawler) fetchOnce(ctx context.Context, src Source) (fetchOutcome, error) {
	u, err := url.Parse(src.URL)
	if err != nil {
		return fetchOutcome{}, fmt.Errorf("parse url: %w", err)
	}
	if wait := c.reserveHost(u.Host); wait > 0 {
		select {
		case <-ctx.Done():
			return fetchOutcome{}, ctx.Err()
		case <-time.After(wait):
		}
	}
	ctx, cancel := context.WithTimeout(ctx, c.cfg.FetchTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, src.URL, nil)
	if err != nil {
		return fetchOutcome{}, fmt.Errorf("build request: %w", err)
	}
	req.Header.Set("User-Agent", c.cfg.UserAgent)
	if src.ETag != "" {
		req.Header.Set("If-None-Match", src.ETag)
	}
	if src.LastModified != "" {
		req.Header.Set("If-Modified-Since", src.LastModified)
	}
	resp, err := c.cfg.Client.Do(req)
	if err != nil {
		// Timeouts, refused connections, mid-body hangs: all transient.
		return fetchOutcome{}, transient(fmt.Errorf("fetch %s: %w", src.URL, err))
	}
	defer func() { _ = resp.Body.Close() }() // best-effort; the read below saw every byte that matters
	switch {
	case resp.StatusCode == http.StatusNotModified:
		return fetchOutcome{notModified: true}, nil
	case resp.StatusCode == http.StatusOK:
	case resp.StatusCode >= 500 || resp.StatusCode == http.StatusTooManyRequests:
		err := fmt.Errorf("fetch %s: status %d", src.URL, resp.StatusCode)
		if after := ParseRetryAfter(resp.Header.Get("Retry-After")); after > 0 {
			return fetchOutcome{}, transient(&RetryAfterError{After: after, Err: err})
		}
		return fetchOutcome{}, transient(err)
	default:
		return fetchOutcome{}, fmt.Errorf("fetch %s: status %d", src.URL, resp.StatusCode)
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, c.cfg.MaxBodyBytes+1))
	if err != nil {
		// Truncated or reset bodies are transient: the next attempt may
		// read the document whole.
		return fetchOutcome{}, transient(fmt.Errorf("read %s: %w", src.URL, err))
	}
	if int64(len(body)) > c.cfg.MaxBodyBytes {
		return fetchOutcome{}, fmt.Errorf("fetch %s: body exceeds %d bytes", src.URL, c.cfg.MaxBodyBytes)
	}
	if resp.ContentLength > 0 && int64(len(body)) < resp.ContentLength {
		return fetchOutcome{}, transient(fmt.Errorf("read %s: truncated body (%d of %d bytes)",
			src.URL, len(body), resp.ContentLength))
	}
	changed, err := c.ingest(ctx, src.ID, body)
	if err != nil {
		// Ingest failures (parse limits, store backpressure) retry like
		// network trouble: the content may be fine on the next attempt.
		return fetchOutcome{}, transient(fmt.Errorf("ingest %s: %w", src.ID, err))
	}
	return fetchOutcome{
		changed:      changed,
		bytes:        int64(len(body)),
		etag:         resp.Header.Get("ETag"),
		lastModified: resp.Header.Get("Last-Modified"),
	}, nil
}

// succeedCycle records a completed visit: counters, validators, the
// change-rate observation, circuit reset, and the adaptive reschedule.
func (c *Crawler) succeedCycle(id string, out fetchOutcome) {
	changed := out.changed && !out.notModified
	c.rates.ObserveVisit(id, changed)
	c.metrics.addFetch(out)
	interval := c.revisit(id)
	next := time.Now().Add(interval)
	wasOpen := false
	ok := c.reg.update(id, func(s *Source) {
		wasOpen = s.CircuitOpen(time.Now())
		s.Fetches++
		if out.notModified {
			s.NotModified++
		} else {
			if out.etag != "" || out.lastModified != "" {
				s.ETag, s.LastModified = out.etag, out.lastModified
			}
			if changed {
				s.Changes++
			}
		}
		s.Failures = 0
		s.CircuitOpenUntil = time.Time{}
		s.Interval = interval
		s.NextFetch = next
	})
	if !ok {
		return // removed mid-flight
	}
	if wasOpen {
		c.log.Info("crawl circuit closed", "source", id)
	}
	c.schedule(id, next)
}

// failCycle records a failed visit and either backs the source off or
// opens its circuit.
func (c *Crawler) failCycle(id string, err error) {
	c.metrics.addFailure()
	now := time.Now()
	var next time.Time
	opened := false
	failures := 0
	ok := c.reg.update(id, func(s *Source) {
		s.Errors++
		s.Failures++
		failures = s.Failures
		if s.Failures >= c.cfg.CircuitThreshold {
			// Open (or re-arm) the circuit: park the source for the
			// cooldown, then let exactly one probe through.
			opened = !s.CircuitOpen(now)
			s.CircuitOpenUntil = now.Add(c.cfg.CircuitCooldown)
			next = s.CircuitOpenUntil
		} else {
			next = now.Add(c.backoffDelay(s.Failures))
		}
		s.NextFetch = next
	})
	if !ok {
		return
	}
	if opened {
		c.metrics.addCircuitOpen()
		c.log.Warn("crawl circuit opened", "source", id, "failures", failures,
			"cooldown", c.cfg.CircuitCooldown, "err", err)
	} else {
		c.log.Warn("crawl fetch failed", "source", id, "failures", failures,
			"next", next.Format(time.RFC3339), "err", err)
	}
	c.schedule(id, next)
}
