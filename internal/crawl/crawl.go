// Package crawl is the acquisition layer of the paper's Figure 1 — the
// crawler box that feeds everything downstream. It polls a registry of
// HTTP sources and ingests new versions into the repository/diff
// pipeline, revisiting each document at a frequency proportional to its
// observed change rate (Xyleme's refresh policy): the scheduler asks
// the stats collector for the document's change rate and interpolates
// the revisit interval between a configured floor and ceiling, so
// fast-changing documents are polled often and static ones converge to
// the maximum interval.
//
// The fetch path is production-shaped: a bounded worker pool, per-host
// request spacing, conditional GET (ETag / If-Modified-Since) so
// unchanged documents never reach parse or diff, per-attempt timeouts,
// retry with exponential backoff and jitter (internal/retry), and a
// circuit breaker that parks persistently failing sources instead of
// hammering them.
package crawl

import (
	"container/heap"
	"context"
	"log/slog"
	"math/rand"
	"net/http"
	"runtime"
	"sync"
	"time"

	"xydiff/internal/retry"
	"xydiff/internal/stats"
)

// Ingester installs one fetched document version into the pipeline
// (parse, store, diff, alerts — whatever the embedder wires up).
// changed reports whether the body produced a new version: true for a
// first version or a non-empty delta, false when the content was
// byte-equivalent to the stored latest. Errors are treated as
// transient: the fetch cycle counts a failure and the source retries on
// the backoff schedule.
type Ingester func(ctx context.Context, docID string, body []byte) (changed bool, err error)

// Config tunes the crawler. The zero value picks production defaults.
type Config struct {
	// MinInterval floors the adaptive revisit interval — the rate the
	// hottest document is polled at (default 15s).
	MinInterval time.Duration
	// MaxInterval caps the revisit interval — how stale a static
	// document may grow (default 1h).
	MaxInterval time.Duration
	// Concurrency bounds in-flight fetches (default GOMAXPROCS, max 8).
	Concurrency int
	// PerHostInterval spaces successive requests to one host (default
	// 250ms), politeness against origins serving many sources.
	PerHostInterval time.Duration
	// FetchTimeout bounds one HTTP attempt (default 10s).
	FetchTimeout time.Duration
	// MaxBodyBytes caps a fetched body (default 16 MiB); larger
	// responses fail the fetch.
	MaxBodyBytes int64
	// Retry paces re-attempts within a fetch cycle and the spacing of
	// failing cycles (zero value = retry package defaults).
	Retry retry.Policy
	// MaxAttempts bounds HTTP attempts within one fetch cycle before
	// the cycle counts as failed (default 3).
	MaxAttempts int
	// CircuitThreshold is how many consecutive failed cycles open the
	// source's circuit (default 5).
	CircuitThreshold int
	// CircuitCooldown is how long an open circuit parks the source
	// before a single probe is allowed through (default 1m).
	CircuitCooldown time.Duration
	// UserAgent identifies the crawler to origins.
	UserAgent string
	// Client is the HTTP client to fetch with (default a fresh
	// http.Client; timeouts come from FetchTimeout contexts).
	Client *http.Client
	// Logger receives fetch lifecycle logs (default slog.Default).
	Logger *slog.Logger
	// Seed fixes the schedule/backoff jitter for tests (default 1).
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.MinInterval <= 0 {
		c.MinInterval = 15 * time.Second
	}
	if c.MaxInterval <= c.MinInterval {
		c.MaxInterval = max(time.Hour, c.MinInterval)
	}
	if c.Concurrency <= 0 {
		c.Concurrency = min(runtime.GOMAXPROCS(0), 8)
	}
	if c.PerHostInterval < 0 {
		c.PerHostInterval = 0
	} else if c.PerHostInterval == 0 {
		c.PerHostInterval = 250 * time.Millisecond
	}
	if c.FetchTimeout <= 0 {
		c.FetchTimeout = 10 * time.Second
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 16 << 20
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 3
	}
	if c.CircuitThreshold <= 0 {
		c.CircuitThreshold = 5
	}
	if c.CircuitCooldown <= 0 {
		c.CircuitCooldown = time.Minute
	}
	if c.UserAgent == "" {
		c.UserAgent = "xycrawl/1 (+https://github.com/xydiff)"
	}
	if c.Client == nil {
		c.Client = &http.Client{}
	}
	if c.Logger == nil {
		c.Logger = slog.Default()
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// Crawler polls the registry's sources and feeds the ingester.
type Crawler struct {
	cfg     Config
	reg     *Registry
	ingest  Ingester
	rates   *stats.Collector
	metrics *Metrics
	log     *slog.Logger

	mu       sync.Mutex
	queue    schedHeap            // sources waiting for their due time
	queued   map[string]bool      // ids currently in the heap
	hostNext map[string]time.Time // per-host next allowed request start
	rng      *rand.Rand           // schedule + backoff jitter
	wake     chan struct{}        // poked when the head of the queue may have changed
}

// New wires a crawler over the registry. rates is the change-rate
// signal the scheduler reads and the crawler feeds (one visit
// observation per completed fetch); sharing the server's collector
// means direct PUTs and crawled fetches train the same rates.
func New(reg *Registry, ingest Ingester, rates *stats.Collector, cfg Config) *Crawler {
	cfg = cfg.withDefaults()
	c := &Crawler{
		cfg:      cfg,
		reg:      reg,
		ingest:   ingest,
		rates:    rates,
		metrics:  newMetrics(),
		log:      cfg.Logger,
		queued:   make(map[string]bool),
		hostNext: make(map[string]time.Time),
		rng:      rand.New(rand.NewSource(cfg.Seed)),
		wake:     make(chan struct{}, 1),
	}
	c.metrics.queueDepth = c.depth
	c.metrics.sources = reg.Len
	c.metrics.openCircuits = func() int { return reg.OpenCircuits(time.Now()) }
	// Seed the schedule with everything already registered; persisted
	// NextFetch times in the past simply come due immediately.
	for _, s := range reg.List() {
		c.schedule(s.ID, s.NextFetch)
	}
	return c
}

// Metrics exposes the crawler's registry for /metrics embedding.
func (c *Crawler) Metrics() *Metrics { return c.metrics }

// Registry exposes the source registry (for status endpoints).
func (c *Crawler) Registry() *Registry { return c.reg }

// Add registers the source and schedules its first fetch immediately.
func (c *Crawler) Add(src Source) (Source, error) {
	s, err := c.reg.Add(src)
	if err != nil {
		return Source{}, err
	}
	when := s.NextFetch // zero = due now
	c.schedule(s.ID, when)
	return s, nil
}

// Remove unregisters the source; an in-flight fetch of it finishes but
// its result is discarded and it is never rescheduled.
func (c *Crawler) Remove(id string) bool {
	ok := c.reg.Remove(id)
	// The heap entry, if any, dies lazily: pop skips unknown ids.
	return ok
}

// Status is one source plus its live change-rate estimate.
type Status struct {
	Source
	// Rate is the EWMA change rate driving the schedule (0 static .. 1
	// changing every visit; 0.5 = not yet observed).
	Rate float64
	// RateObservations is how many visits trained the rate.
	RateObservations int
}

// Status reports all sources with their schedule state, sorted by id.
func (c *Crawler) Status() []Status {
	srcs := c.reg.List()
	out := make([]Status, 0, len(srcs))
	for _, s := range srcs {
		rate, n := c.rates.ChangeRate(s.ID)
		out = append(out, Status{Source: s, Rate: rate, RateObservations: n})
	}
	return out
}

// Run fetches until ctx is canceled: a dispatcher releases sources as
// they come due to a pool of Concurrency workers. It returns nil on a
// clean (context) shutdown after all in-flight fetches finished.
func (c *Crawler) Run(ctx context.Context) error {
	work := make(chan string)
	var wg sync.WaitGroup
	for i := 0; i < c.cfg.Concurrency; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for id := range work {
				c.fetchCycle(ctx, id)
			}
		}()
	}
	timer := time.NewTimer(time.Hour)
	defer timer.Stop()
dispatch:
	for {
		id, due, ok := c.peek()
		if !ok {
			select {
			case <-ctx.Done():
				break dispatch
			case <-c.wake:
			}
			continue
		}
		if wait := time.Until(due); wait > 0 {
			if !timer.Stop() {
				select {
				case <-timer.C:
				default:
				}
			}
			timer.Reset(wait)
			select {
			case <-ctx.Done():
				break dispatch
			case <-c.wake:
			case <-timer.C:
			}
			continue
		}
		id, ok = c.pop(id)
		if !ok {
			continue // head changed under us or the source was removed
		}
		select {
		case <-ctx.Done():
			break dispatch
		case work <- id:
		}
	}
	close(work)
	wg.Wait()
	return nil
}

// schedule (re)queues id for when (zero time = due immediately).
func (c *Crawler) schedule(id string, when time.Time) {
	c.mu.Lock()
	if !c.queued[id] {
		heap.Push(&c.queue, schedItem{id: id, due: when})
		c.queued[id] = true
	} else {
		c.queue.reschedule(id, when)
	}
	c.mu.Unlock()
	select {
	case c.wake <- struct{}{}:
	default:
	}
}

// peek returns the id and due time at the head of the queue.
func (c *Crawler) peek() (string, time.Time, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.queue) == 0 {
		return "", time.Time{}, false
	}
	return c.queue[0].id, c.queue[0].due, true
}

// pop removes id if it is still the head and still registered.
func (c *Crawler) pop(id string) (string, bool) {
	c.mu.Lock()
	if len(c.queue) == 0 || c.queue[0].id != id {
		c.mu.Unlock()
		return "", false
	}
	item := heap.Pop(&c.queue).(schedItem)
	delete(c.queued, item.id)
	c.mu.Unlock()
	if _, ok := c.reg.Get(item.id); !ok {
		return "", false // removed while queued
	}
	return item.id, true
}

// depth reports how many sources are queued (not in flight).
func (c *Crawler) depth() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.queue)
}

// revisit computes the adaptive revisit interval for id: linear
// interpolation between MinInterval (rate 1: changes every visit) and
// MaxInterval (rate 0: never changes), ±10% jitter so sources trained
// to the same rate do not synchronize.
func (c *Crawler) revisit(id string) time.Duration {
	rate, _ := c.rates.ChangeRate(id)
	span := float64(c.cfg.MaxInterval - c.cfg.MinInterval)
	d := float64(c.cfg.MinInterval) + (1-rate)*span
	c.mu.Lock()
	d *= 1 + 0.1*(2*c.rng.Float64()-1)
	c.mu.Unlock()
	if d < float64(c.cfg.MinInterval) {
		d = float64(c.cfg.MinInterval)
	}
	if d > float64(c.cfg.MaxInterval) {
		d = float64(c.cfg.MaxInterval)
	}
	return time.Duration(d)
}

// backoffDelay is the cross-cycle spacing after `failures` consecutive
// failed cycles.
func (c *Crawler) backoffDelay(failures int) time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.cfg.Retry.Delay(failures-1, c.rng)
}

// reserveHost returns how long the caller must wait before starting a
// request to host, reserving its slot (politeness spacing).
func (c *Crawler) reserveHost(host string) time.Duration {
	if c.cfg.PerHostInterval <= 0 {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	now := time.Now()
	slot := c.hostNext[host]
	if slot.Before(now) {
		slot = now
	}
	c.hostNext[host] = slot.Add(c.cfg.PerHostInterval)
	return slot.Sub(now)
}

// schedHeap is a min-heap of sources by due time.
type schedItem struct {
	id  string
	due time.Time
}

type schedHeap []schedItem

func (h schedHeap) Len() int           { return len(h) }
func (h schedHeap) Less(i, j int) bool { return h[i].due.Before(h[j].due) }
func (h schedHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }

func (h *schedHeap) Push(x any) { *h = append(*h, x.(schedItem)) }

func (h *schedHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// reschedule moves an already-queued id to a new due time.
func (h *schedHeap) reschedule(id string, due time.Time) {
	for i := range *h {
		if (*h)[i].id == id {
			(*h)[i].due = due
			heap.Fix(h, i)
			return
		}
	}
}
