// Package faultfs provides the writable filesystem seam the store's
// durability layer writes through, plus a fault-injecting wrapper used
// by crash-recovery tests. The production implementation (OS) is a thin
// veneer over package os; Faulty wraps any FS and deterministically
// injects short writes, fsync failures, write errors after N matching
// operations, and crash points after which every operation fails — the
// moral equivalent of the process dying mid-syscall, so tests can
// reopen the directory and assert what recovery reconstructs.
package faultfs

import (
	"errors"
	"fmt"
	"io"
	"os"
	"sync"
)

// File is the subset of *os.File the store needs for durable writes.
type File interface {
	io.Writer
	io.Closer
	// Sync flushes the file to stable storage (fsync).
	Sync() error
	// Name returns the path the file was opened with.
	Name() string
}

// FS is a writable filesystem. All paths are interpreted like package
// os does (absolute or relative to the process working directory).
type FS interface {
	// OpenFile opens path with the given os flags and permissions.
	OpenFile(path string, flag int, perm os.FileMode) (File, error)
	// CreateTemp creates a new temporary file in dir, opened for
	// writing, with a name built from pattern as os.CreateTemp does.
	CreateTemp(dir, pattern string) (File, error)
	ReadFile(path string) ([]byte, error)
	ReadDir(path string) ([]os.DirEntry, error)
	Stat(path string) (os.FileInfo, error)
	MkdirAll(path string, perm os.FileMode) error
	Rename(oldPath, newPath string) error
	Remove(path string) error
	// Truncate cuts the file at path down to size bytes.
	Truncate(path string, size int64) error
}

// OS is the production FS: direct calls into package os.
type OS struct{}

// OpenFile implements FS.
func (OS) OpenFile(path string, flag int, perm os.FileMode) (File, error) {
	return os.OpenFile(path, flag, perm)
}

// CreateTemp implements FS.
func (OS) CreateTemp(dir, pattern string) (File, error) { return os.CreateTemp(dir, pattern) }

// ReadFile implements FS.
func (OS) ReadFile(path string) ([]byte, error) { return os.ReadFile(path) }

// ReadDir implements FS.
func (OS) ReadDir(path string) ([]os.DirEntry, error) { return os.ReadDir(path) }

// Stat implements FS.
func (OS) Stat(path string) (os.FileInfo, error) { return os.Stat(path) }

// MkdirAll implements FS.
func (OS) MkdirAll(path string, perm os.FileMode) error { return os.MkdirAll(path, perm) }

// Rename implements FS.
func (OS) Rename(oldPath, newPath string) error { return os.Rename(oldPath, newPath) }

// Remove implements FS.
func (OS) Remove(path string) error { return os.Remove(path) }

// Truncate implements FS.
func (OS) Truncate(path string, size int64) error { return os.Truncate(path, size) }

// ---------------------------------------------------------------------------
// Fault injection.

// Op names a filesystem operation class for matching and counting.
type Op string

// Operation classes the wrapper distinguishes.
const (
	OpOpen     Op = "open" // OpenFile and CreateTemp
	OpWrite    Op = "write"
	OpSync     Op = "sync"
	OpClose    Op = "close"
	OpRename   Op = "rename"
	OpRemove   Op = "remove"
	OpTruncate Op = "truncate"
	OpRead     Op = "read" // whole-file ReadFile
)

// Injection errors. A crashed filesystem fails everything with
// ErrCrashed; a fault without an explicit Err fails with ErrInjected.
var (
	ErrInjected = errors.New("faultfs: injected fault")
	ErrCrashed  = errors.New("faultfs: filesystem crashed")
)

// Fault is one injection rule. It fires on the Countdown-th operation
// (1-based) matching Op, counting across the whole filesystem.
type Fault struct {
	// Op selects which operation class the rule watches.
	Op Op
	// Countdown is how many matching operations complete normally
	// before the fault fires; 1 fires on the first match.
	Countdown int
	// ShortBytes, for write faults, is how many leading bytes of the
	// buffer still reach the underlying filesystem before the error —
	// a torn write. Zero persists nothing.
	ShortBytes int
	// Err is the error returned to the caller (ErrInjected if nil).
	Err error
	// Crash, when set, flips the filesystem into the crashed state as
	// the fault fires: every subsequent operation fails with
	// ErrCrashed, like a process that died mid-run.
	Crash bool
}

// Faulty wraps an FS with deterministic fault injection and per-op
// counters. The zero value is not usable; use Wrap.
type Faulty struct {
	base FS

	mu      sync.Mutex
	faults  []*Fault
	counts  map[Op]int
	crashed bool
}

// Wrap returns a fault-injecting filesystem over base with the given
// rules. With no rules it is a pure pass-through that counts
// operations, which lets a test measure a workload's op counts before
// replaying it with a crash at each point.
func Wrap(base FS, faults ...*Fault) *Faulty {
	return &Faulty{base: base, faults: faults, counts: make(map[Op]int)}
}

// Count returns how many operations of class op have been attempted.
func (f *Faulty) Count(op Op) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.counts[op]
}

// Crashed reports whether a crash fault has fired.
func (f *Faulty) Crashed() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.crashed
}

// step counts one operation and decides its fate: it returns the fault
// that fires on this operation (nil for none) and whether the
// filesystem is already crashed.
func (f *Faulty) step(op Op) (*Fault, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return nil, ErrCrashed
	}
	f.counts[op]++
	for _, rule := range f.faults {
		if rule.Op != op || rule.Countdown <= 0 {
			continue
		}
		rule.Countdown--
		if rule.Countdown == 0 {
			if rule.Crash {
				f.crashed = true
			}
			return rule, nil
		}
	}
	return nil, nil
}

func (rule *Fault) err() error {
	if rule.Err != nil {
		return rule.Err
	}
	if rule.Crash {
		return ErrCrashed
	}
	return ErrInjected
}

// OpenFile implements FS.
func (f *Faulty) OpenFile(path string, flag int, perm os.FileMode) (File, error) {
	rule, err := f.step(OpOpen)
	if err != nil {
		return nil, err
	}
	if rule != nil {
		return nil, rule.err()
	}
	file, err := f.base.OpenFile(path, flag, perm)
	if err != nil {
		return nil, err
	}
	return &faultyFile{fs: f, f: file}, nil
}

// CreateTemp implements FS.
func (f *Faulty) CreateTemp(dir, pattern string) (File, error) {
	rule, err := f.step(OpOpen)
	if err != nil {
		return nil, err
	}
	if rule != nil {
		return nil, rule.err()
	}
	file, err := f.base.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return &faultyFile{fs: f, f: file}, nil
}

// ReadFile implements FS. Read faults (OpRead) model a disk whose
// sectors fail on access — the scrubber must classify such a file as
// damaged without ever seeing its bytes. Recovery reads through a
// fresh OS, so write-path crash tests are unaffected by the counting.
func (f *Faulty) ReadFile(path string) ([]byte, error) {
	rule, err := f.step(OpRead)
	if err != nil {
		return nil, err
	}
	if rule != nil {
		return nil, rule.err()
	}
	return f.base.ReadFile(path)
}

// ReadDir implements FS.
func (f *Faulty) ReadDir(path string) ([]os.DirEntry, error) {
	if f.Crashed() {
		return nil, ErrCrashed
	}
	return f.base.ReadDir(path)
}

// Stat implements FS.
func (f *Faulty) Stat(path string) (os.FileInfo, error) {
	if f.Crashed() {
		return nil, ErrCrashed
	}
	return f.base.Stat(path)
}

// MkdirAll implements FS.
func (f *Faulty) MkdirAll(path string, perm os.FileMode) error {
	if f.Crashed() {
		return ErrCrashed
	}
	return f.base.MkdirAll(path, perm)
}

// Rename implements FS.
func (f *Faulty) Rename(oldPath, newPath string) error {
	rule, err := f.step(OpRename)
	if err != nil {
		return err
	}
	if rule != nil {
		return rule.err()
	}
	return f.base.Rename(oldPath, newPath)
}

// Remove implements FS.
func (f *Faulty) Remove(path string) error {
	rule, err := f.step(OpRemove)
	if err != nil {
		return err
	}
	if rule != nil {
		return rule.err()
	}
	return f.base.Remove(path)
}

// Truncate implements FS.
func (f *Faulty) Truncate(path string, size int64) error {
	rule, err := f.step(OpTruncate)
	if err != nil {
		return err
	}
	if rule != nil {
		return rule.err()
	}
	return f.base.Truncate(path, size)
}

// faultyFile routes file writes and syncs back through the wrapper's
// rules. A write fault may persist a prefix of the buffer (ShortBytes)
// before failing — the torn write recovery must cope with.
type faultyFile struct {
	fs *Faulty
	f  File
}

func (ff *faultyFile) Name() string { return ff.f.Name() }

func (ff *faultyFile) Write(b []byte) (int, error) {
	rule, err := ff.fs.step(OpWrite)
	if err != nil {
		return 0, err
	}
	if rule != nil {
		n := 0
		if rule.ShortBytes > 0 {
			short := rule.ShortBytes
			if short > len(b) {
				short = len(b)
			}
			n, _ = ff.f.Write(b[:short])
		}
		return n, rule.err()
	}
	return ff.f.Write(b)
}

func (ff *faultyFile) Sync() error {
	rule, err := ff.fs.step(OpSync)
	if err != nil {
		return err
	}
	if rule != nil {
		return rule.err()
	}
	return ff.f.Sync()
}

func (ff *faultyFile) Close() error {
	rule, err := ff.fs.step(OpClose)
	if err != nil {
		// Even a crashed filesystem lets the handle go; the underlying
		// file must not leak in long test runs. The injected error is
		// the one the test wants to see.
		_ = ff.f.Close()
		return err
	}
	if rule != nil {
		_ = ff.f.Close()
		return rule.err()
	}
	return ff.f.Close()
}

var _ FS = OS{}
var _ FS = (*Faulty)(nil)

// String renders the rule for test failure messages.
func (rule *Fault) String() string {
	return fmt.Sprintf("fault{%s #%d short=%d crash=%v}", rule.Op, rule.Countdown, rule.ShortBytes, rule.Crash)
}
