package faultfs

import (
	"fmt"
	"os"
)

// Deterministic at-rest corruption injectors for the bit-rot chaos
// harness. Unlike the Fault rules — which model syscalls failing while
// the store is running — these mutate bytes already durable on disk,
// the way a decaying sector or a buggy firmware write does: the store
// saw every write succeed, yet what it reads back later differs. Tests
// point them at a closed (or at least quiesced) store and then assert
// the scrubber finds exactly this damage.

// FlipBit inverts one bit of the file at path: bit 0–7 of the byte at
// off. Offsets may be negative to count from the end (-1 is the last
// byte).
func FlipBit(fsys FS, path string, off int64, bit uint) error {
	if bit > 7 {
		return fmt.Errorf("faultfs: flip bit %d: bit index out of range", bit)
	}
	return mutate(fsys, path, func(b []byte) error {
		i, err := resolve(off, len(b))
		if err != nil {
			return err
		}
		b[i] ^= 1 << bit
		return nil
	})
}

// ZeroRange overwrites n bytes starting at off with zeros — a hole a
// failed flush or a remapped sector leaves. off may be negative to
// count from the end.
func ZeroRange(fsys FS, path string, off, n int64) error {
	return mutate(fsys, path, func(b []byte) error {
		i, err := resolve(off, len(b))
		if err != nil {
			return err
		}
		if n < 0 || i+n > int64(len(b)) {
			return fmt.Errorf("faultfs: zero range [%d,%d) beyond %d-byte file", i, i+n, len(b))
		}
		for j := i; j < i+n; j++ {
			b[j] = 0
		}
		return nil
	})
}

// TruncateTail cuts the last n bytes off the file — the torn-write
// shape, but injected after the fact into an already-sealed file.
func TruncateTail(fsys FS, path string, n int64) error {
	fi, err := fsys.Stat(path)
	if err != nil {
		return fmt.Errorf("faultfs: truncate tail: %w", err)
	}
	size := fi.Size() - n
	if size < 0 {
		size = 0
	}
	return fsys.Truncate(path, size)
}

func resolve(off int64, size int) (int64, error) {
	if off < 0 {
		off += int64(size)
	}
	if off < 0 || off >= int64(size) {
		return 0, fmt.Errorf("faultfs: offset %d beyond %d-byte file", off, size)
	}
	return off, nil
}

// mutate rewrites path in place with fn applied to its bytes. The
// write is deliberately NOT atomic (no temp+rename): corruption does
// not announce itself with a fresh inode.
func mutate(fsys FS, path string, fn func([]byte) error) error {
	b, err := fsys.ReadFile(path)
	if err != nil {
		return fmt.Errorf("faultfs: corrupt %s: %w", path, err)
	}
	if err := fn(b); err != nil {
		return fmt.Errorf("faultfs: corrupt %s: %w", path, err)
	}
	f, err := fsys.OpenFile(path, os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("faultfs: corrupt %s: %w", path, err)
	}
	if _, err := f.Write(b); err != nil {
		_ = f.Close()
		return fmt.Errorf("faultfs: corrupt %s: %w", path, err)
	}
	if err := f.Sync(); err != nil {
		_ = f.Close()
		return fmt.Errorf("faultfs: corrupt %s: %w", path, err)
	}
	return f.Close()
}
