package faultfs

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func TestPassThroughCounts(t *testing.T) {
	dir := t.TempDir()
	fs := Wrap(OS{})
	f, err := fs.OpenFile(filepath.Join(dir, "a"), os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if got, _ := fs.ReadFile(filepath.Join(dir, "a")); string(got) != "hello" {
		t.Errorf("content %q", got)
	}
	for op, want := range map[Op]int{OpOpen: 1, OpWrite: 1, OpSync: 1, OpClose: 1} {
		if fs.Count(op) != want {
			t.Errorf("count(%s) = %d, want %d", op, fs.Count(op), want)
		}
	}
}

func TestShortWriteThenError(t *testing.T) {
	dir := t.TempDir()
	fs := Wrap(OS{}, &Fault{Op: OpWrite, Countdown: 2, ShortBytes: 3})
	f, _ := fs.OpenFile(filepath.Join(dir, "a"), os.O_CREATE|os.O_WRONLY, 0o644)
	if _, err := f.Write([]byte("first")); err != nil {
		t.Fatalf("first write: %v", err)
	}
	n, err := f.Write([]byte("second"))
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("second write err = %v", err)
	}
	if n != 3 {
		t.Fatalf("short write persisted %d bytes, want 3", n)
	}
	f.Close()
	got, _ := os.ReadFile(filepath.Join(dir, "a"))
	if string(got) != "firstsec" {
		t.Errorf("on disk %q, want %q", got, "firstsec")
	}
}

func TestSyncFault(t *testing.T) {
	dir := t.TempDir()
	want := errors.New("disk on fire")
	fs := Wrap(OS{}, &Fault{Op: OpSync, Countdown: 1, Err: want})
	f, _ := fs.OpenFile(filepath.Join(dir, "a"), os.O_CREATE|os.O_WRONLY, 0o644)
	defer f.Close()
	if err := f.Sync(); !errors.Is(err, want) {
		t.Fatalf("sync err = %v", err)
	}
}

func TestCrashStopsEverything(t *testing.T) {
	dir := t.TempDir()
	fs := Wrap(OS{}, &Fault{Op: OpWrite, Countdown: 1, ShortBytes: 2, Crash: true})
	f, _ := fs.OpenFile(filepath.Join(dir, "a"), os.O_CREATE|os.O_WRONLY, 0o644)
	if _, err := f.Write([]byte("abcdef")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("crashing write err = %v", err)
	}
	if !fs.Crashed() {
		t.Fatal("not crashed")
	}
	// All later operations fail, on any file or path.
	if _, err := f.Write([]byte("x")); !errors.Is(err, ErrCrashed) {
		t.Errorf("post-crash write err = %v", err)
	}
	if err := f.Sync(); !errors.Is(err, ErrCrashed) {
		t.Errorf("post-crash sync err = %v", err)
	}
	if _, err := fs.OpenFile(filepath.Join(dir, "b"), os.O_CREATE|os.O_WRONLY, 0o644); !errors.Is(err, ErrCrashed) {
		t.Errorf("post-crash open err = %v", err)
	}
	if err := fs.Rename(filepath.Join(dir, "a"), filepath.Join(dir, "c")); !errors.Is(err, ErrCrashed) {
		t.Errorf("post-crash rename err = %v", err)
	}
	// Only the pre-crash prefix made it to disk.
	f.Close()
	got, _ := os.ReadFile(filepath.Join(dir, "a"))
	if string(got) != "ab" {
		t.Errorf("on disk %q, want %q", got, "ab")
	}
}

func TestRenameFault(t *testing.T) {
	dir := t.TempDir()
	os.WriteFile(filepath.Join(dir, "a"), []byte("x"), 0o644)
	fs := Wrap(OS{}, &Fault{Op: OpRename, Countdown: 1, Crash: true})
	err := fs.Rename(filepath.Join(dir, "a"), filepath.Join(dir, "b"))
	if !errors.Is(err, ErrCrashed) {
		t.Fatalf("rename err = %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "a")); err != nil {
		t.Error("source vanished despite faulted rename")
	}
}

func TestReadFault(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "a")
	os.WriteFile(path, []byte("healthy"), 0o644)
	fs := Wrap(OS{}, &Fault{Op: OpRead, Countdown: 2})
	if got, err := fs.ReadFile(path); err != nil || string(got) != "healthy" {
		t.Fatalf("first read = %q, %v", got, err)
	}
	if _, err := fs.ReadFile(path); !errors.Is(err, ErrInjected) {
		t.Fatalf("second read err = %v, want injected fault", err)
	}
	if got, err := fs.ReadFile(path); err != nil || string(got) != "healthy" {
		t.Fatalf("third read = %q, %v — fault must fire exactly once", got, err)
	}
	if fs.Count(OpRead) != 3 {
		t.Fatalf("count(read) = %d, want 3", fs.Count(OpRead))
	}
}

func TestFlipBit(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "a")
	os.WriteFile(path, []byte{0x00, 0xff, 0x0f}, 0o644)
	if err := FlipBit(OS{}, path, 1, 3); err != nil {
		t.Fatal(err)
	}
	got, _ := os.ReadFile(path)
	if want := []byte{0x00, 0xf7, 0x0f}; string(got) != string(want) {
		t.Fatalf("after flip: %x, want %x", got, want)
	}
	// Negative offset counts from the end; flipping twice restores.
	if err := FlipBit(OS{}, path, -1, 0); err != nil {
		t.Fatal(err)
	}
	if err := FlipBit(OS{}, path, -1, 0); err != nil {
		t.Fatal(err)
	}
	got, _ = os.ReadFile(path)
	if want := []byte{0x00, 0xf7, 0x0f}; string(got) != string(want) {
		t.Fatalf("double flip not identity: %x, want %x", got, want)
	}
	if err := FlipBit(OS{}, path, 99, 0); err == nil {
		t.Fatal("offset beyond EOF must fail")
	}
	if err := FlipBit(OS{}, path, 0, 8); err == nil {
		t.Fatal("bit index 8 must fail")
	}
}

func TestZeroRangeAndTruncateTail(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "a")
	os.WriteFile(path, []byte("abcdefgh"), 0o644)
	if err := ZeroRange(OS{}, path, 2, 3); err != nil {
		t.Fatal(err)
	}
	got, _ := os.ReadFile(path)
	if want := "ab\x00\x00\x00fgh"; string(got) != want {
		t.Fatalf("after zero: %q, want %q", got, want)
	}
	if err := ZeroRange(OS{}, path, 6, 5); err == nil {
		t.Fatal("range beyond EOF must fail")
	}
	if err := TruncateTail(OS{}, path, 3); err != nil {
		t.Fatal(err)
	}
	got, _ = os.ReadFile(path)
	if want := "ab\x00\x00\x00"; string(got) != want {
		t.Fatalf("after truncate: %q, want %q", got, want)
	}
	// Cutting more than the file holds leaves an empty file, not an error.
	if err := TruncateTail(OS{}, path, 100); err != nil {
		t.Fatal(err)
	}
	if fi, _ := os.Stat(path); fi.Size() != 0 {
		t.Fatalf("size %d after over-truncate", fi.Size())
	}
}
