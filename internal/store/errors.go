package store

import (
	"errors"
	"fmt"
)

// Sentinel errors callers (notably the HTTP server) can test with
// errors.Is to distinguish "not found" from internal failures.
var (
	// ErrUnknownDocument reports that no document with the given
	// identifier is stored.
	ErrUnknownDocument = errors.New("unknown document")
	// ErrNoSuchVersion reports a version or delta index outside the
	// stored range.
	ErrNoSuchVersion = errors.New("no such version")
	// ErrCorrupt reports that on-disk store data (a snapshot file or a
	// journal segment) failed validation. Match with errors.Is; the
	// concrete *CorruptError names the file and offset.
	ErrCorrupt = errors.New("corrupt store data")
)

// CorruptError describes exactly where persisted data failed
// validation, so an operator can inspect or excise the damage instead
// of guessing. It matches ErrCorrupt under errors.Is.
type CorruptError struct {
	// File is the path of the damaged snapshot or journal file.
	File string
	// Offset is the byte offset of the damage within File, or -1 when
	// the failure concerns the file as a whole (unparseable snapshot,
	// bad version counter).
	Offset int64
	// Reason says what check failed.
	Reason string
	// Err is the underlying error, if any.
	Err error
}

// Error implements error.
func (e *CorruptError) Error() string {
	msg := fmt.Sprintf("store: corrupt data in %s", e.File)
	if e.Offset >= 0 {
		msg += fmt.Sprintf(" at offset %d", e.Offset)
	}
	if e.Reason != "" {
		msg += ": " + e.Reason
	}
	if e.Err != nil {
		msg += ": " + e.Err.Error()
	}
	return msg
}

// Is makes errors.Is(err, ErrCorrupt) true for any CorruptError.
func (e *CorruptError) Is(target error) bool { return target == ErrCorrupt }

// Unwrap exposes the underlying error to errors.Is/As chains.
func (e *CorruptError) Unwrap() error { return e.Err }

// corruptf builds a CorruptError for file at offset (use -1 for
// whole-file failures).
func corruptf(file string, offset int64, err error, format string, args ...any) *CorruptError {
	return &CorruptError{File: file, Offset: offset, Reason: fmt.Sprintf(format, args...), Err: err}
}
