package store

import "errors"

// Sentinel errors callers (notably the HTTP server) can test with
// errors.Is to distinguish "not found" from internal failures.
var (
	// ErrUnknownDocument reports that no document with the given
	// identifier is stored.
	ErrUnknownDocument = errors.New("unknown document")
	// ErrNoSuchVersion reports a version or delta index outside the
	// stored range.
	ErrNoSuchVersion = errors.New("no such version")
)
