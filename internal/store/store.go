// Package store implements the change-centric version repository the
// diff serves in the Xyleme architecture (the paper's Figure 1 and
// Section 2): each document is kept as its latest version plus the
// sequence of completed deltas connecting consecutive versions. Because
// deltas are completed (and therefore invertible), any past version can
// be reconstructed from the latest one, and "queries about the past"
// are queries over the stored delta documents.
//
// A store can be purely in-memory (New) or backed by a directory
// (Open). A backed store is crash-safe: every Put appends the version
// to a per-document write-ahead journal before it is acknowledged, and
// reopening the directory replays journals on top of the last snapshot
// (see journal.go and recover.go). Checkpoint writes a fresh snapshot
// and retires the replayed journal segments.
package store

import (
	"context"
	"fmt"
	"io"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"xydiff/internal/delta"
	"xydiff/internal/diff"
	"xydiff/internal/dom"
	"xydiff/internal/faultfs"
	"xydiff/internal/xid"
)

// Observer receives the detailed result of every successful non-initial
// Put: the version number the delta produced, the store's previous and
// new latest documents, and the diff result (delta plus phase timings).
// It is invoked synchronously under the document's lock, so per-document
// call order matches version order; it must not call back into the
// store for the same document and must not retain or mutate the
// document trees past its return.
type Observer func(id string, version int, oldDoc, newDoc *dom.Node, r *diff.Result)

// Store is a versioned XML repository. All methods are safe for
// concurrent use; writes to different documents diff in parallel,
// writes to the same document serialize on its history lock.
type Store struct {
	opts diff.Options
	obs  Observer

	mu   sync.RWMutex // guards the docs map only, never document contents
	docs map[string]*history

	// Durability attachment; zero for a purely in-memory store.
	dir      string
	fs       faultfs.FS
	policy   SyncPolicy
	interval time.Duration
	jmu      sync.Mutex // guards journals map and closed flag
	journals map[string]*journalWriter
	closed   bool
	stopSync chan struct{}
	syncDone chan struct{}
	stats    durabilityCounters
	recovery RecoveryStats
}

type history struct {
	mu       sync.RWMutex
	latest   *dom.Node      // current version, XIDs assigned
	deltas   []*delta.Delta // deltas[i] transforms version i+1 into version i+2
	versions int
}

// New returns an empty in-memory store whose diffs run with the given
// options. Nothing is persisted; use Open for a durable store.
func New(opts diff.Options) *Store {
	return &Store{opts: opts, docs: make(map[string]*history)}
}

// SetObserver installs the hook called after every versioning diff.
// It must be set before the store starts serving concurrent Puts.
func (s *Store) SetObserver(obs Observer) { s.obs = obs }

// get returns the history for id, or nil.
func (s *Store) get(id string) *history {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.docs[id]
}

// journaling reports whether Puts must reach the write-ahead journal
// before they are acknowledged.
func (s *Store) journaling() bool { return s.dir != "" }

// Put installs a new version of the document identified by id and
// returns its version number (1-based) and the delta from the previous
// version (nil for the first). The store keeps its own copy of doc.
func (s *Store) Put(id string, doc *dom.Node) (int, *delta.Delta, error) {
	return s.PutContext(context.Background(), id, doc)
}

// PutContext is Put honouring context cancellation: the diff against
// the previous version aborts with ctx.Err() once ctx is done, leaving
// the stored history untouched.
//
// On a journaling store the version is appended (and, under
// SyncAlways, fsynced) to the document's journal before PutContext
// returns: a nil error means the version survives a crash. A journal
// write failure leaves the in-memory history untouched and returns the
// error, so the version is neither acknowledged nor half-installed.
func (s *Store) PutContext(ctx context.Context, id string, doc *dom.Node) (int, *delta.Delta, error) {
	return s.putContext(ctx, id, doc, "")
}

// PutMatcherContext is PutContext with a per-call matcher override: a
// non-empty matcher replaces the store's configured Options.Matcher
// for this version's diff only. The stored delta format is identical
// for every matcher, so histories may freely mix them.
func (s *Store) PutMatcherContext(ctx context.Context, id string, doc *dom.Node, matcher diff.Matcher) (int, *delta.Delta, error) {
	return s.putContext(ctx, id, doc, matcher)
}

func (s *Store) putContext(ctx context.Context, id string, doc *dom.Node, matcher diff.Matcher) (int, *delta.Delta, error) {
	if doc == nil || doc.Type != dom.Document {
		return 0, nil, fmt.Errorf("store: need a Document node")
	}
	opts := s.opts
	if matcher != "" {
		opts.Matcher = matcher
	}
	s.mu.Lock()
	h := s.docs[id]
	if h == nil {
		h = &history{}
		s.docs[id] = h
	}
	s.mu.Unlock()

	h.mu.Lock()
	defer h.mu.Unlock()
	if h.versions == 0 {
		first := doc.Clone()
		xid.Assign(first)
		if s.journaling() {
			if err := s.journalAppend(id, 1, recordBase, first); err != nil {
				return 0, nil, err
			}
		}
		h.latest = first
		h.versions = 1
		return 1, nil, nil
	}
	next := doc.Clone()
	r, err := diff.DiffDetailedContext(ctx, h.latest, next, opts)
	if err != nil {
		return 0, nil, fmt.Errorf("store: diff %s: %w", id, err)
	}
	if s.journaling() {
		if err := s.journalAppend(id, h.versions+1, recordDelta, r.Delta); err != nil {
			return 0, nil, err
		}
	}
	old := h.latest
	h.deltas = append(h.deltas, r.Delta)
	h.latest = next
	h.versions++
	if s.obs != nil {
		s.obs(id, h.versions, old, next, r)
	}
	return h.versions, r.Delta, nil
}

// reading returns id's history read-locked, or an error when the
// document is unknown (a history published by a first Put still in
// flight counts as unknown). The caller must RUnlock it.
func (s *Store) reading(id string) (*history, error) {
	h := s.get(id)
	if h == nil {
		return nil, fmt.Errorf("store: %w %q", ErrUnknownDocument, id)
	}
	h.mu.RLock()
	if h.versions == 0 {
		h.mu.RUnlock()
		return nil, fmt.Errorf("store: %w %q", ErrUnknownDocument, id)
	}
	//xyvet:allow lockbalance -- deliberate handoff: the caller receives h read-locked and must RUnlock it
	return h, nil
}

// Latest returns a copy of the current version and its version number.
func (s *Store) Latest(id string) (*dom.Node, int, error) {
	h, err := s.reading(id)
	if err != nil {
		return nil, 0, err
	}
	defer h.mu.RUnlock()
	return h.latest.Clone(), h.versions, nil
}

// Versions returns how many versions of id are recorded (0 if none).
func (s *Store) Versions(id string) int {
	h := s.get(id)
	if h == nil {
		return 0
	}
	h.mu.RLock()
	defer h.mu.RUnlock()
	return h.versions
}

// IDs lists the stored document identifiers, sorted. Documents whose
// first Put is still in flight are omitted.
func (s *Store) IDs() []string {
	s.mu.RLock()
	hs := make(map[string]*history, len(s.docs))
	for id, h := range s.docs {
		hs[id] = h
	}
	s.mu.RUnlock()
	out := make([]string, 0, len(hs))
	for id, h := range hs {
		h.mu.RLock()
		ok := h.versions > 0
		h.mu.RUnlock()
		if ok {
			out = append(out, id)
		}
	}
	sort.Strings(out)
	return out
}

// applyInverse applies the inverse of d to doc.
func applyInverse(doc *dom.Node, d *delta.Delta) error {
	inv, err := d.Invert()
	if err != nil {
		return err
	}
	return delta.Apply(doc, inv)
}

// Version reconstructs version n (1-based) of the document by applying
// inverted deltas backward from the latest version — the paper's
// "reconstruct any version of the document given another version and
// the corresponding delta".
func (s *Store) Version(id string, n int) (*dom.Node, error) {
	h, err := s.reading(id)
	if err != nil {
		return nil, err
	}
	defer h.mu.RUnlock()
	if n < 1 || n > h.versions {
		return nil, fmt.Errorf("store: %s has versions 1..%d, not %d: %w", id, h.versions, n, ErrNoSuchVersion)
	}
	doc := h.latest.Clone()
	for v := h.versions; v > n; v-- {
		if err := applyInverse(doc, h.deltas[v-2]); err != nil {
			return nil, fmt.Errorf("store: reconstruct %s version %d: %w", id, n, err)
		}
	}
	return doc, nil
}

// Delta returns the stored delta that transforms version n into n+1.
func (s *Store) Delta(id string, n int) (*delta.Delta, error) {
	h, err := s.reading(id)
	if err != nil {
		return nil, err
	}
	defer h.mu.RUnlock()
	if n < 1 || n >= h.versions {
		return nil, fmt.Errorf("store: %s has deltas 1..%d, not %d: %w", id, h.versions-1, n, ErrNoSuchVersion)
	}
	return h.deltas[n-1], nil
}

// DeltasBetween returns the delta sequence transforming version from
// into version to. When from > to, the deltas are inverted and
// returned in reverse order, so applying them in order still works.
func (s *Store) DeltasBetween(id string, from, to int) ([]*delta.Delta, error) {
	h, err := s.reading(id)
	if err != nil {
		return nil, err
	}
	defer h.mu.RUnlock()
	if from < 1 || from > h.versions || to < 1 || to > h.versions {
		return nil, fmt.Errorf("store: version range %d..%d outside 1..%d: %w", from, to, h.versions, ErrNoSuchVersion)
	}
	var out []*delta.Delta
	switch {
	case from < to:
		for v := from; v < to; v++ {
			out = append(out, h.deltas[v-1])
		}
	case from > to:
		for v := from; v > to; v-- {
			inv, err := h.deltas[v-2].Invert()
			if err != nil {
				return nil, fmt.Errorf("store: invert %s delta %d: %w", id, v-1, err)
			}
			out = append(out, inv)
		}
	}
	return out, nil
}

// ---------------------------------------------------------------------------
// File persistence. Layout, under dir/:
//
//	<escaped id>/latest.xml      current snapshotted version
//	<escaped id>/versions        snapshot version counter (decimal)
//	<escaped id>/v1.xml          base version (canonical XIDs)
//	<escaped id>/delta-0001.xml  ... delta-(versions-1).xml
//	journal-<escaped id>.log     write-ahead journal (see journal.go)
//
// XIDs of the latest version are rebuilt on load by replaying deltas
// from version 1, whose XIDs are canonical post-order.
//
// Every snapshot file is written to a temporary name in the same
// directory and renamed into place, and the version counter is renamed
// last: a save interrupted at any point leaves either the previous
// consistent state or the new one, never a half-written file the
// counter points at. Versions newer than the snapshot live in the
// journal and are replayed over it on Open.

// Save writes a snapshot of the whole store under dir. It does not
// touch journals; a backed store should normally use Checkpoint, which
// snapshots into its own directory and retires the journal segments
// the snapshot covers.
func (s *Store) Save(dir string) error {
	fsys := s.fsOrOS()
	s.mu.RLock()
	hs := make(map[string]*history, len(s.docs))
	for id, h := range s.docs {
		hs[id] = h
	}
	s.mu.RUnlock()
	for id, h := range hs {
		h.mu.RLock()
		err := saveHistory(fsys, dir, id, h)
		h.mu.RUnlock()
		if err != nil {
			return err
		}
	}
	return nil
}

// Checkpoint snapshots a backed store into its directory and retires
// each document's replayed journal segment: after it returns, the
// snapshot alone reconstructs every version, and the journals hold only
// versions installed after the checkpoint began. Crash-safe at every
// point — the snapshot is written with atomic renames before a journal
// segment is removed, and journal records the snapshot already covers
// are skipped on replay.
func (s *Store) Checkpoint() error {
	if !s.journaling() {
		return fmt.Errorf("store: Checkpoint needs a directory-backed store (use Open)")
	}
	s.mu.RLock()
	hs := make(map[string]*history, len(s.docs))
	for id, h := range s.docs {
		hs[id] = h
	}
	s.mu.RUnlock()
	ids := make([]string, 0, len(hs))
	for id := range hs {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		if err := s.checkpointDoc(id, hs[id]); err != nil {
			return err
		}
	}
	s.stats.addCheckpoint()
	return nil
}

// checkpointDoc snapshots one document and retires its journal. The
// history read lock blocks Puts for this document, so the journal
// cannot grow between the snapshot and the retirement.
func (s *Store) checkpointDoc(id string, h *history) error {
	h.mu.RLock()
	defer h.mu.RUnlock()
	if h.versions == 0 {
		return nil
	}
	if err := saveHistory(s.fs, s.dir, id, h); err != nil {
		return fmt.Errorf("store: checkpoint %s: %w", id, err)
	}
	if err := s.journalRetire(id); err != nil {
		return fmt.Errorf("store: retire journal %s: %w", id, err)
	}
	return nil
}

// Close stops the background sync loop (SyncInterval stores), flushes
// and closes every open journal file. The store stays readable; writes
// after Close fail.
func (s *Store) Close() error {
	if !s.journaling() {
		return nil
	}
	s.jmu.Lock()
	if s.closed {
		s.jmu.Unlock()
		return nil
	}
	s.closed = true
	writers := make([]*journalWriter, 0, len(s.journals))
	for _, w := range s.journals {
		writers = append(writers, w)
	}
	s.journals = make(map[string]*journalWriter)
	s.jmu.Unlock()
	if s.stopSync != nil {
		close(s.stopSync)
		<-s.syncDone
	}
	var firstErr error
	for _, w := range writers {
		if err := w.close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// fsOrOS returns the attached filesystem, or the real one.
func (s *Store) fsOrOS() faultfs.FS {
	if s.fs != nil {
		return s.fs
	}
	return faultfs.OS{}
}

// saveHistory writes one document's snapshot; the caller holds at
// least a read lock on h.
func saveHistory(fsys faultfs.FS, dir, id string, h *history) error {
	if h.versions == 0 {
		return nil // first Put still in flight
	}
	sub := filepath.Join(dir, escapeID(id))
	if err := fsys.MkdirAll(sub, 0o755); err != nil {
		return err
	}
	// Persist version 1 (canonical XIDs) plus all deltas; the latest
	// version is recomputable, but store it too so readers can grab it
	// without replay.
	v1, err := versionLocked(h, 1)
	if err != nil {
		return err
	}
	if err := writeAtomic(fsys, filepath.Join(sub, "v1.xml"), v1.WriteTo); err != nil {
		return err
	}
	if err := writeAtomic(fsys, filepath.Join(sub, "latest.xml"), h.latest.WriteTo); err != nil {
		return err
	}
	for i, d := range h.deltas {
		if err := writeAtomic(fsys, filepath.Join(sub, deltaFile(i+1)), d.WriteTo); err != nil {
			return err
		}
	}
	counter := func(w io.Writer) (int64, error) {
		n, err := io.WriteString(w, strconv.Itoa(h.versions))
		return int64(n), err
	}
	return writeAtomic(fsys, filepath.Join(sub, "versions"), counter)
}

// writeAtomic writes via a temporary file in path's directory, syncs,
// and renames into place, so path is never observed half-written.
func writeAtomic(fsys faultfs.FS, path string, write func(io.Writer) (int64, error)) error {
	f, err := fsys.CreateTemp(filepath.Dir(path), "."+filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	defer fsys.Remove(tmp) // no-op once renamed
	if _, err := write(f); err != nil {
		_ = f.Close() // the write error is the one to report
		return err
	}
	if err := f.Sync(); err != nil {
		_ = f.Close() // the sync error is the one to report
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return fsys.Rename(tmp, path)
}

// Load reads a store previously written by Save or Open into memory,
// replaying any journal segments left beside the snapshot. The
// returned store is in-memory (not attached to dir); use Open to keep
// writing durably.
func Load(dir string, opts diff.Options) (*Store, error) {
	s := New(opts)
	if err := recoverInto(s, faultfs.OS{}, dir); err != nil {
		return nil, err
	}
	return s, nil
}

// versionLocked reconstructs version n; the caller holds h's lock.
func versionLocked(h *history, n int) (*dom.Node, error) {
	doc := h.latest.Clone()
	for v := h.versions; v > n; v-- {
		if err := applyInverse(doc, h.deltas[v-2]); err != nil {
			return nil, err
		}
	}
	return doc, nil
}

func deltaFile(n int) string { return fmt.Sprintf("delta-%04d.xml", n) }

// escapeID makes a document identifier safe as a directory name.
func escapeID(id string) string {
	var b strings.Builder
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '-', c == '.':
			b.WriteByte(c)
		default:
			fmt.Fprintf(&b, "_%02x", c)
		}
	}
	return b.String()
}

func unescapeID(s string) string {
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		if s[i] == '_' && i+2 < len(s) {
			if v, err := strconv.ParseUint(s[i+1:i+3], 16, 8); err == nil {
				b.WriteByte(byte(v))
				i += 2
				continue
			}
		}
		b.WriteByte(s[i])
	}
	return b.String()
}

// snapshotLoadOptions parse persisted XML with full fidelity: the
// serializer adds no indentation, so whitespace-only text in a
// snapshot or journal record is genuine document content and must
// survive the round-trip for XIDs to line up with the original parse.
func snapshotLoadOptions() dom.ParseOptions {
	return dom.ParseOptions{KeepWhitespace: true, KeepComments: true, KeepProcInsts: true}
}
