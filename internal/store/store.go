// Package store implements the change-centric version repository the
// diff serves in the Xyleme architecture (the paper's Figure 1 and
// Section 2): each document is kept as its latest version plus the
// sequence of completed deltas connecting consecutive versions. Because
// deltas are completed (and therefore invertible), any past version can
// be reconstructed from the latest one, and "queries about the past"
// are queries over the stored delta documents.
package store

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"xydiff/internal/delta"
	"xydiff/internal/diff"
	"xydiff/internal/dom"
	"xydiff/internal/xid"
)

// Store is an in-memory versioned XML repository. All methods are safe
// for concurrent use.
type Store struct {
	opts diff.Options

	mu   sync.RWMutex
	docs map[string]*history
}

type history struct {
	latest   *dom.Node      // current version, XIDs assigned
	deltas   []*delta.Delta // deltas[i] transforms version i+1 into version i+2
	versions int
}

// New returns an empty store whose diffs run with the given options.
func New(opts diff.Options) *Store {
	return &Store{opts: opts, docs: make(map[string]*history)}
}

// Put installs a new version of the document identified by id and
// returns its version number (1-based) and the delta from the previous
// version (nil for the first). The store keeps its own copy of doc.
func (s *Store) Put(id string, doc *dom.Node) (int, *delta.Delta, error) {
	if doc == nil || doc.Type != dom.Document {
		return 0, nil, fmt.Errorf("store: need a Document node")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	h := s.docs[id]
	if h == nil {
		first := doc.Clone()
		xid.Assign(first)
		s.docs[id] = &history{latest: first, versions: 1}
		return 1, nil, nil
	}
	next := doc.Clone()
	d, err := diff.Diff(h.latest, next, s.opts)
	if err != nil {
		return 0, nil, fmt.Errorf("store: diff %s: %w", id, err)
	}
	h.deltas = append(h.deltas, d)
	h.latest = next
	h.versions++
	return h.versions, d, nil
}

// Latest returns a copy of the current version and its version number.
func (s *Store) Latest(id string) (*dom.Node, int, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	h := s.docs[id]
	if h == nil {
		return nil, 0, fmt.Errorf("store: unknown document %q", id)
	}
	return h.latest.Clone(), h.versions, nil
}

// Versions returns how many versions of id are recorded (0 if none).
func (s *Store) Versions(id string) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if h := s.docs[id]; h != nil {
		return h.versions
	}
	return 0
}

// IDs lists the stored document identifiers, sorted.
func (s *Store) IDs() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.docs))
	for id := range s.docs {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Version reconstructs version n (1-based) of the document by applying
// inverted deltas backward from the latest version — the paper's
// "reconstruct any version of the document given another version and
// the corresponding delta".
func (s *Store) Version(id string, n int) (*dom.Node, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	h := s.docs[id]
	if h == nil {
		return nil, fmt.Errorf("store: unknown document %q", id)
	}
	if n < 1 || n > h.versions {
		return nil, fmt.Errorf("store: %s has versions 1..%d, not %d", id, h.versions, n)
	}
	doc := h.latest.Clone()
	for v := h.versions; v > n; v-- {
		if err := delta.Apply(doc, h.deltas[v-2].Invert()); err != nil {
			return nil, fmt.Errorf("store: reconstruct %s version %d: %w", id, n, err)
		}
	}
	return doc, nil
}

// Delta returns the stored delta that transforms version n into n+1.
func (s *Store) Delta(id string, n int) (*delta.Delta, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	h := s.docs[id]
	if h == nil {
		return nil, fmt.Errorf("store: unknown document %q", id)
	}
	if n < 1 || n >= h.versions {
		return nil, fmt.Errorf("store: %s has deltas 1..%d, not %d", id, h.versions-1, n)
	}
	return h.deltas[n-1], nil
}

// DeltasBetween returns the delta sequence transforming version from
// into version to. When from > to, the deltas are inverted and
// returned in reverse order, so applying them in order still works.
func (s *Store) DeltasBetween(id string, from, to int) ([]*delta.Delta, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	h := s.docs[id]
	if h == nil {
		return nil, fmt.Errorf("store: unknown document %q", id)
	}
	if from < 1 || from > h.versions || to < 1 || to > h.versions {
		return nil, fmt.Errorf("store: version range %d..%d outside 1..%d", from, to, h.versions)
	}
	var out []*delta.Delta
	switch {
	case from < to:
		for v := from; v < to; v++ {
			out = append(out, h.deltas[v-1])
		}
	case from > to:
		for v := from; v > to; v-- {
			out = append(out, h.deltas[v-2].Invert())
		}
	}
	return out, nil
}

// ---------------------------------------------------------------------------
// File persistence. Layout, under dir/<escaped id>/:
//
//	latest.xml     current version
//	versions       version counter (decimal)
//	delta-0001.xml ... delta-(versions-1).xml
//
// XIDs of the latest version are rebuilt on load by replaying deltas
// from version 1, whose XIDs are canonical post-order.

// Save writes the whole store under dir.
func (s *Store) Save(dir string) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	for id, h := range s.docs {
		sub := filepath.Join(dir, escapeID(id))
		if err := os.MkdirAll(sub, 0o755); err != nil {
			return err
		}
		// Persist version 1 (canonical XIDs) plus all deltas; the
		// latest version is recomputable, but store it too so readers
		// can grab it without replay.
		v1, err := s.versionLocked(h, 1)
		if err != nil {
			return err
		}
		if err := dom.WriteFile(filepath.Join(sub, "v1.xml"), v1); err != nil {
			return err
		}
		if err := dom.WriteFile(filepath.Join(sub, "latest.xml"), h.latest); err != nil {
			return err
		}
		if err := os.WriteFile(filepath.Join(sub, "versions"), []byte(strconv.Itoa(h.versions)), 0o644); err != nil {
			return err
		}
		for i, d := range h.deltas {
			f, err := os.Create(filepath.Join(sub, deltaFile(i+1)))
			if err != nil {
				return err
			}
			if _, err := d.WriteTo(f); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
		}
	}
	return nil
}

// Load reads a store previously written by Save.
func Load(dir string, opts diff.Options) (*Store, error) {
	s := New(opts)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		id := unescapeID(e.Name())
		sub := filepath.Join(dir, e.Name())
		raw, err := os.ReadFile(filepath.Join(sub, "versions"))
		if err != nil {
			return nil, fmt.Errorf("store: load %s: %w", id, err)
		}
		versions, err := strconv.Atoi(strings.TrimSpace(string(raw)))
		if err != nil || versions < 1 {
			return nil, fmt.Errorf("store: load %s: bad version counter %q", id, raw)
		}
		doc, err := dom.ParseFile(filepath.Join(sub, "v1.xml"))
		if err != nil {
			return nil, fmt.Errorf("store: load %s: %w", id, err)
		}
		xid.Assign(doc)
		h := &history{latest: doc, versions: 1}
		for v := 1; v < versions; v++ {
			f, err := os.Open(filepath.Join(sub, deltaFile(v)))
			if err != nil {
				return nil, fmt.Errorf("store: load %s: %w", id, err)
			}
			d, err := delta.Parse(f)
			f.Close()
			if err != nil {
				return nil, fmt.Errorf("store: load %s delta %d: %w", id, v, err)
			}
			if err := delta.Apply(h.latest, d); err != nil {
				return nil, fmt.Errorf("store: replay %s delta %d: %w", id, v, err)
			}
			h.deltas = append(h.deltas, d)
			h.versions++
		}
		s.docs[id] = h
	}
	return s, nil
}

func (s *Store) versionLocked(h *history, n int) (*dom.Node, error) {
	doc := h.latest.Clone()
	for v := h.versions; v > n; v-- {
		if err := delta.Apply(doc, h.deltas[v-2].Invert()); err != nil {
			return nil, err
		}
	}
	return doc, nil
}

func deltaFile(n int) string { return fmt.Sprintf("delta-%04d.xml", n) }

// escapeID makes a document identifier safe as a directory name.
func escapeID(id string) string {
	var b strings.Builder
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '-', c == '.':
			b.WriteByte(c)
		default:
			fmt.Fprintf(&b, "_%02x", c)
		}
	}
	return b.String()
}

func unescapeID(s string) string {
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		if s[i] == '_' && i+2 < len(s) {
			if v, err := strconv.ParseUint(s[i+1:i+3], 16, 8); err == nil {
				b.WriteByte(byte(v))
				i += 2
				continue
			}
		}
		b.WriteByte(s[i])
	}
	return b.String()
}
