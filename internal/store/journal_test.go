package store

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"xydiff/internal/diff"
)

func TestRecordRoundTrip(t *testing.T) {
	body := []byte(`<r><a>payload</a></r>`)
	rec := encodeRecord(recordDelta, 42, body)
	if len(rec) != journalHeaderLen+1+1+len(body) {
		t.Fatalf("record length %d", len(rec))
	}
	kind, version, got, err := decodePayload(rec[journalHeaderLen:])
	if err != nil {
		t.Fatal(err)
	}
	if kind != recordDelta || version != 42 || !bytes.Equal(got, body) {
		t.Fatalf("decoded kind=%d version=%d body=%q", kind, version, got)
	}
}

func TestParseSyncPolicy(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want SyncPolicy
	}{{"always", SyncAlways}, {"interval", SyncInterval}, {"off", SyncOff}} {
		got, err := ParseSyncPolicy(tc.in)
		if err != nil || got != tc.want {
			t.Errorf("ParseSyncPolicy(%q) = %v, %v", tc.in, got, err)
		}
		if got.String() != tc.in {
			t.Errorf("String() round trip: %q", got.String())
		}
	}
	if _, err := ParseSyncPolicy("sometimes"); err == nil {
		t.Error("bad policy accepted")
	}
}

// openJournaled builds a journal-only store (no checkpoint) with three
// versions of one document and returns its directory, the journal path
// and the serialized form of every version.
func openJournaled(t *testing.T) (dir, journal string, versions []string) {
	t.Helper()
	dir = t.TempDir()
	s, err := Open(dir, diff.Options{}, Durability{Sync: SyncOff})
	if err != nil {
		t.Fatal(err)
	}
	bodies := []string{
		`<r><a>1</a></r>`,
		`<r><a>2</a><b/></r>`,
		`<r><a>2</a><b/><c>three</c></r>`,
	}
	for _, b := range bodies {
		if _, _, err := s.Put("doc", parse(t, b)); err != nil {
			t.Fatal(err)
		}
	}
	for v := 1; v <= 3; v++ {
		doc, err := s.Version("doc", v)
		if err != nil {
			t.Fatal(err)
		}
		versions = append(versions, doc.String())
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	return dir, journalPath(dir, "doc"), versions
}

// reopen opens dir read-write through the real filesystem.
func reopen(t *testing.T, dir string) (*Store, error) {
	t.Helper()
	return Open(dir, diff.Options{}, Durability{Sync: SyncOff})
}

func assertCorrupt(t *testing.T, err error, wantFile string) *CorruptError {
	t.Helper()
	if err == nil {
		t.Fatal("damaged data accepted without error")
	}
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("error does not match ErrCorrupt: %v", err)
	}
	var ce *CorruptError
	if !errors.As(err, &ce) {
		t.Fatalf("no *CorruptError in chain: %v", err)
	}
	if ce.File != wantFile {
		t.Fatalf("corrupt file = %q, want %q", ce.File, wantFile)
	}
	return ce
}

func TestJournalTornTailRecoversPrefix(t *testing.T) {
	dir, journal, versions := openJournaled(t)
	raw, err := os.ReadFile(journal)
	if err != nil {
		t.Fatal(err)
	}
	// Cut the file mid-way through the last record: a torn append.
	cut := len(raw) - 5
	if err := os.WriteFile(journal, raw[:cut], 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := reopen(t, dir)
	if err != nil {
		t.Fatalf("torn tail refused: %v", err)
	}
	defer s.Close()
	if got := s.Versions("doc"); got != 2 {
		t.Fatalf("recovered %d versions, want 2 (torn third)", got)
	}
	for v := 1; v <= 2; v++ {
		doc, err := s.Version("doc", v)
		if err != nil {
			t.Fatal(err)
		}
		if doc.String() != versions[v-1] {
			t.Errorf("version %d differs after torn-tail recovery", v)
		}
	}
	if rec := s.RecoveryStats(); rec.TornTails != 1 {
		t.Errorf("TornTails = %d, want 1", rec.TornTails)
	}
	// The tail was truncated away, so a reopen sees a clean journal.
	s2, err := reopen(t, dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if rec := s2.RecoveryStats(); rec.TornTails != 0 {
		t.Errorf("second open still sees a torn tail: %+v", rec)
	}
}

func TestJournalTornTailAccumulatesNewPuts(t *testing.T) {
	dir, journal, _ := openJournaled(t)
	raw, _ := os.ReadFile(journal)
	os.WriteFile(journal, raw[:len(raw)-5], 0o644)
	s, err := reopen(t, dir)
	if err != nil {
		t.Fatal(err)
	}
	// A new Put after torn-tail truncation must append cleanly.
	if v, _, err := s.Put("doc", parse(t, `<r><fresh/></r>`)); err != nil || v != 3 {
		t.Fatalf("put after truncation: v=%d err=%v", v, err)
	}
	s.Close()
	s2, err := reopen(t, dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := s2.Versions("doc"); got != 3 {
		t.Fatalf("versions after reopen = %d, want 3", got)
	}
}

func TestJournalCorruptionTable(t *testing.T) {
	tests := []struct {
		name string
		mut  func(t *testing.T, raw []byte) []byte
	}{
		{"bit flip in first payload", func(t *testing.T, raw []byte) []byte {
			raw[journalHeaderLen+3] ^= 0x40
			return raw
		}},
		{"bit flip in stored crc", func(t *testing.T, raw []byte) []byte {
			raw[5] ^= 0x01
			return raw
		}},
		{"zero filled header", func(t *testing.T, raw []byte) []byte {
			for i := 0; i < journalHeaderLen; i++ {
				raw[i] = 0
			}
			return raw
		}},
		{"absurd length field", func(t *testing.T, raw []byte) []byte {
			raw[0], raw[1], raw[2], raw[3] = 0xff, 0xff, 0xff, 0xff
			return raw
		}},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			dir, journal, _ := openJournaled(t)
			raw, err := os.ReadFile(journal)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(journal, tc.mut(t, raw), 0o644); err != nil {
				t.Fatal(err)
			}
			_, err = reopen(t, dir)
			ce := assertCorrupt(t, err, journal)
			if ce.Offset != 0 {
				t.Errorf("offset = %d, want 0 (damage is in the first record)", ce.Offset)
			}
		})
	}
}

func TestJournalMidLogCorruptionReportsOffset(t *testing.T) {
	dir, journal, _ := openJournaled(t)
	raw, err := os.ReadFile(journal)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a byte inside the second record's payload; its offset is the
	// end of the first record.
	firstLen := int64(journalHeaderLen) + int64(raw[0])<<24 | int64(raw[1])<<16 | int64(raw[2])<<8 | int64(raw[3])
	raw[firstLen+journalHeaderLen+2] ^= 0x10
	if err := os.WriteFile(journal, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = reopen(t, dir)
	ce := assertCorrupt(t, err, journal)
	if ce.Offset != firstLen {
		t.Errorf("offset = %d, want %d (second record)", ce.Offset, firstLen)
	}
}

func TestSnapshotCorruptionTable(t *testing.T) {
	tests := []struct {
		name string
		file string
		mut  func(raw []byte) []byte
	}{
		{"bit flipped base version", "v1.xml", func(raw []byte) []byte {
			raw[1] ^= 0x20 // <r... -> mangled tag
			return raw
		}},
		{"zero filled delta", "delta-0001.xml", func(raw []byte) []byte {
			for i := range raw {
				raw[i] = 0
			}
			return raw
		}},
		{"truncated delta", "delta-0001.xml", func(raw []byte) []byte {
			return raw[:len(raw)/2]
		}},
		{"truncated base version", "v1.xml", func(raw []byte) []byte {
			return raw[:len(raw)/2]
		}},
		{"garbage version counter", "versions", func(raw []byte) []byte {
			return []byte("NaN")
		}},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			dir, sub := saveSample(t)
			target := filepath.Join(sub, tc.file)
			raw, err := os.ReadFile(target)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(target, tc.mut(raw), 0o644); err != nil {
				t.Fatal(err)
			}
			_, err = Load(dir, diff.Options{})
			ce := assertCorrupt(t, err, target)
			if ce.Offset != -1 {
				t.Errorf("offset = %d, want -1 (whole-file failure)", ce.Offset)
			}
		})
	}
}

func TestCheckpointRetiresJournal(t *testing.T) {
	dir, journal, versions := openJournaled(t)
	s, err := reopen(t, dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(journal); !os.IsNotExist(err) {
		t.Fatalf("journal still present after checkpoint: %v", err)
	}
	if got := s.DurabilityStats().Checkpoints; got != 1 {
		t.Errorf("Checkpoints = %d, want 1", got)
	}
	s.Close()
	// The snapshot alone must reconstruct everything.
	s2, err := reopen(t, dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	rec := s2.RecoveryStats()
	if rec.SnapshotVersions != 3 || rec.JournalRecords != 0 {
		t.Fatalf("recovery after checkpoint: %+v", rec)
	}
	for v := 1; v <= 3; v++ {
		doc, err := s2.Version("doc", v)
		if err != nil {
			t.Fatal(err)
		}
		if doc.String() != versions[v-1] {
			t.Errorf("version %d differs after checkpoint round trip", v)
		}
	}
}

func TestJournalSurvivesAlongsideSnapshot(t *testing.T) {
	// Checkpoint, then more Puts: recovery uses snapshot + journal.
	dir, _, _ := openJournaled(t)
	s, err := reopen(t, dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Put("doc", parse(t, `<r><post-checkpoint/></r>`)); err != nil {
		t.Fatal(err)
	}
	want4, err := s.Version("doc", 4)
	if err != nil {
		t.Fatal(err)
	}
	s.Close()
	s2, err := reopen(t, dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	rec := s2.RecoveryStats()
	if rec.SnapshotVersions != 3 || rec.JournalRecords != 1 {
		t.Fatalf("recovery split: %+v", rec)
	}
	got4, err := s2.Version("doc", 4)
	if err != nil {
		t.Fatal(err)
	}
	if got4.String() != want4.String() {
		t.Error("post-checkpoint version differs after reopen")
	}
}
