package store

import (
	"math/rand"
	"path/filepath"
	"testing"

	"xydiff/internal/changesim"
	"xydiff/internal/delta"
	"xydiff/internal/diff"
	"xydiff/internal/dom"
)

func parse(t *testing.T, s string) *dom.Node {
	t.Helper()
	d, err := dom.ParseString(s)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestPutAndLatest(t *testing.T) {
	s := New(diff.Options{})
	v, d, err := s.Put("doc", parse(t, `<a><b>1</b></a>`))
	if err != nil || v != 1 || d != nil {
		t.Fatalf("first Put = %d,%v,%v", v, d, err)
	}
	v, d, err = s.Put("doc", parse(t, `<a><b>2</b></a>`))
	if err != nil || v != 2 {
		t.Fatalf("second Put = %d,%v", v, err)
	}
	if d == nil || d.Count().Updates != 1 {
		t.Fatalf("second delta = %v", d)
	}
	latest, n, err := s.Latest("doc")
	if err != nil || n != 2 {
		t.Fatalf("Latest = %d,%v", n, err)
	}
	if latest.Root().Children[0].Children[0].Value != "2" {
		t.Fatal("Latest content wrong")
	}
	if s.Versions("doc") != 2 || s.Versions("nope") != 0 {
		t.Fatal("Versions wrong")
	}
	if ids := s.IDs(); len(ids) != 1 || ids[0] != "doc" {
		t.Fatalf("IDs = %v", ids)
	}
}

func TestQueryThePast(t *testing.T) {
	s := New(diff.Options{})
	texts := []string{
		`<log><e>one</e></log>`,
		`<log><e>one</e><e>two</e></log>`,
		`<log><e>two</e><e>three</e></log>`,
		`<log><e>three</e></log>`,
	}
	for _, x := range texts {
		if _, _, err := s.Put("log", parse(t, x)); err != nil {
			t.Fatal(err)
		}
	}
	for i, x := range texts {
		got, err := s.Version("log", i+1)
		if err != nil {
			t.Fatalf("Version(%d): %v", i+1, err)
		}
		want := parse(t, x)
		if !dom.Equal(got, want) {
			t.Fatalf("Version(%d) differs: %s", i+1, dom.Diagnose(got, want))
		}
	}
	if _, err := s.Version("log", 0); err == nil {
		t.Error("Version(0) accepted")
	}
	if _, err := s.Version("log", 5); err == nil {
		t.Error("Version(5) accepted")
	}
	if _, err := s.Version("ghost", 1); err == nil {
		t.Error("unknown id accepted")
	}
}

func TestDeltaAccessors(t *testing.T) {
	s := New(diff.Options{})
	s.Put("d", parse(t, `<a><x>1</x></a>`))
	s.Put("d", parse(t, `<a><x>2</x></a>`))
	s.Put("d", parse(t, `<a><x>3</x></a>`))
	d, err := s.Delta("d", 1)
	if err != nil || d.Count().Updates != 1 {
		t.Fatalf("Delta(1) = %v, %v", d, err)
	}
	if _, err := s.Delta("d", 3); err == nil {
		t.Error("Delta(3) should not exist with 3 versions")
	}
	fwd, err := s.DeltasBetween("d", 1, 3)
	if err != nil || len(fwd) != 2 {
		t.Fatalf("DeltasBetween(1,3) = %d,%v", len(fwd), err)
	}
	bwd, err := s.DeltasBetween("d", 3, 1)
	if err != nil || len(bwd) != 2 {
		t.Fatalf("DeltasBetween(3,1) = %d,%v", len(bwd), err)
	}
	same, err := s.DeltasBetween("d", 2, 2)
	if err != nil || len(same) != 0 {
		t.Fatalf("DeltasBetween(2,2) = %d,%v", len(same), err)
	}
	// Applying the backward chain to v3 must give v1.
	v3, _ := s.Version("d", 3)
	for _, bd := range bwd {
		if err := delta.Apply(v3, bd); err != nil {
			t.Fatal(err)
		}
	}
	v1, _ := s.Version("d", 1)
	if !dom.Equal(v3, v1) {
		t.Fatalf("backward chain: %s", dom.Diagnose(v3, v1))
	}
}

func TestPutRejectsNonDocument(t *testing.T) {
	s := New(diff.Options{})
	if _, _, err := s.Put("x", dom.NewElement("a")); err == nil {
		t.Error("element accepted")
	}
	if _, _, err := s.Put("x", nil); err == nil {
		t.Error("nil accepted")
	}
}

func TestPutDoesNotAliasCallerDocument(t *testing.T) {
	s := New(diff.Options{})
	doc := parse(t, `<a><b>1</b></a>`)
	s.Put("d", doc)
	doc.Root().Children[0].Children[0].Value = "mutated"
	latest, _, _ := s.Latest("d")
	if latest.Root().Children[0].Children[0].Value != "1" {
		t.Fatal("store aliased caller's document")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s := New(diff.Options{})
	rng := rand.New(rand.NewSource(31))
	doc := changesim.Catalog(rng, 2, 4)
	s.Put("catalog/main", doc)
	cur := doc
	for i := 0; i < 4; i++ {
		res, err := changesim.Simulate(cur, changesim.Uniform(0.1, int64(i+1)))
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := s.Put("catalog/main", res.New); err != nil {
			t.Fatal(err)
		}
		cur = res.New
	}
	if err := s.Save(dir); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(dir, diff.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Versions("catalog/main") != 5 {
		t.Fatalf("loaded versions = %d, want 5", loaded.Versions("catalog/main"))
	}
	for v := 1; v <= 5; v++ {
		want, err := s.Version("catalog/main", v)
		if err != nil {
			t.Fatal(err)
		}
		got, err := loaded.Version("catalog/main", v)
		if err != nil {
			t.Fatal(err)
		}
		if !dom.Equal(got, want) {
			t.Fatalf("loaded version %d differs: %s", v, dom.Diagnose(got, want))
		}
	}
	// The loaded store must keep working: install another version.
	res, err := changesim.Simulate(cur, changesim.Uniform(0.1, 99))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := loaded.Put("catalog/main", res.New); err != nil {
		t.Fatalf("Put after Load: %v", err)
	}
	got, err := loaded.Version("catalog/main", 6)
	if err != nil {
		t.Fatal(err)
	}
	if !dom.Equal(got, res.New) {
		t.Fatal("version 6 after load wrong")
	}
}

func TestLoadMissingDir(t *testing.T) {
	if _, err := Load(filepath.Join(t.TempDir(), "nope"), diff.Options{}); err == nil {
		t.Error("missing directory accepted")
	}
}

func TestEscapeID(t *testing.T) {
	for _, id := range []string{"plain", "with/slash", "dots.and-dash", "spaces here", "UPPER", "a_b"} {
		if got := unescapeID(escapeID(id)); got != id {
			t.Errorf("escape round trip %q -> %q", id, got)
		}
	}
	if escapeID("a/b") == "a/b" {
		t.Error("slash must be escaped")
	}
}
