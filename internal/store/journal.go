package store

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"xydiff/internal/faultfs"
)

// The write-ahead journal makes Put durable: before a version is
// acknowledged, a record carrying it is appended to the document's
// journal file. Records are length-prefixed and checksummed so that
// recovery can tell a torn tail (partial append cut short by a crash —
// harmless, the version was never acknowledged) from mid-log
// corruption (bit rot or tampering — refused with ErrCorrupt).
//
// On-disk record layout, all integers big-endian:
//
//	+0  uint32  payload length
//	+4  uint32  CRC32-C (Castagnoli) of the payload
//	+8  payload:
//	      1 byte   record kind (recordBase | recordDelta)
//	      uvarint  version number the record produces
//	      bytes    XML body — the version-1 document for recordBase,
//	               the completed delta for recordDelta
//
// A document's journal is dir/journal-<escaped id>.log. Records are
// written with a single Write call, so a crash leaves either a fully
// present record or a short tail, never interleaved halves.

// Record kinds.
const (
	recordBase  byte = 1 // full document, always version 1
	recordDelta byte = 2 // completed delta producing its version
)

const (
	journalHeaderLen = 8
	journalPrefix    = "journal-"
	journalSuffix    = ".log"
	// maxRecordLen bounds a single journal record; anything larger is
	// treated as corruption (a random length field from zeroed or
	// flipped bytes would otherwise make recovery read gigabytes).
	maxRecordLen = 1 << 30
)

// castagnoli is the CRC32-C table used by the journal (same polynomial
// as iSCSI and most modern WALs; hardware-accelerated on amd64/arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// SyncPolicy says when journal appends reach stable storage.
type SyncPolicy int

// Journal sync policies.
const (
	// SyncAlways fsyncs the journal before a Put is acknowledged: an
	// acknowledged version survives power loss.
	SyncAlways SyncPolicy = iota
	// SyncInterval fsyncs open journals on a timer (Durability
	// .Interval, default 100ms): a crash loses at most the last
	// interval's acknowledged versions.
	SyncInterval
	// SyncOff never fsyncs explicitly; the OS flushes when it pleases.
	// A kernel crash or power loss can lose recent acknowledged
	// versions, a plain process crash cannot.
	SyncOff
)

// String renders the flag spelling of the policy.
func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncInterval:
		return "interval"
	case SyncOff:
		return "off"
	default:
		return fmt.Sprintf("syncpolicy(%d)", int(p))
	}
}

// ParseSyncPolicy reads the flag spelling of a policy.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "always":
		return SyncAlways, nil
	case "interval":
		return SyncInterval, nil
	case "off":
		return SyncOff, nil
	default:
		return 0, fmt.Errorf("store: unknown sync policy %q (want always, interval or off)", s)
	}
}

// Durability configures Open. The zero value is the safest: SyncAlways
// through the real filesystem.
type Durability struct {
	// Sync is the journal fsync policy.
	Sync SyncPolicy
	// Interval is the flush period under SyncInterval (default 100ms).
	Interval time.Duration
	// FS overrides the filesystem (fault-injection tests); nil means
	// the real one.
	FS faultfs.FS
}

// DurabilityStats counts journal activity since the store opened.
type DurabilityStats struct {
	// Appends is how many journal records were written.
	Appends int64
	// AppendedBytes is the total size of those records, headers included.
	AppendedBytes int64
	// Syncs is how many journal fsyncs completed.
	Syncs int64
	// Checkpoints is how many snapshot+compaction cycles completed.
	Checkpoints int64
}

// durabilityCounters is the lock-free mutable form of DurabilityStats.
type durabilityCounters struct {
	appends, appendedBytes, syncs, checkpoints atomic.Int64
}

func (c *durabilityCounters) addAppend(bytes int64) {
	c.appends.Add(1)
	c.appendedBytes.Add(bytes)
}
func (c *durabilityCounters) addSync()       { c.syncs.Add(1) }
func (c *durabilityCounters) addCheckpoint() { c.checkpoints.Add(1) }

// DurabilityStats returns a snapshot of the journal activity counters
// (all zero for an in-memory store).
func (s *Store) DurabilityStats() DurabilityStats {
	return DurabilityStats{
		Appends:       s.stats.appends.Load(),
		AppendedBytes: s.stats.appendedBytes.Load(),
		Syncs:         s.stats.syncs.Load(),
		Checkpoints:   s.stats.checkpoints.Load(),
	}
}

// SyncPolicy returns the journal sync policy of a backed store.
func (s *Store) SyncPolicy() SyncPolicy { return s.policy }

// journalPath returns the journal file path for a document.
func journalPath(dir, id string) string {
	return filepath.Join(dir, journalPrefix+escapeID(id)+journalSuffix)
}

// encodeRecord renders one journal record: header plus payload.
func encodeRecord(kind byte, version int, body []byte) []byte {
	payload := make([]byte, 0, 1+binary.MaxVarintLen64+len(body))
	payload = append(payload, kind)
	payload = binary.AppendUvarint(payload, uint64(version))
	payload = append(payload, body...)
	rec := make([]byte, journalHeaderLen, journalHeaderLen+len(payload))
	binary.BigEndian.PutUint32(rec[0:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(rec[4:8], crc32.Checksum(payload, castagnoli))
	return append(rec, payload...)
}

// decodePayload splits a verified payload into kind, version and body.
func decodePayload(payload []byte) (kind byte, version int, body []byte, err error) {
	if len(payload) < 2 {
		return 0, 0, nil, fmt.Errorf("payload too short (%d bytes)", len(payload))
	}
	kind = payload[0]
	v, n := binary.Uvarint(payload[1:])
	if n <= 0 || v == 0 || v > 1<<31 {
		return 0, 0, nil, fmt.Errorf("bad version varint")
	}
	return kind, int(v), payload[1+n:], nil
}

// journalWriter owns one document's journal file: an append-only
// handle plus the offset of the last fully written record, so a failed
// append can be cut back off instead of poisoning the log for every
// later record.
type journalWriter struct {
	mu   sync.Mutex
	fs   faultfs.FS
	path string
	f    faultfs.File
	off  int64 // end of the last complete record on disk
}

// openJournalWriter opens (creating if needed) the journal for
// appending, positioned after the existing content. Recovery has
// already truncated any torn tail by the time a writer opens.
func openJournalWriter(fsys faultfs.FS, path string) (*journalWriter, error) {
	f, err := fsys.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	off := int64(0)
	if fi, err := fsys.Stat(path); err == nil {
		off = fi.Size()
	}
	return &journalWriter{fs: fsys, path: path, f: f, off: off}, nil
}

// append writes one record, optionally fsyncing, as a single Write. On
// failure it truncates the file back to the last good offset so a
// short write cannot masquerade as mid-log corruption later; if even
// the truncate fails the error reports both.
func (w *journalWriter) append(rec []byte, syncNow bool) (int64, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if _, err := w.f.Write(rec); err != nil {
		if terr := w.fs.Truncate(w.path, w.off); terr != nil {
			return 0, fmt.Errorf("journal append failed (%w) and truncate back to %d failed (%w)", err, w.off, terr)
		}
		return 0, fmt.Errorf("journal append: %w", err)
	}
	w.off += int64(len(rec))
	if syncNow {
		if err := w.f.Sync(); err != nil {
			return 0, fmt.Errorf("journal sync: %w", err)
		}
	}
	return int64(len(rec)), nil
}

func (w *journalWriter) sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.f.Sync()
}

func (w *journalWriter) close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	syncErr := w.f.Sync()
	if err := w.f.Close(); err != nil {
		return err
	}
	return syncErr
}

// journalFor returns (creating if needed) the journal writer for id.
func (s *Store) journalFor(id string) (*journalWriter, error) {
	s.jmu.Lock()
	defer s.jmu.Unlock()
	if s.closed {
		return nil, fmt.Errorf("store: closed")
	}
	if w := s.journals[id]; w != nil {
		return w, nil
	}
	w, err := openJournalWriter(s.fs, journalPath(s.dir, id))
	if err != nil {
		return nil, fmt.Errorf("store: open journal for %s: %w", id, err)
	}
	s.journals[id] = w
	return w, nil
}

// journalAppend serializes content (a *dom.Node base document or a
// *delta.Delta) into a record for version and appends it to id's
// journal, honouring the store's sync policy. Called from Put under
// the document's write lock, before the in-memory commit.
func (s *Store) journalAppend(id string, version int, kind byte, content io.WriterTo) error {
	var body bytes.Buffer
	if _, err := content.WriteTo(&body); err != nil {
		return fmt.Errorf("store: serialize journal record for %s version %d: %w", id, version, err)
	}
	w, err := s.journalFor(id)
	if err != nil {
		return err
	}
	rec := encodeRecord(kind, version, body.Bytes())
	n, err := w.append(rec, s.policy == SyncAlways)
	if err != nil {
		return fmt.Errorf("store: journal %s version %d: %w", id, version, err)
	}
	s.stats.addAppend(n)
	if s.policy == SyncAlways {
		s.stats.addSync()
	}
	return nil
}

// journalRetire removes a document's journal file after a checkpoint
// covered its content. The caller holds the document's history lock,
// so no append can race the removal.
func (s *Store) journalRetire(id string) error {
	s.jmu.Lock()
	w := s.journals[id]
	delete(s.journals, id)
	s.jmu.Unlock()
	if w != nil {
		if err := w.close(); err != nil {
			return err
		}
	}
	path := journalPath(s.dir, id)
	if err := s.fs.Remove(path); err != nil {
		if _, statErr := s.fs.Stat(path); statErr != nil {
			return nil // never created — nothing to retire
		}
		return err
	}
	return nil
}

// syncLoop is the SyncInterval flusher: it fsyncs every open journal
// once per interval until Close.
func (s *Store) syncLoop() {
	defer close(s.syncDone)
	t := time.NewTicker(s.interval)
	defer t.Stop()
	for {
		select {
		case <-s.stopSync:
			return
		case <-t.C:
			s.jmu.Lock()
			writers := make([]*journalWriter, 0, len(s.journals))
			for _, w := range s.journals {
				writers = append(writers, w)
			}
			s.jmu.Unlock()
			for _, w := range writers {
				if err := w.sync(); err == nil {
					s.stats.addSync()
				}
			}
		}
	}
}
