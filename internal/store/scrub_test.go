package store

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"xydiff/internal/diff"
	"xydiff/internal/dom"
	"xydiff/internal/faultfs"
	"xydiff/internal/scrub"
)

// seedLegacy builds a closed legacy-layout store: a snapshotted chain
// for "snap" (checkpointed, journal retired... then extended so a
// journal exists too) and a journal-only document "live". Returns the
// serialized ground truth per id/version.
func seedLegacy(t *testing.T, dir string) map[string][]string {
	t.Helper()
	s, err := Open(dir, diff.Options{}, Durability{Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	want := map[string][]string{}
	put := func(id string, v int) {
		body := fmt.Sprintf(`<doc id=%q><rev>%d</rev><body>payload %d</body></doc>`, id, v, v)
		n, err := dom.ParseString(body)
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := s.Put(id, n); err != nil {
			t.Fatal(err)
		}
		got, err := s.Version(id, v)
		if err != nil {
			t.Fatal(err)
		}
		want[id] = append(want[id], got.String())
	}
	put("snap", 1)
	put("snap", 2)
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	put("snap", 3) // journal record on top of the snapshot
	put("live", 1)
	put("live", 2)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	return want
}

// checkLegacy reopens the directory and byte-compares every version.
func checkLegacy(t *testing.T, dir string, want map[string][]string) {
	t.Helper()
	s, err := Open(dir, diff.Options{}, Durability{Sync: SyncOff})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for id, versions := range want {
		for v := 1; v <= len(versions); v++ {
			doc, err := s.Version(id, v)
			if err != nil {
				t.Fatalf("Version(%s,%d): %v", id, v, err)
			}
			if got := doc.String(); got != versions[v-1] {
				t.Fatalf("%s v%d diverged:\n got %s\nwant %s", id, v, got, versions[v-1])
			}
		}
	}
}

func scrubDir(t *testing.T, dir string, repair bool) scrub.Report {
	t.Helper()
	rep, err := ScrubDir(context.Background(), nil, dir, scrub.Config{Throttle: -1, Repair: repair})
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func TestScrubDirClean(t *testing.T) {
	dir := t.TempDir()
	want := seedLegacy(t, dir)
	rep := scrubDir(t, dir, true)
	if rep.Found != 0 {
		t.Fatalf("clean dir reported damage: %+v", rep.Findings)
	}
	if rep.SegmentsScanned == 0 || rep.SnapshotsScanned == 0 || rep.RecordsVerified == 0 {
		t.Fatalf("pass skipped files: %+v", rep)
	}
	checkLegacy(t, dir, want)
}

func TestScrubDirQuarantinesDamagedJournal(t *testing.T) {
	dir := t.TempDir()
	seedLegacy(t, dir)
	victim := filepath.Join(dir, journalPrefix+"live"+journalSuffix)
	if err := faultfs.FlipBit(faultfs.OS{}, victim, 12, 5); err != nil {
		t.Fatal(err)
	}
	rep := scrubDir(t, dir, true)
	if rep.Quarantined != 1 || rep.Repaired != 0 || rep.Degraded != 1 {
		t.Fatalf("want 1 quarantine + 1 degraded, got %+v", rep)
	}
	if _, err := os.Stat(victim + scrub.QuarantineSuffix); err != nil {
		t.Fatalf("quarantine file missing: %v", err)
	}
	// The quarantined journal must never be re-adopted: the directory
	// reopens, serving the documents that survive, and never a byte of
	// the damaged file.
	s, err := Open(dir, diff.Options{}, Durability{Sync: SyncOff})
	if err != nil {
		t.Fatalf("reopen after quarantine: %v", err)
	}
	defer s.Close()
	if s.Versions("live") != 0 {
		t.Fatalf("quarantined journal leaked %d versions", s.Versions("live"))
	}
	if s.Versions("snap") != 3 {
		t.Fatalf("unrelated document lost: %d versions", s.Versions("snap"))
	}
}

func TestScrubDirRepairsSnapshotFromJournal(t *testing.T) {
	// Not repairable: "snap" was checkpointed, so its journal holds
	// only the post-checkpoint delta — no base record to rebuild from.
	// Corrupting its snapshot must quarantine and degrade.
	dir := t.TempDir()
	seedLegacy(t, dir)
	badV1 := filepath.Join(dir, escapeID("snap"), "v1.xml")
	if err := faultfs.FlipBit(faultfs.OS{}, badV1, 2, 1); err != nil {
		t.Fatal(err)
	}
	if rep := scrubDir(t, dir, true); rep.Quarantined != 1 || rep.Degraded != 1 || rep.Repaired != 0 {
		t.Fatalf("unrebuildable snapshot: want quarantine+degrade, got %+v", rep)
	}

	// The genuinely repairable shape: a document whose journal
	// still starts at the base record (no checkpoint since).
	dir2 := t.TempDir()
	want2 := seedLegacy(t, dir2)
	// Write a snapshot for "live" without retiring its journal, then
	// corrupt the snapshot: the journal still reconstructs everything.
	s, err := Open(dir2, diff.Options{}, Durability{Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Save(dir2); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	sub := filepath.Join(dir2, escapeID("live"))
	if err := faultfs.ZeroRange(faultfs.OS{}, filepath.Join(sub, "v1.xml"), 1, 6); err != nil {
		t.Fatal(err)
	}
	rep := scrubDir(t, dir2, true)
	if rep.Repaired != 1 || rep.Degraded != 0 {
		t.Fatalf("want 1 repair, got %+v", rep)
	}
	if _, err := os.Stat(sub + scrub.QuarantineSuffix); err != nil {
		t.Fatalf("damaged snapshot not preserved in quarantine: %v", err)
	}
	if rep2 := scrubDir(t, dir2, true); rep2.Found != 0 {
		t.Fatalf("repaired dir still damaged: %+v", rep2.Findings)
	}
	checkLegacy(t, dir2, want2)
}

func TestScrubDirRepairsLatestCopy(t *testing.T) {
	dir := t.TempDir()
	want := seedLegacy(t, dir)
	latest := filepath.Join(dir, escapeID("snap"), "latest.xml")
	if err := os.WriteFile(latest, []byte("<doc>not the real latest</doc>"), 0o644); err != nil {
		t.Fatal(err)
	}
	rep := scrubDir(t, dir, true)
	if rep.Repaired != 1 || rep.Degraded != 0 {
		t.Fatalf("want latest.xml repaired, got %+v", rep)
	}
	if len(rep.Findings) != 1 || !strings.Contains(rep.Findings[0].Reason, "diverges") {
		t.Fatalf("finding = %+v", rep.Findings)
	}
	if rep2 := scrubDir(t, dir, true); rep2.Found != 0 {
		t.Fatalf("still damaged after repair: %+v", rep2.Findings)
	}
	checkLegacy(t, dir, want)

	// Without repair the derived copy is quarantined, not rewritten,
	// and the document is still not degraded (the chain is intact).
	if err := os.WriteFile(latest, []byte("<doc>wrong again</doc>"), 0o644); err != nil {
		t.Fatal(err)
	}
	rep3 := scrubDir(t, dir, false)
	if rep3.Quarantined != 1 || rep3.Degraded != 0 {
		t.Fatalf("want quarantine without degrade, got %+v", rep3)
	}
	if _, err := os.Stat(latest + scrub.QuarantineSuffix); err != nil {
		t.Fatalf("latest.xml quarantine missing: %v", err)
	}
}

func TestScrubDirTornTailIsNotDamage(t *testing.T) {
	dir := t.TempDir()
	want := seedLegacy(t, dir)
	victim := filepath.Join(dir, journalPrefix+"live"+journalSuffix)
	if err := faultfs.TruncateTail(faultfs.OS{}, victim, 3); err != nil {
		t.Fatal(err)
	}
	rep := scrubDir(t, dir, true)
	if rep.Found != 0 {
		t.Fatalf("torn tail misread as damage: %+v", rep.Findings)
	}
	// Recovery truncates the tail; v1 survives, v2 (the torn record)
	// was the victim of our truncation, so only check v1 is intact.
	s, err := Open(dir, diff.Options{}, Durability{Sync: SyncOff})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	doc, err := s.Version("live", 1)
	if err != nil {
		t.Fatal(err)
	}
	if doc.String() != want["live"][0] {
		t.Fatal("v1 diverged after torn-tail truncation")
	}
}
