package store

import (
	"bytes"
	"context"
	"fmt"
	"path/filepath"
	"strings"
	"time"

	"xydiff/internal/diff"
	"xydiff/internal/dom"
	"xydiff/internal/faultfs"
	"xydiff/internal/scrub"
)

// ScrubDir runs one offline integrity pass over a per-document store
// directory (the legacy layout): every journal record is CRC-walked
// and decoded, every snapshot directory is cross-checked by actually
// reconstructing the version chain (base parsed, every delta parsed
// and applied), and the redundant latest.xml copy is compared against
// the reconstruction. The store must be closed — ScrubDir owns the
// directory for the duration (the `xystore scrub` subcommand is the
// intended caller).
//
// Damage classification mirrors the sharded engine's scrubber:
//
//   - latest.xml divergence is repaired in place from the
//     reconstructed chain when cfg.Repair is set (it is a derived
//     copy; the chain is authoritative), else quarantined alone.
//   - a corrupt snapshot directory is repaired by replaying the
//     document's journal — possible only while the journal still
//     carries the base record — and rewriting the snapshot through
//     the usual write → fsync → rename path; otherwise the directory
//     is quarantined and the document counts as degraded.
//   - a journal with mid-log damage is always quarantined, never
//     rewritten: versions past its snapshot exist nowhere else
//     offline, so the document counts as degraded. (The sharded
//     engine can do better because its resident chains make every
//     acknowledged byte redundant while the store is open.)
//
// Quarantined files are renamed aside with scrub.QuarantineSuffix and
// never deleted. A torn record at a journal's tail is a crash
// artifact, not damage — recovery truncates it — and is left alone.
func ScrubDir(ctx context.Context, fsys faultfs.FS, dir string, cfg scrub.Config) (scrub.Report, error) {
	if fsys == nil {
		fsys = faultfs.OS{}
	}
	start := time.Now()
	rate := cfg.Throttle
	if rate == 0 {
		rate = scrub.DefaultThrottle
	}
	th := scrub.NewThrottle(rate)
	var rep scrub.Report

	entries, err := fsys.ReadDir(dir)
	if err != nil {
		return rep, fmt.Errorf("store: scrub %s: %w", dir, err)
	}
	// Journals first: snapshot repair needs to know which journals
	// survived verification.
	journalOK := make(map[string]string) // id → path of an intact journal
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasPrefix(name, journalPrefix) || !strings.HasSuffix(name, journalSuffix) {
			continue
		}
		if ctx.Err() != nil {
			break
		}
		id := unescapeID(strings.TrimSuffix(strings.TrimPrefix(name, journalPrefix), journalSuffix))
		path := filepath.Join(dir, name)
		fi, err := fsys.Stat(path)
		if err != nil {
			continue
		}
		if th.Take(ctx, fi.Size()) != nil {
			break
		}
		data, err := fsys.ReadFile(path)
		if err != nil {
			quarantineJournal(fsys, path, &rep, -1, fmt.Sprintf("read failed: %v", err))
			continue
		}
		rep.SegmentsScanned++
		rep.BytesScanned += int64(len(data))
		records := int64(0)
		d := scrub.WalkLog(data, func(off int64, payload []byte) error {
			if _, _, _, derr := decodePayload(payload); derr != nil {
				return derr
			}
			records++
			return nil
		})
		rep.RecordsVerified += records
		switch {
		case d == nil:
			journalOK[id] = path
		case d.Torn:
			// A torn tail is the one legitimate way a journal ends
			// early (crash mid-append; the version was never
			// acknowledged). The intact prefix is still usable.
			journalOK[id] = path
		default:
			quarantineJournal(fsys, path, &rep, d.Offset, d.Reason)
		}
	}

	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() || strings.Contains(name, scrub.QuarantineSuffix) {
			continue
		}
		if ctx.Err() != nil {
			break
		}
		id := unescapeID(name)
		sub := filepath.Join(dir, name)
		if th.Take(ctx, dirSize(fsys, sub)) != nil {
			break
		}
		h, _, err := loadSnapshot(fsys, sub, id)
		if err != nil {
			scrubBadSnapshot(fsys, dir, sub, id, journalOK[id], cfg.Repair, &rep, err)
			continue
		}
		if h == nil {
			continue // no counter: half-written snapshot, replaced by the next checkpoint
		}
		rep.SnapshotsScanned++
		scrubLatestCopy(fsys, sub, h, cfg.Repair, &rep)
	}
	rep.Duration = time.Since(start)
	return rep, ctx.Err()
}

// quarantineJournal sets a damaged journal aside and counts its
// document as degraded: the journal is the only offline copy of
// versions past the snapshot, so part of the history is unprovable.
func quarantineJournal(fsys faultfs.FS, path string, rep *scrub.Report, off int64, reason string) {
	f := scrub.Finding{Path: path, Offset: off, Reason: reason, Action: scrub.ActionDetected}
	if _, err := scrub.Quarantine(fsys, path); err == nil {
		f.Action = scrub.ActionQuarantined
	}
	rep.Degraded++
	rep.Note(f)
}

// scrubBadSnapshot handles a snapshot directory that failed chain
// reconstruction: rebuilt from the journal when possible (a true
// repair — the journal's base record plus deltas reproduce the whole
// chain), quarantined otherwise.
func scrubBadSnapshot(fsys faultfs.FS, dir, sub, id, journal string, repair bool, rep *scrub.Report, cause error) {
	f := scrub.Finding{Path: sub, Offset: -1, Reason: cause.Error(), Action: scrub.ActionDetected}
	if repair && journal != "" {
		if h := replayForRepair(fsys, journal, id); h != nil {
			if _, qerr := scrub.Quarantine(fsys, sub); qerr == nil {
				if err := saveHistory(fsys, dir, id, h); err == nil {
					f.Action = scrub.ActionRepaired
					rep.Note(f)
					return
				}
			}
		}
	}
	if _, err := fsys.Stat(sub); err == nil {
		if _, qerr := scrub.Quarantine(fsys, sub); qerr == nil {
			f.Action = scrub.ActionQuarantined
		}
	}
	rep.Degraded++
	rep.Note(f)
}

// replayForRepair rebuilds one document's history from its journal
// alone, into a throwaway store. Returns nil when the journal cannot
// reconstruct the document from scratch (no base record — the
// snapshot it depended on is the thing that just failed).
func replayForRepair(fsys faultfs.FS, journal, id string) *history {
	tmp := New(diff.Options{})
	if err := tmp.replayJournal(fsys, journal, id); err != nil {
		return nil
	}
	return tmp.docs[id]
}

// scrubLatestCopy cross-checks the redundant latest.xml against the
// reconstructed chain. The chain is authoritative (nothing in the
// engine reads latest.xml back), so divergence is repaired by
// rewriting the copy when allowed; the chain files stay untouched and
// the document is not degraded either way.
func scrubLatestCopy(fsys faultfs.FS, sub string, h *history, repair bool, rep *scrub.Report) {
	path := filepath.Join(sub, "latest.xml")
	raw, err := fsys.ReadFile(path)
	reason := ""
	if err != nil {
		reason = fmt.Sprintf("latest.xml unreadable: %v", err)
	} else {
		rep.BytesScanned += int64(len(raw))
		doc, perr := dom.ParseWithOptions(bytes.NewReader(raw), snapshotLoadOptions())
		if perr != nil {
			reason = fmt.Sprintf("latest.xml unparseable: %v", perr)
		} else if doc.String() != h.latest.String() {
			reason = "latest.xml diverges from the reconstructed chain"
		}
	}
	if reason == "" {
		return
	}
	f := scrub.Finding{Path: path, Offset: -1, Reason: reason, Action: scrub.ActionDetected}
	if repair {
		if err := writeAtomic(fsys, path, h.latest.WriteTo); err == nil {
			f.Action = scrub.ActionRepaired
			rep.Note(f)
			return
		}
	}
	if _, err := fsys.Stat(path); err == nil {
		if _, qerr := scrub.Quarantine(fsys, path); qerr == nil {
			f.Action = scrub.ActionQuarantined
		}
	}
	rep.Note(f)
}

// dirSize sums the directory's immediate file sizes (throttle
// accounting; exactness does not matter).
func dirSize(fsys faultfs.FS, dir string) int64 {
	entries, err := fsys.ReadDir(dir)
	if err != nil {
		return 0
	}
	var n int64
	for _, e := range entries {
		if fi, err := fsys.Stat(filepath.Join(dir, e.Name())); err == nil {
			n += fi.Size()
		}
	}
	return n
}
