package store

import (
	"errors"
	"fmt"
	"testing"

	"xydiff/internal/diff"
	"xydiff/internal/faultfs"
)

// ackedVersion is one Put the store acknowledged before the crash: the
// contract under test is that it reconstructs byte-identically after
// reopening the directory.
type ackedVersion struct {
	id      string
	version int
	want    string // serialized reconstruction at acknowledgement time
}

// crashWorkload drives a fixed Put/Checkpoint sequence against a store
// over fsys, recording every acknowledged version. It stops at the
// first injected failure (the simulated process is dead) and never
// fails the test for store errors — those are the point.
func crashWorkload(t *testing.T, dir string, fsys faultfs.FS) []ackedVersion {
	t.Helper()
	s, err := Open(dir, diff.Options{}, Durability{Sync: SyncAlways, FS: fsys})
	if err != nil {
		return nil
	}
	defer s.Close()
	var acked []ackedVersion
	record := func(id string, v int) bool {
		doc, err := s.Version(id, v)
		if err != nil {
			t.Fatalf("reconstruct just-acknowledged %s v%d: %v", id, v, err)
		}
		acked = append(acked, ackedVersion{id: id, version: v, want: doc.String()})
		return true
	}
	steps := []func() bool{
		// Phase 1: journal appends.
		func() bool {
			v, _, err := s.Put("a", parse(t, `<r><x>1</x></r>`))
			return err == nil && record("a", v)
		},
		func() bool {
			v, _, err := s.Put("a", parse(t, `<r><x>2</x><y/></r>`))
			return err == nil && record("a", v)
		},
		func() bool {
			v, _, err := s.Put("b", parse(t, `<doc><only/></doc>`))
			return err == nil && record("b", v)
		},
		// Phase 2: snapshot + compaction.
		func() bool { return s.Checkpoint() == nil },
		// Phase 3: appends after the checkpoint.
		func() bool {
			v, _, err := s.Put("a", parse(t, `<r><x>3</x></r>`))
			return err == nil && record("a", v)
		},
		func() bool { return s.Checkpoint() == nil },
	}
	for _, step := range steps {
		if !step() {
			break
		}
	}
	return acked
}

// verifyAcked reopens dir through the real filesystem and checks that
// every version the crashed run acknowledged reconstructs identically.
// A crash must never read back as corruption.
func verifyAcked(t *testing.T, dir string, acked []ackedVersion, scenario string) {
	t.Helper()
	s, err := Open(dir, diff.Options{}, Durability{Sync: SyncOff})
	if err != nil {
		if errors.Is(err, ErrCorrupt) {
			t.Fatalf("%s: crash produced data recovery calls corrupt: %v", scenario, err)
		}
		t.Fatalf("%s: reopen after crash: %v", scenario, err)
	}
	defer s.Close()
	for _, a := range acked {
		doc, err := s.Version(a.id, a.version)
		if err != nil {
			t.Errorf("%s: acknowledged %s v%d lost: %v", scenario, a.id, a.version, err)
			continue
		}
		if got := doc.String(); got != a.want {
			t.Errorf("%s: %s v%d differs after crash:\n got %q\nwant %q",
				scenario, a.id, a.version, got, a.want)
		}
	}
}

// TestCrashMatrix crashes the filesystem at every write, sync, rename,
// remove and open along the workload (appends, snapshot, compaction,
// more appends) and asserts that reopening the directory reconstructs
// every acknowledged version byte-identically.
func TestCrashMatrix(t *testing.T) {
	// Counting pass: how many of each op does the clean workload issue?
	clean := faultfs.Wrap(faultfs.OS{})
	cleanAcked := crashWorkload(t, t.TempDir(), clean)
	if len(cleanAcked) != 4 {
		t.Fatalf("clean workload acknowledged %d versions, want 4", len(cleanAcked))
	}
	for _, op := range []faultfs.Op{faultfs.OpWrite, faultfs.OpSync, faultfs.OpRename, faultfs.OpRemove, faultfs.OpOpen} {
		total := clean.Count(op)
		if total == 0 {
			t.Fatalf("clean workload performs no %s ops; matrix would be vacuous", op)
		}
		for k := 1; k <= total; k++ {
			scenario := fmt.Sprintf("crash at %s #%d/%d", op, k, total)
			dir := t.TempDir()
			fsys := faultfs.Wrap(faultfs.OS{}, &faultfs.Fault{Op: op, Countdown: k, Crash: true})
			acked := crashWorkload(t, dir, fsys)
			verifyAcked(t, dir, acked, scenario)
		}
	}
}

// TestCrashTornWrite is the short-write variant: the crash happens
// mid-write, persisting only a prefix of the journal record, which
// recovery must truncate away as a torn tail.
func TestCrashTornWrite(t *testing.T) {
	clean := faultfs.Wrap(faultfs.OS{})
	crashWorkload(t, t.TempDir(), clean)
	total := clean.Count(faultfs.OpWrite)
	for k := 1; k <= total; k++ {
		for _, short := range []int{1, 7, 40} {
			scenario := fmt.Sprintf("torn write #%d/%d after %d bytes", k, total, short)
			dir := t.TempDir()
			fsys := faultfs.Wrap(faultfs.OS{}, &faultfs.Fault{
				Op: faultfs.OpWrite, Countdown: k, ShortBytes: short, Crash: true,
			})
			acked := crashWorkload(t, dir, fsys)
			verifyAcked(t, dir, acked, scenario)
		}
	}
}

// TestJournalAppendFailureLeavesStoreConsistent injects a non-crash
// write error: the Put must fail, the in-memory history must be
// untouched, and later Puts must succeed and persist.
func TestJournalAppendFailureLeavesStoreConsistent(t *testing.T) {
	dir := t.TempDir()
	fsys := faultfs.Wrap(faultfs.OS{}, &faultfs.Fault{Op: faultfs.OpWrite, Countdown: 2})
	s, err := Open(dir, diff.Options{}, Durability{Sync: SyncAlways, FS: fsys})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, _, err := s.Put("doc", parse(t, `<r><v>1</v></r>`)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Put("doc", parse(t, `<r><v>2</v></r>`)); err == nil {
		t.Fatal("journal write failure did not fail the Put")
	}
	if got := s.Versions("doc"); got != 1 {
		t.Fatalf("failed Put left %d versions in memory, want 1", got)
	}
	// The journal was truncated back, so the next Put lands cleanly.
	if v, _, err := s.Put("doc", parse(t, `<r><v>2b</v></r>`)); err != nil || v != 2 {
		t.Fatalf("put after failed append: v=%d err=%v", v, err)
	}
	s.Close()
	s2, err := Open(dir, diff.Options{}, Durability{Sync: SyncOff})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := s2.Versions("doc"); got != 2 {
		t.Fatalf("reopened store has %d versions, want 2", got)
	}
}

// TestCrashAfterCheckpointThenPut pins the recovery order for a
// document whose id sorts after "journal-": ReadDir lists the journal
// file before the snapshot directory, and recovery must still load the
// snapshot first — the post-checkpoint journal holds only delta
// records, which are meaningless without the snapshot's base. A crash
// after checkpoint+Put once refused to reopen with "delta record for
// version 3 but no base version".
func TestCrashAfterCheckpointThenPut(t *testing.T) {
	for _, id := range []string{"t", "aaa"} { // after and before "journal-"
		dir := t.TempDir()
		s, err := Open(dir, diff.Options{}, Durability{Sync: SyncAlways})
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := s.Put(id, parse(t, `<r><v>1</v></r>`)); err != nil {
			t.Fatal(err)
		}
		if _, _, err := s.Put(id, parse(t, `<r><v>1</v><v>2</v></r>`)); err != nil {
			t.Fatal(err)
		}
		if err := s.Checkpoint(); err != nil { // snapshot written, journal retired
			t.Fatal(err)
		}
		if _, _, err := s.Put(id, parse(t, `<r><v>1</v><v>2</v><v>3</v></r>`)); err != nil {
			t.Fatal(err)
		}
		// Crash: no Checkpoint, no Close — the fresh journal holds only
		// the delta record for v3.
		s2, err := Open(dir, diff.Options{}, Durability{Sync: SyncOff})
		if err != nil {
			t.Fatalf("id %q: reopen after crash: %v", id, err)
		}
		if got := s2.Versions(id); got != 3 {
			t.Fatalf("id %q: reopened store has %d versions, want 3", id, got)
		}
		doc, err := s2.Version(id, 3)
		if err != nil {
			t.Fatalf("id %q: reconstruct v3: %v", id, err)
		}
		if want := `<r><v>1</v><v>2</v><v>3</v></r>`; doc.String() != want {
			t.Fatalf("id %q: v3 = %s, want %s", id, doc.String(), want)
		}
		rec := s2.RecoveryStats()
		if rec.SnapshotVersions != 2 || rec.JournalRecords != 1 {
			t.Fatalf("id %q: recovery stats = %+v, want 2 snapshot versions + 1 journal record", id, rec)
		}
		s2.Close()
		s.Close()
	}
}
