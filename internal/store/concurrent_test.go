package store

import (
	"fmt"
	"sync"
	"testing"

	"xydiff/internal/diff"
	"xydiff/internal/dom"
)

// TestConcurrentSameDoc hammers one document ID from many goroutines:
// writers race Put while readers race Version, Delta, Latest, Versions
// and IDs against them. Run under -race; the invariant checked is that
// every observed version reconstructs to a well-formed catalog whose
// item count equals the version's payload.
func TestConcurrentSameDoc(t *testing.T) {
	s := New(diff.Options{})
	const id = "hot/doc"
	const writers = 8
	const putsPerWriter = 5
	const readers = 8

	makeDoc := func(items int) *dom.Node {
		doc := dom.NewDocument()
		root := dom.NewElement("catalog")
		root.SetAttribute("items", fmt.Sprint(items))
		for k := 0; k < items; k++ {
			p := dom.NewElement("product")
			p.Append(dom.NewText(fmt.Sprintf("item-%d", k)))
			root.Append(p)
		}
		doc.Append(root)
		return doc
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				n := s.Versions(id)
				if n == 0 {
					continue
				}
				for v := 1; v <= n; v++ {
					doc, err := s.Version(id, v)
					if err != nil {
						t.Errorf("version %d of %d: %v", v, n, err)
						return
					}
					root := doc.Root()
					want := root.Children
					if got, _ := root.Attribute("items"); got != fmt.Sprint(len(want)) {
						t.Errorf("version %d: items=%s but %d children", v, got, len(want))
						return
					}
				}
				for v := 1; v < n; v++ {
					if _, err := s.Delta(id, v); err != nil {
						t.Errorf("delta %d of %d: %v", v, n, err)
						return
					}
				}
				if _, _, err := s.Latest(id); err != nil {
					t.Errorf("latest: %v", err)
					return
				}
				s.IDs()
			}
		}()
	}
	var writerWG sync.WaitGroup
	for w := 0; w < writers; w++ {
		writerWG.Add(1)
		go func(w int) {
			defer writerWG.Done()
			for p := 0; p < putsPerWriter; p++ {
				if _, _, err := s.Put(id, makeDoc(1+(w*putsPerWriter+p)%13)); err != nil {
					t.Errorf("put: %v", err)
					return
				}
			}
		}(w)
	}
	writerWG.Wait()
	close(stop)
	wg.Wait()

	if got := s.Versions(id); got != writers*putsPerWriter {
		t.Fatalf("versions = %d, want %d", got, writers*putsPerWriter)
	}
}

// TestConcurrentPutDistinctDocs verifies that writes to different
// documents proceed in parallel without corrupting the map or each
// other's histories.
func TestConcurrentPutDistinctDocs(t *testing.T) {
	s := New(diff.Options{})
	var wg sync.WaitGroup
	const docs = 16
	for d := 0; d < docs; d++ {
		wg.Add(1)
		go func(d int) {
			defer wg.Done()
			id := fmt.Sprintf("doc-%d", d)
			for v := 1; v <= 4; v++ {
				doc := dom.NewDocument()
				root := dom.NewElement("r")
				for k := 0; k < v; k++ {
					root.Append(dom.NewElement("e"))
				}
				doc.Append(root)
				if _, _, err := s.Put(id, doc); err != nil {
					t.Errorf("%s: %v", id, err)
					return
				}
			}
		}(d)
	}
	wg.Wait()
	if got := len(s.IDs()); got != docs {
		t.Fatalf("ids = %d, want %d", got, docs)
	}
	for _, id := range s.IDs() {
		if got := s.Versions(id); got != 4 {
			t.Errorf("%s versions = %d, want 4", id, got)
		}
	}
}
