package store

import (
	"fmt"

	"xydiff/internal/delta"
	"xydiff/internal/diff"
	"xydiff/internal/dom"
	"xydiff/internal/xpathlite"
)

// This file implements the paper's "querying the past" (Section 2):
// because any version is reconstructible and deltas are ordinary XML,
// temporal questions reduce to path queries over reconstructed
// versions and over the stored delta chain.

// Query evaluates a path expression against version n of the document.
func (s *Store) Query(id string, version int, expr *xpathlite.Expr) ([]*dom.Node, error) {
	doc, err := s.Version(id, version)
	if err != nil {
		return nil, err
	}
	return expr.Select(doc), nil
}

// ValueAt returns the text content of the first node matching expr in
// version n ("" when nothing matches).
func (s *Store) ValueAt(id string, version int, expr *xpathlite.Expr) (string, error) {
	doc, err := s.Version(id, version)
	if err != nil {
		return "", err
	}
	return expr.Value(doc), nil
}

// VersionValue is one point of a Timeline: the value of an expression
// at one version.
type VersionValue struct {
	Version int
	Found   bool
	Value   string
}

// Timeline evaluates the expression at every version, oldest first —
// "ask for the value of some element at some previous time" across all
// of time. Versions are reconstructed incrementally (one delta apply
// per step), not from scratch per version.
func (s *Store) Timeline(id string, expr *xpathlite.Expr) ([]VersionValue, error) {
	h, err := s.reading(id)
	if err != nil {
		return nil, err
	}
	defer h.mu.RUnlock()
	// Walk backward from the latest version, prepending results.
	out := make([]VersionValue, h.versions)
	doc := h.latest.Clone()
	for v := h.versions; v >= 1; v-- {
		first := expr.SelectFirst(doc)
		out[v-1] = VersionValue{Version: v, Found: first != nil}
		if first != nil {
			out[v-1].Value = first.TextContent()
		}
		if v > 1 {
			if err := applyInverse(doc, h.deltas[v-2]); err != nil {
				return nil, fmt.Errorf("store: timeline %s at version %d: %w", id, v-1, err)
			}
		}
	}
	return out, nil
}

// NodeState describes one persistent node (addressed by XID) at one
// version.
type NodeState struct {
	Version int
	Present bool
	Path    string
	Value   string // text content of the subtree
}

// NodeHistory tracks a node across every version by its persistent
// identifier: present or not, where it lives, and what it contains.
// This is the paper's core use of XIDs — following "parts of an XML
// document through time", including across moves.
func (s *Store) NodeHistory(id string, xid int64) ([]NodeState, error) {
	h, err := s.reading(id)
	if err != nil {
		return nil, err
	}
	defer h.mu.RUnlock()
	out := make([]NodeState, h.versions)
	doc := h.latest.Clone()
	for v := h.versions; v >= 1; v-- {
		st := NodeState{Version: v}
		if n := dom.FindByXID(doc, xid); n != nil {
			st.Present = true
			st.Path = n.Path()
			st.Value = n.TextContent()
		}
		out[v-1] = st
		if v > 1 {
			if err := applyInverse(doc, h.deltas[v-2]); err != nil {
				return nil, fmt.Errorf("store: history %s at version %d: %w", id, v-1, err)
			}
		}
	}
	return out, nil
}

// ChangeHit is one delta operation selected by ChangesMatching.
type ChangeHit struct {
	// Version is the version the operation produced (the op belongs to
	// the delta from Version-1 to Version).
	Version int
	Op      delta.Op
	// Path locates the affected node (in the new version when it still
	// exists there, otherwise in the old one).
	Path string
}

// ChangesMatching scans the deltas between versions from and to
// (forward, from < to) and returns the operations whose affected node
// matches the pattern — "ask for the list of items recently introduced
// in a catalog" is ChangesMatching(id, v, latest, //Product, KindInsert).
// An empty kinds list selects every operation kind.
func (s *Store) ChangesMatching(id string, from, to int, pattern *xpathlite.Expr, kinds ...delta.Kind) ([]ChangeHit, error) {
	h, err := s.reading(id)
	if err != nil {
		return nil, err
	}
	defer h.mu.RUnlock()
	if from < 1 || to > h.versions || from >= to {
		return nil, fmt.Errorf("store: bad version range %d..%d (have 1..%d): %w", from, to, h.versions, ErrNoSuchVersion)
	}
	kindOK := func(k delta.Kind) bool {
		if len(kinds) == 0 {
			return true
		}
		for _, want := range kinds {
			if want == k {
				return true
			}
		}
		return false
	}
	// Reconstruct version `from`, then replay forward, inspecting each
	// delta against the version before and after it.
	doc, err := versionLocked(h, from)
	if err != nil {
		return nil, err
	}
	var hits []ChangeHit
	for v := from; v < to; v++ {
		d := h.deltas[v-1]
		oldIdx := indexXIDs(doc)
		next := doc.Clone()
		if err := delta.Apply(next, d); err != nil {
			return nil, fmt.Errorf("store: replay %s delta %d: %w", id, v, err)
		}
		newIdx := indexXIDs(next)
		for _, op := range d.Ops {
			if !kindOK(op.Kind()) {
				continue
			}
			node := newIdx[op.TargetXID()]
			if node == nil || op.Kind() == delta.KindDelete {
				node = oldIdx[op.TargetXID()]
			}
			if node == nil || !matchesWithTextParent(pattern, node) {
				continue
			}
			path := node.Path()
			if node.Type == dom.Text && node.Parent != nil {
				path = node.Parent.Path()
			}
			hits = append(hits, ChangeHit{Version: v + 1, Op: op, Path: path})
		}
		doc = next
	}
	return hits, nil
}

// matchesWithTextParent applies the pattern to the node, falling back
// to the parent element for text nodes (an update of <Price>'s text
// should match //Price).
func matchesWithTextParent(pattern *xpathlite.Expr, n *dom.Node) bool {
	if pattern.Matches(n) {
		return true
	}
	return n.Type == dom.Text && n.Parent != nil && pattern.Matches(n.Parent)
}

func indexXIDs(doc *dom.Node) map[int64]*dom.Node {
	idx := make(map[int64]*dom.Node)
	dom.WalkPre(doc, func(n *dom.Node) bool {
		if n.XID != 0 {
			idx[n.XID] = n
		}
		return true
	})
	return idx
}

// Aggregate returns one delta with the combined effect of the chain
// from version from to version to (the paper's delta aggregation).
// from > to yields the inverted aggregate.
func (s *Store) Aggregate(id string, from, to int) (*delta.Delta, error) {
	if from == to {
		return &delta.Delta{}, nil
	}
	base, err := s.Version(id, min(from, to))
	if err != nil {
		return nil, err
	}
	chain, err := s.DeltasBetween(id, min(from, to), max(from, to))
	if err != nil {
		return nil, err
	}
	d, err := diff.Compose(base, chain...)
	if err != nil {
		return nil, err
	}
	if from > to {
		if d, err = d.Invert(); err != nil {
			return nil, fmt.Errorf("store: aggregate %s %d..%d: %w", id, from, to, err)
		}
	}
	return d, nil
}
