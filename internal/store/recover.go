package store

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"xydiff/internal/delta"
	"xydiff/internal/diff"
	"xydiff/internal/dom"
	"xydiff/internal/faultfs"
	"xydiff/internal/scrub"
	"xydiff/internal/xid"
)

// RecoveryStats reports what Open (or Load) reconstructed from disk.
type RecoveryStats struct {
	// Documents is how many documents were recovered.
	Documents int
	// SnapshotVersions is how many versions came from snapshots.
	SnapshotVersions int
	// JournalRecords is how many journal records were replayed into
	// versions the snapshot did not cover.
	JournalRecords int
	// JournalSkipped is how many journal records were already covered
	// by a snapshot (a crash between snapshot rename and journal
	// retirement leaves such records behind; they are harmless).
	JournalSkipped int
	// TornTails is how many journals ended in a partial record (a
	// crash mid-append) that recovery truncated away. A torn record's
	// version was never acknowledged, so nothing is lost.
	TornTails int
	// JournalBytes is the total size of the replayed journal files.
	JournalBytes int64
	// Quarantined counts corrupt files recovery set aside (renamed,
	// never deleted) instead of refusing to open; only degraded-
	// tolerant engines populate it.
	Quarantined int
	// DegradedDocs counts documents left serving degraded — their
	// latest intact version — because part of their history was
	// quarantined.
	DegradedDocs int
}

// RecoveryStats returns what the store reconstructed when it opened
// (all zero for a store built by New).
func (s *Store) RecoveryStats() RecoveryStats { return s.recovery }

// Open loads (or creates) a directory-backed store: the last snapshot
// is read, journal segments are replayed on top of it, torn journal
// tails are truncated, and the store keeps appending new versions to
// the journals as Puts arrive. Corrupt snapshots or mid-log journal
// damage refuse to open with an error matching ErrCorrupt that names
// the file and offset.
func Open(dir string, opts diff.Options, dur Durability) (*Store, error) {
	fsys := dur.FS
	if fsys == nil {
		fsys = faultfs.OS{}
	}
	if dur.Interval <= 0 {
		dur.Interval = 100 * time.Millisecond
	}
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: open %s: %w", dir, err)
	}
	s := New(opts)
	s.dir = dir
	s.fs = fsys
	s.policy = dur.Sync
	s.interval = dur.Interval
	s.journals = make(map[string]*journalWriter)
	if err := recoverInto(s, fsys, dir); err != nil {
		return nil, err
	}
	if s.policy == SyncInterval {
		s.stopSync = make(chan struct{})
		s.syncDone = make(chan struct{})
		go s.syncLoop()
	}
	return s, nil
}

// recoverInto rebuilds s.docs from dir: every snapshot first, then
// every journal replayed on top. The two passes matter — ReadDir is
// lexicographic, and a document whose id sorts after "journal-" lists
// its journal before its snapshot directory; interleaving would replay
// a post-checkpoint (delta-only) journal against a base that is not
// loaded yet. Shared by Open (which keeps writing to dir) and Load
// (which only reads).
func recoverInto(s *Store, fsys faultfs.FS, dir string) error {
	entries, err := fsys.ReadDir(dir)
	if err != nil {
		return err
	}
	for _, e := range entries {
		// Quarantined snapshot directories (scrubber leavings) are
		// evidence, not documents.
		if !e.IsDir() || strings.Contains(e.Name(), scrub.QuarantineSuffix) {
			continue
		}
		id := unescapeID(e.Name())
		h, versions, err := loadSnapshot(fsys, filepath.Join(dir, e.Name()), id)
		if err != nil {
			return err
		}
		if h != nil {
			s.docs[id] = h
			s.recovery.SnapshotVersions += versions
		}
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasPrefix(e.Name(), journalPrefix) || !strings.HasSuffix(e.Name(), journalSuffix) {
			continue
		}
		id := unescapeID(strings.TrimSuffix(strings.TrimPrefix(e.Name(), journalPrefix), journalSuffix))
		if err := s.replayJournal(fsys, filepath.Join(dir, e.Name()), id); err != nil {
			return err
		}
	}
	s.recovery.Documents = len(s.docs)
	return nil
}

// loadSnapshot reads one document's snapshot directory. A directory
// without a versions counter is not corrupt — it is a snapshot whose
// final rename never happened (crash mid-checkpoint); the journal
// still carries the document, so the half-snapshot is ignored.
func loadSnapshot(fsys faultfs.FS, sub, id string) (*history, int, error) {
	counterPath := filepath.Join(sub, "versions")
	raw, err := fsys.ReadFile(counterPath)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, 0, nil
		}
		return nil, 0, corruptf(counterPath, -1, err, "unreadable version counter")
	}
	versions, err := strconv.Atoi(strings.TrimSpace(string(raw)))
	if err != nil || versions < 1 {
		return nil, 0, corruptf(counterPath, -1, nil, "bad version counter %q", raw)
	}
	v1Path := filepath.Join(sub, "v1.xml")
	v1Raw, err := fsys.ReadFile(v1Path)
	if err != nil {
		return nil, 0, corruptf(v1Path, -1, err, "unreadable base version")
	}
	doc, err := dom.ParseWithOptions(bytes.NewReader(v1Raw), snapshotLoadOptions())
	if err != nil {
		return nil, 0, corruptf(v1Path, -1, err, "unparseable base version")
	}
	xid.Assign(doc)
	h := &history{latest: doc, versions: 1}
	for v := 1; v < versions; v++ {
		dPath := filepath.Join(sub, deltaFile(v))
		dRaw, err := fsys.ReadFile(dPath)
		if err != nil {
			return nil, 0, corruptf(dPath, -1, err, "unreadable delta %d", v)
		}
		d, err := delta.Parse(bytes.NewReader(dRaw))
		if err != nil {
			return nil, 0, corruptf(dPath, -1, err, "unparseable delta %d", v)
		}
		if err := delta.Apply(h.latest, d); err != nil {
			return nil, 0, corruptf(dPath, -1, err, "delta %d does not apply to version %d", v, v)
		}
		h.deltas = append(h.deltas, d)
		h.versions++
	}
	return h, versions, nil
}

// replayJournal reads one journal file and applies its records on top
// of whatever the snapshot recovered. A partial record at the tail is
// truncated away (TornTails); damage anywhere else refuses recovery
// with ErrCorrupt naming the file and offset.
func (s *Store) replayJournal(fsys faultfs.FS, path, id string) error {
	data, err := fsys.ReadFile(path)
	if err != nil {
		return corruptf(path, -1, err, "unreadable journal")
	}
	s.recovery.JournalBytes += int64(len(data))
	h := s.docs[id]
	off := int64(0)
	for int(off) < len(data) {
		rem := int64(len(data)) - off
		if rem < journalHeaderLen {
			if err := s.truncateTorn(fsys, path, off); err != nil {
				return err
			}
			break
		}
		length := int64(binary.BigEndian.Uint32(data[off : off+4]))
		if length == 0 || length > maxRecordLen {
			return corruptf(path, off, nil, "invalid record length %d", length)
		}
		if rem-journalHeaderLen < length {
			if err := s.truncateTorn(fsys, path, off); err != nil {
				return err
			}
			break
		}
		wantCRC := binary.BigEndian.Uint32(data[off+4 : off+8])
		payload := data[off+journalHeaderLen : off+journalHeaderLen+length]
		if got := crc32.Checksum(payload, castagnoli); got != wantCRC {
			return corruptf(path, off, nil, "checksum mismatch (stored %08x, computed %08x)", wantCRC, got)
		}
		kind, version, body, err := decodePayload(payload)
		if err != nil {
			return corruptf(path, off, err, "undecodable record")
		}
		if err := s.applyRecord(&h, id, path, off, kind, version, body); err != nil {
			return err
		}
		off += journalHeaderLen + length
	}
	if h != nil {
		s.docs[id] = h
	}
	return nil
}

// truncateTorn cuts a journal back to the end of its last complete
// record. The torn record's Put never returned success, so dropping it
// loses nothing acknowledged.
func (s *Store) truncateTorn(fsys faultfs.FS, path string, off int64) error {
	s.recovery.TornTails++
	if err := fsys.Truncate(path, off); err != nil {
		return fmt.Errorf("store: truncate torn journal tail %s at %d: %w", path, off, err)
	}
	return nil
}

// applyRecord folds one verified journal record into the document's
// history, skipping records a snapshot already covers.
func (s *Store) applyRecord(h **history, id, path string, off int64, kind byte, version int, body []byte) error {
	switch kind {
	case recordBase:
		if version != 1 {
			return corruptf(path, off, nil, "base record claims version %d", version)
		}
		if *h != nil && (*h).versions >= 1 {
			s.recovery.JournalSkipped++
			return nil
		}
		doc, err := dom.ParseWithOptions(bytes.NewReader(body), snapshotLoadOptions())
		if err != nil {
			return corruptf(path, off, err, "unparseable base document")
		}
		xid.Assign(doc)
		*h = &history{latest: doc, versions: 1}
		s.recovery.JournalRecords++
		return nil
	case recordDelta:
		if *h == nil {
			return corruptf(path, off, nil, "delta record for version %d but no base version", version)
		}
		if version <= (*h).versions {
			s.recovery.JournalSkipped++
			return nil
		}
		if version != (*h).versions+1 {
			return corruptf(path, off, nil, "record jumps to version %d after %d", version, (*h).versions)
		}
		d, err := delta.Parse(bytes.NewReader(body))
		if err != nil {
			return corruptf(path, off, err, "unparseable delta record for version %d", version)
		}
		if err := delta.Apply((*h).latest, d); err != nil {
			return corruptf(path, off, err, "delta record for version %d does not apply", version)
		}
		(*h).deltas = append((*h).deltas, d)
		(*h).versions++
		s.recovery.JournalRecords++
		return nil
	default:
		return corruptf(path, off, nil, "unknown record kind %d", kind)
	}
}
