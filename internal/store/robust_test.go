package store

import (
	"os"
	"path/filepath"
	"sync"
	"testing"

	"xydiff/internal/diff"
	"xydiff/internal/dom"
)

// saveSample builds a two-version store on disk and returns its
// directory and document subdirectory.
func saveSample(t *testing.T) (string, string) {
	t.Helper()
	dir := t.TempDir()
	s := New(diff.Options{})
	s.Put("doc", parse(t, `<r><a>1</a></r>`))
	s.Put("doc", parse(t, `<r><a>2</a><b/></r>`))
	if err := s.Save(dir); err != nil {
		t.Fatal(err)
	}
	return dir, filepath.Join(dir, "doc")
}

func TestLoadCorruptVersionCounter(t *testing.T) {
	for _, bad := range []string{"", "zero", "-3", "0"} {
		dir, sub := saveSample(t)
		os.WriteFile(filepath.Join(sub, "versions"), []byte(bad), 0o644)
		if _, err := Load(dir, diff.Options{}); err == nil {
			t.Errorf("counter %q accepted", bad)
		}
	}
}

func TestLoadMissingBaseVersion(t *testing.T) {
	dir, sub := saveSample(t)
	os.Remove(filepath.Join(sub, "v1.xml"))
	if _, err := Load(dir, diff.Options{}); err == nil {
		t.Error("missing v1.xml accepted")
	}
}

func TestLoadMissingDelta(t *testing.T) {
	dir, sub := saveSample(t)
	os.Remove(filepath.Join(sub, "delta-0001.xml"))
	if _, err := Load(dir, diff.Options{}); err == nil {
		t.Error("missing delta accepted")
	}
}

func TestLoadCorruptDelta(t *testing.T) {
	dir, sub := saveSample(t)
	os.WriteFile(filepath.Join(sub, "delta-0001.xml"), []byte("not xml at all"), 0o644)
	if _, err := Load(dir, diff.Options{}); err == nil {
		t.Error("corrupt delta accepted")
	}
}

func TestLoadInapplicableDelta(t *testing.T) {
	dir, sub := saveSample(t)
	// A syntactically valid delta that does not apply to v1.
	os.WriteFile(filepath.Join(sub, "delta-0001.xml"),
		[]byte(`<delta><update xid="999"><old>x</old><new>y</new></update></delta>`), 0o644)
	if _, err := Load(dir, diff.Options{}); err == nil {
		t.Error("inapplicable delta accepted")
	}
}

func TestLoadCorruptBaseDocument(t *testing.T) {
	dir, sub := saveSample(t)
	os.WriteFile(filepath.Join(sub, "v1.xml"), []byte(`<r><unclosed>`), 0o644)
	if _, err := Load(dir, diff.Options{}); err == nil {
		t.Error("corrupt base accepted")
	}
}

func TestLoadIgnoresStrayFiles(t *testing.T) {
	dir, _ := saveSample(t)
	os.WriteFile(filepath.Join(dir, "README"), []byte("not a document dir"), 0o644)
	s, err := Load(dir, diff.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if s.Versions("doc") != 2 {
		t.Error("stray file broke loading")
	}
}

func TestConcurrentPutsAndReads(t *testing.T) {
	s := New(diff.Options{})
	const docs = 8
	const versions = 6
	var wg sync.WaitGroup
	for d := 0; d < docs; d++ {
		wg.Add(1)
		go func(d int) {
			defer wg.Done()
			id := string(rune('a' + d))
			for v := 0; v < versions; v++ {
				doc := dom.NewDocument()
				root := dom.NewElement("r")
				for k := 0; k <= v; k++ {
					e := dom.NewElement("e")
					e.Append(dom.NewText(id))
					root.Append(e)
				}
				doc.Append(root)
				if _, _, err := s.Put(id, doc); err != nil {
					t.Errorf("put %s v%d: %v", id, v, err)
					return
				}
				if _, _, err := s.Latest(id); err != nil {
					t.Errorf("latest %s: %v", id, err)
					return
				}
			}
			// Read every version back.
			for v := 1; v <= versions; v++ {
				got, err := s.Version(id, v)
				if err != nil {
					t.Errorf("version %s %d: %v", id, v, err)
					return
				}
				if n := len(got.Root().Children); n != v {
					t.Errorf("%s v%d has %d children, want %d", id, v, n, v)
					return
				}
			}
		}(d)
	}
	wg.Wait()
	if got := len(s.IDs()); got != docs {
		t.Errorf("ids = %d, want %d", got, docs)
	}
}
