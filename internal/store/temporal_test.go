package store

import (
	"testing"

	"xydiff/internal/delta"
	"xydiff/internal/diff"
	"xydiff/internal/dom"
	"xydiff/internal/xpathlite"
)

// seedHistory installs four versions of a small catalog.
func seedHistory(t *testing.T) *Store {
	t.Helper()
	s := New(diff.Options{})
	for _, v := range []string{
		`<Catalog><Product><Name>tx</Name><Price>$499</Price></Product></Catalog>`,
		`<Catalog><Product><Name>tx</Name><Price>$479</Price></Product><Product><Name>zy</Name><Price>$799</Price></Product></Catalog>`,
		`<Catalog><Product><Name>tx</Name><Price>$450</Price></Product><Product><Name>zy</Name><Price>$699</Price></Product></Catalog>`,
		`<Catalog><Product><Name>zy</Name><Price>$699</Price></Product></Catalog>`,
	} {
		if _, _, err := s.Put("cat", parse(t, v)); err != nil {
			t.Fatal(err)
		}
	}
	return s
}

func TestQueryPastVersions(t *testing.T) {
	s := seedHistory(t)
	expr := xpathlite.MustCompile(`//Product[Name='tx']/Price`)
	nodes, err := s.Query("cat", 1, expr)
	if err != nil {
		t.Fatal(err)
	}
	if len(nodes) != 1 || nodes[0].TextContent() != "$499" {
		t.Fatalf("Query v1 = %v", nodes)
	}
	v, err := s.ValueAt("cat", 3, expr)
	if err != nil {
		t.Fatal(err)
	}
	if v != "$450" {
		t.Errorf("ValueAt v3 = %q", v)
	}
	if _, err := s.Query("ghost", 1, expr); err == nil {
		t.Error("unknown doc accepted")
	}
}

func TestTimeline(t *testing.T) {
	s := seedHistory(t)
	tl, err := s.Timeline("cat", xpathlite.MustCompile(`//Product[Name='tx']/Price`))
	if err != nil {
		t.Fatal(err)
	}
	want := []VersionValue{
		{Version: 1, Found: true, Value: "$499"},
		{Version: 2, Found: true, Value: "$479"},
		{Version: 3, Found: true, Value: "$450"},
		{Version: 4, Found: false},
	}
	if len(tl) != len(want) {
		t.Fatalf("timeline length = %d, want %d", len(tl), len(want))
	}
	for i := range want {
		if tl[i] != want[i] {
			t.Errorf("timeline[%d] = %+v, want %+v", i, tl[i], want[i])
		}
	}
	if _, err := s.Timeline("ghost", xpathlite.MustCompile("//x")); err == nil {
		t.Error("unknown doc accepted")
	}
}

func TestNodeHistoryAcrossVersions(t *testing.T) {
	s := seedHistory(t)
	// Find the persistent XID of the tx price text node at version 1.
	v1, err := s.Version("cat", 1)
	if err != nil {
		t.Fatal(err)
	}
	price := xpathlite.MustCompile(`//Product[Name='tx']/Price`).SelectFirst(v1)
	if price == nil || price.XID == 0 {
		t.Fatal("price node has no XID")
	}
	hist, err := s.NodeHistory("cat", price.XID)
	if err != nil {
		t.Fatal(err)
	}
	if len(hist) != 4 {
		t.Fatalf("history length = %d", len(hist))
	}
	if !hist[0].Present || hist[0].Value != "$499" {
		t.Errorf("v1 state = %+v", hist[0])
	}
	if !hist[2].Present || hist[2].Value != "$450" {
		t.Errorf("v3 state = %+v", hist[2])
	}
	if hist[3].Present {
		t.Errorf("v4 should not contain the deleted product's price: %+v", hist[3])
	}
	if _, err := s.NodeHistory("ghost", 1); err == nil {
		t.Error("unknown doc accepted")
	}
}

func TestChangesMatching(t *testing.T) {
	s := seedHistory(t)
	// "List of items recently introduced in a catalog": inserted
	// products between v1 and the latest.
	hits, err := s.ChangesMatching("cat", 1, 4,
		xpathlite.MustCompile(`//Product`), delta.KindInsert)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 1 {
		t.Fatalf("insert hits = %v", hits)
	}
	if hits[0].Version != 2 || hits[0].Op.Kind() != delta.KindInsert {
		t.Errorf("hit = %+v", hits[0])
	}
	// All price updates, matched through the text-parent rule.
	priceHits, err := s.ChangesMatching("cat", 1, 4,
		xpathlite.MustCompile(`//Price`), delta.KindUpdate)
	if err != nil {
		t.Fatal(err)
	}
	if len(priceHits) != 3 { // 499->479, 479->450, 799->699
		t.Fatalf("price update hits = %d: %+v", len(priceHits), priceHits)
	}
	// Kind filter empty = everything; range errors rejected.
	all, err := s.ChangesMatching("cat", 1, 4, xpathlite.MustCompile(`//Catalog`))
	if err != nil {
		t.Fatal(err)
	}
	_ = all
	if _, err := s.ChangesMatching("cat", 3, 2, xpathlite.MustCompile(`//x`)); err == nil {
		t.Error("inverted range accepted")
	}
	if _, err := s.ChangesMatching("cat", 1, 9, xpathlite.MustCompile(`//x`)); err == nil {
		t.Error("out-of-range accepted")
	}
	if _, err := s.ChangesMatching("ghost", 1, 2, xpathlite.MustCompile(`//x`)); err == nil {
		t.Error("unknown doc accepted")
	}
}

func TestChangesMatchingDeleteResolvesInOldVersion(t *testing.T) {
	s := seedHistory(t)
	hits, err := s.ChangesMatching("cat", 3, 4,
		xpathlite.MustCompile(`//Product[Name='tx']`), delta.KindDelete)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 1 || hits[0].Version != 4 {
		t.Fatalf("delete hits = %+v", hits)
	}
	if hits[0].Path != "/Catalog/Product[1]" && hits[0].Path != "/Catalog/Product" {
		t.Errorf("delete path = %q", hits[0].Path)
	}
}

func TestNodeHistoryTracksMoves(t *testing.T) {
	s := New(diff.Options{})
	s.Put("m", parse(t, `<r><a><item>payload</item></a><b/></r>`))
	s.Put("m", parse(t, `<r><a/><b><item>payload</item></b></r>`))
	v1, _ := s.Version("m", 1)
	item := xpathlite.MustCompile(`//item`).SelectFirst(v1)
	hist, err := s.NodeHistory("m", item.XID)
	if err != nil {
		t.Fatal(err)
	}
	if !hist[0].Present || !hist[1].Present {
		t.Fatalf("item should exist in both versions: %+v", hist)
	}
	if hist[0].Path == hist[1].Path {
		t.Errorf("move not reflected in paths: %q vs %q", hist[0].Path, hist[1].Path)
	}
	if hist[1].Path != "/r/b/item" {
		t.Errorf("v2 path = %q", hist[1].Path)
	}
}

func TestQueryDeltaDocumentsViaStore(t *testing.T) {
	// Deltas are XML documents: query one with xpathlite.
	s := seedHistory(t)
	d, err := s.Delta("cat", 2)
	if err != nil {
		t.Fatal(err)
	}
	deltaDoc, err := d.ToDoc()
	if err != nil {
		t.Fatal(err)
	}
	ups := xpathlite.MustCompile(`/delta/update/new`).Select(deltaDoc)
	if len(ups) == 0 {
		t.Fatal("no updates found in delta document")
	}
	var hasPrice bool
	for _, u := range ups {
		if u.TextContent() == "$450" {
			hasPrice = true
		}
	}
	if !hasPrice {
		var got []string
		for _, u := range ups {
			got = append(got, u.TextContent())
		}
		t.Errorf("expected $450 among update targets, got %v", got)
	}
}

func TestAggregate(t *testing.T) {
	s := seedHistory(t)
	agg, err := s.Aggregate("cat", 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	v1, _ := s.Version("cat", 1)
	got, err := delta.ApplyClone(v1, agg)
	if err != nil {
		t.Fatal(err)
	}
	v4, _ := s.Version("cat", 4)
	if !dom.Equal(got, v4) {
		t.Fatalf("aggregate 1->4 differs: %s", dom.Diagnose(got, v4))
	}
	// Reverse aggregation.
	back, err := s.Aggregate("cat", 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	v1again, err := delta.ApplyClone(v4, back)
	if err != nil {
		t.Fatal(err)
	}
	if !dom.Equal(v1again, v1) {
		t.Fatalf("aggregate 4->1 differs: %s", dom.Diagnose(v1again, v1))
	}
	// Same-version aggregate is empty; bad ranges error.
	same, err := s.Aggregate("cat", 2, 2)
	if err != nil || !same.Empty() {
		t.Errorf("Aggregate(2,2) = %v, %v", same, err)
	}
	if _, err := s.Aggregate("cat", 0, 3); err == nil {
		t.Error("bad range accepted")
	}
	if _, err := s.Aggregate("ghost", 1, 2); err == nil {
		t.Error("unknown doc accepted")
	}
}
