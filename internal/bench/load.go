package bench

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"xydiff/internal/changesim"
	"xydiff/internal/diff"
	"xydiff/internal/dom"
	"xydiff/internal/store"
	"xydiff/internal/vstore"
)

// LoadConfig tunes the storage-engine load harness (cmd/xyload and the
// bench6 experiment). The zero value — resolved by withDefaults — is
// the check.sh smoke shape: enough concurrent writers to exercise
// group commit, small enough to finish in seconds.
type LoadConfig struct {
	// Dir is the data directory; empty means a temporary directory that
	// is removed afterwards.
	Dir string
	// Docs is how many documents (synthetic sources) are registered.
	Docs int
	// Writers is the number of concurrent writer goroutines.
	Writers int
	// PutsPerWriter is how many churn Puts each writer performs after
	// registration.
	PutsPerWriter int
	// ReadEvery makes every Nth churn op also reconstruct a random past
	// version (0 disables reads).
	ReadEvery int
	// Shards, MaxBatch, MaxDelay, CacheSize and SegmentBytes pass
	// through to vstore.Config (zero = that engine's default), except
	// Shards, which defaults to 2 here so the smoke concentrates many
	// writers on few group-commit queues.
	Shards       int
	MaxBatch     int
	MaxDelay     time.Duration
	CacheSize    int
	SegmentBytes int64
	// Sync is the fsync policy name ("always", "interval", "off");
	// default "always" — the whole point is counting fsyncs.
	Sync string
	// Seed drives the synthetic corpus and churn.
	Seed int64
}

func (c LoadConfig) withDefaults() LoadConfig {
	if c.Docs <= 0 {
		c.Docs = 128
	}
	if c.Writers <= 0 {
		c.Writers = 64
	}
	if c.PutsPerWriter <= 0 {
		c.PutsPerWriter = 6
	}
	if c.ReadEvery == 0 {
		c.ReadEvery = 4
	}
	if c.Shards <= 0 {
		c.Shards = 2
	}
	if c.Sync == "" {
		c.Sync = "always"
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// Bench6Report is the machine-readable record behind BENCH_6.json: the
// sharded engine's behaviour under concurrent load — group-commit
// batching (the fsyncs-per-acked-Put headline), Put and reconstruct
// latency percentiles, cache effectiveness, and cold-start recovery
// time. scripts/benchdiff.sh gates a fresh report against the
// committed one with coarse tolerances.
type Bench6Report struct {
	Schema     int    `json:"schema"`
	Mode       string `json:"mode"` // "quick" or "full"
	GoVersion  string `json:"goVersion"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	NumCPU     int    `json:"numCPU"`
	GoMaxProcs int    `json:"gomaxprocs"`
	Seed       int64  `json:"seed"`

	Docs          int    `json:"docs"`
	Writers       int    `json:"writers"`
	PutsPerWriter int    `json:"putsPerWriter"`
	Shards        int    `json:"shards"`
	Sync          string `json:"sync"`

	AckedPuts    int64   `json:"ackedPuts"`
	Rejected     int64   `json:"rejected"`
	FsyncTotal   int64   `json:"fsyncTotal"`
	FsyncsPerPut float64 `json:"fsyncsPerPut"`
	MeanBatch    float64 `json:"meanFsyncBatch"`
	MaxBatch     int64   `json:"maxFsyncBatch"`

	PutP50Micros  int64 `json:"putP50Micros"`
	PutP99Micros  int64 `json:"putP99Micros"`
	Reads         int64 `json:"reads"`
	ReadP50Micros int64 `json:"readP50Micros"`
	ReadP99Micros int64 `json:"readP99Micros"`

	CacheHitRatio float64 `json:"cacheHitRatio"`
	Notifications int64   `json:"observerNotifications"`

	RecoverySeconds   float64 `json:"recoverySeconds"`
	RecoveredDocs     int     `json:"recoveredDocs"`
	RecoveredVersions int     `json:"recoveredVersions"`
}

// RunLoad drives the sharded engine with cfg's concurrent workload and
// measures the report: register Docs documents, churn them with
// group-committed Puts mixed with version reconstructions and observer
// (subscription) traffic, then close and reopen to time recovery.
func RunLoad(cfg LoadConfig) (*Bench6Report, error) {
	cfg = cfg.withDefaults()
	dir := cfg.Dir
	if dir == "" {
		tmp, err := os.MkdirTemp("", "xyload-*")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(tmp)
		dir = tmp
	}
	policy, err := store.ParseSyncPolicy(cfg.Sync)
	if err != nil {
		return nil, err
	}
	vcfg := vstore.Config{
		Shards:       cfg.Shards,
		Sync:         policy,
		MaxBatch:     cfg.MaxBatch,
		MaxDelay:     cfg.MaxDelay,
		CacheSize:    cfg.CacheSize,
		SegmentBytes: cfg.SegmentBytes,
	}
	st, err := vstore.Open(dir, diff.Options{}, vcfg)
	if err != nil {
		return nil, err
	}

	r := &Bench6Report{
		Schema:     1,
		Mode:       "full",
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Seed:       cfg.Seed,

		Docs:          cfg.Docs,
		Writers:       cfg.Writers,
		PutsPerWriter: cfg.PutsPerWriter,
		Shards:        cfg.Shards,
		Sync:          cfg.Sync,
	}

	// The observer stands in for the subscription path: every versioning
	// diff notifies it, like the daemon's alerter.
	var notifications atomic.Int64
	st.SetObserver(func(string, int, *dom.Node, *dom.Node, *diff.Result) {
		notifications.Add(1)
	})

	var (
		acked  atomic.Int64
		wg     sync.WaitGroup
		errMu  sync.Mutex
		runErr error
	)
	putLat := make([][]time.Duration, cfg.Writers)
	readLat := make([][]time.Duration, cfg.Writers)
	fail := func(err error) {
		errMu.Lock()
		if runErr == nil {
			runErr = err
		}
		errMu.Unlock()
	}

	for w := 0; w < cfg.Writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.Seed + int64(w)*7919))
			put := func(id string, doc *dom.Node) bool {
				for {
					start := time.Now()
					_, _, err := st.Put(id, doc)
					if err == nil {
						putLat[w] = append(putLat[w], time.Since(start))
						acked.Add(1)
						return true
					}
					if isBusy(err) {
						time.Sleep(time.Duration(200+rng.Intn(800)) * time.Microsecond)
						continue
					}
					fail(fmt.Errorf("writer %d: put %s: %w", w, id, err))
					return false
				}
			}
			// Registration: this writer's slice of the corpus. Churn stays
			// on the same slice — another writer's documents may not be
			// registered yet.
			var own []string
			for d := w; d < cfg.Docs; d += cfg.Writers {
				id := fmt.Sprintf("src-%06d", d)
				if !put(id, changesim.Catalog(rng, 1, 2)) {
					return
				}
				own = append(own, id)
			}
			if len(own) == 0 {
				return // more writers than documents: nothing to churn
			}
			// Churn: mutate own documents round-robin, mixing in version
			// reconstructions.
			for p := 0; p < cfg.PutsPerWriter; p++ {
				id := own[p%len(own)]
				latest, versions, err := st.Latest(id)
				if err != nil {
					fail(fmt.Errorf("writer %d: latest %s: %w", w, id, err))
					return
				}
				sim, err := changesim.Simulate(latest, changesim.Uniform(0.25, cfg.Seed+int64(w*1000+p)))
				if err != nil {
					fail(fmt.Errorf("writer %d: simulate %s: %w", w, id, err))
					return
				}
				if !put(id, sim.New) {
					return
				}
				if cfg.ReadEvery > 0 && p%cfg.ReadEvery == 0 {
					v := 1 + rng.Intn(versions+1)
					start := time.Now()
					if _, err := st.Version(id, v); err != nil {
						fail(fmt.Errorf("writer %d: reconstruct %s v%d: %w", w, id, v, err))
						return
					}
					readLat[w] = append(readLat[w], time.Since(start))
				}
			}
		}(w)
	}
	wg.Wait()
	if runErr != nil {
		_ = st.Close()
		return nil, runErr
	}

	ss := st.StorageStats()
	r.AckedPuts = acked.Load()
	r.Rejected = ss.Rejected
	r.FsyncTotal = ss.FsyncTotal
	if r.AckedPuts > 0 {
		r.FsyncsPerPut = float64(ss.FsyncTotal) / float64(r.AckedPuts)
	}
	r.MeanBatch = ss.MeanBatch()
	r.MaxBatch = ss.MaxBatch
	r.CacheHitRatio = ss.CacheHitRatio()
	r.Notifications = notifications.Load()

	allPut := flatten(putLat)
	allRead := flatten(readLat)
	r.PutP50Micros = percentileMicros(allPut, 0.50)
	r.PutP99Micros = percentileMicros(allPut, 0.99)
	r.Reads = int64(len(allRead))
	r.ReadP50Micros = percentileMicros(allRead, 0.50)
	r.ReadP99Micros = percentileMicros(allRead, 0.99)

	if err := st.Close(); err != nil {
		return nil, fmt.Errorf("closing loaded store: %w", err)
	}

	// Cold start: reopen the directory and time the full recovery.
	start := time.Now()
	st2, err := vstore.Open(dir, diff.Options{}, vcfg)
	if err != nil {
		return nil, fmt.Errorf("recovery reopen: %w", err)
	}
	r.RecoverySeconds = time.Since(start).Seconds()
	rec := st2.RecoveryStats()
	r.RecoveredDocs = len(st2.IDs())
	r.RecoveredVersions = rec.SnapshotVersions + rec.JournalRecords
	if err := st2.Close(); err != nil {
		return nil, err
	}
	if r.RecoveredDocs != cfg.Docs {
		return nil, fmt.Errorf("recovery found %d documents, want %d", r.RecoveredDocs, cfg.Docs)
	}
	return r, nil
}

// Bench6 measures the report at the canned sizes: quick mode is the
// check.sh smoke, full mode is the committed-baseline shape.
func Bench6(quick bool, seed int64) (*Bench6Report, error) {
	cfg := LoadConfig{Seed: seed}
	if quick {
		cfg.Docs, cfg.Writers, cfg.PutsPerWriter = 96, 64, 4
	} else {
		cfg.Docs, cfg.Writers, cfg.PutsPerWriter = 512, 96, 12
	}
	r, err := RunLoad(cfg)
	if err != nil {
		return nil, err
	}
	if quick {
		r.Mode = "quick"
	}
	return r, nil
}

func flatten(per [][]time.Duration) []time.Duration {
	var all []time.Duration
	for _, s := range per {
		all = append(all, s...)
	}
	return all
}

// percentileMicros returns the q-quantile of ds in microseconds (0 for
// an empty sample).
func percentileMicros(ds []time.Duration, q float64) int64 {
	if len(ds) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), ds...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(math.Ceil(q * float64(len(sorted)-1)))
	return sorted[idx].Microseconds()
}

func isBusy(err error) bool { return errors.Is(err, vstore.ErrBusy) }

// WriteJSON serializes the report.
func (r *Bench6Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// ReadBench6 parses a report written by WriteJSON.
func ReadBench6(r io.Reader) (*Bench6Report, error) {
	var out Bench6Report
	if err := json.NewDecoder(r).Decode(&out); err != nil {
		return nil, fmt.Errorf("bench: parsing bench6 report: %w", err)
	}
	return &out, nil
}

// Compare checks a fresh report against a committed baseline and
// returns one message per violated gate. Tolerances are coarse, like
// Bench5's: the gate catches a broken group commit (fsyncs-per-Put
// ballooning, batches collapsing) or a gross latency/recovery
// regression on arbitrary hardware, not small drifts.
func (r *Bench6Report) Compare(baseline *Bench6Report) []string {
	var bad []string
	if baseline.FsyncsPerPut > 0 && r.FsyncsPerPut > 3*baseline.FsyncsPerPut {
		bad = append(bad, fmt.Sprintf("fsyncs per acked Put %.3f > 3x baseline %.3f (group commit regressed)",
			r.FsyncsPerPut, baseline.FsyncsPerPut))
	}
	if r.FsyncsPerPut >= 1.0 {
		bad = append(bad, fmt.Sprintf("fsyncs per acked Put %.3f >= 1.0: group commit is not batching at all", r.FsyncsPerPut))
	}
	if baseline.MeanBatch > 0 && r.MeanBatch < baseline.MeanBatch/3 {
		bad = append(bad, fmt.Sprintf("mean fsync batch %.2f < baseline %.2f / 3", r.MeanBatch, baseline.MeanBatch))
	}
	if baseline.PutP50Micros > 0 && r.PutP50Micros > 3*baseline.PutP50Micros {
		bad = append(bad, fmt.Sprintf("put p50 %dµs > 3x baseline %dµs", r.PutP50Micros, baseline.PutP50Micros))
	}
	if baseline.CacheHitRatio > 0 && r.CacheHitRatio < baseline.CacheHitRatio-0.25 {
		bad = append(bad, fmt.Sprintf("cache hit ratio %.3f below baseline %.3f by more than 0.25",
			r.CacheHitRatio, baseline.CacheHitRatio))
	}
	return bad
}

// PrintBench6 renders the report for humans (the JSON goes to -json).
func PrintBench6(w io.Writer, r *Bench6Report) {
	fmt.Fprintf(w, "# BENCH_6 (%s mode, %s %s/%s, %d CPU)\n", r.Mode, r.GoVersion, r.GOOS, r.GOARCH, r.NumCPU)
	fmt.Fprintf(w, "workload: %d docs, %d writers x %d churn puts, %d shards, sync=%s\n",
		r.Docs, r.Writers, r.PutsPerWriter, r.Shards, r.Sync)
	fmt.Fprintf(w, "acked puts        %d (%d shed with busy)\n", r.AckedPuts, r.Rejected)
	fmt.Fprintf(w, "fsyncs            %d total, %.3f per acked put (mean batch %.2f, max %d)\n",
		r.FsyncTotal, r.FsyncsPerPut, r.MeanBatch, r.MaxBatch)
	fmt.Fprintf(w, "put latency       p50 %dµs, p99 %dµs\n", r.PutP50Micros, r.PutP99Micros)
	fmt.Fprintf(w, "reconstruct       %d reads, p50 %dµs, p99 %dµs\n", r.Reads, r.ReadP50Micros, r.ReadP99Micros)
	fmt.Fprintf(w, "version cache     hit ratio %.3f\n", r.CacheHitRatio)
	fmt.Fprintf(w, "observer          %d notifications\n", r.Notifications)
	fmt.Fprintf(w, "recovery          %.3fs for %d docs / %d versions\n",
		r.RecoverySeconds, r.RecoveredDocs, r.RecoveredVersions)
}
