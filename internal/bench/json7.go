package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"runtime"

	"xydiff/internal/changesim"
	"xydiff/internal/delta"
	"xydiff/internal/diff"
	"xydiff/internal/dom"
)

// Bench7Report is the machine-readable record behind BENCH_7.json: the
// matcher comparison on the id-less HTML corpus. For SFTM and
// BULD-without-IDs it records match precision/recall against the
// change simulator's ground-truth correspondences, the resulting delta
// sizes relative to the perfect delta, and diff time — plus the SFTM
// worker sweep with its byte-identical-delta and Apply round-trip
// verdicts. The regression gate (scripts/benchdiff.sh) holds SFTM to
// beating BULD on the corpus it was built for.
type Bench7Report struct {
	Schema     int    `json:"schema"`
	Mode       string `json:"mode"` // "quick" or "full"
	GoVersion  string `json:"goVersion"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	NumCPU     int    `json:"numCPU"`
	GoMaxProcs int    `json:"gomaxprocs"`
	Seed       int64  `json:"seed"`

	// CorpusChurn is the mutation probability of the headline corpus —
	// the churn level the Wins verdict and the match-quality smoke in
	// `make check` are stated at.
	CorpusChurn float64 `json:"corpusChurn"`

	// Quality holds one row per matcher and churn level.
	Quality []MatchQualityEntry `json:"quality"`

	// Entries records diff time per matcher on the headline corpus.
	Entries []BenchEntry `json:"entries"`

	// Parallel is the SFTM Workers sweep on one corpus pair.
	Parallel []ParallelEntry `json:"parallel"`

	// DeltasIdentical is true when every worker count produced
	// byte-identical SFTM delta XML.
	DeltasIdentical bool `json:"deltasIdentical"`
	// RoundTrips is true when every SFTM delta in the run applied back
	// onto the old document and reproduced the new one exactly.
	RoundTrips bool `json:"roundTrips"`
	// Wins is true when SFTM beat BULD-without-IDs on both precision
	// and recall at the headline churn level.
	Wins bool `json:"wins"`
}

// MatchQualityEntry is one matcher's score at one churn level,
// averaged over the corpus seeds.
type MatchQualityEntry struct {
	Matcher   string  `json:"matcher"`
	Churn     float64 `json:"churn"`
	Precision float64 `json:"precision"`
	Recall    float64 `json:"recall"`
	// DeltaBytes is the total computed delta size over the corpus;
	// PerfectBytes the ground-truth delta size for the same pairs.
	DeltaBytes   int `json:"deltaBytes"`
	PerfectBytes int `json:"perfectBytes"`
}

// bench7Churns are the mutation levels swept; bench7CorpusChurn is the
// headline level the verdicts are stated at.
var bench7Churns = []float64{0.08, 0.12, 0.18, 0.25}

const bench7CorpusChurn = 0.12

// bench7Workers is the SFTM determinism sweep.
var bench7Workers = []int{1, 2, 4, 8}

// Bench7 measures the matcher-comparison report. Quick mode uses fewer
// corpus seeds and smaller pages (a couple of seconds total) and is
// what scripts/check.sh runs; the committed baseline is generated
// without quick.
func Bench7(quick bool, seed int64) (*Bench7Report, error) {
	r := &Bench7Report{
		Schema:      1,
		Mode:        "full",
		GoVersion:   runtime.Version(),
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		NumCPU:      runtime.NumCPU(),
		GoMaxProcs:  runtime.GOMAXPROCS(0),
		Seed:        seed,
		CorpusChurn: bench7CorpusChurn,
		RoundTrips:  true,
	}
	seeds, sections, reps := int64(8), 12, 5
	if quick {
		r.Mode = "quick"
		seeds, sections, reps = 5, 6, 2
	}

	matchers := []struct {
		name string
		opts diff.Options
	}{
		{"sftm", diff.Options{Matcher: diff.MatcherSFTM}},
		{"buld", diff.Options{DisableIDAttributes: true}},
	}

	for _, churn := range bench7Churns {
		for _, m := range matchers {
			entry := MatchQualityEntry{Matcher: m.name, Churn: churn}
			var precision, recall float64
			for s := int64(0); s < seeds; s++ {
				doc := changesim.HTMLPage(rand.New(rand.NewSource(seed+s)), sections)
				sim, err := changesim.SimulateHTML(doc, changesim.UniformHTML(churn, (seed+s)*17))
				if err != nil {
					return nil, err
				}
				pairs, err := diff.Matching(doc, sim.New, m.opts)
				if err != nil {
					return nil, err
				}
				correct := 0
				for o, n := range pairs {
					if sim.Pairs[o] == n {
						correct++
					}
				}
				if len(pairs) > 0 {
					precision += float64(correct) / float64(len(pairs))
				}
				recall += float64(correct) / float64(len(sim.Pairs))

				d, err := diff.Diff(doc.Clone(), sim.New.Clone(), m.opts)
				if err != nil {
					return nil, err
				}
				dXML, err := d.MarshalText()
				if err != nil {
					return nil, err
				}
				entry.DeltaBytes += len(dXML)
				entry.PerfectBytes += sim.Perfect.Size()
				if m.name == "sftm" {
					if err := bench7RoundTrip(doc, sim.New, string(dXML)); err != nil {
						r.RoundTrips = false
					}
				}
			}
			entry.Precision = precision / float64(seeds)
			entry.Recall = recall / float64(seeds)
			r.Quality = append(r.Quality, entry)
		}
	}

	// The headline verdict: at the corpus churn level SFTM must beat
	// BULD-without-IDs on both axes.
	var sftmQ, buldQ MatchQualityEntry
	for _, q := range r.Quality {
		if q.Churn == bench7CorpusChurn {
			if q.Matcher == "sftm" {
				sftmQ = q
			} else {
				buldQ = q
			}
		}
	}
	r.Wins = sftmQ.Precision > buldQ.Precision && sftmQ.Recall > buldQ.Recall

	// Diff time per matcher on one headline-churn pair.
	timeDoc := changesim.HTMLPage(rand.New(rand.NewSource(seed)), sections*4)
	timeSim, err := changesim.SimulateHTML(timeDoc, changesim.UniformHTML(bench7CorpusChurn, seed*17))
	if err != nil {
		return nil, err
	}
	for _, m := range matchers {
		opts := m.opts
		opts.Workers = 1
		var diffErr error
		ns, bytesOp, allocs := measure(reps, func() {
			if _, err2 := diff.Diff(timeDoc.Clone(), timeSim.New.Clone(), opts); err2 != nil {
				diffErr = err2
			}
		})
		if diffErr != nil {
			return nil, diffErr
		}
		r.Entries = append(r.Entries, BenchEntry{
			Name:        "html/" + m.name,
			NsPerOp:     ns,
			BytesPerOp:  bytesOp,
			AllocsPerOp: allocs,
		})
	}

	// SFTM Workers sweep: the matching is sequential by design, so the
	// deltas must stay byte-identical while the parallel tree phases
	// scale — and each one must survive the Apply round trip.
	r.DeltasIdentical = true
	var refDelta string
	var baseNs int64
	for _, w := range bench7Workers {
		opts := diff.Options{Matcher: diff.MatcherSFTM, Workers: w}
		var deltaXML string
		var diffErr error
		ns, _, _ := measure(reps, func() {
			d, err2 := diff.Diff(timeDoc.Clone(), timeSim.New.Clone(), opts)
			if err2 != nil {
				diffErr = err2
				return
			}
			b, err2 := d.MarshalText()
			if err2 != nil {
				diffErr = err2
				return
			}
			deltaXML = string(b)
		})
		if diffErr != nil {
			return nil, diffErr
		}
		if refDelta == "" {
			refDelta = deltaXML
			baseNs = ns
		} else if deltaXML != refDelta {
			r.DeltasIdentical = false
		}
		if err := bench7RoundTrip(timeDoc, timeSim.New, deltaXML); err != nil {
			r.RoundTrips = false
		}
		speedup := 0.0
		if ns > 0 {
			speedup = float64(baseNs) / float64(ns)
		}
		r.Parallel = append(r.Parallel, ParallelEntry{
			Workers: w,
			NsPerOp: ns,
			Speedup: speedup,
			DeltaB:  len(deltaXML),
		})
	}
	return r, nil
}

// bench7RoundTrip re-parses the delta XML and applies it onto a clone
// of oldDoc, demanding the exact new document back — the full
// serialize/parse/apply loop a stored delta must survive.
func bench7RoundTrip(oldDoc, newDoc *dom.Node, deltaXML string) error {
	d, err := delta.ParseString(deltaXML)
	if err != nil {
		return fmt.Errorf("bench7: reparsing delta: %w", err)
	}
	got, err := delta.ApplyClone(oldDoc, d)
	if err != nil {
		return fmt.Errorf("bench7: applying delta: %w", err)
	}
	if !dom.Equal(got, newDoc) {
		return fmt.Errorf("bench7: delta does not reproduce the new document: %s", dom.Diagnose(got, newDoc))
	}
	return nil
}

// WriteJSON serializes the report.
func (r *Bench7Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// ReadBench7 parses a report written by WriteJSON.
func ReadBench7(r io.Reader) (*Bench7Report, error) {
	var out Bench7Report
	if err := json.NewDecoder(r).Decode(&out); err != nil {
		return nil, fmt.Errorf("bench: parsing bench7 report: %w", err)
	}
	return &out, nil
}

// Compare checks a fresh report against a committed baseline and
// returns one message per violated gate. The hard invariants
// (byte-identical deltas, Apply round trips, SFTM beating BULD at the
// corpus churn) are absolute; times may grow 3x, and precision/recall
// may drop at most 0.03 below the baseline at each swept churn level.
func (r *Bench7Report) Compare(baseline *Bench7Report) []string {
	var bad []string
	if !r.DeltasIdentical {
		bad = append(bad, "sftm worker sweep produced non-identical deltas")
	}
	if !r.RoundTrips {
		bad = append(bad, "an sftm delta failed the Apply round trip")
	}
	if !r.Wins {
		bad = append(bad, fmt.Sprintf("sftm does not beat buld-without-ids at churn %.2f", r.CorpusChurn))
	}
	base := map[string]BenchEntry{}
	for _, e := range baseline.Entries {
		base[e.Name] = e
	}
	for _, e := range r.Entries {
		if b, ok := base[e.Name]; ok && b.NsPerOp > 0 && e.NsPerOp > 3*b.NsPerOp {
			bad = append(bad, fmt.Sprintf("%s: time %dns/op > 3x baseline %dns/op", e.Name, e.NsPerOp, b.NsPerOp))
		}
	}
	baseQ := map[string]MatchQualityEntry{}
	for _, q := range baseline.Quality {
		baseQ[fmt.Sprintf("%s@%.2f", q.Matcher, q.Churn)] = q
	}
	for _, q := range r.Quality {
		b, ok := baseQ[fmt.Sprintf("%s@%.2f", q.Matcher, q.Churn)]
		if !ok {
			continue
		}
		if q.Precision < b.Precision-0.03 {
			bad = append(bad, fmt.Sprintf("%s@%.2f: precision %.3f more than 0.03 below baseline %.3f", q.Matcher, q.Churn, q.Precision, b.Precision))
		}
		if q.Recall < b.Recall-0.03 {
			bad = append(bad, fmt.Sprintf("%s@%.2f: recall %.3f more than 0.03 below baseline %.3f", q.Matcher, q.Churn, q.Recall, b.Recall))
		}
	}
	return bad
}

// PrintBench7 renders the report for humans (the JSON goes to -json).
func PrintBench7(w io.Writer, r *Bench7Report) {
	fmt.Fprintf(w, "# BENCH_7 (%s mode, %s %s/%s, %d CPU)\n", r.Mode, r.GoVersion, r.GOOS, r.GOARCH, r.NumCPU)
	fmt.Fprintf(w, "%-14s %6s %10s %8s %12s %14s\n", "matcher", "churn", "precision", "recall", "delta(B)", "perfect(B)")
	for _, q := range r.Quality {
		fmt.Fprintf(w, "%-14s %6.2f %10.3f %8.3f %12d %14d\n", q.Matcher, q.Churn, q.Precision, q.Recall, q.DeltaBytes, q.PerfectBytes)
	}
	fmt.Fprintf(w, "%-24s %14s %14s %12s\n", "workload", "ns/op", "B/op", "allocs/op")
	for _, e := range r.Entries {
		fmt.Fprintf(w, "%-24s %14d %14d %12d\n", e.Name, e.NsPerOp, e.BytesPerOp, e.AllocsPerOp)
	}
	fmt.Fprintf(w, "%-24s %14s %10s %12s\n", "parallel (sftm)", "ns/op", "speedup", "delta(B)")
	for _, p := range r.Parallel {
		fmt.Fprintf(w, "workers=%-16d %14d %9.2fx %12d\n", p.Workers, p.NsPerOp, p.Speedup, p.DeltaB)
	}
	fmt.Fprintf(w, "deltas identical across workers: %v\n", r.DeltasIdentical)
	fmt.Fprintf(w, "apply round trips: %v\n", r.RoundTrips)
	fmt.Fprintf(w, "sftm beats buld at churn %.2f: %v\n", r.CorpusChurn, r.Wins)
}
