package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"sort"

	"xydiff/internal/changesim"
	"xydiff/internal/diff"
	"xydiff/internal/dom"
	"xydiff/internal/optdelta"
)

// Bench8Report is the machine-readable record behind BENCH_8.json: the
// optimality-ratio experiment. On generated small-tree pairs (capped
// so the optdelta oracle can prove a true optimum), it reports each
// matcher's delta cost as a ratio to the exact minimum — the honest
// version of "how good are BULD's deltas", where BENCH_5–7 could only
// compare against changesim's scripted delta. The Sound verdict is the
// oracle's core invariant: a proven optimum must never exceed a
// computed script's cost.
type Bench8Report struct {
	Schema     int    `json:"schema"`
	Mode       string `json:"mode"` // "quick" or "full"
	GoVersion  string `json:"goVersion"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	NumCPU     int    `json:"numCPU"`
	GoMaxProcs int    `json:"gomaxprocs"`
	Seed       int64  `json:"seed"`

	// MaxNodes is the oracle's per-tree cap; every ratio below is
	// measured on trees of at most this many nodes. Small trees only —
	// exact optimal diffing is exponential, and the cap keeps the
	// optimum provable rather than approximated.
	MaxNodes  int   `json:"maxNodes"`
	MaxStates int64 `json:"maxStates"`
	// Churn is the uniform mutation probability of the generated pairs.
	Churn float64 `json:"churn"`

	// Pairs is the number of pairs with a completed optimality proof —
	// the denominator of every distribution below. Generated counts
	// all attempts; Inexact the proofs abandoned at the state budget;
	// SkippedLarge the pairs whose mutated tree outgrew the cap;
	// SkippedNoChange the pairs the simulator left unchanged.
	Pairs           int   `json:"pairs"`
	Generated       int   `json:"generated"`
	Inexact         int   `json:"inexact"`
	SkippedLarge    int   `json:"skippedLarge"`
	SkippedNoChange int   `json:"skippedNoChange"`
	StatesTotal     int64 `json:"statesTotal"`

	// Ratios holds one cost/optimum distribution per delta source.
	Ratios []Bench8Ratio `json:"ratios"`

	// Sound is true when no computed delta ever cost less than the
	// proven optimum — the invariant that makes the ratios meaningful.
	Sound bool `json:"sound"`
}

// Bench8Ratio is one delta source's cost/optimum distribution.
type Bench8Ratio struct {
	// Matcher is "buld", "sftm", or "perfect" (changesim's scripted
	// delta, included to show how far even the ground-truth script
	// sits from the optimum).
	Matcher string  `json:"matcher"`
	Mean    float64 `json:"mean"`
	P50     float64 `json:"p50"`
	P90     float64 `json:"p90"`
	Max     float64 `json:"max"`
	// OptimalHits counts pairs where this source's cost equals the
	// exact optimum.
	OptimalHits int `json:"optimalHits"`
}

const bench8Churn = 0.15

// Bench8 measures the optimality-ratio report. Quick mode proves
// fewer pairs under a smaller search budget and is what the check gate
// runs; the committed baseline is generated without quick.
func Bench8(quick bool, seed int64) (*Bench8Report, error) {
	r := &Bench8Report{
		Schema:     1,
		Mode:       "full",
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Seed:       seed,
		MaxNodes:   optdelta.DefaultMaxNodes,
		MaxStates:  optdelta.DefaultMaxStates,
		Churn:      bench8Churn,
		Sound:      true,
	}
	target := 200
	if quick {
		r.Mode = "quick"
		target = 50
		r.MaxStates = 400_000
	}

	sources := []string{"buld", "sftm", "perfect"}
	ratios := map[string][]float64{}
	hits := map[string]int{}

	for attempt := int64(0); r.Pairs < target && attempt < int64(target)*6; attempt++ {
		r.Generated++
		rng := rand.New(rand.NewSource(seed + attempt*101))
		oldDoc := changesim.Generic(rng, 8+rng.Intn(14), 3, 5)
		sim, err := changesim.Simulate(oldDoc, changesim.Uniform(bench8Churn, seed*31+attempt))
		if err != nil {
			return nil, err
		}
		if oldDoc.Size()-1 > r.MaxNodes || sim.New.Size()-1 > r.MaxNodes {
			r.SkippedLarge++
			continue
		}
		if dom.Equal(oldDoc, sim.New) {
			r.SkippedNoChange++
			continue
		}
		costs := map[string]int{"perfect": optdelta.ScriptCost(sim.Perfect)}
		db, err := diff.Diff(oldDoc.Clone(), sim.New.Clone(), diff.Options{})
		if err != nil {
			return nil, err
		}
		costs["buld"] = optdelta.ScriptCost(db)
		ds, err := diff.Diff(oldDoc.Clone(), sim.New.Clone(), diff.Options{Matcher: diff.MatcherSFTM})
		if err != nil {
			return nil, err
		}
		costs["sftm"] = optdelta.ScriptCost(ds)
		ub := costs["buld"]
		for _, c := range costs {
			if c < ub {
				ub = c
			}
		}
		res, err := optdelta.Optimal(oldDoc, sim.New, optdelta.Options{
			MaxNodes:   r.MaxNodes,
			MaxStates:  r.MaxStates,
			UpperBound: ub,
		})
		if err != nil {
			return nil, err
		}
		r.StatesTotal += res.States
		if !res.Exact {
			r.Inexact++
			continue
		}
		if res.Cost < 1 {
			// Unequal trees need at least one operation; a cheaper
			// "proof" would be an oracle bug.
			r.Sound = false
			continue
		}
		r.Pairs++
		for _, src := range sources {
			if costs[src] < res.Cost {
				r.Sound = false
			}
			if costs[src] == res.Cost {
				hits[src]++
			}
			ratios[src] = append(ratios[src], float64(costs[src])/float64(res.Cost))
		}
	}

	for _, src := range sources {
		r.Ratios = append(r.Ratios, summarizeRatios(src, ratios[src], hits[src]))
	}
	return r, nil
}

func summarizeRatios(name string, vals []float64, hits int) Bench8Ratio {
	out := Bench8Ratio{Matcher: name, OptimalHits: hits}
	if len(vals) == 0 {
		return out
	}
	sorted := append([]float64{}, vals...)
	sort.Float64s(sorted)
	sum := 0.0
	for _, v := range sorted {
		sum += v
	}
	out.Mean = sum / float64(len(sorted))
	out.P50 = sorted[len(sorted)/2]
	out.P90 = sorted[len(sorted)*9/10]
	out.Max = sorted[len(sorted)-1]
	return out
}

// WriteJSON serializes the report.
func (r *Bench8Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// ReadBench8 parses a report written by WriteJSON.
func ReadBench8(r io.Reader) (*Bench8Report, error) {
	var out Bench8Report
	if err := json.NewDecoder(r).Decode(&out); err != nil {
		return nil, fmt.Errorf("bench: parsing bench8 report: %w", err)
	}
	return &out, nil
}

// Compare checks a fresh report against a committed baseline and
// returns one message per violated gate. Soundness is absolute: no
// matcher may ever beat the proven optimum. Quality gates tolerate
// mode differences (the gate runs quick against a full baseline): each
// source's mean ratio may sit at most 0.15 above the baseline's, and
// the fraction of pairs proven exact may drop at most 0.10.
func (r *Bench8Report) Compare(baseline *Bench8Report) []string {
	var bad []string
	if !r.Sound {
		bad = append(bad, "a computed delta cost less than the proven optimum (oracle or cost-model bug)")
	}
	if r.Pairs == 0 {
		bad = append(bad, "no pairs were proven optimal; the experiment measured nothing")
		return bad
	}
	exactFrac := func(rep *Bench8Report) float64 {
		attempted := rep.Pairs + rep.Inexact
		if attempted == 0 {
			return 0
		}
		return float64(rep.Pairs) / float64(attempted)
	}
	if got, want := exactFrac(r), exactFrac(baseline); got < want-0.10 {
		bad = append(bad, fmt.Sprintf("exact-proof fraction %.2f more than 0.10 below baseline %.2f", got, want))
	}
	baseR := map[string]Bench8Ratio{}
	for _, q := range baseline.Ratios {
		baseR[q.Matcher] = q
	}
	for _, q := range r.Ratios {
		b, ok := baseR[q.Matcher]
		if !ok {
			continue
		}
		if q.Mean > b.Mean+0.15 {
			bad = append(bad, fmt.Sprintf("%s: mean optimality ratio %.3f more than 0.15 above baseline %.3f", q.Matcher, q.Mean, b.Mean))
		}
	}
	return bad
}

// PrintBench8 renders the report for humans (the JSON goes to -json).
func PrintBench8(w io.Writer, r *Bench8Report) {
	fmt.Fprintf(w, "# BENCH_8 (%s mode, %s %s/%s, %d CPU)\n", r.Mode, r.GoVersion, r.GOOS, r.GOARCH, r.NumCPU)
	fmt.Fprintf(w, "pairs proven optimal: %d (generated %d, inexact %d, too large %d, unchanged %d)\n",
		r.Pairs, r.Generated, r.Inexact, r.SkippedLarge, r.SkippedNoChange)
	fmt.Fprintf(w, "tree cap: %d nodes; search budget: %d states (%d used total)\n",
		r.MaxNodes, r.MaxStates, r.StatesTotal)
	fmt.Fprintf(w, "%-10s %8s %8s %8s %8s %14s\n", "source", "mean", "p50", "p90", "max", "optimal-hits")
	for _, q := range r.Ratios {
		fmt.Fprintf(w, "%-10s %8.3f %8.3f %8.3f %8.3f %11d/%d\n",
			q.Matcher, q.Mean, q.P50, q.P90, q.Max, q.OptimalHits, r.Pairs)
	}
	fmt.Fprintf(w, "sound (no delta beat the optimum): %v\n", r.Sound)
}
