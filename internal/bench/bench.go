// Package bench contains the experiment runners that regenerate the
// paper's tables and figures (Section 6). Each experiment is a pure
// function from parameters to result rows, shared by the xybench CLI
// and the root-level testing.B benchmarks; EXPERIMENTS.md records the
// measured outcomes next to the paper's claims.
package bench

import (
	"fmt"
	"io"
	"math/rand"
	"time"

	"xydiff/internal/baseline"
	"xydiff/internal/changesim"
	"xydiff/internal/delta"
	"xydiff/internal/diff"
	"xydiff/internal/dom"
	"xydiff/internal/stats"
	"xydiff/internal/textdiff"
)

// ---------------------------------------------------------------------------
// Figure 4: per-phase running time vs. document size.

// Fig4Point is one measurement of Figure 4: the per-phase running time
// of the diff for a document pair of a given total size.
type Fig4Point struct {
	Bytes    int // total size of both serialized documents
	Nodes    int
	Phase12  time.Duration // parse/annotate + ID matching (paper: "phase 1 + phase 2")
	Phase3   time.Duration
	Phase4   time.Duration
	Phase5   time.Duration
	Total    time.Duration
	OpsTotal int
}

// Fig4 measures the phase decomposition over a size sweep. Sizes are
// target byte sizes of the old document; the change simulator runs at
// the paper's 10% probabilities.
func Fig4(sizes []int, seed int64) ([]Fig4Point, error) {
	return Fig4Opts(sizes, seed, diff.Options{})
}

// Fig4Opts is Fig4 with explicit diff options (the xybench -workers
// flag threads through here).
func Fig4Opts(sizes []int, seed int64, opts diff.Options) ([]Fig4Point, error) {
	rng := rand.New(rand.NewSource(seed))
	var out []Fig4Point
	for _, size := range sizes {
		oldDoc := changesim.CatalogOfSize(rng, size)
		sim, err := changesim.Simulate(oldDoc, changesim.Uniform(0.10, seed+int64(size)))
		if err != nil {
			return nil, err
		}
		oldBytes := len(oldDoc.String())
		newBytes := len(sim.New.String())
		r, err := diff.DiffDetailed(oldDoc.Clone(), sim.New.Clone(), opts)
		if err != nil {
			return nil, err
		}
		out = append(out, Fig4Point{
			Bytes:    oldBytes + newBytes,
			Nodes:    r.OldNodes + r.NewNodes,
			Phase12:  r.Timings.Phase1 + r.Timings.Phase2,
			Phase3:   r.Timings.Phase3,
			Phase4:   r.Timings.Phase4,
			Phase5:   r.Timings.Phase5,
			Total:    r.Timings.Total(),
			OpsTotal: r.Delta.Count().Total(),
		})
	}
	return out, nil
}

// PrintFig4 renders the sweep as the series behind Figure 4.
func PrintFig4(w io.Writer, points []Fig4Point) {
	fmt.Fprintf(w, "# Figure 4: time cost of the different phases (microseconds)\n")
	fmt.Fprintf(w, "%12s %10s %12s %12s %12s %12s %12s\n",
		"bytes", "nodes", "phase1+2", "phase3", "phase4", "phase5", "total")
	for _, p := range points {
		fmt.Fprintf(w, "%12d %10d %12d %12d %12d %12d %12d\n",
			p.Bytes, p.Nodes, p.Phase12.Microseconds(), p.Phase3.Microseconds(),
			p.Phase4.Microseconds(), p.Phase5.Microseconds(), p.Total.Microseconds())
	}
}

// ---------------------------------------------------------------------------
// Figure 5: computed delta size vs. synthetic (perfect) delta size.

// Fig5Point compares the diff's delta against the change simulator's
// perfect delta for one change rate.
type Fig5Point struct {
	ChangeRate    float64
	PerfectBytes  int
	ComputedBytes int
	PerfectOps    int
	ComputedOps   int
	Ratio         float64 // computed / perfect, the paper's quality measure
}

// Fig5 sweeps change rates on a document of the given size, including
// the move-heavy mixes the paper highlights.
func Fig5(docBytes int, rates []float64, seed int64) ([]Fig5Point, error) {
	rng := rand.New(rand.NewSource(seed))
	oldDoc := changesim.CatalogOfSize(rng, docBytes)
	var out []Fig5Point
	for i, rate := range rates {
		sim, err := changesim.Simulate(oldDoc, changesim.Uniform(rate, seed+int64(i)+1))
		if err != nil {
			return nil, err
		}
		d, err := diff.Diff(oldDoc.Clone(), sim.New.Clone(), diff.Options{})
		if err != nil {
			return nil, err
		}
		perfect := sim.Perfect.Size()
		computed := d.Size()
		ratio := 0.0
		if perfect > 0 {
			ratio = float64(computed) / float64(perfect)
		}
		out = append(out, Fig5Point{
			ChangeRate:    rate,
			PerfectBytes:  perfect,
			ComputedBytes: computed,
			PerfectOps:    sim.Perfect.Count().Total(),
			ComputedOps:   d.Count().Total(),
			Ratio:         ratio,
		})
	}
	return out, nil
}

// PrintFig5 renders the quality sweep.
func PrintFig5(w io.Writer, points []Fig5Point) {
	fmt.Fprintf(w, "# Figure 5: quality of diff (computed delta vs synthetic perfect delta)\n")
	fmt.Fprintf(w, "%8s %14s %14s %12s %12s %8s\n",
		"rate", "perfect(B)", "computed(B)", "perfectOps", "computedOps", "ratio")
	for _, p := range points {
		fmt.Fprintf(w, "%8.2f %14d %14d %12d %12d %8.2f\n",
			p.ChangeRate, p.PerfectBytes, p.ComputedBytes, p.PerfectOps, p.ComputedOps, p.Ratio)
	}
}

// ---------------------------------------------------------------------------
// Figure 6: delta size over Unix diff size on web-like documents.

// Fig6Point compares the XML delta with Unix diff output for one
// document pair of the synthetic web corpus.
type Fig6Point struct {
	DocBytes  int
	DeltaSize int
	UnixSize  int
	Ratio     float64
	Kind      string
}

// Fig6Summary aggregates the per-document ratios the way the paper's
// figure legend does.
type Fig6Summary struct {
	Docs        int
	MeanRatio   float64
	NearEqual   int // ratio in [0.5, 2]
	TwiceLarger int // ratio > 2
	TwiceSmall  int // ratio < 0.5
}

// Fig6 runs the web-corpus experiment with count document pairs.
func Fig6(count int, seed int64) ([]Fig6Point, Fig6Summary, error) {
	rng := rand.New(rand.NewSource(seed))
	corpus, err := changesim.WebCorpus(rng, count)
	if err != nil {
		return nil, Fig6Summary{}, err
	}
	var out []Fig6Point
	var sum Fig6Summary
	var totalRatio float64
	for _, cd := range corpus {
		oldText := cd.Old.String()
		newText := cd.New.String()
		d, err := diff.Diff(cd.Old, cd.New, diff.Options{})
		if err != nil {
			return nil, sum, err
		}
		unixSize := textdiff.Size(prettyLines(oldText), prettyLines(newText))
		if unixSize == 0 {
			continue // no textual change: ratio undefined
		}
		ratio := float64(d.Size()) / float64(unixSize)
		out = append(out, Fig6Point{
			DocBytes: len(oldText), DeltaSize: d.Size(), UnixSize: unixSize,
			Ratio: ratio, Kind: cd.Kind,
		})
		totalRatio += ratio
		switch {
		case ratio > 2:
			sum.TwiceLarger++
		case ratio < 0.5:
			sum.TwiceSmall++
		default:
			sum.NearEqual++
		}
		sum.Docs++
	}
	if sum.Docs > 0 {
		sum.MeanRatio = totalRatio / float64(sum.Docs)
	}
	return out, sum, nil
}

// prettyLines re-serializes the one-line canonical XML with one node
// per line, the way web XML is usually formatted; without this, Unix
// diff sees a single line and its output balloons (a weakness of line
// diffs the paper mentions).
func prettyLines(xml string) string {
	out := make([]byte, 0, len(xml)+len(xml)/8)
	for i := 0; i < len(xml); i++ {
		out = append(out, xml[i])
		if xml[i] == '>' {
			out = append(out, '\n')
		}
	}
	return string(out)
}

// PrintFig6 renders the per-size ratio series and the summary.
func PrintFig6(w io.Writer, points []Fig6Point, sum Fig6Summary) {
	fmt.Fprintf(w, "# Figure 6: delta size over Unix diff size ratio\n")
	fmt.Fprintf(w, "%12s %12s %12s %8s  %s\n", "doc(B)", "delta(B)", "unixdiff(B)", "ratio", "kind")
	for _, p := range points {
		fmt.Fprintf(w, "%12d %12d %12d %8.2f  %s\n", p.DocBytes, p.DeltaSize, p.UnixSize, p.Ratio, p.Kind)
	}
	fmt.Fprintf(w, "# %d docs, mean ratio %.2f; near-equal %d, >2x %d, <0.5x %d\n",
		sum.Docs, sum.MeanRatio, sum.NearEqual, sum.TwiceLarger, sum.TwiceSmall)
}

// ---------------------------------------------------------------------------
// Section 6.2: the web-site snapshot experiment.

// SiteResult reports the headline snapshot-diff measurements.
type SiteResult struct {
	Pages     int
	DocBytes  int
	CoreTime  time.Duration // phases 3+4, the paper's "core ... less than two seconds"
	TotalTime time.Duration // including annotation and delta construction
	DeltaSize int
	Ops       delta.Counts
}

// Site diffs two synthetic snapshots of a web site with the given page
// count (the paper's www.inria.fr had about fourteen thousand pages).
func Site(pages int, seed int64) (SiteResult, error) {
	return SiteOpts(pages, seed, diff.Options{})
}

// SiteOpts is Site with explicit diff options.
func SiteOpts(pages int, seed int64, opts diff.Options) (SiteResult, error) {
	oldDoc, newDoc, err := changesim.SiteSnapshotPair(seed, pages)
	if err != nil {
		return SiteResult{}, err
	}
	size := len(oldDoc.String())
	r, err := diff.DiffDetailed(oldDoc, newDoc, opts)
	if err != nil {
		return SiteResult{}, err
	}
	return SiteResult{
		Pages:     pages,
		DocBytes:  size,
		CoreTime:  r.Timings.Phase3 + r.Timings.Phase4,
		TotalTime: r.Timings.Total(),
		DeltaSize: r.Delta.Size(),
		Ops:       r.Delta.Count(),
	}, nil
}

// PrintSite renders the snapshot result.
func PrintSite(w io.Writer, r SiteResult) {
	fmt.Fprintf(w, "# Section 6.2: web-site snapshot diff\n")
	fmt.Fprintf(w, "pages=%d size=%dB core=%v total=%v delta=%dB ops=(%s)\n",
		r.Pages, r.DocBytes, r.CoreTime, r.TotalTime, r.DeltaSize, r.Ops)
}

// ---------------------------------------------------------------------------
// State-of-the-art comparison: BULD vs the quadratic baselines.

// BaselinePoint compares running time and delta size across algorithms
// for one document size.
type BaselinePoint struct {
	Nodes     int
	BULD      time.Duration
	LuSelkow  time.Duration
	LaDiff    time.Duration
	DiffMK    time.Duration
	BULDSize  int
	LuSize    int
	LaSize    int
	DiffMKOps int
}

// Baselines sweeps node counts with the standard 10% change mix. The
// quadratic baselines dominate the running time of this experiment, so
// keep sizes moderate.
func Baselines(nodeCounts []int, seed int64) ([]BaselinePoint, error) {
	rng := rand.New(rand.NewSource(seed))
	var out []BaselinePoint
	for _, n := range nodeCounts {
		oldDoc := changesim.Generic(rng, n, 8, 6)
		sim, err := changesim.Simulate(oldDoc, changesim.Uniform(0.10, seed+int64(n)))
		if err != nil {
			return nil, err
		}
		var p BaselinePoint
		p.Nodes = oldDoc.Size()

		start := time.Now()
		db, err := diff.Diff(oldDoc.Clone(), sim.New.Clone(), diff.Options{})
		if err != nil {
			return nil, err
		}
		p.BULD = time.Since(start)
		p.BULDSize = db.Size()

		start = time.Now()
		dl, err := baseline.LuSelkow(oldDoc.Clone(), sim.New.Clone())
		if err != nil {
			return nil, err
		}
		p.LuSelkow = time.Since(start)
		p.LuSize = dl.Size()

		start = time.Now()
		dd, err := baseline.LaDiff(oldDoc.Clone(), sim.New.Clone())
		if err != nil {
			return nil, err
		}
		p.LaDiff = time.Since(start)
		p.LaSize = dd.Size()

		start = time.Now()
		mk := baseline.DiffMK(oldDoc, sim.New)
		p.DiffMK = time.Since(start)
		p.DiffMKOps = mk.Changed()

		out = append(out, p)
	}
	return out, nil
}

// PrintBaselines renders the comparison table.
func PrintBaselines(w io.Writer, points []BaselinePoint) {
	fmt.Fprintf(w, "# State of the art: running time (microseconds) and delta size (bytes)\n")
	fmt.Fprintf(w, "%8s %10s %10s %10s %10s %10s %10s %10s\n",
		"nodes", "buld(us)", "lu(us)", "ladiff(us)", "diffmk(us)", "buld(B)", "lu(B)", "ladiff(B)")
	for _, p := range points {
		fmt.Fprintf(w, "%8d %10d %10d %10d %10d %10d %10d %10d\n",
			p.Nodes, p.BULD.Microseconds(), p.LuSelkow.Microseconds(),
			p.LaDiff.Microseconds(), p.DiffMK.Microseconds(),
			p.BULDSize, p.LuSize, p.LaSize)
	}
}

// ---------------------------------------------------------------------------
// Move-detection quality (the Section 6.1 discussion around Figure 5).

// MovePoint compares computed and perfect deltas under a move-heavy
// change mix.
type MovePoint struct {
	MoveProb     float64
	PerfectMoves int
	FoundMoves   int
	PerfectBytes int
	FoundBytes   int
}

// Moves sweeps the move probability while keeping the other operations
// at a low fixed rate, isolating move-detection quality.
func Moves(docBytes int, probs []float64, seed int64) ([]MovePoint, error) {
	rng := rand.New(rand.NewSource(seed))
	oldDoc := changesim.CatalogOfSize(rng, docBytes)
	var out []MovePoint
	for i, prob := range probs {
		sim, err := changesim.Simulate(oldDoc, changesim.Params{
			DeleteProb: 0.08, UpdateProb: 0.02, InsertProb: 0.08,
			MoveProb: prob, Seed: seed + int64(i),
		})
		if err != nil {
			return nil, err
		}
		d, err := diff.Diff(oldDoc.Clone(), sim.New.Clone(), diff.Options{})
		if err != nil {
			return nil, err
		}
		out = append(out, MovePoint{
			MoveProb:     prob,
			PerfectMoves: sim.Perfect.Count().Moves,
			FoundMoves:   d.Count().Moves,
			PerfectBytes: sim.Perfect.Size(),
			FoundBytes:   d.Size(),
		})
	}
	return out, nil
}

// PrintMoves renders the move-quality sweep.
func PrintMoves(w io.Writer, points []MovePoint) {
	fmt.Fprintf(w, "# Move detection quality\n")
	fmt.Fprintf(w, "%10s %14s %12s %14s %12s\n", "moveProb", "perfectMoves", "foundMoves", "perfect(B)", "found(B)")
	for _, p := range points {
		fmt.Fprintf(w, "%10.2f %14d %12d %14d %12d\n",
			p.MoveProb, p.PerfectMoves, p.FoundMoves, p.PerfectBytes, p.FoundBytes)
	}
}

// ---------------------------------------------------------------------------
// Ablations over the design choices DESIGN.md calls out.

// AblationPoint measures one configuration on the standard workload.
type AblationPoint struct {
	Name      string
	Time      time.Duration
	DeltaSize int
	Ops       int
}

// Ablations compares the paper's configuration against variants:
// eager-down matching, no ID attributes, exact vs windowed intra-parent
// LIS, and extra propagation passes.
func Ablations(docBytes int, seed int64) ([]AblationPoint, error) {
	rng := rand.New(rand.NewSource(seed))
	oldDoc := changesim.CatalogOfSize(rng, docBytes)
	sim, err := changesim.Simulate(oldDoc, changesim.Uniform(0.10, seed+7))
	if err != nil {
		return nil, err
	}
	configs := []struct {
		name string
		opts diff.Options
	}{
		{"paper-default", diff.Options{}},
		{"eager-down", diff.Options{EagerDown: true}},
		{"no-id-attrs", diff.Options{DisableIDAttributes: true}},
		{"lis-exact", diff.Options{LISWindow: -1}},
		{"lis-window-8", diff.Options{LISWindow: 8}},
		{"passes-3", diff.Options{PropagationPasses: 3}},
		{"depth-1", diff.Options{MaxAncestorDepth: 1}},
	}
	var out []AblationPoint
	for _, cfg := range configs {
		start := time.Now()
		d, err := diff.Diff(oldDoc.Clone(), sim.New.Clone(), cfg.opts)
		if err != nil {
			return nil, err
		}
		out = append(out, AblationPoint{
			Name: cfg.name, Time: time.Since(start),
			DeltaSize: d.Size(), Ops: d.Count().Total(),
		})
	}
	return out, nil
}

// PrintAblations renders the configuration comparison.
func PrintAblations(w io.Writer, points []AblationPoint) {
	fmt.Fprintf(w, "# Ablations (10%% change mix)\n")
	fmt.Fprintf(w, "%-16s %10s %12s %8s\n", "config", "time(us)", "delta(B)", "ops")
	for _, p := range points {
		fmt.Fprintf(w, "%-16s %10d %12d %8d\n", p.Name, p.Time.Microseconds(), p.DeltaSize, p.Ops)
	}
}

// VerifyDoc diffs and round-trips one document pair, returning an error
// if the delta is not faithful. The harness runs it under the hood so
// experiment numbers are never reported off a broken delta.
func VerifyDoc(oldDoc, newDoc *dom.Node, opts diff.Options) error {
	o := oldDoc.Clone()
	d, err := diff.Diff(o, newDoc.Clone(), opts)
	if err != nil {
		return err
	}
	got, err := delta.ApplyClone(o, d)
	if err != nil {
		return err
	}
	if !dom.Equal(got, newDoc) {
		return fmt.Errorf("bench: delta does not reproduce the new version")
	}
	return nil
}

// ChangeStats runs a multi-week change process over a corpus and
// returns the accumulated per-label change statistics (the conclusion's
// "gather statistics on change frequency, patterns of changes").
func ChangeStats(docBytes, weeks int, seed int64) (stats.Report, error) {
	rng := rand.New(rand.NewSource(seed))
	collector := stats.NewCollector()
	cur := changesim.CatalogOfSize(rng, docBytes)
	for week := 0; week < weeks; week++ {
		sim, err := changesim.Simulate(cur, changesim.Params{
			DeleteProb: 0.02, UpdateProb: 0.10, InsertProb: 0.02,
			MoveProb: 0.05, Seed: seed + int64(week),
		})
		if err != nil {
			return stats.Report{}, err
		}
		d, err := diff.Diff(cur, sim.New, diff.Options{})
		if err != nil {
			return stats.Report{}, err
		}
		collector.Observe(cur, sim.New, d)
		cur = sim.New
	}
	return collector.Report(), nil
}
