package bench

import (
	"strings"
	"testing"

	"math/rand"
	"xydiff/internal/changesim"
	"xydiff/internal/diff"
)

func TestFig4SmallSweep(t *testing.T) {
	points, err := Fig4([]int{2_000, 8_000}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("points = %d", len(points))
	}
	for _, p := range points {
		if p.Bytes <= 0 || p.Nodes <= 0 || p.Total <= 0 {
			t.Errorf("degenerate point %+v", p)
		}
	}
	if points[1].Nodes <= points[0].Nodes {
		t.Error("sweep not increasing in size")
	}
	var b strings.Builder
	PrintFig4(&b, points)
	if !strings.Contains(b.String(), "Figure 4") {
		t.Error("PrintFig4 header missing")
	}
}

func TestFig5Sweep(t *testing.T) {
	points, err := Fig5(10_000, []float64{0.02, 0.20}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("points = %d", len(points))
	}
	for _, p := range points {
		if p.PerfectBytes <= 0 || p.ComputedBytes <= 0 {
			t.Errorf("degenerate point %+v", p)
		}
		if p.Ratio <= 0 || p.Ratio > 10 {
			t.Errorf("implausible quality ratio %+v", p)
		}
	}
	var b strings.Builder
	PrintFig5(&b, points)
	if !strings.Contains(b.String(), "Figure 5") {
		t.Error("PrintFig5 header missing")
	}
}

func TestFig6Corpus(t *testing.T) {
	points, sum, err := Fig6(6, 3)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Docs == 0 || len(points) == 0 {
		t.Fatalf("no measurements: %+v", sum)
	}
	if sum.MeanRatio <= 0 {
		t.Errorf("mean ratio = %f", sum.MeanRatio)
	}
	var b strings.Builder
	PrintFig6(&b, points, sum)
	if !strings.Contains(b.String(), "mean ratio") {
		t.Error("PrintFig6 summary missing")
	}
}

func TestSiteExperiment(t *testing.T) {
	r, err := Site(150, 4)
	if err != nil {
		t.Fatal(err)
	}
	if r.DocBytes <= 0 || r.DeltaSize <= 0 || r.TotalTime <= 0 {
		t.Errorf("degenerate site result %+v", r)
	}
	if r.CoreTime > r.TotalTime {
		t.Errorf("core time exceeds total: %+v", r)
	}
	var b strings.Builder
	PrintSite(&b, r)
	if !strings.Contains(b.String(), "pages=150") {
		t.Error("PrintSite output missing fields")
	}
}

func TestBaselinesComparison(t *testing.T) {
	points, err := Baselines([]int{60, 150}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("points = %d", len(points))
	}
	for _, p := range points {
		if p.BULD <= 0 || p.LuSelkow <= 0 || p.LaDiff <= 0 || p.DiffMK <= 0 {
			t.Errorf("missing timing in %+v", p)
		}
		if p.BULDSize <= 0 || p.LuSize <= 0 || p.LaSize <= 0 {
			t.Errorf("missing delta size in %+v", p)
		}
	}
	var b strings.Builder
	PrintBaselines(&b, points)
	if !strings.Contains(b.String(), "buld(us)") {
		t.Error("PrintBaselines header missing")
	}
}

func TestMovesSweep(t *testing.T) {
	points, err := Moves(8_000, []float64{0.0, 0.5}, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("points = %d", len(points))
	}
	if points[0].PerfectMoves != 0 {
		t.Errorf("moveProb=0 produced %d perfect moves", points[0].PerfectMoves)
	}
	if points[1].PerfectMoves == 0 {
		t.Error("moveProb=0.5 produced no moves")
	}
	var b strings.Builder
	PrintMoves(&b, points)
	if !strings.Contains(b.String(), "moveProb") {
		t.Error("PrintMoves header missing")
	}
}

func TestAblationsRun(t *testing.T) {
	points, err := Ablations(6_000, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) < 5 {
		t.Fatalf("ablation configs = %d", len(points))
	}
	names := map[string]bool{}
	for _, p := range points {
		if p.Time <= 0 || p.DeltaSize <= 0 {
			t.Errorf("degenerate ablation %+v", p)
		}
		names[p.Name] = true
	}
	if !names["paper-default"] || !names["eager-down"] {
		t.Errorf("missing expected configs: %v", names)
	}
	var b strings.Builder
	PrintAblations(&b, points)
	if !strings.Contains(b.String(), "paper-default") {
		t.Error("PrintAblations output missing configs")
	}
}

func TestVerifyDoc(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	oldDoc := changesim.Catalog(rng, 2, 4)
	sim, err := changesim.Simulate(oldDoc, changesim.Uniform(0.15, 9))
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyDoc(oldDoc, sim.New, diff.Options{}); err != nil {
		t.Fatal(err)
	}
}

func TestPrettyLines(t *testing.T) {
	s := prettyLines("<a><b>x</b></a>")
	if !strings.Contains(s, ">\n") {
		t.Error("prettyLines did not break lines")
	}
	if strings.ReplaceAll(s, "\n", "") != "<a><b>x</b></a>" {
		t.Error("prettyLines altered content")
	}
}

func TestChangeStats(t *testing.T) {
	report, err := ChangeStats(6_000, 3, 9)
	if err != nil {
		t.Fatal(err)
	}
	if report.Versions != 3 || report.Ops.Total() == 0 {
		t.Fatalf("report = %+v", report)
	}
	if len(report.Labels) == 0 {
		t.Fatal("no label statistics")
	}
	var b strings.Builder
	report.WriteTable(&b)
	if !strings.Contains(b.String(), "rate") {
		t.Error("stats table missing")
	}
}
