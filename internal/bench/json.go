package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"time"

	"xydiff/internal/changesim"
	"xydiff/internal/diff"
)

// Bench5Report is the machine-readable benchmark record behind
// BENCH_5.json: per-workload time and allocation rates, delta-quality
// ratios, and the Workers sweep with its determinism verdict. The
// regression gate (scripts/benchdiff.sh) compares a fresh report
// against the committed one with coarse tolerances, so the perf
// trajectory is data, not prose.
type Bench5Report struct {
	Schema     int    `json:"schema"`
	Mode       string `json:"mode"` // "quick" or "full"
	GoVersion  string `json:"goVersion"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	NumCPU     int    `json:"numCPU"`
	GoMaxProcs int    `json:"gomaxprocs"`
	Seed       int64  `json:"seed"`

	Entries  []BenchEntry    `json:"entries"`
	Quality  []QualityEntry  `json:"quality"`
	Parallel []ParallelEntry `json:"parallel"`

	// DeltasIdentical is true when every worker count in the sweep
	// produced byte-identical delta XML — the tentpole invariant.
	DeltasIdentical bool `json:"deltasIdentical"`
}

// BenchEntry is one measured workload.
type BenchEntry struct {
	Name        string `json:"name"`
	NsPerOp     int64  `json:"nsPerOp"`
	BytesPerOp  int64  `json:"bytesPerOp"`
	AllocsPerOp int64  `json:"allocsPerOp"`
}

// QualityEntry records a computed/perfect delta-size ratio.
type QualityEntry struct {
	Name  string  `json:"name"`
	Ratio float64 `json:"ratio"`
}

// ParallelEntry is one point of the Workers sweep on the Figure 4
// 969 KB catalog pair.
type ParallelEntry struct {
	Workers int     `json:"workers"`
	NsPerOp int64   `json:"nsPerOp"`
	Speedup float64 `json:"speedup"` // vs Workers=1, same run
	DeltaB  int     `json:"deltaBytes"`
}

// bench5Sizes are the fig4 workloads measured for the report; the
// largest is the paper's 969 KB point.
var bench5Sizes = []int{100_000, 500_000}

// bench5Workers is the sweep of the determinism/speedup table.
var bench5Workers = []int{1, 2, 4, 8}

// Bench5 measures the report. Quick mode uses fewer repetitions per
// point (a couple of seconds total) and is what scripts/check.sh runs;
// the committed baseline is generated without quick.
func Bench5(quick bool, seed int64) (*Bench5Report, error) {
	r := &Bench5Report{
		Schema:     1,
		Mode:       "full",
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Seed:       seed,
	}
	if quick {
		r.Mode = "quick"
	}
	reps := 5
	if quick {
		reps = 2
	}

	// Per-workload time and allocation rates (sequential diff: the
	// allocation budget must not depend on scheduling).
	rng := rand.New(rand.NewSource(seed))
	for _, size := range bench5Sizes {
		oldDoc := changesim.CatalogOfSize(rng, size)
		sim, err := changesim.Simulate(oldDoc, changesim.Uniform(0.10, seed+int64(size)))
		if err != nil {
			return nil, err
		}
		ns, bytesOp, allocs := measure(reps, func() {
			if _, err2 := diff.Diff(oldDoc.Clone(), sim.New.Clone(), diff.Options{Workers: 1}); err2 != nil {
				err = err2
			}
		})
		if err != nil {
			return nil, err
		}
		r.Entries = append(r.Entries, BenchEntry{
			Name:        fmt.Sprintf("fig4/catalog-%dKB", len(oldDoc.String())/1024),
			NsPerOp:     ns,
			BytesPerOp:  bytesOp,
			AllocsPerOp: allocs,
		})
	}

	// Delta-quality ratios at the Figure 5 rates the paper highlights.
	qualityRates := []float64{0.05, 0.20}
	qp, err := Fig5(50_000, qualityRates, seed)
	if err != nil {
		return nil, err
	}
	for _, p := range qp {
		r.Quality = append(r.Quality, QualityEntry{
			Name:  fmt.Sprintf("fig5/rate-%.2f", p.ChangeRate),
			Ratio: p.Ratio,
		})
	}

	// Workers sweep on the 969 KB pair: wall time plus the tentpole's
	// byte-identical-delta check.
	rng = rand.New(rand.NewSource(seed))
	oldDoc := changesim.CatalogOfSize(rng, 500_000)
	sim, err := changesim.Simulate(oldDoc, changesim.Uniform(0.10, seed+500_000))
	if err != nil {
		return nil, err
	}
	r.DeltasIdentical = true
	var refDelta string
	var baseNs int64
	for _, w := range bench5Workers {
		var deltaXML string
		var diffErr error
		ns, _, _ := measure(reps, func() {
			d, err2 := diff.Diff(oldDoc.Clone(), sim.New.Clone(), diff.Options{Workers: w})
			if err2 != nil {
				diffErr = err2
				return
			}
			deltaXML = d.String()
		})
		if diffErr != nil {
			return nil, diffErr
		}
		if refDelta == "" {
			refDelta = deltaXML
			baseNs = ns
		} else if deltaXML != refDelta {
			r.DeltasIdentical = false
		}
		speedup := 0.0
		if ns > 0 {
			speedup = float64(baseNs) / float64(ns)
		}
		r.Parallel = append(r.Parallel, ParallelEntry{
			Workers: w,
			NsPerOp: ns,
			Speedup: speedup,
			DeltaB:  len(deltaXML),
		})
	}
	return r, nil
}

// measure runs fn reps times (after one warm-up) and returns per-op
// wall time, heap bytes and allocation counts. It reads runtime totals
// directly instead of testing.Benchmark so quick mode controls the
// repetition count exactly.
func measure(reps int, fn func()) (nsPerOp, bytesPerOp, allocsPerOp int64) {
	fn() // warm up pools and the scheduler
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	for i := 0; i < reps; i++ {
		fn()
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	n := int64(reps)
	return elapsed.Nanoseconds() / n,
		int64(after.TotalAlloc-before.TotalAlloc) / n,
		int64(after.Mallocs-before.Mallocs) / n
}

// WriteJSON serializes the report.
func (r *Bench5Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// ReadBench5 parses a report written by WriteJSON.
func ReadBench5(r io.Reader) (*Bench5Report, error) {
	var out Bench5Report
	if err := json.NewDecoder(r).Decode(&out); err != nil {
		return nil, fmt.Errorf("bench: parsing report: %w", err)
	}
	return &out, nil
}

// Compare checks a fresh report against a committed baseline and
// returns one message per violated gate. Tolerances are deliberately
// coarse — the gate exists to catch gross regressions on arbitrary CI
// hardware, not 5% drifts: time may grow 3x, allocation rates 1.5x,
// quality ratios by +0.15, and the deltas must stay byte-identical
// across worker counts.
func (r *Bench5Report) Compare(baseline *Bench5Report) []string {
	var bad []string
	if !r.DeltasIdentical {
		bad = append(bad, "parallel sweep produced non-identical deltas across worker counts")
	}
	base := map[string]BenchEntry{}
	for _, e := range baseline.Entries {
		base[e.Name] = e
	}
	for _, e := range r.Entries {
		b, ok := base[e.Name]
		if !ok {
			continue // workload not in the baseline: nothing to gate
		}
		if b.NsPerOp > 0 && e.NsPerOp > 3*b.NsPerOp {
			bad = append(bad, fmt.Sprintf("%s: time %dns/op > 3x baseline %dns/op", e.Name, e.NsPerOp, b.NsPerOp))
		}
		if b.BytesPerOp > 0 && float64(e.BytesPerOp) > 1.5*float64(b.BytesPerOp) {
			bad = append(bad, fmt.Sprintf("%s: allocs %dB/op > 1.5x baseline %dB/op", e.Name, e.BytesPerOp, b.BytesPerOp))
		}
		if b.AllocsPerOp > 0 && float64(e.AllocsPerOp) > 1.5*float64(b.AllocsPerOp) {
			bad = append(bad, fmt.Sprintf("%s: %d allocs/op > 1.5x baseline %d allocs/op", e.Name, e.AllocsPerOp, b.AllocsPerOp))
		}
	}
	baseQ := map[string]float64{}
	for _, q := range baseline.Quality {
		baseQ[q.Name] = q.Ratio
	}
	for _, q := range r.Quality {
		if b, ok := baseQ[q.Name]; ok && q.Ratio > b+0.15 {
			bad = append(bad, fmt.Sprintf("%s: quality ratio %.2f exceeds baseline %.2f by more than 0.15", q.Name, q.Ratio, b))
		}
	}
	return bad
}

// PrintBench5 renders the report for humans (the JSON goes to -json).
func PrintBench5(w io.Writer, r *Bench5Report) {
	fmt.Fprintf(w, "# BENCH_5 (%s mode, %s %s/%s, %d CPU)\n", r.Mode, r.GoVersion, r.GOOS, r.GOARCH, r.NumCPU)
	fmt.Fprintf(w, "%-24s %14s %14s %12s\n", "workload", "ns/op", "B/op", "allocs/op")
	for _, e := range r.Entries {
		fmt.Fprintf(w, "%-24s %14d %14d %12d\n", e.Name, e.NsPerOp, e.BytesPerOp, e.AllocsPerOp)
	}
	for _, q := range r.Quality {
		fmt.Fprintf(w, "%-24s ratio %.2f\n", q.Name, q.Ratio)
	}
	fmt.Fprintf(w, "%-24s %14s %10s %12s\n", "parallel (969KB)", "ns/op", "speedup", "delta(B)")
	for _, p := range r.Parallel {
		fmt.Fprintf(w, "workers=%-16d %14d %9.2fx %12d\n", p.Workers, p.NsPerOp, p.Speedup, p.DeltaB)
	}
	fmt.Fprintf(w, "deltas identical across workers: %v\n", r.DeltasIdentical)
}
