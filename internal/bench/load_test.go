package bench

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// TestRunLoadSmall: the harness end to end at a tiny size — every
// writer's puts are acked, the fsync count is amortized below one per
// put, and recovery sees the whole corpus.
func TestRunLoadSmall(t *testing.T) {
	r, err := RunLoad(LoadConfig{
		Dir:           t.TempDir(),
		Docs:          24,
		Writers:       16,
		PutsPerWriter: 3,
		Seed:          5,
	})
	if err != nil {
		t.Fatal(err)
	}
	wantPuts := int64(24 + 16*3)
	if r.AckedPuts != wantPuts {
		t.Fatalf("acked %d puts, want %d", r.AckedPuts, wantPuts)
	}
	// At this tiny size batching may degenerate to one fsync per put on
	// a fast filesystem; the amortization claim itself is gated at the
	// 64-writer smoke size (cmd/xyload, make load-smoke). Here we only
	// pin the accounting: never more fsyncs than acked puts.
	if r.FsyncsPerPut > 1.0 {
		t.Fatalf("fsyncs per put %.3f > 1: more syncs than acked puts", r.FsyncsPerPut)
	}
	if r.MeanBatch < 1.0 {
		t.Fatalf("mean fsync batch %.2f < 1", r.MeanBatch)
	}
	if r.RecoveredDocs != 24 {
		t.Fatalf("recovered %d docs, want 24", r.RecoveredDocs)
	}
	if r.RecoveredVersions != int(wantPuts) {
		t.Fatalf("recovered %d versions, want %d", r.RecoveredVersions, wantPuts)
	}
	if r.Notifications != 16*3 {
		t.Fatalf("%d observer notifications, want %d (one per versioning diff)", r.Notifications, 16*3)
	}
	if r.Reads == 0 || r.PutP50Micros == 0 {
		t.Fatalf("latency sample empty: reads=%d putP50=%d", r.Reads, r.PutP50Micros)
	}

	// JSON round-trip.
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadBench6(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if *back != *r {
		t.Fatal("bench6 report does not round-trip through JSON")
	}
}

func TestBench6CompareGates(t *testing.T) {
	base := &Bench6Report{
		FsyncsPerPut:  0.06,
		MeanBatch:     16,
		PutP50Micros:  5000,
		CacheHitRatio: 0.9,
	}
	if bad := (*base).Compare(base); len(bad) != 0 {
		t.Fatalf("self-compare flagged: %v", bad)
	}
	regressed := *base
	regressed.FsyncsPerPut = 1.2 // both the 3x and the absolute >= 1.0 gate
	regressed.MeanBatch = 1.0
	regressed.PutP50Micros = 50000
	regressed.CacheHitRatio = 0.1
	bad := regressed.Compare(base)
	if len(bad) != 5 {
		t.Fatalf("regressed report tripped %d gates, want 5: %v", len(bad), bad)
	}
	for _, want := range []string{"fsyncs per acked Put", "not batching", "mean fsync batch", "put p50", "cache hit ratio"} {
		found := false
		for _, msg := range bad {
			if strings.Contains(msg, want) {
				found = true
			}
		}
		if !found {
			t.Errorf("no gate message mentions %q in %v", want, bad)
		}
	}
}

func TestPercentileMicros(t *testing.T) {
	if got := percentileMicros(nil, 0.5); got != 0 {
		t.Fatalf("empty sample p50 = %d", got)
	}
	ds := []time.Duration{5 * time.Millisecond, 1 * time.Millisecond, 3 * time.Millisecond}
	if got := percentileMicros(ds, 0.5); got != 3000 {
		t.Fatalf("p50 = %dµs, want 3000", got)
	}
	if got := percentileMicros(ds, 0.99); got != 5000 {
		t.Fatalf("p99 = %dµs, want 5000", got)
	}
}
