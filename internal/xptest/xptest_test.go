package xptest

import (
	"math/rand"
	"strings"
	"testing"

	"xydiff/internal/dom"
	"xydiff/internal/xpathlite"
)

const testCatalog = `<Catalog><Category name="Computers"><Product status="new" id="p1"><Title>Laptop</Title><Price>$1499</Price></Product><Product id="p2"><Title>Mouse</Title><Price>$25</Price></Product></Category><Category name="Books"><Product id="p3"><Title>XML in a Nutshell</Title><Price>$40</Price></Product></Category></Catalog>`

func mustParse(t *testing.T, s string) *dom.Node {
	t.Helper()
	doc, err := dom.ParseString(s)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return doc
}

func names(nodes []*dom.Node) string {
	parts := make([]string, 0, len(nodes))
	for _, n := range nodes {
		switch n.Type {
		case dom.Element:
			parts = append(parts, n.Name)
		case dom.Text:
			parts = append(parts, "text:"+n.Value)
		default:
			parts = append(parts, n.Type.String())
		}
	}
	return strings.Join(parts, " ")
}

// TestNaiveSelectBasics exercises the naive evaluator on its own,
// independent of xpathlite, so a harness failure can be attributed.
func TestNaiveSelectBasics(t *testing.T) {
	doc := mustParse(t, testCatalog)
	cases := []struct {
		query string
		want  string
	}{
		{`/Catalog/Category/Product/Title`, "Title Title Title"},
		{`//Product[@status]`, "Product"},
		{`//Product[Price>100]/Title`, "Title"},
		{`//Category[@name='Books']//text()`, "text:XML in a Nutshell text:$40"},
		{`//Product[2]`, "Product"},
		{`//Product[last()]/Title`, "Title Title"},
		{`//Title[contains(text(),'XML')]`, "Title"},
		{`//Product[starts-with(Title,'L') or @id='p3']`, "Product Product"},
		{`//Product[Price<30 and Title]`, "Product"},
		{`//Title/..`, "Product Product Product"},
		{`//Category[1] | //Category[2]`, "Category Category"},
		{`//missing`, ""},
	}
	for _, tc := range cases {
		got, err := NaiveSelect(doc, tc.query)
		if err != nil {
			t.Errorf("NaiveSelect(%q): %v", tc.query, err)
			continue
		}
		if names(got) != tc.want {
			t.Errorf("NaiveSelect(%q) = %q, want %q", tc.query, names(got), tc.want)
		}
	}
}

func TestNaiveRejectsBadQueries(t *testing.T) {
	for _, q := range []string{``, `[`, `a[`, `a[b=]`, `//`, `a[0]`, `a[1.5]`, `!`, `a'`, `a[foo()]`, `.[1]`} {
		if _, err := naiveParse(q); err == nil {
			t.Errorf("naiveParse(%q) succeeded, want error", q)
		}
		if _, err := xpathlite.Compile(q); err == nil {
			t.Errorf("xpathlite.Compile(%q) succeeded, want error", q)
		}
	}
}

// TestDifferentialRegressions pins minimized counterexamples found by
// the harness. The first entry is the real bug it caught: xpathlite
// grouped //*/x matches by context node, returning the deeper match
// first (fixed in xpathlite's Select by sorting into document order).
func TestDifferentialRegressions(t *testing.T) {
	cases := []struct{ doc, query string }{
		{`<a><b><x i="1"/></b><x i="2"/></a>`, `//*/x`},
		{`<a><b><x i="1"/></b><x i="2"/></a>`, `//node()/x`},
		{testCatalog, `//Product | //Title`},
	}
	for _, tc := range cases {
		if d := CheckRaw(tc.doc, tc.query); d != nil {
			t.Errorf("regression reopened: %s", d)
		}
	}
}

// TestXPathDifferentialSeeded is the deterministic bulk of the
// differential harness: 600 generated documents with 10 queries each,
// i.e. 6000 query×document pairs, every one evaluated from multiple
// context nodes by both evaluators. Runs in the xpath-smoke gate.
func TestXPathDifferentialSeeded(t *testing.T) {
	const cases = 600
	pairs := 0
	for i := 0; i < cases; i++ {
		rng := rand.New(rand.NewSource(int64(i)*7919 + 1))
		tape := make([]byte, 300)
		rng.Read(tape)
		c := GenCase(NewTape(tape))
		pairs += len(c.Queries)
		if d := Check(c); d != nil {
			sd, sq := Shrink(d.DocXML, d.Query)
			t.Fatalf("case %d diverged: %s\nshrunken doc:   %s\nshrunken query: %s", i, d, sd, sq)
		}
	}
	if pairs < 5000 {
		t.Fatalf("ran %d query×document pairs, want >= 5000", pairs)
	}
	t.Logf("checked %d query×document pairs", pairs)
}

func TestShrinkKeepsNonDivergentInputs(t *testing.T) {
	doc, query := Shrink(testCatalog, `//Product`)
	if doc != testCatalog || query != `//Product` {
		t.Fatalf("Shrink modified a non-divergent pair: %q %q", doc, query)
	}
}

func TestQueryCuts(t *testing.T) {
	cuts := queryCuts(`//a[@k='v']/b | //c`)
	wantAny := map[string]bool{
		`//a[@k='v']/b`: true, // union branch
		`//c`:           true, // union branch
	}
	found := 0
	for _, c := range cuts {
		if wantAny[c] {
			found++
		}
	}
	if found != 2 {
		t.Fatalf("queryCuts missing union branches, got %q", cuts)
	}
	cuts = queryCuts(`//a[@k=']']/b`)
	for _, c := range cuts {
		if c == `//a/b` {
			return // bracket removal respected the quoted ']'
		}
	}
	t.Fatalf("queryCuts did not offer predicate removal, got %q", cuts)
}

func TestGenCaseDeterministic(t *testing.T) {
	tape := make([]byte, 200)
	for i := range tape {
		tape[i] = byte(i * 37)
	}
	a := GenCase(NewTape(tape))
	b := GenCase(NewTape(tape))
	if a.DocXML != b.DocXML {
		t.Fatalf("GenCase not deterministic on documents")
	}
	for i := range a.Queries {
		if a.Queries[i] != b.Queries[i] {
			t.Fatalf("GenCase not deterministic on queries: %q vs %q", a.Queries[i], b.Queries[i])
		}
	}
	// Every generated query must be valid in both implementations.
	for _, q := range a.Queries {
		if _, err := xpathlite.Compile(q); err != nil {
			t.Errorf("generated query does not compile: %v", err)
		}
		if _, err := naiveParse(q); err != nil {
			t.Errorf("generated query rejected by naive parser: %v", err)
		}
	}
}

func TestNaiveMatches(t *testing.T) {
	doc := mustParse(t, testCatalog)
	expr := xpathlite.MustCompile(`//Product[@status]`)
	for _, n := range dom.Preorder(doc) {
		want := expr.Matches(n)
		got, err := NaiveMatches(n, `//Product[@status]`)
		if err != nil {
			t.Fatalf("NaiveMatches: %v", err)
		}
		if got != want {
			t.Fatalf("Matches disagree on %s: xpathlite=%v naive=%v", nodePath(n), want, got)
		}
	}
}
