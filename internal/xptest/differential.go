package xptest

import (
	"fmt"
	"strings"

	"xydiff/internal/dom"
	"xydiff/internal/xpathlite"
)

// Divergence is one disagreement between xpathlite and the naive
// evaluator: either one compiles a query the other rejects, or both
// accept it and return different node sets (membership or order) from
// the same context.
type Divergence struct {
	Query   string
	DocXML  string
	Context string // nodePath of the context node
	Detail  string
}

func (d *Divergence) String() string {
	return fmt.Sprintf("query %q on doc %q at context %s: %s",
		d.Query, d.DocXML, d.Context, d.Detail)
}

// Check runs every query of the case against every context node with
// both evaluators and returns the first divergence, or nil when they
// agree everywhere.
func Check(c *Case) *Divergence {
	for _, q := range c.Queries {
		if d := checkQuery(c.Doc, c.DocXML, q, c.Contexts); d != nil {
			return d
		}
	}
	return nil
}

// CheckRaw compares the evaluators over a raw document/query pair,
// evaluating from the document node and every node of the tree. It
// backs FuzzXPathDifferentialRaw, where the fuzzer mutates the XML and
// query text directly, and the shrinker, which needs a
// divergence-anywhere predicate over reduced documents.
func CheckRaw(docXML, query string) *Divergence {
	doc, err := dom.ParseString(docXML)
	if err != nil {
		return nil // not a valid document; nothing to compare
	}
	return checkQuery(doc, docXML, query, dom.Preorder(doc))
}

func checkQuery(doc *dom.Node, docXML, query string, contexts []*dom.Node) *Divergence {
	expr, refErr := xpathlite.Compile(query)
	_, naiveErr := naiveParse(query)
	if (refErr == nil) != (naiveErr == nil) {
		return &Divergence{
			Query:   query,
			DocXML:  docXML,
			Context: "-",
			Detail:  fmt.Sprintf("compile disagreement: xpathlite=%v naive=%v", refErr, naiveErr),
		}
	}
	if refErr != nil {
		return nil // both reject: agreement
	}
	for _, ctx := range contexts {
		ref := expr.Select(ctx)
		naive, err := NaiveSelect(ctx, query)
		if err != nil {
			return &Divergence{
				Query:   query,
				DocXML:  docXML,
				Context: nodePath(ctx),
				Detail:  fmt.Sprintf("naive evaluation failed after compile agreement: %v", err),
			}
		}
		if detail := diffNodeSets(ref, naive); detail != "" {
			return &Divergence{
				Query:   query,
				DocXML:  docXML,
				Context: nodePath(ctx),
				Detail:  detail,
			}
		}
	}
	return nil
}

func diffNodeSets(ref, naive []*dom.Node) string {
	if len(ref) != len(naive) {
		return fmt.Sprintf("xpathlite selected %d nodes %s, naive selected %d nodes %s",
			len(ref), renderSet(ref), len(naive), renderSet(naive))
	}
	for i := range ref {
		if ref[i] != naive[i] {
			return fmt.Sprintf("node sets differ at position %d: xpathlite %s, naive %s",
				i, renderSet(ref), renderSet(naive))
		}
	}
	return ""
}

func renderSet(nodes []*dom.Node) string {
	if len(nodes) == 0 {
		return "[]"
	}
	parts := make([]string, len(nodes))
	for i, n := range nodes {
		parts[i] = nodePath(n)
	}
	return "[" + strings.Join(parts, " ") + "]"
}

// nodePath renders a node's position as a slash path of child indexes,
// stable across re-parsing the same serialized document.
func nodePath(n *dom.Node) string {
	if n == nil {
		return "<nil>"
	}
	var parts []string
	for ; n.Parent != nil; n = n.Parent {
		label := n.Name
		if label == "" {
			label = n.Type.String()
		}
		parts = append(parts, fmt.Sprintf("%s#%d", label, n.Index()))
	}
	if len(parts) == 0 {
		return "/"
	}
	for i, j := 0, len(parts)-1; i < j; i, j = i+1, j-1 {
		parts[i], parts[j] = parts[j], parts[i]
	}
	return "/" + strings.Join(parts, "/")
}
