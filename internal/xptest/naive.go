// Package xptest is the adversarial test harness for the query layer:
// differential testing of internal/xpathlite in the style of XPress
// (Finding XPath Bugs in XML Document Processors via Differential
// Testing). It holds a second, deliberately naive evaluator for the
// same XPath subset — written from scratch against the documented
// semantics, sharing no lexer, parser or evaluator code with
// xpathlite — plus a grammar-driven generator of query×document pairs
// and a shrinker that reduces any disagreement to a minimal
// counterexample.
//
// The two implementations answer the same question by different
// means: xpathlite compiles token streams into a step machine tuned
// for the alerter's hot path, while this package re-reads the source
// with a character cursor and interprets the tree recursively with
// explicit node sets, sorting results by document position computed
// from ancestor chains. Any input on which they disagree is a bug in
// one of them; the harness found one real xpathlite bug on day one
// (document-order grouping, pinned in xpathlite's tests).
package xptest

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"unicode"

	"xydiff/internal/dom"
)

// NaiveSelect evaluates the path expression with n as the context node
// and returns the matching nodes in document order, without
// duplicates. It is the reference implementation the differential
// harness holds xpathlite against: compiled fresh on every call,
// interpreted recursively over explicit node sets, ordered by an
// ancestor-chain comparison — no caching, no cleverness.
func NaiveSelect(n *dom.Node, src string) ([]*dom.Node, error) {
	e, err := naiveParse(src)
	if err != nil {
		return nil, err
	}
	if n == nil {
		return nil, nil
	}
	set := make(map[*dom.Node]bool)
	for _, alt := range e.alts {
		start := n
		if alt.absolute {
			for start.Parent != nil {
				start = start.Parent
			}
		}
		ctx := []*dom.Node{start}
		for _, st := range alt.steps {
			ctx = naiveStep(ctx, st)
		}
		for _, m := range ctx {
			set[m] = true
		}
	}
	out := make([]*dom.Node, 0, len(set))
	for m := range set {
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool { return naiveDocLess(out[i], out[j]) })
	return out, nil
}

// NaiveMatches reports whether node n itself is selected by the
// expression, mirroring xpathlite's Expr.Matches contract.
func NaiveMatches(n *dom.Node, src string) (bool, error) {
	got, err := NaiveSelect(n, src)
	if err != nil {
		return false, err
	}
	for _, m := range got {
		if m == n {
			return true, nil
		}
	}
	return false, nil
}

// naiveDocLess orders two nodes of one tree by document position,
// ancestors before descendants.
func naiveDocLess(a, b *dom.Node) bool {
	if a == b {
		return false
	}
	var ca, cb []*dom.Node
	for x := a; x != nil; x = x.Parent {
		ca = append(ca, x)
	}
	for x := b; x != nil; x = x.Parent {
		cb = append(cb, x)
	}
	i, j := len(ca)-1, len(cb)-1
	for i >= 0 && j >= 0 && ca[i] == cb[j] {
		i--
		j--
	}
	if i < 0 {
		return true
	}
	if j < 0 {
		return false
	}
	return ca[i].Index() < cb[j].Index()
}

// --- evaluation ---

type nAxis uint8

const (
	nAxisChild nAxis = iota
	nAxisDescOrSelf
	nAxisSelf
	nAxisParent
)

type nTest uint8

const (
	nTestName nTest = iota
	nTestAnyElement
	nTestText
	nTestComment
	nTestAnyNode
)

type nStep struct {
	axis  nAxis
	test  nTest
	name  string
	preds []nPred
}

type nPath struct {
	absolute bool
	steps    []nStep
}

type nExpr struct {
	alts []nPath
}

type nPred interface{ isNPred() }

type nPosition struct {
	n    int
	last bool
}

type nCompare struct {
	lhs      nValue
	op       string // "=", "!=", "<", "<=", ">", ">="; "" = existence
	rhs      string
	rhsNum   float64
	rhsIsNum bool
}

type nBool struct {
	op   string // "and" or "or"
	l, r nPred
}

type nFunc struct {
	fn  string // "contains" or "starts-with"
	lhs nValue
	arg string
}

func (nPosition) isNPred() {}
func (nCompare) isNPred()  {}
func (nBool) isNPred()     {}
func (nFunc) isNPred()     {}

// nValue is a predicate's value expression: attribute, relative child
// path (optionally ending in text()), bare text(), or "." when all
// fields are zero.
type nValue struct {
	attr string
	path []nStep
	text bool
}

// naiveStep applies one step to every context node: candidates by
// axis, node test, then predicates in sequence (positional predicates
// index the per-context candidate list, as XPath's abbreviated form
// demands). The union over contexts is deduplicated; order is
// irrelevant here because the caller sorts the final set.
func naiveStep(ctx []*dom.Node, s nStep) []*dom.Node {
	var out []*dom.Node
	seen := make(map[*dom.Node]bool)
	for _, c := range ctx {
		var cands []*dom.Node
		switch s.axis {
		case nAxisSelf:
			cands = []*dom.Node{c}
		case nAxisParent:
			if c.Parent != nil {
				cands = []*dom.Node{c.Parent}
			}
		case nAxisChild:
			cands = c.Children
		case nAxisDescOrSelf:
			cands = dom.Preorder(c)
		}
		var matched []*dom.Node
		for _, cand := range cands {
			if naiveTest(cand, s) {
				matched = append(matched, cand)
			}
		}
		for _, p := range s.preds {
			matched = naiveFilter(matched, p)
		}
		for _, m := range matched {
			if !seen[m] {
				seen[m] = true
				out = append(out, m)
			}
		}
	}
	return out
}

func naiveTest(n *dom.Node, s nStep) bool {
	switch s.test {
	case nTestName:
		return n.Type == dom.Element && n.Name == s.name
	case nTestAnyElement:
		return n.Type == dom.Element
	case nTestText:
		return n.Type == dom.Text
	case nTestComment:
		return n.Type == dom.Comment
	case nTestAnyNode:
		return true
	}
	return false
}

func naiveFilter(nodes []*dom.Node, p nPred) []*dom.Node {
	if pos, ok := p.(nPosition); ok {
		if pos.last {
			if len(nodes) == 0 {
				return nil
			}
			return nodes[len(nodes)-1:]
		}
		if pos.n > len(nodes) {
			return nil
		}
		return nodes[pos.n-1 : pos.n]
	}
	var out []*dom.Node
	for _, n := range nodes {
		if naiveBool(n, p) {
			out = append(out, n)
		}
	}
	return out
}

func naiveBool(n *dom.Node, p nPred) bool {
	switch pr := p.(type) {
	case nBool:
		if pr.op == "and" {
			return naiveBool(n, pr.l) && naiveBool(n, pr.r)
		}
		return naiveBool(n, pr.l) || naiveBool(n, pr.r)
	case nCompare:
		values, exists := naiveValue(n, pr.lhs)
		if pr.op == "" {
			return exists
		}
		for _, v := range values {
			if naiveCompare(v, pr) {
				return true // node-set comparisons are existential
			}
		}
		return false
	case nFunc:
		values, _ := naiveValue(n, pr.lhs)
		for _, v := range values {
			switch pr.fn {
			case "contains":
				if strings.Contains(v, pr.arg) {
					return true
				}
			case "starts-with":
				if strings.HasPrefix(v, pr.arg) {
					return true
				}
			}
		}
		return false
	case nPosition:
		// Position in a boolean context would need the context
		// position; the subset defines it as non-matching.
		return false
	}
	return false
}

// naiveValue returns the candidate string values of a value expression
// and whether it selected anything. The text() handling mirrors the
// subset's documented quirks: with a non-empty path, values are the
// direct text children of each selected node; with an empty path, the
// direct text children of the context node itself.
func naiveValue(n *dom.Node, ve nValue) ([]string, bool) {
	if ve.attr != "" {
		if v, ok := n.Attribute(ve.attr); ok {
			return []string{v}, true
		}
		return nil, false
	}
	ctx := []*dom.Node{n}
	for _, st := range ve.path {
		ctx = naiveStep(ctx, st)
	}
	if ve.text {
		var texts []string
		for _, c := range ctx {
			for _, ch := range c.Children {
				if ch.Type == dom.Text {
					texts = append(texts, ch.Value)
				}
			}
			if c.Type == dom.Text {
				texts = append(texts, c.Value)
			}
		}
		if len(ve.path) == 0 {
			texts = nil
			for _, ch := range n.Children {
				if ch.Type == dom.Text {
					texts = append(texts, ch.Value)
				}
			}
		}
		return texts, len(texts) > 0
	}
	if len(ctx) == 0 {
		return nil, false
	}
	var out []string
	for _, c := range ctx {
		out = append(out, c.TextContent())
	}
	return out, true
}

func naiveCompare(v string, pr nCompare) bool {
	if pr.rhsIsNum {
		lv, err := strconv.ParseFloat(strings.TrimSpace(naiveStripCurrency(v)), 64)
		if err != nil {
			return false
		}
		switch pr.op {
		case "=":
			return lv == pr.rhsNum
		case "!=":
			return lv != pr.rhsNum
		case "<":
			return lv < pr.rhsNum
		case "<=":
			return lv <= pr.rhsNum
		case ">":
			return lv > pr.rhsNum
		case ">=":
			return lv >= pr.rhsNum
		}
		return false
	}
	switch pr.op {
	case "=":
		return v == pr.rhs
	case "!=":
		return v != pr.rhs
	case "<":
		return v < pr.rhs
	case "<=":
		return v <= pr.rhs
	case ">":
		return v > pr.rhs
	case ">=":
		return v >= pr.rhs
	}
	return false
}

// naiveStripCurrency mirrors the subset's numeric-coercion rule: trim
// space, then strip at most one each of $, € and £ in that order.
func naiveStripCurrency(s string) string {
	s = strings.TrimSpace(s)
	s = strings.TrimPrefix(s, "$")
	s = strings.TrimPrefix(s, "€")
	s = strings.TrimPrefix(s, "£")
	return s
}

// --- parsing ---
//
// The parser reads the source with a two-token sliding window over a
// character cursor; there is no token slice and no code shared with
// xpathlite's lexer. The token *grammar* is necessarily the same —
// both implementations accept the same language — including its
// byte-wise name classification (each source byte is classified on
// its own, so only Latin-1 letters extend names).

type nToken struct {
	kind string // "/", "//", "name", "num", "str", "*", "@", "[", "]", "(", ")", "=", "!=", "<", "<=", ">", ">=", ".", "..", "and", "or", "|", ",", "eof"
	text string
}

type nParser struct {
	src      string
	pos      int
	cur, nxt nToken
	err      error
}

func naiveParse(src string) (*nExpr, error) {
	p := &nParser{src: src}
	p.cur = p.scan()
	p.nxt = p.scan()
	if p.err != nil {
		return nil, p.err
	}
	e := &nExpr{}
	for {
		alt, err := p.parsePath()
		if err != nil {
			return nil, err
		}
		e.alts = append(e.alts, alt)
		if p.cur.kind != "|" {
			break
		}
		p.advance()
	}
	if p.err != nil {
		return nil, p.err
	}
	if p.cur.kind != "eof" {
		return nil, fmt.Errorf("xptest: unexpected %q after expression in %q", p.cur.text, src)
	}
	return e, nil
}

func (p *nParser) advance() {
	p.cur = p.nxt
	p.nxt = p.scan()
}

func (p *nParser) scan() nToken {
	if p.err != nil {
		return nToken{kind: "eof"}
	}
	for p.pos < len(p.src) {
		c := p.src[p.pos]
		if c == ' ' || c == '\t' || c == '\n' || c == '\r' {
			p.pos++
			continue
		}
		break
	}
	if p.pos >= len(p.src) {
		return nToken{kind: "eof"}
	}
	start := p.pos
	c := p.src[p.pos]
	two := func(kind string) nToken {
		p.pos += 2
		return nToken{kind: kind, text: p.src[start:p.pos]}
	}
	one := func(kind string) nToken {
		p.pos++
		return nToken{kind: kind, text: p.src[start:p.pos]}
	}
	switch {
	case c == '/':
		if p.byteAt(p.pos+1) == '/' {
			return two("//")
		}
		return one("/")
	case c == '*' || c == '|' || c == ',' || c == '@' || c == '[' || c == ']' ||
		c == '(' || c == ')' || c == '=':
		return one(string(c))
	case c == '!':
		if p.byteAt(p.pos+1) != '=' {
			p.err = fmt.Errorf("xptest: stray '!' at %d in %q", start, p.src)
			return nToken{kind: "eof"}
		}
		return two("!=")
	case c == '<':
		if p.byteAt(p.pos+1) == '=' {
			return two("<=")
		}
		return one("<")
	case c == '>':
		if p.byteAt(p.pos+1) == '=' {
			return two(">=")
		}
		return one(">")
	case c == '\'' || c == '"':
		end := strings.IndexByte(p.src[p.pos+1:], c)
		if end < 0 {
			p.err = fmt.Errorf("xptest: unterminated string at %d in %q", start, p.src)
			return nToken{kind: "eof"}
		}
		text := p.src[p.pos+1 : p.pos+1+end]
		p.pos += end + 2
		return nToken{kind: "str", text: text}
	case c == '.':
		if p.byteAt(p.pos+1) == '.' {
			return two("..")
		}
		if nIsDigit(p.byteAt(p.pos + 1)) {
			return p.scanNumber(start)
		}
		return one(".")
	case nIsDigit(c):
		return p.scanNumber(start)
	case c == '_' || unicode.IsLetter(rune(c)):
		for p.pos < len(p.src) && nIsNamePart(p.src[p.pos]) {
			p.pos++
		}
		text := p.src[start:p.pos]
		if text == "and" || text == "or" {
			return nToken{kind: text, text: text}
		}
		return nToken{kind: "name", text: text}
	}
	p.err = fmt.Errorf("xptest: unexpected character %q at %d in %q", c, start, p.src)
	return nToken{kind: "eof"}
}

func (p *nParser) scanNumber(start int) nToken {
	for p.pos < len(p.src) && (nIsDigit(p.src[p.pos]) || p.src[p.pos] == '.') {
		p.pos++
	}
	return nToken{kind: "num", text: p.src[start:p.pos]}
}

func (p *nParser) byteAt(i int) byte {
	if i >= len(p.src) {
		return 0
	}
	return p.src[i]
}

func (p *nParser) expect(kind string) error {
	if p.err != nil {
		return p.err
	}
	if p.cur.kind != kind {
		return fmt.Errorf("xptest: expected %q, found %q in %q", kind, p.cur.text, p.src)
	}
	p.advance()
	return nil
}

func (p *nParser) parsePath() (nPath, error) {
	var alt nPath
	switch p.cur.kind {
	case "/":
		p.advance()
		alt.absolute = true
		if p.cur.kind == "eof" || p.cur.kind == "|" {
			return alt, p.err // bare "/" selects the document
		}
	case "//":
		p.advance()
		alt.absolute = true
		alt.steps = append(alt.steps, nStep{axis: nAxisDescOrSelf, test: nTestAnyNode})
	}
	for {
		s, err := p.parseStep()
		if err != nil {
			return alt, err
		}
		alt.steps = append(alt.steps, s)
		switch p.cur.kind {
		case "/":
			p.advance()
		case "//":
			p.advance()
			alt.steps = append(alt.steps, nStep{axis: nAxisDescOrSelf, test: nTestAnyNode})
		default:
			return alt, p.err
		}
	}
}

func (p *nParser) parseStep() (nStep, error) {
	var s nStep
	s.axis = nAxisChild
	switch p.cur.kind {
	case ".":
		p.advance()
		return nStep{axis: nAxisSelf, test: nTestAnyNode}, p.err
	case "..":
		p.advance()
		return nStep{axis: nAxisParent, test: nTestAnyNode}, p.err
	case "*":
		p.advance()
		s.test = nTestAnyElement
	case "name":
		name := p.cur.text
		p.advance()
		if p.cur.kind == "(" {
			p.advance()
			if err := p.expect(")"); err != nil {
				return s, err
			}
			switch name {
			case "text":
				s.test = nTestText
			case "comment":
				s.test = nTestComment
			case "node":
				s.test = nTestAnyNode
			default:
				return s, fmt.Errorf("xptest: unknown node test %s() in %q", name, p.src)
			}
		} else {
			s.test = nTestName
			s.name = name
		}
	default:
		return s, fmt.Errorf("xptest: expected a step, found %q in %q", p.cur.text, p.src)
	}
	for p.cur.kind == "[" {
		p.advance()
		pr, err := p.parsePredicate()
		if err != nil {
			return s, err
		}
		if err := p.expect("]"); err != nil {
			return s, err
		}
		s.preds = append(s.preds, pr)
	}
	return s, p.err
}

func (p *nParser) parsePredicate() (nPred, error) {
	if p.cur.kind == "num" {
		n, err := nParsePosition(p.cur.text)
		if err != nil {
			return nil, fmt.Errorf("xptest: %w in %q", err, p.src)
		}
		p.advance()
		return nPosition{n: n}, p.err
	}
	if p.cur.kind == "name" && p.cur.text == "last" && p.nxt.kind == "(" {
		p.advance()
		p.advance()
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		return nPosition{last: true}, p.err
	}
	return p.parseOr()
}

func (p *nParser) parseOr() (nPred, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.cur.kind == "or" {
		p.advance()
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = nBool{op: "or", l: l, r: r}
	}
	return l, p.err
}

func (p *nParser) parseAnd() (nPred, error) {
	l, err := p.parseCompare()
	if err != nil {
		return nil, err
	}
	for p.cur.kind == "and" {
		p.advance()
		r, err := p.parseCompare()
		if err != nil {
			return nil, err
		}
		l = nBool{op: "and", l: l, r: r}
	}
	return l, p.err
}

func (p *nParser) parseCompare() (nPred, error) {
	if p.cur.kind == "name" && (p.cur.text == "contains" || p.cur.text == "starts-with") &&
		p.nxt.kind == "(" {
		fn := p.cur.text
		p.advance()
		p.advance()
		lhs, err := p.parseValue()
		if err != nil {
			return nil, err
		}
		if err := p.expect(","); err != nil {
			return nil, err
		}
		if p.cur.kind != "str" {
			return nil, fmt.Errorf("xptest: %s() needs a string literal, found %q in %q", fn, p.cur.text, p.src)
		}
		arg := p.cur.text
		p.advance()
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		return nFunc{fn: fn, lhs: lhs, arg: arg}, p.err
	}
	lhs, err := p.parseValue()
	if err != nil {
		return nil, err
	}
	op := p.cur.kind
	switch op {
	case "=", "!=", "<", "<=", ">", ">=":
		p.advance()
	default:
		return nCompare{lhs: lhs}, p.err // existence test
	}
	switch p.cur.kind {
	case "str":
		c := nCompare{lhs: lhs, op: op, rhs: p.cur.text}
		p.advance()
		return c, p.err
	case "num":
		num, err := nParseNumber(p.cur.text)
		if err != nil {
			return nil, fmt.Errorf("xptest: %w in %q", err, p.src)
		}
		c := nCompare{lhs: lhs, op: op, rhs: p.cur.text, rhsIsNum: true, rhsNum: num}
		p.advance()
		return c, p.err
	}
	return nil, fmt.Errorf("xptest: expected a literal after comparison, found %q in %q", p.cur.text, p.src)
}

func (p *nParser) parseValue() (nValue, error) {
	if p.cur.kind == "@" {
		p.advance()
		if p.cur.kind != "name" {
			return nValue{}, fmt.Errorf("xptest: expected attribute name, found %q in %q", p.cur.text, p.src)
		}
		ve := nValue{attr: p.cur.text}
		p.advance()
		return ve, p.err
	}
	if p.cur.kind == "." {
		p.advance()
		return nValue{}, p.err
	}
	var ve nValue
	for {
		switch {
		case p.cur.kind == "name" && p.nxt.kind == "(" && p.cur.text == "text":
			p.advance()
			p.advance()
			if err := p.expect(")"); err != nil {
				return ve, err
			}
			ve.text = true
			return ve, p.err
		case p.cur.kind == "name":
			ve.path = append(ve.path, nStep{axis: nAxisChild, test: nTestName, name: p.cur.text})
			p.advance()
		case p.cur.kind == "*":
			ve.path = append(ve.path, nStep{axis: nAxisChild, test: nTestAnyElement})
			p.advance()
		default:
			return ve, fmt.Errorf("xptest: expected a value expression, found %q in %q", p.cur.text, p.src)
		}
		if p.cur.kind != "/" {
			return ve, p.err
		}
		p.advance()
	}
}

func nParsePosition(s string) (int, error) {
	n := 0
	for i := 0; i < len(s); i++ {
		if !nIsDigit(s[i]) {
			return 0, fmt.Errorf("position %q must be an integer", s)
		}
		n = n*10 + int(s[i]-'0')
	}
	if n < 1 {
		return 0, fmt.Errorf("position %q must be >= 1", s)
	}
	return n, nil
}

func nParseNumber(s string) (float64, error) {
	var v float64
	var frac float64 = 1
	seenDot := false
	for i := 0; i < len(s); i++ {
		if s[i] == '.' {
			if seenDot {
				return 0, fmt.Errorf("bad number %q", s)
			}
			seenDot = true
			continue
		}
		if !nIsDigit(s[i]) {
			return 0, fmt.Errorf("bad number %q", s)
		}
		if seenDot {
			frac /= 10
			v += float64(s[i]-'0') * frac
		} else {
			v = v*10 + float64(s[i]-'0')
		}
	}
	return v, nil
}

func nIsDigit(c byte) bool { return c >= '0' && c <= '9' }

func nIsNamePart(c byte) bool {
	r := rune(c)
	return c == '_' || c == '-' || c == '.' || c == ':' ||
		unicode.IsLetter(r) || unicode.IsDigit(r)
}
