package xptest

import (
	"strings"

	"xydiff/internal/dom"
)

// Shrink reduces a diverging document/query pair to a local minimum
// while the divergence persists: it repeatedly detaches subtrees and
// strips attributes from the document, then deletes union branches,
// predicates and steps from the query, re-checking after each cut.
// The result is what a failing test reports, so a counterexample
// arrives already small enough to debug by eye.
func Shrink(docXML, query string) (string, string) {
	if CheckRaw(docXML, query) == nil {
		return docXML, query // not diverging; nothing to preserve
	}
	for {
		nextDoc, changed := shrinkDoc(docXML, query)
		docXML = nextDoc
		nextQuery, qChanged := shrinkQuery(docXML, query)
		query = nextQuery
		if !changed && !qChanged {
			return docXML, query
		}
	}
}

// shrinkDoc tries one pass of document reductions: detach each
// non-root subtree, then drop each attribute. Every accepted cut
// restarts from the reduced document.
func shrinkDoc(docXML, query string) (string, bool) {
	changed := false
	for {
		doc, err := dom.ParseString(docXML)
		if err != nil {
			return docXML, changed
		}
		reduced := ""
		nodes := dom.Preorder(doc)
		for _, n := range nodes[1:] {
			parent, idx := n.Parent, n.Index()
			n.Detach()
			candidate := doc.String()
			if CheckRaw(candidate, query) != nil {
				reduced = candidate
				break
			}
			if err := parent.InsertAt(idx, n); err != nil {
				return docXML, changed // tree corrupted; stop shrinking
			}
		}
		if reduced == "" {
			for _, n := range nodes {
				for i := 0; i < len(n.Attrs); i++ {
					saved := n.Attrs[i]
					n.Attrs = append(n.Attrs[:i], n.Attrs[i+1:]...)
					candidate := doc.String()
					if CheckRaw(candidate, query) != nil {
						reduced = candidate
						break
					}
					n.Attrs = append(n.Attrs[:i], append([]dom.Attr{saved}, n.Attrs[i:]...)...)
				}
				if reduced != "" {
					break
				}
			}
		}
		if reduced == "" {
			return docXML, changed
		}
		docXML = reduced
		changed = true
	}
}

// shrinkQuery deletes spans of the query text — union branches,
// bracketed predicates, then trailing/leading steps — keeping any cut
// that still diverges on the (already shrunken) document.
func shrinkQuery(docXML, query string) (string, bool) {
	changed := false
	for {
		reduced := ""
		for _, candidate := range queryCuts(query) {
			if candidate == query {
				continue
			}
			if CheckRaw(docXML, candidate) != nil {
				reduced = candidate
				break
			}
		}
		if reduced == "" {
			return query, changed
		}
		query = reduced
		changed = true
	}
}

// queryCuts proposes smaller variants of a query: individual union
// branches, the query with one [predicate] span removed, and the query
// with one /step segment removed.
func queryCuts(query string) []string {
	var cuts []string
	branches := splitTopLevel(query, '|')
	if len(branches) > 1 {
		for _, b := range branches {
			cuts = append(cuts, strings.TrimSpace(b))
		}
	}
	// Remove each balanced [...] span (quote-aware).
	depth, start := 0, -1
	inQuote := byte(0)
	for i := 0; i < len(query); i++ {
		c := query[i]
		if inQuote != 0 {
			if c == inQuote {
				inQuote = 0
			}
			continue
		}
		switch c {
		case '\'', '"':
			inQuote = c
		case '[':
			if depth == 0 {
				start = i
			}
			depth++
		case ']':
			depth--
			if depth == 0 && start >= 0 {
				cuts = append(cuts, query[:start]+query[i+1:])
			}
		}
	}
	// Remove one step at a time: split on top-level slashes.
	segs := splitTopLevel(query, '/')
	if len(segs) > 2 {
		for i := range segs {
			if segs[i] == "" {
				continue // keep absolute/descendant markers intact
			}
			parts := append(append([]string{}, segs[:i]...), segs[i+1:]...)
			cuts = append(cuts, strings.Join(parts, "/"))
		}
	}
	return cuts
}

// splitTopLevel splits on sep outside quotes and brackets.
func splitTopLevel(s string, sep byte) []string {
	var parts []string
	depth := 0
	inQuote := byte(0)
	last := 0
	for i := 0; i < len(s); i++ {
		c := s[i]
		if inQuote != 0 {
			if c == inQuote {
				inQuote = 0
			}
			continue
		}
		switch c {
		case '\'', '"':
			inQuote = c
		case '[':
			depth++
		case ']':
			depth--
		default:
			if c == sep && depth == 0 {
				parts = append(parts, s[last:i])
				last = i + 1
			}
		}
	}
	return append(parts, s[last:])
}
