package xptest

import (
	"testing"

	"xydiff/internal/dom"
)

// FuzzXPathDifferential drives the structured generator from a raw
// decision tape: every execution builds one valid document plus ten
// valid queries and cross-checks xpathlite against the naive evaluator
// on all of them, so no fuzz cycles are spent on unparseable inputs.
func FuzzXPathDifferential(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16})
	f.Add([]byte("differential-xpath-tape-seed-with-enough-bytes-for-queries"))
	seed := make([]byte, 256)
	for i := range seed {
		seed[i] = byte(i*31 + 7)
	}
	f.Add(seed)
	f.Fuzz(func(t *testing.T, tape []byte) {
		if len(tape) > 4096 {
			tape = tape[:4096]
		}
		c := GenCase(NewTape(tape))
		if d := Check(c); d != nil {
			sd, sq := Shrink(d.DocXML, d.Query)
			t.Fatalf("divergence: %s\nshrunken doc:   %s\nshrunken query: %s", d, sd, sq)
		}
	})
}

// FuzzXPathDifferentialRaw mutates the document XML and query text
// directly. Beyond node-set equality it checks compile agreement: any
// string one parser accepts and the other rejects is a divergence.
// The seed corpus carries the harness's minimized counterexamples.
func FuzzXPathDifferentialRaw(f *testing.F) {
	// Minimized counterexample of the document-order bug the harness
	// found in xpathlite.Select (see TestDifferentialRegressions).
	f.Add(`<a><b><x i="1"/></b><x i="2"/></a>`, `//*/x`)
	f.Add(testCatalogSeed, `//Product[Price>100]/Title`)
	f.Add(testCatalogSeed, `//Category[@name='Books'] | //Product[last()]`)
	f.Add(`<r><a>1</a><a>2</a><a>3</a></r>`, `/r/a[2]`)
	f.Add(`<r><p k="$5"> x </p></r>`, `//p[@k<6]`)
	f.Fuzz(func(t *testing.T, docXML, query string) {
		if len(docXML) > 4096 || len(query) > 256 {
			return
		}
		doc, err := dom.ParseString(docXML)
		if err != nil || doc.Size() > 300 {
			return
		}
		if d := CheckRaw(docXML, query); d != nil {
			sd, sq := Shrink(d.DocXML, d.Query)
			t.Fatalf("divergence: %s\nshrunken doc:   %s\nshrunken query: %s", d, sd, sq)
		}
	})
}

const testCatalogSeed = `<Catalog><Category name="Books"><Product status="new"><Title>XML</Title><Price>$40</Price></Product></Category></Catalog>`
