package xptest

import (
	"math/rand"
	"strconv"
	"strings"

	"xydiff/internal/changesim"
	"xydiff/internal/dom"
)

// Tape turns a fuzzer-controlled byte string into a stream of bounded
// decisions. Every read past the end yields zero, so any byte prefix
// is a complete, deterministic test case: the fuzzer mutates raw
// bytes, the generator turns them into always-valid query×document
// pairs, and no execution is wasted on inputs that merely fail to
// parse.
type Tape struct {
	b []byte
	i int
}

// NewTape wraps a byte slice as a decision tape.
func NewTape(b []byte) *Tape { return &Tape{b: b} }

// Byte returns the next tape byte, or zero once exhausted.
func (t *Tape) Byte() byte {
	if t.i >= len(t.b) {
		return 0
	}
	c := t.b[t.i]
	t.i++
	return c
}

// Intn returns a decision in [0, n) driven by one tape byte; n must be
// in [1, 256].
func (t *Tape) Intn(n int) int {
	if n <= 1 {
		return 0
	}
	return int(t.Byte()) % n
}

// Seed folds four tape bytes into an int64 suitable for math/rand.
func (t *Tape) Seed() int64 {
	var s int64
	for k := 0; k < 4; k++ {
		s = s<<8 | int64(t.Byte())
	}
	return s
}

// QueriesPerCase is how many queries GenCase derives per document, so
// one fuzz execution checks QueriesPerCase query×document pairs.
const QueriesPerCase = 10

// Case is one generated differential test case: a document, a batch of
// queries over its vocabulary, and the context nodes to evaluate from
// (always the document node, plus a few tape-chosen interior nodes).
type Case struct {
	Doc      *dom.Node
	DocXML   string
	Queries  []string
	Contexts []*dom.Node
}

// GenCase derives a complete test case from the tape: a small
// changesim document (generic labeled tree, catalog, site or
// bibliography shape), QueriesPerCase grammar-driven queries built
// from the document's own names, attributes and text values (plus
// deliberate misses), and up to three evaluation contexts.
func GenCase(tape *Tape) *Case {
	rng := rand.New(rand.NewSource(tape.Seed()))
	var doc *dom.Node
	switch tape.Intn(4) {
	case 0:
		doc = changesim.Generic(rng, 8+tape.Intn(40), 1+tape.Intn(4), 2+tape.Intn(6))
	case 1:
		doc = changesim.Catalog(rng, 1+tape.Intn(2), 1+tape.Intn(3))
	case 2:
		doc = changesim.Site(rng, 1+tape.Intn(3))
	default:
		doc = changesim.Articles(rng, 1+tape.Intn(3))
	}
	c := &Case{Doc: doc, DocXML: doc.String()}
	v := harvest(doc)
	for q := 0; q < QueriesPerCase; q++ {
		c.Queries = append(c.Queries, genQuery(tape, v))
	}
	nodes := dom.Preorder(doc)
	c.Contexts = append(c.Contexts, doc)
	for k := tape.Intn(3); k > 0; k-- {
		c.Contexts = append(c.Contexts, nodes[tape.Intn(len(nodes))])
	}
	return c
}

// vocab is the query-relevant surface of one document: element names,
// attribute names, and literal values to compare against. Each list
// ends with entries that do not occur in the document, so generated
// queries probe both hits and misses.
type vocab struct {
	names  []string
	attrs  []string
	values []string
}

func harvest(doc *dom.Node) vocab {
	var v vocab
	seenName := make(map[string]bool)
	seenAttr := make(map[string]bool)
	seenVal := make(map[string]bool)
	addVal := func(s string) {
		s = strings.TrimSpace(s)
		if s == "" || len(s) > 24 || seenVal[s] || !quotable(s) {
			return
		}
		seenVal[s] = true
		v.values = append(v.values, s)
	}
	dom.WalkPre(doc, func(n *dom.Node) bool {
		switch n.Type {
		case dom.Element:
			if !seenName[n.Name] {
				seenName[n.Name] = true
				v.names = append(v.names, n.Name)
			}
			for _, a := range n.Attrs {
				if !seenAttr[a.Name] {
					seenAttr[a.Name] = true
					v.attrs = append(v.attrs, a.Name)
				}
				addVal(a.Value)
			}
		case dom.Text, dom.Comment:
			addVal(n.Value)
		}
		return true
	})
	v.names = append(v.names, "zz9", "nope")
	v.attrs = append(v.attrs, "absent")
	v.values = append(v.values, "no-such-value")
	return v
}

// quotable reports whether s can be written as a query string literal:
// the subset's strings have no escapes, so s must avoid at least one
// quote character (genLiteral picks the free one).
func quotable(s string) bool {
	return !strings.Contains(s, "'") || !strings.Contains(s, `"`)
}

func genLiteral(s string) string {
	if strings.Contains(s, "'") {
		return `"` + s + `"`
	}
	return "'" + s + "'"
}

// genQuery emits one syntactically valid query: optionally absolute
// (rooted / or //), one to three steps joined by / or //, a possible
// second union branch, and zero to two predicates per step drawn from
// the full predicate grammar (positions, last(), comparisons with
// string and numeric literals, attribute existence, contains/
// starts-with, and/or combinations, nested value paths).
func genQuery(tape *Tape, v vocab) string {
	var b strings.Builder
	genPath(tape, v, &b)
	if tape.Intn(5) == 0 {
		b.WriteString(" | ")
		genPath(tape, v, &b)
	}
	return b.String()
}

func genPath(tape *Tape, v vocab, b *strings.Builder) {
	switch tape.Intn(4) {
	case 0:
		b.WriteString("/")
	case 1:
		b.WriteString("//")
	}
	steps := 1 + tape.Intn(3)
	for s := 0; s < steps; s++ {
		if s > 0 {
			if tape.Intn(4) == 0 {
				b.WriteString("//")
			} else {
				b.WriteString("/")
			}
		}
		genStep(tape, v, b)
	}
}

func genStep(tape *Tape, v vocab, b *strings.Builder) {
	switch tape.Intn(10) {
	case 0:
		b.WriteString("*")
	case 1:
		switch tape.Intn(3) {
		case 0:
			b.WriteString("text()")
		case 1:
			b.WriteString("node()")
		default:
			b.WriteString("comment()")
		}
	case 2:
		// Dot steps take no predicates in this grammar.
		if tape.Intn(2) == 0 {
			b.WriteString(".")
		} else {
			b.WriteString("..")
		}
		return
	default:
		b.WriteString(v.names[tape.Intn(len(v.names))])
	}
	for n := predCount(tape); n > 0; n-- {
		b.WriteString("[")
		genPredicate(tape, v, b)
		b.WriteString("]")
	}
}

func predCount(tape *Tape) int {
	switch tape.Intn(10) {
	case 0:
		return 2
	case 1, 2, 3:
		return 1
	default:
		return 0
	}
}

func genPredicate(tape *Tape, v vocab, b *strings.Builder) {
	switch tape.Intn(6) {
	case 0: // position
		if tape.Intn(3) == 0 {
			b.WriteString("last()")
		} else {
			b.WriteString(strconv.Itoa(1 + tape.Intn(4)))
		}
	case 1: // boolean combination of two comparisons
		genCompare(tape, v, b)
		if tape.Intn(2) == 0 {
			b.WriteString(" and ")
		} else {
			b.WriteString(" or ")
		}
		genCompare(tape, v, b)
	case 2: // contains / starts-with
		if tape.Intn(2) == 0 {
			b.WriteString("contains(")
		} else {
			b.WriteString("starts-with(")
		}
		genValue(tape, v, b)
		b.WriteString(",")
		arg := v.values[tape.Intn(len(v.values))]
		if cut := 1 + tape.Intn(8); tape.Intn(2) == 0 && cut < len(arg) && quotable(arg[:cut]) {
			arg = arg[:cut] // substring probes partial matches
		}
		b.WriteString(genLiteral(arg))
		b.WriteString(")")
	default:
		genCompare(tape, v, b)
	}
}

func genCompare(tape *Tape, v vocab, b *strings.Builder) {
	genValue(tape, v, b)
	if tape.Intn(3) == 0 {
		return // existence test
	}
	ops := []string{"=", "!=", "<", "<=", ">", ">="}
	b.WriteString(ops[tape.Intn(len(ops))])
	if tape.Intn(2) == 0 {
		b.WriteString(genLiteral(v.values[tape.Intn(len(v.values))]))
		return
	}
	n := strconv.Itoa(tape.Intn(100) * (1 + tape.Intn(20)))
	if tape.Intn(4) == 0 {
		n += "." + strconv.Itoa(tape.Intn(100))
	}
	b.WriteString(n)
}

func genValue(tape *Tape, v vocab, b *strings.Builder) {
	switch tape.Intn(6) {
	case 0:
		b.WriteString(".")
	case 1:
		b.WriteString("text()")
	case 2, 3:
		b.WriteString("@")
		b.WriteString(v.attrs[tape.Intn(len(v.attrs))])
	default:
		steps := 1 + tape.Intn(2)
		for s := 0; s < steps; s++ {
			if s > 0 {
				b.WriteString("/")
			}
			if tape.Intn(5) == 0 {
				b.WriteString("*")
			} else {
				b.WriteString(v.names[tape.Intn(len(v.names))])
			}
		}
		if tape.Intn(3) == 0 {
			b.WriteString("/text()")
		}
	}
}
