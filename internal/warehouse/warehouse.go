// Package warehouse assembles the full Xyleme change-control pipeline
// of the paper's Figure 1: when a new version of a document arrives
// (from a crawler or a user), it is installed in the versioned
// repository, the diff computes its delta, the alerter matches the
// delta against subscriptions, the full-text index is maintained
// incrementally from the delta, and change statistics accumulate.
//
// It is the "downstream user" API: one Load call runs everything the
// paper's architecture diagram shows.
package warehouse

import (
	"xydiff/internal/alert"
	"xydiff/internal/delta"
	"xydiff/internal/diff"
	"xydiff/internal/dom"
	"xydiff/internal/index"
	"xydiff/internal/stats"
	"xydiff/internal/store"
	"xydiff/internal/xpathlite"
)

// Warehouse is the integrated change-control system. All methods are
// safe for concurrent use (each component locks internally; Load's
// pipeline holds no cross-component lock, so two concurrent Loads of
// the *same* document should be serialized by the caller).
type Warehouse struct {
	store   *store.Store
	alerter *alert.Alerter
	index   *index.Index
	stats   *stats.Collector
}

// New returns an empty warehouse whose diffs run with opts.
func New(opts diff.Options) *Warehouse {
	return &Warehouse{
		store:   store.New(opts),
		alerter: alert.New(),
		index:   index.New(),
		stats:   stats.NewCollector(),
	}
}

// LoadResult reports what one document installation did.
type LoadResult struct {
	Version int
	Delta   *delta.Delta // nil for the first version
	Alerts  []alert.Alert
}

// Load installs a new version of the document: repository, diff,
// alerter, index and statistics in one step (the Figure 1 data flow).
func (w *Warehouse) Load(docID string, doc *dom.Node) (*LoadResult, error) {
	// Keep the pre-version for alerting/statistics before Put replaces it.
	var prev *dom.Node
	if w.store.Versions(docID) > 0 {
		var err error
		prev, _, err = w.store.Latest(docID)
		if err != nil {
			return nil, err
		}
	}
	version, d, err := w.store.Put(docID, doc)
	if err != nil {
		return nil, err
	}
	cur, _, err := w.store.Latest(docID)
	if err != nil {
		return nil, err
	}
	res := &LoadResult{Version: version, Delta: d}
	if d == nil {
		// First version: full indexing, occurrence statistics only.
		w.index.AddDocument(docID, cur)
		w.stats.Observe(cur, cur, &delta.Delta{})
		return res, nil
	}
	res.Alerts = w.alerter.Notify(docID, version, prev, cur, d)
	w.index.ApplyDelta(docID, d)
	w.stats.Observe(prev, cur, d)
	return res, nil
}

// Subscribe registers a subscription with the alerter.
func (w *Warehouse) Subscribe(s alert.Subscription) { w.alerter.Subscribe(s) }

// Unsubscribe removes subscriptions by ID.
func (w *Warehouse) Unsubscribe(id string) bool { return w.alerter.Unsubscribe(id) }

// Search returns the documents containing all the given words, via the
// incrementally maintained index.
func (w *Warehouse) Search(words ...string) []string { return w.index.SearchDocs(words...) }

// SearchPostings returns structural postings for one word.
func (w *Warehouse) SearchPostings(word string) []index.Posting { return w.index.Search(word) }

// Latest returns the current version of a document.
func (w *Warehouse) Latest(docID string) (*dom.Node, int, error) { return w.store.Latest(docID) }

// Version reconstructs a past version.
func (w *Warehouse) Version(docID string, n int) (*dom.Node, error) {
	return w.store.Version(docID, n)
}

// Versions reports how many versions of docID are stored.
func (w *Warehouse) Versions(docID string) int { return w.store.Versions(docID) }

// Timeline evaluates an expression across all versions.
func (w *Warehouse) Timeline(docID string, expr *xpathlite.Expr) ([]store.VersionValue, error) {
	return w.store.Timeline(docID, expr)
}

// ChangesMatching greps the delta chain for matching operations.
func (w *Warehouse) ChangesMatching(docID string, from, to int, pattern *xpathlite.Expr, kinds ...delta.Kind) ([]store.ChangeHit, error) {
	return w.store.ChangesMatching(docID, from, to, pattern, kinds...)
}

// Aggregate composes the deltas between two versions into one.
func (w *Warehouse) Aggregate(docID string, from, to int) (*delta.Delta, error) {
	return w.store.Aggregate(docID, from, to)
}

// Stats snapshots the accumulated change statistics.
func (w *Warehouse) Stats() stats.Report { return w.stats.Report() }

// Store exposes the underlying repository (e.g. for Save/Load to disk).
func (w *Warehouse) Store() *store.Store { return w.store }
