package warehouse

import (
	"math/rand"
	"testing"

	"xydiff/internal/alert"
	"xydiff/internal/changesim"
	"xydiff/internal/delta"
	"xydiff/internal/diff"
	"xydiff/internal/dom"
	"xydiff/internal/index"
	"xydiff/internal/xpathlite"
)

func parse(t *testing.T, s string) *dom.Node {
	t.Helper()
	d, err := dom.ParseString(s)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestLoadPipeline(t *testing.T) {
	w := New(diff.Options{})
	w.Subscribe(alert.Subscription{
		ID:    "new-products",
		Query: xpathlite.MustCompile(`//Product`),
		Kinds: []delta.Kind{delta.KindInsert},
	})

	res, err := w.Load("cat", parse(t, `<Catalog><Product><Name>a</Name></Product></Catalog>`))
	if err != nil {
		t.Fatal(err)
	}
	if res.Version != 1 || res.Delta != nil || len(res.Alerts) != 0 {
		t.Fatalf("first load = %+v", res)
	}
	// The first version is searchable immediately.
	if docs := w.Search("a"); len(docs) != 1 || docs[0] != "cat" {
		t.Fatalf("search after first load = %v", docs)
	}

	res, err = w.Load("cat", parse(t, `<Catalog><Product><Name>a</Name></Product><Product><Name>brandnew</Name></Product></Catalog>`))
	if err != nil {
		t.Fatal(err)
	}
	if res.Version != 2 || res.Delta == nil {
		t.Fatalf("second load = %+v", res)
	}
	if len(res.Alerts) != 1 || res.Alerts[0].SubID != "new-products" {
		t.Fatalf("alerts = %v", res.Alerts)
	}
	// Index reflects the delta.
	if docs := w.Search("brandnew"); len(docs) != 1 {
		t.Fatalf("search after update = %v", docs)
	}
	// Stats accumulated.
	if st := w.Stats(); st.Versions != 2 || st.Ops.Inserts == 0 {
		t.Fatalf("stats = %+v", st)
	}
	// The past is queryable.
	v1, err := w.Version("cat", 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(xpathlite.MustCompile(`//Product`).Select(v1)) != 1 {
		t.Error("version 1 wrong")
	}
	if w.Versions("cat") != 2 {
		t.Error("version count wrong")
	}
}

func TestIndexStaysConsistentOverHistory(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	w := New(diff.Options{})
	cur := changesim.Catalog(rng, 2, 8)
	if _, err := w.Load("doc", cur); err != nil {
		t.Fatal(err)
	}
	for week := 0; week < 5; week++ {
		sim, err := changesim.Simulate(cur, changesim.Uniform(0.1, int64(week)))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := w.Load("doc", sim.New); err != nil {
			t.Fatal(err)
		}
		cur = sim.New
	}
	// The incrementally maintained index must equal a rebuild from the
	// stored latest version.
	latest, _, err := w.Latest("doc")
	if err != nil {
		t.Fatal(err)
	}
	rebuilt := index.New()
	rebuilt.AddDocument("doc", latest)
	for _, word := range []string{"warehouse", "quick", "xml", "nonexistent-word"} {
		a, b := w.SearchPostings(word), rebuilt.Search(word)
		if len(a) != len(b) {
			t.Fatalf("postings for %q diverge: %d vs %d", word, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("posting %d for %q: %+v vs %+v", i, word, a[i], b[i])
			}
		}
	}
}

func TestTemporalDelegation(t *testing.T) {
	w := New(diff.Options{})
	w.Load("d", parse(t, `<r><v>1</v></r>`))
	w.Load("d", parse(t, `<r><v>2</v></r>`))
	w.Load("d", parse(t, `<r><v>3</v></r>`))
	tl, err := w.Timeline("d", xpathlite.MustCompile(`//v`))
	if err != nil {
		t.Fatal(err)
	}
	if len(tl) != 3 || tl[0].Value != "1" || tl[2].Value != "3" {
		t.Fatalf("timeline = %+v", tl)
	}
	hits, err := w.ChangesMatching("d", 1, 3, xpathlite.MustCompile(`//v`), delta.KindUpdate)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 2 {
		t.Fatalf("hits = %+v", hits)
	}
	agg, err := w.Aggregate("d", 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if agg.Count().Updates != 1 {
		t.Fatalf("aggregate = %v", agg.Count())
	}
	if !w.Unsubscribe("nope") {
		// Unsubscribe of unknown id returns false; both branches fine.
		_ = struct{}{}
	}
	if w.Store() == nil {
		t.Fatal("store accessor nil")
	}
}

func TestLoadErrors(t *testing.T) {
	w := New(diff.Options{})
	if _, err := w.Load("x", dom.NewElement("a")); err == nil {
		t.Error("element accepted")
	}
	if _, err := w.Load("x", nil); err == nil {
		t.Error("nil accepted")
	}
}
