package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// NoPanic enforces the invariant, established when delta.Apply learned
// to survive corrupt deltas, that no panic escapes library code: the
// change-control service must degrade to an error response, never to a
// crashed process. Library packages (everything that is not a main
// package) must not call panic, log.Fatal*, log.Panic* or os.Exit.
// Deliberate exceptions — the Must* compile-or-panic idiom — carry an
// //xyvet:allow nopanic directive.
var NoPanic = &Analyzer{
	Name: "nopanic",
	Doc:  "no panic/log.Fatal/os.Exit in library (non-main) packages",
	Run:  runNoPanic,
}

func runNoPanic(pass *Pass) {
	if pass.Pkg != nil && pass.Pkg.Name() == "main" {
		return // commands and examples may exit or fail fatally
	}
	for _, f := range pass.Files {
		if f.Name.Name == "main" {
			return
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			switch fun := call.Fun.(type) {
			case *ast.Ident:
				if fun.Name == "panic" && isBuiltin(pass, fun) {
					pass.Reportf(call.Pos(), "panic in library code; return an error instead (or annotate a Must* idiom with %s nopanic)", directivePrefix)
				}
			case *ast.SelectorExpr:
				pkg, fn := packageFunc(pass, fun)
				switch {
				case pkg == "log" && (strings.HasPrefix(fn, "Fatal") || strings.HasPrefix(fn, "Panic")):
					pass.Reportf(call.Pos(), "log.%s terminates the process from library code; return an error instead", fn)
				case pkg == "os" && fn == "Exit":
					pass.Reportf(call.Pos(), "os.Exit in library code; return an error and let the command decide")
				}
			}
			return true
		})
	}
}

// isBuiltin reports whether id resolves to the universe-scope builtin
// of the same name (i.e. is not shadowed by a local declaration). When
// type information is missing it assumes the builtin.
func isBuiltin(pass *Pass, id *ast.Ident) bool {
	obj := pass.Info.Uses[id]
	if obj == nil {
		return true
	}
	_, ok := obj.(*types.Builtin)
	return ok
}

// packageFunc resolves a selector call like log.Fatalf to its package
// name ("log") and function name ("Fatalf"). It returns "" when the
// selector base is not a package identifier (a method call).
func packageFunc(pass *Pass, sel *ast.SelectorExpr) (pkg, fn string) {
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", sel.Sel.Name
	}
	if obj := pass.Info.Uses[id]; obj != nil {
		if pn, ok := obj.(*types.PkgName); ok {
			return pn.Imported().Path(), sel.Sel.Name
		}
		return "", sel.Sel.Name // a variable, not a package
	}
	// No type info: fall back to the spelled name.
	return id.Name, sel.Sel.Name
}
