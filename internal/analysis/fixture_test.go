package analysis

// The analyzer self-tests run each analyzer over a txtar fixture
// archive in testdata/<name>.txtar. An archive holds a tiny module:
// a go.mod plus a "flagged" package exercising each diagnostic the
// analyzer emits and a "clean" package that must stay silent — the
// clean side includes an //xyvet:allow suppression so the directive
// machinery is proven on every analyzer.
//
// Expected findings are `// want `regexp`` markers on the line the
// diagnostic must land on. Every diagnostic must match a marker and
// every marker must be matched, so the tests fail on both false
// negatives and false positives.

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

func TestNoPanicFixture(t *testing.T)     { runFixture(t, NoPanic) }
func TestLockBalanceFixture(t *testing.T) { runFixture(t, LockBalance) }
func TestCtxFlowFixture(t *testing.T)     { runFixture(t, CtxFlow) }
func TestErrWrapFixture(t *testing.T)     { runFixture(t, ErrWrap) }
func TestSyncOrderFixture(t *testing.T)   { runFixture(t, SyncOrder) }
func TestSegOrderFixture(t *testing.T)    { runFixture(t, SegOrder) }
func TestGoroLeakFixture(t *testing.T)    { runFixture(t, GoroLeak) }
func TestPoolBalanceFixture(t *testing.T) { runFixture(t, PoolBalance) }
func TestTimerLeakFixture(t *testing.T)   { runFixture(t, TimerLeak) }
func TestDepBoundFixture(t *testing.T)    { runFixture(t, DepBound) }

// The staleallow fixture runs the whole suite: a directive is only
// provably stale when every analyzer it could have suppressed ran.
func TestStaleAllowFixture(t *testing.T) { runFixtureSuite(t, StaleAllow.Name, All()) }

func runFixture(t *testing.T, a *Analyzer) {
	t.Helper()
	runFixtureSuite(t, a.Name, []*Analyzer{a})
}

func runFixtureSuite(t *testing.T, name string, analyzers []*Analyzer) {
	t.Helper()
	t.Parallel()
	archive := filepath.Join("testdata", name+".txtar")
	data, err := os.ReadFile(archive)
	if err != nil {
		t.Fatal(err)
	}
	files := parseTxtar(data)
	if len(files) == 0 {
		t.Fatalf("%s: no files in archive", archive)
	}
	dir := t.TempDir()
	for _, f := range files {
		path := filepath.Join(dir, filepath.FromSlash(f.name))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, f.data, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	loader, err := LoaderForDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.Load("./...")
	if err != nil {
		t.Fatal(err)
	}
	for _, pkg := range pkgs {
		for _, terr := range pkg.TypeErrors {
			t.Errorf("%s: fixture does not type-check: %v", pkg.Path, terr)
		}
	}

	want := collectWant(t, files, dir)
	matched := make([]bool, len(want))
	for _, d := range Run(pkgs, analyzers) {
		found := false
		for i, w := range want {
			if matched[i] || w.file != d.File || w.line != d.Line {
				continue
			}
			if w.re.MatchString(d.Message) {
				matched[i] = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for i, w := range want {
		if !matched[i] {
			t.Errorf("%s:%d: missing diagnostic matching %q", w.file, w.line, w.re)
		}
	}
}

// wantMarker is one expected diagnostic: the line it must land on and
// a regexp its message must match.
type wantMarker struct {
	file string
	line int
	re   *regexp.Regexp
}

var wantRe = regexp.MustCompile("// want `([^`]*)`")

func collectWant(t *testing.T, files []fixtureFile, dir string) []wantMarker {
	t.Helper()
	var out []wantMarker
	for _, f := range files {
		if !strings.HasSuffix(f.name, ".go") {
			continue
		}
		path := filepath.Join(dir, filepath.FromSlash(f.name))
		for i, line := range strings.Split(string(f.data), "\n") {
			for _, m := range wantRe.FindAllStringSubmatch(line, -1) {
				re, err := regexp.Compile(m[1])
				if err != nil {
					t.Fatalf("%s:%d: bad want pattern %q: %v", f.name, i+1, m[1], err)
				}
				out = append(out, wantMarker{file: path, line: i + 1, re: re})
			}
		}
	}
	return out
}

// fixtureFile is one entry of a txtar archive.
type fixtureFile struct {
	name string
	data []byte
}

// parseTxtar splits the minimal txtar format: `-- name --` lines open
// a file, everything until the next marker is its content. Text before
// the first marker is archive commentary and is ignored.
func parseTxtar(data []byte) []fixtureFile {
	var files []fixtureFile
	var cur *fixtureFile
	for _, line := range strings.SplitAfter(string(data), "\n") {
		if name, ok := txtarMarker(strings.TrimSuffix(strings.TrimSuffix(line, "\n"), "\r")); ok {
			files = append(files, fixtureFile{name: name})
			cur = &files[len(files)-1]
			continue
		}
		if cur != nil {
			cur.data = append(cur.data, line...)
		}
	}
	return files
}

func txtarMarker(line string) (string, bool) {
	rest, ok := strings.CutPrefix(line, "-- ")
	if !ok {
		return "", false
	}
	name, ok := strings.CutSuffix(rest, " --")
	if !ok || strings.TrimSpace(name) == "" {
		return "", false
	}
	return strings.TrimSpace(name), true
}

func TestParseTxtar(t *testing.T) {
	t.Parallel()
	arc := "comment line\n-- a/x.go --\npackage a\n-- go.mod --\nmodule m\n"
	files := parseTxtar([]byte(arc))
	if len(files) != 2 {
		t.Fatalf("got %d files, want 2", len(files))
	}
	if files[0].name != "a/x.go" || string(files[0].data) != "package a\n" {
		t.Errorf("file 0 = %q %q", files[0].name, files[0].data)
	}
	if files[1].name != "go.mod" || string(files[1].data) != "module m\n" {
		t.Errorf("file 1 = %q %q", files[1].name, files[1].data)
	}
}
