package analysis

import (
	"fmt"
	"sort"
)

// StaleAllow keeps the suppression surface honest: an //xyvet:allow
// directive that suppresses no finding is dead weight — usually the
// code it excused was refactored away, and the directive now hides
// nothing except the reader's confidence that every remaining allow is
// a reviewed exception. The check also catches directives naming
// analyzers that do not exist (a typo in the name silently disables
// the suppression, which then reads as reviewed but is not).
//
// The detection lives in Run rather than in a per-package pass of its
// own: only after every other analyzer has reported can a directive be
// known unused. A directive is only called stale when every analyzer
// it names actually ran (and, for "all", when the whole suite ran), so
// partial runs — a single analyzer over one package in a fixture test —
// never produce false staleness.
var StaleAllow = &Analyzer{
	Name: "staleallow",
	Doc:  "//xyvet:allow directives must suppress at least one finding and name real analyzers",
	// Run is nil: the check is a post-pass over the directive table,
	// driven by Run itself after the other analyzers reported.
	Run: nil,
}

// staleFindings reports the package's unused and mistyped directives.
// running is the name set of the analyzers of this Run; directives
// whose analyzers did not all run are skipped, not reported.
func staleFindings(allowed directives, running map[string]bool) []Diagnostic {
	known := make(map[string]bool)
	for _, a := range All() {
		known[a.Name] = true
	}
	ds := make([]*directive, 0, len(allowed))
	for _, d := range allowed {
		ds = append(ds, d)
	}
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i].pos, ds[j].pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		return a.Line < b.Line
	})
	var diags []Diagnostic
	emit := func(d *directive, format string, args ...any) {
		diags = append(diags, Diagnostic{
			Analyzer: StaleAllow.Name,
			Position: d.pos,
			Message:  fmt.Sprintf(format, args...),
			File:     d.pos.Filename,
			Line:     d.pos.Line,
			Column:   d.pos.Column,
		})
	}
	for _, d := range ds {
		names := sortedNames(d.names)
		covered := true
		mistyped := false
		for _, name := range names {
			switch {
			case name == "all":
				for k := range known {
					if !running[k] {
						covered = false
					}
				}
			case !known[name]:
				emit(d, "unknown analyzer %q in %s directive (known: %s)", name, directivePrefix, joinNames(known))
				mistyped = true
			case !running[name]:
				covered = false
			}
		}
		if d.used || !covered || mistyped {
			continue
		}
		emit(d, "stale suppression: %s %s no longer suppresses any finding — delete the directive", directivePrefix, joinList(names))
	}
	return diags
}

func sortedNames(set map[string]bool) []string {
	out := make([]string, 0, len(set))
	for n := range set {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

func joinNames(set map[string]bool) string { return joinList(sortedNames(set)) }

func joinList(names []string) string {
	s := ""
	for i, n := range names {
		if i > 0 {
			s += ","
		}
		s += n
	}
	return s
}
