package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package.
type Package struct {
	// Path is the import path ("xydiff/internal/store").
	Path string
	// Mod is the module path the package belongs to ("xydiff");
	// analyzers use it to express module-relative layer rules.
	Mod string
	// Dir is the directory the sources were read from.
	Dir  string
	Fset *token.FileSet
	// Files are the parsed non-test sources, sorted by file name.
	Files []*ast.File
	// Types is the checked package object (possibly marked incomplete
	// when sources had type errors).
	Types *types.Package
	// Info holds the checker's fact tables for Files.
	Info *types.Info
	// TypeErrors collects type-checking problems. The analyzers still
	// run — they degrade to syntactic checks where type facts are
	// missing — but the driver surfaces these so a broken build cannot
	// silently weaken the gate.
	TypeErrors []error
}

// Loader parses and type-checks packages of a single module. Imports
// within the module are resolved recursively from source; imports
// outside it (the standard library) are resolved through the
// toolchain's source importer. No compiled artifacts are needed.
type Loader struct {
	// ModPath and ModDir anchor the module ("xydiff" at the repo root).
	ModPath string
	ModDir  string

	fset  *token.FileSet
	std   types.ImporterFrom
	cache map[string]*Package
}

// NewLoader returns a loader for the module rooted at modDir.
func NewLoader(modPath, modDir string) *Loader {
	fset := token.NewFileSet()
	return &Loader{
		ModPath: modPath,
		ModDir:  modDir,
		fset:    fset,
		std:     importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
		cache:   make(map[string]*Package),
	}
}

// LoaderForDir locates the enclosing module of dir (by walking up to
// go.mod) and returns a loader for it.
func LoaderForDir(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	for cur := abs; ; {
		data, err := os.ReadFile(filepath.Join(cur, "go.mod"))
		if err == nil {
			path := modulePath(string(data))
			if path == "" {
				return nil, fmt.Errorf("analysis: no module line in %s", filepath.Join(cur, "go.mod"))
			}
			return NewLoader(path, cur), nil
		}
		parent := filepath.Dir(cur)
		if parent == cur {
			return nil, fmt.Errorf("analysis: no go.mod above %s", abs)
		}
		cur = parent
	}
}

// modulePath extracts the module path from go.mod content.
func modulePath(gomod string) string {
	for _, line := range strings.Split(gomod, "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`)
		}
	}
	return ""
}

// Load resolves the patterns (import paths relative to the module,
// "./..." for everything, "./x/..." for a subtree, "./x" for one
// package) into loaded packages, sorted by import path.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	dirs := make(map[string]bool)
	for _, pat := range patterns {
		recursive := false
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			recursive = true
			pat = rest
			if pat == "." || pat == "" {
				pat = "."
			}
		}
		root := filepath.Join(l.ModDir, filepath.FromSlash(strings.TrimPrefix(pat, "./")))
		if !recursive {
			dirs[root] = true
			continue
		}
		err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
				name == "testdata" || name == "vendor") {
				return filepath.SkipDir
			}
			dirs[path] = true
			return nil
		})
		if err != nil {
			return nil, fmt.Errorf("analysis: walk %s: %w", root, err)
		}
	}
	var pkgs []*Package
	for dir := range dirs {
		hasGo, err := containsGoFiles(dir)
		if err != nil {
			return nil, err
		}
		if !hasGo {
			continue
		}
		pkg, err := l.loadDir(dir)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })
	return pkgs, nil
}

func containsGoFiles(dir string) (bool, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false, err
	}
	for _, e := range ents {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasSuffix(e.Name(), "_test.go") {
			return true, nil
		}
	}
	return false, nil
}

// importPathFor maps a directory under the module root to its import
// path.
func (l *Loader) importPathFor(dir string) (string, error) {
	rel, err := filepath.Rel(l.ModDir, dir)
	if err != nil {
		return "", err
	}
	if rel == "." {
		return l.ModPath, nil
	}
	if strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("analysis: %s is outside module %s", dir, l.ModDir)
	}
	return l.ModPath + "/" + filepath.ToSlash(rel), nil
}

// loadDir parses and type-checks the package in dir (cached).
func (l *Loader) loadDir(dir string) (*Package, error) {
	path, err := l.importPathFor(dir)
	if err != nil {
		return nil, err
	}
	if pkg, ok := l.cache[path]; ok {
		if pkg.Types == nil {
			return nil, fmt.Errorf("analysis: import cycle through %s", path)
		}
		return pkg, nil
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("analysis: parse: %w", err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analysis: no buildable Go files in %s", dir)
	}
	pkg := &Package{Path: path, Mod: l.ModPath, Dir: dir, Fset: l.fset, Files: files}
	// Register before checking so import cycles terminate (they
	// surface as type errors rather than infinite recursion).
	l.cache[path] = pkg
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{
		Importer: (*loaderImporter)(l),
		Error:    func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil && len(pkg.TypeErrors) == 0 {
		pkg.TypeErrors = append(pkg.TypeErrors, err)
	}
	pkg.Types = tpkg
	pkg.Info = info
	return pkg, nil
}

// loaderImporter adapts the loader to types.Importer: module-internal
// paths are loaded from source recursively, everything else goes to the
// toolchain's source importer.
type loaderImporter Loader

func (im *loaderImporter) Import(path string) (*types.Package, error) {
	l := (*Loader)(im)
	if path == l.ModPath || strings.HasPrefix(path, l.ModPath+"/") {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, l.ModPath), "/")
		pkg, err := l.loadDir(filepath.Join(l.ModDir, filepath.FromSlash(rel)))
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.ImportFrom(path, l.ModDir, 0)
}
