// Package analysis is xydiff's domain-specific static-analysis suite.
// It encodes, as mechanical checks over the go/ast + go/types view of
// the code, the invariants the change-control stack depends on: no
// panics escaping library packages, balanced per-document lock usage in
// the store, context propagation through the diff and the server,
// errors wrapped as they cross package boundaries, and the durable-write
// ordering of the journal (append + fsync happens-before the in-memory
// commit and the snapshot rename).
//
// The suite is built only on the standard toolchain packages (go/ast,
// go/parser, go/token, go/types) — no external analysis framework — and
// is driven by cmd/xyvet, which `make vet` and `make check` run over
// the whole module.
//
// A finding can be suppressed at a specific line with a directive
// comment on that line or the line directly above it:
//
//	//xyvet:allow <analyzer>[,<analyzer>...] -- reason
//
// The analyzer list may be "all". The reason after "--" is optional but
// encouraged; suppressions are deliberate, reviewed exceptions (for
// example the Must* compile-or-panic idiom, or a function that hands a
// locked structure to its caller).
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one named invariant check.
type Analyzer struct {
	// Name is the short identifier used in reports and in
	// //xyvet:allow directives.
	Name string
	// Doc is a one-line description of the invariant the analyzer
	// encodes.
	Doc string
	// Run inspects one package and reports findings through the pass.
	Run func(*Pass)
}

// Pass carries one analyzed package to an analyzer run.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	// Path is the import path of the package under analysis.
	Path string
	// Info holds the type-checker results for the package. Fields are
	// always non-nil maps, but entries may be missing when the package
	// had type errors; analyzers must degrade gracefully.
	Info *types.Info

	report func(Diagnostic)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Analyzer: p.Analyzer.Name,
		Position: p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// TypeOf returns the type of e, or nil when the checker has no entry
// for it (syntax the type checker rejected).
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	if tv, ok := p.Info.Types[e]; ok {
		return tv.Type
	}
	if id, ok := e.(*ast.Ident); ok {
		if obj := p.Info.Uses[id]; obj != nil {
			return obj.Type()
		}
		if obj := p.Info.Defs[id]; obj != nil {
			return obj.Type()
		}
	}
	return nil
}

// Diagnostic is one finding, positioned for editors (file:line:col).
type Diagnostic struct {
	Analyzer string         `json:"analyzer"`
	Position token.Position `json:"-"`
	Message  string         `json:"message"`

	// Flattened position for the machine-readable -json output.
	File   string `json:"file"`
	Line   int    `json:"line"`
	Column int    `json:"column"`
}

// String renders the go-vet-style single-line form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Position, d.Analyzer, d.Message)
}

// Run applies every analyzer to every package, filters findings
// suppressed by //xyvet:allow directives, and returns the rest sorted
// by position.
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		allowed := collectDirectives(pkg)
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Path:     pkg.Path,
				Info:     pkg.Info,
				report: func(d Diagnostic) {
					if allowed.allows(d.Position, d.Analyzer) {
						return
					}
					d.File = d.Position.Filename
					d.Line = d.Position.Line
					d.Column = d.Position.Column
					diags = append(diags, d)
				},
			}
			a.Run(pass)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags
}

// directiveKey identifies one source line.
type directiveKey struct {
	file string
	line int
}

// directives maps source lines to the analyzers allowed there.
type directives map[directiveKey]map[string]bool

// allows reports whether a finding by analyzer at pos is suppressed: a
// directive on the same line or the line directly above covers it.
func (ds directives) allows(pos token.Position, analyzer string) bool {
	for _, line := range []int{pos.Line, pos.Line - 1} {
		if names, ok := ds[directiveKey{pos.Filename, line}]; ok {
			if names["all"] || names[analyzer] {
				return true
			}
		}
	}
	return false
}

const directivePrefix = "//xyvet:allow"

// collectDirectives scans every comment of the package for
// //xyvet:allow directives.
func collectDirectives(pkg *Package) directives {
	ds := make(directives)
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, directivePrefix)
				if !ok {
					continue
				}
				// Everything after "--" is a human-readable reason.
				names, _, _ := strings.Cut(text, "--")
				pos := pkg.Fset.Position(c.Pos())
				key := directiveKey{pos.Filename, pos.Line}
				if ds[key] == nil {
					ds[key] = make(map[string]bool)
				}
				for _, name := range strings.Split(names, ",") {
					if name = strings.TrimSpace(name); name != "" {
						ds[key][name] = true
					}
				}
			}
		}
	}
	return ds
}

// All returns the full xyvet analyzer suite in reporting order.
func All() []*Analyzer {
	return []*Analyzer{
		NoPanic,
		LockBalance,
		CtxFlow,
		ErrWrap,
		SyncOrder,
		SegOrder,
	}
}
