// Package analysis is xydiff's domain-specific static-analysis suite.
// It encodes, as mechanical checks over the go/ast + go/types view of
// the code, the invariants the change-control stack depends on: no
// panics escaping library packages, balanced per-document lock usage in
// the store, context propagation through the diff and the server,
// errors wrapped as they cross package boundaries, and the durable-write
// ordering of the journal (append + fsync happens-before the in-memory
// commit and the snapshot rename).
//
// The suite is built only on the standard toolchain packages (go/ast,
// go/parser, go/token, go/types) — no external analysis framework — and
// is driven by cmd/xyvet, which `make vet` and `make check` run over
// the whole module.
//
// A finding can be suppressed at a specific line with a directive
// comment on that line or the line directly above it:
//
//	//xyvet:allow <analyzer>[,<analyzer>...] -- reason
//
// The analyzer list may be "all". The reason after "--" is optional but
// encouraged; suppressions are deliberate, reviewed exceptions (for
// example the Must* compile-or-panic idiom, or a function that hands a
// locked structure to its caller).
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Analyzer is one named invariant check.
type Analyzer struct {
	// Name is the short identifier used in reports and in
	// //xyvet:allow directives.
	Name string
	// Doc is a one-line description of the invariant the analyzer
	// encodes.
	Doc string
	// Run inspects one package and reports findings through the pass.
	Run func(*Pass)
}

// Pass carries one analyzed package to an analyzer run.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	// Path is the import path of the package under analysis.
	Path string
	// Mod is the module path, so analyzers can reason about
	// module-relative package layers.
	Mod string
	// Info holds the type-checker results for the package. Fields are
	// always non-nil maps, but entries may be missing when the package
	// had type errors; analyzers must degrade gracefully.
	Info *types.Info

	index  *moduleIndex
	report func(Diagnostic)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Analyzer: p.Analyzer.Name,
		Position: p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// CalleeDecl resolves the function or method a call invokes to its
// declaration, when the callee is declared in one of the packages of
// the current Run. Calls through function values, unresolvable
// identifiers, and callees outside the analyzed package set return
// nil; interprocedural analyzers must treat nil as "cannot prove" and
// stay silent.
func (p *Pass) CalleeDecl(call *ast.CallExpr) *ast.FuncDecl {
	if p.index == nil {
		return nil
	}
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	obj := p.Info.Uses[id]
	if obj == nil {
		obj = p.Info.Defs[id]
	}
	if obj == nil {
		return nil
	}
	return p.index.funcs[obj]
}

// moduleIndex maps every function and method object declared in the
// analyzed package set to its declaration, giving analyzers a
// module-wide (cross-package) view for interprocedural checks like
// goroleak's spawned-callee resolution.
type moduleIndex struct {
	funcs map[types.Object]*ast.FuncDecl
}

func buildModuleIndex(pkgs []*Package) *moduleIndex {
	idx := &moduleIndex{funcs: make(map[types.Object]*ast.FuncDecl)}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fn, ok := decl.(*ast.FuncDecl)
				if !ok || fn.Name == nil {
					continue
				}
				if obj := pkg.Info.Defs[fn.Name]; obj != nil {
					idx.funcs[obj] = fn
				}
			}
		}
	}
	return idx
}

// TypeOf returns the type of e, or nil when the checker has no entry
// for it (syntax the type checker rejected).
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	if tv, ok := p.Info.Types[e]; ok {
		return tv.Type
	}
	if id, ok := e.(*ast.Ident); ok {
		if obj := p.Info.Uses[id]; obj != nil {
			return obj.Type()
		}
		if obj := p.Info.Defs[id]; obj != nil {
			return obj.Type()
		}
	}
	return nil
}

// Diagnostic is one finding, positioned for editors (file:line:col).
type Diagnostic struct {
	Analyzer string         `json:"analyzer"`
	Position token.Position `json:"-"`
	Message  string         `json:"message"`

	// Flattened position for the machine-readable -json output.
	File   string `json:"file"`
	Line   int    `json:"line"`
	Column int    `json:"column"`
}

// String renders the go-vet-style single-line form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Position, d.Analyzer, d.Message)
}

// Run applies every analyzer to every package, filters findings
// suppressed by //xyvet:allow directives, and returns the rest sorted
// by position. Packages are analyzed in parallel on up to GOMAXPROCS
// goroutines — analyzers only read the shared AST and type facts — and
// the sorted merge keeps the output identical for every worker count.
// When the StaleAllow analyzer is part of the set, directives that
// suppressed no finding of the analyzers that ran are themselves
// reported.
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	idx := buildModuleIndex(pkgs)
	running := make(map[string]bool, len(analyzers))
	stale := false
	for _, a := range analyzers {
		running[a.Name] = true
		if a.Name == StaleAllow.Name {
			stale = true
		}
	}
	results := make([][]Diagnostic, len(pkgs))
	runPkg := func(i int) {
		results[i] = runPackage(pkgs[i], analyzers, idx, running, stale)
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > len(pkgs) {
		workers = len(pkgs)
	}
	if workers <= 1 {
		for i := range pkgs {
			runPkg(i)
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= len(pkgs) {
						return
					}
					runPkg(i)
				}
			}()
		}
		wg.Wait()
	}
	var diags []Diagnostic
	for _, r := range results {
		diags = append(diags, r...)
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags
}

// runPackage applies the analyzers to one package. It owns the
// package's directive table, so the used-tracking behind the stale
// check never races across packages.
func runPackage(pkg *Package, analyzers []*Analyzer, idx *moduleIndex, running map[string]bool, stale bool) []Diagnostic {
	var diags []Diagnostic
	allowed := collectDirectives(pkg)
	for _, a := range analyzers {
		if a.Run == nil {
			continue
		}
		pass := &Pass{
			Analyzer: a,
			Fset:     pkg.Fset,
			Files:    pkg.Files,
			Pkg:      pkg.Types,
			Path:     pkg.Path,
			Mod:      pkg.Mod,
			Info:     pkg.Info,
			index:    idx,
			report: func(d Diagnostic) {
				if allowed.allows(d.Position, d.Analyzer) {
					return
				}
				d.File = d.Position.Filename
				d.Line = d.Position.Line
				d.Column = d.Position.Column
				diags = append(diags, d)
			},
		}
		a.Run(pass)
	}
	if stale {
		diags = append(diags, staleFindings(allowed, running)...)
	}
	return diags
}

// directiveKey identifies one source line.
type directiveKey struct {
	file string
	line int
}

// directive is one //xyvet:allow comment: the analyzers it names, its
// own position, and whether it suppressed at least one finding during
// the run (the stale check reports the ones that did not).
type directive struct {
	pos   token.Position
	names map[string]bool
	used  bool
}

// directives maps source lines to the suppression declared there.
type directives map[directiveKey]*directive

// allows reports whether a finding by analyzer at pos is suppressed: a
// directive on the same line or the line directly above covers it. A
// match marks the directive used.
func (ds directives) allows(pos token.Position, analyzer string) bool {
	for _, line := range []int{pos.Line, pos.Line - 1} {
		if d, ok := ds[directiveKey{pos.Filename, line}]; ok {
			if d.names["all"] || d.names[analyzer] {
				d.used = true
				return true
			}
		}
	}
	return false
}

const directivePrefix = "//xyvet:allow"

// collectDirectives scans every comment of the package for
// //xyvet:allow directives.
func collectDirectives(pkg *Package) directives {
	ds := make(directives)
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, directivePrefix)
				if !ok {
					continue
				}
				// Everything after "--" is a human-readable reason.
				names, _, _ := strings.Cut(text, "--")
				pos := pkg.Fset.Position(c.Pos())
				key := directiveKey{pos.Filename, pos.Line}
				d := ds[key]
				if d == nil {
					d = &directive{pos: pos, names: make(map[string]bool)}
					ds[key] = d
				}
				for _, name := range strings.Split(names, ",") {
					if name = strings.TrimSpace(name); name != "" {
						d.names[name] = true
					}
				}
			}
		}
	}
	return ds
}

// All returns the full xyvet analyzer suite in reporting order.
func All() []*Analyzer {
	return []*Analyzer{
		NoPanic,
		LockBalance,
		CtxFlow,
		ErrWrap,
		SyncOrder,
		SegOrder,
		GoroLeak,
		PoolBalance,
		TimerLeak,
		DepBound,
		StaleAllow,
	}
}
