package analysis

import (
	"strconv"
	"strings"
)

// DepBound enforces the architecture boundaries as import rules rather
// than convention. The payoff for the diff core is portability: a core
// that never imports os, syscall, or net is trivially wasm-clean and
// embeddable — diffing happens on io.Reader/io.Writer and in-memory
// DOMs, and anything that touches the filesystem lives in a shell
// package (internal/dom/domio, the commands). The storage and command
// rules keep the dependency graph acyclic in the direction the design
// intends: storage must not reach up into the server, and commands
// must not reach sideways into each other.
//
// Scope paths match exactly (internal/dom matches internal/dom, not
// internal/dom/domio — the shell package under a core package is the
// sanctioned place for its I/O). Deny patterns match by path segment
// prefix ("os" matches os and os/exec but not osquery) and "cmd/*"
// matches every command package.
var DepBound = &Analyzer{
	Name: "depbound",
	Doc:  "architecture boundaries: diff core imports no os/syscall/net, storage no server, commands not each other",
	Run:  runDepBound,
}

// BoundaryRule is one layer's import restriction. Scope and Deny paths
// are module-relative ("internal/dom") or absolute ("os"); "cmd/*"
// means every package directly under cmd.
type BoundaryRule struct {
	Layer  string
	Scope  []string
	Deny   []string
	Reason string
}

// BoundaryRules is the architecture of record. cmd/xyvet prints it and
// the README documents it; changing a boundary means changing this
// table in a reviewed commit, not quietly adding an import.
var BoundaryRules = []BoundaryRule{
	{
		Layer: "diff core",
		Scope: []string{
			"internal/dom", "internal/diff", "internal/delta",
			"internal/dtd", "internal/lcs", "internal/xid",
			"internal/textdiff", "internal/xpathlite", "internal/sftm",
			"internal/optdelta",
		},
		Deny:   []string{"os", "syscall", "net"},
		Reason: "the core diffs io.Reader/io.Writer and in-memory DOMs; keeping it free of platform I/O makes it wasm-clean and embeddable",
	},
	{
		Layer: "storage",
		Scope: []string{
			"internal/store", "internal/vstore",
			"internal/scrub", "internal/faultfs",
		},
		Deny:   []string{"internal/server"},
		Reason: "the server drives storage, never the reverse; an upward import would make shutdown ordering and error ownership circular",
	},
	{
		Layer:  "commands",
		Scope:  []string{"cmd/*"},
		Deny:   []string{"cmd/*"},
		Reason: "commands are leaves; shared behavior belongs in internal packages, not in one command importing another",
	},
}

func runDepBound(pass *Pass) {
	rel := relPath(pass.Mod, pass.Path)
	if rel == "" {
		return
	}
	for i := range BoundaryRules {
		rule := &BoundaryRules[i]
		if !inScope(rule.Scope, rel) {
			continue
		}
		checkImports(pass, rule, rel)
	}
}

// relPath strips the module prefix from an import path; packages
// outside the module (or an unknown module) are out of every scope.
func relPath(mod, path string) string {
	if mod == "" {
		return ""
	}
	if path == mod {
		return "."
	}
	if rest, ok := strings.CutPrefix(path, mod+"/"); ok {
		return rest
	}
	return ""
}

// inScope reports whether rel matches one of the rule's scope paths:
// exact match, or direct child for a trailing /*.
func inScope(scope []string, rel string) bool {
	for _, s := range scope {
		if pat, ok := strings.CutSuffix(s, "/*"); ok {
			if rest, ok := strings.CutPrefix(rel, pat+"/"); ok && !strings.Contains(rest, "/") {
				return true
			}
			continue
		}
		if rel == s {
			return true
		}
	}
	return false
}

// denies matches an imported path against a deny pattern. Module-
// relative patterns (containing "internal/" or "cmd/") compare against
// the import's module-relative form; bare patterns like "os" or "net"
// compare against the absolute path by segment prefix.
func denies(pattern, mod, imported string) bool {
	target := imported
	if strings.HasPrefix(pattern, "internal/") || strings.HasPrefix(pattern, "cmd/") {
		target = relPath(mod, imported)
		if target == "" {
			return false
		}
	}
	if pat, ok := strings.CutSuffix(pattern, "/*"); ok {
		rest, ok := strings.CutPrefix(target, pat+"/")
		return ok && !strings.Contains(rest, "/")
	}
	return target == pattern || strings.HasPrefix(target, pattern+"/")
}

func checkImports(pass *Pass, rule *BoundaryRule, rel string) {
	for _, f := range pass.Files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			// A command may import itself-shaped paths only when the
			// deny pattern would match its own package (cmd/* in scope
			// and deny): importing yourself is impossible in Go, so no
			// special case is needed — but a subpackage of the same
			// command is fine.
			if samePkgTree(rule, pass.Mod, rel, path) {
				continue
			}
			for _, pattern := range rule.Deny {
				if denies(pattern, pass.Mod, path) {
					pass.Reportf(imp.Pos(), "%s package %s must not import %s: %s", rule.Layer, rel, path, rule.Reason)
					break
				}
			}
		}
	}
}

// samePkgTree exempts imports inside one command's own subtree when
// both scope and deny are the cmd/* wildcard (cmd/xydiffd importing
// cmd/xydiffd/internal/ui would otherwise trip the sideways rule).
func samePkgTree(rule *BoundaryRule, mod, rel, imported string) bool {
	impRel := relPath(mod, imported)
	if impRel == "" {
		return false
	}
	return strings.HasPrefix(impRel+"/", rel+"/") || strings.HasPrefix(rel+"/", impRel+"/")
}
