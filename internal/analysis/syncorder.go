package analysis

import (
	"go/ast"
	"go/token"
)

// SyncOrder encodes the store's durable-write ordering (journal.go):
// within any function of a package named "store",
//
//  1. the write-ahead append (journalAppend) must happen before the
//     in-memory commit — assignments to the history's latest/versions
//     fields and the observer callback — so a version is never
//     acknowledged or observable before it is journaled;
//  2. the snapshot (saveHistory) must happen before the journal segment
//     it covers is retired (journalRetire), so a crash between the two
//     still finds every version in either the snapshot or the journal;
//  3. in temp-file-plus-rename writers (functions using CreateTemp),
//     the fsync (Sync) must happen before the Rename that publishes the
//     file, or the rename can land with unflushed content.
//
// The check compares source order of the calls within one function —
// exactly the property a refactor of Put/Checkpoint could silently
// break.
var SyncOrder = &Analyzer{
	Name: "syncorder",
	Doc:  "store ordering: journal append before commit, snapshot before journal retire, fsync before rename",
	Run:  runSyncOrder,
}

func runSyncOrder(pass *Pass) {
	if pass.Pkg != nil && pass.Pkg.Name() != "store" {
		return
	}
	for _, f := range pass.Files {
		if f.Name.Name != "store" {
			return
		}
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkSyncOrder(pass, fn)
		}
	}
}

// callSites records source positions of the calls and commit writes a
// function performs, in document order.
type callSites struct {
	appends    []token.Pos // journalAppend(...)
	commits    []token.Pos // x.latest = / x.versions = / x.versions++ / s.obs(...)
	snapshots  []token.Pos // saveHistory(...)
	retires    []token.Pos // journalRetire(...)
	syncs      []token.Pos // x.Sync()
	renames    []token.Pos // x.Rename(...)
	hasTmpFile bool        // x.CreateTemp(...) seen
}

func checkSyncOrder(pass *Pass, fn *ast.FuncDecl) {
	var sites callSites
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch node := n.(type) {
		case *ast.CallExpr:
			switch calleeName(node) {
			case "journalAppend":
				sites.appends = append(sites.appends, node.Pos())
			case "saveHistory":
				sites.snapshots = append(sites.snapshots, node.Pos())
			case "journalRetire":
				sites.retires = append(sites.retires, node.Pos())
			case "Sync":
				sites.syncs = append(sites.syncs, node.Pos())
			case "Rename":
				sites.renames = append(sites.renames, node.Pos())
			case "CreateTemp":
				sites.hasTmpFile = true
			case "obs":
				sites.commits = append(sites.commits, node.Pos())
			}
		case *ast.AssignStmt:
			for _, lhs := range node.Lhs {
				if isCommitField(lhs) {
					sites.commits = append(sites.commits, node.Pos())
				}
			}
		case *ast.IncDecStmt:
			if isCommitField(node.X) {
				sites.commits = append(sites.commits, node.Pos())
			}
		}
		return true
	})

	reportBefore := func(later []token.Pos, earlier []token.Pos, what string) {
		if len(later) == 0 || len(earlier) == 0 {
			return
		}
		first := earlier[0]
		for _, p := range earlier[1:] {
			if p < first {
				first = p
			}
		}
		for _, p := range later {
			if p < first {
				pass.Reportf(p, "%s (durable-write ordering, see internal/store/journal.go)", what)
			}
		}
	}
	reportBefore(sites.commits, sites.appends,
		"in-memory commit before the journal append: a crash would acknowledge a version the journal never saw")
	reportBefore(sites.retires, sites.snapshots,
		"journal retired before the covering snapshot is written: a crash here loses versions")
	if sites.hasTmpFile {
		reportBefore(sites.renames, sites.syncs,
			"rename publishes the file before Sync flushes it: a crash can leave the published path with lost content")
	}
}

// calleeName extracts the bare called-function name: f(...) -> "f",
// x.f(...) -> "f".
func calleeName(call *ast.CallExpr) string {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return ""
}

// isCommitField matches selector targets of the in-memory commit:
// <expr>.latest and <expr>.versions.
func isCommitField(e ast.Expr) bool {
	sel, ok := e.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	return sel.Sel.Name == "latest" || sel.Sel.Name == "versions"
}
