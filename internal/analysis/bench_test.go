package analysis

import "testing"

// BenchmarkXyvet measures the full xyvet pipeline over the repo's own
// module — parse, type-check and run every analyzer from a cold cache.
// This is the cost `make vet` pays per invocation.
func BenchmarkXyvet(b *testing.B) {
	for i := 0; i < b.N; i++ {
		loader, err := LoaderForDir(".")
		if err != nil {
			b.Fatal(err)
		}
		pkgs, err := loader.Load("./...")
		if err != nil {
			b.Fatal(err)
		}
		if diags := Run(pkgs, All()); len(diags) != 0 {
			b.Fatalf("xyvet is not clean on its own repo: %d diagnostics, first: %s", len(diags), diags[0])
		}
	}
}

// BenchmarkXyvetAnalyzers isolates the analyzer passes from the
// loading cost: the module is parsed and type-checked once, then the
// suite runs per iteration.
func BenchmarkXyvetAnalyzers(b *testing.B) {
	loader, err := LoaderForDir(".")
	if err != nil {
		b.Fatal(err)
	}
	pkgs, err := loader.Load("./...")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if diags := Run(pkgs, All()); len(diags) != 0 {
			b.Fatalf("xyvet is not clean on its own repo: %d diagnostics, first: %s", len(diags), diags[0])
		}
	}
}
