package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// PoolBalance guards the diff core's scratch reuse (internal/diff's
// tree/matcher pools, internal/lcs's Fenwick scratch): a sync.Pool only
// pays off if every Get is matched by a Put on every path, and a value
// must never be touched after it went back — the next Get may already
// be mutating it on another goroutine, which is a data race no test
// reliably catches.
//
// The analysis is interprocedural within a package. First it
// classifies helper functions:
//
//   - a *source* returns a pooled value to its caller (`treeFromPool`,
//     `newTree`, `matcherFromPool` — directly or through other
//     sources);
//   - a *sink* returns its parameter or receiver to a pool
//     (`(*tree).release`, `(*matcher).release`).
//
// Then, in every function, a value acquired from a pool or a source
// must be either returned (the function becomes a source itself),
// released via `defer` (panic-safe), or released on the spot — in
// which case any later return between acquire and release, and any use
// of the value after the release, is a finding.
var PoolBalance = &Analyzer{
	Name: "poolbalance",
	Doc:  "sync.Pool.Get paired with Put on every path (defer for panic safety); no use after Put",
	Run:  runPoolBalance,
}

func runPoolBalance(pass *Pass) {
	pb := &poolBalance{
		pass:    pass,
		sources: make(map[types.Object]bool),
		sinks:   make(map[types.Object]bool),
	}
	pb.classify()
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fn, ok := decl.(*ast.FuncDecl); ok && fn.Body != nil {
				pb.checkFunc(fn)
			}
		}
	}
}

type poolBalance struct {
	pass    *Pass
	sources map[types.Object]bool // returns a pooled value
	sinks   map[types.Object]bool // Puts a param/receiver back
}

// isPoolExpr reports whether e is a sync.Pool (or *sync.Pool) value.
func (pb *poolBalance) isPoolExpr(e ast.Expr) bool {
	t := pb.pass.TypeOf(e)
	if t == nil {
		return false
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" && obj.Name() == "Pool"
}

// poolCall matches `<pool>.Get()` / `<pool>.Put(x)` calls.
func (pb *poolBalance) poolCall(call *ast.CallExpr) (method string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", false
	}
	switch sel.Sel.Name {
	case "Get":
		if len(call.Args) != 0 {
			return "", false
		}
	case "Put":
		if len(call.Args) != 1 {
			return "", false
		}
	default:
		return "", false
	}
	if !pb.isPoolExpr(sel.X) {
		return "", false
	}
	return sel.Sel.Name, true
}

// acquireExpr reports whether e yields a pooled value: a direct Get
// (possibly behind a type assertion) or a call of a known source.
func (pb *poolBalance) acquireExpr(e ast.Expr) bool {
	e = ast.Unparen(e)
	if ta, ok := e.(*ast.TypeAssertExpr); ok {
		e = ast.Unparen(ta.X)
	}
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	if m, ok := pb.poolCall(call); ok && m == "Get" {
		return true
	}
	return pb.sinksOrSources(call, pb.sources)
}

// sinksOrSources reports whether the call's callee object is in set.
func (pb *poolBalance) sinksOrSources(call *ast.CallExpr, set map[types.Object]bool) bool {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return false
	}
	obj := pb.pass.Info.Uses[id]
	if obj == nil {
		return false
	}
	return set[obj]
}

// classify finds the package's sources and sinks, iterating sources to
// a fixpoint so wrappers of wrappers (newTree over treeFromPool) are
// recognized.
func (pb *poolBalance) classify() {
	// Sinks need one pass: a Put whose argument resolves to a parameter
	// or the receiver.
	for _, f := range pb.pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			owned := pb.paramObjects(fn)
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if m, ok := pb.poolCall(call); ok && m == "Put" {
					if id, ok := ast.Unparen(call.Args[0]).(*ast.Ident); ok {
						if obj := pb.pass.Info.Uses[id]; obj != nil && owned[obj] {
							if fnObj := pb.pass.Info.Defs[fn.Name]; fnObj != nil {
								pb.sinks[fnObj] = true
							}
						}
					}
				}
				return true
			})
		}
	}
	// Sources to a fixpoint.
	for changed := true; changed; {
		changed = false
		for _, f := range pb.pass.Files {
			for _, decl := range f.Decls {
				fn, ok := decl.(*ast.FuncDecl)
				if !ok || fn.Body == nil {
					continue
				}
				fnObj := pb.pass.Info.Defs[fn.Name]
				if fnObj == nil || pb.sources[fnObj] {
					continue
				}
				if pb.returnsPooled(fn) {
					pb.sources[fnObj] = true
					changed = true
				}
			}
		}
	}
}

// paramObjects collects the objects of fn's parameters and receiver.
func (pb *poolBalance) paramObjects(fn *ast.FuncDecl) map[types.Object]bool {
	owned := make(map[types.Object]bool)
	addFields := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			for _, name := range field.Names {
				if obj := pb.pass.Info.Defs[name]; obj != nil {
					owned[obj] = true
				}
			}
		}
	}
	addFields(fn.Recv)
	if fn.Type != nil {
		addFields(fn.Type.Params)
	}
	return owned
}

// returnsPooled reports whether fn returns a pooled value on some
// path: a return of an acquire expression, or of a variable bound to
// one.
func (pb *poolBalance) returnsPooled(fn *ast.FuncDecl) bool {
	acquired := make(map[types.Object]bool)
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		assign, ok := n.(*ast.AssignStmt)
		if !ok || len(assign.Lhs) != len(assign.Rhs) {
			return true
		}
		for i, rhs := range assign.Rhs {
			if !pb.acquireExpr(rhs) {
				continue
			}
			if id, ok := assign.Lhs[i].(*ast.Ident); ok {
				if obj := pb.lhsObject(id); obj != nil {
					acquired[obj] = true
				}
			}
		}
		return true
	})
	found := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		for _, res := range ret.Results {
			if pb.acquireExpr(res) {
				found = true
			}
			if id, ok := ast.Unparen(res).(*ast.Ident); ok {
				if obj := pb.pass.Info.Uses[id]; obj != nil && acquired[obj] {
					found = true
				}
			}
		}
		return !found
	})
	return found
}

// lhsObject resolves the object an assignment left-hand ident binds
// (Defs for :=, Uses for =).
func (pb *poolBalance) lhsObject(id *ast.Ident) types.Object {
	if obj := pb.pass.Info.Defs[id]; obj != nil {
		return obj
	}
	return pb.pass.Info.Uses[id]
}

// acquire is one tracked pooled value inside a function.
type acquire struct {
	obj types.Object
	pos token.Pos
}

// checkFunc enforces the pairing discipline inside one declaration.
func (pb *poolBalance) checkFunc(fn *ast.FuncDecl) {
	fnObj := pb.pass.Info.Defs[fn.Name]
	if fnObj != nil && (pb.sources[fnObj] || pb.sinks[fnObj]) {
		// Sources hand the value to their caller, sinks receive it to
		// release: the pairing obligation lives at their call sites.
		return
	}
	var acquires []acquire
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		assign, ok := n.(*ast.AssignStmt)
		if !ok || len(assign.Lhs) != len(assign.Rhs) {
			return true
		}
		for i, rhs := range assign.Rhs {
			if !pb.acquireExpr(rhs) {
				continue
			}
			id, ok := assign.Lhs[i].(*ast.Ident)
			if !ok {
				continue // acquire into non-local storage: not trackable
			}
			if obj := pb.lhsObject(id); obj != nil {
				acquires = append(acquires, acquire{obj: obj, pos: id.Pos()})
			}
		}
		return true
	})
	for _, acq := range acquires {
		pb.checkAcquire(fn, acq)
	}
}

// releaseOf reports whether the statement's call releases obj: a
// direct `<pool>.Put(obj)`, a sink call with obj as argument, or a
// sink method call on obj.
func (pb *poolBalance) releaseOf(call *ast.CallExpr, obj types.Object) bool {
	usesObj := func(e ast.Expr) bool {
		id, ok := ast.Unparen(e).(*ast.Ident)
		return ok && pb.pass.Info.Uses[id] == obj
	}
	if m, ok := pb.poolCall(call); ok && m == "Put" {
		return usesObj(call.Args[0])
	}
	if pb.sinksOrSources(call, pb.sinks) {
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && usesObj(sel.X) {
			return true
		}
		for _, arg := range call.Args {
			if usesObj(arg) {
				return true
			}
		}
	}
	return false
}

func (pb *poolBalance) checkAcquire(fn *ast.FuncDecl, acq acquire) {
	var (
		deferredRelease bool
		releases        []*ast.CallExpr // non-deferred releases, in source order
		returned        bool
	)
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.DeferStmt:
			if pb.releaseOf(x.Call, acq.obj) {
				deferredRelease = true
			}
			// A deferred closure releasing the value also counts.
			if lit, ok := x.Call.Fun.(*ast.FuncLit); ok {
				ast.Inspect(lit.Body, func(m ast.Node) bool {
					if call, ok := m.(*ast.CallExpr); ok && pb.releaseOf(call, acq.obj) {
						deferredRelease = true
					}
					return true
				})
			}
			return false
		case *ast.CallExpr:
			if pb.releaseOf(x, acq.obj) && x.Pos() > acq.pos {
				releases = append(releases, x)
			}
		case *ast.ReturnStmt:
			for _, res := range x.Results {
				if id, ok := ast.Unparen(res).(*ast.Ident); ok && pb.pass.Info.Uses[id] == acq.obj {
					returned = true
				}
			}
		}
		return true
	})
	if deferredRelease || returned {
		return
	}
	if len(releases) == 0 {
		pb.pass.Reportf(acq.pos, "%s is drawn from a pool but never returned to it: add a defer-ed Put/release (or return it to transfer ownership)", acq.obj.Name())
		return
	}
	// Released inline: every return between the acquire and the
	// release leaks the value on that path, and any use after the
	// release races the next Get. The release calls' own mentions of
	// the value are not uses.
	releasePos := releases[0].Pos()
	inRelease := func(pos token.Pos) bool {
		for _, r := range releases {
			if pos >= r.Pos() && pos < r.End() {
				return true
			}
		}
		return false
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.ReturnStmt:
			if x.Pos() > acq.pos && x.End() <= releasePos {
				pb.pass.Reportf(x.Pos(), "return between %s's pool Get and its Put leaks the value on this path; release it before returning or use defer", acq.obj.Name())
			}
		case *ast.Ident:
			if x.Pos() > releasePos && !inRelease(x.Pos()) && pb.pass.Info.Uses[x] == acq.obj {
				pb.pass.Reportf(x.Pos(), "%s is used after it was returned to its pool: the next Get may already own it (data race)", acq.obj.Name())
			}
		}
		return true
	})
}
