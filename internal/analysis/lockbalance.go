package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// LockBalance enforces the store's lock discipline: every Lock/RLock of
// a sync.Mutex / sync.RWMutex must be released in the same function —
// either by an immediate `defer mu.Unlock()` or by an explicit unlock
// on every return path — and the same mutex must not be locked twice on
// one path (the self-deadlock a double-lock of a per-document history
// lock would cause under load).
//
// The check is a conservative per-statement-list flow analysis: it
// follows straight-line order, descends into branches with a copy of
// the lock state, and reports a return (or function end) reached while
// a lock is provably still held with no protecting defer. Functions
// that intentionally hand a locked structure to their caller (the
// store's reading() helper) carry an //xyvet:allow lockbalance
// directive with the reason.
var LockBalance = &Analyzer{
	Name: "lockbalance",
	Doc:  "Lock/RLock paired with defer Unlock or an unlock on every return path; no double-lock",
	Run:  runLockBalance,
}

// lockState tracks one mutex inside one function walk.
type lockState struct {
	reader    bool // held via RLock
	protected bool // a defer will release it
}

type lockKind uint8

const (
	opLock lockKind = iota
	opRLock
	opUnlock
	opRUnlock
)

func runLockBalance(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			default:
				return true
			}
			if body != nil {
				w := &lockWalker{pass: pass}
				w.walk(body.List, map[string]*lockState{}, true)
			}
			return true // keep descending: nested FuncLits get their own walk
		})
	}
}

type lockWalker struct {
	pass *Pass
}

// walk scans one statement list. held is mutated in place for
// straight-line effects; branches get copies (a branch may not run, so
// its effects cannot be assumed afterwards). top marks the outermost
// list of a function, where falling off the end is an implicit return.
func (w *lockWalker) walk(stmts []ast.Stmt, held map[string]*lockState, top bool) {
	for _, stmt := range stmts {
		switch s := stmt.(type) {
		case *ast.ExprStmt:
			if key, kind, ok := w.mutexOp(s.X); ok {
				w.apply(s.Pos(), key, kind, held)
			}
		case *ast.DeferStmt:
			if key, kind, ok := w.mutexOpCall(s.Call); ok && (kind == opUnlock || kind == opRUnlock) {
				if st := held[key]; st != nil {
					st.protected = true
				}
			}
		case *ast.ReturnStmt:
			w.checkLeaks(s.Pos(), held, "return")
		case *ast.IfStmt:
			w.walkNested(s.Init, held)
			w.walk(s.Body.List, copyLocks(held), false)
			if s.Else != nil {
				switch e := s.Else.(type) {
				case *ast.BlockStmt:
					w.walk(e.List, copyLocks(held), false)
				case *ast.IfStmt:
					w.walk([]ast.Stmt{e}, copyLocks(held), false)
				}
			}
		case *ast.ForStmt:
			w.walkNested(s.Init, held)
			w.walk(s.Body.List, copyLocks(held), false)
		case *ast.RangeStmt:
			w.walk(s.Body.List, copyLocks(held), false)
		case *ast.SwitchStmt:
			w.walkNested(s.Init, held)
			for _, c := range s.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok {
					w.walk(cc.Body, copyLocks(held), false)
				}
			}
		case *ast.TypeSwitchStmt:
			for _, c := range s.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok {
					w.walk(cc.Body, copyLocks(held), false)
				}
			}
		case *ast.SelectStmt:
			for _, c := range s.Body.List {
				if cc, ok := c.(*ast.CommClause); ok {
					w.walk(cc.Body, copyLocks(held), false)
				}
			}
		case *ast.BlockStmt:
			w.walk(s.List, held, false) // bare block: same scope, effects persist
		case *ast.LabeledStmt:
			w.walk([]ast.Stmt{s.Stmt}, held, top)
		}
	}
	if top && len(stmts) > 0 {
		// Falling off the end is an implicit return — but when the list
		// already ends in an explicit return, that return was checked.
		if _, isReturn := stmts[len(stmts)-1].(*ast.ReturnStmt); !isReturn {
			w.checkLeaks(stmts[len(stmts)-1].End(), held, "function end")
		}
	}
}

// walkNested runs a single optional statement (if/for/switch init).
func (w *lockWalker) walkNested(s ast.Stmt, held map[string]*lockState) {
	if s != nil {
		w.walk([]ast.Stmt{s}, held, false)
	}
}

// apply mutates the lock state for one mutex operation and reports
// double-locks.
func (w *lockWalker) apply(pos token.Pos, key string, kind lockKind, held map[string]*lockState) {
	switch kind {
	case opLock, opRLock:
		if st := held[key]; st != nil {
			how := "Lock"
			if st.reader {
				how = "RLock"
			}
			w.pass.Reportf(pos, "%s locked again while already held via %s (self-deadlock on a sync.Mutex, writer starvation on a sync.RWMutex)", key, how)
		}
		held[key] = &lockState{reader: kind == opRLock}
	case opUnlock, opRUnlock:
		if st := held[key]; st != nil {
			if st.reader != (kind == opRUnlock) {
				want, got := "Unlock", "RUnlock"
				if st.reader {
					want, got = got, want
				}
				w.pass.Reportf(pos, "%s released with %s but was acquired for %s", key, got, want)
			}
			delete(held, key)
		}
		// Unlock without a visible Lock (releasing a lock a callee
		// acquired) is deliberately not reported: the acquiring
		// function is where the handoff is reviewed.
	}
}

// checkLeaks reports every mutex still held with no protecting defer.
func (w *lockWalker) checkLeaks(pos token.Pos, held map[string]*lockState, where string) {
	for key, st := range held {
		if st.protected {
			continue
		}
		verb := "Unlock"
		if st.reader {
			verb = "RUnlock"
		}
		w.pass.Reportf(pos, "%s at %s still held: no defer %s.%s and no unlock on this path (lock handoffs need %s lockbalance)",
			key, where, key, verb, directivePrefix)
	}
}

// mutexOp matches an expression statement that is a mutex method call.
func (w *lockWalker) mutexOp(e ast.Expr) (key string, kind lockKind, ok bool) {
	call, isCall := e.(*ast.CallExpr)
	if !isCall {
		return "", 0, false
	}
	return w.mutexOpCall(call)
}

func (w *lockWalker) mutexOpCall(call *ast.CallExpr) (key string, kind lockKind, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel || len(call.Args) != 0 {
		return "", 0, false
	}
	switch sel.Sel.Name {
	case "Lock":
		kind = opLock
	case "RLock":
		kind = opRLock
	case "Unlock":
		kind = opUnlock
	case "RUnlock":
		kind = opRUnlock
	default:
		return "", 0, false
	}
	if !w.isMutex(sel.X) {
		return "", 0, false
	}
	return types.ExprString(sel.X), kind, true
}

// isMutex reports whether e has a sync mutex type (sync.Mutex,
// sync.RWMutex, sync.Locker, possibly behind a pointer). Without type
// information it falls back to a naming heuristic so the analyzer still
// works on packages with type errors.
func (w *lockWalker) isMutex(e ast.Expr) bool {
	t := w.pass.TypeOf(e)
	if t == nil {
		name := types.ExprString(e)
		if i := strings.LastIndexByte(name, '.'); i >= 0 {
			name = name[i+1:]
		}
		lower := strings.ToLower(name)
		return lower == "mu" || strings.HasSuffix(lower, "mu") || strings.Contains(lower, "mutex") || strings.Contains(lower, "lock")
	}
	if p, isPtr := t.Underlying().(*types.Pointer); isPtr {
		t = p.Elem()
	}
	switch tt := t.(type) {
	case *types.Named:
		obj := tt.Obj()
		if obj.Pkg() != nil && obj.Pkg().Path() == "sync" {
			return obj.Name() == "Mutex" || obj.Name() == "RWMutex" || obj.Name() == "Locker"
		}
	}
	return false
}

func copyLocks(held map[string]*lockState) map[string]*lockState {
	out := make(map[string]*lockState, len(held))
	for k, v := range held {
		cp := *v
		out[k] = &cp
	}
	return out
}
