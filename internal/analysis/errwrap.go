package analysis

import (
	"go/ast"
	"go/types"
	"strconv"
	"strings"
)

// ErrWrap enforces the error discipline of the store's typed-error
// surface (internal/store/errors.go): errors crossing a package
// boundary keep their chain, and no error is dropped on the floor.
// Concretely:
//
//   - a call whose (last) result is an error must not appear as a bare
//     statement — handle it, return it, or discard it visibly with
//     `_ =` (deferred calls are exempt: Go offers no good way to route
//     their errors, and the repo's defers are best-effort cleanups);
//   - fmt.Errorf must format wrapped errors with %w, not %v/%s/%q,
//     so errors.Is/As keep working across packages;
//   - errors.New(fmt.Sprintf(...)) is fmt.Errorf spelled expensively.
//
// Print-family fmt calls and the never-failing writers (bytes.Buffer,
// strings.Builder) are exempt from the discard rule.
var ErrWrap = &Analyzer{
	Name: "errwrap",
	Doc:  "no silently discarded error results; wrapped errors use %w",
	Run:  runErrWrap,
}

func runErrWrap(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch node := n.(type) {
			case *ast.ExprStmt:
				if call, ok := node.X.(*ast.CallExpr); ok {
					checkDiscardedError(pass, call)
				}
			case *ast.CallExpr:
				checkErrorfWrap(pass, node)
				checkErrorsNewSprintf(pass, node)
			}
			return true
		})
	}
}

// errorType is the universe error interface.
var errorType = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

// isErrorType reports whether t is (or implements) error.
func isErrorType(t types.Type) bool {
	if t == nil {
		return false
	}
	if t.String() == "error" {
		return true
	}
	return types.Implements(t, errorType)
}

// checkDiscardedError flags a statement-position call whose last result
// is an error.
func checkDiscardedError(pass *Pass, call *ast.CallExpr) {
	t := pass.TypeOf(call)
	if t == nil {
		return
	}
	var last types.Type
	switch rt := t.(type) {
	case *types.Tuple:
		if rt.Len() == 0 {
			return
		}
		last = rt.At(rt.Len() - 1).Type()
	default:
		last = rt
	}
	if !isErrorType(last) {
		return
	}
	if discardExempt(pass, call) {
		return
	}
	pass.Reportf(call.Pos(), "error result of %s discarded; handle it, return it, or assign to _ explicitly", callName(call))
}

// discardExempt lists the calls whose error results are conventionally
// ignored: fmt print functions and in-memory writers that document they
// never fail.
func discardExempt(pass *Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	if pkg, fn := packageFunc(pass, sel); pkg == "fmt" &&
		(strings.HasPrefix(fn, "Print") || strings.HasPrefix(fn, "Fprint")) {
		return true
	}
	recv := pass.TypeOf(sel.X)
	if recv == nil {
		return false
	}
	s := recv.String()
	return s == "*bytes.Buffer" || s == "bytes.Buffer" || s == "*strings.Builder" || s == "strings.Builder"
}

// callName renders a compact name for diagnostics.
func callName(call *ast.CallExpr) string {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return types.ExprString(fun)
	default:
		return "call"
	}
}

// checkErrorfWrap verifies that every error-typed argument of a
// fmt.Errorf call is formatted with %w.
func checkErrorfWrap(pass *Pass, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	if pkg, fn := packageFunc(pass, sel); pkg != "fmt" || fn != "Errorf" {
		return
	}
	if len(call.Args) < 2 {
		return
	}
	format, ok := stringConstant(pass, call.Args[0])
	if !ok {
		return
	}
	verbs, clean := formatVerbs(format)
	if !clean || len(verbs) != len(call.Args)-1 {
		return // indexed or malformed format: stay silent
	}
	for i, verb := range verbs {
		arg := call.Args[i+1]
		if !isErrorType(pass.TypeOf(arg)) {
			continue
		}
		switch verb {
		case 'v', 's', 'q':
			pass.Reportf(arg.Pos(), "error formatted with %%%c loses the chain for errors.Is/As; use %%w", verb)
		}
	}
}

// checkErrorsNewSprintf flags errors.New(fmt.Sprintf(...)).
func checkErrorsNewSprintf(pass *Pass, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	if pkg, fn := packageFunc(pass, sel); pkg != "errors" || fn != "New" {
		return
	}
	if len(call.Args) != 1 {
		return
	}
	inner, ok := call.Args[0].(*ast.CallExpr)
	if !ok {
		return
	}
	if innerSel, ok := inner.Fun.(*ast.SelectorExpr); ok {
		if pkg, fn := packageFunc(pass, innerSel); pkg == "fmt" && fn == "Sprintf" {
			pass.Reportf(call.Pos(), "errors.New(fmt.Sprintf(...)); use fmt.Errorf directly")
		}
	}
}

// stringConstant resolves e to a constant string (literal or typed
// constant known to the checker).
func stringConstant(pass *Pass, e ast.Expr) (string, bool) {
	if lit, ok := e.(*ast.BasicLit); ok && lit.Kind.String() == "STRING" {
		s, err := strconv.Unquote(lit.Value)
		if err != nil {
			return "", false
		}
		return s, true
	}
	if tv, ok := pass.Info.Types[e]; ok && tv.Value != nil && tv.Value.Kind().String() == "String" {
		return constantStringValue(tv.Value.ExactString())
	}
	return "", false
}

func constantStringValue(exact string) (string, bool) {
	s, err := strconv.Unquote(exact)
	if err != nil {
		return "", false
	}
	return s, true
}

// formatVerbs extracts the verb letters of a Printf-style format in
// order. clean is false when the format uses explicit argument indexes
// ([n]) or anything else that breaks the one-verb-per-argument mapping.
func formatVerbs(format string) (verbs []rune, clean bool) {
	for i := 0; i < len(format); i++ {
		if format[i] != '%' {
			continue
		}
		i++
		if i >= len(format) {
			return verbs, false
		}
		if format[i] == '%' {
			continue
		}
		// Skip flags, width, precision.
		for i < len(format) && strings.ContainsRune("+-# 0123456789.", rune(format[i])) {
			i++
		}
		if i >= len(format) {
			return verbs, false
		}
		if format[i] == '[' {
			return verbs, false // explicit index: bail out
		}
		if format[i] == '*' {
			verbs = append(verbs, '*') // width argument consumes one arg
			i++
			for i < len(format) && strings.ContainsRune("0123456789.", rune(format[i])) {
				i++
			}
			if i >= len(format) {
				return verbs, false
			}
		}
		verbs = append(verbs, rune(format[i]))
	}
	return verbs, true
}
