package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// GoroLeak enforces the daemon's goroutine lifecycle invariant: every
// goroutine the stack spawns — group-commit writers, sync/compaction/
// scrub loops, crawl workers, diff fan-out — must provably terminate,
// or the daemon accumulates runners that outlive their owner and hold
// segments, documents, and sockets forever.
//
// For each `go` statement the analyzer resolves the spawned body: a
// function literal directly, or — interprocedurally, through the
// module-wide declaration index — a function or method declared in any
// analyzed package (`go s.committer(sh)`, `go s.scrubber.Run(ctx)`).
// An unresolvable callee (function value, callee outside the analyzed
// set) is skipped: nothing is provable about it.
//
// A resolved body passes when every unbounded loop (`for` with no
// condition) has a provable exit:
//
//   - the loop never exits at all — no return, no break — is always a
//     finding: the goroutine runs forever by construction;
//   - a loop that exits only on internal conditions is accepted when
//     the goroutine visibly hands its lifetime to an owner — it calls
//     sync.WaitGroup.Done, defers close of a done channel, or the loop
//     itself receives from a channel (a ctx.Done()/shutdown-channel
//     select, a `v, ok := <-ch` close test, a `range ch` drain);
//   - bodies with only bounded loops (a condition, a non-channel
//     range) terminate when their work does and pass as-is.
//
// Deliberate fire-and-forget goroutines carry an
// //xyvet:allow goroleak directive with the reason.
var GoroLeak = &Analyzer{
	Name: "goroleak",
	Doc:  "every spawned goroutine provably exits: shutdown receive, WaitGroup.Done/close handoff, or bounded body",
	Run:  runGoroLeak,
}

func runGoroLeak(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			body := spawnedBody(pass, g.Call)
			if body == nil {
				return true
			}
			checkGoroutine(pass, g, body)
			return true
		})
	}
}

// spawnedBody resolves the block a go statement will run.
func spawnedBody(pass *Pass, call *ast.CallExpr) *ast.BlockStmt {
	if lit, ok := call.Fun.(*ast.FuncLit); ok {
		return lit.Body
	}
	if fd := pass.CalleeDecl(call); fd != nil {
		return fd.Body
	}
	return nil
}

func checkGoroutine(pass *Pass, g *ast.GoStmt, body *ast.BlockStmt) {
	handoff := hasLifetimeHandoff(pass, body)
	for _, loop := range unboundedLoops(body) {
		scan := scanLoop(pass, loop)
		line := pass.Fset.Position(loop.Pos()).Line
		switch {
		case !scan.exits:
			pass.Reportf(g.Pos(), "goroutine never terminates: the for loop at line %d has no return or break", line)
		case !scan.recv && !handoff:
			pass.Reportf(g.Pos(), "goroutine has no provable exit path: the loop at line %d never receives from a shutdown channel or context, and the goroutine neither calls a WaitGroup.Done nor defers close of a done channel", line)
		}
	}
}

// hasLifetimeHandoff reports whether the body visibly hands its
// lifetime to an owner: a sync.WaitGroup.Done call (an owner Waits) or
// a deferred close of a channel (an owner receives the close).
func hasLifetimeHandoff(pass *Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch s := n.(type) {
		case *ast.GoStmt:
			return false // a nested goroutine's evidence is its own
		case *ast.ExprStmt:
			if call, ok := s.X.(*ast.CallExpr); ok && isWaitGroupDone(pass, call) {
				found = true
			}
		case *ast.DeferStmt:
			if isWaitGroupDone(pass, s.Call) || isClose(s.Call) {
				found = true
			}
		}
		return !found
	})
	return found
}

// isWaitGroupDone matches wg.Done() on a sync.WaitGroup (by type when
// the checker resolved it, by the conventional receiver name when it
// did not).
func isWaitGroupDone(pass *Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Done" || len(call.Args) != 0 {
		return false
	}
	t := pass.TypeOf(sel.X)
	if t == nil {
		name := strings.ToLower(types.ExprString(sel.X))
		return strings.Contains(name, "wg") || strings.Contains(name, "waitgroup")
	}
	if p, isPtr := t.Underlying().(*types.Pointer); isPtr {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" && obj.Name() == "WaitGroup"
}

func isClose(call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	return ok && id.Name == "close" && len(call.Args) == 1
}

// unboundedLoops collects the `for`-with-no-condition loops of a body,
// at any statement depth, excluding nested function literals (their
// loops belong to whoever calls them) and nested go statements.
func unboundedLoops(body *ast.BlockStmt) []*ast.ForStmt {
	var loops []*ast.ForStmt
	ast.Inspect(body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.FuncLit, *ast.GoStmt:
			return false
		case *ast.ForStmt:
			if s.Cond == nil {
				loops = append(loops, s)
			}
		}
		return true
	})
	return loops
}

// loopScan is what one unbounded loop's body reveals about its exits.
type loopScan struct {
	// exits: a return, or a break that leaves this loop, is reachable
	// inside it.
	exits bool
	// recv: the loop receives from a channel (select case, plain
	// receive, or range over a channel) — the shutdown-signal shape.
	recv bool
}

func scanLoop(pass *Pass, loop *ast.ForStmt) loopScan {
	var s loopScan
	scanLoopBody(pass, loop.Body, 0, &s)
	return s
}

// scanLoopBody walks one loop body. breakDepth counts the for/range/
// switch/select statements between the current node and the loop being
// scanned, so a plain `break` is only credited when it actually leaves
// the scanned loop. Labeled breaks are credited unconditionally: the
// conservative reading (an exit exists) avoids resolving label
// targets.
func scanLoopBody(pass *Pass, n ast.Node, breakDepth int, s *loopScan) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(node ast.Node) bool {
		switch x := node.(type) {
		case *ast.FuncLit, *ast.GoStmt:
			return false
		case *ast.ReturnStmt:
			s.exits = true
		case *ast.BranchStmt:
			if x.Tok == token.BREAK && (x.Label != nil || breakDepth == 0) {
				s.exits = true
			}
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				s.recv = true
			}
		case *ast.RangeStmt:
			// Ranging over a channel is a receive (the loop ends when the
			// channel closes); over anything else it is bounded. Either
			// way the nested body has its own break scope.
			if isChanExpr(pass, x.X) {
				s.recv = true
			}
			scanLoopBody(pass, x.Body, breakDepth+1, s)
			return false
		case *ast.ForStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
			for _, sub := range childBodies(node) {
				scanLoopBody(pass, sub, breakDepth+1, s)
			}
			return false
		}
		return true
	})
}

// isChanExpr reports whether e has a channel type. Without type
// information it answers false — the loop then needs other exit
// evidence, which is the conservative direction.
func isChanExpr(pass *Pass, e ast.Expr) bool {
	t := pass.TypeOf(e)
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Chan)
	return ok
}

// childBodies returns the nested statement bodies of a compound
// statement, so the walker can descend with an adjusted break depth.
func childBodies(n ast.Node) []ast.Node {
	var out []ast.Node
	switch x := n.(type) {
	case *ast.ForStmt:
		if x.Init != nil {
			out = append(out, x.Init)
		}
		out = append(out, x.Body)
	case *ast.SwitchStmt:
		if x.Init != nil {
			out = append(out, x.Init)
		}
		out = append(out, x.Body)
	case *ast.TypeSwitchStmt:
		out = append(out, x.Body)
	case *ast.SelectStmt:
		out = append(out, x.Body)
	}
	return out
}
