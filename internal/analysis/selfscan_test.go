package analysis

// The self-scan is the suite's own regression gate: the whole module,
// every analyzer, zero findings. It is what `make vet` enforces in CI,
// pinned as a unit test so a change to an analyzer (or to the code it
// audits) that introduces a finding — including a newly stale
// //xyvet:allow directive — fails here first, with the finding in the
// failure message.

import (
	"path/filepath"
	"testing"
)

func TestRepoSelfScanIsClean(t *testing.T) {
	t.Parallel()
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	loader, err := LoaderForDir(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.Load("./...")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 10 {
		t.Fatalf("self-scan loaded only %d packages; the module has far more", len(pkgs))
	}
	for _, pkg := range pkgs {
		for _, terr := range pkg.TypeErrors {
			t.Errorf("%s: does not type-check: %v", pkg.Path, terr)
		}
	}
	for _, d := range Run(pkgs, All()) {
		rel, err := filepath.Rel(loader.ModDir, d.File)
		if err != nil {
			rel = d.File
		}
		t.Errorf("%s:%d:%d: [%s] %s", rel, d.Line, d.Column, d.Analyzer, d.Message)
	}
}
