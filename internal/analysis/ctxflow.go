package analysis

import (
	"go/ast"
)

// CtxFlow enforces the context discipline diff.DiffContext and the
// server introduced: cancellation flows from the request into the diff
// phases as an explicit parameter, never through stored state. A
// context.Context must be a function's first parameter, must be
// forwarded (not ignored), must not be recreated from
// context.Background/TODO inside a function that already received one,
// and must never be stored in a struct — a stored context outlives its
// request and silently detaches deadlines from the work they bound.
var CtxFlow = &Analyzer{
	Name: "ctxflow",
	Doc:  "context.Context is first parameter, forwarded, never stored in a struct or replaced by Background/TODO",
	Run:  runCtxFlow,
}

func runCtxFlow(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch node := n.(type) {
			case *ast.StructType:
				checkCtxFields(pass, node)
			case *ast.FuncDecl:
				checkCtxFunc(pass, node.Type, node.Body)
			case *ast.FuncLit:
				checkCtxFunc(pass, node.Type, node.Body)
			case *ast.AssignStmt:
				checkCtxStore(pass, node)
			}
			return true
		})
	}
}

// isContextType reports whether e denotes context.Context.
func isContextType(pass *Pass, e ast.Expr) bool {
	if t := pass.TypeOf(e); t != nil {
		return t.String() == "context.Context"
	}
	// Fall back to the spelled selector when type info is missing.
	sel, ok := e.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Context" {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	return ok && id.Name == "context"
}

// checkCtxFields flags struct fields of type context.Context.
func checkCtxFields(pass *Pass, st *ast.StructType) {
	for _, field := range st.Fields.List {
		if isContextType(pass, field.Type) {
			pass.Reportf(field.Pos(), "context.Context stored in a struct; pass it as the first parameter of each method that needs it")
		}
	}
}

// checkCtxFunc flags a ctx parameter that is not first, and a ctx
// parameter the body never forwards.
func checkCtxFunc(pass *Pass, ft *ast.FuncType, body *ast.BlockStmt) {
	if ft.Params == nil {
		return
	}
	paramIndex := 0
	for _, field := range ft.Params.List {
		isCtx := isContextType(pass, field.Type)
		names := field.Names
		if len(names) == 0 {
			names = []*ast.Ident{nil} // unnamed parameter still occupies a position
		}
		for _, name := range names {
			if isCtx {
				if paramIndex != 0 {
					pass.Reportf(field.Pos(), "context.Context must be the first parameter")
				}
				if name != nil && name.Name != "_" && body != nil && !identUsed(pass, body, name) {
					pass.Reportf(field.Pos(), "context parameter %s is never forwarded; cancellation stops here", name.Name)
				}
				if body != nil {
					checkCtxRecreated(pass, body)
				}
			}
			paramIndex++
		}
	}
}

// identUsed reports whether the object defined by def is referenced
// anywhere in body.
func identUsed(pass *Pass, body *ast.BlockStmt, def *ast.Ident) bool {
	obj := pass.Info.Defs[def]
	used := false
	ast.Inspect(body, func(n ast.Node) bool {
		if used {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		if obj != nil {
			if pass.Info.Uses[id] == obj {
				used = true
			}
		} else if id.Name == def.Name {
			used = true // no type info: match by name
		}
		return true
	})
	return used
}

// checkCtxRecreated flags context.Background()/context.TODO() inside a
// function that already has a context parameter: the caller's deadline
// and cancellation are silently dropped.
func checkCtxRecreated(pass *Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // a nested function has its own parameters
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
			if pkg, fn := packageFunc(pass, sel); pkg == "context" && (fn == "Background" || fn == "TODO") {
				pass.Reportf(call.Pos(), "context.%s() inside a function that already receives a ctx; forward the caller's context", fn)
			}
		}
		return true
	})
}

// checkCtxStore flags assignments that store a context into a struct
// field (x.f = ctx), the dynamic form of the stored-context mistake.
func checkCtxStore(pass *Pass, as *ast.AssignStmt) {
	for i, lhs := range as.Lhs {
		if i >= len(as.Rhs) {
			break
		}
		if _, ok := lhs.(*ast.SelectorExpr); !ok {
			continue
		}
		if t := pass.TypeOf(as.Rhs[i]); t != nil && t.String() == "context.Context" {
			pass.Reportf(as.Pos(), "context.Context assigned to a struct field; contexts are call-scoped, pass them as parameters")
		}
	}
}
