package analysis

import (
	"go/ast"
	"go/token"
)

// SegOrder encodes the sharded engine's durable-write ordering
// (internal/vstore): within any function of a package named "vstore",
//
//  1. the group-committed segment append (appendDurable) must happen
//     before the in-memory commit — assignments to a document state's
//     base/versions/deltas fields and the observer callback — so a
//     version is never acknowledged or observable before its record is
//     in the shard's segment journal;
//  2. the per-document snapshots (snapshotDoc) must be written before
//     the segments they cover are retired (retireSegments), so a crash
//     between the two still finds every version in either a snapshot
//     or a segment;
//  3. in temp-file-plus-rename writers (functions using CreateTemp),
//     the fsync (Sync) must happen before the Rename that publishes
//     the file.
//
// Together the three rules are the write → fsync → rename → retire
// discipline; the check compares source order within one function —
// exactly what a refactor of PutContext or compactShard could silently
// reorder.
var SegOrder = &Analyzer{
	Name: "segorder",
	Doc:  "vstore ordering: segment append before commit, snapshot before segment retire, fsync before rename",
	Run:  runSegOrder,
}

func runSegOrder(pass *Pass) {
	if pass.Pkg != nil && pass.Pkg.Name() != "vstore" {
		return
	}
	for _, f := range pass.Files {
		if f.Name.Name != "vstore" {
			return
		}
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkSegOrder(pass, fn)
		}
	}
}

// segSites records source positions of the calls and commit writes a
// function performs, in document order.
type segSites struct {
	appends    []token.Pos // appendDurable(...)
	commits    []token.Pos // x.base = / x.versions = / x.deltas = / x.versions++ / s.obs(...)
	snapshots  []token.Pos // snapshotDoc(...)
	retires    []token.Pos // retireSegments(...)
	syncs      []token.Pos // x.Sync()
	renames    []token.Pos // x.Rename(...)
	hasTmpFile bool        // x.CreateTemp(...) seen
}

func checkSegOrder(pass *Pass, fn *ast.FuncDecl) {
	var sites segSites
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch node := n.(type) {
		case *ast.CallExpr:
			switch calleeName(node) {
			case "appendDurable":
				sites.appends = append(sites.appends, node.Pos())
			case "snapshotDoc":
				sites.snapshots = append(sites.snapshots, node.Pos())
			case "retireSegments":
				sites.retires = append(sites.retires, node.Pos())
			case "Sync":
				sites.syncs = append(sites.syncs, node.Pos())
			case "Rename":
				sites.renames = append(sites.renames, node.Pos())
			case "CreateTemp":
				sites.hasTmpFile = true
			case "obs":
				sites.commits = append(sites.commits, node.Pos())
			}
		case *ast.AssignStmt:
			for _, lhs := range node.Lhs {
				if isDocStateField(lhs) {
					sites.commits = append(sites.commits, node.Pos())
				}
			}
		case *ast.IncDecStmt:
			if isDocStateField(node.X) {
				sites.commits = append(sites.commits, node.Pos())
			}
		}
		return true
	})

	reportBefore := func(later []token.Pos, earlier []token.Pos, what string) {
		if len(later) == 0 || len(earlier) == 0 {
			return
		}
		first := earlier[0]
		for _, p := range earlier[1:] {
			if p < first {
				first = p
			}
		}
		for _, p := range later {
			if p < first {
				pass.Reportf(p, "%s (segment-log ordering, see internal/vstore/segment.go)", what)
			}
		}
	}
	reportBefore(sites.commits, sites.appends,
		"in-memory commit before the segment append: a crash would acknowledge a version no segment saw")
	reportBefore(sites.retires, sites.snapshots,
		"segments retired before the covering snapshots are written: a crash here loses versions")
	if sites.hasTmpFile {
		reportBefore(sites.renames, sites.syncs,
			"rename publishes the file before Sync flushes it: a crash can leave the published path with lost content")
	}
}

// isDocStateField matches selector targets of the in-memory commit:
// <expr>.base, <expr>.versions and <expr>.deltas (the docState fields
// a Put publishes).
func isDocStateField(e ast.Expr) bool {
	sel, ok := e.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	switch sel.Sel.Name {
	case "base", "versions", "deltas":
		return true
	}
	return false
}
