package analysis

import (
	"go/ast"
	"go/types"
)

// TimerLeak guards the stack's timer loops — the scrub scheduler, the
// group-commit linger, the compaction nudge, the crawl dispatcher all
// run timers inside long-lived loops, where a leaked timer per
// iteration becomes a steady allocation drip the GC cannot reclaim
// until each timer fires.
//
// Three rules, checked per function (closures are scanned as part of
// their enclosing declaration):
//
//   - time.After inside any loop is a finding: every iteration parks a
//     new runtime timer until it fires; a reused time.NewTimer with
//     Stop is the loop-safe form.
//   - time.Tick is always a finding: the ticker it allocates can never
//     be stopped.
//   - a time.NewTimer/time.NewTicker result must be Stop-ed somewhere
//     in the same function (a deferred Stop counts, as does a Stop in a
//     deferred closure). Results that are returned, stored in a
//     struct, or passed on are ownership transfers and are skipped —
//     the receiver is responsible.
var TimerLeak = &Analyzer{
	Name: "timerleak",
	Doc:  "no time.After in loops, no time.Tick, every NewTimer/NewTicker paired with Stop",
	Run:  runTimerLeak,
}

func runTimerLeak(pass *Pass) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkTimers(pass, fn.Body)
		}
	}
}

func checkTimers(pass *Pass, body *ast.BlockStmt) {
	// One pass over the function collects every loop's lexical range,
	// the variables timer constructors are assigned to, the
	// constructor calls that escape (returned / stored / passed on),
	// and every `<x>.Stop()` receiver spelling.
	type loopRange struct{ lo, hi ast.Node }
	var loops []loopRange
	assigned := make(map[*ast.CallExpr]string)
	escaped := make(map[*ast.CallExpr]bool)
	stops := make(map[string]bool)

	markEscapes := func(exprs []ast.Expr) {
		for _, e := range exprs {
			if call, ok := ast.Unparen(e).(*ast.CallExpr); ok {
				if name := timeFunc(pass, call); name == "NewTimer" || name == "NewTicker" {
					escaped[call] = true
				}
			}
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.ForStmt:
			loops = append(loops, loopRange{x, x})
		case *ast.RangeStmt:
			loops = append(loops, loopRange{x, x})
		case *ast.AssignStmt:
			if len(x.Lhs) == len(x.Rhs) {
				for i, rhs := range x.Rhs {
					call, ok := ast.Unparen(rhs).(*ast.CallExpr)
					if !ok {
						continue
					}
					if name := timeFunc(pass, call); name != "NewTimer" && name != "NewTicker" {
						continue
					}
					if id, ok := x.Lhs[i].(*ast.Ident); ok {
						assigned[call] = id.Name
					} else {
						// Stored into a struct field, map or slice slot:
						// its lifecycle extends beyond this function.
						escaped[call] = true
					}
				}
			}
		case *ast.ReturnStmt:
			markEscapes(x.Results)
		case *ast.CallExpr:
			if sel, ok := x.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Stop" && len(x.Args) == 0 {
				stops[types.ExprString(sel.X)] = true
			}
			// A constructor handed directly to another call transfers
			// ownership (e.g. wrapping helpers).
			markEscapes(x.Args)
		}
		return true
	})

	inLoop := func(n ast.Node) bool {
		for _, l := range loops {
			if n.Pos() > l.lo.Pos() && n.End() <= l.hi.End() {
				return true
			}
		}
		return false
	}

	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch timeFunc(pass, call) {
		case "After":
			if inLoop(call) {
				pass.Reportf(call.Pos(), "time.After in a loop parks a new timer every iteration until it fires; reuse a time.NewTimer with Stop")
			}
		case "Tick":
			pass.Reportf(call.Pos(), "time.Tick's ticker can never be stopped; use time.NewTicker with defer Stop")
		case "NewTimer", "NewTicker":
			if escaped[call] {
				return true
			}
			name, ok := assigned[call]
			if !ok {
				pass.Reportf(call.Pos(), "timer is never bound to a variable, so it can never be stopped")
				return true
			}
			if !stops[name] {
				pass.Reportf(call.Pos(), "%s is never stopped in this function: add defer %s.Stop() (or an explicit Stop on every path)", name, name)
			}
		}
		return true
	})
}

// timeFunc names the package-time function a call invokes ("After",
// "Tick", "NewTimer", "NewTicker"), or "" for anything else — in
// particular "" for the time.Time.After *method*, whose package is
// also "time": the selector base must be the time package name itself.
// Without type information it falls back to the `time.` spelling.
func timeFunc(pass *Pass, call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	switch sel.Sel.Name {
	case "After", "Tick", "NewTimer", "NewTicker":
	default:
		return ""
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return ""
	}
	if obj := pass.Info.Uses[id]; obj != nil {
		if pn, ok := obj.(*types.PkgName); ok && pn.Imported().Path() == "time" {
			return sel.Sel.Name
		}
		return ""
	}
	if id.Name == "time" {
		return sel.Sel.Name
	}
	return ""
}
