package sftm

import "xydiff/internal/dom"

// candidate is one scored old-node candidate for a new node.
type candidate struct {
	o     int32   // old pre-order index
	base  float64 // token similarity in [0,1]
	score float64 // base plus structural propagation bonus
}

type matcher struct {
	old, new *flatTree
	opts     Options

	oldTok, newTok [][]uint64 // per-node sorted, deduplicated token sets

	index  map[uint64][]int32  // token → old postings (stop tokens pruned)
	weight map[uint64]float64  // token → IDF weight over the old document
	stop   map[uint64]struct{} // pruned tokens, excluded from masses too

	oldMass, newMass []float64 // per-node total token weight

	cands          [][]candidate // per new node, ordered score desc / o asc
	candidateCount int
	stopTokens     int

	oldToNew, newToOld []int32
}

// tokenize fills the per-node token sets. A shared backing slice is
// deliberately not used: each node keeps its own sorted set alive for
// the whole run.
func (m *matcher) tokenize() {
	m.oldTok = make([][]uint64, m.old.len())
	m.newTok = make([][]uint64, m.new.len())
	for i := 1; i < m.old.len(); i++ {
		m.oldTok[i] = tokenizeNode(m.old.nodes[i], nil)
	}
	for i := 1; i < m.new.len(); i++ {
		m.newTok[i] = tokenizeNode(m.new.nodes[i], nil)
	}
}

// buildIndex constructs the inverted index over the old document,
// prunes over-frequent tokens, assigns IDF weights, and computes the
// per-node token masses used to normalize overlap scores.
func (m *matcher) buildIndex() {
	n := m.old.len() - 1
	df := make(map[uint64]int, n*4)
	for i := 1; i < m.old.len(); i++ {
		for _, t := range m.oldTok[i] {
			df[t]++
		}
	}
	maxPost := m.opts.maxPostings()
	m.index = make(map[uint64][]int32, len(df))
	m.weight = make(map[uint64]float64, len(df))
	m.stop = make(map[uint64]struct{})
	for t, c := range df {
		if c > maxPost {
			m.stop[t] = struct{}{}
			continue
		}
		m.weight[t] = logIDF(n, c)
	}
	m.stopTokens = len(m.stop)
	for i := 1; i < m.old.len(); i++ {
		for _, t := range m.oldTok[i] {
			if _, dead := m.stop[t]; dead {
				continue
			}
			m.index[t] = append(m.index[t], int32(i))
		}
	}

	// Tokens the old document never saw still count toward a new
	// node's mass (they are evidence of difference) at the maximum
	// weight a singleton would get.
	unseen := logIDF(n, 1)
	m.oldMass = make([]float64, m.old.len())
	m.newMass = make([]float64, m.new.len())
	for i := 1; i < m.old.len(); i++ {
		var mass float64
		for _, t := range m.oldTok[i] {
			mass += m.weight[t] // zero for stop tokens
		}
		m.oldMass[i] = mass
	}
	for i := 1; i < m.new.len(); i++ {
		var mass float64
		for _, t := range m.newTok[i] {
			if _, dead := m.stop[t]; dead {
				continue
			}
			if w, ok := m.weight[t]; ok {
				mass += w
			} else {
				mass += unseen
			}
		}
		m.newMass[i] = mass
	}
}

// selectCandidates scores, for every new node, the old nodes it shares
// at least one indexed token with, and keeps the top-k compatible ones.
// Scores are the shared token weight normalized by the larger of the
// two node masses, so identical nodes score 1 and a node absorbed into
// a much heavier one scores low.
func (m *matcher) selectCandidates() {
	m.cands = make([][]candidate, m.new.len())
	acc := make([]float64, m.old.len())
	touched := make([]int32, 0, 256)
	k := m.opts.topK()
	for ni := 1; ni < m.new.len(); ni++ {
		touched = touched[:0]
		for _, t := range m.newTok[ni] {
			w, ok := m.weight[t]
			if !ok {
				continue
			}
			for _, oi := range m.index[t] {
				if acc[oi] == 0 {
					touched = append(touched, oi)
				}
				acc[oi] += w
			}
		}
		nn := m.new.nodes[ni]
		var best []candidate
		for _, oi := range touched {
			shared := acc[oi]
			acc[oi] = 0
			if !compatible(m.old.nodes[oi], nn) {
				continue
			}
			denom := m.oldMass[oi]
			if m.newMass[ni] > denom {
				denom = m.newMass[ni]
			}
			if denom <= 0 {
				continue
			}
			best = insertTopK(best, candidate{o: oi, base: shared / denom}, k)
		}
		m.cands[ni] = best
		m.candidateCount += len(best)
	}
}

// insertTopK keeps best ordered by base desc, then o asc, capped at k.
// The total order makes the kept set independent of insertion order.
func insertTopK(best []candidate, c candidate, k int) []candidate {
	pos := len(best)
	for pos > 0 {
		p := best[pos-1]
		if p.base > c.base || (p.base == c.base && p.o < c.o) {
			break
		}
		pos--
	}
	if pos >= k {
		return best
	}
	if len(best) < k {
		best = append(best, candidate{})
	}
	copy(best[pos+1:], best[pos:])
	best[pos] = c
	return best
}

// candScore returns the current propagated score recorded for the
// (old, new) pair, or 0 if the old node is not among the new node's
// candidates. Candidate lists are top-k small, so a linear scan wins
// over any map.
func (m *matcher) candScore(ni, oi int32) float64 {
	for _, c := range m.cands[ni] {
		if c.o == oi {
			return c.score
		}
	}
	return 0
}

// sibArrays returns, for every node, the pre-order index of its
// previous and next sibling (-1 at the ends). Children blocks are in
// document order, so adjacency is positional adjacency.
func sibArrays(t *flatTree) (prev, next []int32) {
	prev = make([]int32, t.len())
	next = make([]int32, t.len())
	for i := range prev {
		prev[i], next[i] = -1, -1
	}
	for i := 0; i < t.len(); i++ {
		ks := t.children(i)
		for j := range ks {
			if j > 0 {
				prev[ks[j]] = ks[j-1]
			}
			if j+1 < len(ks) {
				next[ks[j]] = ks[j+1]
			}
		}
	}
	return prev, next
}

// propagate adds the structural bonus: a candidate pair earns support
// when the new node's children have candidates under the old node
// (child support, normalized by the larger child count), when the
// parents are each other's candidates too (parent support), and when
// the adjacent siblings agree (sibling support — the only signal that
// separates two fully-rewritten paragraphs under the same section).
// The pass runs twice, the second feeding on the first's scores, so
// evidence two levels away still separates structurally identical
// ancestors (two look-alike section divs are told apart by their
// headings' text). Each pass reads only the previous pass's scores, so
// the result is order-independent and deterministic.
func (m *matcher) propagate() {
	prop := m.opts.propagation()
	for ni := range m.cands {
		for i := range m.cands[ni] {
			m.cands[ni][i].score = m.cands[ni][i].base
		}
	}
	if prop <= 0 {
		return
	}
	// Support values read c.score from the previous pass, normalized
	// back to [0,1] by the score ceiling 1+prop.
	const passes = 2
	next := make([][]float64, m.new.len())
	for ni := 1; ni < m.new.len(); ni++ {
		next[ni] = make([]float64, len(m.cands[ni]))
	}
	nPrev, nNext := sibArrays(m.new)
	oPrev, oNext := sibArrays(m.old)
	for pass := 0; pass < passes; pass++ {
		norm := 1.0
		if pass > 0 {
			norm = 1 + prop
		}
		for ni := 1; ni < m.new.len(); ni++ {
			for i := range m.cands[ni] {
				c := &m.cands[ni][i]
				oi := c.o

				var childSup float64
				nKids := m.new.children(ni)
				oKids := m.old.children(int(oi))
				if len(nKids) > 0 && len(oKids) > 0 {
					var sum float64
					for _, ck := range nKids {
						var bestUnder float64
						for _, cc := range m.cands[ck] {
							if m.old.parent[cc.o] == oi && cc.score > bestUnder {
								bestUnder = cc.score
							}
						}
						sum += bestUnder
					}
					denom := len(nKids)
					if len(oKids) > denom {
						denom = len(oKids)
					}
					childSup = sum / float64(denom) / norm
				}

				var parentSup float64
				if pn, po := m.new.parent[ni], m.old.parent[oi]; pn > 0 && po > 0 {
					parentSup = m.candScore(pn, po) / norm
				} else if pn == 0 && po == 0 {
					// Both directly under the document: roots agree.
					parentSup = 1
				}

				// Sibling support per direction: agreement when both
				// neighbors exist and are candidates of each other, or
				// when both are absent (first child pairs with first
				// child, last with last).
				var sibSup float64
				if sp, so := nPrev[ni], oPrev[oi]; sp >= 0 && so >= 0 {
					sibSup += m.candScore(sp, so) / norm
				} else if sp < 0 && so < 0 {
					sibSup += 1
				}
				if sn, so := nNext[ni], oNext[oi]; sn >= 0 && so >= 0 {
					sibSup += m.candScore(sn, so) / norm
				} else if sn < 0 && so < 0 {
					sibSup += 1
				}
				sibSup /= 2

				next[ni][i] = c.base + prop*(childSup+parentSup+sibSup)/3
			}
		}
		for ni := 1; ni < m.new.len(); ni++ {
			for i := range m.cands[ni] {
				m.cands[ni][i].score = next[ni][i]
			}
		}
	}
}

// heapItem is one candidate pair awaiting greedy settlement. key is
// the score the item was pushed with; the true score can only decrease
// (penalties are monotone: matches are never undone), so the classic
// lazy trick applies — on pop, re-evaluate, and push back if stale.
type heapItem struct {
	key float64
	ni  int32
	ci  int32 // index into cands[ni]
}

// itemLess orders the match heap: score desc, then new index asc, then
// candidate rank asc. The total order makes greedy settlement — and
// therefore the delta — deterministic.
func itemLess(a, b heapItem) bool {
	if a.key != b.key {
		return a.key > b.key
	}
	if a.ni != b.ni {
		return a.ni < b.ni
	}
	return a.ci < b.ci
}

type matchHeap []heapItem

func (h *matchHeap) push(it heapItem) {
	*h = append(*h, it)
	i := len(*h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !itemLess((*h)[i], (*h)[p]) {
			break
		}
		(*h)[i], (*h)[p] = (*h)[p], (*h)[i]
		i = p
	}
}

func (h *matchHeap) pop() heapItem {
	old := *h
	top := old[0]
	n := len(old) - 1
	old[0] = old[n]
	*h = old[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && itemLess(old[l], old[small]) {
			small = l
		}
		if r < n && itemLess(old[r], old[small]) {
			small = r
		}
		if small == i {
			break
		}
		old[i], old[small] = old[small], old[i]
		i = small
	}
	return top
}

// currentScore applies the structural penalty as of the present
// matching state: if either pair member's parent is already matched,
// but not to the other's parent, the pair crosses an established
// boundary and its score is scaled down.
func (m *matcher) currentScore(ni int32, c candidate) float64 {
	s := c.score
	pn, po := m.new.parent[ni], m.old.parent[c.o]
	crossed := false
	if po >= 0 {
		if mo := m.oldToNew[po]; mo >= 0 && mo != pn {
			crossed = true
		}
	}
	if !crossed && pn >= 0 {
		if mn := m.newToOld[pn]; mn >= 0 && mn != po {
			crossed = true
		}
	}
	if crossed {
		s *= 1 - m.opts.penalty()
	}
	return s
}

// matchGreedy settles the matching best-score-first with lazy penalty
// re-evaluation.
func (m *matcher) matchGreedy() {
	m.oldToNew = make([]int32, m.old.len())
	m.newToOld = make([]int32, m.new.len())
	for i := range m.oldToNew {
		m.oldToNew[i] = -1
	}
	for i := range m.newToOld {
		m.newToOld[i] = -1
	}
	// The documents always correspond; FromMatching pairs them
	// structurally, and the adoption pass below seeds from this root
	// pair.
	m.oldToNew[0] = 0
	m.newToOld[0] = 0

	h := make(matchHeap, 0, m.candidateCount)
	for ni := 1; ni < m.new.len(); ni++ {
		for ci, c := range m.cands[ni] {
			h.push(heapItem{key: c.score, ni: int32(ni), ci: int32(ci)})
		}
	}
	minScore := m.opts.minScore()
	minBase := m.opts.minBase()
	const eps = 1e-12
	for len(h) > 0 {
		it := h.pop()
		ni := it.ni
		if m.newToOld[ni] >= 0 {
			continue
		}
		c := m.cands[ni][it.ci]
		if m.oldToNew[c.o] >= 0 {
			continue
		}
		cur := m.currentScore(ni, c)
		if cur < minScore || c.base < minBase {
			continue
		}
		if cur < it.key-eps {
			// Stale: a penalty landed since this was pushed. Re-queue
			// at the true score; scores only decrease, so this happens
			// at most once per item.
			h.push(heapItem{key: cur, ni: ni, ci: it.ci})
			continue
		}
		m.oldToNew[c.o] = ni
		m.newToOld[ni] = c.o
	}
}

// adoptUniqueChildren is the recall pass: for every matched pair, the
// unmatched children of one kind (same type and label) are paired in
// sibling order when both sides are left with the same number of them
// — matching by elimination. This is how a text node whose content
// changed completely, sharing no tokens with its old self, still
// becomes an update instead of delete+insert; with equal leftovers on
// both sides, sibling position is the only signal there is. The new
// tree is scanned in pre-order, so pairs created here have their own
// children considered later in the same pass.
func (m *matcher) adoptUniqueChildren() {
	type slot struct {
		oIdx, nIdx []int32
	}
	for ni := 0; ni < m.new.len(); ni++ {
		oi := m.newToOld[ni]
		if oi < 0 {
			continue
		}
		slots := make(map[string]*slot)
		var keys []string
		key := func(n *dom.Node) string {
			switch n.Type {
			case dom.Element:
				return "e\x00" + n.Name
			case dom.Text:
				return "t"
			case dom.Comment:
				return "c"
			case dom.ProcInst:
				return "p\x00" + n.Name
			}
			return "?"
		}
		for _, ck := range m.old.children(int(oi)) {
			if m.oldToNew[ck] >= 0 {
				continue
			}
			k := key(m.old.nodes[ck])
			s := slots[k]
			if s == nil {
				s = &slot{}
				slots[k] = s
				keys = append(keys, k)
			}
			s.oIdx = append(s.oIdx, ck)
		}
		for _, ck := range m.new.children(ni) {
			if m.newToOld[ck] >= 0 {
				continue
			}
			k := key(m.new.nodes[ck])
			s := slots[k]
			if s == nil {
				s = &slot{}
				slots[k] = s
				keys = append(keys, k)
			}
			s.nIdx = append(s.nIdx, ck)
		}
		for _, k := range keys {
			s := slots[k]
			if len(s.oIdx) != len(s.nIdx) {
				continue
			}
			for i := range s.oIdx {
				m.oldToNew[s.oIdx[i]] = s.nIdx[i]
				m.newToOld[s.nIdx[i]] = s.oIdx[i]
			}
		}
	}
}
