package sftm

import (
	"sort"
	"strings"
	"unicode"

	"xydiff/internal/dom"
)

// Tokens are FNV-1a hashes of namespaced strings ("t:" tag, "a:"
// attribute name, "v:" attribute name=value, "c:" class token, "w:"
// text word, "s:" word bigram shingle). Hashing keeps the index
// allocation-free per lookup; a collision merely nudges one similarity
// score, which a heuristic matcher tolerates by construction.

const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

// hashSeed returns the FNV-1a hash of the namespace prefix, ready to
// be extended with hashString.
func hashSeed(ns string) uint64 {
	return hashString(fnvOffset, ns)
}

func hashString(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime
	}
	return h
}

func hashByte(h uint64, b byte) uint64 {
	h ^= uint64(b)
	h *= fnvPrime
	return h
}

var (
	seedTag   = hashSeed("t:")
	seedAttr  = hashSeed("a:")
	seedValue = hashSeed("v:")
	seedClass = hashSeed("c:")
	seedWord  = hashSeed("w:")
	seedPair  = hashSeed("s:")
	seedKid   = hashSeed("k:")
	seedChild = hashSeed("d:")
)

// tokenizeNode appends the node's tokens to dst and returns the
// extended slice, sorted and deduplicated (set semantics: repeating a
// word in a text node must not double its weight).
func tokenizeNode(n *dom.Node, dst []uint64) []uint64 {
	switch n.Type {
	case dom.Element:
		dst = append(dst, hashString(seedTag, n.Name))
		for _, a := range n.Attrs {
			dst = append(dst, hashString(seedAttr, a.Name))
			if a.Name == "class" || a.Name == "rel" {
				// Multi-valued attributes: one token per entry so a
				// single added class keeps the rest of the overlap.
				dst = appendWords(dst, seedClass, a.Value, false)
			} else {
				h := hashString(seedValue, a.Name)
				h = hashByte(h, '=')
				dst = append(dst, hashString(h, a.Value))
			}
		}
		// Direct text children lend their words, and element children
		// their tags, each under a separate namespace. Repeated id-less
		// elements (li, p, a) are otherwise token-identical, and a true
		// partner missing from the top-k candidate list at selection
		// time is unrecoverable; the child-tag outline also separates a
		// freshly inserted wrapper div (one div child) from the section
		// div it wraps (heading, paragraphs, list).
		for _, ch := range n.Children {
			switch ch.Type {
			case dom.Text:
				dst = appendWords(dst, seedKid, ch.Value, false)
			case dom.Element:
				dst = append(dst, hashString(seedChild, ch.Name))
			}
		}
	case dom.Text, dom.Comment:
		dst = appendWords(dst, seedWord, n.Value, true)
	case dom.ProcInst:
		dst = append(dst, hashString(seedTag, n.Name))
		dst = appendWords(dst, seedWord, n.Value, false)
	}
	sort.Slice(dst, func(i, j int) bool { return dst[i] < dst[j] })
	out := dst[:0]
	var prev uint64
	for i, h := range dst {
		if i == 0 || h != prev {
			out = append(out, h)
			prev = h
		}
	}
	return out
}

// appendWords splits s on spaces/punctuation and appends one token per
// word (lower-cased, so "Price" and "price" overlap across re-renders).
// With shingles, consecutive-word bigrams are added too: they preserve
// enough ordering signal to tell two short text nodes apart when their
// vocabularies overlap.
func appendWords(dst []uint64, seed uint64, s string, shingles bool) []uint64 {
	var prev uint64
	hasPrev := false
	for len(s) > 0 {
		start := strings.IndexFunc(s, isWordRune)
		if start < 0 {
			break
		}
		s = s[start:]
		end := strings.IndexFunc(s, func(r rune) bool { return !isWordRune(r) })
		if end < 0 {
			end = len(s)
		}
		word := s[:end]
		s = s[end:]
		h := seed
		for _, r := range word {
			h = hashByte(h, byte(unicode.ToLower(r)))
			h = hashByte(h, byte(unicode.ToLower(r)>>8))
		}
		dst = append(dst, h)
		if shingles {
			if hasPrev {
				p := hashByte(seedPair, 0)
				p ^= prev
				p *= fnvPrime
				p ^= h
				p *= fnvPrime
				dst = append(dst, p)
			}
			prev, hasPrev = h, true
		}
	}
	return dst
}

func isWordRune(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r)
}
