package sftm

import (
	"strings"
	"testing"

	"xydiff/internal/dom"
)

func parse(t *testing.T, src string) *dom.Node {
	t.Helper()
	doc, err := dom.Parse(strings.NewReader(src))
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return doc
}

func TestFlattenShape(t *testing.T) {
	doc := parse(t, `<r><a x="1">hi</a><b/><c><d/></c></r>`)
	ft := flatten(doc)
	if ft.len() != doc.Size() {
		t.Fatalf("len = %d, want %d", ft.len(), doc.Size())
	}
	if ft.parent[0] != -1 {
		t.Fatalf("document parent = %d", ft.parent[0])
	}
	for i := 1; i < ft.len(); i++ {
		p := ft.parent[i]
		if p < 0 || p >= int32(i) {
			t.Fatalf("node %d: parent %d not an earlier index", i, p)
		}
		if ft.nodes[i].Parent != ft.nodes[p] {
			t.Fatalf("node %d: parent pointer mismatch", i)
		}
	}
	for i := 0; i < ft.len(); i++ {
		kids := ft.children(i)
		if len(kids) != len(ft.nodes[i].Children) {
			t.Fatalf("node %d: %d kids, want %d", i, len(kids), len(ft.nodes[i].Children))
		}
		for j, k := range kids {
			if ft.nodes[k] != ft.nodes[i].Children[j] {
				t.Fatalf("node %d kid %d out of document order", i, j)
			}
		}
	}
}

func TestMatchIdenticalDocuments(t *testing.T) {
	src := `<html><body><div class="nav"><a href="/">Home</a><a href="/about">About us</a></div><p>Welcome to the example store, best prices in town.</p></body></html>`
	oldDoc := parse(t, src)
	newDoc := parse(t, src)
	pairs, st, err := MatchDetailed(oldDoc, newDoc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if st.Matched != st.OldNodes {
		t.Fatalf("matched %d of %d nodes", st.Matched, st.OldNodes)
	}
	// Identical documents must match positionally: every pair's paths
	// from the root coincide.
	for o, n := range pairs {
		if pathOf(o) != pathOf(n) {
			t.Errorf("pair %s ↔ %s not positional", pathOf(o), pathOf(n))
		}
	}
}

func pathOf(n *dom.Node) string {
	var parts []string
	for n.Parent != nil {
		idx := n.Index()
		parts = append([]string{n.Name + "#" + string(rune('0'+idx))}, parts...)
		n = n.Parent
	}
	return strings.Join(parts, "/")
}

func TestMatchSurvivesWrapperDiv(t *testing.T) {
	oldDoc := parse(t, `<html><body><h1>Quarterly results</h1><p>Revenue grew twelve percent year over year.</p></body></html>`)
	newDoc := parse(t, `<html><body><div class="wrap"><h1>Quarterly results</h1><p>Revenue grew twelve percent year over year.</p></div></body></html>`)
	pairs, _, err := MatchDetailed(oldDoc, newDoc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// The h1 and p must survive being re-parented into the wrapper.
	var h1Matched, pMatched bool
	for o, n := range pairs {
		if o.Type == dom.Element && o.Name == "h1" && n.Name == "h1" {
			h1Matched = true
		}
		if o.Type == dom.Element && o.Name == "p" && n.Name == "p" {
			pMatched = true
		}
	}
	if !h1Matched || !pMatched {
		t.Fatalf("wrapped nodes lost: h1=%v p=%v (pairs=%d)", h1Matched, pMatched, len(pairs))
	}
}

func TestMatchAttributeChurn(t *testing.T) {
	oldDoc := parse(t, `<html><body><ul><li class="item">First entry about apples</li><li class="item">Second entry about oranges</li><li class="item">Third entry about pears</li></ul></body></html>`)
	newDoc := parse(t, `<html><body><ul><li class="item odd">First entry about apples</li><li class="item even">Second entry about oranges</li><li class="item odd">Third entry about pears</li></ul></body></html>`)
	pairs, st, err := MatchDetailed(oldDoc, newDoc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if st.Matched != st.OldNodes {
		t.Fatalf("matched %d of %d", st.Matched, st.OldNodes)
	}
	// Each li must match the li with the same text, not a neighbor.
	for o, n := range pairs {
		if o.Type == dom.Element && o.Name == "li" {
			if o.TextContent() != n.TextContent() {
				t.Errorf("li %q matched to %q", o.TextContent(), n.TextContent())
			}
		}
	}
}

func TestMatchReorderWithoutIDs(t *testing.T) {
	oldDoc := parse(t, `<html><body><div><h2>Alpha section heading</h2><p>The alpha paragraph speaks of mountains.</p></div><div><h2>Beta section heading</h2><p>The beta paragraph speaks of rivers.</p></div></body></html>`)
	newDoc := parse(t, `<html><body><div><h2>Beta section heading</h2><p>The beta paragraph speaks of rivers.</p></div><div><h2>Alpha section heading</h2><p>The alpha paragraph speaks of mountains.</p></div></body></html>`)
	pairs, _, err := MatchDetailed(oldDoc, newDoc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for o, n := range pairs {
		if o.Type == dom.Text && !strings.Contains(o.Value, " ") {
			continue
		}
		if o.Type == dom.Text && o.Value != n.Value {
			t.Errorf("text %q matched to %q", o.Value, n.Value)
		}
	}
}

func TestMatchTextUpdateAdopted(t *testing.T) {
	oldDoc := parse(t, `<html><body><p>Completely original wording here</p></body></html>`)
	newDoc := parse(t, `<html><body><p>Entirely different phrasing now</p></body></html>`)
	pairs, _, err := MatchDetailed(oldDoc, newDoc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// The text shares no tokens, but as the unique unmatched text child
	// of a matched p it must be adopted (so the delta is an update).
	var textMatched bool
	for o := range pairs {
		if o.Type == dom.Text {
			textMatched = true
		}
	}
	if !textMatched {
		t.Fatal("fully-rewritten text node not adopted")
	}
}

func TestMatchRejectsNonDocuments(t *testing.T) {
	doc := parse(t, `<r/>`)
	if _, err := Match(doc.Children[0], doc, Options{}); err == nil {
		t.Fatal("want error for element argument")
	}
	if _, err := Match(nil, doc, Options{}); err == nil {
		t.Fatal("want error for nil argument")
	}
}

func TestMatchDeterministic(t *testing.T) {
	oldDoc := parse(t, `<html><body><ul><li>one red</li><li>two blue</li><li>three green</li><li>four teal</li></ul><p>tail text</p></body></html>`)
	newDoc := parse(t, `<html><body><p>tail text</p><ul><li>three green</li><li>one red</li><li>five pink</li><li>two blue</li></ul></body></html>`)
	ref, _, err := MatchDetailed(oldDoc, newDoc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		got, _, err := MatchDetailed(oldDoc, newDoc, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(ref) {
			t.Fatalf("run %d: %d pairs, want %d", i, len(got), len(ref))
		}
		for o, n := range ref {
			if got[o] != n {
				t.Fatalf("run %d: pair diverged", i)
			}
		}
	}
}

func TestStopTokenPruning(t *testing.T) {
	// 200 identical items: the shared tokens exceed MaxPostings and
	// must be pruned, not blow up candidate scoring.
	var b strings.Builder
	b.WriteString("<html><body>")
	for i := 0; i < 200; i++ {
		b.WriteString(`<div class="card">same text</div>`)
	}
	b.WriteString("</body></html>")
	oldDoc := parse(t, b.String())
	newDoc := parse(t, b.String())
	_, st, err := MatchDetailed(oldDoc, newDoc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if st.StopTokens == 0 {
		t.Fatal("expected stop tokens to be pruned")
	}
	if st.Candidates > st.NewNodes*(Options{}).topK() {
		t.Fatalf("candidate explosion: %d", st.Candidates)
	}
}
