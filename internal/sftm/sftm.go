// Package sftm implements SFTM — Similarity-based Flexible Tree
// Matching (Brisset & Pawlak, PAPERS.md) — an ID-free matcher for
// real-web documents. Where BULD (package diff) identifies subtrees by
// exact signatures and DTD-declared ID attributes, SFTM scores node
// pairs by the tokens they share (labels, attributes, text shingles),
// weighted by inverse document frequency, and settles the matching
// greedily with a structural penalty. Crawled HTML has no XIDs, no DTD
// and rarely stable id attributes; token similarity still recognizes a
// product card whose price changed or a heading wrapped in a fresh div.
//
// The pipeline follows the paper:
//
//  1. tokenize every node (tag, attribute names and values, class
//     tokens, text word uni/bigrams);
//  2. build an inverted index over the old document's tokens and prune
//     over-frequent tokens (they carry no signal and would make
//     scoring quadratic);
//  3. for each new node, accumulate IDF-weighted overlap scores over
//     the index and keep the top-k label-compatible candidates;
//  4. propagate similarity through the structure: a candidate pair is
//     boosted when the nodes' parents and children look alike too;
//  5. match greedily, best score first, applying a penalty when a
//     pair's parents are already matched to different nodes (lazy
//     re-scoring keeps the greedy order correct); a final top-down
//     pass adopts unique unmatched children of matched pairs.
//
// The output is the matching representation diff.FromMatching consumes,
// so delta construction, Apply and storage are untouched. The package
// is part of the wasm-clean diff core: it imports nothing but the
// standard library and internal/dom (enforced by the depbound
// analyzer).
//
// Everything is deterministic: no map iteration order reaches the
// result, so the same inputs produce the same matching — and therefore
// the same delta — on every run and worker count.
package sftm

import (
	"fmt"
	"math"

	"xydiff/internal/dom"
)

// Options tune the matcher. The zero value selects the defaults the
// bench7 experiment was calibrated with.
type Options struct {
	// TopK bounds the candidates kept per new node (default 16).
	TopK int

	// MaxPostings prunes tokens whose old-document posting list is
	// longer (stop tokens: shared by too many nodes to discriminate,
	// and the paper's guard against quadratic scoring). Default 64.
	MaxPostings int

	// MinScore is the acceptance floor: candidate pairs whose final
	// (penalty-adjusted) score falls below it stay unmatched and
	// surface as delete+insert in the delta. Default 0.30.
	MinScore float64

	// MinBase is the content-evidence floor for the greedy pass: pairs
	// whose raw token similarity (before propagation) falls below it
	// are never matched greedily, no matter how much structural support
	// they have — a fully rewritten node should be adopted by sibling
	// position under its matched parent, not claimed by a look-alike
	// across the page. Default 0.30.
	MinBase float64

	// Propagation scales the structural bonus a candidate pair earns
	// from similar parents, children and adjacent siblings (default
	// 0.5).
	Propagation float64

	// Penalty is the multiplicative score reduction applied to a pair
	// whose parents are already matched to different nodes (default
	// 0.60). Higher values favor structure over content.
	Penalty float64
}

func (o Options) topK() int {
	if o.TopK <= 0 {
		return 16
	}
	return o.TopK
}

func (o Options) maxPostings() int {
	if o.MaxPostings <= 0 {
		return 64
	}
	return o.MaxPostings
}

func (o Options) minScore() float64 {
	if o.MinScore <= 0 {
		return 0.30
	}
	return o.MinScore
}

func (o Options) minBase() float64 {
	if o.MinBase <= 0 {
		return 0.30
	}
	return o.MinBase
}

func (o Options) propagation() float64 {
	if o.Propagation <= 0 {
		return 0.5
	}
	return o.Propagation
}

func (o Options) penalty() float64 {
	if o.Penalty <= 0 {
		return 0.60
	}
	return o.Penalty
}

// Stats describes one matching run.
type Stats struct {
	// OldNodes and NewNodes are node counts excluding the documents.
	OldNodes, NewNodes int
	// Matched is how many old nodes found a counterpart.
	Matched int
	// Candidates is the total candidate pairs scored.
	Candidates int
	// StopTokens is how many distinct tokens the frequency cutoff
	// pruned from the index.
	StopTokens int
}

// Match computes an old→new node matching between two documents. Both
// arguments must be Document nodes; the documents themselves are never
// in the returned map (diff.FromMatching pairs them structurally).
func Match(oldDoc, newDoc *dom.Node, opts Options) (map[*dom.Node]*dom.Node, error) {
	pairs, _, err := MatchDetailed(oldDoc, newDoc, opts)
	return pairs, err
}

// MatchDetailed is Match plus run statistics.
func MatchDetailed(oldDoc, newDoc *dom.Node, opts Options) (map[*dom.Node]*dom.Node, Stats, error) {
	var st Stats
	if oldDoc == nil || newDoc == nil {
		return nil, st, fmt.Errorf("sftm: nil document")
	}
	if oldDoc.Type != dom.Document || newDoc.Type != dom.Document {
		return nil, st, fmt.Errorf("sftm: arguments must be Document nodes (got %v, %v)", oldDoc.Type, newDoc.Type)
	}
	oldT := flatten(oldDoc)
	newT := flatten(newDoc)
	st.OldNodes, st.NewNodes = oldT.len()-1, newT.len()-1

	m := &matcher{old: oldT, new: newT, opts: opts}
	m.tokenize()
	m.buildIndex()
	st.StopTokens = m.stopTokens
	m.selectCandidates()
	st.Candidates = m.candidateCount
	m.propagate()
	m.matchGreedy()
	m.adoptUniqueChildren()

	pairs := make(map[*dom.Node]*dom.Node, newT.len())
	for oi, ni := range m.oldToNew {
		if oi == 0 || ni < 0 {
			continue // documents are FromMatching's job
		}
		pairs[oldT.nodes[oi]] = newT.nodes[ni]
		st.Matched++
	}
	return pairs, st, nil
}

// flatTree is the pre-order array form of one document. In pre-order
// every descendant has a higher index than its ancestor, so a reverse
// scan is a valid bottom-up order — the propagation passes rely on
// both directions.
type flatTree struct {
	nodes    []*dom.Node
	parent   []int32 // pre-order parent index, -1 for the document
	kidStart []int32 // offset of node i's children block in kids
	kidEnd   []int32
	kids     []int32
}

func (t *flatTree) len() int { return len(t.nodes) }

func (t *flatTree) children(i int) []int32 {
	return t.kids[t.kidStart[i]:t.kidEnd[i]]
}

// flatten builds the pre-order arrays without recursion (crawled pages
// can nest deeply; an explicit stack keeps the goroutine stack flat).
// Children blocks are laid out by a counting sort over parent indices,
// so each node's children are contiguous and in document order.
func flatten(doc *dom.Node) *flatTree {
	n := doc.Size()
	t := &flatTree{
		nodes:    make([]*dom.Node, 0, n),
		parent:   make([]int32, 0, n),
		kidStart: make([]int32, n),
		kidEnd:   make([]int32, n),
	}
	type frame struct {
		node   *dom.Node
		parent int32
	}
	stack := []frame{{doc, -1}}
	for len(stack) > 0 {
		f := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		idx := int32(len(t.nodes))
		t.nodes = append(t.nodes, f.node)
		t.parent = append(t.parent, f.parent)
		// Reverse push so children pop — and number — in document order.
		for i := len(f.node.Children) - 1; i >= 0; i-- {
			stack = append(stack, frame{f.node.Children[i], idx})
		}
	}
	counts := make([]int32, len(t.nodes))
	for _, p := range t.parent {
		if p >= 0 {
			counts[p]++
		}
	}
	var off int32
	for i := range t.nodes {
		t.kidStart[i] = off
		t.kidEnd[i] = off // filled below
		off += counts[i]
	}
	if off > 0 {
		t.kids = make([]int32, off)
	}
	for i := 1; i < len(t.nodes); i++ {
		p := t.parent[i]
		t.kids[t.kidEnd[p]] = int32(i)
		t.kidEnd[p]++
	}
	return t
}

// compatible reports whether an old/new pair could survive
// diff.FromMatching's structural filter: same type and, for elements
// and processing instructions, same label.
func compatible(o, n *dom.Node) bool {
	if o.Type != n.Type {
		return false
	}
	if o.Type == dom.Element || o.Type == dom.ProcInst {
		return o.Name == n.Name
	}
	return true
}

// logIDF is the token weight for a document-frequency df out of n old
// nodes: rarer tokens weigh more.
func logIDF(n, df int) float64 {
	if df < 1 {
		df = 1
	}
	return 1 + math.Log(float64(n)/float64(df))
}
