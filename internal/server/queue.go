package server

import (
	"errors"
	"sync"
)

// ErrQueueFull is returned by submit when the diff queue is at
// capacity; handlers translate it into 503 + Retry-After so load is
// shed at the edge instead of piling up.
var ErrQueueFull = errors.New("server: diff queue full")

// ErrClosed is returned by submit after close.
var ErrClosed = errors.New("server: worker pool closed")

// pool is a bounded worker pool: a fixed number of goroutines draining
// a fixed-capacity job channel. Submission never blocks — a full queue
// is backpressure, reported to the caller.
type pool struct {
	jobs chan func()
	wg   sync.WaitGroup

	mu     sync.RWMutex
	closed bool
}

func newPool(workers, depth int) *pool {
	p := &pool{jobs: make(chan func(), depth)}
	for i := 0; i < workers; i++ {
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			for job := range p.jobs {
				job()
			}
		}()
	}
	return p
}

// submit enqueues job, failing fast with ErrQueueFull when the queue is
// at capacity.
func (p *pool) submit(job func()) error {
	p.mu.RLock()
	defer p.mu.RUnlock()
	if p.closed {
		return ErrClosed
	}
	select {
	case p.jobs <- job:
		return nil
	default:
		return ErrQueueFull
	}
}

// depth reports how many jobs are queued but not yet picked up.
func (p *pool) depth() int { return len(p.jobs) }

// close stops accepting jobs, drains the queue, and waits for in-flight
// jobs to finish.
func (p *pool) close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	close(p.jobs)
	p.mu.Unlock()
	p.wg.Wait()
}
