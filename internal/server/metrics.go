package server

import (
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"time"

	"xydiff/internal/diff"
)

// Metrics is xydiffd's metrics registry, exposed at /metrics in
// Prometheus text exposition format. It records HTTP request counts and
// latency (with quantiles estimated from a fixed-bucket histogram),
// diff counts with per-phase cumulative timings, queue pressure, and
// alert throughput. Change statistics proper (per-label rates, delta
// size ratios) come from the stats.Collector the server also feeds.
type Metrics struct {
	mu            sync.Mutex
	requests      map[reqKey]int64
	latency       *histogram
	diffs         map[diff.Matcher]int64
	phases        [5]time.Duration
	rejected      int64
	alerts        int64
	panics        int64
	streamDropped int64

	// gauges polled at scrape time
	queueDepth    func() int
	queueCapacity int
	workers       int
}

type reqKey struct {
	route  string
	method string
	code   int
}

func newMetrics() *Metrics {
	return &Metrics{
		requests: make(map[reqKey]int64),
		latency:  newHistogram(),
		diffs:    make(map[diff.Matcher]int64),
	}
}

// observeRequest records one served request.
func (m *Metrics) observeRequest(route, method string, code int, dur time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.requests[reqKey{route, method, code}]++
	m.latency.observe(dur.Seconds())
}

// observeDiff records one completed versioning diff's phase timings,
// labeled by the matcher that computed it.
func (m *Metrics) observeDiff(matcher diff.Matcher, phases [5]time.Duration) {
	if matcher == "" {
		matcher = diff.MatcherBULD
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.diffs[matcher]++
	for i, p := range phases {
		m.phases[i] += p
	}
}

func (m *Metrics) addRejected() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.rejected++
}

func (m *Metrics) addPanic() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.panics++
}

func (m *Metrics) addAlerts(n int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.alerts += int64(n)
}

func (m *Metrics) addStreamDropped(n int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.streamDropped += int64(n)
}

// StreamDropped returns how many alerts slow NDJSON consumers lost.
func (m *Metrics) StreamDropped() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.streamDropped
}

// DiffCount returns how many versioning diffs have been recorded,
// summed over matchers.
func (m *Metrics) DiffCount() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	var total int64
	for _, n := range m.diffs {
		total += n
	}
	return total
}

// DiffCountByMatcher returns how many diffs the given matcher computed.
func (m *Metrics) DiffCountByMatcher(matcher diff.Matcher) int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.diffs[matcher]
}

var phaseNames = [5]string{"ids", "annotate", "buld", "propagate", "construct"}

// WritePrometheus renders the registry in Prometheus text format.
func (m *Metrics) WritePrometheus(w io.Writer) {
	m.mu.Lock()
	defer m.mu.Unlock()

	fmt.Fprintln(w, "# HELP xydiffd_http_requests_total Served HTTP requests.")
	fmt.Fprintln(w, "# TYPE xydiffd_http_requests_total counter")
	keys := make([]reqKey, 0, len(m.requests))
	for k := range m.requests {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.route != b.route {
			return a.route < b.route
		}
		if a.method != b.method {
			return a.method < b.method
		}
		return a.code < b.code
	})
	for _, k := range keys {
		fmt.Fprintf(w, "xydiffd_http_requests_total{route=%q,method=%q,code=\"%d\"} %d\n",
			k.route, k.method, k.code, m.requests[k])
	}

	fmt.Fprintln(w, "# HELP xydiffd_http_request_seconds HTTP request latency.")
	fmt.Fprintln(w, "# TYPE xydiffd_http_request_seconds histogram")
	m.latency.writePrometheus(w, "xydiffd_http_request_seconds")
	for _, q := range []float64{0.5, 0.9, 0.99} {
		fmt.Fprintf(w, "xydiffd_http_request_seconds{quantile=\"%g\"} %g\n", q, m.latency.quantile(q))
	}

	fmt.Fprintln(w, "# HELP xydiffd_diffs_total Versioning diffs computed, by matcher.")
	fmt.Fprintln(w, "# TYPE xydiffd_diffs_total counter")
	// Both known matchers are always emitted (zero included), so a
	// dashboard sees the series exist before the first sftm PUT.
	for _, matcher := range diff.Matchers() {
		fmt.Fprintf(w, "xydiffd_diffs_total{matcher=%q} %d\n", matcher, m.diffs[matcher])
	}
	fmt.Fprintln(w, "# HELP xydiffd_diff_phase_seconds_total Cumulative BULD phase time.")
	fmt.Fprintln(w, "# TYPE xydiffd_diff_phase_seconds_total counter")
	for i, name := range phaseNames {
		fmt.Fprintf(w, "xydiffd_diff_phase_seconds_total{phase=%q} %g\n", name, m.phases[i].Seconds())
	}

	fmt.Fprintln(w, "# HELP xydiffd_queue_depth Diff jobs waiting in the queue.")
	fmt.Fprintln(w, "# TYPE xydiffd_queue_depth gauge")
	depth := 0
	if m.queueDepth != nil {
		depth = m.queueDepth()
	}
	fmt.Fprintf(w, "xydiffd_queue_depth %d\n", depth)
	fmt.Fprintf(w, "xydiffd_queue_capacity %d\n", m.queueCapacity)
	fmt.Fprintf(w, "xydiffd_workers %d\n", m.workers)
	fmt.Fprintln(w, "# HELP xydiffd_queue_rejected_total Requests shed because the queue was full.")
	fmt.Fprintln(w, "# TYPE xydiffd_queue_rejected_total counter")
	fmt.Fprintf(w, "xydiffd_queue_rejected_total %d\n", m.rejected)

	fmt.Fprintln(w, "# HELP xydiffd_alerts_total Alerts raised by the subscription system.")
	fmt.Fprintln(w, "# TYPE xydiffd_alerts_total counter")
	fmt.Fprintf(w, "xydiffd_alerts_total %d\n", m.alerts)

	fmt.Fprintln(w, "# HELP xydiffd_alert_stream_dropped_total Alerts lost by slow NDJSON stream consumers.")
	fmt.Fprintln(w, "# TYPE xydiffd_alert_stream_dropped_total counter")
	fmt.Fprintf(w, "xydiffd_alert_stream_dropped_total %d\n", m.streamDropped)

	fmt.Fprintln(w, "# HELP xydiffd_panics_total Handler panics caught by the recovery middleware.")
	fmt.Fprintln(w, "# TYPE xydiffd_panics_total counter")
	fmt.Fprintf(w, "xydiffd_panics_total %d\n", m.panics)
}

// histogram is a fixed-bucket latency histogram (seconds). Quantiles
// are estimated by linear interpolation inside the winning bucket —
// coarse, but dependency-free and monotone.
type histogram struct {
	bounds []float64 // upper bounds, ascending
	counts []int64   // len(bounds)+1; last is +Inf
	sum    float64
	total  int64
}

func newHistogram() *histogram {
	// 100µs .. ~100s, roughly 3 buckets per decade.
	bounds := []float64{
		0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
		0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 25, 50, 100,
	}
	return &histogram{bounds: bounds, counts: make([]int64, len(bounds)+1)}
}

func (h *histogram) observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i]++
	h.sum += v
	h.total++
}

func (h *histogram) quantile(q float64) float64 {
	if h.total == 0 {
		return 0
	}
	rank := q * float64(h.total)
	var cum int64
	for i, c := range h.counts {
		prev := cum
		cum += c
		if float64(cum) >= rank {
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			hi := lo * 2
			if i < len(h.bounds) {
				hi = h.bounds[i]
			}
			if c == 0 {
				return hi
			}
			frac := (rank - float64(prev)) / float64(c)
			return lo + frac*(hi-lo)
		}
	}
	return math.Inf(1)
}

func (h *histogram) writePrometheus(w io.Writer, name string) {
	var cum int64
	for i, bound := range h.bounds {
		cum += h.counts[i]
		fmt.Fprintf(w, "%s_bucket{le=\"%g\"} %d\n", name, bound, cum)
	}
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, h.total)
	fmt.Fprintf(w, "%s_sum %g\n", name, h.sum)
	fmt.Fprintf(w, "%s_count %d\n", name, h.total)
}
