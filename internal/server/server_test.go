package server

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"xydiff/internal/delta"
	"xydiff/internal/diff"
	"xydiff/internal/dom"
	"xydiff/internal/store"
	"xydiff/internal/xid"
)

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.Logger == nil {
		cfg.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	s := New(store.New(diff.Options{}), cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

func doReq(t *testing.T, method, url, body string) (int, http.Header, string) {
	t.Helper()
	var rdr io.Reader
	if body != "" {
		rdr = strings.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rdr)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header, string(b)
}

const (
	catalogV1 = `<Catalog><Category><Product><Name>tx123</Name><Price>$499</Price></Product></Category></Catalog>`
	catalogV2 = `<Catalog><Category><Product><Name>tx123</Name><Price>$499</Price></Product><Product><Name>zy456</Name><Price>$799</Price></Product></Category></Catalog>`
)

// TestEndToEnd exercises the full change-control loop over HTTP: two
// versions in, delta out (and it applies), version 1 reconstructs byte
// for byte, a subscription matches, and /metrics shows the traffic.
func TestEndToEnd(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	// Subscribe before any version arrives.
	sub := `{"id":"new-products","doc":"catalog","path":"Category/Product","kinds":["insert"]}`
	if code, _, body := doReq(t, "POST", ts.URL+"/subscriptions", sub); code != http.StatusCreated {
		t.Fatalf("POST subscription: %d %s", code, body)
	}

	// PUT two versions.
	code, _, body := doReq(t, "PUT", ts.URL+"/docs/catalog", catalogV1)
	if code != http.StatusCreated {
		t.Fatalf("PUT v1: %d %s", code, body)
	}
	code, _, body = doReq(t, "PUT", ts.URL+"/docs/catalog", catalogV2)
	if code != http.StatusOK {
		t.Fatalf("PUT v2: %d %s", code, body)
	}
	var putResp struct {
		Version    int `json:"version"`
		DeltaOps   int `json:"deltaOps"`
		DeltaBytes int `json:"deltaBytes"`
	}
	if err := json.Unmarshal([]byte(body), &putResp); err != nil {
		t.Fatal(err)
	}
	if putResp.Version != 2 || putResp.DeltaOps == 0 || putResp.DeltaBytes == 0 {
		t.Fatalf("PUT v2 response = %+v", putResp)
	}

	// GET version 1: byte-level reconstruction of the canonical form.
	code, hdr, v1Body := doReq(t, "GET", ts.URL+"/docs/catalog/versions/1", "")
	if code != http.StatusOK {
		t.Fatalf("GET v1: %d %s", code, v1Body)
	}
	if hdr.Get("X-Xydiff-Version") != "1" {
		t.Errorf("version header = %q", hdr.Get("X-Xydiff-Version"))
	}
	if v1Body != catalogV1 {
		t.Errorf("v1 reconstruction:\n got %s\nwant %s", v1Body, catalogV1)
	}

	// GET the delta and verify it applies: v1 + delta == latest.
	code, _, deltaBody := doReq(t, "GET", ts.URL+"/docs/catalog/deltas/1", "")
	if code != http.StatusOK {
		t.Fatalf("GET delta: %d %s", code, deltaBody)
	}
	d, err := delta.ParseString(deltaBody)
	if err != nil {
		t.Fatalf("parse served delta: %v", err)
	}
	v1Doc, err := dom.ParseString(v1Body)
	if err != nil {
		t.Fatal(err)
	}
	xid.Assign(v1Doc) // canonical post-order XIDs, as the store assigns
	if err := delta.Apply(v1Doc, d); err != nil {
		t.Fatalf("apply served delta: %v", err)
	}
	_, _, latestBody := doReq(t, "GET", ts.URL+"/docs/catalog", "")
	if got := v1Doc.String(); got != latestBody {
		t.Errorf("delta application:\n got %s\nwant %s", got, latestBody)
	}
	if latestBody != catalogV2 {
		t.Errorf("latest = %s", latestBody)
	}

	// The subscription matched the inserted product.
	code, _, alertsBody := doReq(t, "GET", ts.URL+"/docs/catalog/alerts", "")
	if code != http.StatusOK {
		t.Fatalf("GET alerts: %d %s", code, alertsBody)
	}
	var alerts []alertJSON
	if err := json.Unmarshal([]byte(alertsBody), &alerts); err != nil {
		t.Fatal(err)
	}
	if len(alerts) != 1 || alerts[0].Sub != "new-products" || alerts[0].Kind != "insert" || alerts[0].Version != 2 {
		t.Fatalf("alerts = %+v", alerts)
	}

	// /metrics shows nonzero request and diff counters.
	code, _, metricsBody := doReq(t, "GET", ts.URL+"/metrics", "")
	if code != http.StatusOK {
		t.Fatalf("GET metrics: %d", code)
	}
	for _, re := range []string{
		`xydiffd_http_requests_total\{route="doc_put",method="PUT",code="200"\} [1-9]`,
		`xydiffd_diffs_total\{matcher="buld"\} [1-9]`,
		`xydiffd_diffs_total\{matcher="sftm"\} 0`,
		`xydiffd_diff_phase_seconds_total\{phase="buld"\} `,
		`xydiffd_change_ops_total\{kind="insert"\} [1-9]`,
		`xydiffd_alerts_total [1-9]`,
		`xydiffd_store_documents 1`,
		`xydiffd_http_request_seconds_count [1-9]`,
	} {
		if !regexp.MustCompile(re).MatchString(metricsBody) {
			t.Errorf("metrics missing %s\n%s", re, metricsBody)
		}
	}
}

func TestAggregatedDelta(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	versions := []string{
		`<r><a>1</a></r>`,
		`<r><a>2</a></r>`,
		`<r><a>2</a><b>x</b></r>`,
	}
	for _, v := range versions {
		if code, _, body := doReq(t, "PUT", ts.URL+"/docs/d", v); code >= 300 {
			t.Fatalf("PUT: %d %s", code, body)
		}
	}
	code, _, body := doReq(t, "GET", ts.URL+"/docs/d/deltas/1..3", "")
	if code != http.StatusOK {
		t.Fatalf("GET aggregate: %d %s", code, body)
	}
	d, err := delta.ParseString(body)
	if err != nil {
		t.Fatal(err)
	}
	_, _, v1 := doReq(t, "GET", ts.URL+"/docs/d/versions/1", "")
	doc, err := dom.ParseString(v1)
	if err != nil {
		t.Fatal(err)
	}
	xid.Assign(doc)
	if err := delta.Apply(doc, d); err != nil {
		t.Fatalf("apply aggregate: %v", err)
	}
	if got := doc.String(); got != versions[2] {
		t.Errorf("aggregate application = %s, want %s", got, versions[2])
	}
}

func TestNotFoundAndBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	doReq(t, "PUT", ts.URL+"/docs/d", `<r/>`)
	cases := []struct {
		method, path string
		body         string
		want         int
	}{
		{"GET", "/docs/ghost", "", http.StatusNotFound},
		{"GET", "/docs/d/versions/9", "", http.StatusNotFound},
		{"GET", "/docs/d/versions/x", "", http.StatusBadRequest},
		{"GET", "/docs/d/deltas/1", "", http.StatusNotFound}, // only one version
		{"GET", "/docs/d/deltas/x..y", "", http.StatusBadRequest},
		{"GET", "/docs/d/deltas/bogus", "", http.StatusBadRequest},
		{"PUT", "/docs/d", "not xml", http.StatusBadRequest},
		{"POST", "/subscriptions", `{"path":"x"}`, http.StatusBadRequest}, // no id
		{"POST", "/subscriptions", `{"id":"q","query":"[["}`, http.StatusBadRequest},
		{"POST", "/subscriptions", `{"id":"k","kinds":["bogus"]}`, http.StatusBadRequest},
		{"DELETE", "/subscriptions/ghost", "", http.StatusNotFound},
		{"GET", "/docs/d/alerts?follow=bogus", "", http.StatusBadRequest},
	}
	for _, c := range cases {
		if code, _, body := doReq(t, c.method, ts.URL+c.path, c.body); code != c.want {
			t.Errorf("%s %s = %d (%s), want %d", c.method, c.path, code, strings.TrimSpace(body), c.want)
		}
	}
}

func TestSubscriptionLifecycle(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	sub := `{"id":"expensive","query":"//Product[Price>500]","kinds":["insert","update"]}`
	if code, _, body := doReq(t, "POST", ts.URL+"/subscriptions", sub); code != http.StatusCreated {
		t.Fatalf("POST: %d %s", code, body)
	}
	_, _, listBody := doReq(t, "GET", ts.URL+"/subscriptions", "")
	var subs []subscriptionJSON
	if err := json.Unmarshal([]byte(listBody), &subs); err != nil {
		t.Fatal(err)
	}
	if len(subs) != 1 || subs[0].Query != "//Product[Price>500]" || len(subs[0].Kinds) != 2 {
		t.Fatalf("subscriptions = %+v", subs)
	}
	if code, _, _ := doReq(t, "DELETE", ts.URL+"/subscriptions/expensive", ""); code != http.StatusOK {
		t.Fatalf("DELETE: %d", code)
	}
	_, _, listBody = doReq(t, "GET", ts.URL+"/subscriptions", "")
	if strings.TrimSpace(listBody) != "[]" {
		t.Errorf("after delete: %s", listBody)
	}
}

// TestBackpressure deterministically fills the one-worker, depth-one
// pool and verifies the next request is shed with 503 + Retry-After.
func TestBackpressure(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 1})
	release := make(chan struct{})
	var releaseOnce sync.Once
	unblock := func() { releaseOnce.Do(func() { close(release) }) }
	defer unblock() // keep Close from deadlocking if the test bails early
	// Occupy the worker (wait until it has dequeued the job), then fill
	// the single queue slot.
	started := make(chan struct{})
	if err := s.pool.submit(func() { close(started); <-release }); err != nil {
		t.Fatal(err)
	}
	<-started
	if err := s.pool.submit(func() {}); err != nil {
		t.Fatal(err)
	}
	code, hdr, body := doReq(t, "PUT", ts.URL+"/docs/d", `<r/>`)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("PUT under full queue = %d (%s), want 503", code, body)
	}
	if hdr.Get("Retry-After") == "" {
		t.Error("missing Retry-After")
	}
	unblock()
	// The pool drains and service resumes.
	deadline := time.Now().Add(5 * time.Second)
	for {
		code, _, _ = doReq(t, "PUT", ts.URL+"/docs/d", `<r/>`)
		if code == http.StatusCreated || time.Now().After(deadline) {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if code != http.StatusCreated {
		t.Fatalf("PUT after drain = %d", code)
	}
	if !strings.Contains(metricsText(t, ts), "xydiffd_queue_rejected_total 1") {
		t.Error("rejected counter not incremented")
	}
}

func metricsText(t *testing.T, ts *httptest.Server) string {
	t.Helper()
	_, _, body := doReq(t, "GET", ts.URL+"/metrics", "")
	return body
}

// TestClosedPool verifies writes are refused (not panicking) after
// Close, as during graceful shutdown.
func TestClosedPool(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	s.Close()
	code, _, _ := doReq(t, "PUT", ts.URL+"/docs/d", `<r/>`)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("PUT after Close = %d, want 503", code)
	}
	// Reads still work against the store.
	if code, _, _ := doReq(t, "GET", ts.URL+"/healthz", ""); code != http.StatusOK {
		t.Fatalf("healthz after Close = %d", code)
	}
}

// TestAlertStreaming registers a follow stream, installs a new version
// that matches a subscription, and expects the alert as NDJSON without
// polling.
func TestAlertStreaming(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	doReq(t, "POST", ts.URL+"/subscriptions", `{"id":"live","kinds":["insert"]}`)
	doReq(t, "PUT", ts.URL+"/docs/feed", `<r><item>a</item></r>`)

	resp, err := http.Get(ts.URL + "/docs/feed/alerts?follow=30s")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("follow status = %d", resp.StatusCode)
	}
	// Headers are flushed after the notifier is attached, so the next
	// Put's alerts are guaranteed to reach the stream.
	lines := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(resp.Body)
		if sc.Scan() {
			lines <- sc.Text()
		}
		close(lines)
	}()
	doReq(t, "PUT", ts.URL+"/docs/feed", `<r><item>a</item><item>b</item></r>`)
	select {
	case line := <-lines:
		var a alertJSON
		if err := json.Unmarshal([]byte(line), &a); err != nil {
			t.Fatalf("bad stream line %q: %v", line, err)
		}
		if a.Sub != "live" || a.Doc != "feed" || a.Kind != "insert" {
			t.Errorf("streamed alert = %+v", a)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("no alert streamed")
	}
}

func TestHealthzAndDocsList(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for i := 0; i < 3; i++ {
		doReq(t, "PUT", ts.URL+fmt.Sprintf("/docs/doc-%d", i), `<r/>`)
	}
	code, _, body := doReq(t, "GET", ts.URL+"/healthz", "")
	if code != http.StatusOK || !strings.Contains(body, `"documents": 3`) {
		t.Fatalf("healthz: %d %s", code, body)
	}
	_, _, listBody := doReq(t, "GET", ts.URL+"/docs", "")
	var docs []struct {
		ID       string `json:"id"`
		Versions int    `json:"versions"`
	}
	if err := json.Unmarshal([]byte(listBody), &docs); err != nil {
		t.Fatal(err)
	}
	if len(docs) != 3 || docs[0].ID != "doc-0" || docs[0].Versions != 1 {
		t.Fatalf("docs = %+v", docs)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := newHistogram()
	if got := h.quantile(0.5); got != 0 {
		t.Errorf("empty quantile = %g", got)
	}
	for i := 0; i < 100; i++ {
		h.observe(0.002) // lands in the (0.001, 0.0025] bucket
	}
	q := h.quantile(0.5)
	if q < 0.001 || q > 0.0025 {
		t.Errorf("p50 = %g, want within (0.001, 0.0025]", q)
	}
	if h.quantile(0.99) < q {
		t.Error("quantiles not monotone")
	}
}

func TestPutParseLimits(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxParseDepth: 5, MaxParseTokens: 50, MaxBodyBytes: 4096})

	deep := strings.Repeat("<a>", 10) + "x" + strings.Repeat("</a>", 10)
	code, _, body := doReq(t, "PUT", ts.URL+"/docs/deep", deep)
	if code != http.StatusUnprocessableEntity {
		t.Fatalf("deep document: got %d %s, want 422", code, body)
	}

	wide := "<r>" + strings.Repeat("<p>x</p>", 40) + "</r>"
	code, _, body = doReq(t, "PUT", ts.URL+"/docs/wide", wide)
	if code != http.StatusUnprocessableEntity {
		t.Fatalf("token-heavy document: got %d %s, want 422", code, body)
	}

	big := "<r>" + strings.Repeat("a", 8192) + "</r>"
	code, _, body = doReq(t, "PUT", ts.URL+"/docs/big", big)
	if code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized document: got %d %s, want 413", code, body)
	}

	ok := "<r><p>fine</p></r>"
	code, _, body = doReq(t, "PUT", ts.URL+"/docs/ok", ok)
	if code != http.StatusCreated {
		t.Fatalf("small document: got %d %s, want 201", code, body)
	}
}
