package server

import (
	"context"
	"net/http"
	"runtime/debug"
	"time"
)

// statusWriter captures the response status and size for logs/metrics.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(b)
	w.bytes += int64(n)
	return n, err
}

// Flush forwards to the underlying writer so streaming handlers work
// through the wrapper.
func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		if w.status == 0 {
			w.status = http.StatusOK
		}
		f.Flush()
	}
}

// wrap applies the standard middleware stack: panic recovery, the
// request deadline, and metrics + structured logging on the way out.
func (s *Server) wrap(route string, h http.HandlerFunc) http.Handler {
	return s.instrument(route, true, h)
}

// wrapStreaming is wrap without the request deadline, for endpoints
// that hold the connection open (alert streaming).
func (s *Server) wrapStreaming(route string, h http.HandlerFunc) http.Handler {
	return s.instrument(route, false, h)
}

func (s *Server) instrument(route string, deadline bool, h http.HandlerFunc) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w}
		if deadline {
			ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
			defer cancel()
			r = r.WithContext(ctx)
		}
		defer func() {
			if rec := recover(); rec != nil {
				s.metrics.addPanic()
				s.log.Error("panic", "route", route, "path", r.URL.Path,
					"panic", rec, "stack", string(debug.Stack()))
				if sw.status == 0 {
					writeError(sw, http.StatusInternalServerError, "internal error")
				}
			}
			dur := time.Since(start)
			s.metrics.observeRequest(route, r.Method, sw.status, dur)
			s.log.Info("request",
				"method", r.Method,
				"path", r.URL.Path,
				"route", route,
				"status", sw.status,
				"bytes", sw.bytes,
				"dur", dur.Round(time.Microsecond).String(),
			)
		}()
		h(sw, r)
	})
}
