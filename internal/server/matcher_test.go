package server

import (
	"net/http"
	"strings"
	"testing"

	"xydiff/internal/diff"
)

// TestPutMatcherOverride drives the per-PUT ?matcher= override end to
// end: the sftm diff is recorded under its own metrics label, the delta
// still applies (version 1 reconstructs), and a bad name is a 400
// before any parse work happens.
func TestPutMatcherOverride(t *testing.T) {
	s, ts := newTestServer(t, Config{})

	pageV1 := `<html><body><h1>Shop</h1><ul><li>apple pie recipe</li><li>orange juice guide</li></ul></body></html>`
	pageV2 := `<html><body><h1>Shop</h1><ul><li>orange juice guide</li><li>apple pie recipe</li></ul></body></html>`

	if code, _, body := doReq(t, "PUT", ts.URL+"/docs/page?matcher=sftm", pageV1); code != http.StatusCreated {
		t.Fatalf("PUT v1: %d %s", code, body)
	}
	if code, _, body := doReq(t, "PUT", ts.URL+"/docs/page?matcher=sftm", pageV2); code != http.StatusOK {
		t.Fatalf("PUT v2: %d %s", code, body)
	}
	if n := s.Metrics().DiffCountByMatcher(diff.MatcherSFTM); n != 1 {
		t.Fatalf("sftm diff count = %d, want 1", n)
	}
	if n := s.Metrics().DiffCountByMatcher(diff.MatcherBULD); n != 0 {
		t.Fatalf("buld diff count = %d, want 0", n)
	}

	// The sftm-produced delta must reconstruct version 1 like any other.
	code, _, v1 := doReq(t, "GET", ts.URL+"/docs/page/versions/1", "")
	if code != http.StatusOK {
		t.Fatalf("GET v1: %d", code)
	}
	if !strings.Contains(v1, "apple pie recipe") || strings.Index(v1, "apple") > strings.Index(v1, "orange") {
		t.Fatalf("v1 reconstruction wrong: %s", v1)
	}

	if code, _, body := doReq(t, "PUT", ts.URL+"/docs/page?matcher=nonsense", pageV1); code != http.StatusBadRequest {
		t.Fatalf("bad matcher: %d %s", code, body)
	}

	// A plain PUT keeps the store default and labels under buld.
	if code, _, body := doReq(t, "PUT", ts.URL+"/docs/page", pageV1); code != http.StatusOK {
		t.Fatalf("PUT v3: %d %s", code, body)
	}
	if n := s.Metrics().DiffCountByMatcher(diff.MatcherBULD); n != 1 {
		t.Fatalf("buld diff count after default PUT = %d, want 1", n)
	}
}
