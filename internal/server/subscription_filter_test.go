package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"testing"
)

// TestSubscriptionFilterAcrossMatchers pins the subscription contract
// the daemon promises regardless of which tree matcher produced the
// delta: a PUT whose change touches a node matching the subscriber's
// XPath produces exactly one alert, and a query the change does not
// satisfy suppresses alerts entirely. catalogV1 -> catalogV2 inserts
// exactly one Product (price $799), so `//Product[Price>500]` selects
// the inserted node while `//Product[Price>900]` selects nothing.
func TestSubscriptionFilterAcrossMatchers(t *testing.T) {
	cases := []struct {
		name    string
		matcher string // "" = store default (buld), otherwise the ?matcher= value
		query   string
		want    int
	}{
		{"buld/matching", "", `//Product[Price>500]`, 1},
		{"buld/non-matching", "", `//Product[Price>900]`, 0},
		{"sftm/matching", "sftm", `//Product[Price>500]`, 1},
		{"sftm/non-matching", "sftm", `//Product[Price>900]`, 0},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, ts := newTestServer(t, Config{})
			sub := fmt.Sprintf(`{"id":"watch","query":%q,"kinds":["insert"]}`, c.query)
			if code, _, body := doReq(t, "POST", ts.URL+"/subscriptions", sub); code != http.StatusCreated {
				t.Fatalf("POST subscription: %d %s", code, body)
			}
			url := ts.URL + "/docs/catalog"
			if c.matcher != "" {
				url += "?matcher=" + c.matcher
			}
			if code, _, body := doReq(t, "PUT", url, catalogV1); code != http.StatusCreated {
				t.Fatalf("PUT v1: %d %s", code, body)
			}
			if code, _, body := doReq(t, "PUT", url, catalogV2); code != http.StatusOK {
				t.Fatalf("PUT v2: %d %s", code, body)
			}
			code, _, body := doReq(t, "GET", ts.URL+"/docs/catalog/alerts", "")
			if code != http.StatusOK {
				t.Fatalf("GET alerts: %d %s", code, body)
			}
			var alerts []alertJSON
			if err := json.Unmarshal([]byte(body), &alerts); err != nil {
				t.Fatal(err)
			}
			if len(alerts) != c.want {
				t.Fatalf("alerts = %+v, want exactly %d", alerts, c.want)
			}
			if c.want == 1 {
				a := alerts[0]
				if a.Sub != "watch" || a.Kind != "insert" || a.Version != 2 {
					t.Fatalf("alert = %+v", a)
				}
			}
		})
	}
}
