package server

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"xydiff/internal/diff"
	"xydiff/internal/dom"
	"xydiff/internal/faultfs"
	"xydiff/internal/vstore"
)

// newVstoreServer serves a sharded engine so the degraded/scrub
// surface is reachable over HTTP.
func newVstoreServer(t *testing.T, vcfg vstore.Config) (*vstore.Store, string, *httptest.Server) {
	t.Helper()
	dir := t.TempDir()
	st, err := vstore.Open(dir, diff.Options{}, vcfg)
	if err != nil {
		t.Fatal(err)
	}
	s := New(st, Config{Logger: slog.New(slog.NewTextHandler(io.Discard, nil))})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
		st.Close()
	})
	return st, dir, ts
}

// degradeServerDoc puts versions, corrupts the doc's only sealed
// segment and scrubs with repair off, leaving "doc" degraded.
func degradeServerDoc(t *testing.T, st *vstore.Store, dir string) {
	t.Helper()
	for v := 1; v <= 3; v++ {
		body := fmt.Sprintf(`<doc><rev>%d</rev></doc>`, v)
		doc, err := dom.ParseString(body)
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := st.Put("doc", doc); err != nil {
			t.Fatal(err)
		}
	}
	// Flip a bit in the lowest-sequence segment: with one record per
	// segment it is sealed (only the highest sequence is active).
	matches, _ := filepath.Glob(filepath.Join(dir, "shard-*", "seg-*.log"))
	sort.Strings(matches)
	if len(matches) < 2 {
		t.Fatalf("want sealed segments, have %v", matches)
	}
	victim := matches[0]
	if err := faultfs.FlipBit(faultfs.OS{}, victim, 12, 2); err != nil {
		t.Fatal(err)
	}
	rep, err := st.ScrubPass(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Quarantined == 0 {
		t.Fatalf("setup: scrub did not quarantine: %+v", rep)
	}
	if deg, _ := st.Degraded("doc"); !deg {
		t.Fatal("setup: doc not degraded")
	}
}

func TestDegradedReadsWarnNot500(t *testing.T) {
	st, dir, ts := newVstoreServer(t, vstore.Config{
		Shards:          1,
		SegmentBytes:    1,
		CompactSegments: -1,
		Scrub:           vstore.ScrubConfig{Throttle: -1, NoRepair: true},
	})
	degradeServerDoc(t, st, dir)

	// Intact versions keep serving, flagged via Warning, never a 500.
	code, hdr, body := doReq(t, "GET", ts.URL+"/docs/doc", "")
	if code != http.StatusOK {
		t.Fatalf("latest = %d: %s", code, body)
	}
	if w := hdr.Get("Warning"); !strings.Contains(w, "degraded") {
		t.Fatalf("Warning header = %q", w)
	}
	code, hdr, _ = doReq(t, "GET", ts.URL+"/docs/doc/versions/2", "")
	if code != http.StatusOK || !strings.Contains(hdr.Get("Warning"), "degraded") {
		t.Fatalf("version read = %d, Warning %q", code, hdr.Get("Warning"))
	}

	// Puts keep working on the degraded document.
	code, _, body = doReq(t, "PUT", ts.URL+"/docs/doc", `<doc><rev>4</rev></doc>`)
	if code != http.StatusOK && code != http.StatusCreated {
		t.Fatalf("Put on degraded doc = %d: %s", code, body)
	}

	// /healthz carries the scrub + degraded state, per shard included.
	_, _, health := doReq(t, "GET", ts.URL+"/healthz", "")
	var h map[string]any
	if err := json.Unmarshal([]byte(health), &h); err != nil {
		t.Fatal(err)
	}
	storage, ok := h["storage"].(map[string]any)
	if !ok {
		t.Fatalf("healthz has no storage block: %s", health)
	}
	if storage["degradedDocs"].(float64) != 1 || storage["quarantined"].(float64) != 1 {
		t.Fatalf("healthz degraded/quarantined = %v/%v", storage["degradedDocs"], storage["quarantined"])
	}
	scrubBlock, ok := storage["scrub"].(map[string]any)
	if !ok || scrubBlock["cycles"].(float64) < 1 || scrubBlock["quarantined"].(float64) != 1 {
		t.Fatalf("healthz scrub block = %v", storage["scrub"])
	}
	shards, ok := storage["perShard"].([]any)
	if !ok || len(shards) != 1 {
		t.Fatalf("healthz perShard = %v", storage["perShard"])
	}
	sh := shards[0].(map[string]any)
	for _, key := range []string{"sealedSegments", "lastCompactUnix", "quarantined", "degradedDocs"} {
		if _, ok := sh[key]; !ok {
			t.Fatalf("healthz perShard missing %s: %v", key, sh)
		}
	}

	// /metrics exposes the xydiffd_scrub_* family.
	_, _, metrics := doReq(t, "GET", ts.URL+"/metrics", "")
	for _, name := range []string{
		"xydiffd_scrub_cycles_total",
		"xydiffd_scrub_scanned_bytes_total",
		"xydiffd_scrub_records_verified_total",
		"xydiffd_scrub_corruptions_found_total",
		"xydiffd_scrub_repaired_total",
		"xydiffd_scrub_quarantined_total",
		"xydiffd_scrub_last_cycle_seconds",
		"xydiffd_store_degraded_docs",
		"xydiffd_store_shard_sealed_segments",
		"xydiffd_store_shard_last_compact_unixtime",
	} {
		if !strings.Contains(metrics, "\n"+name) {
			t.Errorf("/metrics missing %s", name)
		}
	}
	if !strings.Contains(metrics, "xydiffd_scrub_quarantined_total 1") {
		t.Error("quarantine count not exported")
	}
}

func TestDegradedMissingVersionIs410(t *testing.T) {
	st, dir, ts := newVstoreServer(t, vstore.Config{
		Shards:          1,
		SegmentBytes:    1,
		CompactSegments: -1,
		Scrub:           vstore.ScrubConfig{Throttle: -1, NoRepair: true},
	})
	degradeServerDoc(t, st, dir)

	// Reopen-style gap: simulate by asking beyond the intact range on a
	// degraded doc — the typed error must map to 410 + Warning, not 500.
	code, hdr, body := doReq(t, "GET", ts.URL+"/docs/doc/versions/9", "")
	if code != http.StatusGone {
		t.Fatalf("missing degraded version = %d: %s", code, body)
	}
	if !strings.Contains(hdr.Get("Warning"), "degraded") {
		t.Fatalf("Warning header = %q", hdr.Get("Warning"))
	}
	var payload map[string]any
	if err := json.Unmarshal([]byte(body), &payload); err != nil {
		t.Fatal(err)
	}
	if payload["degraded"] != true || payload["intactVersions"].(float64) != 3 {
		t.Fatalf("degraded payload = %v", payload)
	}
}
