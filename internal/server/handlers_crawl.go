package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"xydiff/internal/crawl"
	"xydiff/internal/diff"
	"xydiff/internal/dom"
)

// crawlIngest is the crawler's way into the pipeline: the fetched body
// goes through the same hardened parse limits as an HTTP PUT and its
// diff rides the same bounded worker pool, so crawled traffic and
// client traffic compete for — and are shed by — one backpressure
// budget. A full queue surfaces as a transient error the crawler
// retries on its backoff schedule.
func (s *Server) crawlIngest(ctx context.Context, id string, body []byte) (bool, error) {
	doc, err := dom.ParseWithOptions(bytes.NewReader(body), s.parseOptions())
	if err != nil {
		return false, fmt.Errorf("parse %s: %w", id, err)
	}
	// The source's registered matcher (validated at registration time)
	// rides along: a page-monitoring source diffs with sftm while XML
	// feeds on the same server keep the default.
	var matcher diff.Matcher
	if src, ok := s.crawlReg.Get(id); ok {
		matcher = diff.Matcher(src.Matcher)
	}
	done := make(chan putResult, 1)
	if err := s.pool.submit(func() {
		v, d, err := s.store.PutMatcherContext(ctx, id, doc, matcher)
		done <- putResult{version: v, delta: d, err: err}
	}); err != nil {
		return false, err
	}
	select {
	case res := <-done:
		if res.err != nil {
			return false, res.err
		}
		changed := res.version == 1 || (res.delta != nil && !res.delta.Empty())
		return changed, nil
	case <-ctx.Done():
		return false, ctx.Err()
	}
}

// sourceJSON is the wire form of a crawl source: durations and times as
// strings, plus the live schedule introspection.
type sourceJSON struct {
	ID          string  `json:"id"`
	URL         string  `json:"url"`
	Matcher     string  `json:"matcher,omitempty"`
	Interval    string  `json:"interval,omitempty"`
	NextFetch   string  `json:"nextFetch,omitempty"`
	ETag        string  `json:"etag,omitempty"`
	Fetches     int64   `json:"fetches"`
	NotModified int64   `json:"notModified"`
	Changes     int64   `json:"changes"`
	Errors      int64   `json:"errors"`
	Failures    int64   `json:"failures,omitempty"`
	CircuitOpen bool    `json:"circuitOpen"`
	ChangeRate  float64 `json:"changeRate"`
}

func toSourceJSON(st crawl.Status) sourceJSON {
	j := sourceJSON{
		ID:          st.ID,
		URL:         st.URL,
		Matcher:     st.Matcher,
		ETag:        st.ETag,
		Fetches:     st.Fetches,
		NotModified: st.NotModified,
		Changes:     st.Changes,
		Errors:      st.Errors,
		Failures:    int64(st.Failures),
		CircuitOpen: st.CircuitOpen(time.Now()),
		ChangeRate:  st.Rate,
	}
	if st.Interval > 0 {
		j.Interval = st.Interval.String()
	}
	if !st.NextFetch.IsZero() {
		j.NextFetch = st.NextFetch.UTC().Format(time.RFC3339)
	}
	return j
}

// crawlEnabled 503s requests against the source API when the server
// runs without an acquisition layer.
func (s *Server) crawlEnabled(w http.ResponseWriter) bool {
	if s.crawler == nil {
		writeError(w, http.StatusServiceUnavailable, "crawling is not enabled on this server")
		return false
	}
	return true
}

func (s *Server) handleCreateSource(w http.ResponseWriter, r *http.Request) {
	if !s.crawlEnabled(w) {
		return
	}
	var req struct {
		ID      string `json:"id"`
		URL     string `json:"url"`
		Matcher string `json:"matcher"`
	}
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "parse source: "+err.Error())
		return
	}
	src, err := s.crawler.Add(crawl.Source{ID: req.ID, URL: req.URL, Matcher: req.Matcher})
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	s.log.Info("crawl source added", "id", src.ID, "url", src.URL)
	writeJSON(w, http.StatusCreated, toSourceJSON(crawl.Status{Source: src, Rate: 0.5}))
}

func (s *Server) handleListSources(w http.ResponseWriter, r *http.Request) {
	if !s.crawlEnabled(w) {
		return
	}
	out := []sourceJSON{}
	for _, st := range s.crawler.Status() {
		out = append(out, toSourceJSON(st))
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleGetSource(w http.ResponseWriter, r *http.Request) {
	if !s.crawlEnabled(w) {
		return
	}
	for _, st := range s.crawler.Status() {
		if st.ID == r.PathValue("id") {
			writeJSON(w, http.StatusOK, toSourceJSON(st))
			return
		}
	}
	writeError(w, http.StatusNotFound, "no such source")
}

func (s *Server) handleDeleteSource(w http.ResponseWriter, r *http.Request) {
	if !s.crawlEnabled(w) {
		return
	}
	if !s.crawler.Remove(r.PathValue("id")) {
		writeError(w, http.StatusNotFound, "no such source")
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"deleted": r.PathValue("id")})
}
