package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"xydiff/internal/alert"
	"xydiff/internal/delta"
	"xydiff/internal/diff"
	"xydiff/internal/dom"
	"xydiff/internal/store"
	"xydiff/internal/vstore"
	"xydiff/internal/xpathlite"
)

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	// Past WriteHeader the status is committed; an encode error just
	// means the client hung up.
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]string{"error": msg})
}

// shedLoad answers a shed request: 503 with a Retry-After hint that
// grows with consecutive rejections (retry.Policy) and resets once a
// submission gets through, so sustained overload pushes retries
// further out instead of re-inviting the herd.
func (s *Server) shedLoad(w http.ResponseWriter, msg string) {
	s.metrics.addRejected()
	after := int(s.shedBackoff.Next().Round(time.Second) / time.Second)
	if after < 1 {
		after = 1
	}
	w.Header().Set("Retry-After", strconv.Itoa(after))
	writeError(w, http.StatusServiceUnavailable, msg)
}

// storeError maps store failures onto HTTP statuses: unknown documents
// and out-of-range versions are 404s, deadline hits are load-shedding
// 503s, degraded history (quarantined by the scrubber) is 410 Gone
// with a Warning header — never a 500 — and the rest are genuine 500s.
func storeError(w http.ResponseWriter, err error) {
	var de *vstore.DegradedError
	switch {
	case errors.As(err, &de):
		w.Header().Set("Warning", fmt.Sprintf("110 xydiffd %q", "degraded: "+de.Reason))
		writeJSON(w, http.StatusGone, map[string]any{
			"error":          de.Error(),
			"degraded":       true,
			"intactVersions": de.Intact,
		})
	case errors.Is(err, store.ErrUnknownDocument), errors.Is(err, store.ErrNoSuchVersion):
		writeError(w, http.StatusNotFound, err.Error())
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable, "request deadline exceeded during diff")
	default:
		writeError(w, http.StatusInternalServerError, err.Error())
	}
}

// degradedStatser is the optional capability the sharded engine adds
// for degraded-mode serving: reads of a document whose history is
// partly quarantined succeed with a Warning header instead of failing.
type degradedStatser interface {
	Degraded(id string) (bool, string)
}

// warnDegraded stamps the Warning header when the document serves
// degraded; must run before the response body starts.
func (s *Server) warnDegraded(w http.ResponseWriter, id string) {
	ds, ok := s.store.(degradedStatser)
	if !ok {
		return
	}
	if deg, reason := ds.Degraded(id); deg {
		w.Header().Set("Warning", fmt.Sprintf("110 xydiffd %q", "degraded: "+reason))
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	rec := s.store.RecoveryStats()
	body := map[string]any{
		"status":      "ok",
		"documents":   len(s.store.IDs()),
		"uptime":      time.Since(s.started).Round(time.Second).String(),
		"journalSync": s.store.SyncPolicy().String(),
		"recovery": map[string]any{
			"documents":        rec.Documents,
			"snapshotVersions": rec.SnapshotVersions,
			"journalRecords":   rec.JournalRecords,
			"journalSkipped":   rec.JournalSkipped,
			"tornTails":        rec.TornTails,
			"journalBytes":     rec.JournalBytes,
		},
	}
	if s.crawler != nil {
		cs := s.crawler.Metrics().Snapshot()
		body["crawl"] = map[string]any{
			"sources":      cs.Sources,
			"queueDepth":   cs.QueueDepth,
			"openCircuits": cs.OpenCircuits,
			"fetches":      cs.Fetches,
			"notModified":  cs.NotModified,
		}
	}
	if eng, ok := s.store.(storageStatser); ok {
		ss := eng.StorageStats()
		perShard := make([]map[string]any, 0, len(ss.PerShard))
		for _, sh := range ss.PerShard {
			perShard = append(perShard, map[string]any{
				"shard":           sh.Shard,
				"sealedSegments":  sh.SealedSegments,
				"lastCompactUnix": sh.LastCompactUnix,
				"quarantined":     sh.Quarantined,
				"degradedDocs":    sh.DegradedDocs,
			})
		}
		body["storage"] = map[string]any{
			"engine":            "vstore",
			"shards":            ss.Shards,
			"documents":         ss.Documents,
			"segments":          ss.Segments,
			"sealedSegments":    ss.SealedSegments,
			"fsyncTotal":        ss.FsyncTotal,
			"meanFsyncBatch":    ss.MeanBatch(),
			"maxFsyncBatch":     ss.MaxBatch,
			"rejected":          ss.Rejected,
			"cacheHitRatio":     ss.CacheHitRatio(),
			"cacheLen":          ss.CacheLen,
			"cacheCap":          ss.CacheCap,
			"compactions":       ss.Compactions,
			"compactionSeconds": ss.CompactionSeconds,
			"degradedDocs":      ss.DegradedDocs,
			"quarantined":       ss.Quarantined,
			"scrub": map[string]any{
				"cycles":           ss.Scrub.Cycles,
				"bytesScanned":     ss.Scrub.BytesScanned,
				"recordsVerified":  ss.Scrub.RecordsVerified,
				"found":            ss.Scrub.Found,
				"repaired":         ss.Scrub.Repaired,
				"quarantined":      ss.Scrub.Quarantined,
				"lastCycleUnix":    ss.Scrub.LastUnix,
				"lastCycleSeconds": ss.Scrub.LastSeconds,
			},
			"perShard": perShard,
		}
	}
	writeJSON(w, http.StatusOK, body)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.metrics.WritePrometheus(w)

	// Journal durability counters from the store (all zero for a pure
	// in-memory store).
	ds := s.store.DurabilityStats()
	rec := s.store.RecoveryStats()
	fmt.Fprintln(w, "# HELP xydiffd_journal_appends_total Journal records appended.")
	fmt.Fprintln(w, "# TYPE xydiffd_journal_appends_total counter")
	fmt.Fprintf(w, "xydiffd_journal_appends_total %d\n", ds.Appends)
	fmt.Fprintln(w, "# HELP xydiffd_journal_appended_bytes_total Bytes appended to journals.")
	fmt.Fprintln(w, "# TYPE xydiffd_journal_appended_bytes_total counter")
	fmt.Fprintf(w, "xydiffd_journal_appended_bytes_total %d\n", ds.AppendedBytes)
	fmt.Fprintln(w, "# HELP xydiffd_journal_syncs_total Journal fsyncs completed.")
	fmt.Fprintln(w, "# TYPE xydiffd_journal_syncs_total counter")
	fmt.Fprintf(w, "xydiffd_journal_syncs_total %d\n", ds.Syncs)
	fmt.Fprintln(w, "# HELP xydiffd_journal_checkpoints_total Snapshot+compaction cycles completed.")
	fmt.Fprintln(w, "# TYPE xydiffd_journal_checkpoints_total counter")
	fmt.Fprintf(w, "xydiffd_journal_checkpoints_total %d\n", ds.Checkpoints)
	fmt.Fprintln(w, "# HELP xydiffd_recovery_journal_records Journal records replayed at startup.")
	fmt.Fprintln(w, "# TYPE xydiffd_recovery_journal_records gauge")
	fmt.Fprintf(w, "xydiffd_recovery_journal_records %d\n", rec.JournalRecords)
	fmt.Fprintln(w, "# HELP xydiffd_recovery_torn_tails Torn journal tails truncated at startup.")
	fmt.Fprintln(w, "# TYPE xydiffd_recovery_torn_tails gauge")
	fmt.Fprintf(w, "xydiffd_recovery_torn_tails %d\n", rec.TornTails)

	// Change statistics from the stats collector (the paper's
	// measurement program), aggregated over every versioning diff.
	rep := s.collector.Report()
	fmt.Fprintln(w, "# HELP xydiffd_change_versions_observed Version transitions measured.")
	fmt.Fprintln(w, "# TYPE xydiffd_change_versions_observed counter")
	fmt.Fprintf(w, "xydiffd_change_versions_observed %d\n", rep.Versions)
	fmt.Fprintln(w, "# TYPE xydiffd_change_ops_total counter")
	for _, kv := range []struct {
		kind string
		n    int
	}{
		{"insert", rep.Ops.Inserts}, {"delete", rep.Ops.Deletes},
		{"update", rep.Ops.Updates}, {"move", rep.Ops.Moves}, {"attr", rep.Ops.AttrOps},
	} {
		fmt.Fprintf(w, "xydiffd_change_ops_total{kind=%q} %d\n", kv.kind, kv.n)
	}
	fmt.Fprintln(w, "# TYPE xydiffd_change_delta_doc_ratio gauge")
	fmt.Fprintf(w, "xydiffd_change_delta_doc_ratio %g\n", rep.DeltaRatio())
	fmt.Fprintln(w, "# TYPE xydiffd_store_documents gauge")
	fmt.Fprintf(w, "xydiffd_store_documents %d\n", len(s.store.IDs()))

	// Acquisition-layer counters, present whenever crawling is enabled.
	if s.crawler != nil {
		s.crawler.Metrics().WritePrometheus(w, "xydiffd_crawl")
	}

	// Sharded-engine counters: group-commit effectiveness, version
	// cache and compaction, overall and per shard.
	if eng, ok := s.store.(storageStatser); ok {
		writeStorageMetrics(w, eng.StorageStats())
	}
}

// writeStorageMetrics renders the sharded engine's counters in
// Prometheus text format.
func writeStorageMetrics(w io.Writer, ss vstore.StorageStats) {
	fmt.Fprintln(w, "# HELP xydiffd_store_shards Hash shards in the storage engine.")
	fmt.Fprintln(w, "# TYPE xydiffd_store_shards gauge")
	fmt.Fprintf(w, "xydiffd_store_shards %d\n", ss.Shards)
	fmt.Fprintln(w, "# HELP xydiffd_store_fsync_total Segment fsyncs performed by group commit.")
	fmt.Fprintln(w, "# TYPE xydiffd_store_fsync_total counter")
	fmt.Fprintf(w, "xydiffd_store_fsync_total %d\n", ss.FsyncTotal)
	fmt.Fprintln(w, "# HELP xydiffd_store_fsync_batch_size Mean records acknowledged per group-commit fsync.")
	fmt.Fprintln(w, "# TYPE xydiffd_store_fsync_batch_size gauge")
	fmt.Fprintf(w, "xydiffd_store_fsync_batch_size %g\n", ss.MeanBatch())
	fmt.Fprintln(w, "# HELP xydiffd_store_fsync_batch_max Largest group-commit batch so far.")
	fmt.Fprintln(w, "# TYPE xydiffd_store_fsync_batch_max gauge")
	fmt.Fprintf(w, "xydiffd_store_fsync_batch_max %d\n", ss.MaxBatch)
	fmt.Fprintln(w, "# HELP xydiffd_store_busy_rejected_total Puts shed because a shard's group-commit queue was saturated.")
	fmt.Fprintln(w, "# TYPE xydiffd_store_busy_rejected_total counter")
	fmt.Fprintf(w, "xydiffd_store_busy_rejected_total %d\n", ss.Rejected)
	fmt.Fprintln(w, "# HELP xydiffd_store_compaction_seconds Cumulative time spent compacting segments into snapshots.")
	fmt.Fprintln(w, "# TYPE xydiffd_store_compaction_seconds counter")
	fmt.Fprintf(w, "xydiffd_store_compaction_seconds %g\n", ss.CompactionSeconds)
	fmt.Fprintln(w, "# HELP xydiffd_store_compactions_total Compaction passes completed.")
	fmt.Fprintln(w, "# TYPE xydiffd_store_compactions_total counter")
	fmt.Fprintf(w, "xydiffd_store_compactions_total %d\n", ss.Compactions)
	fmt.Fprintln(w, "# HELP xydiffd_store_cache_hit_ratio Version-cache hit ratio since start.")
	fmt.Fprintln(w, "# TYPE xydiffd_store_cache_hit_ratio gauge")
	fmt.Fprintf(w, "xydiffd_store_cache_hit_ratio %g\n", ss.CacheHitRatio())
	fmt.Fprintln(w, "# HELP xydiffd_store_cache_resident Materialized document trees resident in the version cache.")
	fmt.Fprintln(w, "# TYPE xydiffd_store_cache_resident gauge")
	fmt.Fprintf(w, "xydiffd_store_cache_resident %d\n", ss.CacheLen)
	fmt.Fprintln(w, "# HELP xydiffd_store_degraded_docs Documents serving degraded (part of their history quarantined).")
	fmt.Fprintln(w, "# TYPE xydiffd_store_degraded_docs gauge")
	fmt.Fprintf(w, "xydiffd_store_degraded_docs %d\n", ss.DegradedDocs)
	fmt.Fprintln(w, "# HELP xydiffd_scrub_cycles_total Integrity scrub passes completed.")
	fmt.Fprintln(w, "# TYPE xydiffd_scrub_cycles_total counter")
	fmt.Fprintf(w, "xydiffd_scrub_cycles_total %d\n", ss.Scrub.Cycles)
	fmt.Fprintln(w, "# HELP xydiffd_scrub_scanned_bytes_total Bytes read and CRC-verified by the scrubber.")
	fmt.Fprintln(w, "# TYPE xydiffd_scrub_scanned_bytes_total counter")
	fmt.Fprintf(w, "xydiffd_scrub_scanned_bytes_total %d\n", ss.Scrub.BytesScanned)
	fmt.Fprintln(w, "# HELP xydiffd_scrub_records_verified_total Segment records whose checksum and decoding the scrubber verified.")
	fmt.Fprintln(w, "# TYPE xydiffd_scrub_records_verified_total counter")
	fmt.Fprintf(w, "xydiffd_scrub_records_verified_total %d\n", ss.Scrub.RecordsVerified)
	fmt.Fprintln(w, "# HELP xydiffd_scrub_corruptions_found_total Corruptions the scrubber detected.")
	fmt.Fprintln(w, "# TYPE xydiffd_scrub_corruptions_found_total counter")
	fmt.Fprintf(w, "xydiffd_scrub_corruptions_found_total %d\n", ss.Scrub.Found)
	fmt.Fprintln(w, "# HELP xydiffd_scrub_repaired_total Corruptions repaired by rewriting from resident data.")
	fmt.Fprintln(w, "# TYPE xydiffd_scrub_repaired_total counter")
	fmt.Fprintf(w, "xydiffd_scrub_repaired_total %d\n", ss.Scrub.Repaired)
	fmt.Fprintln(w, "# HELP xydiffd_scrub_quarantined_total Corrupt files renamed aside (never deleted).")
	fmt.Fprintln(w, "# TYPE xydiffd_scrub_quarantined_total counter")
	fmt.Fprintf(w, "xydiffd_scrub_quarantined_total %d\n", ss.Scrub.Quarantined)
	fmt.Fprintln(w, "# HELP xydiffd_scrub_last_cycle_seconds Duration of the most recent scrub pass.")
	fmt.Fprintln(w, "# TYPE xydiffd_scrub_last_cycle_seconds gauge")
	fmt.Fprintf(w, "xydiffd_scrub_last_cycle_seconds %g\n", ss.Scrub.LastSeconds)
	fmt.Fprintln(w, "# HELP xydiffd_scrub_last_cycle_unixtime When the most recent scrub pass finished (0 = none yet).")
	fmt.Fprintln(w, "# TYPE xydiffd_scrub_last_cycle_unixtime gauge")
	fmt.Fprintf(w, "xydiffd_scrub_last_cycle_unixtime %d\n", ss.Scrub.LastUnix)
	fmt.Fprintln(w, "# HELP xydiffd_store_segments Segment files on disk.")
	fmt.Fprintln(w, "# TYPE xydiffd_store_segments gauge")
	fmt.Fprintln(w, "# HELP xydiffd_store_shard_fsync_total Segment fsyncs per shard.")
	fmt.Fprintln(w, "# TYPE xydiffd_store_shard_fsync_total counter")
	for _, sh := range ss.PerShard {
		fmt.Fprintf(w, "xydiffd_store_segments{shard=\"%d\"} %d\n", sh.Shard, sh.Segments)
		fmt.Fprintf(w, "xydiffd_store_shard_fsync_total{shard=\"%d\"} %d\n", sh.Shard, sh.Syncs)
		fmt.Fprintf(w, "xydiffd_store_shard_docs{shard=\"%d\"} %d\n", sh.Shard, sh.Docs)
		fmt.Fprintf(w, "xydiffd_store_shard_batch_records_total{shard=\"%d\"} %d\n", sh.Shard, sh.BatchRecords)
		fmt.Fprintf(w, "xydiffd_store_shard_rejected_total{shard=\"%d\"} %d\n", sh.Shard, sh.Rejected)
		fmt.Fprintf(w, "xydiffd_store_shard_sealed_segments{shard=\"%d\"} %d\n", sh.Shard, sh.SealedSegments)
		fmt.Fprintf(w, "xydiffd_store_shard_last_compact_unixtime{shard=\"%d\"} %d\n", sh.Shard, sh.LastCompactUnix)
		fmt.Fprintf(w, "xydiffd_store_shard_quarantined_total{shard=\"%d\"} %d\n", sh.Shard, sh.Quarantined)
		fmt.Fprintf(w, "xydiffd_store_shard_degraded_docs{shard=\"%d\"} %d\n", sh.Shard, sh.DegradedDocs)
	}
}

func (s *Server) handleListDocs(w http.ResponseWriter, r *http.Request) {
	type docInfo struct {
		ID       string `json:"id"`
		Versions int    `json:"versions"`
	}
	out := []docInfo{}
	for _, id := range s.store.IDs() {
		out = append(out, docInfo{ID: id, Versions: s.store.Versions(id)})
	}
	writeJSON(w, http.StatusOK, out)
}

type putResult struct {
	version int
	delta   *delta.Delta
	err     error
}

// parseOptions are the hardened parse options applied to uploaded
// documents: the standard content model plus the configured depth and
// token bounds (body bytes are already capped by MaxBytesReader).
func (s *Server) parseOptions() dom.ParseOptions {
	opts := dom.DefaultParseOptions()
	if s.cfg.MaxParseDepth > 0 {
		opts.Limits.MaxDepth = s.cfg.MaxParseDepth
	}
	if s.cfg.MaxParseTokens > 0 {
		opts.Limits.MaxTokens = s.cfg.MaxParseTokens
	}
	return opts
}

func (s *Server) handlePutDoc(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	// ?matcher= overrides the store's configured matcher for this PUT
	// only (e.g. matcher=sftm for an HTML snapshot of a page that lost
	// its ids). Absent or empty means the store default.
	matcher, err := parseMatcherParam(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	doc, err := dom.ParseWithOptions(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes), s.parseOptions())
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Sprintf("document exceeds %d bytes", s.cfg.MaxBodyBytes))
			return
		}
		var limit *dom.LimitError
		if errors.As(err, &limit) {
			// A byte-bound breach is the same class as MaxBytesReader
			// (413); structural bounds mean the document is well-formed
			// bytes but unacceptable content (422).
			code := http.StatusUnprocessableEntity
			if limit.What == "bytes" {
				code = http.StatusRequestEntityTooLarge
			}
			writeError(w, code, limit.Error())
			return
		}
		writeError(w, http.StatusBadRequest, "parse document: "+err.Error())
		return
	}

	// The diff runs on the bounded worker pool: per-document ordering
	// comes from the store's history lock, global concurrency from the
	// pool, and a full queue is backpressure the client sees as 503.
	done := make(chan putResult, 1)
	ctx := r.Context()
	submitErr := s.pool.submit(func() {
		v, d, err := s.store.PutMatcherContext(ctx, id, doc, matcher)
		done <- putResult{version: v, delta: d, err: err}
	})
	if submitErr != nil {
		s.shedLoad(w, submitErr.Error())
		return
	}
	select {
	case res := <-done:
		if errors.Is(res.err, vstore.ErrBusy) {
			// A saturated group-commit queue is the storage layer's
			// backpressure: same load-shedding contract as a full diff
			// queue — 503 with a growing Retry-After, never blocking.
			s.shedLoad(w, res.err.Error())
			return
		}
		if res.err != nil {
			storeError(w, res.err)
			return
		}
		// The hint resets once a Put makes it through end to end.
		s.shedBackoff.Reset()
		resp := map[string]any{"id": id, "version": res.version}
		if res.delta != nil {
			resp["deltaOps"] = res.delta.Count().Total()
			resp["deltaBytes"] = res.delta.Size()
		} else {
			resp["deltaOps"] = 0
			resp["deltaBytes"] = 0
		}
		code := http.StatusOK
		if res.version == 1 {
			code = http.StatusCreated
		}
		writeJSON(w, code, resp)
	case <-ctx.Done():
		// The job keeps its slot until the canceled diff unwinds; the
		// client just stops waiting.
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable, "request deadline exceeded waiting for diff")
	}
}

// parseMatcherParam reads the optional ?matcher= override. The empty
// string means "use the store's configured matcher" and is passed
// through as-is (the store, not the handler, knows its default).
func parseMatcherParam(r *http.Request) (diff.Matcher, error) {
	v := r.URL.Query().Get("matcher")
	if v == "" {
		return "", nil
	}
	m, err := diff.ParseMatcher(v)
	if err != nil {
		return "", err
	}
	return m, nil
}

func writeDoc(w http.ResponseWriter, doc *dom.Node, version int) {
	w.Header().Set("Content-Type", "application/xml")
	w.Header().Set("X-Xydiff-Version", strconv.Itoa(version))
	_, _ = doc.WriteTo(w) // headers are out; a write error means the client hung up
}

func (s *Server) handleGetLatest(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	doc, version, err := s.store.Latest(id)
	if err != nil {
		storeError(w, err)
		return
	}
	s.warnDegraded(w, id)
	writeDoc(w, doc, version)
}

func (s *Server) handleGetVersion(w http.ResponseWriter, r *http.Request) {
	n, err := strconv.Atoi(r.PathValue("n"))
	if err != nil {
		writeError(w, http.StatusBadRequest, "version must be an integer")
		return
	}
	id := r.PathValue("id")
	doc, err := s.store.Version(id, n)
	if err != nil {
		storeError(w, err)
		return
	}
	s.warnDegraded(w, id)
	writeDoc(w, doc, n)
}

// handleGetDelta serves /docs/{id}/deltas/{spec} where spec is either a
// single delta number n (version n -> n+1) or a range a..b, served as
// the aggregated delta transforming version a into version b (b < a
// yields the inverted aggregate).
func (s *Server) handleGetDelta(w http.ResponseWriter, r *http.Request) {
	id, spec := r.PathValue("id"), r.PathValue("spec")
	var d *delta.Delta
	if from, to, ok := strings.Cut(spec, ".."); ok {
		a, errA := strconv.Atoi(from)
		b, errB := strconv.Atoi(to)
		if errA != nil || errB != nil {
			writeError(w, http.StatusBadRequest, "delta range must be A..B with integer versions")
			return
		}
		var err error
		d, err = s.store.Aggregate(id, a, b)
		if err != nil {
			storeError(w, err)
			return
		}
	} else {
		n, err := strconv.Atoi(spec)
		if err != nil {
			writeError(w, http.StatusBadRequest, "delta spec must be N or A..B")
			return
		}
		d, err = s.store.Delta(id, n)
		if err != nil {
			storeError(w, err)
			return
		}
	}
	s.warnDegraded(w, id)
	w.Header().Set("Content-Type", "application/xml")
	_, _ = d.WriteTo(w) // headers are out; a write error means the client hung up
}

// ---------------------------------------------------------------------------
// Subscriptions and alerts.

type subscriptionJSON struct {
	ID       string   `json:"id"`
	Doc      string   `json:"doc,omitempty"`
	Path     string   `json:"path,omitempty"`
	Query    string   `json:"query,omitempty"`
	Kinds    []string `json:"kinds,omitempty"`
	Contains string   `json:"contains,omitempty"`
}

func parseKind(s string) (delta.Kind, error) {
	for _, k := range []delta.Kind{
		delta.KindInsert, delta.KindDelete, delta.KindUpdate, delta.KindMove,
		delta.KindInsertAttr, delta.KindDeleteAttr, delta.KindUpdateAttr,
	} {
		if k.String() == s {
			return k, nil
		}
	}
	return 0, fmt.Errorf("unknown operation kind %q", s)
}

func (s *Server) handleCreateSubscription(w http.ResponseWriter, r *http.Request) {
	var req subscriptionJSON
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "parse subscription: "+err.Error())
		return
	}
	if req.ID == "" {
		writeError(w, http.StatusBadRequest, "subscription needs an id")
		return
	}
	sub := alert.Subscription{ID: req.ID, DocID: req.Doc, Path: req.Path, Contains: req.Contains}
	if req.Query != "" {
		expr, err := xpathlite.Compile(req.Query)
		if err != nil {
			writeError(w, http.StatusBadRequest, "compile query: "+err.Error())
			return
		}
		sub.Query = expr
	}
	for _, ks := range req.Kinds {
		k, err := parseKind(ks)
		if err != nil {
			writeError(w, http.StatusBadRequest, err.Error())
			return
		}
		sub.Kinds = append(sub.Kinds, k)
	}
	s.alerter.Subscribe(sub)
	writeJSON(w, http.StatusCreated, req)
}

func (s *Server) handleListSubscriptions(w http.ResponseWriter, r *http.Request) {
	out := []subscriptionJSON{}
	for _, sub := range s.alerter.Subscriptions() {
		j := subscriptionJSON{ID: sub.ID, Doc: sub.DocID, Path: sub.Path, Contains: sub.Contains}
		if sub.Query != nil {
			j.Query = sub.Query.String()
		}
		for _, k := range sub.Kinds {
			j.Kinds = append(j.Kinds, k.String())
		}
		out = append(out, j)
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleDeleteSubscription(w http.ResponseWriter, r *http.Request) {
	if !s.alerter.Unsubscribe(r.PathValue("id")) {
		writeError(w, http.StatusNotFound, "no such subscription")
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"deleted": r.PathValue("id")})
}

type alertJSON struct {
	Sub     string `json:"sub"`
	Doc     string `json:"doc"`
	Version int    `json:"version"`
	Kind    string `json:"kind"`
	Path    string `json:"path"`
	Detail  string `json:"detail"`
}

func toAlertJSON(a alert.Alert) alertJSON {
	return alertJSON{
		Sub: a.SubID, Doc: a.DocID, Version: a.Version,
		Kind: a.Op.Kind().String(), Path: a.Path, Detail: a.String(),
	}
}

// maxFollow bounds how long an alert stream stays open.
const maxFollow = 5 * time.Minute

// handleGetAlerts serves the recorded alerts for one document; with
// ?follow=DURATION it instead streams future matches live as
// newline-delimited JSON through a channel-backed notifier.
func (s *Server) handleGetAlerts(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	follow := r.URL.Query().Get("follow")
	if follow == "" {
		out := []alertJSON{}
		for _, a := range s.alertLog.forDoc(id) {
			out = append(out, toAlertJSON(a))
		}
		writeJSON(w, http.StatusOK, out)
		return
	}
	dur, err := time.ParseDuration(follow)
	if err != nil || dur <= 0 {
		writeError(w, http.StatusBadRequest, "follow must be a positive duration, e.g. 30s")
		return
	}
	if dur > maxFollow {
		dur = maxFollow
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}

	// The per-stream buffer is bounded (Config.StreamBuffer): a consumer
	// that reads slower than alerts arrive loses the excess, and the
	// loss is accounted in xydiffd_alert_stream_dropped_total rather
	// than stalling the diff path or growing memory.
	n := alert.NewChanNotifier(s.cfg.StreamBuffer)
	s.alerter.Attach(n)
	defer func() {
		s.alerter.Detach(n)
		n.Close()
		if d := n.Dropped(); d > 0 {
			s.metrics.addStreamDropped(d)
			s.log.Warn("alert stream dropped", "doc", id, "dropped", d)
		}
	}()

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher.Flush()
	enc := json.NewEncoder(w)
	deadline := time.NewTimer(dur)
	defer deadline.Stop()
	for {
		select {
		case a := <-n.C():
			if a.DocID != id {
				continue
			}
			if err := enc.Encode(toAlertJSON(a)); err != nil {
				return
			}
			flusher.Flush()
		case <-deadline.C:
			return
		case <-r.Context().Done():
			return
		}
	}
}
