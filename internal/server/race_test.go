package server

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"testing"
)

// TestRaceConcurrentPutDiffSubscribe hammers one document from three
// directions at once — writers PUT new versions (each PUT runs a diff
// against the predecessor), readers pull versions, single and
// aggregated deltas, and subscribers churn the subscription table while
// polling and streaming alerts for the same document. The test is the
// gate's dedicated -race workload: it asserts ordinary functional
// invariants (every acknowledged version reconstructs, every delta
// parses), but its real job is to put the store's per-document locks,
// the diff worker pool, and the alerter's subscriber list under
// simultaneous load so `go test -race ./...` can observe them.
func TestRaceConcurrentPutDiffSubscribe(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	const docID = "hot"
	const writers = 4
	const putsPerWriter = 8
	const readers = 4
	const subscribers = 3

	makeDoc := func(writer, seq int) string {
		var b strings.Builder
		b.WriteString("<Catalog><Category>")
		// Every PUT changes the tree so every diff produces operations.
		for k := 0; k <= seq; k++ {
			fmt.Fprintf(&b, "<Product><Name>w%d-s%d-%d</Name></Product>", writer, seq, k)
		}
		b.WriteString("</Category></Catalog>")
		return b.String()
	}

	stop := make(chan struct{})
	var readerWG sync.WaitGroup

	// Readers: latest, every reachable version, single and aggregated
	// deltas, racing against the writers below.
	for r := 0; r < readers; r++ {
		readerWG.Add(1)
		go func() {
			defer readerWG.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				code, hdr, body := doReq(t, "GET", ts.URL+"/docs/"+docID, "")
				if code == http.StatusNotFound {
					continue // no version yet
				}
				if code != http.StatusOK {
					t.Errorf("GET latest: %d %s", code, body)
					return
				}
				var latest int
				if _, err := fmt.Sscan(hdr.Get("X-Xydiff-Version"), &latest); err != nil || latest < 1 {
					t.Errorf("latest version header %q: %v", hdr.Get("X-Xydiff-Version"), err)
					return
				}
				for v := 1; v <= latest; v++ {
					if code, _, body := doReq(t, "GET", fmt.Sprintf("%s/docs/%s/versions/%d", ts.URL, docID, v), ""); code != http.StatusOK {
						t.Errorf("GET version %d/%d: %d %s", v, latest, code, body)
						return
					}
				}
				for v := 1; v < latest; v++ {
					if code, _, body := doReq(t, "GET", fmt.Sprintf("%s/docs/%s/deltas/%d", ts.URL, docID, v), ""); code != http.StatusOK {
						t.Errorf("GET delta %d/%d: %d %s", v, latest, code, body)
						return
					}
				}
				if latest > 1 {
					if code, _, body := doReq(t, "GET", fmt.Sprintf("%s/docs/%s/deltas/1..%d", ts.URL, docID, latest), ""); code != http.StatusOK {
						t.Errorf("GET aggregated delta 1..%d: %d %s", latest, code, body)
						return
					}
				}
			}
		}()
	}

	// Subscribers: create, list, poll alerts, stream alerts, delete —
	// churning the alerter while PUTs evaluate it.
	for sgor := 0; sgor < subscribers; sgor++ {
		readerWG.Add(1)
		go func(sgor int) {
			defer readerWG.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				subID := fmt.Sprintf("sub-%d-%d", sgor, i)
				sub := fmt.Sprintf(`{"id":%q,"doc":%q,"path":"Category/Product","kinds":["insert","update","delete"]}`, subID, docID)
				if code, _, body := doReq(t, "POST", ts.URL+"/subscriptions", sub); code != http.StatusCreated {
					t.Errorf("POST subscription: %d %s", code, body)
					return
				}
				if code, _, body := doReq(t, "GET", ts.URL+"/subscriptions", ""); code != http.StatusOK {
					t.Errorf("GET subscriptions: %d %s", code, body)
					return
				}
				if code, _, body := doReq(t, "GET", ts.URL+"/docs/"+docID+"/alerts", ""); code != http.StatusOK {
					t.Errorf("GET alerts: %d %s", code, body)
					return
				} else if body != "" {
					var alerts []alertJSON
					if err := json.Unmarshal([]byte(body), &alerts); err != nil {
						t.Errorf("bad alerts body %q: %v", body, err)
						return
					}
				}
				if code, _, body := doReq(t, "DELETE", ts.URL+"/subscriptions/"+subID, ""); code != http.StatusOK {
					t.Errorf("DELETE subscription: %d %s", code, body)
					return
				}
			}
		}(sgor)
	}

	// One streaming alert follower held open across the writer burst.
	streamDone := make(chan struct{})
	streamReq, err := http.NewRequest("GET", ts.URL+"/docs/"+docID+"/alerts?follow=30s", nil)
	if err != nil {
		t.Fatal(err)
	}
	streamResp, err := http.DefaultClient.Do(streamReq)
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		defer close(streamDone)
		sc := bufio.NewScanner(streamResp.Body)
		for sc.Scan() { // drain until the body is closed below
		}
	}()

	// Writers: concurrent PUTs of the same document. Conflicting writes
	// are serialized by the store; every 2xx must carry a version.
	var writerWG sync.WaitGroup
	for wtr := 0; wtr < writers; wtr++ {
		writerWG.Add(1)
		go func(wtr int) {
			defer writerWG.Done()
			for seq := 0; seq < putsPerWriter; seq++ {
				code, _, body := doReq(t, "PUT", ts.URL+"/docs/"+docID, makeDoc(wtr, seq))
				if code != http.StatusCreated && code != http.StatusOK {
					t.Errorf("PUT w%d s%d: %d %s", wtr, seq, code, body)
					return
				}
				var putResp struct {
					Version int `json:"version"`
				}
				if err := json.Unmarshal([]byte(body), &putResp); err != nil || putResp.Version < 1 {
					t.Errorf("PUT w%d s%d response %q: %v", wtr, seq, body, err)
					return
				}
			}
		}(wtr)
	}

	writerWG.Wait()
	close(stop)
	readerWG.Wait()
	_ = streamResp.Body.Close() // unblocks the follower's scanner
	<-streamDone

	// Quiet now: the full history must be acknowledged and consistent.
	code, hdr, body := doReq(t, "GET", ts.URL+"/docs/"+docID, "")
	if code != http.StatusOK {
		t.Fatalf("final GET latest: %d %s", code, body)
	}
	if got := hdr.Get("X-Xydiff-Version"); got != fmt.Sprint(writers*putsPerWriter) {
		t.Fatalf("final version = %s, want %d", got, writers*putsPerWriter)
	}
	for v := 1; v <= writers*putsPerWriter; v++ {
		code, _, vbody := doReq(t, "GET", fmt.Sprintf("%s/docs/%s/versions/%d", ts.URL, docID, v), "")
		if code != http.StatusOK {
			t.Fatalf("final GET version %d: %d %s", v, code, vbody)
		}
		if !strings.HasPrefix(vbody, "<Catalog>") {
			t.Fatalf("version %d is not a catalog: %.80s", v, vbody)
		}
	}
}
