package server

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// gatedWriter is a ResponseWriter standing in for a consumer that stops
// reading: every body write blocks until the gate opens. It implements
// http.Flusher so the NDJSON handler accepts it.
type gatedWriter struct {
	mu       sync.Mutex
	header   http.Header
	code     int
	buf      bytes.Buffer
	gate     chan struct{}
	attempts atomic.Int64
}

func newGatedWriter() *gatedWriter {
	return &gatedWriter{header: make(http.Header), gate: make(chan struct{})}
}

func (w *gatedWriter) Header() http.Header { return w.header }

func (w *gatedWriter) WriteHeader(code int) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.code == 0 {
		w.code = code
	}
}

func (w *gatedWriter) Write(p []byte) (int, error) {
	w.attempts.Add(1)
	<-w.gate
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.Write(p)
}

func (w *gatedWriter) Flush() {}

func (w *gatedWriter) release() { close(w.gate) }

func (w *gatedWriter) lines() []string {
	w.mu.Lock()
	defer w.mu.Unlock()
	var out []string
	for _, l := range strings.Split(w.buf.String(), "\n") {
		if strings.TrimSpace(l) != "" {
			out = append(out, l)
		}
	}
	return out
}

// TestAlertStreamSlowConsumer pins down the bounded-buffer contract of
// the NDJSON alert stream: a consumer that stops reading holds at most
// StreamBuffer alerts plus the one in flight; everything beyond that is
// dropped, the loss is visible in the drop counter, and the diff path
// is never stalled.
func TestAlertStreamSlowConsumer(t *testing.T) {
	const streamBuffer = 4
	s, ts := newTestServer(t, Config{StreamBuffer: streamBuffer})

	sub := `{"id":"all","doc":"d","kinds":["insert"]}`
	if code, _, body := doReq(t, "POST", ts.URL+"/subscriptions", sub); code != http.StatusCreated {
		t.Fatalf("POST subscription: %d %s", code, body)
	}

	// Open the stream against a consumer that never reads.
	w := newGatedWriter()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	req := httptest.NewRequest("GET", "/docs/d/alerts?follow=30s", nil).WithContext(ctx)
	streamDone := make(chan struct{})
	go func() {
		defer close(streamDone)
		s.Handler().ServeHTTP(w, req)
	}()

	// Version 1 raises nothing; each later PUT appends one product and
	// raises exactly one insert alert.
	product := func(n int) string {
		var b strings.Builder
		b.WriteString("<Catalog><Category>")
		for i := 0; i <= n; i++ {
			b.WriteString("<Product><Name>p")
			b.WriteString(strings.Repeat("x", i+1))
			b.WriteString("</Name></Product>")
		}
		b.WriteString("</Category></Catalog>")
		return b.String()
	}
	if code, _, body := doReq(t, "PUT", ts.URL+"/docs/d", product(0)); code != http.StatusCreated {
		t.Fatalf("PUT v1: %d %s", code, body)
	}

	// First alert: wait until the handler is wedged writing it to the
	// stalled consumer, so the buffer accounting below is deterministic.
	if code, _, body := doReq(t, "PUT", ts.URL+"/docs/d", product(1)); code != http.StatusOK {
		t.Fatalf("PUT v2: %d %s", code, body)
	}
	waitDeadline := time.Now().Add(5 * time.Second)
	for w.attempts.Load() == 0 {
		if time.Now().After(waitDeadline) {
			t.Fatal("stream never tried to write the first alert")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Flood: 14 more alerts against a full pipe. One is in flight,
	// StreamBuffer fit in the channel, the rest must be dropped — and
	// every PUT still completes immediately (bounded buffering means the
	// write path never waits on a consumer).
	const flood = 14
	for i := 0; i < flood; i++ {
		if code, _, body := doReq(t, "PUT", ts.URL+"/docs/d", product(i+2)); code != http.StatusOK {
			t.Fatalf("PUT flood %d: %d %s", i, code, body)
		}
	}
	raised := 1 + flood

	// Let the consumer drain: the in-flight alert plus the buffered ones
	// arrive, no more.
	w.release()
	wantDelivered := 1 + streamBuffer
	waitDeadline = time.Now().Add(5 * time.Second)
	for len(w.lines()) < wantDelivered {
		if time.Now().After(waitDeadline) {
			t.Fatalf("delivered %d alerts, want %d", len(w.lines()), wantDelivered)
		}
		time.Sleep(5 * time.Millisecond)
	}
	time.Sleep(50 * time.Millisecond) // any extra delivery would be a bug
	cancel()
	<-streamDone

	lines := w.lines()
	if len(lines) != wantDelivered {
		t.Errorf("delivered %d alerts, want exactly %d (1 in flight + %d buffered)",
			len(lines), wantDelivered, streamBuffer)
	}
	for _, l := range lines {
		var a struct {
			Doc  string `json:"doc"`
			Kind string `json:"kind"`
		}
		if err := json.Unmarshal([]byte(l), &a); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", l, err)
		}
		if a.Doc != "d" || a.Kind != "insert" {
			t.Errorf("unexpected alert %q", l)
		}
	}

	// Drop accounting: delivered + dropped covers everything raised.
	dropped := s.Metrics().StreamDropped()
	if want := int64(raised - wantDelivered); dropped != want {
		t.Errorf("dropped = %d, want %d (raised %d, delivered %d)", dropped, want, raised, wantDelivered)
	}

	// And the loss is on /metrics.
	_, _, metricsBody := doReq(t, "GET", ts.URL+"/metrics", "")
	if !strings.Contains(metricsBody, "xydiffd_alert_stream_dropped_total") {
		t.Error("/metrics missing xydiffd_alert_stream_dropped_total")
	}
}
