package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"xydiff/internal/crawl"
)

// startTestCrawler enables crawling on s and runs the crawler until the
// test ends.
func startTestCrawler(t *testing.T, s *Server, cfg crawl.Config) *crawl.Crawler {
	t.Helper()
	c := s.EnableCrawl(crawl.NewRegistry(), cfg)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		if err := c.Run(ctx); err != nil {
			t.Errorf("crawler: %v", err)
		}
	}()
	t.Cleanup(func() {
		cancel()
		<-done
	})
	return c
}

// TestCrawlConditionalGetBypassesDiff wires a crawler into the server
// against a static origin and proves the 304 path never reaches the
// diff pipeline: the diff counter stays frozen while the not-modified
// counter climbs.
func TestCrawlConditionalGetBypassesDiff(t *testing.T) {
	origin := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("ETag", `"fixed"`)
		if r.Header.Get("If-None-Match") == `"fixed"` {
			w.WriteHeader(http.StatusNotModified)
			return
		}
		w.Header().Set("Content-Type", "application/xml")
		fmt.Fprint(w, catalogV1)
	}))
	defer origin.Close()

	s, ts := newTestServer(t, Config{})
	c := startTestCrawler(t, s, crawl.Config{
		MinInterval:     15 * time.Millisecond,
		MaxInterval:     60 * time.Millisecond,
		Concurrency:     2,
		PerHostInterval: -1,
	})

	// Seed one versioning diff through the normal PUT path so the diff
	// counter is provably live before crawling starts.
	if code, _, body := doReq(t, "PUT", ts.URL+"/docs/seed", catalogV1); code != http.StatusCreated {
		t.Fatalf("PUT seed v1: %d %s", code, body)
	}
	if code, _, body := doReq(t, "PUT", ts.URL+"/docs/seed", catalogV2); code != http.StatusOK {
		t.Fatalf("PUT seed v2: %d %s", code, body)
	}
	diffsBefore := s.Metrics().DiffCount()
	if diffsBefore == 0 {
		t.Fatal("diff counter not live after two PUTs")
	}

	// Register the static source over the HTTP API.
	code, _, body := doReq(t, "POST", ts.URL+"/sources", `{"id":"static","url":"`+origin.URL+`/doc"}`)
	if code != http.StatusCreated {
		t.Fatalf("POST /sources: %d %s", code, body)
	}

	// Wait for the first 200 plus a few revalidations.
	deadline := time.Now().Add(5 * time.Second)
	var src crawl.Source
	for {
		var ok bool
		src, ok = c.Registry().Get("static")
		if ok && src.NotModified >= 3 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for 304s: %+v", src)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// The initial 200 installed version 1 — which is not a diff — and
	// every revalidation after it skipped the pipeline entirely.
	if got := s.Metrics().DiffCount(); got != diffsBefore {
		t.Errorf("diff counter moved from %d to %d during 304-only crawling", diffsBefore, got)
	}
	if code, _, body := doReq(t, "GET", ts.URL+"/docs/static/versions/1", ""); code != http.StatusOK || body != catalogV1 {
		t.Errorf("crawled document not stored: %d %s", code, body)
	}

	// The crawler's counters and gauges are all on /metrics.
	_, _, metricsBody := doReq(t, "GET", ts.URL+"/metrics", "")
	for _, name := range []string{
		"xydiffd_crawl_fetches_total",
		"xydiffd_crawl_not_modified_total",
		"xydiffd_crawl_ingests_total",
		"xydiffd_crawl_retries_total",
		"xydiffd_crawl_failures_total",
		"xydiffd_crawl_circuit_opens_total",
		"xydiffd_crawl_open_circuits",
		"xydiffd_crawl_queue_depth",
		"xydiffd_crawl_sources",
	} {
		if !strings.Contains(metricsBody, "\n"+name+" ") {
			t.Errorf("/metrics missing %s", name)
		}
	}
	if !strings.Contains(metricsBody, "xydiffd_crawl_sources 1") {
		t.Error("/metrics sources gauge is not 1")
	}

	// /healthz carries the crawl summary.
	_, _, healthBody := doReq(t, "GET", ts.URL+"/healthz", "")
	var health map[string]any
	if err := json.Unmarshal([]byte(healthBody), &health); err != nil {
		t.Fatalf("parse healthz: %v", err)
	}
	ch, ok := health["crawl"].(map[string]any)
	if !ok {
		t.Fatalf("healthz has no crawl block: %s", healthBody)
	}
	if ch["sources"].(float64) != 1 {
		t.Errorf("healthz crawl sources = %v", ch["sources"])
	}
}

// TestSourcesAPI covers the CRUD surface: list, get, delete, and the
// error paths.
func TestSourcesAPI(t *testing.T) {
	origin := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, "<doc/>")
	}))
	defer origin.Close()

	s, ts := newTestServer(t, Config{})
	startTestCrawler(t, s, crawl.Config{
		MinInterval:     time.Minute, // nothing needs to be fetched here
		MaxInterval:     time.Hour,
		PerHostInterval: -1,
	})

	// Invalid bodies and URLs are rejected.
	if code, _, _ := doReq(t, "POST", ts.URL+"/sources", `{"id":"x","url":"ftp://nope"}`); code != http.StatusBadRequest {
		t.Errorf("bad scheme: code %d", code)
	}
	if code, _, _ := doReq(t, "POST", ts.URL+"/sources", `{"id":"x","url":"http://ok.example/x","extra":1}`); code != http.StatusBadRequest {
		t.Errorf("unknown field: code %d", code)
	}

	for _, id := range []string{"a", "b"} {
		body := `{"id":"` + id + `","url":"` + origin.URL + `/` + id + `"}`
		if code, _, resp := doReq(t, "POST", ts.URL+"/sources", body); code != http.StatusCreated {
			t.Fatalf("POST source %s: %d %s", id, code, resp)
		}
	}
	code, _, listBody := doReq(t, "GET", ts.URL+"/sources", "")
	if code != http.StatusOK {
		t.Fatalf("GET /sources: %d", code)
	}
	var list []map[string]any
	if err := json.Unmarshal([]byte(listBody), &list); err != nil {
		t.Fatal(err)
	}
	if len(list) != 2 || list[0]["id"] != "a" || list[1]["id"] != "b" {
		t.Errorf("list = %s", listBody)
	}

	if code, _, _ := doReq(t, "GET", ts.URL+"/sources/a", ""); code != http.StatusOK {
		t.Errorf("GET source a: %d", code)
	}
	if code, _, _ := doReq(t, "GET", ts.URL+"/sources/zz", ""); code != http.StatusNotFound {
		t.Errorf("GET missing source: %d", code)
	}
	if code, _, _ := doReq(t, "DELETE", ts.URL+"/sources/a", ""); code != http.StatusOK {
		t.Errorf("DELETE source a: %d", code)
	}
	if code, _, _ := doReq(t, "DELETE", ts.URL+"/sources/a", ""); code != http.StatusNotFound {
		t.Errorf("DELETE again: %d", code)
	}
}

// TestSourcesAPIWithoutCrawler: a server running without the
// acquisition layer answers the source API with 503.
func TestSourcesAPIWithoutCrawler(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for _, probe := range []struct{ method, path, body string }{
		{"GET", "/sources", ""},
		{"POST", "/sources", `{"id":"x","url":"http://ok.example/x"}`},
		{"GET", "/sources/x", ""},
		{"DELETE", "/sources/x", ""},
	} {
		if code, _, _ := doReq(t, probe.method, ts.URL+probe.path, probe.body); code != http.StatusServiceUnavailable {
			t.Errorf("%s %s without crawler: code %d, want 503", probe.method, probe.path, code)
		}
	}
}
