package server

import (
	"sync"

	"xydiff/internal/alert"
)

// alertLog keeps the most recent alerts per document so GET
// /docs/{id}/alerts can answer without a live subscription; streaming
// consumers use the alerter's ChanNotifier instead.
type alertLog struct {
	mu    sync.Mutex
	cap   int
	byDoc map[string][]alert.Alert
}

func newAlertLog(capPerDoc int) *alertLog {
	if capPerDoc < 1 {
		capPerDoc = 1
	}
	return &alertLog{cap: capPerDoc, byDoc: make(map[string][]alert.Alert)}
}

func (l *alertLog) add(alerts []alert.Alert) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, a := range alerts {
		log := append(l.byDoc[a.DocID], a)
		if over := len(log) - l.cap; over > 0 {
			log = append(log[:0], log[over:]...)
		}
		l.byDoc[a.DocID] = log
	}
}

func (l *alertLog) forDoc(id string) []alert.Alert {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]alert.Alert, len(l.byDoc[id]))
	copy(out, l.byDoc[id])
	return out
}
