// Package server exposes the Xyleme change-control pipeline — the
// paper's crawler → repository → diff → delta storage → alerter loop
// (Figure 1) — as a long-lived HTTP service. Installing a document
// version computes and stores the completed delta; any past version is
// reconstructible over HTTP; deltas (single or aggregated) are served
// as delta-XML; subscriptions raise alerts that can be polled or
// streamed. The server is production-shaped: diff work runs on a
// bounded worker pool with explicit backpressure, requests carry
// deadlines that propagate into the diff phases, and everything is
// observable through structured logs and a Prometheus /metrics
// endpoint.
package server

import (
	"context"
	"log/slog"
	"net/http"
	"runtime"
	"time"

	"xydiff/internal/alert"
	"xydiff/internal/crawl"
	"xydiff/internal/delta"
	"xydiff/internal/diff"
	"xydiff/internal/dom"
	"xydiff/internal/retry"
	"xydiff/internal/stats"
	"xydiff/internal/store"
	"xydiff/internal/vstore"
)

// Store is the versioned repository the server serves: the method set
// shared by the per-document engine (*store.Store) and the sharded,
// group-committed engine (*vstore.Store). The HTTP layer is
// engine-agnostic; engine-specific observability (per-shard group
// commit, version cache) is picked up through the optional
// storageStatser capability.
type Store interface {
	PutContext(ctx context.Context, id string, doc *dom.Node) (int, *delta.Delta, error)
	PutMatcherContext(ctx context.Context, id string, doc *dom.Node, matcher diff.Matcher) (int, *delta.Delta, error)
	Latest(id string) (*dom.Node, int, error)
	Version(id string, n int) (*dom.Node, error)
	Versions(id string) int
	IDs() []string
	Delta(id string, n int) (*delta.Delta, error)
	Aggregate(id string, from, to int) (*delta.Delta, error)
	SetObserver(store.Observer)
	SyncPolicy() store.SyncPolicy
	DurabilityStats() store.DurabilityStats
	RecoveryStats() store.RecoveryStats
}

// storageStatser is the optional capability the sharded engine adds:
// when the store implements it, /healthz grows a storage block and
// /metrics per-shard group-commit, compaction and cache series.
type storageStatser interface {
	StorageStats() vstore.StorageStats
}

// Config tunes the server. The zero value picks production defaults.
type Config struct {
	// Workers is the diff worker pool size (default GOMAXPROCS).
	Workers int
	// QueueDepth bounds jobs waiting for a worker; submissions beyond
	// it are shed with 503 (default 64).
	QueueDepth int
	// RequestTimeout bounds one request end to end, diff included
	// (default 30s). Alert streaming is exempt.
	RequestTimeout time.Duration
	// MaxBodyBytes caps an uploaded document version (default 16 MiB).
	MaxBodyBytes int64
	// MaxParseDepth caps element nesting depth of uploaded documents
	// (default 1000; negative disables the limit).
	MaxParseDepth int
	// MaxParseTokens caps XML token count of uploaded documents
	// (default 1,000,000; negative disables the limit).
	MaxParseTokens int64
	// AlertLogSize is how many recent alerts are kept per document for
	// the polling endpoint (default 1024).
	AlertLogSize int
	// StreamBuffer bounds the per-stream alert buffer of the NDJSON
	// endpoint; a consumer slower than the alert rate loses the excess
	// (counted in xydiffd_alert_stream_dropped_total) instead of
	// backpressuring the diff path (default 256).
	StreamBuffer int
	// Logger receives structured request and lifecycle logs (default
	// slog.Default).
	Logger *slog.Logger
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 30 * time.Second
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 16 << 20
	}
	if c.MaxParseDepth == 0 {
		c.MaxParseDepth = 1000
	}
	if c.MaxParseTokens == 0 {
		c.MaxParseTokens = 1_000_000
	}
	if c.AlertLogSize <= 0 {
		c.AlertLogSize = 1024
	}
	if c.StreamBuffer <= 0 {
		c.StreamBuffer = 256
	}
	if c.Logger == nil {
		c.Logger = slog.Default()
	}
	return c
}

// Server is the xydiffd HTTP service over one store.
type Server struct {
	cfg       Config
	store     Store
	alerter   *alert.Alerter
	collector *stats.Collector
	metrics   *Metrics
	pool      *pool
	alertLog  *alertLog
	log       *slog.Logger
	handler   http.Handler
	started   time.Time

	// shedBackoff grows the Retry-After hint while the diff queue keeps
	// rejecting submissions and resets once one gets through, so a
	// saturated server spreads its retry traffic instead of inviting it
	// all back one second later.
	shedBackoff *retry.Backoff

	// crawler is the optional embedded acquisition layer (EnableCrawl);
	// nil when the server only ingests over HTTP PUT.
	crawler  *crawl.Crawler
	crawlReg *crawl.Registry
}

// New wires a server around st. It installs the store's observer hook,
// so st must not have another observer; the server should be the only
// writer-side consumer of the store from here on.
func New(st Store, cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:       cfg,
		store:     st,
		alerter:   alert.New(),
		collector: stats.NewCollector(),
		metrics:   newMetrics(),
		pool:      newPool(cfg.Workers, cfg.QueueDepth),
		alertLog:  newAlertLog(cfg.AlertLogSize),
		log:       cfg.Logger,
		started:   time.Now(),
		shedBackoff: retry.New(retry.Policy{
			Base: time.Second, Max: 30 * time.Second, Multiplier: 2,
		}, time.Now().UnixNano()),
	}
	s.metrics.queueDepth = s.pool.depth
	s.metrics.queueCapacity = cfg.QueueDepth
	s.metrics.workers = cfg.Workers
	st.SetObserver(s.observe)
	s.handler = s.routes()
	return s
}

// Handler returns the fully middleware-wrapped HTTP handler.
func (s *Server) Handler() http.Handler { return s.handler }

// Alerter exposes the subscription system (for callers wiring their
// own sinks alongside the HTTP endpoints).
func (s *Server) Alerter() *alert.Alerter { return s.alerter }

// Metrics exposes the registry (used by tests and the daemon).
func (s *Server) Metrics() *Metrics { return s.metrics }

// Close drains the diff worker pool: queued jobs run to completion and
// new submissions fail with ErrClosed. Call after the HTTP listener has
// stopped accepting requests.
func (s *Server) Close() { s.pool.close() }

// observe is the store's observer hook: it runs under the document's
// write lock, in version order, once per successful versioning diff.
func (s *Server) observe(id string, version int, oldDoc, newDoc *dom.Node, r *diff.Result) {
	s.metrics.observeDiff(r.Matcher, [5]time.Duration{
		r.Timings.Phase1, r.Timings.Phase2, r.Timings.Phase3, r.Timings.Phase4, r.Timings.Phase5,
	})
	s.collector.Observe(oldDoc, newDoc, r.Delta)
	alerts := s.alerter.Notify(id, version, oldDoc, newDoc, r.Delta)
	if len(alerts) > 0 {
		s.alertLog.add(alerts)
		s.metrics.addAlerts(len(alerts))
	}
}

// routes builds the endpoint table. Route names double as the metrics
// route label.
func (s *Server) routes() http.Handler {
	mux := http.NewServeMux()
	mux.Handle("GET /healthz", s.wrap("healthz", s.handleHealthz))
	mux.Handle("GET /metrics", s.wrap("metrics", s.handleMetrics))
	mux.Handle("GET /docs", s.wrap("docs_list", s.handleListDocs))
	mux.Handle("PUT /docs/{id}", s.wrap("doc_put", s.handlePutDoc))
	mux.Handle("GET /docs/{id}", s.wrap("doc_latest", s.handleGetLatest))
	mux.Handle("GET /docs/{id}/versions/{n}", s.wrap("doc_version", s.handleGetVersion))
	mux.Handle("GET /docs/{id}/deltas/{spec}", s.wrap("doc_delta", s.handleGetDelta))
	mux.Handle("GET /docs/{id}/alerts", s.wrapStreaming("doc_alerts", s.handleGetAlerts))
	mux.Handle("POST /subscriptions", s.wrap("sub_create", s.handleCreateSubscription))
	mux.Handle("GET /subscriptions", s.wrap("sub_list", s.handleListSubscriptions))
	mux.Handle("DELETE /subscriptions/{id}", s.wrap("sub_delete", s.handleDeleteSubscription))
	mux.Handle("POST /sources", s.wrap("src_create", s.handleCreateSource))
	mux.Handle("GET /sources", s.wrap("src_list", s.handleListSources))
	mux.Handle("GET /sources/{id}", s.wrap("src_get", s.handleGetSource))
	mux.Handle("DELETE /sources/{id}", s.wrap("src_delete", s.handleDeleteSource))
	return mux
}

// EnableCrawl attaches the acquisition layer: sources registered in reg
// are polled on the adaptive schedule and ingested through the same
// parse limits and bounded diff pool as HTTP PUTs, and the /sources
// endpoints come alive. The crawler's change-rate signal is the
// server's own stats collector, so documents that also receive direct
// PUTs share one rate history. Call before the handler starts serving;
// the returned crawler still needs Run (the daemon owns its lifetime).
func (s *Server) EnableCrawl(reg *crawl.Registry, cfg crawl.Config) *crawl.Crawler {
	if cfg.Logger == nil {
		cfg.Logger = s.log
	}
	s.crawlReg = reg
	s.crawler = crawl.New(reg, s.crawlIngest, s.collector, cfg)
	return s.crawler
}
