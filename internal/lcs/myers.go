package lcs

// EditKind classifies one element of an edit script.
type EditKind uint8

// Edit kinds: elements kept, deleted from the first sequence, or
// inserted from the second.
const (
	Keep EditKind = iota
	Delete
	Insert
)

// Edit is one step of a minimal edit script between two sequences.
// For Keep and Delete, AIdx indexes the first sequence; for Keep and
// Insert, BIdx indexes the second.
type Edit struct {
	Kind EditKind
	AIdx int
	BIdx int
}

// Myers computes a minimal edit script between a and b using the
// greedy O((N+M)·D) algorithm of Myers (1986), the algorithm behind
// Unix diff. Lines are compared by string equality.
func Myers(a, b []string) []Edit {
	n, m := len(a), len(b)
	if n == 0 && m == 0 {
		return nil
	}
	max := n + m
	// v[k] = furthest x on diagonal k (offset by max).
	v := make([]int, 2*max+2)
	// trace of v per d for backtracking.
	var trace [][]int
	var dFound = -1
search:
	for d := 0; d <= max; d++ {
		snapshot := make([]int, len(v))
		copy(snapshot, v)
		trace = append(trace, snapshot)
		for k := -d; k <= d; k += 2 {
			var x int
			if k == -d || (k != d && v[max+k-1] < v[max+k+1]) {
				x = v[max+k+1] // down: insert from b
			} else {
				x = v[max+k-1] + 1 // right: delete from a
			}
			y := x - k
			for x < n && y < m && a[x] == b[y] {
				x++
				y++
			}
			v[max+k] = x
			if x >= n && y >= m {
				dFound = d
				break search
			}
		}
	}
	// Backtrack from (n, m).
	var rev []Edit
	x, y := n, m
	for d := dFound; d > 0; d-- {
		vPrev := trace[d]
		k := x - y
		var prevK int
		if k == -d || (k != d && vPrev[max+k-1] < vPrev[max+k+1]) {
			prevK = k + 1
		} else {
			prevK = k - 1
		}
		prevX := vPrev[max+prevK]
		prevY := prevX - prevK
		for x > prevX && y > prevY {
			x--
			y--
			rev = append(rev, Edit{Kind: Keep, AIdx: x, BIdx: y})
		}
		if x == prevX {
			y--
			rev = append(rev, Edit{Kind: Insert, AIdx: x, BIdx: y})
		} else {
			x--
			rev = append(rev, Edit{Kind: Delete, AIdx: x, BIdx: y})
		}
	}
	for x > 0 && y > 0 {
		x--
		y--
		rev = append(rev, Edit{Kind: Keep, AIdx: x, BIdx: y})
	}
	out := make([]Edit, len(rev))
	for i := range rev {
		out[i] = rev[len(rev)-1-i]
	}
	return out
}
