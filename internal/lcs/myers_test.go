package lcs

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// applyEdits reconstructs b from a and an edit script.
func applyEdits(a, b []string, edits []Edit) []string {
	var out []string
	for _, e := range edits {
		switch e.Kind {
		case Keep:
			out = append(out, a[e.AIdx])
		case Insert:
			out = append(out, b[e.BIdx])
		case Delete:
			// skip a[e.AIdx]
		}
	}
	return out
}

func editCost(edits []Edit) int {
	d := 0
	for _, e := range edits {
		if e.Kind != Keep {
			d++
		}
	}
	return d
}

func lines(s string) []string {
	if s == "" {
		return nil
	}
	return strings.Split(s, "")
}

func TestMyersKnownCases(t *testing.T) {
	cases := []struct {
		a, b string
		d    int
	}{
		{"", "", 0},
		{"abc", "abc", 0},
		{"abc", "", 3},
		{"", "abc", 3},
		{"abcabba", "cbabac", 5}, // Myers' paper example, D=5
		{"a", "b", 2},
	}
	for _, c := range cases {
		edits := Myers(lines(c.a), lines(c.b))
		if got := editCost(edits); got != c.d {
			t.Errorf("Myers(%q,%q) cost %d, want %d", c.a, c.b, got, c.d)
		}
		got := strings.Join(applyEdits(lines(c.a), lines(c.b), edits), "")
		if got != c.b {
			t.Errorf("Myers(%q,%q) reconstructs %q", c.a, c.b, got)
		}
	}
}

func TestMyersReconstructionQuick(t *testing.T) {
	f := func(a, b string) bool {
		if len(a) > 30 {
			a = a[:30]
		}
		if len(b) > 30 {
			b = b[:30]
		}
		la, lb := lines(a), lines(b)
		edits := Myers(la, lb)
		return strings.Join(applyEdits(la, lb, edits), "") == b
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestMyersMinimalAgainstLCS(t *testing.T) {
	// Minimal edit distance = len(a)+len(b)-2*LCS.
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 200; trial++ {
		a := randString(rng, 12, "ab")
		b := randString(rng, 12, "ab")
		edits := Myers(lines(a), lines(b))
		want := len(a) + len(b) - 2*len(lcsStrings(a, b))
		if got := editCost(edits); got != want {
			t.Fatalf("Myers(%q,%q) cost %d, want %d", a, b, got, want)
		}
	}
}

func TestMyersEditIndicesMonotone(t *testing.T) {
	edits := Myers(lines("abcabba"), lines("cbabac"))
	ai, bi := 0, 0
	for _, e := range edits {
		switch e.Kind {
		case Keep:
			if e.AIdx != ai || e.BIdx != bi {
				t.Fatalf("keep at a=%d b=%d, cursor a=%d b=%d", e.AIdx, e.BIdx, ai, bi)
			}
			ai++
			bi++
		case Delete:
			if e.AIdx != ai {
				t.Fatalf("delete at a=%d, cursor %d", e.AIdx, ai)
			}
			ai++
		case Insert:
			if e.BIdx != bi {
				t.Fatalf("insert at b=%d, cursor %d", e.BIdx, bi)
			}
			bi++
		}
	}
}
