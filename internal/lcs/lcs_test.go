package lcs

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func lcsStrings(a, b string) string {
	pairs := Longest(len(a), len(b), func(i, j int) bool { return a[i] == b[j] })
	out := make([]byte, len(pairs))
	for i, p := range pairs {
		out[i] = a[p.AIdx]
	}
	return string(out)
}

func TestLongestKnownCases(t *testing.T) {
	cases := []struct{ a, b, want string }{
		{"", "", ""},
		{"abc", "", ""},
		{"", "abc", ""},
		{"abc", "abc", "abc"},
		{"abcbdab", "bdcaba", "bdab"}, // classic CLRS example (length 4)
		{"xyz", "abc", ""},
		{"aggtab", "gxtxayb", "gtab"},
	}
	for _, c := range cases {
		got := lcsStrings(c.a, c.b)
		if len(got) != len(c.want) {
			t.Errorf("lcs(%q,%q) = %q (len %d), want length %d", c.a, c.b, got, len(got), len(c.want))
		}
	}
}

func isSubsequence(sub, s string) bool {
	i := 0
	for j := 0; j < len(s) && i < len(sub); j++ {
		if s[j] == sub[i] {
			i++
		}
	}
	return i == len(sub)
}

func TestLongestIsCommonSubsequenceQuick(t *testing.T) {
	f := func(a, b string) bool {
		if len(a) > 40 {
			a = a[:40]
		}
		if len(b) > 40 {
			b = b[:40]
		}
		got := lcsStrings(a, b)
		return isSubsequence(got, a) && isSubsequence(got, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// bruteLCSLen is an exponential oracle for small inputs.
func bruteLCSLen(a, b string) int {
	if a == "" || b == "" {
		return 0
	}
	if a[0] == b[0] {
		return 1 + bruteLCSLen(a[1:], b[1:])
	}
	x, y := bruteLCSLen(a[1:], b), bruteLCSLen(a, b[1:])
	if x > y {
		return x
	}
	return y
}

func TestLongestOptimalSmall(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		a := randString(rng, 8, "abc")
		b := randString(rng, 8, "abc")
		if got, want := len(lcsStrings(a, b)), bruteLCSLen(a, b); got != want {
			t.Fatalf("lcs(%q,%q) length %d, brute force %d", a, b, got, want)
		}
	}
}

func randString(rng *rand.Rand, maxLen int, alphabet string) string {
	n := rng.Intn(maxLen + 1)
	out := make([]byte, n)
	for i := range out {
		out[i] = alphabet[rng.Intn(len(alphabet))]
	}
	return string(out)
}

func TestMaxWeightIncreasingBasic(t *testing.T) {
	// Keys 5 3 4 8 6 7 with unit weights: LIS 3 4 6 7.
	items := unitItems([]int{5, 3, 4, 8, 6, 7})
	sel := MaxWeightIncreasing(items)
	keys := selectedKeys(items, sel)
	want := []int{3, 4, 6, 7}
	if !equalInts(keys, want) {
		t.Errorf("LIS keys = %v, want %v", keys, want)
	}
}

func TestMaxWeightIncreasingWeightBeatsLength(t *testing.T) {
	// A single heavy item out of order should beat two light ones.
	items := []Item{{Key: 10, Weight: 100}, {Key: 1, Weight: 1}, {Key: 2, Weight: 1}}
	sel := MaxWeightIncreasing(items)
	if len(sel) != 1 || items[sel[0]].Key != 10 {
		t.Errorf("selection = %v, want the heavy item", selectedKeys(items, sel))
	}
}

func TestMaxWeightIncreasingEmptyAndSingle(t *testing.T) {
	if got := MaxWeightIncreasing(nil); got != nil {
		t.Errorf("empty selection = %v", got)
	}
	sel := MaxWeightIncreasing([]Item{{Key: 4, Weight: 2}})
	if len(sel) != 1 || sel[0] != 0 {
		t.Errorf("single selection = %v", sel)
	}
}

// bruteMaxWeight enumerates all increasing subsequences.
func bruteMaxWeight(items []Item) float64 {
	best := 0.0
	var rec func(i int, lastKey int, w float64)
	rec = func(i int, lastKey int, w float64) {
		if w > best {
			best = w
		}
		for j := i; j < len(items); j++ {
			if items[j].Key > lastKey {
				rec(j+1, items[j].Key, w+items[j].Weight)
			}
		}
	}
	rec(0, -1<<62, 0)
	return best
}

func TestMaxWeightIncreasingOptimalSmall(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		n := rng.Intn(9)
		items := make([]Item, n)
		for i := range items {
			items[i] = Item{Key: rng.Intn(12), Weight: float64(1 + rng.Intn(5))}
		}
		sel := MaxWeightIncreasing(items)
		got := 0.0
		lastKey := -1 << 62
		for _, idx := range sel {
			if items[idx].Key <= lastKey {
				t.Fatalf("selection not strictly increasing: %v", selectedKeys(items, sel))
			}
			lastKey = items[idx].Key
			got += items[idx].Weight
		}
		if want := bruteMaxWeight(items); got != want {
			t.Fatalf("weight %v, brute force %v (items %v)", got, want, items)
		}
	}
}

func TestMaxWeightIncreasingSelectionSorted(t *testing.T) {
	f := func(keys []int) bool {
		items := unitItems(keys)
		sel := MaxWeightIncreasing(items)
		for i := 1; i < len(sel); i++ {
			if sel[i] <= sel[i-1] {
				return false
			}
			if items[sel[i]].Key <= items[sel[i-1]].Key {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestWindowedIncreasingMatchesExactWhenSmall(t *testing.T) {
	items := unitItems([]int{5, 3, 4, 8, 6, 7})
	exact := MaxWeightIncreasing(items)
	win := WindowedIncreasing(items, 50)
	if !equalInts(exact, win) {
		t.Errorf("windowed(50) = %v, exact = %v", win, exact)
	}
	if got := WindowedIncreasing(items, 0); !equalInts(exact, got) {
		t.Errorf("window 0 should mean exact")
	}
}

func TestWindowedIncreasingPaperExample(t *testing.T) {
	// The paper's Figure 3 discussion: v1..v6 map to w-positions
	// 6,1,2,5,3,4 roughly — cutting the list in two blocks finds
	// (v2,v3) and (v5,v6) and misses v4. Reproduce the shape: the
	// heuristic must return a valid increasing subsequence that can be
	// shorter than the optimum.
	items := unitItems([]int{9, 1, 2, 6, 3, 4})
	exact := MaxWeightIncreasing(items) // 1 2 3 4: length 4
	win := WindowedIncreasing(items, 3) // blocks {9,1,2} and {6,3,4}
	if len(exact) != 4 {
		t.Fatalf("exact length = %d, want 4", len(exact))
	}
	lastKey := -1 << 62
	for _, idx := range win {
		if items[idx].Key <= lastKey {
			t.Fatalf("windowed result not increasing: %v", selectedKeys(items, win))
		}
		lastKey = items[idx].Key
	}
	if len(win) > len(exact) {
		t.Fatalf("heuristic cannot beat the optimum")
	}
}

func TestWindowedIncreasingAlwaysValidQuick(t *testing.T) {
	f := func(keys []int, windowRaw uint8) bool {
		window := int(windowRaw%10) + 1
		items := unitItems(keys)
		sel := WindowedIncreasing(items, window)
		lastIdx := -1
		lastKey, have := 0, false
		for _, idx := range sel {
			if idx <= lastIdx || (have && items[idx].Key <= lastKey) {
				return false
			}
			lastIdx, lastKey, have = idx, items[idx].Key, true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func unitItems(keys []int) []Item {
	items := make([]Item, len(keys))
	for i, k := range keys {
		items[i] = Item{Key: k, Weight: 1}
	}
	return items
}

func selectedKeys(items []Item, sel []int) []int {
	out := make([]int, len(sel))
	for i, idx := range sel {
		out[i] = items[idx].Key
	}
	return out
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
