// Package lcs bundles the subsequence algorithms the diff stack needs:
//
//   - a classic dynamic-programming longest common subsequence over
//     arbitrary equality predicates (used by the LaDiff-style baseline
//     and by tests as a ground-truth oracle),
//   - a Myers O(ND) difference algorithm over string slices (used by
//     the Unix-diff clone and the DiffMK-style baseline),
//   - a maximum-weight increasing subsequence in O(k log k) (used by
//     BULD Phase 5 to compute an optimal set of intra-parent moves,
//     where the cost of moving a node is its weight), and
//   - the paper's windowed heuristic: cut long child sequences into
//     blocks of bounded length, solve each block, and merge (Section
//     5.2, "a maximum length (e.g. 50)").
package lcs

import (
	"sort"
	"sync"
)

// Pair records one aligned element of a common subsequence: a[AIdx]
// corresponds to b[BIdx].
type Pair struct {
	AIdx, BIdx int
}

// Longest returns a longest common subsequence of the index ranges
// [0,na) and [0,nb), where eq reports element equality. It runs the
// classic O(na·nb) dynamic program; callers with large inputs should
// prefer Myers (for sequences) or MaxWeightIncreasing (for matchings).
func Longest(na, nb int, eq func(i, j int) bool) []Pair {
	if na == 0 || nb == 0 {
		return nil
	}
	// dp[i][j] = LCS length of a[i:], b[j:].
	dp := make([][]int32, na+1)
	cells := make([]int32, (na+1)*(nb+1))
	for i := range dp {
		dp[i] = cells[i*(nb+1) : (i+1)*(nb+1)]
	}
	for i := na - 1; i >= 0; i-- {
		for j := nb - 1; j >= 0; j-- {
			if eq(i, j) {
				dp[i][j] = dp[i+1][j+1] + 1
			} else if dp[i+1][j] >= dp[i][j+1] {
				dp[i][j] = dp[i+1][j]
			} else {
				dp[i][j] = dp[i][j+1]
			}
		}
	}
	pairs := make([]Pair, 0, dp[0][0])
	for i, j := 0, 0; i < na && j < nb; {
		switch {
		case eq(i, j):
			pairs = append(pairs, Pair{i, j})
			i++
			j++
		case dp[i+1][j] >= dp[i][j+1]:
			i++
		default:
			j++
		}
	}
	return pairs
}

// Item is one element of a candidate matching between two child lists:
// the element sits at position Key in the second list and moving it
// costs Weight. Items are presented in first-list order.
type Item struct {
	Key    int
	Weight float64
}

// MaxWeightIncreasing returns the indices (into items) of a maximum-
// weight subsequence whose Keys are strictly increasing. Given child
// pairs sorted by old position with Key = new position, the selected
// items are the children that may stay in place; all others must move.
// Weights must be positive. Runs in O(k log k) time using a Fenwick
// tree over key ranks.
func MaxWeightIncreasing(items []Item) []int {
	k := len(items)
	if k == 0 {
		return nil
	}
	s := mwisPool.Get().(*mwisScratch)
	defer mwisPool.Put(s)

	// Rank the keys: sorted + deduplicated, rank looked up by binary
	// search. BULD Phase 5 runs this once per matched parent pair, so
	// the former per-call rank maps dominated delta-construction
	// allocations; the sorted-slice form reuses pooled capacity.
	keys := s.keys[:0]
	for _, it := range items {
		keys = append(keys, it.Key)
	}
	sort.Ints(keys)
	u := 0
	for i := 0; i < len(keys); i++ {
		if u == 0 || keys[i] != keys[u-1] {
			keys[u] = keys[i]
			u++
		}
	}
	keys = keys[:u]
	s.keys = keys

	// Fenwick tree over ranks 1..u holding, per prefix, the best
	// (total weight, item index) chain ending at a key of that rank.
	s.tree = grown(s.tree, u+1)
	tree := s.tree
	for i := range tree {
		tree[i].idx = -1 // mark empty; the zero value would alias item 0
	}
	s.prev = grown(s.prev, k)
	prev := s.prev
	for i := range prev {
		prev[i] = -1
	}
	for i, it := range items {
		r := sort.SearchInts(keys, it.Key) + 1 // ranks are 1-based
		// Best chain using keys strictly smaller than it.Key.
		pre := query(tree, r-1)
		w := it.Weight
		if pre.idx >= 0 {
			w += pre.weight
			prev[i] = pre.idx
		}
		update(tree, r, chain{weight: w, idx: i})
	}
	top := query(tree, u)
	// Reconstruct.
	rev := s.rev[:0]
	for i := top.idx; i >= 0; i = prev[i] {
		rev = append(rev, i)
	}
	s.rev = rev
	out := make([]int, len(rev))
	for i := range rev {
		out[i] = rev[len(rev)-1-i]
	}
	return out
}

// mwisScratch is the reusable working set of one MaxWeightIncreasing
// call; pooling it makes repeated Phase 5 invocations allocation-free
// apart from the returned index slice.
type mwisScratch struct {
	keys []int
	tree []chain
	prev []int
	rev  []int
}

var mwisPool = sync.Pool{New: func() any { return new(mwisScratch) }}

func grown[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	return s[:n]
}

type chain struct {
	weight float64
	idx    int // -1 means empty
}

func query(tree []chain, r int) chain {
	best := chain{idx: -1}
	for ; r > 0; r -= r & (-r) {
		if tree[r].idx >= 0 && (best.idx < 0 || tree[r].weight > best.weight) {
			best = tree[r]
		}
	}
	return best
}

func update(tree []chain, r int, c chain) {
	for ; r < len(tree); r += r & (-r) {
		if tree[r].idx < 0 || c.weight > tree[r].weight {
			tree[r] = c
		}
	}
}

// WindowedIncreasing is the paper's performance heuristic for long
// child lists: items are cut into blocks of at most window elements and
// MaxWeightIncreasing runs on each block; the per-block selections are
// then merged by a second maximum-weight pass over the (much smaller)
// selected set, which keeps the global increasing-key invariant without
// letting one out-of-place element suppress whole later blocks. The
// result is a valid but possibly sub-optimal increasing subsequence:
// elements dropped inside a block (the paper's v4 example) cannot be
// recovered by the merge.
func WindowedIncreasing(items []Item, window int) []int {
	if window <= 0 || len(items) <= window {
		return MaxWeightIncreasing(items)
	}
	var selected []int
	for start := 0; start < len(items); start += window {
		end := start + window
		if end > len(items) {
			end = len(items)
		}
		for _, idx := range MaxWeightIncreasing(items[start:end]) {
			selected = append(selected, start+idx)
		}
	}
	sub := make([]Item, len(selected))
	for i, idx := range selected {
		sub[i] = items[idx]
	}
	out := make([]int, 0, len(selected))
	for _, i := range MaxWeightIncreasing(sub) {
		out = append(out, selected[i])
	}
	return out
}
