package lcs

import (
	"fmt"
	"math/rand"
	"testing"
)

func randItems(n, keyRange int, seed int64) []Item {
	rng := rand.New(rand.NewSource(seed))
	items := make([]Item, n)
	for i := range items {
		items[i] = Item{Key: rng.Intn(keyRange), Weight: 1 + rng.Float64()*10}
	}
	return items
}

func BenchmarkMaxWeightIncreasing(b *testing.B) {
	for _, n := range []int{100, 1000, 10000} {
		items := randItems(n, n*2, int64(n))
		b.Run(sizeName(n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				MaxWeightIncreasing(items)
			}
		})
	}
}

func BenchmarkWindowedIncreasing(b *testing.B) {
	items := randItems(10000, 20000, 7)
	b.Run("window=50", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			WindowedIncreasing(items, 50)
		}
	})
	b.Run("exact", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			MaxWeightIncreasing(items)
		}
	})
}

func BenchmarkMyers(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	words := []string{"alpha", "beta", "gamma", "delta"}
	mk := func(n int) []string {
		out := make([]string, n)
		for i := range out {
			out[i] = words[rng.Intn(len(words))]
		}
		return out
	}
	x, y := mk(500), mk(500)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Myers(x, y)
	}
}

func sizeName(n int) string { return fmt.Sprintf("n=%d", n) }
