package index

import (
	"math/rand"
	"testing"

	"xydiff/internal/changesim"
	"xydiff/internal/diff"
	"xydiff/internal/dom"
	"xydiff/internal/xid"
)

func doc(t *testing.T, s string) *dom.Node {
	t.Helper()
	d, err := dom.ParseString(s)
	if err != nil {
		t.Fatal(err)
	}
	xid.Assign(d)
	return d
}

func TestAddDocumentAndSearch(t *testing.T) {
	ix := New()
	d := doc(t, `<cat><p>digital cameras</p><p>analog cameras rule</p></cat>`)
	ix.AddDocument("d1", d)
	hits := ix.Search("cameras")
	if len(hits) != 2 {
		t.Fatalf("cameras hits = %v", hits)
	}
	if got := ix.Search("CAMERAS"); len(got) != 2 {
		t.Error("search should be case-insensitive")
	}
	if got := ix.Search("film"); got != nil {
		t.Errorf("missing word hits = %v", got)
	}
	if hits[0].Count != 1 {
		t.Errorf("count = %d", hits[0].Count)
	}
	st := ix.Stats()
	if st.Docs != 1 || st.Words != 4 { // digital, cameras, analog, rule
		t.Errorf("stats = %+v", st)
	}
}

func TestSearchDocs(t *testing.T) {
	ix := New()
	ix.AddDocument("a", doc(t, `<r><p>go xml diff</p></r>`))
	ix.AddDocument("b", doc(t, `<r><p>xml warehouse</p></r>`))
	if got := ix.SearchDocs("xml"); len(got) != 2 {
		t.Errorf("xml docs = %v", got)
	}
	if got := ix.SearchDocs("xml", "diff"); len(got) != 1 || got[0] != "a" {
		t.Errorf("xml+diff docs = %v", got)
	}
	if got := ix.SearchDocs("xml", "nothere"); got != nil {
		t.Errorf("impossible conjunction = %v", got)
	}
}

func TestRemoveDocument(t *testing.T) {
	ix := New()
	ix.AddDocument("a", doc(t, `<r><p>unique words here</p></r>`))
	ix.RemoveDocument("a")
	if st := ix.Stats(); st.Words != 0 || st.Postings != 0 || st.Docs != 0 {
		t.Errorf("stats after removal = %+v", st)
	}
}

func TestAddDocumentReplaces(t *testing.T) {
	ix := New()
	ix.AddDocument("a", doc(t, `<r><p>first version</p></r>`))
	ix.AddDocument("a", doc(t, `<r><p>second version</p></r>`))
	if got := ix.Search("first"); got != nil {
		t.Errorf("stale postings: %v", got)
	}
	if got := ix.Search("second"); len(got) != 1 {
		t.Errorf("new postings: %v", got)
	}
}

func TestIncrementalMatchesRebuildSmall(t *testing.T) {
	oldDoc := doc(t, `<cat><p>alpha beta</p><q>gamma</q><mv>stable words</mv></cat>`)
	newDoc, err := dom.ParseString(`<cat><q>gamma delta</q><mv>stable words</mv><n>inserted text</n></cat>`)
	if err != nil {
		t.Fatal(err)
	}
	d, err := diff.Diff(oldDoc, newDoc, diff.Options{})
	if err != nil {
		t.Fatal(err)
	}
	incremental := New()
	incremental.AddDocument("doc", oldDoc)
	incremental.ApplyDelta("doc", d)

	rebuilt := New()
	rebuilt.AddDocument("doc", newDoc)
	if !Equal(incremental, rebuilt) {
		t.Fatalf("incremental index diverged\nincremental: %+v\nrebuilt: %+v",
			incremental.Stats(), rebuilt.Stats())
	}
}

func TestIncrementalMatchesRebuildRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 25; trial++ {
		oldDoc := changesim.Catalog(rng, 2, 6)
		sim, err := changesim.Simulate(oldDoc, changesim.Uniform(0.15, int64(trial)))
		if err != nil {
			t.Fatal(err)
		}
		d, err := diff.Diff(oldDoc, sim.New, diff.Options{})
		if err != nil {
			t.Fatal(err)
		}
		incremental := New()
		incremental.AddDocument("doc", oldDoc)
		incremental.ApplyDelta("doc", d)
		rebuilt := New()
		rebuilt.AddDocument("doc", sim.New)
		if !Equal(incremental, rebuilt) {
			t.Fatalf("trial %d: incremental != rebuilt (%+v vs %+v)\ndelta:\n%s",
				trial, incremental.Stats(), rebuilt.Stats(), d)
		}
	}
}

func TestMovesAreFreeForTheIndex(t *testing.T) {
	oldDoc := doc(t, `<r><a><item>movable payload</item></a><b/></r>`)
	newDoc, _ := dom.ParseString(`<r><a/><b><item>movable payload</item></b></r>`)
	d, err := diff.Diff(oldDoc, newDoc, diff.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if d.Count().Moves != 1 {
		t.Skip("expected a move")
	}
	ix := New()
	ix.AddDocument("doc", oldDoc)
	before := ix.Stats()
	ix.ApplyDelta("doc", d)
	after := ix.Stats()
	if before != after {
		t.Errorf("move changed index stats: %+v -> %+v", before, after)
	}
	// The posting still resolves: same XID, now under <b>.
	hits := ix.Search("payload")
	if len(hits) != 1 {
		t.Fatalf("hits = %v", hits)
	}
	n := dom.FindByXID(newDoc, hits[0].XID)
	if n == nil || n.Parent.Parent.Name != "b" {
		t.Errorf("posting does not resolve to the moved node")
	}
}

func TestApplyDeltaEmpty(t *testing.T) {
	ix := New()
	ix.AddDocument("doc", doc(t, `<r><p>x</p></r>`))
	before := ix.Stats()
	ix.ApplyDelta("doc", nil)
	if ix.Stats() != before {
		t.Error("nil delta changed the index")
	}
}

func TestEqualDetectsDifferences(t *testing.T) {
	a, b := New(), New()
	a.AddDocument("d", doc(t, `<r><p>one two</p></r>`))
	b.AddDocument("d", doc(t, `<r><p>one two</p></r>`))
	if !Equal(a, b) {
		t.Fatal("identical indexes unequal")
	}
	b.AddDocument("e", doc(t, `<r><p>three</p></r>`))
	if Equal(a, b) {
		t.Fatal("different indexes equal")
	}
}

func TestTokenize(t *testing.T) {
	got := tokenize("Hello, hello world! x2 naïve café")
	if got["hello"] != 2 {
		t.Errorf("hello count = %d", got["hello"])
	}
	if got["world"] != 1 || got["x2"] != 1 {
		t.Errorf("tokens = %v", got)
	}
	if got["naïve"] != 1 || got["café"] != 1 {
		t.Errorf("unicode tokens = %v", got)
	}
	if len(tokenize("  ,;!  ")) != 0 {
		t.Error("punctuation-only text produced tokens")
	}
}
