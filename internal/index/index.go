// Package index implements the warehouse's full-text index and its
// delta-driven maintenance, the paper's Section 2 "Indexing"
// motivation: "we maintain a full-text index over a large volume of XML
// documents ... we store structural information for every indexed word
// ... we are considering the possibility to use the diff to maintain
// such indexes."
//
// Postings record the persistent identifier (XID) of the text node
// containing each word, so the index carries structure: a posting can
// be resolved to a path in the current version of the document. Because
// XIDs are stable across versions, a delta updates the index with work
// proportional to the *change* — moves cost nothing at all — instead of
// re-indexing the document.
package index

import (
	"sort"
	"strings"
	"sync"
	"unicode"

	"xydiff/internal/delta"
	"xydiff/internal/dom"
)

// Posting locates one occurrence set of a word: the text node
// (identified by XID) of one document.
type Posting struct {
	DocID string
	XID   int64
	Count int // occurrences of the word within that text node
}

// Index is an inverted index word -> postings. Safe for concurrent use.
type Index struct {
	mu sync.RWMutex
	// words[word][docID][xid] = occurrence count.
	words map[string]map[string]map[int64]int
	// perDoc[docID][xid][word] = count, the reverse map that makes
	// removal by subtree cheap.
	perDoc map[string]map[int64]map[string]int
}

// New returns an empty index.
func New() *Index {
	return &Index{
		words:  make(map[string]map[string]map[int64]int),
		perDoc: make(map[string]map[int64]map[string]int),
	}
}

// AddDocument indexes every text node of the document (full indexing,
// the baseline the incremental path is compared against). Any existing
// postings for docID are replaced.
func (ix *Index) AddDocument(docID string, doc *dom.Node) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	ix.removeDocLocked(docID)
	dom.WalkPre(doc, func(n *dom.Node) bool {
		if n.Type == dom.Text && n.XID != 0 {
			ix.addTextLocked(docID, n.XID, n.Value)
		}
		return true
	})
}

// RemoveDocument drops all postings of a document.
func (ix *Index) RemoveDocument(docID string) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	ix.removeDocLocked(docID)
}

// ApplyDelta updates the index incrementally from a delta: deleted
// subtrees lose their postings, inserted subtrees gain theirs, updates
// swap the words of one text node, and moves cost nothing because
// postings are keyed by persistent identifiers. The documents
// themselves are not needed.
func (ix *Index) ApplyDelta(docID string, d *delta.Delta) {
	if d.Empty() {
		return
	}
	ix.mu.Lock()
	defer ix.mu.Unlock()
	for _, op := range d.Ops {
		switch o := op.(type) {
		case delta.Update:
			ix.removeTextLocked(docID, o.XID)
			ix.addTextLocked(docID, o.XID, o.New)
		case delta.Delete:
			if o.Subtree != nil {
				dom.WalkPre(o.Subtree, func(n *dom.Node) bool {
					if n.Type == dom.Text && n.XID != 0 {
						ix.removeTextLocked(docID, n.XID)
					}
					return true
				})
			}
		case delta.Insert:
			if o.Subtree != nil {
				dom.WalkPre(o.Subtree, func(n *dom.Node) bool {
					if n.Type == dom.Text && n.XID != 0 {
						ix.addTextLocked(docID, n.XID, n.Value)
					}
					return true
				})
			}
			// Moves and attribute operations: nothing to do. Postings are
			// keyed by XID, which moves preserve; attributes are not
			// indexed in this model.
		}
	}
}

// Search returns the postings for a word, sorted by document then XID.
func (ix *Index) Search(word string) []Posting {
	key := normalize(word)
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	var out []Posting
	for docID, byXID := range ix.words[key] {
		for xid, count := range byXID {
			out = append(out, Posting{DocID: docID, XID: xid, Count: count})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].DocID != out[j].DocID {
			return out[i].DocID < out[j].DocID
		}
		return out[i].XID < out[j].XID
	})
	return out
}

// SearchDocs returns the documents containing every given word.
func (ix *Index) SearchDocs(words ...string) []string {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	var docs map[string]bool
	for _, w := range words {
		byDoc := ix.words[normalize(w)]
		if len(byDoc) == 0 {
			return nil
		}
		if docs == nil {
			docs = make(map[string]bool, len(byDoc))
			for d := range byDoc {
				docs[d] = true
			}
			continue
		}
		for d := range docs {
			if _, ok := byDoc[d]; !ok {
				delete(docs, d)
			}
		}
	}
	out := make([]string, 0, len(docs))
	for d := range docs {
		out = append(out, d)
	}
	sort.Strings(out)
	return out
}

// Stats summarizes index contents.
type Stats struct {
	Words    int
	Postings int
	Docs     int
}

// Stats returns current index statistics.
func (ix *Index) Stats() Stats {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	st := Stats{Words: len(ix.words), Docs: len(ix.perDoc)}
	for _, byDoc := range ix.words {
		for _, byXID := range byDoc {
			st.Postings += len(byXID)
		}
	}
	return st
}

// Equal reports whether two indexes hold identical postings; tests use
// it to prove incremental maintenance matches full re-indexing.
func Equal(a, b *Index) bool {
	a.mu.RLock()
	defer a.mu.RUnlock()
	b.mu.RLock()
	defer b.mu.RUnlock()
	if len(a.words) != len(b.words) {
		return false
	}
	for w, aDocs := range a.words {
		bDocs := b.words[w]
		if len(aDocs) != len(bDocs) {
			return false
		}
		for d, aX := range aDocs {
			bX := bDocs[d]
			if len(aX) != len(bX) {
				return false
			}
			for x, c := range aX {
				if bX[x] != c {
					return false
				}
			}
		}
	}
	return true
}

func (ix *Index) addTextLocked(docID string, xid int64, text string) {
	for word, count := range tokenize(text) {
		byDoc := ix.words[word]
		if byDoc == nil {
			byDoc = make(map[string]map[int64]int)
			ix.words[word] = byDoc
		}
		byXID := byDoc[docID]
		if byXID == nil {
			byXID = make(map[int64]int)
			byDoc[docID] = byXID
		}
		byXID[xid] += count

		byNode := ix.perDoc[docID]
		if byNode == nil {
			byNode = make(map[int64]map[string]int)
			ix.perDoc[docID] = byNode
		}
		byWord := byNode[xid]
		if byWord == nil {
			byWord = make(map[string]int)
			byNode[xid] = byWord
		}
		byWord[word] += count
	}
}

func (ix *Index) removeTextLocked(docID string, xid int64) {
	byNode := ix.perDoc[docID]
	byWord := byNode[xid]
	for word := range byWord {
		byDoc := ix.words[word]
		if byXID := byDoc[docID]; byXID != nil {
			delete(byXID, xid)
			if len(byXID) == 0 {
				delete(byDoc, docID)
			}
		}
		if len(byDoc) == 0 {
			delete(ix.words, word)
		}
	}
	delete(byNode, xid)
	if len(byNode) == 0 {
		delete(ix.perDoc, docID)
	}
}

func (ix *Index) removeDocLocked(docID string) {
	byNode := ix.perDoc[docID]
	for xid := range byNode {
		ix.removeTextLocked(docID, xid)
	}
	delete(ix.perDoc, docID)
}

// tokenize lowercases and splits on non-letter/digit boundaries.
func tokenize(text string) map[string]int {
	out := make(map[string]int)
	start := -1
	flush := func(end int) {
		if start >= 0 {
			out[strings.ToLower(text[start:end])]++
			start = -1
		}
	}
	for i, r := range text {
		if unicode.IsLetter(r) || unicode.IsDigit(r) {
			if start < 0 {
				start = i
			}
			continue
		}
		flush(i)
	}
	flush(len(text))
	return out
}

func normalize(word string) string { return strings.ToLower(strings.TrimSpace(word)) }
