package xpathlite

import (
	"fmt"
	"strings"
	"testing"

	"xydiff/internal/dom"
)

const catalog = `<Catalog>
  <Category kind="photo">
    <Title>Cameras</Title>
    <Product status="new"><Name>tx123</Name><Price>$499</Price></Product>
    <Product><Name>zy456</Name><Price>$799</Price></Product>
  </Category>
  <Category kind="print">
    <Title>Printers</Title>
    <Product><Name>pr1</Name><Price>$120</Price></Product>
  </Category>
  <!-- promo -->
</Catalog>`

func doc(t *testing.T) *dom.Node {
	t.Helper()
	d, err := dom.ParseString(catalog)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func names(nodes []*dom.Node) string {
	var out []string
	for _, n := range nodes {
		switch n.Type {
		case dom.Text:
			out = append(out, "'"+n.Value+"'")
		case dom.Comment:
			out = append(out, "<!---->")
		case dom.Document:
			out = append(out, "#doc")
		default:
			out = append(out, n.Name)
		}
	}
	return strings.Join(out, " ")
}

func sel(t *testing.T, d *dom.Node, expr string) []*dom.Node {
	t.Helper()
	e, err := Compile(expr)
	if err != nil {
		t.Fatalf("Compile(%q): %v", expr, err)
	}
	return e.Select(d)
}

func TestSelectBasicPaths(t *testing.T) {
	d := doc(t)
	cases := []struct{ expr, want string }{
		{"/Catalog/Category/Title", "Title Title"},
		{"/Catalog/Category/Product/Name", "Name Name Name"},
		{"/Catalog/*/Title", "Title Title"},
		{"/", "#doc"},
		{"//Product", "Product Product Product"},
		{"//Name/text()", "'tx123' 'zy456' 'pr1'"},
		{"/Catalog/comment()", "<!---->"},
		{"/Catalog/node()", "Category Category <!---->"},
		{"//Title/..", "Category Category"},
		{"//Title/.", "Title Title"},
		{"/Nope", ""},
	}
	for _, c := range cases {
		if got := names(sel(t, d, c.expr)); got != c.want {
			t.Errorf("%s = %q, want %q", c.expr, got, c.want)
		}
	}
}

func TestSelectPositionPredicates(t *testing.T) {
	d := doc(t)
	cases := []struct{ expr, want string }{
		{"/Catalog/Category[1]/Title", "Title"},
		{"/Catalog/Category[2]/Product/Name/text()", "'pr1'"},
		{"/Catalog/Category[1]/Product[2]/Name/text()", "'zy456'"},
		{"/Catalog/Category[last()]/Title/text()", "'Printers'"},
		{"/Catalog/Category[3]", ""},
		{"//Product[1]", "Product Product"}, // first within each category
	}
	for _, c := range cases {
		if got := names(sel(t, d, c.expr)); got != c.want {
			t.Errorf("%s = %q, want %q", c.expr, got, c.want)
		}
	}
}

func TestSelectAttributePredicates(t *testing.T) {
	d := doc(t)
	cases := []struct{ expr, want string }{
		{"//Category[@kind='photo']/Title/text()", "'Cameras'"},
		{"//Category[@kind!='photo']/Title/text()", "'Printers'"},
		{"//Product[@status]", "Product"},
		{"//Product[@status='new']/Name/text()", "'tx123'"},
		{"//Product[@missing]", ""},
	}
	for _, c := range cases {
		if got := names(sel(t, d, c.expr)); got != c.want {
			t.Errorf("%s = %q, want %q", c.expr, got, c.want)
		}
	}
}

func TestSelectChildValuePredicates(t *testing.T) {
	d := doc(t)
	cases := []struct{ expr, want string }{
		{"//Product[Name='zy456']/Price/text()", "'$799'"},
		{"//Product[Price='$499']/Name/text()", "'tx123'"},
		{"//Product[Name]", "Product Product Product"},
		{"//Product[Serial]", ""},
		{"//Category[Product/Name='pr1']/Title/text()", "'Printers'"},
		{"//Title[text()='Cameras']", "Title"},
		{"//Product[.='tx123$499']", "Product"}, // dot = full text content
	}
	for _, c := range cases {
		if got := names(sel(t, d, c.expr)); got != c.want {
			t.Errorf("%s = %q, want %q", c.expr, got, c.want)
		}
	}
}

func TestSelectNumericComparisons(t *testing.T) {
	d := doc(t)
	cases := []struct{ expr, want string }{
		{"//Product[Price>500]/Name/text()", "'zy456'"},
		{"//Product[Price<=499]/Name/text()", "'tx123' 'pr1'"},
		{"//Product[Price>=120]", "Product Product Product"},
		{"//Product[Price<120]", ""},
		{"//Product[Price=799]/Name/text()", "'zy456'"},
		{"//Product[Price!=799]/Name/text()", "'tx123' 'pr1'"},
	}
	for _, c := range cases {
		if got := names(sel(t, d, c.expr)); got != c.want {
			t.Errorf("%s = %q, want %q", c.expr, got, c.want)
		}
	}
}

func TestSelectBooleanPredicates(t *testing.T) {
	d := doc(t)
	cases := []struct{ expr, want string }{
		{"//Product[@status='new' and Price<500]/Name/text()", "'tx123'"},
		{"//Product[Price<200 or Price>700]/Name/text()", "'zy456' 'pr1'"},
		{"//Product[@status='new' or Name='pr1'][Price<1000]/Name/text()", "'tx123' 'pr1'"},
	}
	for _, c := range cases {
		if got := names(sel(t, d, c.expr)); got != c.want {
			t.Errorf("%s = %q, want %q", c.expr, got, c.want)
		}
	}
}

func TestRelativeSelection(t *testing.T) {
	d := doc(t)
	cat := sel(t, d, "/Catalog/Category[1]")[0]
	e := MustCompile("Product/Name/text()")
	if got := names(e.Select(cat)); got != "'tx123' 'zy456'" {
		t.Errorf("relative select = %q", got)
	}
	// Absolute expressions climb to the root even from a deep context.
	abs := MustCompile("/Catalog/Category[2]/Title/text()")
	if got := names(abs.Select(cat)); got != "'Printers'" {
		t.Errorf("absolute from deep context = %q", got)
	}
}

func TestMatchesAndValue(t *testing.T) {
	d := doc(t)
	products := sel(t, d, "//Product")
	cheap := MustCompile("//Product[Price<500]")
	if !cheap.Matches(products[0]) {
		t.Error("tx123 should match the cheap filter")
	}
	if cheap.Matches(products[1]) {
		t.Error("zy456 should not match the cheap filter")
	}
	if got := MustCompile("//Category[1]/Title").Value(d); got != "Cameras" {
		t.Errorf("Value = %q", got)
	}
	if got := MustCompile("//Missing").Value(d); got != "" {
		t.Errorf("Value of no match = %q", got)
	}
	if MustCompile("//Product").Matches(nil) {
		t.Error("nil node matched")
	}
	if MustCompile("//Product").SelectFirst(d) == nil {
		t.Error("SelectFirst found nothing")
	}
}

func TestSelectNoDuplicates(t *testing.T) {
	d := doc(t)
	// //Product via descendant-or-self could yield duplicates if the
	// evaluator were naive.
	got := sel(t, d, "//*/Product")
	if len(got) != 3 {
		t.Errorf("got %d products, want 3: %s", len(got), names(got))
	}
}

func TestCompileErrors(t *testing.T) {
	bad := []string{
		"", "]", "//", "/Catalog/", "a[", "a[]", "a[@]", "a[1.5]", "a[0]",
		"a[b=]", "a[=1]", "a[b<>]", "a[foo()]", "a['x'", "a[b!]", "!",
		"a[last(]", "a b", "a[..=1]",
	}
	for _, src := range bad {
		if _, err := Compile(src); err == nil {
			t.Errorf("Compile(%q) succeeded, want error", src)
		}
	}
}

func TestCompileAcceptsReasonableNames(t *testing.T) {
	good := []string{
		"ns:elem/sub-name/_x/x.y",
		"//a[@x-y='1']",
		"a[b.c='v']",
		"a[2][@k]",
		`a[@k="double quoted"]`,
		"a[Price=12.5]",
	}
	for _, src := range good {
		if _, err := Compile(src); err != nil {
			t.Errorf("Compile(%q): %v", src, err)
		}
	}
}

func TestMustCompilePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustCompile of bad expression did not panic")
		}
	}()
	MustCompile("[broken")
}

func TestExprString(t *testing.T) {
	src := "//Product[Price>500]"
	if got := MustCompile(src).String(); got != src {
		t.Errorf("String = %q", got)
	}
}

func TestQueryDeltaDocuments(t *testing.T) {
	// The paper's point: deltas are XML, so queries over changes are
	// ordinary queries. Select all price updates from a delta document.
	deltaXML := `<delta>
	  <update xid="11"><old>$799</old><new>$699</new></update>
	  <update xid="19"><old>x</old><new>y</new></update>
	  <insert xid="21" xidmap="(21)" parent="14" pos="1"><Product/></insert>
	</delta>`
	d, err := dom.ParseString(deltaXML)
	if err != nil {
		t.Fatal(err)
	}
	ups := sel(t, d, `/delta/update[old='$799']/new/text()`)
	if names(ups) != "'$699'" {
		t.Errorf("delta query = %q", names(ups))
	}
	ins := sel(t, d, `/delta/insert[@parent='14']`)
	if len(ins) != 1 {
		t.Errorf("insert query found %d", len(ins))
	}
}

func TestCurrencyStripping(t *testing.T) {
	if got := stripCurrency(" $499 "); got != "499" {
		t.Errorf("stripCurrency = %q", got)
	}
	if got := stripCurrency("€10"); got != "10" {
		t.Errorf("stripCurrency euro = %q", got)
	}
}

func TestUnionExpressions(t *testing.T) {
	d := doc(t)
	cases := []struct{ expr, want string }{
		{"//Title | //Product[@status]", "Title Product Title"}, // union results merge in document order
		{"/Catalog/Category[1]/Title/text() | /Catalog/Category[2]/Title/text()", "'Cameras' 'Printers'"},
		{"//Nope | //Title[text()='Printers']", "Title"},
		{"//Title | //Title", "Title Title"}, // self-union deduplicates
	}
	for _, c := range cases {
		if got := names(sel(t, d, c.expr)); got != c.want {
			t.Errorf("%s = %q, want %q", c.expr, got, c.want)
		}
	}
	for _, bad := range []string{"|", "a|", "|a", "a||b"} {
		if _, err := Compile(bad); err == nil {
			t.Errorf("Compile(%q) accepted", bad)
		}
	}
}

func TestStringFunctions(t *testing.T) {
	d := doc(t)
	cases := []struct{ expr, want string }{
		{"//Product[starts-with(Name,'tx')]/Price/text()", "'$499'"},
		{"//Product[contains(Name,'y45')]/Price/text()", "'$799'"},
		{"//Category[contains(@kind,'hot')]/Title/text()", "'Cameras'"},
		{"//Product[contains(Name,'zzz')]", ""},
		{"//Product[starts-with(Name,'tx') or starts-with(Name,'pr')]", "Product Product"},
	}
	for _, c := range cases {
		if got := names(sel(t, d, c.expr)); got != c.want {
			t.Errorf("%s = %q, want %q", c.expr, got, c.want)
		}
	}
	for _, bad := range []string{"a[contains(b)]", "a[contains(b,'x'", "a[contains(b,1)]", "a[starts-with(,'x')]"} {
		if _, err := Compile(bad); err == nil {
			t.Errorf("Compile(%q) accepted", bad)
		}
	}
}

// TestSelectDocumentOrder pins the fix for a bug the xptest
// differential harness found: with a descendant step followed by a
// child step, matches were emitted grouped by context node rather than
// in document order, so SelectFirst(`//*/x`) returned the later of two
// matches (the x under the root was visited via context a before the
// deeper context b contributed its earlier x).
func TestSelectDocumentOrder(t *testing.T) {
	d, err := dom.ParseString(`<a><b><x i="1"/></b><x i="2"/></a>`)
	if err != nil {
		t.Fatal(err)
	}
	e, err := Compile(`//*/x`)
	if err != nil {
		t.Fatal(err)
	}
	got := e.Select(d)
	if len(got) != 2 {
		t.Fatalf("Select(//*/x) returned %d nodes, want 2", len(got))
	}
	for want, n := range []*dom.Node{got[0], got[1]} {
		if v, _ := n.Attribute("i"); v != fmt.Sprintf("%d", want+1) {
			t.Errorf("Select(//*/x)[%d] has i=%q, want %d", want, v, want+1)
		}
	}
	if first := e.SelectFirst(d); first != got[0] {
		t.Errorf("SelectFirst(//*/x) is not the document-order first match")
	}

	// The same grouping bug applied to unions: each branch's results
	// were appended wholesale instead of merging in document order.
	u, err := Compile(`//x[@i='2'] | //b`)
	if err != nil {
		t.Fatal(err)
	}
	if got := names(u.Select(d)); got != "b x" {
		t.Errorf("union order = %q, want %q", got, "b x")
	}
}
