package xpathlite

import (
	"sort"
	"strconv"
	"strings"

	"xydiff/internal/dom"
)

// Select evaluates the expression with n as the context node and
// returns the matching nodes in document order, without duplicates.
// Absolute expressions first climb to n's root.
func (e *Expr) Select(n *dom.Node) []*dom.Node {
	if n == nil {
		return nil
	}
	if len(e.alts) == 1 {
		return sortDocOrder(selectAlt(n, e.alts[0]))
	}
	var out []*dom.Node
	seen := make(map[*dom.Node]bool)
	for _, alt := range e.alts {
		for _, got := range selectAlt(n, alt) {
			if !seen[got] {
				seen[got] = true
				out = append(out, got)
			}
		}
	}
	return sortDocOrder(out)
}

// sortDocOrder puts a result set into document order. Steps collect
// matches context node by context node, and with descendant axes a
// later context can contribute an earlier node (//*/x visits the
// deeper context after its ancestor), so the concatenated output is
// not inherently ordered. Found by the xptest differential harness:
// SelectFirst(`//*/x`) returned the later of two matches.
func sortDocOrder(nodes []*dom.Node) []*dom.Node {
	if len(nodes) < 2 {
		return nodes
	}
	sort.SliceStable(nodes, func(i, j int) bool { return docLess(nodes[i], nodes[j]) })
	return nodes
}

// docLess reports whether a precedes b in document (pre-)order. Both
// must belong to the same tree; an ancestor precedes its descendants.
func docLess(a, b *dom.Node) bool {
	if a == b {
		return false
	}
	pa := ancestorChain(a)
	pb := ancestorChain(b)
	i, j := len(pa)-1, len(pb)-1
	for i >= 0 && j >= 0 && pa[i] == pb[j] {
		i--
		j--
	}
	if i < 0 {
		return true // a is an ancestor of b
	}
	if j < 0 {
		return false // b is an ancestor of a
	}
	// pa[i] and pb[j] are distinct siblings under the common ancestor.
	return pa[i].Index() < pb[j].Index()
}

// ancestorChain returns [n, parent, ..., root].
func ancestorChain(n *dom.Node) []*dom.Node {
	var chain []*dom.Node
	for ; n != nil; n = n.Parent {
		chain = append(chain, n)
	}
	return chain
}

func selectAlt(n *dom.Node, alt pathAlt) []*dom.Node {
	ctx := []*dom.Node{n}
	if alt.absolute {
		root := n
		for root.Parent != nil {
			root = root.Parent
		}
		ctx = []*dom.Node{root}
	}
	for _, s := range alt.steps {
		ctx = applyStep(ctx, s)
		if len(ctx) == 0 {
			return nil
		}
	}
	return ctx
}

// SelectFirst returns the first match in document order, or nil.
func (e *Expr) SelectFirst(n *dom.Node) *dom.Node {
	out := e.Select(n)
	if len(out) == 0 {
		return nil
	}
	return out[0]
}

// Matches reports whether node n itself is selected by the expression
// when evaluated from n's document root. It is the building block the
// alerter uses to test "is this changed node interesting".
func (e *Expr) Matches(n *dom.Node) bool {
	if n == nil {
		return false
	}
	for _, got := range e.Select(n) {
		if got == n {
			return true
		}
	}
	return false
}

// Value evaluates the expression and returns the text content of the
// first match ("" when nothing matches).
func (e *Expr) Value(n *dom.Node) string {
	first := e.SelectFirst(n)
	if first == nil {
		return ""
	}
	return first.TextContent()
}

func applyStep(ctx []*dom.Node, s step) []*dom.Node {
	var out []*dom.Node
	seen := make(map[*dom.Node]bool)
	add := func(n *dom.Node) {
		if !seen[n] {
			seen[n] = true
			out = append(out, n)
		}
	}
	for _, c := range ctx {
		// Candidates per axis, then node test, then predicates. The
		// node set for predicates with positions is the per-context
		// candidate list, matching XPath's semantics of [n] applying
		// within each context node's children.
		var cands []*dom.Node
		switch s.axis {
		case axisSelf:
			cands = []*dom.Node{c}
		case axisParent:
			if c.Parent != nil {
				cands = []*dom.Node{c.Parent}
			}
		case axisChild:
			cands = c.Children
		case axisDescendantOrSelf:
			dom.WalkPre(c, func(x *dom.Node) bool {
				cands = append(cands, x)
				return true
			})
		}
		var matched []*dom.Node
		for _, cand := range cands {
			if nodeTestOK(cand, s) {
				matched = append(matched, cand)
			}
		}
		for _, p := range s.preds {
			matched = filterPred(matched, p)
		}
		for _, m := range matched {
			add(m)
		}
	}
	return out
}

func nodeTestOK(n *dom.Node, s step) bool {
	switch s.test {
	case testName:
		return n.Type == dom.Element && n.Name == s.name
	case testAnyElement:
		return n.Type == dom.Element
	case testText:
		return n.Type == dom.Text
	case testComment:
		return n.Type == dom.Comment
	case testAnyNode:
		return true
	default:
		return false
	}
}

func filterPred(nodes []*dom.Node, p pred) []*dom.Node {
	switch pr := p.(type) {
	case positionPred:
		if pr.last {
			if len(nodes) == 0 {
				return nil
			}
			return nodes[len(nodes)-1:]
		}
		if pr.n > len(nodes) {
			return nil
		}
		return nodes[pr.n-1 : pr.n]
	default:
		var out []*dom.Node
		for _, n := range nodes {
			if evalBool(n, p) {
				out = append(out, n)
			}
		}
		return out
	}
}

func evalBool(n *dom.Node, p pred) bool {
	switch pr := p.(type) {
	case boolPred:
		if pr.op == tokAnd {
			return evalBool(n, pr.l) && evalBool(n, pr.r)
		}
		return evalBool(n, pr.l) || evalBool(n, pr.r)
	case comparePred:
		values, exists := evalValue(n, pr.lhs)
		if pr.op == tokEOF {
			return exists
		}
		for _, v := range values {
			if compare(v, pr) {
				return true // XPath: a node-set comparison is existential
			}
		}
		return false
	case funcPred:
		values, _ := evalValue(n, pr.lhs)
		for _, v := range values {
			switch pr.fn {
			case "contains":
				if strings.Contains(v, pr.arg) {
					return true
				}
			case "starts-with":
				if strings.HasPrefix(v, pr.arg) {
					return true
				}
			}
		}
		return false
	case positionPred:
		// Position inside a boolean context is not supported (XPath
		// would need the context position); treat as non-matching.
		return false
	default:
		return false
	}
}

// evalValue returns the candidate string values of a value expression
// and whether the expression selected anything at all.
func evalValue(n *dom.Node, ve valueExpr) ([]string, bool) {
	if ve.attr != "" {
		if v, ok := n.Attribute(ve.attr); ok {
			return []string{v}, true
		}
		return nil, false
	}
	ctx := []*dom.Node{n}
	for _, s := range ve.path {
		ctx = applyStep(ctx, s)
	}
	if ve.text {
		var texts []string
		for _, c := range ctx {
			for _, ch := range c.Children {
				if ch.Type == dom.Text {
					texts = append(texts, ch.Value)
				}
			}
			if c.Type == dom.Text {
				texts = append(texts, c.Value)
			}
		}
		// A bare text() step on the context node itself.
		if len(ve.path) == 0 {
			texts = nil
			for _, ch := range n.Children {
				if ch.Type == dom.Text {
					texts = append(texts, ch.Value)
				}
			}
		}
		return texts, len(texts) > 0
	}
	if len(ctx) == 0 {
		return nil, false
	}
	var out []string
	for _, c := range ctx {
		out = append(out, c.TextContent())
	}
	return out, true
}

func compare(v string, pr comparePred) bool {
	if pr.rhsIsNum {
		lv, err := strconv.ParseFloat(strings.TrimSpace(stripCurrency(v)), 64)
		if err != nil {
			return false
		}
		switch pr.op {
		case tokEq:
			return lv == pr.rhsNumber
		case tokNeq:
			return lv != pr.rhsNumber
		case tokLt:
			return lv < pr.rhsNumber
		case tokLe:
			return lv <= pr.rhsNumber
		case tokGt:
			return lv > pr.rhsNumber
		case tokGe:
			return lv >= pr.rhsNumber
		}
		return false
	}
	switch pr.op {
	case tokEq:
		return v == pr.rhs
	case tokNeq:
		return v != pr.rhs
	case tokLt:
		return v < pr.rhs
	case tokLe:
		return v <= pr.rhs
	case tokGt:
		return v > pr.rhs
	case tokGe:
		return v >= pr.rhs
	}
	return false
}

// stripCurrency lets numeric predicates work over values like "$499",
// which the catalog documents of the paper's examples use.
func stripCurrency(s string) string {
	s = strings.TrimSpace(s)
	for _, prefix := range []string{"$", "€", "£"} {
		s = strings.TrimPrefix(s, prefix)
	}
	return s
}
