package xpathlite

import "fmt"

// Expr is a compiled path expression: one or more "|"-separated path
// alternatives whose results are unioned.
type Expr struct {
	alts []pathAlt
	src  string
}

// pathAlt is one union branch.
type pathAlt struct {
	absolute bool
	steps    []step
}

// String returns the source text the expression was compiled from.
func (e *Expr) String() string { return e.src }

type axis uint8

const (
	axisChild axis = iota
	axisDescendantOrSelf
	axisSelf
	axisParent
)

type nodeTest uint8

const (
	testName       nodeTest = iota // element with a specific name
	testAnyElement                 // *
	testText                       // text()
	testComment                    // comment()
	testAnyNode                    // node()
)

type step struct {
	axis  axis
	test  nodeTest
	name  string
	preds []pred
}

// pred is one [...] predicate.
type pred interface{ isPred() }

// positionPred selects the n-th node of the step's result (1-based) or
// the last one.
type positionPred struct {
	n    int
	last bool
}

// comparePred compares a value expression against a literal, or tests
// bare existence.
type comparePred struct {
	lhs       valueExpr
	op        tokenKind // tokEq/tokNeq/tokLt/tokLe/tokGt/tokGe; tokEOF = existence
	rhs       string
	rhsIsNum  bool
	rhsNumber float64
}

// boolPred combines two predicates with and/or.
type boolPred struct {
	op   tokenKind // tokAnd or tokOr
	l, r pred
}

// funcPred is a string-function predicate: contains(expr, 'lit') or
// starts-with(expr, 'lit').
type funcPred struct {
	fn  string // "contains" or "starts-with"
	lhs valueExpr
	arg string
}

func (positionPred) isPred() {}
func (comparePred) isPred()  {}
func (boolPred) isPred()     {}
func (funcPred) isPred()     {}

// valueExpr is the left side of a comparison: an attribute, a relative
// child path's text, or text().
type valueExpr struct {
	attr string // @attr when non-empty
	path []step // relative path otherwise; empty with text=false means "."
	text bool   // text() on the final node set
}

// Compile parses a path expression.
func Compile(src string) (*Expr, error) {
	tokens, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{tokens: tokens, src: src}
	e := &Expr{src: src}
	for {
		alt, err := p.parsePath()
		if err != nil {
			return nil, err
		}
		e.alts = append(e.alts, alt)
		if !p.accept(tokUnion) {
			break
		}
	}
	if p.peek().kind != tokEOF {
		return nil, fmt.Errorf("xpathlite: unexpected %s after expression in %q", p.peek(), src)
	}
	return e, nil
}

// MustCompile is Compile, panicking on error; for fixed expressions
// known at compile time (subscription tables, tests). Runtime input
// must go through Compile.
func MustCompile(src string) *Expr {
	e, err := Compile(src)
	if err != nil {
		//xyvet:allow nopanic -- the Must* compile-or-panic contract, like regexp.MustCompile
		panic(err)
	}
	return e
}

type parser struct {
	tokens []token
	pos    int
	src    string
}

func (p *parser) peek() token { return p.tokens[p.pos] }
func (p *parser) next() token { t := p.tokens[p.pos]; p.pos++; return t }
func (p *parser) accept(k tokenKind) bool {
	if p.peek().kind == k {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expect(k tokenKind, what string) (token, error) {
	t := p.next()
	if t.kind != k {
		return t, fmt.Errorf("xpathlite: expected %s, found %s in %q", what, t, p.src)
	}
	return t, nil
}

// parsePath = ["/" | "//"] step (("/" | "//") step)*
func (p *parser) parsePath() (pathAlt, error) {
	var e pathAlt
	switch p.peek().kind {
	case tokSlash:
		p.next()
		e.absolute = true
		switch p.peek().kind {
		case tokEOF, tokUnion: // bare "/" selects the document
			return e, nil
		}
	case tokDSlash:
		p.next()
		e.absolute = true
		e.steps = append(e.steps, step{axis: axisDescendantOrSelf, test: testAnyNode})
	}
	for {
		s, err := p.parseStep()
		if err != nil {
			return e, err
		}
		e.steps = append(e.steps, s)
		switch p.peek().kind {
		case tokSlash:
			p.next()
		case tokDSlash:
			p.next()
			e.steps = append(e.steps, step{axis: axisDescendantOrSelf, test: testAnyNode})
		default:
			return e, nil
		}
	}
}

// parseStep = ("." | ".." | "*" | name | name "(" ")") predicates*
func (p *parser) parseStep() (step, error) {
	var s step
	s.axis = axisChild
	switch t := p.next(); t.kind {
	case tokDot:
		return step{axis: axisSelf, test: testAnyNode}, nil
	case tokDotDot:
		return step{axis: axisParent, test: testAnyNode}, nil
	case tokStar:
		s.test = testAnyElement
	case tokName:
		if p.accept(tokLParen) {
			if _, err := p.expect(tokRParen, "')'"); err != nil {
				return s, err
			}
			switch t.text {
			case "text":
				s.test = testText
			case "comment":
				s.test = testComment
			case "node":
				s.test = testAnyNode
			default:
				return s, fmt.Errorf("xpathlite: unknown node test %s() in %q", t.text, p.src)
			}
		} else {
			s.test = testName
			s.name = t.text
		}
	default:
		return s, fmt.Errorf("xpathlite: expected a step, found %s in %q", t, p.src)
	}
	for p.accept(tokLBracket) {
		pr, err := p.parsePredicate()
		if err != nil {
			return s, err
		}
		if _, err := p.expect(tokRBracket, "']'"); err != nil {
			return s, err
		}
		s.preds = append(s.preds, pr)
	}
	return s, nil
}

// parsePredicate = orExpr | number | last()
func (p *parser) parsePredicate() (pred, error) {
	if t := p.peek(); t.kind == tokNumber {
		p.next()
		n, err := parsePosition(t.text)
		if err != nil {
			return nil, fmt.Errorf("xpathlite: %w in %q", err, p.src)
		}
		return positionPred{n: n}, nil
	}
	if t := p.peek(); t.kind == tokName && t.text == "last" &&
		p.tokens[p.pos+1].kind == tokLParen {
		p.pos += 2
		if _, err := p.expect(tokRParen, "')'"); err != nil {
			return nil, err
		}
		return positionPred{last: true}, nil
	}
	return p.parseOr()
}

func (p *parser) parseOr() (pred, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.accept(tokOr) {
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = boolPred{op: tokOr, l: l, r: r}
	}
	return l, nil
}

func (p *parser) parseAnd() (pred, error) {
	l, err := p.parseCompare()
	if err != nil {
		return nil, err
	}
	for p.accept(tokAnd) {
		r, err := p.parseCompare()
		if err != nil {
			return nil, err
		}
		l = boolPred{op: tokAnd, l: l, r: r}
	}
	return l, nil
}

// parseCompare = function "(" valueExpr "," literal ")" | valueExpr [op literal]
func (p *parser) parseCompare() (pred, error) {
	if t := p.peek(); t.kind == tokName && (t.text == "contains" || t.text == "starts-with") &&
		p.tokens[p.pos+1].kind == tokLParen {
		p.pos += 2
		lhs, err := p.parseValueExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokComma, "','"); err != nil {
			return nil, err
		}
		lit := p.next()
		if lit.kind != tokString {
			return nil, fmt.Errorf("xpathlite: %s() needs a string literal, found %s in %q", t.text, lit, p.src)
		}
		if _, err := p.expect(tokRParen, "')'"); err != nil {
			return nil, err
		}
		return funcPred{fn: t.text, lhs: lhs, arg: lit.text}, nil
	}
	lhs, err := p.parseValueExpr()
	if err != nil {
		return nil, err
	}
	op := p.peek().kind
	switch op {
	case tokEq, tokNeq, tokLt, tokLe, tokGt, tokGe:
		p.next()
	default:
		return comparePred{lhs: lhs, op: tokEOF}, nil // existence test
	}
	lit := p.next()
	switch lit.kind {
	case tokString:
		return comparePred{lhs: lhs, op: op, rhs: lit.text}, nil
	case tokNumber:
		num, err := parseNumber(lit.text)
		if err != nil {
			return nil, fmt.Errorf("xpathlite: %w in %q", err, p.src)
		}
		return comparePred{lhs: lhs, op: op, rhs: lit.text, rhsIsNum: true, rhsNumber: num}, nil
	default:
		return nil, fmt.Errorf("xpathlite: expected a literal after comparison, found %s in %q", lit, p.src)
	}
}

// parseValueExpr = "@" name | relative-path [ "/" "text()" ] | "text()" | "."
func (p *parser) parseValueExpr() (valueExpr, error) {
	if p.accept(tokAt) {
		t, err := p.expect(tokName, "attribute name")
		if err != nil {
			return valueExpr{}, err
		}
		return valueExpr{attr: t.text}, nil
	}
	if p.peek().kind == tokDot {
		p.next()
		return valueExpr{}, nil
	}
	// A relative path of name/* steps, possibly ending in text().
	var ve valueExpr
	for {
		t := p.peek()
		switch {
		case t.kind == tokName && p.tokens[p.pos+1].kind == tokLParen && t.text == "text":
			p.pos += 2
			if _, err := p.expect(tokRParen, "')'"); err != nil {
				return ve, err
			}
			ve.text = true
			return ve, nil
		case t.kind == tokName:
			p.next()
			ve.path = append(ve.path, step{axis: axisChild, test: testName, name: t.text})
		case t.kind == tokStar:
			p.next()
			ve.path = append(ve.path, step{axis: axisChild, test: testAnyElement})
		default:
			return ve, fmt.Errorf("xpathlite: expected a value expression, found %s in %q", t, p.src)
		}
		if !p.accept(tokSlash) {
			return ve, nil
		}
	}
}

func parsePosition(s string) (int, error) {
	n := 0
	for i := 0; i < len(s); i++ {
		if !isDigit(s[i]) {
			return 0, fmt.Errorf("position %q must be an integer", s)
		}
		n = n*10 + int(s[i]-'0')
	}
	if n < 1 {
		return 0, fmt.Errorf("position %q must be >= 1", s)
	}
	return n, nil
}

func parseNumber(s string) (float64, error) {
	var v float64
	var frac float64 = 1
	seenDot := false
	for i := 0; i < len(s); i++ {
		if s[i] == '.' {
			if seenDot {
				return 0, fmt.Errorf("bad number %q", s)
			}
			seenDot = true
			continue
		}
		if !isDigit(s[i]) {
			return 0, fmt.Errorf("bad number %q", s)
		}
		if seenDot {
			frac /= 10
			v += float64(s[i]-'0') * frac
		} else {
			v = v*10 + float64(s[i]-'0')
		}
	}
	return v, nil
}
