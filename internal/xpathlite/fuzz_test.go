package xpathlite

import (
	"testing"

	"xydiff/internal/dom"
)

// FuzzCompile: expressions either fail to compile or evaluate without
// panicking on a representative document.
func FuzzCompile(f *testing.F) {
	seeds := []string{
		`/a/b/c`, `//x[@k='v']`, `a[1][last()]`, `*[text()='t']`,
		`//p[price>12.5 and @s!='x' or q]`, `a/../b/.`, `//node()`,
		`[`, `a[`, `//`, `a[b=]`, `.`, `..`,
		// Predicate/axis edge cases: positional last() (alone and
		// stacked), // rooted at the document, attribute existence
		// (bare and chained), and the descendant/child grouping shape
		// behind the document-order regression.
		`//a[last()]`, `a[last()][last()]`, `/a//b[last()]`,
		`//*[@id]`, `//page[@url][links]`, `//a[@href]/..`,
		`//*/x`, `//node()[last()]`, `/*[2]`, `//x[1] | //x[last()]`,
		`//*[text()][2]`, `a[@k and @j]`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	doc, err := dom.ParseString(`<a k="v"><b><c>t</c></b><p><price>13</price><q/></p><x k="v"/></a>`)
	if err != nil {
		panic(err)
	}
	f.Fuzz(func(t *testing.T, src string) {
		e, err := Compile(src)
		if err != nil {
			return
		}
		if e.String() != src {
			t.Fatalf("String() = %q, want %q", e.String(), src)
		}
		_ = e.Select(doc)
		_ = e.Matches(doc.Root())
		_ = e.Value(doc)
	})
}
