// Package xpathlite implements the query-language substrate the paper
// motivates (Sections 1–2: XML "allows for real query languages", and
// "queries about the past ... are regular queries over documents" once
// deltas are stored as XML). It is a compact XPath subset sufficient
// for the warehouse's needs:
//
//	/site/page[@url='/a.html']/title     absolute paths with predicates
//	//Product[Price>'500']               descendant search, comparisons
//	Category/Product[2]                  positional predicates
//	page[@url][links]                    attribute/child existence
//	*[text()='x'] | .. | . | node()      wildcards, axes, node tests
//	page[last()]                         last()
//
// Expressions compile once (Compile) and evaluate against any node
// (Select), including delta documents and reconstructed past versions —
// which is precisely how "querying the past" works in package store.
package xpathlite

import (
	"fmt"
	"strings"
	"unicode"
)

type tokenKind uint8

const (
	tokEOF      tokenKind = iota
	tokSlash              // /
	tokDSlash             // //
	tokName               // element name, function name
	tokStar               // *
	tokAt                 // @
	tokLBracket           // [
	tokRBracket           // ]
	tokLParen             // (
	tokRParen             // )
	tokString             // 'quoted' or "quoted"
	tokNumber             // 123 or 12.5
	tokEq                 // =
	tokNeq                // !=
	tokLt                 // <
	tokLe                 // <=
	tokGt                 // >
	tokGe                 // >=
	tokDot                // .
	tokDotDot             // ..
	tokAnd                // and
	tokOr                 // or
	tokUnion              // |
	tokComma              // ,
)

type token struct {
	kind tokenKind
	text string
	pos  int
}

func (t token) String() string {
	if t.kind == tokEOF {
		return "end of expression"
	}
	return fmt.Sprintf("%q", t.text)
}

type lexer struct {
	src    string
	pos    int
	tokens []token
}

func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for l.pos < len(l.src) {
		start := l.pos
		c := l.src[l.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			l.pos++
		case c == '/':
			if l.peekAt(1) == '/' {
				l.emit(tokDSlash, "//", start)
				l.pos += 2
			} else {
				l.emit(tokSlash, "/", start)
				l.pos++
			}
		case c == '*':
			l.emit(tokStar, "*", start)
			l.pos++
		case c == '|':
			l.emit(tokUnion, "|", start)
			l.pos++
		case c == ',':
			l.emit(tokComma, ",", start)
			l.pos++
		case c == '@':
			l.emit(tokAt, "@", start)
			l.pos++
		case c == '[':
			l.emit(tokLBracket, "[", start)
			l.pos++
		case c == ']':
			l.emit(tokRBracket, "]", start)
			l.pos++
		case c == '(':
			l.emit(tokLParen, "(", start)
			l.pos++
		case c == ')':
			l.emit(tokRParen, ")", start)
			l.pos++
		case c == '=':
			l.emit(tokEq, "=", start)
			l.pos++
		case c == '!':
			if l.peekAt(1) != '=' {
				return nil, fmt.Errorf("xpathlite: stray '!' at %d", start)
			}
			l.emit(tokNeq, "!=", start)
			l.pos += 2
		case c == '<':
			if l.peekAt(1) == '=' {
				l.emit(tokLe, "<=", start)
				l.pos += 2
			} else {
				l.emit(tokLt, "<", start)
				l.pos++
			}
		case c == '>':
			if l.peekAt(1) == '=' {
				l.emit(tokGe, ">=", start)
				l.pos += 2
			} else {
				l.emit(tokGt, ">", start)
				l.pos++
			}
		case c == '\'' || c == '"':
			end := strings.IndexByte(l.src[l.pos+1:], c)
			if end < 0 {
				return nil, fmt.Errorf("xpathlite: unterminated string at %d", start)
			}
			l.emit(tokString, l.src[l.pos+1:l.pos+1+end], start)
			l.pos += end + 2
		case c == '.':
			if l.peekAt(1) == '.' {
				l.emit(tokDotDot, "..", start)
				l.pos += 2
			} else if isDigit(l.peekAt(1)) {
				l.lexNumber(start)
			} else {
				l.emit(tokDot, ".", start)
				l.pos++
			}
		case isDigit(c):
			l.lexNumber(start)
		case isNameStart(rune(c)):
			l.lexName(start)
		default:
			return nil, fmt.Errorf("xpathlite: unexpected character %q at %d", c, start)
		}
	}
	l.emit(tokEOF, "", l.pos)
	return l.tokens, nil
}

func (l *lexer) lexNumber(start int) {
	for l.pos < len(l.src) && (isDigit(l.src[l.pos]) || l.src[l.pos] == '.') {
		l.pos++
	}
	l.emit(tokNumber, l.src[start:l.pos], start)
}

func (l *lexer) lexName(start int) {
	for l.pos < len(l.src) && isNamePart(rune(l.src[l.pos])) {
		l.pos++
	}
	text := l.src[start:l.pos]
	switch text {
	case "and":
		l.emit(tokAnd, text, start)
	case "or":
		l.emit(tokOr, text, start)
	default:
		l.emit(tokName, text, start)
	}
}

func (l *lexer) emit(kind tokenKind, text string, pos int) {
	l.tokens = append(l.tokens, token{kind: kind, text: text, pos: pos})
}

func (l *lexer) peekAt(off int) byte {
	if l.pos+off >= len(l.src) {
		return 0
	}
	return l.src[l.pos+off]
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func isNameStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isNamePart(r rune) bool {
	return r == '_' || r == '-' || r == '.' || r == ':' || unicode.IsLetter(r) || unicode.IsDigit(r)
}
