package scrub

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
)

// Every write-ahead log in this repo — the legacy per-document journal
// and the sharded segment logs — shares one frame: a length-prefixed,
// CRC32-C-checksummed payload, integers big-endian:
//
//	+0  uint32  payload length
//	+4  uint32  CRC32-C (Castagnoli) of the payload
//	+8  payload
//
// WalkLog verifies that frame so both engines scrub through the same
// code the recovery paths trust.

const (
	// headerLen is the fixed frame header: length + checksum.
	headerLen = 8
	// maxRecordLen bounds one record; a length field beyond it is
	// corruption, not a legitimately huge record (matches the engines'
	// own recovery limit).
	maxRecordLen = 1 << 30
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Damage describes the first verification failure in a log file.
type Damage struct {
	// Offset is where the bad record's header starts.
	Offset int64
	// Reason says which check failed.
	Reason string
	// Torn is true when the failure is consistent with a crash mid-
	// append: the final record simply stops early. Torn tails are
	// legitimate in an *active* log (recovery truncates them) but are
	// corruption in a sealed one, so the caller decides.
	Torn bool
}

func (d *Damage) Error() string {
	return fmt.Sprintf("offset %d: %s", d.Offset, d.Reason)
}

// WalkLog verifies every CRC-framed record in data, calling visit (if
// non-nil) with each verified payload and its header offset. It stops
// at the first failure and returns it; nil means the whole log
// verified. A visit error is reported as damage at that record — the
// caller's payload decoder is part of verification.
func WalkLog(data []byte, visit func(off int64, payload []byte) error) *Damage {
	off := int64(0)
	for int(off) < len(data) {
		rest := data[off:]
		if len(rest) < headerLen {
			return &Damage{Offset: off, Reason: fmt.Sprintf("torn header: %d trailing bytes", len(rest)), Torn: true}
		}
		n := binary.BigEndian.Uint32(rest[0:4])
		if n == 0 || n > maxRecordLen {
			return &Damage{Offset: off, Reason: fmt.Sprintf("implausible record length %d", n)}
		}
		if uint64(len(rest)) < headerLen+uint64(n) {
			return &Damage{Offset: off, Reason: fmt.Sprintf("torn record: %d byte payload, %d on disk", n, len(rest)-headerLen), Torn: true}
		}
		payload := rest[headerLen : headerLen+int(n)]
		if sum := crc32.Checksum(payload, castagnoli); sum != binary.BigEndian.Uint32(rest[4:8]) {
			return &Damage{Offset: off, Reason: "checksum mismatch"}
		}
		if visit != nil {
			if err := visit(off, payload); err != nil {
				return &Damage{Offset: off, Reason: err.Error()}
			}
		}
		off += headerLen + int64(n)
	}
	return nil
}

// Checksum is the CRC32-C of b, exposed so snapshot sum files and
// their verifiers share the walker's polynomial.
func Checksum(b []byte) uint32 { return crc32.Checksum(b, castagnoli) }

// QuarantineSuffix marks files set aside by the scrubber. Quarantined
// files are renamed, never deleted — an operator (or a smarter future
// repair) can still inspect the bytes.
const QuarantineSuffix = ".quarantine"

// RenameFS is the slice of filesystem the quarantine path needs;
// faultfs.FS satisfies it.
type RenameFS interface {
	Rename(oldPath, newPath string) error
	Stat(path string) (os.FileInfo, error)
}

// Quarantine renames path aside with QuarantineSuffix and returns the
// new name. If that name is already taken (a file quarantined twice
// across restarts), numbered suffixes are tried.
func Quarantine(fsys RenameFS, path string) (string, error) {
	dst := path + QuarantineSuffix
	for i := 1; ; i++ {
		if _, err := fsys.Stat(dst); err != nil {
			break
		}
		if i > 1000 {
			return "", fmt.Errorf("quarantine %s: too many existing quarantine files", path)
		}
		dst = fmt.Sprintf("%s%s.%d", path, QuarantineSuffix, i)
	}
	if err := fsys.Rename(path, dst); err != nil {
		return "", fmt.Errorf("quarantine %s: %w", path, err)
	}
	return dst, nil
}
