package scrub

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// frame renders one valid CRC-framed record, the framing both storage
// engines share.
func frame(payload []byte) []byte {
	rec := make([]byte, headerLen, headerLen+len(payload))
	binary.BigEndian.PutUint32(rec[0:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(rec[4:8], crc32.Checksum(payload, castagnoli))
	return append(rec, payload...)
}

func TestWalkLogClean(t *testing.T) {
	var log []byte
	want := [][]byte{[]byte("alpha"), []byte("beta"), []byte("gamma-with-more-bytes")}
	for _, p := range want {
		log = append(log, frame(p)...)
	}
	var got [][]byte
	var offs []int64
	if d := WalkLog(log, func(off int64, payload []byte) error {
		got = append(got, append([]byte(nil), payload...))
		offs = append(offs, off)
		return nil
	}); d != nil {
		t.Fatalf("clean log reported damage: %v", d)
	}
	if len(got) != len(want) {
		t.Fatalf("visited %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if string(got[i]) != string(want[i]) {
			t.Fatalf("record %d = %q, want %q", i, got[i], want[i])
		}
	}
	if offs[0] != 0 || offs[1] != int64(headerLen+len(want[0])) {
		t.Fatalf("bad offsets %v", offs)
	}
}

func TestWalkLogEmpty(t *testing.T) {
	if d := WalkLog(nil, nil); d != nil {
		t.Fatalf("empty log reported damage: %v", d)
	}
}

func TestWalkLogDamage(t *testing.T) {
	rec1 := frame([]byte("first-record"))
	rec2 := frame([]byte("second-record"))
	base := append(append([]byte(nil), rec1...), rec2...)

	cases := []struct {
		name     string
		mutate   func([]byte) []byte
		wantOff  int64
		wantTorn bool
		reason   string
	}{
		{
			name: "bit flip in payload",
			mutate: func(b []byte) []byte {
				b[len(rec1)+headerLen+3] ^= 0x10
				return b
			},
			wantOff: int64(len(rec1)),
			reason:  "checksum mismatch",
		},
		{
			name: "bit flip in checksum",
			mutate: func(b []byte) []byte {
				b[5] ^= 0x01
				return b
			},
			wantOff: 0,
			reason:  "checksum mismatch",
		},
		{
			name: "torn tail mid-payload",
			mutate: func(b []byte) []byte {
				return b[:len(rec1)+headerLen+4]
			},
			wantOff:  int64(len(rec1)),
			wantTorn: true,
			reason:   "torn record",
		},
		{
			name: "torn tail mid-header",
			mutate: func(b []byte) []byte {
				return b[:len(rec1)+3]
			},
			wantOff:  int64(len(rec1)),
			wantTorn: true,
			reason:   "torn header",
		},
		{
			name: "zeroed length field",
			mutate: func(b []byte) []byte {
				copy(b[0:4], []byte{0, 0, 0, 0})
				return b
			},
			wantOff: 0,
			reason:  "implausible record length",
		},
		{
			name: "absurd length field",
			mutate: func(b []byte) []byte {
				binary.BigEndian.PutUint32(b[0:4], 1<<31)
				return b
			},
			wantOff: 0,
			reason:  "implausible record length",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			data := tc.mutate(append([]byte(nil), base...))
			d := WalkLog(data, nil)
			if d == nil {
				t.Fatal("damage not detected")
			}
			if d.Offset != tc.wantOff {
				t.Fatalf("damage at offset %d, want %d (%v)", d.Offset, tc.wantOff, d)
			}
			if d.Torn != tc.wantTorn {
				t.Fatalf("Torn = %v, want %v (%v)", d.Torn, tc.wantTorn, d)
			}
			if !strings.Contains(d.Reason, tc.reason) {
				t.Fatalf("reason %q does not mention %q", d.Reason, tc.reason)
			}
		})
	}
}

func TestWalkLogVisitError(t *testing.T) {
	log := append(frame([]byte("ok")), frame([]byte("bad-per-decoder"))...)
	d := WalkLog(log, func(off int64, payload []byte) error {
		if string(payload) != "ok" {
			return fmt.Errorf("decoder rejected %q", payload)
		}
		return nil
	})
	if d == nil {
		t.Fatal("visit error not surfaced as damage")
	}
	if d.Offset != int64(headerLen+2) {
		t.Fatalf("damage offset %d, want %d", d.Offset, headerLen+2)
	}
	if d.Torn {
		t.Fatal("decoder rejection must not read as a torn tail")
	}
}

// osRenameFS adapts package os to RenameFS for the quarantine tests.
type osRenameFS struct{}

func (osRenameFS) Rename(o, n string) error           { return os.Rename(o, n) }
func (osRenameFS) Stat(p string) (os.FileInfo, error) { return os.Stat(p) }

func TestQuarantine(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "seg-00000001.log")
	if err := os.WriteFile(path, []byte("damaged"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := Quarantine(osRenameFS{}, path)
	if err != nil {
		t.Fatal(err)
	}
	if got != path+QuarantineSuffix {
		t.Fatalf("quarantined to %q, want %q", got, path+QuarantineSuffix)
	}
	if _, err := os.Stat(path); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("original still present: %v", err)
	}
	b, err := os.ReadFile(got)
	if err != nil || string(b) != "damaged" {
		t.Fatalf("quarantined bytes = %q, %v — quarantine must preserve, never delete", b, err)
	}

	// Quarantining a new file under the same name must not clobber the
	// first quarantine.
	if err := os.WriteFile(path, []byte("damaged again"), 0o644); err != nil {
		t.Fatal(err)
	}
	got2, err := Quarantine(osRenameFS{}, path)
	if err != nil {
		t.Fatal(err)
	}
	if got2 == got {
		t.Fatalf("second quarantine reused %q", got)
	}
	if b, _ := os.ReadFile(got); string(b) != "damaged" {
		t.Fatal("second quarantine clobbered the first")
	}
	if b, _ := os.ReadFile(got2); string(b) != "damaged again" {
		t.Fatalf("second quarantine content = %q", b)
	}
}

func TestThrottlePaces(t *testing.T) {
	th := NewThrottle(1000) // 1000 B/s, burst 1000
	var slept atomic.Int64
	th.sleep = func(ctx context.Context, d time.Duration) error {
		slept.Add(int64(d))
		return nil
	}
	ctx := context.Background()
	// First 1000 bytes ride the initial burst; the next 500 must wait
	// about half a second.
	if err := th.Take(ctx, 1000); err != nil {
		t.Fatal(err)
	}
	if got := slept.Load(); got != 0 {
		t.Fatalf("burst take slept %v", time.Duration(got))
	}
	if err := th.Take(ctx, 500); err != nil {
		t.Fatal(err)
	}
	got := time.Duration(slept.Load())
	if got < 400*time.Millisecond || got > 600*time.Millisecond {
		t.Fatalf("500-byte overdraft slept %v, want ~500ms", got)
	}
}

func TestThrottleNilAndCancel(t *testing.T) {
	var nilTh *Throttle
	if err := nilTh.Take(context.Background(), 1<<40); err != nil {
		t.Fatalf("nil throttle must be unlimited: %v", err)
	}
	th := NewThrottle(1) // 1 B/s: the second take must block on sleep
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := th.Take(ctx, 10); !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled take returned %v", err)
	}
}

func TestRunnerLifecycle(t *testing.T) {
	var passes atomic.Int64
	r := NewRunner(time.Millisecond, func(ctx context.Context) (Report, error) {
		passes.Add(1)
		return Report{BytesScanned: 42}, nil
	})
	go r.Run(context.Background())
	deadline := time.Now().Add(5 * time.Second)
	for passes.Load() < 3 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if passes.Load() < 3 {
		t.Fatal("runner never cycled")
	}
	r.Stop()
	r.Stop() // idempotent
	after := passes.Load()
	time.Sleep(20 * time.Millisecond)
	if passes.Load() != after {
		t.Fatal("runner kept cycling after Stop")
	}
	rep, at, err, cycles := r.Last()
	if err != nil || rep.BytesScanned != 42 || cycles < 3 || at.IsZero() {
		t.Fatalf("Last() = %+v at %v err %v cycles %d", rep, at, err, cycles)
	}
}

func TestReportNote(t *testing.T) {
	var r Report
	r.Note(Finding{Path: "a", Action: ActionRepaired})
	r.Note(Finding{Path: "b", Action: ActionQuarantined})
	r.Note(Finding{Path: "c", Action: ActionDetected})
	if r.Found != 3 || r.Repaired != 1 || r.Quarantined != 1 {
		t.Fatalf("counters %+v", r)
	}
	if len(r.Findings) != 3 {
		t.Fatalf("findings %d", len(r.Findings))
	}
}
