// Package scrub is the engine-agnostic core of the self-healing
// storage layer: the pieces of background integrity checking that do
// not depend on any one on-disk layout. A storage engine (the sharded
// internal/vstore, the legacy per-document internal/store) supplies a
// pass function that walks its own files; this package supplies
//
//   - the background Runner that invokes the pass on a timer, one
//     cycle at a time, with clean shutdown;
//   - the IO Throttle that paces scrub reads so a cycle never competes
//     with foreground traffic for disk bandwidth;
//   - the CRC log-frame walker (verify.go) shared by every
//     length-prefixed CRC32-C journal in the repo;
//   - Quarantine, the rename-aside-never-delete discipline for files
//     that failed verification and cannot be repaired;
//   - the Report/Finding vocabulary the engines, the HTTP layer and
//     the CLI all speak.
//
// The design follows the differential-testing discipline the repo
// already applies to the diff core: never trust a single path. Data is
// verified against its checksums on a schedule, not only when a read
// happens to land on it, so bit rot is found while the redundancy
// needed to repair it still exists.
package scrub

import (
	"context"
	"sync"
	"time"
)

// Config tunes a background scrubber.
type Config struct {
	// Interval is the pause between the end of one cycle and the start
	// of the next; 0 or negative disables background scrubbing.
	Interval time.Duration
	// Throttle caps scrub reads in bytes per second; 0 picks the
	// DefaultThrottle, negative disables pacing entirely.
	Throttle int64
	// Repair, when true, lets the engine rewrite damage it can cover
	// from redundant data; when false every finding is quarantined (or
	// merely reported) instead.
	Repair bool
}

// DefaultThrottle is the scrub read budget when Config.Throttle is 0:
// 8 MiB/s, slow enough to hide under foreground traffic, fast enough
// to cover tens of gigabytes per day.
const DefaultThrottle int64 = 8 << 20

// Action says what the scrubber did about one finding.
type Action string

// The actions a finding can end in.
const (
	// ActionDetected: damage found, nothing changed on disk (repair
	// disabled or detection-only pass).
	ActionDetected Action = "detected"
	// ActionRepaired: the damaged file was re-materialized from
	// redundant data and atomically rewritten or retired.
	ActionRepaired Action = "repaired"
	// ActionQuarantined: the file was renamed aside (never deleted) and
	// the documents it covered entered degraded mode.
	ActionQuarantined Action = "quarantined"
)

// Finding is one verified corruption: where, what, and what was done.
type Finding struct {
	// Path is the damaged file (or directory, for snapshot sets).
	Path string `json:"path"`
	// Offset is the byte offset of the damage, -1 for whole-file
	// failures (unreadable, unparseable, chain mismatch).
	Offset int64 `json:"offset"`
	// Reason says what check failed.
	Reason string `json:"reason"`
	// Action is what the scrubber did about it.
	Action Action `json:"action"`
}

// Report is what one scrub cycle saw and did.
type Report struct {
	// BytesScanned is how many file bytes the cycle read and verified.
	BytesScanned int64 `json:"bytesScanned"`
	// RecordsVerified counts CRC-checked log records.
	RecordsVerified int64 `json:"recordsVerified"`
	// SegmentsScanned and SnapshotsScanned count the files/sets walked.
	SegmentsScanned  int64 `json:"segmentsScanned"`
	SnapshotsScanned int64 `json:"snapshotsScanned"`
	// Found/Repaired/Quarantined count corruptions by outcome; Found
	// includes every finding regardless of action.
	Found       int64 `json:"found"`
	Repaired    int64 `json:"repaired"`
	Quarantined int64 `json:"quarantined"`
	// Degraded is how many documents entered degraded mode this cycle.
	Degraded int64 `json:"degraded"`
	// Duration is how long the cycle took, throttle sleeps included.
	Duration time.Duration `json:"duration"`
	// Findings details every corruption (bounded by the caller).
	Findings []Finding `json:"findings,omitempty"`
}

// merge folds a finding into the report's counters.
func (r *Report) Note(f Finding) {
	r.Found++
	switch f.Action {
	case ActionRepaired:
		r.Repaired++
	case ActionQuarantined:
		r.Quarantined++
	}
	if len(r.Findings) < maxFindings {
		r.Findings = append(r.Findings, f)
	}
}

// maxFindings bounds the per-report detail list; the counters keep the
// full truth even when a pathological disk overflows the list.
const maxFindings = 256

// PassFunc is one full verification cycle over an engine's files. It
// must honour ctx (a canceled context ends the cycle early) and pace
// its reads through the given throttle.
type PassFunc func(ctx context.Context) (Report, error)

// Runner drives a PassFunc on a timer: one cycle at a time, never
// overlapping, stoppable. The zero value is not usable; use NewRunner.
type Runner struct {
	interval time.Duration
	pass     PassFunc

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}

	mu      sync.Mutex
	cycles  int64
	lastErr error
	last    Report
	lastAt  time.Time
}

// NewRunner prepares (but does not start) a background scrubber that
// runs pass every interval.
func NewRunner(interval time.Duration, pass PassFunc) *Runner {
	return &Runner{
		interval: interval,
		pass:     pass,
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
}

// Run loops until Stop (or ctx cancellation): sleep one interval, run
// one cycle, repeat. The first cycle runs one interval after Run
// starts, so a freshly opened store pays recovery, not recovery plus an
// immediate full scan. Call it on its own goroutine.
func (r *Runner) Run(ctx context.Context) {
	defer close(r.done)
	t := time.NewTimer(r.interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-r.stop:
			return
		case <-t.C:
		}
		rep, err := r.pass(ctx)
		r.mu.Lock()
		r.cycles++
		r.last, r.lastErr, r.lastAt = rep, err, time.Now()
		r.mu.Unlock()
		t.Reset(r.interval)
	}
}

// Stop ends the loop; it returns once the in-flight cycle (if any)
// finished. Safe to call more than once.
func (r *Runner) Stop() {
	r.stopOnce.Do(func() { close(r.stop) })
	<-r.done
}

// Last returns the most recent cycle's report, its completion time and
// error, plus how many cycles completed (0 means none yet).
func (r *Runner) Last() (rep Report, at time.Time, err error, cycles int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.last, r.lastAt, r.lastErr, r.cycles
}
