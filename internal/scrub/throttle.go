package scrub

import (
	"context"
	"sync"
	"time"
)

// Throttle is a token bucket pacing scrub IO to a byte-per-second
// budget so a background cycle never competes with foreground traffic
// for the disk. A nil *Throttle is valid and means "unlimited".
type Throttle struct {
	mu      sync.Mutex
	rate    float64   // tokens (bytes) added per second
	burst   float64   // bucket capacity
	tokens  float64   // current fill
	lastAdd time.Time // when tokens was last brought current

	// sleep is swapped in tests for determinism.
	sleep func(ctx context.Context, d time.Duration) error
}

// NewThrottle builds a throttle allowing bytesPerSec of IO, with a
// burst of one second's budget. bytesPerSec <= 0 returns nil
// (unlimited).
func NewThrottle(bytesPerSec int64) *Throttle {
	if bytesPerSec <= 0 {
		return nil
	}
	return &Throttle{
		rate:    float64(bytesPerSec),
		burst:   float64(bytesPerSec),
		tokens:  float64(bytesPerSec),
		lastAdd: time.Now(),
		sleep:   sleepCtx,
	}
}

// Take blocks until n bytes of budget are available or ctx is done.
// Requests larger than the burst are allowed (the caller just waits
// proportionally longer); the bucket is permitted to go negative so a
// single oversized read does not deadlock.
func (t *Throttle) Take(ctx context.Context, n int64) error {
	if t == nil || n <= 0 {
		return ctx.Err()
	}
	t.mu.Lock()
	now := time.Now()
	t.tokens += now.Sub(t.lastAdd).Seconds() * t.rate
	if t.tokens > t.burst {
		t.tokens = t.burst
	}
	t.lastAdd = now
	t.tokens -= float64(n)
	var wait time.Duration
	if t.tokens < 0 {
		wait = time.Duration(-t.tokens / t.rate * float64(time.Second))
	}
	sleep := t.sleep
	t.mu.Unlock()
	if wait > 0 {
		return sleep(ctx, wait)
	}
	return ctx.Err()
}

func sleepCtx(ctx context.Context, d time.Duration) error {
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-timer.C:
		return nil
	}
}
