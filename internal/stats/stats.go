// Package stats gathers change statistics over delta streams — the
// measurement program of the paper's conclusion ("gather statistics on
// change frequency, patterns of changes in a document, in a web site")
// and the learning hook of Section 5.2: the schema "is an excellent
// structure to record statistical information ... e.g. learn that a
// price node is more likely to change than a description node."
//
// A Collector observes (oldDoc, newDoc, delta) triples — typically at
// store.Put time — and accumulates per-element-label change frequencies
// and per-version delta size ratios.
package stats

import (
	"fmt"
	"io"
	"sort"
	"sync"

	"xydiff/internal/delta"
	"xydiff/internal/dom"
)

// LabelStats accumulates change counts for one element label.
type LabelStats struct {
	Label       string
	Occurrences int // element instances seen across observed versions
	Updates     int // value updates under the element (direct text)
	Inserts     int // subtrees of this label inserted
	Deletes     int // subtrees of this label deleted
	Moves       int
	AttrChanges int
}

// Changes totals all change kinds.
func (l LabelStats) Changes() int {
	return l.Updates + l.Inserts + l.Deletes + l.Moves + l.AttrChanges
}

// Rate is changes per occurrence (the "likelihood to change" the paper
// wants to learn); zero occurrences yield zero.
func (l LabelStats) Rate() float64 {
	if l.Occurrences == 0 {
		return 0
	}
	return float64(l.Changes()) / float64(l.Occurrences)
}

// Collector accumulates statistics; safe for concurrent use.
type Collector struct {
	mu        sync.Mutex
	labels    map[string]*LabelStats
	visits    map[string]*docVisits
	versions  int
	ops       delta.Counts
	deltaSize int64
	docSize   int64
}

// NewCollector returns an empty collector.
func NewCollector() *Collector {
	return &Collector{
		labels: make(map[string]*LabelStats),
		visits: make(map[string]*docVisits),
	}
}

// docVisits tracks the acquisition-side change process of one document:
// how often revisits find it changed. This is the signal Xyleme's
// crawler schedules on — pages are refreshed at a frequency
// proportional to their observed change rate.
type docVisits struct {
	visits  int
	changed int
	rate    float64 // EWMA of the changed/unchanged observations
}

// visitAlpha is the EWMA weight of the newest visit: heavy enough that
// a few observations move the rate decisively (a crawler should adapt
// within a handful of revisits), light enough that one odd visit does
// not erase the history.
const visitAlpha = 0.5

// ObserveVisit records one acquisition visit of docID: changed reports
// whether the visit produced a new version (first fetch included) —
// false covers both conditional-GET 304s and byte-identical refetches.
func (c *Collector) ObserveVisit(docID string, changed bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	v := c.visits[docID]
	if v == nil {
		v = &docVisits{}
		c.visits[docID] = v
	}
	obs := 0.0
	if changed {
		obs = 1
		v.changed++
	}
	if v.visits == 0 {
		v.rate = obs
	} else {
		v.rate = visitAlpha*obs + (1-visitAlpha)*v.rate
	}
	v.visits++
}

// ChangeRate returns the EWMA fraction of visits that found docID
// changed, and how many visits were observed. A document never visited
// reports 0.5 — "unknown", halfway between static and volatile — so a
// scheduler starts new sources in the middle of its interval range.
func (c *Collector) ChangeRate(docID string) (rate float64, visits int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	v := c.visits[docID]
	if v == nil || v.visits == 0 {
		return 0.5, 0
	}
	return v.rate, v.visits
}

// Observe records one version transition. oldDoc is the version the
// delta applies to and newDoc its result; XIDs must be consistent with
// the delta (as produced by diff.Diff or store.Put).
func (c *Collector) Observe(oldDoc, newDoc *dom.Node, d *delta.Delta) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.versions++
	// Occurrences: count elements of the new version (the population at
	// risk for the next change).
	dom.WalkPre(newDoc, func(n *dom.Node) bool {
		if n.Type == dom.Element {
			c.label(n.Name).Occurrences++
		}
		return true
	})
	if d.Empty() {
		return
	}
	cnt := d.Count()
	c.ops.Inserts += cnt.Inserts
	c.ops.Deletes += cnt.Deletes
	c.ops.Updates += cnt.Updates
	c.ops.Moves += cnt.Moves
	c.ops.AttrOps += cnt.AttrOps
	c.deltaSize += int64(d.Size())
	c.docSize += int64(len(newDoc.String()))

	oldIdx := indexXIDs(oldDoc)
	newIdx := indexXIDs(newDoc)
	labelOf := func(xid int64, preferOld bool) string {
		var n *dom.Node
		if preferOld {
			n = oldIdx[xid]
			if n == nil {
				n = newIdx[xid]
			}
		} else {
			n = newIdx[xid]
			if n == nil {
				n = oldIdx[xid]
			}
		}
		if n == nil {
			return ""
		}
		if n.Type != dom.Element && n.Parent != nil {
			n = n.Parent // attribute updates to text map to the element
		}
		if n.Type != dom.Element {
			return ""
		}
		return n.Name
	}
	for _, op := range d.Ops {
		var label string
		switch op.Kind() {
		case delta.KindDelete:
			label = labelOf(op.TargetXID(), true)
		default:
			label = labelOf(op.TargetXID(), false)
		}
		if label == "" {
			continue
		}
		ls := c.label(label)
		switch op.Kind() {
		case delta.KindUpdate:
			ls.Updates++
		case delta.KindInsert:
			ls.Inserts++
		case delta.KindDelete:
			ls.Deletes++
		case delta.KindMove:
			ls.Moves++
		default:
			ls.AttrChanges++
		}
	}
}

func (c *Collector) label(name string) *LabelStats {
	ls := c.labels[name]
	if ls == nil {
		ls = &LabelStats{Label: name}
		c.labels[name] = ls
	}
	return ls
}

// Report is a snapshot of the accumulated statistics.
type Report struct {
	Versions  int
	Ops       delta.Counts
	DeltaSize int64 // total bytes of observed deltas
	DocSize   int64 // total bytes of observed (new) versions
	// Labels sorted by descending change rate, then by label.
	Labels []LabelStats
}

// DeltaRatio is total delta bytes over total document bytes — the
// paper's "delta size is usually less than the size of one version".
func (r Report) DeltaRatio() float64 {
	if r.DocSize == 0 {
		return 0
	}
	return float64(r.DeltaSize) / float64(r.DocSize)
}

// Report snapshots the collector.
func (c *Collector) Report() Report {
	c.mu.Lock()
	defer c.mu.Unlock()
	r := Report{Versions: c.versions, Ops: c.ops, DeltaSize: c.deltaSize, DocSize: c.docSize}
	for _, ls := range c.labels {
		r.Labels = append(r.Labels, *ls)
	}
	sort.Slice(r.Labels, func(i, j int) bool {
		ri, rj := r.Labels[i].Rate(), r.Labels[j].Rate()
		if ri != rj {
			return ri > rj
		}
		return r.Labels[i].Label < r.Labels[j].Label
	})
	return r
}

// WriteTable renders the per-label change-frequency table.
func (r Report) WriteTable(w io.Writer) {
	fmt.Fprintf(w, "# change statistics over %d version(s): %s; delta/doc ratio %.3f\n",
		r.Versions, r.Ops, r.DeltaRatio())
	fmt.Fprintf(w, "%-16s %8s %8s %8s %8s %8s %8s %8s\n",
		"label", "occur", "upd", "ins", "del", "mov", "attr", "rate")
	for _, l := range r.Labels {
		fmt.Fprintf(w, "%-16s %8d %8d %8d %8d %8d %8d %8.4f\n",
			l.Label, l.Occurrences, l.Updates, l.Inserts, l.Deletes, l.Moves, l.AttrChanges, l.Rate())
	}
}

func indexXIDs(doc *dom.Node) map[int64]*dom.Node {
	idx := make(map[int64]*dom.Node)
	dom.WalkPre(doc, func(n *dom.Node) bool {
		if n.XID != 0 {
			idx[n.XID] = n
		}
		return true
	})
	return idx
}
