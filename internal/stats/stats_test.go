package stats

import (
	"math/rand"
	"strings"
	"testing"

	"xydiff/internal/changesim"
	"xydiff/internal/diff"
	"xydiff/internal/dom"
)

func observePair(t *testing.T, c *Collector, oldXML, newXML string) {
	t.Helper()
	oldDoc, err := dom.ParseString(oldXML)
	if err != nil {
		t.Fatal(err)
	}
	newDoc, err := dom.ParseString(newXML)
	if err != nil {
		t.Fatal(err)
	}
	d, err := diff.Diff(oldDoc, newDoc, diff.Options{})
	if err != nil {
		t.Fatal(err)
	}
	c.Observe(oldDoc, newDoc, d)
}

func TestCollectorLearnsHotLabels(t *testing.T) {
	// Prices change, descriptions do not: the price label must come out
	// with the higher change rate — the paper's exact example.
	c := NewCollector()
	observePair(t, c,
		`<cat><p><price>1</price><desc>stable</desc></p><p><price>2</price><desc>stable too</desc></p></cat>`,
		`<cat><p><price>9</price><desc>stable</desc></p><p><price>8</price><desc>stable too</desc></p></cat>`)
	r := c.Report()
	if r.Versions != 1 {
		t.Fatalf("versions = %d", r.Versions)
	}
	rates := map[string]float64{}
	for _, l := range r.Labels {
		rates[l.Label] = l.Rate()
	}
	if rates["price"] <= rates["desc"] {
		t.Errorf("price rate %f should exceed desc rate %f", rates["price"], rates["desc"])
	}
	if r.Labels[0].Label != "price" {
		t.Errorf("hottest label = %q", r.Labels[0].Label)
	}
}

func TestCollectorCountsKinds(t *testing.T) {
	c := NewCollector()
	observePair(t, c,
		`<r><a>1</a><b/><mv/><x at="1"/></r>`,
		`<r><a>2</a><new/><deep><mv/></deep><x at="2"/></r>`)
	r := c.Report()
	if r.Ops.Updates == 0 || r.Ops.Inserts == 0 || r.Ops.Deletes == 0 {
		t.Errorf("ops = %v", r.Ops)
	}
	if r.Ops.AttrOps != 1 {
		t.Errorf("attr ops = %d", r.Ops.AttrOps)
	}
	if r.DeltaRatio() <= 0 {
		t.Errorf("delta ratio = %f", r.DeltaRatio())
	}
	var b strings.Builder
	r.WriteTable(&b)
	if !strings.Contains(b.String(), "label") || !strings.Contains(b.String(), "rate") {
		t.Errorf("table missing header:\n%s", b.String())
	}
}

func TestCollectorEmptyDelta(t *testing.T) {
	c := NewCollector()
	observePair(t, c, `<r><a>1</a></r>`, `<r><a>1</a></r>`)
	r := c.Report()
	if r.Ops.Total() != 0 || r.DeltaSize != 0 {
		t.Errorf("empty delta accumulated: %+v", r)
	}
	if r.Versions != 1 {
		t.Errorf("versions = %d", r.Versions)
	}
	// Occurrences still counted.
	if len(r.Labels) == 0 {
		t.Error("labels not counted for unchanged version")
	}
}

func TestCollectorOverSimulatedHistory(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	c := NewCollector()
	cur := changesim.Catalog(rng, 3, 10)
	for week := 0; week < 5; week++ {
		sim, err := changesim.Simulate(cur, changesim.Uniform(0.08, int64(week)))
		if err != nil {
			t.Fatal(err)
		}
		d, err := diff.Diff(cur, sim.New, diff.Options{})
		if err != nil {
			t.Fatal(err)
		}
		c.Observe(cur, sim.New, d)
		cur = sim.New
	}
	r := c.Report()
	if r.Versions != 5 {
		t.Fatalf("versions = %d", r.Versions)
	}
	if r.Ops.Total() == 0 {
		t.Fatal("no ops observed")
	}
	// The paper's observation: deltas are much smaller than documents
	// at weekly change rates.
	if ratio := r.DeltaRatio(); ratio <= 0 || ratio > 1.0 {
		t.Errorf("delta/doc ratio = %f, want within (0,1]", ratio)
	}
	// Rates must be sane probabilities-ish (changes per occurrence can
	// exceed 1 only for pathological labels).
	for _, l := range r.Labels {
		if l.Occurrences == 0 && l.Changes() == 0 {
			t.Errorf("empty label entry %q", l.Label)
		}
	}
}

func TestRateZeroOccurrences(t *testing.T) {
	l := LabelStats{Updates: 3}
	if l.Rate() != 0 {
		t.Error("rate without occurrences should be 0")
	}
}

func TestObserveVisitRates(t *testing.T) {
	c := NewCollector()

	// Never visited: unknown, reported as the midpoint.
	if rate, visits := c.ChangeRate("ghost"); rate != 0.5 || visits != 0 {
		t.Fatalf("unvisited ChangeRate = %v, %d; want 0.5, 0", rate, visits)
	}

	// A document that changes on every visit converges to 1.
	for i := 0; i < 6; i++ {
		c.ObserveVisit("hot", true)
	}
	if rate, visits := c.ChangeRate("hot"); rate != 1 || visits != 6 {
		t.Fatalf("hot ChangeRate = %v, %d; want 1, 6", rate, visits)
	}

	// A static document converges to 0 (first visit installs version 1,
	// every revisit finds it unchanged).
	c.ObserveVisit("cold", true)
	for i := 0; i < 8; i++ {
		c.ObserveVisit("cold", false)
	}
	if rate, _ := c.ChangeRate("cold"); rate >= 0.01 {
		t.Fatalf("cold ChangeRate = %v; want < 0.01", rate)
	}

	// A mixed history sits strictly between the extremes.
	for i := 0; i < 20; i++ {
		c.ObserveVisit("warm", i%2 == 0)
	}
	if rate, _ := c.ChangeRate("warm"); rate < 0.2 || rate > 0.8 {
		t.Fatalf("warm ChangeRate = %v; want within (0.2, 0.8)", rate)
	}
}

func TestObserveVisitEWMARecovers(t *testing.T) {
	// One spurious "unchanged" visit must not peg a hot document cold:
	// the EWMA pulls back toward 1 within a couple of visits.
	c := NewCollector()
	for i := 0; i < 5; i++ {
		c.ObserveVisit("d", true)
	}
	c.ObserveVisit("d", false)
	c.ObserveVisit("d", true)
	c.ObserveVisit("d", true)
	if rate, _ := c.ChangeRate("d"); rate < 0.8 {
		t.Fatalf("rate after recovery = %v; want >= 0.8", rate)
	}
}
