package delta_test

// Golden-file tests for the delta XML serialization. A diff-core change
// that alters the computed delta — different ops, different order,
// different XIDs — fails here loudly with a readable diff against the
// committed file instead of surfacing as a silent behavior shift.
// Regenerate the files with:
//
//	go test ./internal/delta -run TestGoldenDeltas -update

import (
	"flag"
	"os"
	"path/filepath"
	"testing"

	"xydiff/internal/diff"
	"xydiff/internal/dom"
)

var update = flag.Bool("update", false, "rewrite the golden delta files")

// goldenCases are small, hand-readable document pairs covering every
// operation kind the delta format serializes: updates, attribute ops,
// deletes, inserts, inter-parent and intra-parent moves.
var goldenCases = []struct {
	name     string
	old, new string
}{
	{
		name: "update-text",
		old:  `<doc><title>Detecting Changes</title><year>2001</year></doc>`,
		new:  `<doc><title>Detecting Changes</title><year>2002</year></doc>`,
	},
	{
		name: "attributes",
		old:  `<cfg><srv host="a" port="80"/><srv host="b" port="81" old="x"/></cfg>`,
		new:  `<cfg><srv host="a" port="8080"/><srv host="b" port="81" fresh="y"/></cfg>`,
	},
	{
		name: "insert-delete",
		old:  `<list><item>one</item><item>two</item><item>three</item></list>`,
		new:  `<list><item>one</item><item>three</item><item>four</item></list>`,
	},
	{
		name: "move-across-parents",
		old:  `<site><page id="p1"><sec>alpha</sec><sec>beta</sec></page><page id="p2"><sec>gamma</sec></page></site>`,
		new:  `<site><page id="p1"><sec>alpha</sec></page><page id="p2"><sec>gamma</sec><sec>beta</sec></page></site>`,
	},
	{
		name: "move-within-parent",
		old:  `<seq><a>111111</a><b>222222</b><c>333333</c><d>444444</d></seq>`,
		new:  `<seq><b>222222</b><c>333333</c><d>444444</d><a>111111</a></seq>`,
	},
	{
		name: "mixed",
		old: `<catalog><product sku="1"><name>chair</name><price>10</price></product>` +
			`<product sku="2"><name>desk</name><price>40</price></product></catalog>`,
		new: `<catalog><product sku="2"><name>desk</name><price>45</price></product>` +
			`<product sku="3"><name>lamp</name><price>7</price></product></catalog>`,
	},
}

func TestGoldenDeltas(t *testing.T) {
	for _, tc := range goldenCases {
		t.Run(tc.name, func(t *testing.T) {
			oldDoc, err := dom.ParseString(tc.old)
			if err != nil {
				t.Fatal(err)
			}
			newDoc, err := dom.ParseString(tc.new)
			if err != nil {
				t.Fatal(err)
			}
			d, err := diff.Diff(oldDoc, newDoc, diff.Options{})
			if err != nil {
				t.Fatal(err)
			}
			got, err := d.MarshalText()
			if err != nil {
				t.Fatal(err)
			}
			got = append(got, '\n')
			path := filepath.Join("testdata", "golden", tc.name+".delta.xml")
			if *update {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("%v (run with -update to create the golden file)", err)
			}
			if string(got) != string(want) {
				t.Errorf("delta for %q changed\n got: %s\nwant: %s\n(intentional? regenerate with -update)",
					tc.name, got, want)
			}
		})
	}
}
