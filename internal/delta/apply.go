package delta

import (
	"fmt"
	"sort"

	"xydiff/internal/dom"
	"xydiff/internal/xid"
)

// Apply transforms doc (in place) from the version the delta was
// computed against into the next version. doc must be the Document
// node, with XIDs assigned consistently with the delta.
//
// The engine is deterministic and order-independent with respect to
// d.Ops:
//
//  1. value and attribute operations are applied through an XID index;
//  2. moved subtrees are detached (they keep their identity);
//  3. deleted subtrees are detached and verified against the op's
//     recorded content;
//  4. inserted subtrees and moved subtrees are attached, grouped by
//     target parent and in ascending target position. Groups whose
//     parent does not exist yet (a move into a freshly inserted
//     subtree) wait for a later pass.
//
// On error the document may be partially modified; callers that need
// atomicity should apply to a clone (see ApplyClone).
//
// Apply never panics: deltas arrive from untrusted storage and the
// network, so beyond the explicit validation below any residual panic
// (e.g. an out-of-range tree mutation a corrupt delta slips past the
// checks) is converted into an error.
func Apply(doc *dom.Node, d *Delta) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("delta: apply: internal panic on corrupt delta: %v", r)
		}
	}()
	if d.Empty() {
		return nil
	}
	index := buildIndex(doc)

	// Phase 1: updates and attribute ops.
	for _, op := range d.Ops {
		if err := applyValueOp(index, op); err != nil {
			return err
		}
	}

	// Phase 2: detach moved subtrees.
	type attachment struct {
		pos  int
		node *dom.Node
	}
	pending := make(map[int64][]attachment) // target parent XID -> items
	for _, op := range d.Ops {
		mv, ok := op.(Move)
		if !ok {
			continue
		}
		n := index[mv.XID]
		if n == nil {
			return fmt.Errorf("delta: move: no node with XID %d", mv.XID)
		}
		if n.Parent == nil || n.Parent.XID != mv.FromParent {
			return fmt.Errorf("delta: move %d: parent is %v, op says %d", mv.XID, parentXID(n), mv.FromParent)
		}
		n.Detach()
		pending[mv.ToParent] = append(pending[mv.ToParent], attachment{pos: mv.ToPos, node: n})
	}

	// Phase 3: detach deleted subtrees.
	for _, op := range d.Ops {
		del, ok := op.(Delete)
		if !ok {
			continue
		}
		n := index[del.XID]
		if n == nil {
			return fmt.Errorf("delta: delete: no node with XID %d", del.XID)
		}
		if n.Parent == nil || n.Parent.XID != del.Parent {
			return fmt.Errorf("delta: delete %d: parent is %v, op says %d", del.XID, parentXID(n), del.Parent)
		}
		if del.Subtree != nil && !dom.Equal(n, del.Subtree) {
			return fmt.Errorf("delta: delete %d: document content differs from recorded subtree: %s",
				del.XID, dom.Diagnose(n, del.Subtree))
		}
		n.Detach()
		// The detached nodes are gone; drop them from the index so a
		// corrupt delta cannot re-attach below a deleted node.
		dom.WalkPre(n, func(x *dom.Node) bool {
			delete(index, x.XID)
			return true
		})
	}

	// Phase 4: prepare insertions.
	for _, op := range d.Ops {
		ins, ok := op.(Insert)
		if !ok {
			continue
		}
		if ins.Subtree == nil {
			return fmt.Errorf("delta: insert %d: missing subtree content", ins.XID)
		}
		sub := ins.Subtree.Clone()
		if ins.XIDMap.Len() > 0 {
			if err := ins.XIDMap.ApplyTo(sub); err != nil {
				return fmt.Errorf("delta: insert %d: %w", ins.XID, err)
			}
		}
		pending[ins.Parent] = append(pending[ins.Parent], attachment{pos: ins.Pos, node: sub})
	}

	// Phase 5: attach, multi-pass until every group's parent exists.
	for len(pending) > 0 {
		parents := make([]int64, 0, len(pending))
		for p := range pending {
			if _, ok := index[p]; ok {
				parents = append(parents, p)
			}
		}
		if len(parents) == 0 {
			return fmt.Errorf("delta: %d attachment group(s) reference unknown parents", len(pending))
		}
		sort.Slice(parents, func(i, j int) bool { return parents[i] < parents[j] })
		for _, p := range parents {
			parent := index[p]
			group := pending[p]
			delete(pending, p)
			sort.SliceStable(group, func(i, j int) bool { return group[i].pos < group[j].pos })
			for _, at := range group {
				if err := parent.InsertAt(at.pos, at.node); err != nil {
					return fmt.Errorf("delta: attach at %d[%d]: %w", p, at.pos, err)
				}
				// Newly reachable nodes become attachment targets for
				// later passes (moves into inserted subtrees).
				dom.WalkPre(at.node, func(x *dom.Node) bool {
					if x.XID != 0 {
						index[x.XID] = x
					}
					return true
				})
			}
		}
	}
	return nil
}

// ApplyClone applies the delta to a deep copy of doc and returns it;
// doc itself is never modified, even on error.
func ApplyClone(doc *dom.Node, d *Delta) (*dom.Node, error) {
	clone := doc.Clone()
	if err := Apply(clone, d); err != nil {
		return nil, err
	}
	return clone, nil
}

func applyValueOp(index map[int64]*dom.Node, op Op) error {
	switch o := op.(type) {
	case Update:
		n := index[o.XID]
		if n == nil {
			return fmt.Errorf("delta: update: no node with XID %d", o.XID)
		}
		if n.Value != o.Old {
			return fmt.Errorf("delta: update %d: value %q, op says %q", o.XID, n.Value, o.Old)
		}
		n.Value = o.New
	case InsertAttr:
		n := index[o.XID]
		if n == nil {
			return fmt.Errorf("delta: insert-attribute: no node with XID %d", o.XID)
		}
		if _, exists := n.Attribute(o.Name); exists {
			return fmt.Errorf("delta: insert-attribute %d: %s already present", o.XID, o.Name)
		}
		n.SetAttribute(o.Name, o.Value)
	case DeleteAttr:
		n := index[o.XID]
		if n == nil {
			return fmt.Errorf("delta: delete-attribute: no node with XID %d", o.XID)
		}
		if v, exists := n.Attribute(o.Name); !exists {
			return fmt.Errorf("delta: delete-attribute %d: %s absent", o.XID, o.Name)
		} else if v != o.Old {
			return fmt.Errorf("delta: delete-attribute %d: %s=%q, op says %q", o.XID, o.Name, v, o.Old)
		}
		n.RemoveAttribute(o.Name)
	case UpdateAttr:
		n := index[o.XID]
		if n == nil {
			return fmt.Errorf("delta: update-attribute: no node with XID %d", o.XID)
		}
		if v, exists := n.Attribute(o.Name); !exists {
			return fmt.Errorf("delta: update-attribute %d: %s absent", o.XID, o.Name)
		} else if v != o.Old {
			return fmt.Errorf("delta: update-attribute %d: %s=%q, op says %q", o.XID, o.Name, v, o.Old)
		}
		n.SetAttribute(o.Name, o.New)
	}
	return nil
}

func buildIndex(doc *dom.Node) map[int64]*dom.Node {
	index := make(map[int64]*dom.Node, 256)
	dom.WalkPre(doc, func(n *dom.Node) bool {
		if n.XID != 0 {
			index[n.XID] = n
		}
		return true
	})
	return index
}

func parentXID(n *dom.Node) int64 {
	if n.Parent == nil {
		return 0
	}
	return n.Parent.XID
}

// Validate performs static sanity checks on a delta without a document:
// XID maps must agree with subtree sizes and roots, and positions must
// be non-negative. It catches corrupt serialized deltas early.
func Validate(d *Delta) error {
	for _, op := range d.Ops {
		switch o := op.(type) {
		case Insert:
			if err := validateSubtreeOp(o.XID, o.XIDMap, o.Pos, o.Subtree); err != nil {
				return fmt.Errorf("delta: insert: %w", err)
			}
		case Delete:
			if err := validateSubtreeOp(o.XID, o.XIDMap, o.Pos, o.Subtree); err != nil {
				return fmt.Errorf("delta: delete: %w", err)
			}
		case Move:
			if o.FromPos < 0 || o.ToPos < 0 {
				return fmt.Errorf("delta: move %d: negative position", o.XID)
			}
		}
	}
	return nil
}

func validateSubtreeOp(x int64, m xid.Map, pos int, sub *dom.Node) error {
	if pos < 0 {
		return fmt.Errorf("xid %d: negative position", x)
	}
	if sub == nil {
		return fmt.Errorf("xid %d: missing subtree", x)
	}
	if m.Len() != sub.Size() {
		return fmt.Errorf("xid %d: xid-map has %d entries for %d nodes", x, m.Len(), sub.Size())
	}
	if m.Root() != x {
		return fmt.Errorf("xid %d: xid-map root is %d", x, m.Root())
	}
	return nil
}
