package delta

import (
	"fmt"
	"sort"
	"strings"
)

// Delta is a set of elementary operations describing the changes
// between two consecutive versions of an XML document. Operation order
// inside the set carries no meaning; Apply sequences the work itself
// (updates, then detachments, then attachments).
type Delta struct {
	Ops []Op
	// NextXID is the first XID not used by either version; a store
	// uses it to seed the allocator for the next diff. Zero means
	// unknown.
	NextXID int64
}

// Empty reports whether the delta carries no operations (the two
// versions are identical).
func (d *Delta) Empty() bool { return d == nil || len(d.Ops) == 0 }

// Counts tallies the operations by kind.
type Counts struct {
	Inserts, Deletes, Updates, Moves, AttrOps int
}

// Total returns the total number of operations.
func (c Counts) Total() int {
	return c.Inserts + c.Deletes + c.Updates + c.Moves + c.AttrOps
}

// String summarizes the tally, e.g. "3 ins, 1 del, 2 upd, 1 mov, 0 attr".
func (c Counts) String() string {
	return fmt.Sprintf("%d ins, %d del, %d upd, %d mov, %d attr",
		c.Inserts, c.Deletes, c.Updates, c.Moves, c.AttrOps)
}

// Count tallies the delta's operations by kind.
func (d *Delta) Count() Counts {
	var c Counts
	for _, op := range d.Ops {
		switch op.Kind() {
		case KindInsert:
			c.Inserts++
		case KindDelete:
			c.Deletes++
		case KindUpdate:
			c.Updates++
		case KindMove:
			c.Moves++
		default:
			c.AttrOps++
		}
	}
	return c
}

// Invert returns the delta that transforms the new version back into
// the old one: completed deltas carry enough information (deleted
// content, old values) for this to be purely syntactic. It errors on
// an operation type the package does not know instead of panicking.
func (d *Delta) Invert() (*Delta, error) {
	inv := &Delta{Ops: make([]Op, len(d.Ops)), NextXID: d.NextXID}
	for i, op := range d.Ops {
		io, err := invert(op)
		if err != nil {
			return nil, err
		}
		inv.Ops[i] = io
	}
	inv.sort()
	return inv, nil
}

// sort puts operations in the canonical order used for serialization:
// by kind (deletes, inserts, moves, updates, attributes) and then by
// target XID. Apply's semantics do not depend on this order; it only
// makes deltas stable and diffable.
func (d *Delta) sort() {
	rank := func(k Kind) int {
		switch k {
		case KindDelete:
			return 0
		case KindInsert:
			return 1
		case KindMove:
			return 2
		case KindUpdate:
			return 3
		default:
			return 4
		}
	}
	sort.SliceStable(d.Ops, func(i, j int) bool {
		ri, rj := rank(d.Ops[i].Kind()), rank(d.Ops[j].Kind())
		if ri != rj {
			return ri < rj
		}
		return d.Ops[i].TargetXID() < d.Ops[j].TargetXID()
	})
}

// Normalize sorts the operations canonically and returns the delta.
func (d *Delta) Normalize() *Delta {
	d.sort()
	return d
}

// String renders a short human-readable description, one op per line.
func (d *Delta) String() string {
	var b strings.Builder
	for _, op := range d.Ops {
		switch o := op.(type) {
		case Insert:
			fmt.Fprintf(&b, "insert %s under %d at %d: %s\n", o.XIDMap, o.Parent, o.Pos, clip(o.Subtree.String()))
		case Delete:
			fmt.Fprintf(&b, "delete %s under %d at %d\n", o.XIDMap, o.Parent, o.Pos)
		case Update:
			fmt.Fprintf(&b, "update %d: %q -> %q\n", o.XID, clip(o.Old), clip(o.New))
		case Move:
			fmt.Fprintf(&b, "move %d: %d[%d] -> %d[%d]\n", o.XID, o.FromParent, o.FromPos, o.ToParent, o.ToPos)
		case InsertAttr:
			fmt.Fprintf(&b, "insert-attr %d %s=%q\n", o.XID, o.Name, o.Value)
		case DeleteAttr:
			fmt.Fprintf(&b, "delete-attr %d %s (was %q)\n", o.XID, o.Name, o.Old)
		case UpdateAttr:
			fmt.Fprintf(&b, "update-attr %d %s: %q -> %q\n", o.XID, o.Name, o.Old, o.New)
		}
	}
	return b.String()
}

func clip(s string) string {
	if len(s) > 60 {
		return s[:57] + "..."
	}
	return s
}
