package delta

import (
	"fmt"
	"io"
	"strconv"
	"strings"

	"xydiff/internal/dom"
	"xydiff/internal/xid"
)

// The delta itself is an XML document (the paper stores deltas in the
// repository and queries them like any other document). Positions are
// serialized 1-based, as in the paper's examples; in-memory ops use
// 0-based positions.

// ToDoc renders the delta as an XML document tree. It errors on an
// operation type the package does not know instead of panicking.
func (d *Delta) ToDoc() (*dom.Node, error) {
	doc := dom.NewDocument()
	root := dom.NewElement("delta")
	if d.NextXID != 0 {
		root.SetAttribute("nextxid", strconv.FormatInt(d.NextXID, 10))
	}
	doc.Append(root)
	for _, op := range d.Ops {
		e, err := opToElement(op)
		if err != nil {
			return nil, err
		}
		root.Append(e)
	}
	return doc, nil
}

// WriteTo serializes the delta as XML.
func (d *Delta) WriteTo(w io.Writer) (int64, error) {
	doc, err := d.ToDoc()
	if err != nil {
		return 0, err
	}
	return doc.WriteTo(w)
}

// MarshalText renders the delta as XML bytes.
func (d *Delta) MarshalText() ([]byte, error) {
	var b strings.Builder
	if _, err := d.WriteTo(&b); err != nil {
		return nil, err
	}
	return []byte(b.String()), nil
}

// Size returns the size in bytes of the delta's XML serialization, the
// quality measure used throughout the paper's Section 6.
func (d *Delta) Size() int {
	b, _ := d.MarshalText()
	return len(b)
}

func opToElement(op Op) (*dom.Node, error) {
	switch o := op.(type) {
	case Insert:
		e := dom.NewElement("insert")
		e.SetAttribute("xid", strconv.FormatInt(o.XID, 10))
		e.SetAttribute("xidmap", o.XIDMap.String())
		e.SetAttribute("parent", strconv.FormatInt(o.Parent, 10))
		e.SetAttribute("pos", strconv.Itoa(o.Pos+1))
		if o.Subtree != nil {
			e.Append(stripXIDs(o.Subtree.Clone()))
		}
		return e, nil
	case Delete:
		e := dom.NewElement("delete")
		e.SetAttribute("xid", strconv.FormatInt(o.XID, 10))
		e.SetAttribute("xidmap", o.XIDMap.String())
		e.SetAttribute("parent", strconv.FormatInt(o.Parent, 10))
		e.SetAttribute("pos", strconv.Itoa(o.Pos+1))
		if o.Subtree != nil {
			e.Append(stripXIDs(o.Subtree.Clone()))
		}
		return e, nil
	case Update:
		e := dom.NewElement("update")
		e.SetAttribute("xid", strconv.FormatInt(o.XID, 10))
		oldEl := dom.NewElement("old")
		if o.Old != "" {
			oldEl.Append(dom.NewText(o.Old))
		}
		newEl := dom.NewElement("new")
		if o.New != "" {
			newEl.Append(dom.NewText(o.New))
		}
		e.Append(oldEl, newEl)
		return e, nil
	case Move:
		e := dom.NewElement("move")
		e.SetAttribute("xid", strconv.FormatInt(o.XID, 10))
		e.SetAttribute("from-parent", strconv.FormatInt(o.FromParent, 10))
		e.SetAttribute("from-pos", strconv.Itoa(o.FromPos+1))
		e.SetAttribute("to-parent", strconv.FormatInt(o.ToParent, 10))
		e.SetAttribute("to-pos", strconv.Itoa(o.ToPos+1))
		return e, nil
	case InsertAttr:
		e := dom.NewElement("insert-attribute")
		e.SetAttribute("xid", strconv.FormatInt(o.XID, 10))
		e.SetAttribute("name", o.Name)
		e.SetAttribute("value", o.Value)
		return e, nil
	case DeleteAttr:
		e := dom.NewElement("delete-attribute")
		e.SetAttribute("xid", strconv.FormatInt(o.XID, 10))
		e.SetAttribute("name", o.Name)
		e.SetAttribute("old", o.Old)
		return e, nil
	case UpdateAttr:
		e := dom.NewElement("update-attribute")
		e.SetAttribute("xid", strconv.FormatInt(o.XID, 10))
		e.SetAttribute("name", o.Name)
		e.SetAttribute("old", o.Old)
		e.SetAttribute("new", o.New)
		return e, nil
	default:
		return nil, fmt.Errorf("delta: serialize: unknown op type %T", op)
	}
}

// stripXIDs clears XIDs on a cloned subtree before serialization; they
// are carried by the op's xidmap attribute instead.
func stripXIDs(n *dom.Node) *dom.Node {
	dom.WalkPre(n, func(x *dom.Node) bool {
		x.XID = 0
		return true
	})
	return n
}

// Parse reads a delta from its XML serialization.
func Parse(r io.Reader) (*Delta, error) {
	// Whitespace must be preserved: update values and text subtrees may
	// legitimately contain (or be) whitespace. Deltas serialized by this
	// package add no indentation, so nothing spurious appears.
	doc, err := dom.ParseWithOptions(r, dom.ParseOptions{KeepWhitespace: true, KeepComments: true, KeepProcInsts: true})
	if err != nil {
		return nil, err
	}
	return FromDoc(doc)
}

// ParseString reads a delta from a string.
func ParseString(s string) (*Delta, error) { return Parse(strings.NewReader(s)) }

// FromDoc decodes a delta document produced by ToDoc.
func FromDoc(doc *dom.Node) (*Delta, error) {
	root := doc.Root()
	if root == nil || root.Name != "delta" {
		return nil, fmt.Errorf("delta: document root is not <delta>")
	}
	d := &Delta{}
	if s, ok := root.Attribute("nextxid"); ok {
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("delta: bad nextxid %q", s)
		}
		d.NextXID = v
	}
	for _, e := range root.Children {
		if e.Type != dom.Element {
			continue // tolerate stray whitespace between ops
		}
		op, err := elementToOp(e)
		if err != nil {
			return nil, err
		}
		d.Ops = append(d.Ops, op)
	}
	if err := Validate(d); err != nil {
		return nil, err
	}
	return d, nil
}

func elementToOp(e *dom.Node) (Op, error) {
	switch e.Name {
	case "insert":
		x, m, parent, pos, sub, err := subtreeOpFields(e)
		if err != nil {
			return nil, err
		}
		return Insert{XID: x, XIDMap: m, Parent: parent, Pos: pos, Subtree: sub}, nil
	case "delete":
		x, m, parent, pos, sub, err := subtreeOpFields(e)
		if err != nil {
			return nil, err
		}
		return Delete{XID: x, XIDMap: m, Parent: parent, Pos: pos, Subtree: sub}, nil
	case "update":
		x, err := intAttr(e, "xid")
		if err != nil {
			return nil, err
		}
		var oldV, newV string
		var haveOld, haveNew bool
		for _, c := range e.Children {
			switch {
			case c.Type == dom.Element && c.Name == "old":
				oldV, haveOld = c.TextContent(), true
			case c.Type == dom.Element && c.Name == "new":
				newV, haveNew = c.TextContent(), true
			}
		}
		if !haveOld || !haveNew {
			return nil, fmt.Errorf("delta: update %d: missing <old> or <new>", x)
		}
		return Update{XID: x, Old: oldV, New: newV}, nil
	case "move":
		x, err := intAttr(e, "xid")
		if err != nil {
			return nil, err
		}
		fp, err := intAttr(e, "from-parent")
		if err != nil {
			return nil, err
		}
		fpos, err := posAttr(e, "from-pos")
		if err != nil {
			return nil, err
		}
		tp, err := intAttr(e, "to-parent")
		if err != nil {
			return nil, err
		}
		tpos, err := posAttr(e, "to-pos")
		if err != nil {
			return nil, err
		}
		return Move{XID: x, FromParent: fp, FromPos: fpos, ToParent: tp, ToPos: tpos}, nil
	case "insert-attribute":
		x, err := intAttr(e, "xid")
		if err != nil {
			return nil, err
		}
		name, value := attrOrEmpty(e, "name"), attrOrEmpty(e, "value")
		if name == "" {
			return nil, fmt.Errorf("delta: insert-attribute %d: missing name", x)
		}
		return InsertAttr{XID: x, Name: name, Value: value}, nil
	case "delete-attribute":
		x, err := intAttr(e, "xid")
		if err != nil {
			return nil, err
		}
		name := attrOrEmpty(e, "name")
		if name == "" {
			return nil, fmt.Errorf("delta: delete-attribute %d: missing name", x)
		}
		return DeleteAttr{XID: x, Name: name, Old: attrOrEmpty(e, "old")}, nil
	case "update-attribute":
		x, err := intAttr(e, "xid")
		if err != nil {
			return nil, err
		}
		name := attrOrEmpty(e, "name")
		if name == "" {
			return nil, fmt.Errorf("delta: update-attribute %d: missing name", x)
		}
		return UpdateAttr{XID: x, Name: name, Old: attrOrEmpty(e, "old"), New: attrOrEmpty(e, "new")}, nil
	default:
		return nil, fmt.Errorf("delta: unknown operation element <%s>", e.Name)
	}
}

func subtreeOpFields(e *dom.Node) (x int64, m xid.Map, parent int64, pos int, sub *dom.Node, err error) {
	if x, err = intAttr(e, "xid"); err != nil {
		return
	}
	ms, ok := e.Attribute("xidmap")
	if !ok {
		err = fmt.Errorf("delta: <%s> %d: missing xidmap", e.Name, x)
		return
	}
	if m, err = xid.ParseMap(ms); err != nil {
		return
	}
	if parent, err = intAttr(e, "parent"); err != nil {
		return
	}
	if pos, err = posAttr(e, "pos"); err != nil {
		return
	}
	var content []*dom.Node
	for _, c := range e.Children {
		content = append(content, c)
	}
	if len(content) != 1 {
		err = fmt.Errorf("delta: <%s> %d: expected exactly one content node, got %d", e.Name, x, len(content))
		return
	}
	sub = content[0].Clone()
	if applyErr := m.ApplyTo(sub); applyErr != nil {
		err = fmt.Errorf("delta: <%s> %d: %w", e.Name, x, applyErr)
		return
	}
	return
}

func intAttr(e *dom.Node, name string) (int64, error) {
	s, ok := e.Attribute(name)
	if !ok {
		return 0, fmt.Errorf("delta: <%s>: missing attribute %s", e.Name, name)
	}
	v, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("delta: <%s>: bad attribute %s=%q", e.Name, name, s)
	}
	return v, nil
}

// posAttr reads a 1-based serialized position into the 0-based
// in-memory form.
func posAttr(e *dom.Node, name string) (int, error) {
	v, err := intAttr(e, name)
	if err != nil {
		return 0, err
	}
	if v < 1 {
		return 0, fmt.Errorf("delta: <%s>: position %s=%d must be >= 1", e.Name, name, v)
	}
	return int(v - 1), nil
}

func attrOrEmpty(e *dom.Node, name string) string {
	v, _ := e.Attribute(name)
	return v
}
