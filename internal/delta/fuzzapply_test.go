package delta_test

// FuzzApply lives outside package delta so it can use the diff package
// to generate realistic delta seeds without an import cycle.

import (
	"strings"
	"testing"

	"xydiff/internal/delta"
	"xydiff/internal/diff"
	"xydiff/internal/dom"
	"xydiff/internal/xid"
)

// FuzzApply: applying an arbitrary (possibly hostile) delta document to
// a document must either succeed or return an error — never panic and
// never corrupt the tree into something that cannot serialize. This is
// the hardened path the server walks when replaying journals or serving
// patch requests over untrusted data.
func FuzzApply(f *testing.F) {
	const baseXML = `<Catalog><Product><Name>tx123</Name><Price>$300</Price></Product>` +
		`<Product><Name>zy456</Name></Product></Catalog>`

	// Realistic seeds: genuine deltas produced by the diff between the
	// base and a few edits of it.
	variants := []string{
		`<Catalog><Product><Name>tx123</Name><Price>$450</Price></Product></Catalog>`,
		`<Catalog><Product><Name>zy456</Name></Product><Product><Name>tx123</Name><Price>$300</Price></Product></Catalog>`,
		`<Catalog><Product keep="y"><Name>tx123</Name></Product><New/></Catalog>`,
	}
	for _, v := range variants {
		oldDoc, err := dom.ParseString(baseXML)
		if err != nil {
			f.Fatal(err)
		}
		xid.Assign(oldDoc)
		newDoc, err := dom.ParseString(v)
		if err != nil {
			f.Fatal(err)
		}
		d, err := diff.Diff(oldDoc, newDoc, diff.Options{})
		if err != nil {
			f.Fatal(err)
		}
		text, err := d.MarshalText()
		if err != nil {
			f.Fatal(err)
		}
		f.Add(string(text))
	}
	// Hostile seeds: structurally plausible but wrong or out of range.
	for _, s := range []string{
		`<delta><insert parent="999" pos="0" xid="50" xidmap="(50)"><e/></insert></delta>`,
		`<delta><delete parent="1" pos="40" xid="2" xidmap="(2)"><x/></delete></delta>`,
		`<delta><move from-parent="1" from-pos="0" to-parent="1" to-pos="99" xid="1"/></delta>`,
		`<delta><update xid="7"><old>nope</old><new>yep</new></update></delta>`,
		`<delta><insert parent="3" pos="-1" xid="50" xidmap="(50)"><e/></insert></delta>`,
		`<delta><insert-attribute name="a" value="v" xid="3"/><delete-attribute name="a" value="v" xid="3"/></delta>`,
	} {
		f.Add(s)
	}

	f.Fuzz(func(t *testing.T, deltaXML string) {
		d, err := delta.Parse(strings.NewReader(deltaXML))
		if err != nil {
			return // not a delta document; nothing to apply
		}
		doc, err := dom.ParseString(baseXML)
		if err != nil {
			t.Fatal(err)
		}
		xid.Assign(doc)
		patched, err := delta.ApplyClone(doc, d)
		if err != nil {
			return // rejecting a hostile delta is correct
		}
		// A delta the engine accepted must leave a serializable tree.
		if s := patched.String(); s == "" && len(patched.Children) > 0 {
			t.Fatalf("accepted delta produced unserializable tree")
		}
	})
}
