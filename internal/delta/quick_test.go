package delta

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"xydiff/internal/dom"
	"xydiff/internal/xid"
)

// RandomOps generates structurally valid (though not necessarily
// applicable) deltas for serialization properties.
type RandomOps struct {
	D *Delta
}

// Generate implements quick.Generator.
func (RandomOps) Generate(r *rand.Rand, size int) reflect.Value {
	if size > 20 {
		size = 20
	}
	d := &Delta{}
	n := r.Intn(size + 1)
	for i := 0; i < n; i++ {
		x := int64(r.Intn(500) + 1)
		switch r.Intn(7) {
		case 0:
			sub := dom.NewElement("e")
			if r.Intn(2) == 0 {
				// Empty text nodes cannot survive serialization; the
				// real tree model never contains them.
				w := randWord(r)
				if w == "" {
					w = "t"
				}
				sub.Append(dom.NewText(w))
			}
			var m xid.Map
			dom.WalkPost(sub, func(node *dom.Node) bool {
				node.XID = x
				m.Append(x)
				x++
				return true
			})
			d.Ops = append(d.Ops, Insert{XID: m.Root(), XIDMap: m, Parent: int64(r.Intn(100) + 1), Pos: r.Intn(5), Subtree: sub})
		case 1:
			sub := dom.NewElement("gone")
			sub.XID = x
			var m xid.Map
			m.Append(x)
			d.Ops = append(d.Ops, Delete{XID: x, XIDMap: m, Parent: int64(r.Intn(100) + 1), Pos: r.Intn(5), Subtree: sub})
		case 2:
			d.Ops = append(d.Ops, Update{XID: x, Old: randWord(r), New: randWord(r)})
		case 3:
			d.Ops = append(d.Ops, Move{XID: x, FromParent: int64(r.Intn(100) + 1), FromPos: r.Intn(5), ToParent: int64(r.Intn(100) + 1), ToPos: r.Intn(5)})
		case 4:
			d.Ops = append(d.Ops, InsertAttr{XID: x, Name: randName(r), Value: randWord(r)})
		case 5:
			d.Ops = append(d.Ops, DeleteAttr{XID: x, Name: randName(r), Old: randWord(r)})
		default:
			d.Ops = append(d.Ops, UpdateAttr{XID: x, Name: randName(r), Old: randWord(r), New: randWord(r)})
		}
	}
	d.NextXID = int64(r.Intn(1000) + 600)
	return reflect.ValueOf(RandomOps{D: d.Normalize()})
}

func randName(r *rand.Rand) string {
	names := []string{"k", "key", "data-x", "ns:attr"}
	return names[r.Intn(len(names))]
}

func randWord(r *rand.Rand) string {
	words := []string{"alpha", "beta", "", "x y", "<odd&>", "café"}
	return words[r.Intn(len(words))]
}

func TestQuickInvertIsInvolution(t *testing.T) {
	f := func(ro RandomOps) bool {
		once, err := ro.D.Invert()
		if err != nil {
			return false
		}
		twice, err := once.Invert()
		if err != nil {
			return false
		}
		a, err1 := ro.D.MarshalText()
		b, err2 := twice.MarshalText()
		return err1 == nil && err2 == nil && string(a) == string(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickXMLRoundTrip(t *testing.T) {
	f := func(ro RandomOps) bool {
		text, err := ro.D.MarshalText()
		if err != nil {
			return false
		}
		parsed, err := ParseString(string(text))
		if err != nil {
			return false
		}
		text2, err := parsed.MarshalText()
		return err == nil && string(text) == string(text2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickNormalizeIdempotent(t *testing.T) {
	f := func(ro RandomOps) bool {
		a, _ := ro.D.Normalize().MarshalText()
		b, _ := ro.D.Normalize().Normalize().MarshalText()
		return string(a) == string(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickCountsMatchOps(t *testing.T) {
	f := func(ro RandomOps) bool {
		return ro.D.Count().Total() == len(ro.D.Ops)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestXMLRoundTripGenerated(t *testing.T) {
	r := rand.New(rand.NewSource(0))
	for trial := 0; trial < 2000; trial++ {
		ro := RandomOps{}.Generate(r, 20).Interface().(RandomOps)
		text, err := ro.D.MarshalText()
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		parsed, err := ParseString(string(text))
		if err != nil {
			t.Fatalf("trial %d parse: %v\n%s", trial, err, text)
		}
		text2, _ := parsed.MarshalText()
		if string(text) != string(text2) {
			t.Fatalf("trial %d unstable:\nA: %s\nB: %s", trial, text, text2)
		}
	}
}
