// Package delta implements the change representation model the paper
// adopts from Marian et al. (VLDB 2001): a delta is a set of elementary
// operations — subtree deletions, subtree insertions, value updates,
// attribute changes and subtree moves — expressed against persistent
// node identifiers (XIDs), itself stored as an XML document.
//
// Deltas here are "completed": a delete carries the removed subtree, an
// update carries both the old and the new value. A completed delta
// describes the transformation in both directions, so any delta can be
// inverted (Invert) and any version of a document reconstructed from
// any other version plus the connecting deltas (see package store).
package delta

import (
	"fmt"

	"xydiff/internal/dom"
	"xydiff/internal/xid"
)

// Kind identifies the elementary operation an Op performs.
type Kind uint8

// Operation kinds.
const (
	KindInsert Kind = iota
	KindDelete
	KindUpdate
	KindMove
	KindInsertAttr
	KindDeleteAttr
	KindUpdateAttr
)

// String returns the delta-XML element name for the kind.
func (k Kind) String() string {
	switch k {
	case KindInsert:
		return "insert"
	case KindDelete:
		return "delete"
	case KindUpdate:
		return "update"
	case KindMove:
		return "move"
	case KindInsertAttr:
		return "insert-attribute"
	case KindDeleteAttr:
		return "delete-attribute"
	case KindUpdateAttr:
		return "update-attribute"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Op is one elementary operation of a delta.
type Op interface {
	Kind() Kind
	// TargetXID returns the persistent identifier of the node the
	// operation is about (the subtree root for structural operations).
	TargetXID() int64
}

// Insert adds a subtree as the Pos-th child (0-based) of the node
// identified by Parent. Positions refer to the target document: after
// the whole delta is applied, the subtree root sits at index Pos.
//
// Subtree is the inserted content pruned of any node that arrives by a
// Move operation; XIDMap lists the (fresh) XIDs of the content in
// post-order, so XID == XIDMap.Root().
type Insert struct {
	XID     int64
	XIDMap  xid.Map
	Parent  int64
	Pos     int
	Subtree *dom.Node
}

// Kind implements Op.
func (Insert) Kind() Kind { return KindInsert }

// TargetXID implements Op.
func (o Insert) TargetXID() int64 { return o.XID }

// Delete removes the subtree rooted at XID, which sits at index Pos
// (0-based, in the source document) under Parent. Subtree holds the
// removed content pruned of any node that leaves by a Move operation,
// making the delta completed and invertible.
type Delete struct {
	XID     int64
	XIDMap  xid.Map
	Parent  int64
	Pos     int
	Subtree *dom.Node
}

// Kind implements Op.
func (Delete) Kind() Kind { return KindDelete }

// TargetXID implements Op.
func (o Delete) TargetXID() int64 { return o.XID }

// Update replaces the value of the node identified by XID (character
// data for text nodes, body for comments and processing instructions).
type Update struct {
	XID int64
	Old string
	New string
}

// Kind implements Op.
func (Update) Kind() Kind { return KindUpdate }

// TargetXID implements Op.
func (o Update) TargetXID() int64 { return o.XID }

// Move relocates the subtree rooted at XID from being the FromPos-th
// child of FromParent (source-document coordinates) to being the
// ToPos-th child of ToParent (target-document coordinates). Following
// the paper, a move is much cheaper than delete+insert: the subtree
// content never appears in the delta.
type Move struct {
	XID        int64
	FromParent int64
	FromPos    int
	ToParent   int64
	ToPos      int
}

// Kind implements Op.
func (Move) Kind() Kind { return KindMove }

// TargetXID implements Op.
func (o Move) TargetXID() int64 { return o.XID }

// InsertAttr adds an attribute to the element identified by XID.
// Attributes are not nodes in this model (they have no XIDs and no
// order); they are addressed by owner XID plus name.
type InsertAttr struct {
	XID   int64
	Name  string
	Value string
}

// Kind implements Op.
func (InsertAttr) Kind() Kind { return KindInsertAttr }

// TargetXID implements Op.
func (o InsertAttr) TargetXID() int64 { return o.XID }

// DeleteAttr removes an attribute; Old records the removed value so the
// operation is invertible.
type DeleteAttr struct {
	XID  int64
	Name string
	Old  string
}

// Kind implements Op.
func (DeleteAttr) Kind() Kind { return KindDeleteAttr }

// TargetXID implements Op.
func (o DeleteAttr) TargetXID() int64 { return o.XID }

// UpdateAttr changes an attribute's value.
type UpdateAttr struct {
	XID  int64
	Name string
	Old  string
	New  string
}

// Kind implements Op.
func (UpdateAttr) Kind() Kind { return KindUpdateAttr }

// TargetXID implements Op.
func (o UpdateAttr) TargetXID() int64 { return o.XID }

// invert returns the op that undoes o. An op type this package does
// not know (a foreign Op implementation, or a corrupt in-memory delta)
// is an error, not a panic: deltas flow in from untrusted storage and
// the network, and the daemon must never die on one.
func invert(o Op) (Op, error) {
	switch op := o.(type) {
	case Insert:
		return Delete(op), nil
	case Delete:
		return Insert(op), nil
	case Update:
		return Update{XID: op.XID, Old: op.New, New: op.Old}, nil
	case Move:
		return Move{
			XID:        op.XID,
			FromParent: op.ToParent, FromPos: op.ToPos,
			ToParent: op.FromParent, ToPos: op.FromPos,
		}, nil
	case InsertAttr:
		return DeleteAttr{XID: op.XID, Name: op.Name, Old: op.Value}, nil
	case DeleteAttr:
		return InsertAttr{XID: op.XID, Name: op.Name, Value: op.Old}, nil
	case UpdateAttr:
		return UpdateAttr{XID: op.XID, Name: op.Name, Old: op.New, New: op.Old}, nil
	default:
		return nil, fmt.Errorf("delta: invert: unknown op type %T", o)
	}
}
