package delta

import (
	"strings"
	"testing"

	"xydiff/internal/dom"
	"xydiff/internal/xid"
)

// buildCatalog returns the paper's running example with XIDs assigned
// in postfix order:
//
//	Title text=1 Title=2, Name text=3 Name=4, Price text=5 Price=6,
//	Product=7, Discount=8, Name text=9 Name=10, Price text=11 Price=12,
//	Product=13, NewProducts=14, Category=15, #document=16.

func mustInvert(t *testing.T, d *Delta) *Delta {
	t.Helper()
	inv, err := d.Invert()
	if err != nil {
		t.Fatalf("invert: %v", err)
	}
	return inv
}
func buildCatalog(t *testing.T) *dom.Node {
	t.Helper()
	doc, err := dom.ParseString(`<Category><Title>Digital Cameras</Title><Discount><Product><Name>tx123</Name><Price>$499</Price></Product></Discount><NewProducts><Product><Name>zy456</Name><Price>$799</Price></Product></NewProducts></Category>`)
	if err != nil {
		t.Fatal(err)
	}
	xid.Assign(doc)
	return doc
}

// paperDelta builds the delta from the paper's Section 4 example:
// delete product tx123, insert product abc, move product zy456 from
// NewProducts to Discount, update its price.
func paperDelta(t *testing.T) *Delta {
	t.Helper()
	delSub, err := dom.ParseString(`<Product><Name>tx123</Name><Price>$499</Price></Product>`)
	if err != nil {
		t.Fatal(err)
	}
	delMap, _ := xid.ParseMap("(3-7)")
	insSub, err := dom.ParseString(`<Product><Name>abc</Name><Price>$899</Price></Product>`)
	if err != nil {
		t.Fatal(err)
	}
	insMap, _ := xid.ParseMap("(17-21)")
	d := &Delta{Ops: []Op{
		Delete{XID: 7, XIDMap: delMap, Parent: 8, Pos: 0, Subtree: delSub.Root()},
		Insert{XID: 21, XIDMap: insMap, Parent: 14, Pos: 0, Subtree: insSub.Root()},
		Move{XID: 13, FromParent: 14, FromPos: 0, ToParent: 8, ToPos: 0},
		Update{XID: 11, Old: "$799", New: "$699"},
	}, NextXID: 22}
	return d.Normalize()
}

const wantNewCatalog = `<Category><Title>Digital Cameras</Title><Discount><Product><Name>zy456</Name><Price>$699</Price></Product></Discount><NewProducts><Product><Name>abc</Name><Price>$899</Price></Product></NewProducts></Category>`

func TestApplyPaperExample(t *testing.T) {
	doc := buildCatalog(t)
	d := paperDelta(t)
	if err := Apply(doc, d); err != nil {
		t.Fatal(err)
	}
	want, _ := dom.ParseString(wantNewCatalog)
	if !dom.Equal(doc, want) {
		t.Fatalf("apply result differs: %s\ngot:  %s", dom.Diagnose(doc, want), doc)
	}
	// The moved product kept its XIDs.
	moved := dom.FindByXID(doc, 13)
	if moved == nil || moved.Name != "Product" || moved.Parent.XID != 8 {
		t.Fatalf("moved product lost identity: %v", moved)
	}
	// The inserted product got the fresh XIDs from the map.
	ins := dom.FindByXID(doc, 21)
	if ins == nil || ins.Name != "Product" {
		t.Fatalf("inserted product missing: %v", ins)
	}
	if nameText := dom.FindByXID(doc, 17); nameText == nil || nameText.Value != "abc" {
		t.Fatalf("inserted text xid wrong: %v", nameText)
	}
}

func TestApplyCloneLeavesOriginal(t *testing.T) {
	doc := buildCatalog(t)
	before := doc.String()
	got, err := ApplyClone(doc, paperDelta(t))
	if err != nil {
		t.Fatal(err)
	}
	if doc.String() != before {
		t.Fatal("ApplyClone modified the original")
	}
	want, _ := dom.ParseString(wantNewCatalog)
	if !dom.Equal(got, want) {
		t.Fatalf("clone result differs: %s", dom.Diagnose(got, want))
	}
}

func TestInvertRoundTrip(t *testing.T) {
	doc := buildCatalog(t)
	original := doc.Clone()
	d := paperDelta(t)
	if err := Apply(doc, d); err != nil {
		t.Fatal(err)
	}
	if err := Apply(doc, mustInvert(t, d)); err != nil {
		t.Fatalf("apply inverse: %v", err)
	}
	if !dom.Equal(doc, original) {
		t.Fatalf("invert round trip differs: %s", dom.Diagnose(doc, original))
	}
	// XIDs must also be restored.
	for _, want := range []int64{7, 13, 11} {
		if dom.FindByXID(doc, want) == nil {
			t.Errorf("XID %d missing after round trip", want)
		}
	}
}

func TestXMLRoundTrip(t *testing.T) {
	d := paperDelta(t)
	text, err := d.MarshalText()
	if err != nil {
		t.Fatal(err)
	}
	d2, err := ParseString(string(text))
	if err != nil {
		t.Fatalf("parse serialized delta: %v\n%s", err, text)
	}
	if d2.NextXID != d.NextXID {
		t.Errorf("NextXID = %d, want %d", d2.NextXID, d.NextXID)
	}
	if got, want := d2.Count(), d.Count(); got != want {
		t.Fatalf("counts after round trip %v, want %v", got, want)
	}
	// The re-parsed delta must behave identically.
	doc := buildCatalog(t)
	if err := Apply(doc, d2); err != nil {
		t.Fatal(err)
	}
	want, _ := dom.ParseString(wantNewCatalog)
	if !dom.Equal(doc, want) {
		t.Fatalf("re-parsed delta apply differs: %s", dom.Diagnose(doc, want))
	}
	text2, _ := d2.MarshalText()
	if string(text) != string(text2) {
		t.Fatalf("serialization not stable:\n%s\nvs\n%s", text, text2)
	}
}

func TestDeltaSizeAndCounts(t *testing.T) {
	d := paperDelta(t)
	c := d.Count()
	if c.Inserts != 1 || c.Deletes != 1 || c.Updates != 1 || c.Moves != 1 || c.AttrOps != 0 {
		t.Errorf("counts = %+v", c)
	}
	if c.Total() != 4 {
		t.Errorf("total = %d", c.Total())
	}
	if d.Size() <= 0 {
		t.Error("Size should be positive")
	}
	if !strings.Contains(c.String(), "1 ins") {
		t.Errorf("Counts.String = %q", c)
	}
	var empty *Delta
	if !empty.Empty() || !(&Delta{}).Empty() {
		t.Error("Empty misbehaves")
	}
	if (&Delta{Ops: []Op{Update{}}}).Empty() {
		t.Error("non-empty delta reported empty")
	}
}

func TestAttributeOps(t *testing.T) {
	doc, _ := dom.ParseString(`<a x="1"><b y="2"/></a>`)
	xid.Assign(doc) // b=1 a=2 doc=3
	d := &Delta{Ops: []Op{
		InsertAttr{XID: 1, Name: "z", Value: "3"},
		UpdateAttr{XID: 1, Name: "y", Old: "2", New: "22"},
		DeleteAttr{XID: 2, Name: "x", Old: "1"},
	}}
	original := doc.Clone()
	if err := Apply(doc, d); err != nil {
		t.Fatal(err)
	}
	b := dom.FindByXID(doc, 1)
	if v, _ := b.Attribute("z"); v != "3" {
		t.Errorf("insert-attribute failed: %v", b.Attrs)
	}
	if v, _ := b.Attribute("y"); v != "22" {
		t.Errorf("update-attribute failed: %v", b.Attrs)
	}
	if _, ok := dom.FindByXID(doc, 2).Attribute("x"); ok {
		t.Error("delete-attribute failed")
	}
	if err := Apply(doc, mustInvert(t, d)); err != nil {
		t.Fatal(err)
	}
	if !dom.Equal(doc, original) {
		t.Fatalf("attr invert round trip: %s", dom.Diagnose(doc, original))
	}
}

func TestMoveIntoInsertedSubtree(t *testing.T) {
	doc, _ := dom.ParseString(`<r><keep/><mv/></r>`)
	xid.Assign(doc) // keep=1 mv=2 r=3 doc=4
	wrap, _ := dom.ParseString(`<wrap/>`)
	m, _ := xid.ParseMap("(5)")
	d := &Delta{Ops: []Op{
		Insert{XID: 5, XIDMap: m, Parent: 3, Pos: 1, Subtree: wrap.Root()},
		Move{XID: 2, FromParent: 3, FromPos: 1, ToParent: 5, ToPos: 0},
	}}
	if err := Apply(doc, d); err != nil {
		t.Fatal(err)
	}
	want, _ := dom.ParseString(`<r><keep/><wrap><mv/></wrap></r>`)
	if !dom.Equal(doc, want) {
		t.Fatalf("nested attach differs: %s\ngot %s", dom.Diagnose(doc, want), doc)
	}
	// And back.
	orig, _ := dom.ParseString(`<r><keep/><mv/></r>`)
	if err := Apply(doc, mustInvert(t, d)); err != nil {
		t.Fatal(err)
	}
	if !dom.Equal(doc, orig) {
		t.Fatalf("nested invert differs: %s", dom.Diagnose(doc, orig))
	}
}

func TestMoveOutOfDeletedSubtree(t *testing.T) {
	doc, _ := dom.ParseString(`<r><del><survivor/></del><anchor/></r>`)
	xid.Assign(doc) // survivor=1 del=2 anchor=3 r=4 doc=5
	// The delete's recorded content excludes the moved-out survivor.
	prunedDel, _ := dom.ParseString(`<del/>`)
	m, _ := xid.ParseMap("(2)")
	d := &Delta{Ops: []Op{
		Move{XID: 1, FromParent: 2, FromPos: 0, ToParent: 4, ToPos: 0},
		Delete{XID: 2, XIDMap: m, Parent: 4, Pos: 0, Subtree: prunedDel.Root()},
	}}
	if err := Apply(doc, d); err != nil {
		t.Fatal(err)
	}
	want, _ := dom.ParseString(`<r><survivor/><anchor/></r>`)
	if !dom.Equal(doc, want) {
		t.Fatalf("got %s", doc)
	}
	orig, _ := dom.ParseString(`<r><del><survivor/></del><anchor/></r>`)
	if err := Apply(doc, mustInvert(t, d)); err != nil {
		t.Fatal(err)
	}
	if !dom.Equal(doc, orig) {
		t.Fatalf("invert differs: %s", dom.Diagnose(doc, orig))
	}
}

func TestWithinParentPermutationMoves(t *testing.T) {
	doc, _ := dom.ParseString(`<r><a/><b/><c/><d/></r>`)
	xid.Assign(doc) // a=1 b=2 c=3 d=4 r=5
	// New order: b c d a — one move suffices (a to the end).
	d := &Delta{Ops: []Op{
		Move{XID: 1, FromParent: 5, FromPos: 0, ToParent: 5, ToPos: 3},
	}}
	if err := Apply(doc, d); err != nil {
		t.Fatal(err)
	}
	want, _ := dom.ParseString(`<r><b/><c/><d/><a/></r>`)
	if !dom.Equal(doc, want) {
		t.Fatalf("got %s", doc)
	}
}

func TestApplyErrors(t *testing.T) {
	sub, _ := dom.ParseString(`<x/>`)
	m1, _ := xid.ParseMap("(9)")
	cases := []struct {
		name string
		d    *Delta
	}{
		{"update missing node", &Delta{Ops: []Op{Update{XID: 99, Old: "a", New: "b"}}}},
		{"update wrong old", &Delta{Ops: []Op{Update{XID: 1, Old: "WRONG", New: "b"}}}},
		{"move missing node", &Delta{Ops: []Op{Move{XID: 99}}}},
		{"move wrong parent", &Delta{Ops: []Op{Move{XID: 2, FromParent: 99, ToParent: 16, ToPos: 0}}}},
		{"delete missing node", &Delta{Ops: []Op{Delete{XID: 99, Parent: 8, Subtree: sub.Root()}}}},
		{"delete wrong parent", &Delta{Ops: []Op{Delete{XID: 7, Parent: 99, Subtree: sub.Root()}}}},
		{"delete wrong content", &Delta{Ops: []Op{Delete{XID: 7, Parent: 8, Pos: 0, Subtree: sub.Root()}}}},
		{"insert unknown parent", &Delta{Ops: []Op{Insert{XID: 9, XIDMap: m1, Parent: 999, Pos: 0, Subtree: sub.Root()}}}},
		{"insert bad position", &Delta{Ops: []Op{Insert{XID: 9, XIDMap: m1, Parent: 8, Pos: 5, Subtree: sub.Root()}}}},
		{"insert nil subtree", &Delta{Ops: []Op{Insert{XID: 9, XIDMap: m1, Parent: 8, Pos: 0}}}},
		{"attr insert dup", &Delta{Ops: []Op{InsertAttr{XID: 15, Name: "x"}, InsertAttr{XID: 15, Name: "x"}}}},
		{"attr delete missing", &Delta{Ops: []Op{DeleteAttr{XID: 15, Name: "nope"}}}},
		{"attr update missing", &Delta{Ops: []Op{UpdateAttr{XID: 15, Name: "nope"}}}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			doc := buildCatalog(t)
			if err := Apply(doc, c.d); err == nil {
				t.Errorf("Apply succeeded, want error")
			}
		})
	}
}

func TestUpdateTextNodeValue(t *testing.T) {
	// XID 1 is the Title text node "Digital Cameras".
	doc := buildCatalog(t)
	d := &Delta{Ops: []Op{Update{XID: 1, Old: "Digital Cameras", New: "Analog Cameras"}}}
	if err := Apply(doc, d); err != nil {
		t.Fatal(err)
	}
	if got := dom.FindByXID(doc, 1).Value; got != "Analog Cameras" {
		t.Errorf("updated value = %q", got)
	}
}

func TestValidate(t *testing.T) {
	sub, _ := dom.ParseString(`<x><y/></x>`)
	good, _ := xid.ParseMap("(4;7)")
	if err := Validate(&Delta{Ops: []Op{Insert{XID: 7, XIDMap: good, Parent: 1, Pos: 0, Subtree: sub.Root()}}}); err != nil {
		t.Errorf("valid delta rejected: %v", err)
	}
	short, _ := xid.ParseMap("(7)")
	if err := Validate(&Delta{Ops: []Op{Insert{XID: 7, XIDMap: short, Parent: 1, Pos: 0, Subtree: sub.Root()}}}); err == nil {
		t.Error("short xidmap accepted")
	}
	wrongRoot, _ := xid.ParseMap("(7;9)")
	if err := Validate(&Delta{Ops: []Op{Insert{XID: 7, XIDMap: wrongRoot, Parent: 1, Pos: 0, Subtree: sub.Root()}}}); err == nil {
		t.Error("wrong-root xidmap accepted")
	}
	if err := Validate(&Delta{Ops: []Op{Move{XID: 1, FromPos: -1}}}); err == nil {
		t.Error("negative position accepted")
	}
	if err := Validate(&Delta{Ops: []Op{Delete{XID: 1, XIDMap: short, Pos: 0}}}); err == nil {
		t.Error("nil subtree accepted")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		`<notdelta/>`,
		`<delta><unknown-op xid="1"/></delta>`,
		`<delta><move xid="1" from-parent="2" from-pos="0" to-parent="3" to-pos="1"/></delta>`, // pos 0 is invalid (1-based)
		`<delta><update xid="1"/></delta>`,
		`<delta><insert xid="2" xidmap="(2)" parent="1" pos="1"/></delta>`,               // no content
		`<delta><insert xid="2" xidmap="(2-3)" parent="1" pos="1"><x/></insert></delta>`, // map/size mismatch
		`<delta><insert xid="2" parent="1" pos="1"><x/></insert></delta>`,                // missing map
		`<delta><move xid="1"/></delta>`,
		`<delta nextxid="zap"/>`,
		`<delta><insert-attribute xid="1" value="v"/></delta>`,
		`<delta><delete-attribute xid="1"/></delta>`,
		`<delta><update-attribute xid="1"/></delta>`,
		`<delta><update xid="x"><old/><new/></update></delta>`,
	}
	for _, s := range cases {
		if _, err := ParseString(s); err == nil {
			t.Errorf("ParseString(%q) succeeded, want error", s)
		}
	}
}

func TestParseEmptyDelta(t *testing.T) {
	d, err := ParseString(`<delta/>`)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Empty() {
		t.Error("parsed <delta/> not empty")
	}
}

func TestUpdateWithEmptyAndWhitespaceValues(t *testing.T) {
	doc, _ := dom.ParseString(`<a>x</a>`)
	xid.Assign(doc) // text=1 a=2 doc=3
	d := &Delta{Ops: []Op{Update{XID: 1, Old: "x", New: " "}}}
	text, _ := d.MarshalText()
	d2, err := ParseString(string(text))
	if err != nil {
		t.Fatal(err)
	}
	if err := Apply(doc, d2); err != nil {
		t.Fatal(err)
	}
	if got := dom.FindByXID(doc, 1).Value; got != " " {
		t.Errorf("whitespace value lost through XML: %q", got)
	}
	// And empty string new value.
	d3 := &Delta{Ops: []Op{Update{XID: 1, Old: " ", New: ""}}}
	text3, _ := d3.MarshalText()
	d4, err := ParseString(string(text3))
	if err != nil {
		t.Fatal(err)
	}
	if err := Apply(doc, d4); err != nil {
		t.Fatal(err)
	}
	if got := dom.FindByXID(doc, 1).Value; got != "" {
		t.Errorf("empty value lost through XML: %q", got)
	}
}

func TestKindString(t *testing.T) {
	kinds := []Kind{KindInsert, KindDelete, KindUpdate, KindMove, KindInsertAttr, KindDeleteAttr, KindUpdateAttr}
	seen := map[string]bool{}
	for _, k := range kinds {
		s := k.String()
		if s == "" || seen[s] {
			t.Errorf("Kind %d has bad/dup name %q", k, s)
		}
		seen[s] = true
	}
	if !strings.HasPrefix(Kind(99).String(), "kind(") {
		t.Error("unknown kind String")
	}
}

func TestOpTargetXIDs(t *testing.T) {
	for _, d := range paperDelta(t).Ops {
		if d.TargetXID() == 0 {
			t.Errorf("op %v has zero target XID", d.Kind())
		}
	}
}
