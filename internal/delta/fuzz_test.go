package delta

import "testing"

// FuzzParse: arbitrary delta documents either fail to parse or
// round-trip stably; inverting twice is the identity on the XML form.
func FuzzParse(f *testing.F) {
	seeds := []string{
		`<delta/>`,
		`<delta nextxid="9"><update xid="1"><old>a</old><new>b</new></update></delta>`,
		`<delta><move from-parent="2" from-pos="1" to-parent="3" to-pos="2" xid="1"/></delta>`,
		`<delta><insert parent="1" pos="1" xid="5" xidmap="(4-5)"><e><f/></e></insert></delta>`,
		`<delta><delete parent="1" pos="1" xid="5" xidmap="(5)"><e/></delete></delta>`,
		`<delta><insert-attribute name="k" value="v" xid="3"/></delta>`,
		`<delta><update xid="1"><old/><new> </new></update></delta>`,
		`<delta><unknown/></delta>`,
		`<delta><insert xid="2" xidmap="(1-2)" parent="1" pos="1"><a/></insert></delta>`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		d, err := ParseString(src)
		if err != nil {
			return
		}
		text, err := d.MarshalText()
		if err != nil {
			t.Fatalf("marshal after parse: %v", err)
		}
		d2, err := ParseString(string(text))
		if err != nil {
			t.Fatalf("canonical delta does not reparse: %v\n%s", err, text)
		}
		text2, _ := d2.MarshalText()
		if string(text) != string(text2) {
			t.Fatalf("unstable serialization:\n%s\nvs\n%s", text, text2)
		}
		once, err := d.Invert()
		if err != nil {
			t.Fatalf("invert parsed delta: %v", err)
		}
		again, err := once.Invert()
		if err != nil {
			t.Fatalf("invert inverted delta: %v", err)
		}
		twice, _ := again.MarshalText()
		if string(twice) != string(text) {
			t.Fatalf("double inversion changed delta:\n%s\nvs\n%s", text, twice)
		}
	})
}
