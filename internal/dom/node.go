// Package dom implements the ordered-tree model for XML documents used
// throughout the library: the simple model of the paper's Section 4,
// where each node has a list of children, element nodes carry a label
// and attributes, and text nodes carry character data.
//
// The package deliberately keeps nodes free of diff bookkeeping
// (weights, signatures, matchings live in the diff package) so that a
// Node is a plain, serializable document fragment.
package dom

import (
	"errors"
	"fmt"
	"sort"
	"strings"
)

// ErrOutOfRange reports a child-position argument outside a node's
// children. It wraps the offending position and bounds; match it with
// errors.Is(err, dom.ErrOutOfRange).
var ErrOutOfRange = errors.New("dom: position out of range")

// NodeType discriminates the kinds of nodes in the tree model.
type NodeType uint8

// Node kinds. Document is a synthetic root that wraps the top-level
// element (and any top-level comments or processing instructions); it
// guarantees that every real node has a parent, which simplifies the
// diff's move/insert bookkeeping.
const (
	Document NodeType = iota
	Element
	Text
	Comment
	ProcInst
)

// String returns the lowercase name of the node type.
func (t NodeType) String() string {
	switch t {
	case Document:
		return "document"
	case Element:
		return "element"
	case Text:
		return "text"
	case Comment:
		return "comment"
	case ProcInst:
		return "procinst"
	default:
		return fmt.Sprintf("nodetype(%d)", uint8(t))
	}
}

// Attr is a single attribute of an element node. Attribute order is
// irrelevant in XML; comparisons in this package are order-insensitive.
type Attr struct {
	Name  string
	Value string
}

// Node is one node of an ordered XML tree.
//
// Meaning of the fields by type:
//
//	Document: Name and Value empty; Children are the document items.
//	Element:  Name is the tag; Attrs the attributes; Value empty.
//	Text:     Value is the character data.
//	Comment:  Value is the comment body.
//	ProcInst: Name is the target, Value the instruction body.
//
// XID is the persistent identifier assigned by the versioning layer
// (zero means "not assigned"). See package xid.
type Node struct {
	Type     NodeType
	Name     string
	Value    string
	Attrs    []Attr
	Children []*Node
	Parent   *Node
	XID      int64

	// Doctype holds the raw text of the <!DOCTYPE ...> directive for
	// Document nodes (without the leading "<!" and trailing ">"). The
	// diff feeds it to package dtd to discover ID attributes.
	Doctype string
}

// NewDocument returns an empty Document node.
func NewDocument() *Node { return &Node{Type: Document} }

// NewElement returns an element node with the given tag.
func NewElement(name string) *Node { return &Node{Type: Element, Name: name} }

// NewText returns a text node with the given character data.
func NewText(value string) *Node { return &Node{Type: Text, Value: value} }

// Root returns the first element child of a document node, or n itself
// when n is not a document. It returns nil for an empty document.
func (n *Node) Root() *Node {
	if n == nil {
		return nil
	}
	if n.Type != Document {
		return n
	}
	for _, c := range n.Children {
		if c.Type == Element {
			return c
		}
	}
	return nil
}

// Append adds children to n, setting their Parent pointers, and
// returns n for chaining.
func (n *Node) Append(children ...*Node) *Node {
	for _, c := range children {
		c.Parent = n
		n.Children = append(n.Children, c)
	}
	return n
}

// InsertAt inserts child c at position i (0-based) among n's children.
// A position outside [0, len(children)] returns ErrOutOfRange and
// leaves the tree untouched: deltas arrive from untrusted storage and
// the network, so a bad position must surface as an error, not a panic.
func (n *Node) InsertAt(i int, c *Node) error {
	if i < 0 || i > len(n.Children) {
		return fmt.Errorf("%w: InsertAt position %d, children [0,%d]", ErrOutOfRange, i, len(n.Children))
	}
	n.Children = append(n.Children, nil)
	copy(n.Children[i+1:], n.Children[i:])
	n.Children[i] = c
	c.Parent = n
	return nil
}

// RemoveAt removes and returns the child at position i.
func (n *Node) RemoveAt(i int) *Node {
	c := n.Children[i]
	copy(n.Children[i:], n.Children[i+1:])
	n.Children[len(n.Children)-1] = nil
	n.Children = n.Children[:len(n.Children)-1]
	c.Parent = nil
	return c
}

// Detach removes n from its parent's child list. It is a no-op for a
// node without a parent. It returns the position the node occupied, or
// -1 when it had no parent.
func (n *Node) Detach() int {
	p := n.Parent
	if p == nil {
		return -1
	}
	i := n.Index()
	p.RemoveAt(i)
	return i
}

// Index returns the position of n among its parent's children, or -1
// if n has no parent. The scan is linear; diff internals keep their own
// position arrays instead of calling this in hot loops.
func (n *Node) Index() int {
	if n.Parent == nil {
		return -1
	}
	for i, c := range n.Parent.Children {
		if c == n {
			return i
		}
	}
	return -1
}

// Attribute returns the value of the named attribute and whether it is
// present.
func (n *Node) Attribute(name string) (string, bool) {
	for _, a := range n.Attrs {
		if a.Name == name {
			return a.Value, true
		}
	}
	return "", false
}

// SetAttribute sets or replaces the named attribute.
func (n *Node) SetAttribute(name, value string) {
	for i := range n.Attrs {
		if n.Attrs[i].Name == name {
			n.Attrs[i].Value = value
			return
		}
	}
	n.Attrs = append(n.Attrs, Attr{Name: name, Value: value})
}

// RemoveAttribute deletes the named attribute, reporting whether it was
// present.
func (n *Node) RemoveAttribute(name string) bool {
	for i := range n.Attrs {
		if n.Attrs[i].Name == name {
			n.Attrs = append(n.Attrs[:i], n.Attrs[i+1:]...)
			return true
		}
	}
	return false
}

// Clone returns a deep copy of the subtree rooted at n. The clone's
// Parent is nil; XIDs are copied.
func (n *Node) Clone() *Node {
	if n == nil {
		return nil
	}
	c := &Node{Type: n.Type, Name: n.Name, Value: n.Value, XID: n.XID}
	if len(n.Attrs) > 0 {
		c.Attrs = make([]Attr, len(n.Attrs))
		copy(c.Attrs, n.Attrs)
	}
	if len(n.Children) > 0 {
		c.Children = make([]*Node, 0, len(n.Children))
		for _, ch := range n.Children {
			cc := ch.Clone()
			cc.Parent = c
			c.Children = append(c.Children, cc)
		}
	}
	return c
}

// Size returns the number of nodes in the subtree rooted at n,
// including n itself. Attributes are not counted as nodes, matching the
// paper's model where attributes are properties of their element.
func (n *Node) Size() int {
	size := 1
	for _, c := range n.Children {
		size += c.Size()
	}
	return size
}

// TextContent concatenates all text-node values in document order
// below (and including) n.
func (n *Node) TextContent() string {
	var b strings.Builder
	n.appendText(&b)
	return b.String()
}

func (n *Node) appendText(b *strings.Builder) {
	if n.Type == Text {
		b.WriteString(n.Value)
		return
	}
	for _, c := range n.Children {
		c.appendText(b)
	}
}

// Path returns a simple absolute location path for n, of the form
// /Category/Product[2]/Name. Sibling indexes (1-based, counted among
// same-label siblings) are included only when needed to disambiguate.
// Text nodes render as text().
func (n *Node) Path() string {
	if n == nil {
		return ""
	}
	if n.Type == Document {
		return "/"
	}
	var parts []string
	for cur := n; cur != nil && cur.Type != Document; cur = cur.Parent {
		parts = append(parts, cur.step())
	}
	// Reverse.
	for i, j := 0, len(parts)-1; i < j; i, j = i+1, j-1 {
		parts[i], parts[j] = parts[j], parts[i]
	}
	return "/" + strings.Join(parts, "/")
}

func (n *Node) step() string {
	label := n.Name
	switch n.Type {
	case Text:
		label = "text()"
	case Comment:
		label = "comment()"
	case ProcInst:
		label = "processing-instruction()"
	}
	if n.Parent == nil {
		return label
	}
	same, pos := 0, 0
	for _, s := range n.Parent.Children {
		if s.Type == n.Type && s.Name == n.Name {
			same++
			if s == n {
				pos = same
			}
		}
	}
	if same > 1 {
		return fmt.Sprintf("%s[%d]", label, pos)
	}
	return label
}

// sortedAttrs returns the attributes sorted by name. Used by equality,
// hashing and canonical serialization so attribute order never matters.
func (n *Node) sortedAttrs() []Attr {
	if len(n.Attrs) < 2 {
		return n.Attrs
	}
	s := make([]Attr, len(n.Attrs))
	copy(s, n.Attrs)
	sort.Slice(s, func(i, j int) bool { return s[i].Name < s[j].Name })
	return s
}
