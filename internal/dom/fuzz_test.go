package dom

import "testing"

// FuzzParse: anything that parses must serialize canonically and
// reparse to an equal tree.
func FuzzParse(f *testing.F) {
	seeds := []string{
		`<a/>`,
		`<a><b x="1">text</b><!--c--><?pi d?></a>`,
		`<a>&lt;&amp;&gt;</a>`,
		`<a xmlns:n="urn:x"><n:b/></a>`,
		`<a><![CDATA[raw <stuff>]]></a>`,
		`<!DOCTYPE a [<!ATTLIST e k ID #IMPLIED>]><a><e k="1"/></a>`,
		"<a>\n  mixed <b/> content\n</a>",
		`<a`, `</a>`, ``, `plain`, `<a><b></a></b>`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		doc, err := ParseString(src)
		if err != nil {
			return // malformed input: rejection is fine, panics are not
		}
		out := doc.String()
		re, err := ParseString(out)
		if err != nil {
			t.Fatalf("canonical output does not reparse: %v\nsource: %q\noutput: %q", err, src, out)
		}
		if !Equal(doc, re) {
			t.Fatalf("reparse changed tree: %s\nsource: %q", Diagnose(doc, re), src)
		}
		if out2 := re.String(); out != out2 {
			t.Fatalf("serialization unstable: %q vs %q", out, out2)
		}
	})
}
