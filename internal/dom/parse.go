package dom

import (
	"encoding/xml"
	"errors"
	"fmt"
	"io"
	"strings"
)

// ParseOptions controls how documents are parsed into trees.
type ParseOptions struct {
	// KeepWhitespace preserves whitespace-only text nodes. The default
	// (false) drops them, which matches the paper's treatment of
	// "pretty printed" XML where indentation is not data.
	KeepWhitespace bool
	// KeepComments preserves comment nodes (default: true via Parse;
	// the zero value of ParseOptions drops comments to mirror the
	// change-relevant content model, so Parse sets this explicitly).
	KeepComments bool
	// KeepProcInsts preserves processing instructions other than the
	// <?xml ...?> declaration.
	KeepProcInsts bool
	// Limits bounds resource use on untrusted input; the zero value
	// imposes no limits.
	Limits ParseLimits
}

// DefaultParseOptions are the options used by Parse: whitespace-only
// text dropped, comments and processing instructions kept.
func DefaultParseOptions() ParseOptions {
	return ParseOptions{KeepComments: true, KeepProcInsts: true}
}

// Parse reads an XML document from r with DefaultParseOptions.
func Parse(r io.Reader) (*Node, error) {
	return ParseWithOptions(r, DefaultParseOptions())
}

// ParseString parses a document held in a string.
func ParseString(s string) (*Node, error) {
	return Parse(strings.NewReader(s))
}

// ParseWithOptions reads an XML document from r into a Document tree.
// The returned node always has Type Document; its children are the
// top-level items of the document.
func ParseWithOptions(r io.Reader, opts ParseOptions) (*Node, error) {
	var lr *limitReader
	if opts.Limits.MaxBytes > 0 {
		lr = &limitReader{r: r, remain: opts.Limits.MaxBytes, limit: opts.Limits.MaxBytes}
		r = lr
	}
	dec := xml.NewDecoder(r)
	// The diff operates on documents as-is; entity expansion beyond the
	// predefined five is out of scope, but strictness stays on so that
	// malformed input is reported rather than silently truncated.
	doc := NewDocument()
	cur := doc
	var sawElement bool
	// Namespace handling is lexical: encoding/xml resolves prefixes to
	// URIs, but a URI is not a legal XML name, so serialized output
	// would not reparse. We track prefix declarations ourselves and
	// keep names in their prefix:local source form; the xmlns
	// attributes stay in the tree, so output round-trips.
	ns := nsStack{}
	depth := 0
	var tokens int64
	for {
		tok, err := dec.Token()
		if err == io.EOF {
			break
		}
		if err != nil {
			if lr != nil && lr.exceeded {
				return nil, &LimitError{What: "bytes", Limit: opts.Limits.MaxBytes}
			}
			var le *LimitError
			if errors.As(err, &le) {
				return nil, le
			}
			return nil, fmt.Errorf("dom: %w", err)
		}
		tokens++
		if max := opts.Limits.MaxTokens; max > 0 && tokens > max {
			return nil, &LimitError{What: "tokens", Limit: max}
		}
		switch t := tok.(type) {
		case xml.StartElement:
			depth++
			if max := opts.Limits.MaxDepth; max > 0 && depth > max {
				return nil, &LimitError{What: "depth", Limit: int64(max)}
			}
			ns.push(t.Attr)
			el := NewElement(ns.elemName(t.Name))
			if len(t.Attr) > 0 {
				el.Attrs = make([]Attr, 0, len(t.Attr))
				for _, a := range t.Attr {
					el.Attrs = append(el.Attrs, Attr{Name: ns.attrName(a.Name), Value: a.Value})
				}
			}
			cur.Append(el)
			cur = el
			sawElement = true
		case xml.EndElement:
			depth--
			ns.pop()
			if cur == doc {
				return nil, fmt.Errorf("dom: unbalanced end element %s", t.Name.Local)
			}
			cur = cur.Parent
		case xml.CharData:
			s := string(t)
			if !opts.KeepWhitespace && strings.TrimSpace(s) == "" {
				continue
			}
			// Merge adjacent character data (CDATA boundaries etc.) so
			// the tree never holds two neighbouring text nodes; the
			// change simulator relies on this invariant.
			if k := len(cur.Children); k > 0 && cur.Children[k-1].Type == Text {
				cur.Children[k-1].Value += s
				continue
			}
			cur.Append(NewText(s))
		case xml.Comment:
			if opts.KeepComments {
				cur.Append(&Node{Type: Comment, Value: string(t)})
			}
		case xml.ProcInst:
			if opts.KeepProcInsts && t.Target != "xml" {
				cur.Append(&Node{Type: ProcInst, Name: t.Target, Value: string(t.Inst)})
			}
		case xml.Directive:
			// Retain the DOCTYPE text on the document node so that the
			// diff can hand it to package dtd for ID-attribute
			// discovery. Other directives are not part of the model.
			if d := string(t); strings.HasPrefix(d, "DOCTYPE") {
				doc.Doctype = d
			}
		}
	}
	if cur != doc {
		return nil, fmt.Errorf("dom: unexpected EOF inside element %s", cur.Name)
	}
	if !sawElement {
		return nil, fmt.Errorf("dom: document has no root element")
	}
	return doc, nil
}

// nsStack reconstructs the lexical prefix of namespaced names: one
// frame per open element, recording the prefixes and the default
// namespace that element declares.
type nsStack struct {
	frames []nsFrame
}

type nsFrame struct {
	prefixes map[string]string // namespace URI -> declared prefix
	def      string            // xmlns="uri" at this element
	hasDef   bool
}

func (s *nsStack) push(attrs []xml.Attr) {
	var frame nsFrame
	for _, a := range attrs {
		switch {
		case a.Name.Space == "xmlns": // xmlns:prefix="uri"
			if frame.prefixes == nil {
				frame.prefixes = make(map[string]string, 2)
			}
			frame.prefixes[a.Value] = a.Name.Local
		case a.Name.Space == "" && a.Name.Local == "xmlns": // xmlns="uri"
			frame.def, frame.hasDef = a.Value, true
		}
	}
	s.frames = append(s.frames, frame)
}

func (s *nsStack) pop() {
	if len(s.frames) > 0 {
		s.frames = s.frames[:len(s.frames)-1]
	}
}

// prefix returns the innermost prefix declared for the URI ("" when the
// URI is the default namespace or undeclared).
func (s *nsStack) prefix(uri string) string {
	for i := len(s.frames) - 1; i >= 0; i-- {
		if p, ok := s.frames[i].prefixes[uri]; ok {
			return p
		}
	}
	return ""
}

// defaultURI returns the in-scope default namespace ("" when none is
// declared).
func (s *nsStack) defaultURI() string {
	for i := len(s.frames) - 1; i >= 0; i-- {
		if s.frames[i].hasDef {
			return s.frames[i].def
		}
	}
	return ""
}

// elemName renders an element name in its lexical form: a declared
// prefix is restored, a name in the default namespace is the local
// name alone. A Space with no declaration in scope is encoding/xml's
// verbatim undeclared prefix; it must be kept, or the lexical form
// (and, for local parts an unprefixed name could not start, the
// name's validity) is lost.
func (s *nsStack) elemName(n xml.Name) string {
	if n.Space == "" {
		return n.Local
	}
	if p := s.prefix(n.Space); p != "" {
		return p + ":" + n.Local
	}
	if n.Space == s.defaultURI() {
		return n.Local
	}
	return n.Space + ":" + n.Local
}

// attrName renders an attribute name. Go reports xmlns declarations
// with Space "xmlns" (prefixed) or Local "xmlns" (default); other
// attributes carry the resolved URI like elements do — except that
// attributes never inherit the default namespace, so an undeclared
// Space is always a verbatim prefix to keep.
func (s *nsStack) attrName(n xml.Name) string {
	switch {
	case n.Space == "":
		return n.Local
	case n.Space == "xmlns":
		return "xmlns:" + n.Local
	default:
		if p := s.prefix(n.Space); p != "" {
			return p + ":" + n.Local
		}
		return n.Space + ":" + n.Local
	}
}
