package dom

import (
	"errors"
	"strings"
	"testing"
)

func parseLimited(t *testing.T, input string, limits ParseLimits) error {
	t.Helper()
	opts := DefaultParseOptions()
	opts.Limits = limits
	_, err := ParseWithOptions(strings.NewReader(input), opts)
	return err
}

func TestLimitDepth(t *testing.T) {
	deep := strings.Repeat("<a>", 50) + "x" + strings.Repeat("</a>", 50)
	if err := parseLimited(t, deep, ParseLimits{MaxDepth: 100}); err != nil {
		t.Fatalf("depth 50 under limit 100: %v", err)
	}
	err := parseLimited(t, deep, ParseLimits{MaxDepth: 10})
	if !errors.Is(err, ErrLimit) {
		t.Fatalf("depth 50 over limit 10: got %v, want ErrLimit", err)
	}
	var le *LimitError
	if !errors.As(err, &le) || le.What != "depth" || le.Limit != 10 {
		t.Fatalf("wrong LimitError: %+v", le)
	}
}

func TestLimitBytes(t *testing.T) {
	doc := "<r>" + strings.Repeat("<p>hello</p>", 100) + "</r>"
	if err := parseLimited(t, doc, ParseLimits{MaxBytes: int64(len(doc))}); err != nil {
		t.Fatalf("exact byte limit: %v", err)
	}
	err := parseLimited(t, doc, ParseLimits{MaxBytes: 64})
	if !errors.Is(err, ErrLimit) {
		t.Fatalf("byte limit 64: got %v, want ErrLimit", err)
	}
	var le *LimitError
	if !errors.As(err, &le) || le.What != "bytes" {
		t.Fatalf("wrong LimitError: %+v", le)
	}
}

func TestLimitTokens(t *testing.T) {
	doc := "<r>" + strings.Repeat("<p>hello</p>", 100) + "</r>"
	if err := parseLimited(t, doc, ParseLimits{MaxTokens: 10_000}); err != nil {
		t.Fatalf("generous token limit: %v", err)
	}
	err := parseLimited(t, doc, ParseLimits{MaxTokens: 20})
	if !errors.Is(err, ErrLimit) {
		t.Fatalf("token limit 20: got %v, want ErrLimit", err)
	}
	var le *LimitError
	if !errors.As(err, &le) || le.What != "tokens" || le.Limit != 20 {
		t.Fatalf("wrong LimitError: %+v", le)
	}
}

func TestZeroLimitsUnbounded(t *testing.T) {
	deep := strings.Repeat("<a>", 500) + strings.Repeat("</a>", 500)
	if err := parseLimited(t, deep, ParseLimits{}); err != nil {
		t.Fatalf("zero limits should not bound parsing: %v", err)
	}
}
