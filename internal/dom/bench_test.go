package dom

import (
	"strings"
	"testing"
)

func benchDoc(depth, fanout int) string {
	var b strings.Builder
	var rec func(d int)
	rec = func(d int) {
		if d == 0 {
			b.WriteString("<leaf>some text content here</leaf>")
			return
		}
		b.WriteString("<node attr=\"value\">")
		for i := 0; i < fanout; i++ {
			rec(d - 1)
		}
		b.WriteString("</node>")
	}
	rec(depth)
	return b.String()
}

func BenchmarkParse(b *testing.B) {
	src := benchDoc(5, 4) // ~1400 nodes
	b.SetBytes(int64(len(src)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ParseString(src); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSerialize(b *testing.B) {
	doc, err := ParseString(benchDoc(5, 4))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = doc.String()
	}
}

func BenchmarkClone(b *testing.B) {
	doc, _ := ParseString(benchDoc(5, 4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = doc.Clone()
	}
}

func BenchmarkEqual(b *testing.B) {
	doc, _ := ParseString(benchDoc(5, 4))
	other := doc.Clone()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !Equal(doc, other) {
			b.Fatal("unexpectedly unequal")
		}
	}
}

func BenchmarkWalkPost(b *testing.B) {
	doc, _ := ParseString(benchDoc(5, 4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		WalkPost(doc, func(*Node) bool { n++; return true })
	}
}
