package dom

import (
	"errors"
	"fmt"
	"io"
)

// ErrLimit reports that parsing stopped because the input exceeded a
// configured ParseLimits bound. Match with errors.Is; the concrete
// *LimitError says which bound tripped.
var ErrLimit = errors.New("parse limit exceeded")

// LimitError is the concrete error returned when a ParseLimits bound is
// exceeded. It matches ErrLimit under errors.Is.
type LimitError struct {
	// What names the exceeded bound: "depth", "bytes" or "tokens".
	What string
	// Limit is the configured bound that was exceeded.
	Limit int64
}

// Error implements error.
func (e *LimitError) Error() string {
	return fmt.Sprintf("dom: input exceeds %s limit (%d)", e.What, e.Limit)
}

// Is makes errors.Is(err, ErrLimit) true for any LimitError.
func (e *LimitError) Is(target error) bool { return target == ErrLimit }

// ParseLimits bounds resource use while parsing untrusted input. Each
// zero field means unlimited; the zero value imposes no limits at all.
// Exceeding a bound aborts the parse with an error matching ErrLimit.
type ParseLimits struct {
	// MaxDepth caps element nesting depth (a 10000-deep document is an
	// attack on recursive consumers, not data).
	MaxDepth int
	// MaxBytes caps how many input bytes the parser will consume.
	MaxBytes int64
	// MaxTokens caps the number of XML tokens (elements, text runs,
	// comments, ...) — a bound on node count independent of byte size.
	MaxTokens int64
}

// limitReader counts bytes handed to the XML decoder and cuts the
// stream off once MaxBytes is exceeded. The decoder may wrap or
// replace the reader's error, so the parser also checks the exceeded
// flag after any token error.
type limitReader struct {
	r        io.Reader
	remain   int64
	limit    int64
	exceeded bool
}

func (l *limitReader) Read(p []byte) (int, error) {
	if l.remain <= 0 {
		// Only exceeded if more input actually exists — an input that
		// fits the limit exactly still ends in a clean EOF probe here.
		var probe [1]byte
		n, err := l.r.Read(probe[:])
		if n == 0 {
			return 0, err
		}
		l.exceeded = true
		return 0, &LimitError{What: "bytes", Limit: l.limit}
	}
	if int64(len(p)) > l.remain {
		p = p[:l.remain]
	}
	n, err := l.r.Read(p)
	l.remain -= int64(n)
	return n, err
}
