package dom

import (
	"fmt"
	"strings"
)

// Equal reports whether two subtrees are isomorphic: same node types,
// labels, values, attribute sets (order-insensitive) and recursively
// equal child lists (order-sensitive — this is the ordered-tree model).
// XIDs and Parent pointers are ignored.
func Equal(a, b *Node) bool {
	if a == nil || b == nil {
		return a == b
	}
	if a.Type != b.Type || a.Name != b.Name || a.Value != b.Value {
		return false
	}
	if !attrsEqual(a, b) {
		return false
	}
	if len(a.Children) != len(b.Children) {
		return false
	}
	for i := range a.Children {
		if !Equal(a.Children[i], b.Children[i]) {
			return false
		}
	}
	return true
}

func attrsEqual(a, b *Node) bool {
	if len(a.Attrs) != len(b.Attrs) {
		return false
	}
	if len(a.Attrs) == 0 {
		return true
	}
	sa, sb := a.sortedAttrs(), b.sortedAttrs()
	for i := range sa {
		if sa[i] != sb[i] {
			return false
		}
	}
	return true
}

// Diagnose returns a human-readable description of the first
// difference between two trees, or "" when they are Equal. It exists
// for tests and debugging, not for the diff algorithm.
func Diagnose(a, b *Node) string {
	return diagnose(a, b, a.Path())
}

func diagnose(a, b *Node, at string) string {
	if a == nil || b == nil {
		return fmt.Sprintf("%s: one side nil", at)
	}
	if a.Type != b.Type {
		return fmt.Sprintf("%s: type %v vs %v", at, a.Type, b.Type)
	}
	if a.Name != b.Name {
		return fmt.Sprintf("%s: name %q vs %q", at, a.Name, b.Name)
	}
	if a.Value != b.Value {
		return fmt.Sprintf("%s: value %q vs %q", at, clip(a.Value), clip(b.Value))
	}
	if !attrsEqual(a, b) {
		return fmt.Sprintf("%s: attributes %v vs %v", at, a.sortedAttrs(), b.sortedAttrs())
	}
	if len(a.Children) != len(b.Children) {
		return fmt.Sprintf("%s: %d children vs %d", at, len(a.Children), len(b.Children))
	}
	for i := range a.Children {
		c := a.Children[i]
		if d := diagnose(c, b.Children[i], at+"/"+c.step()); d != "" {
			return d
		}
	}
	return ""
}

func clip(s string) string {
	s = strings.ReplaceAll(s, "\n", `\n`)
	if len(s) > 40 {
		return s[:37] + "..."
	}
	return s
}
