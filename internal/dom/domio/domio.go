// Package domio is the filesystem shell around the dom core: the
// helpers that open and create files so internal/dom itself never
// imports os. The split is what makes the diff core wasm-clean — dom
// parses io.Readers and serializes to io.Writers, and everything that
// names a path lives here or in the commands. The depbound analyzer
// enforces the boundary (its diff-core scope matches internal/dom
// exactly, not this subpackage, which is the sanctioned home for the
// core's I/O).
package domio

import (
	"fmt"
	"os"

	"xydiff/internal/dom"
)

// ParseFile parses the XML document stored at path with
// dom.DefaultParseOptions.
func ParseFile(path string) (*dom.Node, error) {
	return ParseFileWithOptions(path, dom.DefaultParseOptions())
}

// ParseFileWithOptions parses the XML document stored at path.
func ParseFileWithOptions(path string, opts dom.ParseOptions) (*dom.Node, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	doc, err := dom.ParseWithOptions(f, opts)
	if err != nil {
		return nil, fmt.Errorf("dom: parse %s: %w", path, err)
	}
	return doc, nil
}

// WriteFile serializes the document to path.
func WriteFile(path string, n *dom.Node) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := n.WriteTo(f); err != nil {
		_ = f.Close() // the write error is the one to report
		return err
	}
	return f.Close()
}
