package dom

import (
	"errors"
	"strings"
	"testing"
)

const catalogXML = `<Category>
  <Title>Digital Cameras</Title>
  <Discount>
    <Product><Name>tx123</Name><Price>$499</Price></Product>
  </Discount>
  <NewProducts>
    <Product><Name>zy456</Name><Price>$799</Price></Product>
  </NewProducts>
</Category>`

func mustParse(t *testing.T, s string) *Node {
	t.Helper()
	doc, err := ParseString(s)
	if err != nil {
		t.Fatalf("ParseString: %v", err)
	}
	return doc
}

func TestParseBasicStructure(t *testing.T) {
	doc := mustParse(t, catalogXML)
	if doc.Type != Document {
		t.Fatalf("root type = %v, want document", doc.Type)
	}
	root := doc.Root()
	if root == nil || root.Name != "Category" {
		t.Fatalf("Root() = %v, want Category element", root)
	}
	if got := len(root.Children); got != 3 {
		t.Fatalf("Category has %d children, want 3", got)
	}
	title := root.Children[0]
	if title.Name != "Title" || len(title.Children) != 1 || title.Children[0].Value != "Digital Cameras" {
		t.Errorf("unexpected Title subtree: %s", title)
	}
}

func TestParseDropsWhitespaceOnlyText(t *testing.T) {
	doc := mustParse(t, "<a>\n  <b/>\n  <c/>\n</a>")
	root := doc.Root()
	if len(root.Children) != 2 {
		t.Fatalf("got %d children, want 2 (whitespace dropped)", len(root.Children))
	}
}

func TestParseKeepWhitespaceOption(t *testing.T) {
	doc, err := ParseWithOptions(strings.NewReader("<a> <b/> </a>"), ParseOptions{KeepWhitespace: true})
	if err != nil {
		t.Fatal(err)
	}
	root := doc.Root()
	if len(root.Children) != 3 {
		t.Fatalf("got %d children, want 3 (whitespace kept)", len(root.Children))
	}
	if root.Children[0].Type != Text || root.Children[2].Type != Text {
		t.Errorf("expected surrounding text nodes, got %v and %v", root.Children[0].Type, root.Children[2].Type)
	}
}

func TestParseAttributes(t *testing.T) {
	doc := mustParse(t, `<p id="x7" class="big">hi</p>`)
	root := doc.Root()
	if v, ok := root.Attribute("id"); !ok || v != "x7" {
		t.Errorf("id attribute = %q,%v", v, ok)
	}
	if v, ok := root.Attribute("class"); !ok || v != "big" {
		t.Errorf("class attribute = %q,%v", v, ok)
	}
	if _, ok := root.Attribute("missing"); ok {
		t.Error("missing attribute reported present")
	}
}

func TestParseMergesAdjacentCharData(t *testing.T) {
	doc := mustParse(t, `<a>one<![CDATA[two]]>three</a>`)
	root := doc.Root()
	if len(root.Children) != 1 {
		t.Fatalf("got %d children, want 1 merged text node", len(root.Children))
	}
	if got := root.Children[0].Value; got != "onetwothree" {
		t.Errorf("merged text = %q", got)
	}
}

func TestParseCommentsAndProcInsts(t *testing.T) {
	doc := mustParse(t, `<a><!-- note --><?target data?><b/></a>`)
	root := doc.Root()
	if len(root.Children) != 3 {
		t.Fatalf("got %d children, want 3", len(root.Children))
	}
	if root.Children[0].Type != Comment || root.Children[0].Value != " note " {
		t.Errorf("comment node = %+v", root.Children[0])
	}
	if root.Children[1].Type != ProcInst || root.Children[1].Name != "target" {
		t.Errorf("procinst node = %+v", root.Children[1])
	}
}

func TestParseErrors(t *testing.T) {
	for _, bad := range []string{"", "   ", "<a><b></a>", "<a>", "no markup at all"} {
		if _, err := ParseString(bad); err == nil {
			t.Errorf("ParseString(%q) succeeded, want error", bad)
		}
	}
}

func TestSerializeRoundTrip(t *testing.T) {
	doc := mustParse(t, catalogXML)
	out := doc.String()
	doc2 := mustParse(t, out)
	if !Equal(doc, doc2) {
		t.Fatalf("round trip changed tree: %s", Diagnose(doc, doc2))
	}
	if out2 := doc2.String(); out != out2 {
		t.Fatalf("serialization not stable:\n%s\nvs\n%s", out, out2)
	}
}

func TestSerializeEscaping(t *testing.T) {
	doc := NewDocument()
	el := NewElement("m")
	el.SetAttribute("q", `a"b<c>&d`)
	el.Append(NewText(`x < y && z > "w"`))
	doc.Append(el)
	out := doc.String()
	doc2 := mustParse(t, out)
	if !Equal(doc, doc2) {
		t.Fatalf("escaped round trip changed tree: %s (serialized %q)", Diagnose(doc, doc2), out)
	}
}

func TestSerializeCanonicalAttrOrder(t *testing.T) {
	a := NewElement("e")
	a.SetAttribute("b", "2")
	a.SetAttribute("a", "1")
	b := NewElement("e")
	b.SetAttribute("a", "1")
	b.SetAttribute("b", "2")
	if a.String() != b.String() {
		t.Errorf("attribute order leaked into serialization: %q vs %q", a.String(), b.String())
	}
}

func TestEqualIgnoresAttrOrder(t *testing.T) {
	a := mustParse(t, `<e x="1" y="2"/>`)
	b := mustParse(t, `<e y="2" x="1"/>`)
	if !Equal(a, b) {
		t.Error("Equal should ignore attribute order")
	}
}

func TestEqualDetectsDifferences(t *testing.T) {
	base := `<a><b>t</b><c/></a>`
	for _, other := range []string{
		`<a><b>t</b></a>`,           // child count
		`<a><c/><b>t</b></a>`,       // child order
		`<a><b>u</b><c/></a>`,       // text value
		`<a><B>t</B><c/></a>`,       // label
		`<a x="1"><b>t</b><c/></a>`, // attrs
	} {
		x, y := mustParse(t, base), mustParse(t, other)
		if Equal(x, y) {
			t.Errorf("Equal(%q, %q) = true, want false", base, other)
		}
		if Diagnose(x, y) == "" {
			t.Errorf("Diagnose(%q, %q) empty for unequal trees", base, other)
		}
	}
	x, y := mustParse(t, base), mustParse(t, base)
	if d := Diagnose(x, y); d != "" {
		t.Errorf("Diagnose of equal trees = %q, want empty", d)
	}
}

func TestCloneIsDeepAndIndependent(t *testing.T) {
	doc := mustParse(t, catalogXML)
	clone := doc.Clone()
	if !Equal(doc, clone) {
		t.Fatal("clone not equal to original")
	}
	clone.Root().Children[0].Children[0].Value = "changed"
	if Equal(doc, clone) {
		t.Fatal("mutating clone affected original (or Equal is broken)")
	}
	if doc.Root().Children[0].Children[0].Value != "Digital Cameras" {
		t.Fatal("original mutated by clone edit")
	}
}

func TestInsertRemoveDetach(t *testing.T) {
	p := NewElement("p")
	a, b, c := NewElement("a"), NewElement("b"), NewElement("c")
	p.Append(a, c)
	if err := p.InsertAt(1, b); err != nil {
		t.Fatalf("InsertAt: %v", err)
	}
	if p.Children[0] != a || p.Children[1] != b || p.Children[2] != c {
		t.Fatalf("InsertAt misplaced children: %v", p.Children)
	}
	if b.Parent != p {
		t.Fatal("InsertAt did not set parent")
	}
	if i := b.Index(); i != 1 {
		t.Fatalf("Index = %d, want 1", i)
	}
	if i := b.Detach(); i != 1 {
		t.Fatalf("Detach returned %d, want 1", i)
	}
	if len(p.Children) != 2 || b.Parent != nil {
		t.Fatal("Detach did not remove node")
	}
	got := p.RemoveAt(0)
	if got != a || len(p.Children) != 1 {
		t.Fatal("RemoveAt(0) wrong")
	}
	if d := NewElement("d"); d.Detach() != -1 {
		t.Error("Detach of orphan should return -1")
	}
}

func TestInsertAtBounds(t *testing.T) {
	p := NewElement("p")
	if err := p.InsertAt(1, NewElement("x")); !errors.Is(err, ErrOutOfRange) {
		t.Errorf("InsertAt(1) on empty parent = %v, want ErrOutOfRange", err)
	}
	if err := p.InsertAt(-1, NewElement("x")); !errors.Is(err, ErrOutOfRange) {
		t.Errorf("InsertAt(-1) = %v, want ErrOutOfRange", err)
	}
	if len(p.Children) != 0 {
		t.Errorf("failed InsertAt mutated the tree: %d children", len(p.Children))
	}
	if err := p.InsertAt(0, NewElement("x")); err != nil {
		t.Errorf("InsertAt(0) = %v, want nil", err)
	}
}

// TestNamespaceLexicalRoundTrip pins the lexical-form reconstruction
// of namespaced names: declared prefixes are restored, default-namespace
// names stay unprefixed, and an undeclared prefix — which encoding/xml
// reports verbatim in Space — is kept, so the canonical output always
// reparses (a fuzzer-found `<A:0/>` once serialized as the invalid
// `<0/>`).
func TestNamespaceLexicalRoundTrip(t *testing.T) {
	for _, src := range []string{
		`<A:0/>`,
		`<e A:0="x"/>`,
		`<a xmlns="u"><b/></a>`,
		`<p:a xmlns:p="u"><p:b q="1"/></p:a>`,
	} {
		doc, err := ParseString(src)
		if err != nil {
			t.Errorf("%s: parse: %v", src, err)
			continue
		}
		out := doc.String()
		re, err := ParseString(out)
		if err != nil {
			t.Errorf("%s: canonical output %q does not reparse: %v", src, out, err)
			continue
		}
		if !Equal(doc, re) {
			t.Errorf("%s: reparse of %q differs: %s", src, out, re.String())
		}
	}
}

func TestAttributeMutation(t *testing.T) {
	e := NewElement("e")
	e.SetAttribute("k", "1")
	e.SetAttribute("k", "2")
	if len(e.Attrs) != 1 || e.Attrs[0].Value != "2" {
		t.Fatalf("SetAttribute replace failed: %v", e.Attrs)
	}
	if !e.RemoveAttribute("k") {
		t.Fatal("RemoveAttribute reported absent")
	}
	if e.RemoveAttribute("k") {
		t.Fatal("RemoveAttribute of absent attr reported present")
	}
}

func TestWalkOrders(t *testing.T) {
	doc := mustParse(t, `<a><b><c/></b><d/></a>`)
	var pre, post []string
	name := func(n *Node) string {
		if n.Type == Document {
			return "#doc"
		}
		return n.Name
	}
	WalkPre(doc, func(n *Node) bool { pre = append(pre, name(n)); return true })
	WalkPost(doc, func(n *Node) bool { post = append(post, name(n)); return true })
	if got, want := strings.Join(pre, " "), "#doc a b c d"; got != want {
		t.Errorf("pre-order = %q, want %q", got, want)
	}
	if got, want := strings.Join(post, " "), "c b d a #doc"; got != want {
		t.Errorf("post-order = %q, want %q", got, want)
	}
	if n := len(Postorder(doc)); n != 5 {
		t.Errorf("Postorder count = %d, want 5", n)
	}
	if n := len(Preorder(doc)); n != 5 {
		t.Errorf("Preorder count = %d, want 5", n)
	}
}

func TestWalkPreSkipsSubtree(t *testing.T) {
	doc := mustParse(t, `<a><b><c/></b><d/></a>`)
	var seen []string
	WalkPre(doc, func(n *Node) bool {
		if n.Type == Element {
			seen = append(seen, n.Name)
		}
		return n.Name != "b"
	})
	if got := strings.Join(seen, " "); got != "a b d" {
		t.Errorf("visited %q, want \"a b d\"", got)
	}
}

func TestSizeAndDepth(t *testing.T) {
	doc := mustParse(t, catalogXML)
	if got := doc.Size(); got != 16 {
		t.Errorf("Size = %d, want 16", got)
	}
	name := Select(doc.Root(), "Discount/Product/Name")
	if len(name) != 1 {
		t.Fatalf("Select found %d Name nodes, want 1", len(name))
	}
	if d := Depth(name[0]); d != 4 {
		t.Errorf("Depth = %d, want 4", d)
	}
}

func TestTextContent(t *testing.T) {
	doc := mustParse(t, `<a><b>one</b><c>two<d>three</d></c></a>`)
	if got := doc.TextContent(); got != "onetwothree" {
		t.Errorf("TextContent = %q", got)
	}
}

func TestSelect(t *testing.T) {
	doc := mustParse(t, catalogXML)
	root := doc.Root()
	prods := Select(root, "*/Product")
	if len(prods) != 2 {
		t.Fatalf("Select */Product found %d, want 2", len(prods))
	}
	texts := Select(root, "Title/text()")
	if len(texts) != 1 || texts[0].Value != "Digital Cameras" {
		t.Fatalf("Select Title/text() = %v", texts)
	}
	if got := Select(root, "Nope/Product"); len(got) != 0 {
		t.Errorf("Select of absent path = %v", got)
	}
	if got := Select(root, ""); len(got) != 1 || got[0] != root {
		t.Errorf("Select empty path should return receiver")
	}
}

func TestPath(t *testing.T) {
	doc := mustParse(t, catalogXML)
	prods := Select(doc.Root(), "*/Product")
	if got := prods[0].Path(); got != "/Category/Discount/Product" {
		t.Errorf("Path = %q", got)
	}
	twins := mustParse(t, `<a><b/><b/></a>`)
	second := twins.Root().Children[1]
	if got := second.Path(); got != "/a/b[2]" {
		t.Errorf("Path with twins = %q", got)
	}
	if got := doc.Path(); got != "/" {
		t.Errorf("document Path = %q", got)
	}
}

func TestFindByXID(t *testing.T) {
	doc := mustParse(t, `<a><b/><c/></a>`)
	nodes := Postorder(doc)
	for i, n := range nodes {
		n.XID = int64(i + 1)
	}
	for i, n := range nodes {
		if got := FindByXID(doc, int64(i+1)); got != n {
			t.Errorf("FindByXID(%d) = %v, want %v", i+1, got, n)
		}
	}
	if got := FindByXID(doc, 99); got != nil {
		t.Errorf("FindByXID(99) = %v, want nil", got)
	}
}

func TestNodeTypeString(t *testing.T) {
	want := map[NodeType]string{
		Document: "document", Element: "element", Text: "text",
		Comment: "comment", ProcInst: "procinst", NodeType(42): "nodetype(42)",
	}
	for ty, s := range want {
		if ty.String() != s {
			t.Errorf("%d.String() = %q, want %q", ty, ty.String(), s)
		}
	}
}

func TestNamespaceLabels(t *testing.T) {
	doc := mustParse(t, `<a xmlns:p="urn:x"><p:b/></a>`)
	root := doc.Root()
	if len(root.Children) != 1 {
		t.Fatal("expected one child")
	}
	// Names stay in lexical prefix form so serialization round-trips.
	if name := root.Children[0].Name; name != "p:b" {
		t.Errorf("namespaced label = %q, want p:b", name)
	}
	if v, ok := root.Attribute("xmlns:p"); !ok || v != "urn:x" {
		t.Errorf("xmlns declaration lost: %v", root.Attrs)
	}
	// Default namespaces round-trip too.
	doc2 := mustParse(t, `<a xmlns="urn:d"><b/></a>`)
	re, err := ParseString(doc2.String())
	if err != nil {
		t.Fatalf("default-ns round trip: %v", err)
	}
	if !Equal(doc2, re) {
		t.Fatalf("default-ns tree changed: %s", Diagnose(doc2, re))
	}
}
