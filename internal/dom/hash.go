package dom

// Hash64 is a streaming FNV-1a hash over the byte content of nodes.
// The diff's subtree signatures are built from it; keeping the mixing
// primitives here (next to the serializer that defines what a node's
// bytes are) lets every layer hash node content without concatenating
// strings or allocating a hash.Hash64 per node.
type Hash64 uint64

const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

// NewHash64 returns the FNV-1a offset basis.
func NewHash64() Hash64 { return fnvOffset }

// MixByte folds one byte into the hash.
func (h *Hash64) MixByte(b byte) {
	*h = (*h ^ Hash64(b)) * fnvPrime
}

// MixString folds a string into the hash, followed by a terminator so
// that ("ab","c") and ("a","bc") mix differently.
func (h *Hash64) MixString(s string) {
	x := uint64(*h)
	for i := 0; i < len(s); i++ {
		x = (x ^ uint64(s[i])) * fnvPrime
	}
	x = (x ^ 0x1f) * fnvPrime
	*h = Hash64(x)
}

// MixUint64 folds a 64-bit value into the hash byte by byte, low byte
// first.
func (h *Hash64) MixUint64(v uint64) {
	x := uint64(*h)
	for s := 0; s < 64; s += 8 {
		x = (x ^ (v >> s & 0xff)) * fnvPrime
	}
	*h = Hash64(x)
}

// Sum returns the current hash value.
func (h Hash64) Sum() uint64 { return uint64(h) }

// HashNode mixes the shallow content of n — type, label, value and
// sorted attributes, but not children — into h. It is the per-node
// step of a subtree signature; callers mix child signatures themselves
// (see the diff's annotation phase) or use HashSubtree.
func (h *Hash64) HashNode(n *Node) {
	h.HashNodeScratch(n, nil)
}

// HashNodeScratch is HashNode with a reusable attribute-sort buffer,
// for hot loops that hash millions of nodes: the (possibly grown)
// buffer is returned so the caller can pass it to the next call and
// amortize the sort copy to zero allocations.
func (h *Hash64) HashNodeScratch(n *Node, buf []Attr) []Attr {
	h.MixByte(byte(n.Type))
	h.MixString(n.Name)
	switch n.Type {
	case Element, Document:
		attrs := n.Attrs
		if len(attrs) >= 2 {
			buf = append(buf[:0], attrs...)
			for i := 1; i < len(buf); i++ { // insertion sort: attr lists are tiny
				for j := i; j > 0 && buf[j].Name < buf[j-1].Name; j-- {
					buf[j], buf[j-1] = buf[j-1], buf[j]
				}
			}
			attrs = buf
		}
		for _, a := range attrs {
			h.MixString(a.Name)
			h.MixByte(0x1)
			h.MixString(a.Value)
			h.MixByte(0x2)
		}
	default:
		h.MixString(n.Value)
	}
	return buf
}

// HashSubtree returns a signature of the whole subtree rooted at n:
// two subtrees with equal canonical content hash equal. XIDs and
// Parent links do not participate.
func HashSubtree(n *Node) uint64 {
	h := NewHash64()
	h.HashNode(n)
	for _, c := range n.Children {
		h.MixUint64(HashSubtree(c))
	}
	return h.Sum()
}
