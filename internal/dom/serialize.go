package dom

import (
	"bufio"
	"io"
	"strings"
)

// WriteTo serializes the subtree rooted at n as XML to w. The output is
// canonical in the sense that attributes are emitted sorted by name and
// no insignificant whitespace is added, so two Equal trees serialize to
// identical bytes.
func (n *Node) WriteTo(w io.Writer) (int64, error) {
	cw := &countWriter{w: bufio.NewWriter(w)}
	writeNode(cw, n)
	if cw.err == nil {
		cw.err = cw.w.(*bufio.Writer).Flush()
	}
	return cw.n, cw.err
}

// String serializes the subtree rooted at n as XML.
func (n *Node) String() string {
	var b strings.Builder
	cw := &countWriter{w: &b}
	writeNode(cw, n)
	return b.String()
}

type countWriter struct {
	w   io.Writer
	n   int64
	err error
}

func (cw *countWriter) writeString(s string) {
	if cw.err != nil {
		return
	}
	n, err := io.WriteString(cw.w, s)
	cw.n += int64(n)
	cw.err = err
}

func writeNode(cw *countWriter, n *Node) {
	switch n.Type {
	case Document:
		for _, c := range n.Children {
			writeNode(cw, c)
		}
	case Element:
		cw.writeString("<")
		cw.writeString(n.Name)
		for _, a := range n.sortedAttrs() {
			cw.writeString(" ")
			cw.writeString(a.Name)
			cw.writeString(`="`)
			cw.writeString(escapeAttr(a.Value))
			cw.writeString(`"`)
		}
		if len(n.Children) == 0 {
			cw.writeString("/>")
			return
		}
		cw.writeString(">")
		for _, c := range n.Children {
			writeNode(cw, c)
		}
		cw.writeString("</")
		cw.writeString(n.Name)
		cw.writeString(">")
	case Text:
		cw.writeString(escapeText(n.Value))
	case Comment:
		cw.writeString("<!--")
		cw.writeString(n.Value)
		cw.writeString("-->")
	case ProcInst:
		cw.writeString("<?")
		cw.writeString(n.Name)
		if n.Value != "" {
			cw.writeString(" ")
			cw.writeString(n.Value)
		}
		cw.writeString("?>")
	}
}

// escapeText escapes character data for element content.
func escapeText(s string) string {
	if !strings.ContainsAny(s, "&<>") {
		return s
	}
	var b strings.Builder
	b.Grow(len(s) + 8)
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '&':
			b.WriteString("&amp;")
		case '<':
			b.WriteString("&lt;")
		case '>':
			b.WriteString("&gt;")
		default:
			b.WriteByte(s[i])
		}
	}
	return b.String()
}

// escapeAttr escapes an attribute value for a double-quoted attribute.
func escapeAttr(s string) string {
	if !strings.ContainsAny(s, "&<>\"\n\t") {
		return s
	}
	var b strings.Builder
	b.Grow(len(s) + 8)
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '&':
			b.WriteString("&amp;")
		case '<':
			b.WriteString("&lt;")
		case '>':
			b.WriteString("&gt;")
		case '"':
			b.WriteString("&quot;")
		case '\n':
			b.WriteString("&#10;")
		case '\t':
			b.WriteString("&#9;")
		default:
			b.WriteByte(s[i])
		}
	}
	return b.String()
}
