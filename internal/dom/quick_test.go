package dom

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// RandomTree adapts random document generation to testing/quick via the
// quick.Generator interface.
type RandomTree struct {
	Doc *Node
}

// Generate implements quick.Generator: a random well-formed document of
// bounded size.
func (RandomTree) Generate(r *rand.Rand, size int) reflect.Value {
	if size > 50 {
		size = 50
	}
	doc := NewDocument()
	root := NewElement("r")
	doc.Append(root)
	elems := []*Node{root}
	labels := []string{"a", "b", "c", "d"}
	for i := 0; i < r.Intn(size+1); i++ {
		p := elems[r.Intn(len(elems))]
		switch r.Intn(5) {
		case 0: // text, avoiding adjacency
			if k := len(p.Children); k == 0 || p.Children[k-1].Type != Text {
				p.Append(NewText(fmt.Sprintf("t%d", r.Intn(100))))
			}
		case 1: // comment
			p.Append(&Node{Type: Comment, Value: fmt.Sprintf("c%d", r.Intn(10))})
		case 2: // attribute on an existing element
			p.SetAttribute(labels[r.Intn(len(labels))], fmt.Sprintf("%d", r.Intn(10)))
		default:
			el := NewElement(labels[r.Intn(len(labels))])
			p.Append(el)
			elems = append(elems, el)
		}
	}
	return reflect.ValueOf(RandomTree{Doc: doc})
}

func TestQuickSerializeParseRoundTrip(t *testing.T) {
	f := func(rt RandomTree) bool {
		out := rt.Doc.String()
		re, err := ParseString(out)
		if err != nil {
			return false
		}
		return Equal(rt.Doc, re)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickCloneEqualAndIndependent(t *testing.T) {
	f := func(rt RandomTree) bool {
		c := rt.Doc.Clone()
		if !Equal(rt.Doc, c) {
			return false
		}
		// Parent pointers in the clone must be internally consistent.
		ok := true
		WalkPre(c, func(n *Node) bool {
			for _, ch := range n.Children {
				if ch.Parent != n {
					ok = false
				}
			}
			return true
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickTraversalInvariants(t *testing.T) {
	f := func(rt RandomTree) bool {
		size := rt.Doc.Size()
		post := Postorder(rt.Doc)
		pre := Preorder(rt.Doc)
		if len(post) != size || len(pre) != size {
			return false
		}
		// Post-order ends at the root; pre-order starts there.
		return post[size-1] == rt.Doc && pre[0] == rt.Doc
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickDetachInsertInverse(t *testing.T) {
	f := func(rt RandomTree, pick uint16) bool {
		nodes := Preorder(rt.Doc)
		n := nodes[int(pick)%len(nodes)]
		if n.Parent == nil {
			return true
		}
		before := rt.Doc.String()
		parent := n.Parent
		idx := n.Detach()
		if err := parent.InsertAt(idx, n); err != nil {
			return false
		}
		return rt.Doc.String() == before
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
