package dom

// Visit is a callback invoked for each node during a traversal. Return
// false from a pre-order visit to skip the node's subtree; the return
// value is ignored for post-order visits.
type Visit func(n *Node) bool

// WalkPre traverses the subtree rooted at n in pre-order (document
// order). If v returns false for a node, its children are skipped.
func WalkPre(n *Node, v Visit) {
	if !v(n) {
		return
	}
	for _, c := range n.Children {
		WalkPre(c, v)
	}
}

// WalkPost traverses the subtree rooted at n in post-order: children
// first, then the node itself. This is the order in which the paper
// assigns postfix positions (and initial XIDs).
func WalkPost(n *Node, v Visit) {
	for _, c := range n.Children {
		WalkPost(c, v)
	}
	v(n)
}

// Postorder returns all nodes of the subtree in post-order.
func Postorder(n *Node) []*Node {
	nodes := make([]*Node, 0, 64)
	WalkPost(n, func(x *Node) bool {
		nodes = append(nodes, x)
		return true
	})
	return nodes
}

// Preorder returns all nodes of the subtree in document order.
func Preorder(n *Node) []*Node {
	nodes := make([]*Node, 0, 64)
	WalkPre(n, func(x *Node) bool {
		nodes = append(nodes, x)
		return true
	})
	return nodes
}

// Depth returns the number of ancestors of n (0 for a root).
func Depth(n *Node) int {
	d := 0
	for p := n.Parent; p != nil; p = p.Parent {
		d++
	}
	return d
}

// FindByXID returns the node with the given XID in the subtree rooted
// at n, or nil. It is a linear scan; the delta apply engine builds a
// map instead.
func FindByXID(n *Node, xid int64) *Node {
	var found *Node
	WalkPre(n, func(x *Node) bool {
		if found != nil {
			return false
		}
		if x.XID == xid {
			found = x
			return false
		}
		return true
	})
	return found
}

// Select returns the nodes matching a simple slash-separated label path
// relative to n, e.g. "Category/Product/Name". A step of "*" matches
// any element; a step of "text()" matches text nodes. The empty path
// selects n itself.
func Select(n *Node, path string) []*Node {
	if path == "" {
		return []*Node{n}
	}
	steps := splitPath(path)
	cur := []*Node{n}
	for _, step := range steps {
		var next []*Node
		for _, c := range cur {
			for _, ch := range c.Children {
				if matchStep(ch, step) {
					next = append(next, ch)
				}
			}
		}
		cur = next
		if len(cur) == 0 {
			break
		}
	}
	return cur
}

func splitPath(p string) []string {
	var steps []string
	start := 0
	for i := 0; i <= len(p); i++ {
		if i == len(p) || p[i] == '/' {
			if i > start {
				steps = append(steps, p[start:i])
			}
			start = i + 1
		}
	}
	return steps
}

func matchStep(n *Node, step string) bool {
	switch step {
	case "*":
		return n.Type == Element
	case "text()":
		return n.Type == Text
	default:
		return n.Type == Element && n.Name == step
	}
}
