package changesim

import (
	"fmt"
	"math/rand"

	"xydiff/internal/delta"
	"xydiff/internal/diff"
	"xydiff/internal/dom"
)

// This file is the real-web counterpart of the XML simulator: it
// generates id-less HTML pages and mutates them the way live sites
// actually change between crawls — attribute churn from re-rendered
// templates, wrapper divs from layout refactors, reordered id-less
// blocks, rewritten copy — while tracking the ground-truth node
// correspondences. The bench7 experiment scores a matcher's precision
// and recall against exactly these pairs.

// htmlWords is the HTML corpus vocabulary. It is deliberately much
// richer than the XML generator's 23-word list: real page copy has low
// accidental word overlap between unrelated paragraphs, and a matcher
// evaluated against a tiny vocabulary would be punished for treating
// shared words as evidence — exactly the evidence that is reliable on
// real pages.
var htmlWords = []string{
	"account", "advice", "airport", "amount", "animal", "answer", "article",
	"autumn", "balance", "basket", "battery", "bicycle", "border", "bottle",
	"branch", "breakfast", "bridge", "budget", "builder", "button", "cabinet",
	"camera", "candle", "canvas", "carpet", "castle", "ceiling", "cellar",
	"channel", "chapter", "charity", "chimney", "cinema", "circle", "climate",
	"clinic", "college", "comfort", "compass", "concert", "copper", "corner",
	"cottage", "council", "courage", "cousin", "cricket", "crystal", "culture",
	"curtain", "customer", "danger", "daughter", "decade", "degree", "dentist",
	"desert", "dessert", "diamond", "dinner", "doctor", "dolphin", "drawer",
	"driver", "economy", "editor", "energy", "engine", "evening", "exhibit",
	"fabric", "factory", "farmer", "feather", "fiction", "finger", "flavor",
	"forest", "fortune", "fountain", "freedom", "furnace", "galaxy", "garden",
	"gallery", "glacier", "grammar", "granite", "guitar", "hammer", "harbor",
	"harvest", "height", "history", "holiday", "hunger", "island", "jacket",
	"journey", "jungle", "kettle", "kitchen", "ladder", "lantern", "laughter",
	"lawyer", "leather", "lecture", "legend", "lemon", "letter", "library",
	"lumber", "machine", "magnet", "manner", "marble", "market", "meadow",
	"member", "memory", "message", "mirror", "moment", "monarch", "morning",
	"mountain", "museum", "nation", "nature", "needle", "network", "number",
	"object", "ocean", "office", "orange", "orchard", "oxygen", "painter",
}

// htmlSentence builds filler copy from the HTML vocabulary.
func htmlSentence(rng *rand.Rand, n int) string {
	out := make([]byte, 0, n*9)
	for i := 0; i < n; i++ {
		if i > 0 {
			out = append(out, ' ')
		}
		out = append(out, htmlWords[rng.Intn(len(htmlWords))]...)
	}
	return string(out)
}

// HTMLPage generates a deterministic id-less HTML page: header with a
// nav of links, a main of sections (heading, paragraphs, list), and a
// footer. Deliberately no id attributes and heavily repeated tags, so
// a matcher gets no exact-identity shortcuts — the regime BULD's
// signature matching struggles with and SFTM is built for.
func HTMLPage(rng *rand.Rand, sections int) *dom.Node {
	doc := dom.NewDocument()
	html := dom.NewElement("html")
	doc.Append(html)

	head := dom.NewElement("head")
	title := dom.NewElement("title")
	title.Append(dom.NewText(htmlSentence(rng, 4)))
	head.Append(title)
	html.Append(head)

	body := dom.NewElement("body")
	html.Append(body)

	header := dom.NewElement("header")
	nav := dom.NewElement("nav")
	nav.SetAttribute("class", "nav main-nav")
	for i := 0; i < 4; i++ {
		a := dom.NewElement("a")
		a.SetAttribute("href", fmt.Sprintf("/%s-%d", htmlWords[rng.Intn(len(htmlWords))], i))
		a.SetAttribute("class", "nav-link")
		a.Append(dom.NewText(htmlSentence(rng, 2)))
		nav.Append(a)
	}
	header.Append(nav)
	body.Append(header)

	main := dom.NewElement("main")
	body.Append(main)
	for s := 0; s < sections; s++ {
		sec := dom.NewElement("div")
		sec.SetAttribute("class", "section")
		h2 := dom.NewElement("h2")
		h2.Append(dom.NewText(htmlSentence(rng, 3)))
		sec.Append(h2)
		for p := 0; p < 2+rng.Intn(2); p++ {
			para := dom.NewElement("p")
			para.Append(dom.NewText(htmlSentence(rng, 8+rng.Intn(8))))
			sec.Append(para)
		}
		ul := dom.NewElement("ul")
		ul.SetAttribute("class", "items")
		for li := 0; li < 3+rng.Intn(3); li++ {
			item := dom.NewElement("li")
			item.SetAttribute("class", "item")
			item.Append(dom.NewText(htmlSentence(rng, 3+rng.Intn(4))))
			ul.Append(item)
		}
		sec.Append(ul)
		main.Append(sec)
	}

	footer := dom.NewElement("footer")
	fp := dom.NewElement("p")
	fp.Append(dom.NewText(htmlSentence(rng, 6)))
	footer.Append(fp)
	body.Append(footer)
	return doc
}

// HTMLParams tune the HTML mutation mix. Probabilities are per
// eligible node.
type HTMLParams struct {
	// AttrProb churns an element's attributes: a class token appears
	// or disappears, an href gains a tracking parameter — the node
	// itself survives (ground truth keeps the pair).
	AttrProb float64
	// UpdateProb rewrites a text node's content completely (pair kept:
	// the perfect delta says update, not delete+insert).
	UpdateProb float64
	// WrapProb wraps an element in a fresh div — the layout-refactor
	// change that breaks ancestry-based matching. The wrapper is an
	// insert; the wrapped subtree keeps its pairs.
	WrapProb float64
	// ReorderProb moves a child to another position among its
	// siblings (id-less reorder; pairs kept, the delta says move).
	ReorderProb float64
	// DeleteProb deletes an element subtree (its pairs drop).
	DeleteProb float64
	// InsertProb inserts a fresh list item or paragraph (no pair).
	InsertProb float64
	Seed       int64
}

// UniformHTML returns HTMLParams with every probability set to p.
func UniformHTML(p float64, seed int64) HTMLParams {
	return HTMLParams{
		AttrProb: p, UpdateProb: p, WrapProb: p,
		ReorderProb: p, DeleteProb: p, InsertProb: p, Seed: seed,
	}
}

// HTMLResult is SimulateHTML's output: the mutated page, the
// ground-truth correspondences (old node → new node, documents
// excluded), and the perfect delta built from them.
type HTMLResult struct {
	New *dom.Node
	// Pairs is the surviving ground-truth matching. Keys are nodes of
	// the input document, values nodes of New.
	Pairs   map[*dom.Node]*dom.Node
	Perfect *delta.Delta
	Stats   HTMLStats
}

// HTMLStats counts the mutations performed.
type HTMLStats struct {
	AttrChurns, Updates, Wraps, Reorders, Deletes, Inserts int
}

func (s HTMLStats) String() string {
	return fmt.Sprintf("%d attr, %d upd, %d wrap, %d reord, %d del, %d ins",
		s.AttrChurns, s.Updates, s.Wraps, s.Reorders, s.Deletes, s.Inserts)
}

// SimulateHTML applies web-flavored mutations to a copy of doc and
// returns the new version, the ground-truth pairs, and the perfect
// delta. doc is not modified structurally, but receives post-order
// XIDs if it has none (the perfect delta is expressed against them).
func SimulateHTML(doc *dom.Node, p HTMLParams) (*HTMLResult, error) {
	if doc == nil || doc.Type != dom.Document {
		return nil, fmt.Errorf("changesim: need a Document node")
	}
	rng := rand.New(rand.NewSource(p.Seed))
	work := doc.Clone()
	pairs := make(map[*dom.Node]*dom.Node, doc.Size())
	mapClones(doc, work, pairs)

	var stats HTMLStats
	counter := 0

	// Phase 1: attribute churn on every surviving element.
	for _, n := range dom.Preorder(work) {
		if n.Type != dom.Element || rng.Float64() >= p.AttrProb {
			continue
		}
		if class, ok := n.Attribute("class"); ok {
			if rng.Intn(2) == 0 {
				n.SetAttribute("class", class+" v2")
			} else {
				n.RemoveAttribute("class")
			}
		} else if href, ok := n.Attribute("href"); ok {
			n.SetAttribute("href", href+"?utm=crawl")
		} else {
			n.SetAttribute("class", "fresh")
		}
		stats.AttrChurns++
	}

	// Phase 2: full text rewrites.
	for _, n := range dom.Preorder(work) {
		if n.Type != dom.Text || rng.Float64() >= p.UpdateProb {
			continue
		}
		counter++
		n.Value = fmt.Sprintf("rewritten copy %d %s", counter, htmlSentence(rng, 5))
		stats.Updates++
	}

	// Phase 3: wrapper divs. Snapshot first: wrapping mutates the
	// child lists being walked.
	var wrappable []*dom.Node
	for _, n := range dom.Preorder(work) {
		// Wrap block-level children of body/main/section-divs; leave
		// html/head/body themselves alone.
		if n.Type == dom.Element && n.Parent != nil && n.Parent.Type == dom.Element {
			switch n.Parent.Name {
			case "body", "main", "div":
				wrappable = append(wrappable, n)
			}
		}
	}
	for _, n := range wrappable {
		if rng.Float64() >= p.WrapProb {
			continue
		}
		parent := n.Parent
		if parent == nil {
			continue
		}
		pos := n.Index()
		wrap := dom.NewElement("div")
		wrap.SetAttribute("class", "wrapper")
		n.Detach()
		wrap.Append(n)
		if err := parent.InsertAt(pos, wrap); err != nil {
			return nil, fmt.Errorf("changesim: wrap: %w", err)
		}
		stats.Wraps++
	}

	// Phase 4: id-less reorders within a parent.
	for _, n := range dom.Preorder(work) {
		if n.Type != dom.Element || len(n.Children) < 2 || rng.Float64() >= p.ReorderProb {
			continue
		}
		from := rng.Intn(len(n.Children))
		to := rng.Intn(len(n.Children))
		if from == to {
			continue
		}
		child := n.Children[from]
		child.Detach()
		if err := n.InsertAt(to, child); err != nil {
			return nil, fmt.Errorf("changesim: reorder: %w", err)
		}
		stats.Reorders++
	}

	// Phase 5: deletions of repeated-content elements.
	for _, n := range dom.Preorder(work) {
		if n.Type != dom.Element || rng.Float64() >= p.DeleteProb {
			continue
		}
		if n.Name != "li" && n.Name != "p" && n.Name != "a" {
			continue
		}
		if n.Parent == nil || detachedFrom(n, work) {
			continue
		}
		n.Detach()
		stats.Deletes++
	}

	// Phase 6: fresh insertions.
	for _, n := range dom.Preorder(work) {
		if n.Type != dom.Element || rng.Float64() >= p.InsertProb {
			continue
		}
		var el *dom.Node
		switch n.Name {
		case "ul":
			el = dom.NewElement("li")
			el.SetAttribute("class", "item new")
		case "div", "main":
			el = dom.NewElement("p")
		default:
			continue
		}
		counter++
		el.Append(dom.NewText(fmt.Sprintf("fresh content %d %s", counter, htmlSentence(rng, 4))))
		if err := n.InsertAt(rng.Intn(len(n.Children)+1), el); err != nil {
			return nil, fmt.Errorf("changesim: insert: %w", err)
		}
		stats.Inserts++
	}

	// Drop pairs whose clone no longer lives under the mutated tree.
	alive := make(map[*dom.Node]bool, len(pairs))
	dom.WalkPre(work, func(n *dom.Node) bool {
		alive[n] = true
		return true
	})
	for o, n := range pairs {
		if !alive[n] {
			delete(pairs, o)
		}
	}
	// Documents out: ground truth covers real nodes only (FromMatching
	// and the matchers pair documents structurally anyway).
	truth := make(map[*dom.Node]*dom.Node, len(pairs))
	for o, n := range pairs {
		if o.Type != dom.Document {
			truth[o] = n
		}
	}

	perfect, err := diff.FromMatching(doc, work, pairs, diff.Options{
		DisableIDAttributes: true,
		LISWindow:           -1,
	})
	if err != nil {
		return nil, fmt.Errorf("changesim: perfect delta: %w", err)
	}
	return &HTMLResult{New: work, Pairs: truth, Perfect: perfect, Stats: stats}, nil
}
