// Package changesim implements the paper's experimental apparatus: the
// change simulator of Section 6.1 (controlled random edits with a
// "perfect" reference delta) and generators for synthetic documents and
// web-like corpora that stand in for the 2002 web crawl of Section 6.2.
package changesim

import (
	"fmt"
	"math/rand"

	"xydiff/internal/delta"
	"xydiff/internal/diff"
	"xydiff/internal/dom"
)

// Params are the per-node probabilities of the simulated operations,
// exactly as in the paper ("probabilities for each change operations",
// given per node). The experiment of Figure 4 sets all four to 0.10.
type Params struct {
	DeleteProb float64 // a node (and its subtree) is deleted
	UpdateProb float64 // a surviving text node gets new content
	InsertProb float64 // a surviving element receives a new child
	MoveProb   float64 // an insertion reuses deleted data (a move)
	Seed       int64
}

// Uniform returns Params with every probability set to p.
func Uniform(p float64, seed int64) Params {
	return Params{DeleteProb: p, UpdateProb: p, InsertProb: p, MoveProb: p, Seed: seed}
}

// Result is the simulator's output: the new version and the perfect
// delta that captures exactly the edits performed. The perfect delta is
// what the computed delta is compared against in Figure 5.
type Result struct {
	New     *dom.Node
	Perfect *delta.Delta
	// Stats tallies the edits actually performed.
	Stats Stats
}

// Stats counts the simulated operations.
type Stats struct {
	Deletes, Updates, Inserts, Moves int
}

func (s Stats) String() string {
	return fmt.Sprintf("%d del, %d upd, %d ins, %d mov", s.Deletes, s.Updates, s.Inserts, s.Moves)
}

// Simulate applies random changes to a copy of doc and returns the new
// version together with the perfect delta. doc itself is not modified
// structurally, but it receives post-order XIDs if it has none (the
// delta is expressed against them).
//
// The three phases follow the paper: deletions first, then updates of
// the remaining text nodes, then insertions — each insertion reusing a
// previously deleted subtree (a move) with probability MoveProb.
// Update and insert probabilities are recomputed against the shrunken
// node count, as the paper describes, so the expected edit counts stay
// calibrated to the original document size.
func Simulate(doc *dom.Node, p Params) (*Result, error) {
	if doc == nil || doc.Type != dom.Document {
		return nil, fmt.Errorf("changesim: need a Document node")
	}
	rng := rand.New(rand.NewSource(p.Seed))
	work := doc.Clone()

	// Identity map: original node -> its clone. Surviving entries
	// become the perfect matching.
	pairs := make(map[*dom.Node]*dom.Node, doc.Size())
	mapClones(doc, work, pairs)

	var stats Stats
	counter := 0

	// Phase 1: deletions. Iterate over a snapshot; skip nodes whose
	// ancestors are already gone.
	originalCount := 0
	var deletable []*dom.Node
	dom.WalkPre(work, func(n *dom.Node) bool {
		originalCount++
		if n.Type != dom.Document && n.Parent != nil && n.Parent.Type != dom.Document {
			deletable = append(deletable, n)
		}
		return true
	})
	var pool []*dom.Node // deleted subtrees, reusable as moves
	for _, n := range deletable {
		if n.Parent == nil || detachedFrom(n, work) {
			continue
		}
		if rng.Float64() >= p.DeleteProb {
			continue
		}
		if wouldMergeText(n) {
			continue // keep the tree well-formed for reparsing
		}
		n.Detach()
		pool = append(pool, n)
		stats.Deletes++
	}

	// Phase 2: updates on the remaining text nodes, compensated for
	// the shrunken document.
	remaining := dom.Preorder(work)
	updateProb := compensate(p.UpdateProb, originalCount, len(remaining))
	for _, n := range remaining {
		if n.Type != dom.Text {
			continue
		}
		if rng.Float64() < updateProb {
			counter++
			n.Value = fmt.Sprintf("updated text %d", counter)
			stats.Updates++
		}
	}

	// Phase 3: insertions and moves on the remaining element nodes.
	insertProb := compensate(p.InsertProb, originalCount, len(remaining))
	for _, n := range remaining {
		if n.Type != dom.Element {
			continue
		}
		if rng.Float64() >= insertProb {
			continue
		}
		pos := rng.Intn(len(n.Children) + 1)
		if len(pool) > 0 && rng.Float64() < p.MoveProb {
			// Move: re-insert previously deleted data.
			sub := pool[len(pool)-1]
			pool = pool[:len(pool)-1]
			if textAdjacent(n, pos, sub.Type == dom.Text) {
				continue
			}
			if err := n.InsertAt(pos, sub); err != nil {
				return nil, fmt.Errorf("changesim: move: %w", err)
			}
			stats.Moves++
			continue
		}
		// Original data, matching the XML style of the document: a
		// text node when allowed, otherwise an element whose tag is
		// copied from a sibling, cousin or ancestor.
		if rng.Intn(3) == 0 && !textAdjacent(n, pos, true) {
			counter++
			if err := n.InsertAt(pos, dom.NewText(fmt.Sprintf("original text %d", counter))); err != nil {
				return nil, fmt.Errorf("changesim: insert: %w", err)
			}
			stats.Inserts++
			continue
		}
		label := copyLabel(rng, n)
		el := dom.NewElement(label)
		if rng.Intn(2) == 0 {
			counter++
			el.Append(dom.NewText(fmt.Sprintf("original text %d", counter)))
		}
		if err := n.InsertAt(pos, el); err != nil {
			return nil, fmt.Errorf("changesim: insert: %w", err)
		}
		stats.Inserts++
	}

	// Never-reused deleted subtrees stay deleted: drop their pairs.
	alive := make(map[*dom.Node]bool, len(remaining))
	dom.WalkPre(work, func(n *dom.Node) bool {
		alive[n] = true
		return true
	})
	for o, n := range pairs {
		if !alive[n] {
			delete(pairs, o)
		}
	}

	perfect, err := diff.FromMatching(doc, work, pairs, diff.Options{
		DisableIDAttributes: true,
		LISWindow:           -1, // exact move minimization: the delta is "perfect"
	})
	if err != nil {
		return nil, fmt.Errorf("changesim: perfect delta: %w", err)
	}
	return &Result{New: work, Perfect: perfect, Stats: stats}, nil
}

// mapClones records the node-to-node correspondence of a Clone call.
func mapClones(orig, clone *dom.Node, pairs map[*dom.Node]*dom.Node) {
	pairs[orig] = clone
	for i := range orig.Children {
		mapClones(orig.Children[i], clone.Children[i], pairs)
	}
}

// detachedFrom reports whether n is no longer under root.
func detachedFrom(n, root *dom.Node) bool {
	for ; n != nil; n = n.Parent {
		if n == root {
			return false
		}
	}
	return true
}

// wouldMergeText reports whether removing n would leave two adjacent
// text siblings (which a reparse would merge, breaking equality).
func wouldMergeText(n *dom.Node) bool {
	p := n.Parent
	if p == nil {
		return false
	}
	i := n.Index()
	return i > 0 && i+1 < len(p.Children) &&
		p.Children[i-1].Type == dom.Text && p.Children[i+1].Type == dom.Text
}

// textAdjacent reports whether inserting a node at pos would place text
// next to text.
func textAdjacent(parent *dom.Node, pos int, isText bool) bool {
	if !isText {
		return false
	}
	if pos > 0 && parent.Children[pos-1].Type == dom.Text {
		return true
	}
	if pos < len(parent.Children) && parent.Children[pos].Type == dom.Text {
		return true
	}
	return false
}

// compensate rescales a per-node probability after the population
// shrank from n0 to n1 nodes.
func compensate(p float64, n0, n1 int) float64 {
	if n1 <= 0 {
		return 0
	}
	q := p * float64(n0) / float64(n1)
	if q > 1 {
		return 1
	}
	return q
}

// copyLabel picks a tag for inserted data from the document itself —
// sibling, cousin, or ancestor — preserving the label distribution that
// the paper identifies as an XML-specific trait.
func copyLabel(rng *rand.Rand, parent *dom.Node) string {
	var candidates []string
	for _, c := range parent.Children {
		if c.Type == dom.Element {
			candidates = append(candidates, c.Name)
		}
	}
	if len(candidates) == 0 && parent.Parent != nil {
		for _, sib := range parent.Parent.Children {
			if sib.Type != dom.Element {
				continue
			}
			for _, c := range sib.Children {
				if c.Type == dom.Element {
					candidates = append(candidates, c.Name)
				}
			}
		}
	}
	if len(candidates) == 0 {
		for a := parent; a != nil; a = a.Parent {
			if a.Type == dom.Element {
				candidates = append(candidates, a.Name)
			}
		}
	}
	if len(candidates) == 0 {
		return "node"
	}
	return candidates[rng.Intn(len(candidates))]
}
