package changesim

import (
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"xydiff/internal/dom"
)

func fetch(t *testing.T, client *http.Client, url string, headers map[string]string) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range headers {
		req.Header.Set(k, v)
	}
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, body
}

func TestServeCorpusConditionalGet(t *testing.T) {
	origin, err := ServeCorpus(7, 3)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(origin)
	defer ts.Close()
	path := origin.Paths()[0]

	resp, body := fetch(t, ts.Client(), ts.URL+path, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if _, err := dom.ParseString(string(body)); err != nil {
		t.Fatalf("served body does not parse as XML: %v", err)
	}
	etag := resp.Header.Get("ETag")
	lastMod := resp.Header.Get("Last-Modified")
	if etag == "" || lastMod == "" {
		t.Fatalf("missing validators: ETag=%q Last-Modified=%q", etag, lastMod)
	}

	// Revalidation against the current version: 304, no body.
	resp, body = fetch(t, ts.Client(), ts.URL+path, map[string]string{"If-None-Match": etag})
	if resp.StatusCode != http.StatusNotModified || len(body) != 0 {
		t.Fatalf("If-None-Match: status = %d, body %d bytes", resp.StatusCode, len(body))
	}
	resp, _ = fetch(t, ts.Client(), ts.URL+path, map[string]string{"If-Modified-Since": lastMod})
	if resp.StatusCode != http.StatusNotModified {
		t.Fatalf("If-Modified-Since: status = %d", resp.StatusCode)
	}

	// After a mutation the same validators must stop matching.
	if err := origin.Mutate(path); err != nil {
		t.Fatal(err)
	}
	resp, body = fetch(t, ts.Client(), ts.URL+path, map[string]string{"If-None-Match": etag})
	if resp.StatusCode != http.StatusOK || len(body) == 0 {
		t.Fatalf("post-mutation If-None-Match: status = %d, body %d bytes", resp.StatusCode, len(body))
	}
	if got := resp.Header.Get("ETag"); got == etag {
		t.Fatal("ETag unchanged across a mutation")
	}
	resp, _ = fetch(t, ts.Client(), ts.URL+path, map[string]string{"If-Modified-Since": lastMod})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-mutation If-Modified-Since: status = %d", resp.StatusCode)
	}
	if origin.Version(path) != 2 {
		t.Fatalf("version = %d, want 2", origin.Version(path))
	}
}

func TestServeCorpusDeterministic(t *testing.T) {
	build := func() (*CorpusServer, [][]byte) {
		origin, err := ServeCorpus(2002, 5)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := origin.Tick(0.5); err != nil {
			t.Fatal(err)
		}
		if err := origin.Mutate(origin.Paths()[1]); err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(origin)
		defer ts.Close()
		var bodies [][]byte
		for _, p := range origin.Paths() {
			resp, body := fetch(t, ts.Client(), ts.URL+p, nil)
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("status = %d", resp.StatusCode)
			}
			bodies = append(bodies, append(body, resp.Header.Get("ETag")...))
		}
		return origin, bodies
	}
	a, aBodies := build()
	b, bBodies := build()
	for i := range aBodies {
		if string(aBodies[i]) != string(bBodies[i]) {
			t.Fatalf("corpus diverged at doc %d despite identical seed and drive sequence", i)
		}
	}
	for _, p := range a.Paths() {
		if a.Version(p) != b.Version(p) {
			t.Fatalf("version diverged at %s: %d vs %d", p, a.Version(p), b.Version(p))
		}
	}
}

func TestServeCorpusTickEvolves(t *testing.T) {
	origin, err := ServeCorpus(11, 10)
	if err != nil {
		t.Fatal(err)
	}
	changed, err := origin.Tick(1.0)
	if err != nil {
		t.Fatal(err)
	}
	if changed != 10 {
		t.Fatalf("Tick(1.0) changed %d of 10", changed)
	}
	changed, err = origin.Tick(0)
	if err != nil {
		t.Fatal(err)
	}
	if changed != 0 {
		t.Fatalf("Tick(0) changed %d", changed)
	}
}

func TestServeCorpusMethodAndPathErrors(t *testing.T) {
	origin, err := ServeCorpus(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(origin)
	defer ts.Close()

	resp, err := ts.Client().Post(ts.URL+origin.Paths()[0], "text/plain", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST status = %d", resp.StatusCode)
	}
	resp, _ = fetch(t, ts.Client(), ts.URL+"/doc/999", nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("missing path status = %d", resp.StatusCode)
	}
}
