package changesim

import (
	"fmt"
	"math"
	"math/rand"

	"xydiff/internal/dom"
)

// CorpusDoc is one synthetic "crawled" document together with its
// weekly-changed successor version, standing in for the paper's web
// data set (Section 6.2: about two hundred XML documents that changed
// on a per-week basis).
type CorpusDoc struct {
	Old *dom.Node
	New *dom.Node
	// Kind names the generator used (catalog, addressbook, site).
	Kind string
}

// WebCorpus generates count document pairs whose sizes follow a
// log-normal distribution centered near 20 KB — "the average size of an
// XML document on the web is about twenty kilobytes" — with a weekly
// change process of a few percent per node.
func WebCorpus(rng *rand.Rand, count int) ([]CorpusDoc, error) {
	docs := make([]CorpusDoc, 0, count)
	for i := 0; i < count; i++ {
		size := lognormalSize(rng, 20_000, 1.2)
		var doc *dom.Node
		var kind string
		switch rng.Intn(4) {
		case 0:
			doc, kind = CatalogOfSize(rng, size), "catalog"
		case 1:
			doc, kind = AddressBook(rng, size/150+1), "addressbook"
		case 2:
			doc, kind = Articles(rng, size/220+1), "articles"
		default:
			doc, kind = Site(rng, size/350+1), "site"
		}
		// Weekly change: light touch, mostly updates and few structure
		// edits, matching what the paper observed on real pages.
		p := Params{
			DeleteProb: 0.01,
			UpdateProb: 0.05,
			InsertProb: 0.01,
			MoveProb:   0.05,
			Seed:       rng.Int63(),
		}
		res, err := Simulate(doc, p)
		if err != nil {
			return nil, fmt.Errorf("changesim: corpus document %d (%s): %w", i, kind, err)
		}
		docs = append(docs, CorpusDoc{Old: doc, New: res.New, Kind: kind})
	}
	return docs, nil
}

// lognormalSize draws a byte size with the given median and sigma,
// clamped to [200, 2MB].
func lognormalSize(rng *rand.Rand, median float64, sigma float64) int {
	v := math.Exp(math.Log(median) + sigma*rng.NormFloat64())
	if v < 200 {
		v = 200
	}
	if v > 2_000_000 {
		v = 2_000_000
	}
	return int(v)
}

// SiteSnapshotPair generates the Section 6.2 headline workload: two
// snapshots of a ~14000-page web site (about five megabytes of XML),
// the second snapshot reflecting a week of site evolution.
func SiteSnapshotPair(seed int64, pages int) (*dom.Node, *dom.Node, error) {
	rng := rand.New(rand.NewSource(seed))
	oldDoc := Site(rng, pages)
	res, err := Simulate(oldDoc, Params{
		DeleteProb: 0.02,
		UpdateProb: 0.06,
		InsertProb: 0.02,
		MoveProb:   0.10,
		Seed:       seed + 1,
	})
	if err != nil {
		return nil, nil, fmt.Errorf("changesim: site snapshot pair: %w", err)
	}
	return oldDoc, res.New, nil
}
