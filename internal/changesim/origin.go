package changesim

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"net/http"
	"sync"
	"time"

	"xydiff/internal/dom"
)

// CorpusServer is a deterministic synthetic origin: an http.Handler
// serving an evolving corpus of XML documents — the "changing web" the
// paper's crawler polls — with correct HTTP revalidation semantics.
// Every document carries a strong ETag and a Last-Modified stamp from a
// synthetic clock, and conditional requests (If-None-Match /
// If-Modified-Since) answer 304 exactly when the document has not
// evolved since. Everything derives from the seed, so two servers built
// with the same seed and driven through the same Mutate/Tick sequence
// serve byte-identical corpora — crawler tests and load tests share one
// reproducible origin.
type CorpusServer struct {
	mu     sync.Mutex
	rng    *rand.Rand
	clock  time.Time
	params Params
	order  []string
	docs   map[string]*originDoc
}

// originDoc is one served document and its current validators.
type originDoc struct {
	doc      *dom.Node
	body     []byte
	etag     string
	modified time.Time
	version  int
}

// originEpoch is the synthetic clock's start; it only needs to be fixed
// (determinism) and in the past (so real-clock crawlers see sane
// Last-Modified values). The paper's submission year will do.
var originEpoch = time.Date(2002, time.February, 26, 0, 0, 0, 0, time.UTC)

// ServeCorpus builds a corpus of count documents from seed, served at
// /doc/000 .. /doc/NNN. Documents reuse the WebCorpus generators
// (catalogs, address books, articles, sites) at a few kilobytes each;
// the change process per Mutate is the light weekly touch of WebCorpus.
func ServeCorpus(seed int64, count int) (*CorpusServer, error) {
	rng := rand.New(rand.NewSource(seed))
	s := &CorpusServer{
		rng:   rng,
		clock: originEpoch,
		params: Params{
			DeleteProb: 0.01,
			UpdateProb: 0.05,
			InsertProb: 0.01,
			MoveProb:   0.05,
		},
		docs: make(map[string]*originDoc),
	}
	for i := 0; i < count; i++ {
		size := lognormalSize(rng, 4_000, 0.8)
		var doc *dom.Node
		switch rng.Intn(4) {
		case 0:
			doc = CatalogOfSize(rng, size)
		case 1:
			doc = AddressBook(rng, size/150+1)
		case 2:
			doc = Articles(rng, size/220+1)
		default:
			doc = Site(rng, size/350+1)
		}
		path := fmt.Sprintf("/doc/%03d", i)
		d := &originDoc{doc: doc, version: 1}
		s.refresh(d)
		s.order = append(s.order, path)
		s.docs[path] = d
	}
	return s, nil
}

// refresh reserializes d and renews its validators from the synthetic
// clock. Caller holds s.mu (or is still constructing s).
func (s *CorpusServer) refresh(d *originDoc) {
	d.body = []byte(d.doc.String())
	h := fnv.New64a()
	_, _ = h.Write(d.body) // fnv never fails
	d.etag = fmt.Sprintf("\"%016x-%d\"", h.Sum64(), d.version)
	d.modified = s.clock
}

// Paths returns the served document paths in corpus order.
func (s *CorpusServer) Paths() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, len(s.order))
	copy(out, s.order)
	return out
}

// Version returns the current version number of the document at path
// (0 when the path is not served).
func (s *CorpusServer) Version(path string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if d := s.docs[path]; d != nil {
		return d.version
	}
	return 0
}

// Mutate evolves the document at path by one version (the WebCorpus
// weekly-change process) and advances the synthetic clock, so the new
// version carries a fresh ETag and a later Last-Modified.
func (s *CorpusServer) Mutate(path string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	d := s.docs[path]
	if d == nil {
		return fmt.Errorf("changesim: no corpus document at %q", path)
	}
	s.clock = s.clock.Add(time.Hour)
	return s.mutateLocked(path, d)
}

// mutateLocked rolls one document forward. Caller holds s.mu and has
// advanced the clock.
func (s *CorpusServer) mutateLocked(path string, d *originDoc) error {
	p := s.params
	p.Seed = s.rng.Int63()
	res, err := Simulate(d.doc, p)
	if err != nil {
		return fmt.Errorf("changesim: mutate %s: %w", path, err)
	}
	d.doc = res.New
	d.version++
	s.refresh(d)
	return nil
}

// Tick advances the corpus one epoch: the clock moves an hour and each
// document evolves with probability prob (drawn from the seeded rng, so
// the sequence of Ticks is deterministic). It returns how many
// documents changed.
func (s *CorpusServer) Tick(prob float64) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.clock = s.clock.Add(time.Hour)
	changed := 0
	for _, path := range s.order {
		if s.rng.Float64() >= prob {
			continue
		}
		if err := s.mutateLocked(path, s.docs[path]); err != nil {
			return changed, err
		}
		changed++
	}
	return changed, nil
}

// ServeHTTP implements the origin: GET/HEAD with ETag / Last-Modified
// revalidation. A request whose If-None-Match matches the current ETag
// — or, absent that header, whose If-Modified-Since is not before the
// document's Last-Modified — is answered 304 with no body, which is
// exactly the signal that lets a crawler skip the parse/diff pipeline.
func (s *CorpusServer) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet && r.Method != http.MethodHead {
		w.Header().Set("Allow", "GET, HEAD")
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	s.mu.Lock()
	d := s.docs[r.URL.Path]
	var body []byte
	var etag string
	var modified time.Time
	if d != nil {
		body, etag, modified = d.body, d.etag, d.modified
	}
	s.mu.Unlock()
	if d == nil {
		http.NotFound(w, r)
		return
	}

	w.Header().Set("ETag", etag)
	w.Header().Set("Last-Modified", modified.UTC().Format(http.TimeFormat))
	if notModified(r, etag, modified) {
		w.WriteHeader(http.StatusNotModified)
		return
	}
	w.Header().Set("Content-Type", "application/xml")
	w.Header().Set("Content-Length", fmt.Sprint(len(body)))
	if r.Method == http.MethodHead {
		return
	}
	_, _ = w.Write(body) // a short write means the client hung up
}

// notModified decides revalidation: If-None-Match wins over
// If-Modified-Since (RFC 9110 §13.1.3).
func notModified(r *http.Request, etag string, modified time.Time) bool {
	if inm := r.Header.Get("If-None-Match"); inm != "" {
		if inm == "*" || inm == etag {
			return true
		}
		return false
	}
	if ims := r.Header.Get("If-Modified-Since"); ims != "" {
		if t, err := http.ParseTime(ims); err == nil {
			// HTTP dates have second granularity; truncate before comparing.
			return !modified.Truncate(time.Second).After(t)
		}
	}
	return false
}
