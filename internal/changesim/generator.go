package changesim

import (
	"fmt"
	"math/rand"

	"xydiff/internal/dom"
)

// Catalog generates a product-catalog document in the style of the
// paper's running example: categories holding products with names,
// prices, manufacturers and descriptions.
func Catalog(rng *rand.Rand, categories, productsPerCategory int) *dom.Node {
	doc := dom.NewDocument()
	root := dom.NewElement("Catalog")
	doc.Append(root)
	id := 0
	for c := 0; c < categories; c++ {
		cat := dom.NewElement("Category")
		title := dom.NewElement("Title")
		title.Append(dom.NewText(fmt.Sprintf("%s %s", adjectives[rng.Intn(len(adjectives))], nouns[rng.Intn(len(nouns))])))
		cat.Append(title)
		for p := 0; p < productsPerCategory; p++ {
			id++
			prod := dom.NewElement("Product")
			name := dom.NewElement("Name")
			name.Append(dom.NewText(fmt.Sprintf("%s-%04d", codes[rng.Intn(len(codes))], id)))
			price := dom.NewElement("Price")
			price.Append(dom.NewText(fmt.Sprintf("$%d", 10+rng.Intn(2000))))
			manu := dom.NewElement("Manufacturer")
			manu.Append(dom.NewText(makers[rng.Intn(len(makers))]))
			desc := dom.NewElement("Description")
			desc.Append(dom.NewText(sentence(rng, 6+rng.Intn(20))))
			prod.Append(name, price, manu, desc)
			if rng.Intn(4) == 0 {
				prod.SetAttribute("status", []string{"new", "sale", "standard"}[rng.Intn(3)])
			}
			cat.Append(prod)
		}
		root.Append(cat)
	}
	return doc
}

// CatalogOfSize generates a catalog whose serialization is close to
// (and at least) the requested byte size.
func CatalogOfSize(rng *rand.Rand, targetBytes int) *dom.Node {
	// One product serializes to roughly 200 bytes.
	products := targetBytes/200 + 1
	perCategory := 10
	categories := products/perCategory + 1
	return Catalog(rng, categories, perCategory)
}

// AddressBook generates the paper's other motivating shape: a flat list
// of person records ("adding or removing people in an address book").
func AddressBook(rng *rand.Rand, people int) *dom.Node {
	doc := dom.NewDocument()
	root := dom.NewElement("AddressBook")
	doc.Append(root)
	for i := 0; i < people; i++ {
		p := dom.NewElement("Person")
		name := dom.NewElement("Name")
		name.Append(dom.NewText(fmt.Sprintf("%s %s", firstNames[rng.Intn(len(firstNames))], lastNames[rng.Intn(len(lastNames))])))
		email := dom.NewElement("Email")
		email.Append(dom.NewText(fmt.Sprintf("user%d@example.org", rng.Intn(100000))))
		tel := dom.NewElement("Phone")
		tel.Append(dom.NewText(fmt.Sprintf("+33 1 %02d %02d %02d %02d", rng.Intn(100), rng.Intn(100), rng.Intn(100), rng.Intn(100))))
		p.Append(name, email, tel)
		root.Append(p)
	}
	return doc
}

// Site generates a web-site metadata document like the XML snapshots of
// www.inria.fr the paper diffs in Section 6.2: one <page> per URL with
// title, size, and outgoing links. 14000 pages yield roughly five
// megabytes, matching the paper's figures.
func Site(rng *rand.Rand, pages int) *dom.Node {
	doc := dom.NewDocument()
	root := dom.NewElement("site")
	root.SetAttribute("host", "www.example.org")
	doc.Append(root)
	for i := 0; i < pages; i++ {
		p := dom.NewElement("page")
		p.SetAttribute("url", fmt.Sprintf("/dir%d/page%d.html", i%97, i))
		title := dom.NewElement("title")
		title.Append(dom.NewText(sentence(rng, 3+rng.Intn(6))))
		size := dom.NewElement("size")
		size.Append(dom.NewText(fmt.Sprintf("%d", 500+rng.Intn(90000))))
		modified := dom.NewElement("modified")
		modified.Append(dom.NewText(fmt.Sprintf("2001-%02d-%02d", 1+rng.Intn(12), 1+rng.Intn(28))))
		p.Append(title, size, modified)
		links := dom.NewElement("links")
		for l := 0; l < 2+rng.Intn(6); l++ {
			a := dom.NewElement("link")
			a.SetAttribute("href", fmt.Sprintf("/dir%d/page%d.html", rng.Intn(97), rng.Intn(pages)))
			links.Append(a)
		}
		p.Append(links)
		root.Append(p)
	}
	return doc
}

// Generic generates a random labeled tree with the given approximate
// node count and label alphabet, for experiments that need shape
// control rather than realism.
func Generic(rng *rand.Rand, nodes, maxChildren, labelCount int) *dom.Node {
	// With a single child slot, a text child can fill the only open
	// node while the text-vs-element guard keeps every later draw a
	// no-op, and the loop below never terminates (found by the xptest
	// generator driving this with fuzzer-chosen parameters). Two slots
	// guarantee every full node has an element child still open.
	if maxChildren < 2 {
		maxChildren = 2
	}
	doc := dom.NewDocument()
	root := dom.NewElement("n0")
	doc.Append(root)
	open := []*dom.Node{root}
	count := 1
	for count < nodes && len(open) > 0 {
		p := open[rng.Intn(len(open))]
		if len(p.Children) >= maxChildren {
			continue
		}
		if rng.Intn(4) == 0 {
			if k := len(p.Children); k == 0 || p.Children[k-1].Type != dom.Text {
				p.Append(dom.NewText(sentence(rng, 1+rng.Intn(5))))
				count++
			}
			continue
		}
		el := dom.NewElement(fmt.Sprintf("n%d", rng.Intn(labelCount)))
		p.Append(el)
		open = append(open, el)
		count++
	}
	return doc
}

// sentence builds deterministic filler text of n words.
func sentence(rng *rand.Rand, n int) string {
	out := make([]byte, 0, n*8)
	for i := 0; i < n; i++ {
		if i > 0 {
			out = append(out, ' ')
		}
		out = append(out, words[rng.Intn(len(words))]...)
	}
	return string(out)
}

var (
	adjectives = []string{"Digital", "Analog", "Compact", "Portable", "Wireless", "Refurbished", "Professional"}
	nouns      = []string{"Cameras", "Phones", "Printers", "Laptops", "Monitors", "Routers", "Scanners"}
	codes      = []string{"tx", "zy", "ab", "qr", "mk", "vn"}
	makers     = []string{"Acme", "Globex", "Initech", "Umbrella", "Soylent", "Hooli"}
	firstNames = []string{"Ada", "Alan", "Grace", "Edsger", "Barbara", "Donald", "Leslie"}
	lastNames  = []string{"Lovelace", "Turing", "Hopper", "Dijkstra", "Liskov", "Knuth", "Lamport"}
	words      = []string{"the", "quick", "brown", "fox", "jumps", "over", "lazy", "dog",
		"warehouse", "stores", "massive", "volume", "of", "xml", "data", "change",
		"control", "version", "delta", "subtree", "match", "signature", "weight"}
)

// Articles generates a bibliography-style document (the DBLP-like shape
// common in XML benchmarks): articles with authors, title, year and
// venue. Its deep label repetition with varying fan-out stresses the
// matcher differently than catalogs do.
func Articles(rng *rand.Rand, count int) *dom.Node {
	doc := dom.NewDocument()
	root := dom.NewElement("bibliography")
	doc.Append(root)
	for i := 0; i < count; i++ {
		art := dom.NewElement("article")
		art.SetAttribute("key", fmt.Sprintf("ref/%04d", i))
		for a := 0; a < 1+rng.Intn(4); a++ {
			author := dom.NewElement("author")
			author.Append(dom.NewText(fmt.Sprintf("%s %s",
				firstNames[rng.Intn(len(firstNames))], lastNames[rng.Intn(len(lastNames))])))
			art.Append(author)
		}
		title := dom.NewElement("title")
		title.Append(dom.NewText(sentence(rng, 4+rng.Intn(8))))
		year := dom.NewElement("year")
		year.Append(dom.NewText(fmt.Sprintf("%d", 1990+rng.Intn(13))))
		venue := dom.NewElement("venue")
		venue.Append(dom.NewText([]string{"VLDB", "SIGMOD", "ICDE", "PODS", "WWW"}[rng.Intn(5)]))
		art.Append(title, year, venue)
		root.Append(art)
	}
	return doc
}
