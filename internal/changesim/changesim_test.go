package changesim

import (
	"math/rand"
	"strings"
	"testing"

	"xydiff/internal/delta"
	"xydiff/internal/diff"
	"xydiff/internal/dom"
)

func TestSimulatePerfectDeltaTransformsOldIntoNew(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		doc := Catalog(rng, 2, 5)
		res, err := Simulate(doc, Uniform(0.1, int64(trial)))
		if err != nil {
			t.Fatal(err)
		}
		got, err := delta.ApplyClone(doc, res.Perfect)
		if err != nil {
			t.Fatalf("trial %d: apply perfect delta: %v\n%s", trial, err, res.Perfect)
		}
		if !dom.Equal(got, res.New) {
			t.Fatalf("trial %d: perfect delta does not produce new version: %s",
				trial, dom.Diagnose(got, res.New))
		}
		// And inverse reconstructs the old version.
		inv, err := res.Perfect.Invert()
		if err != nil {
			t.Fatalf("trial %d invert: %v", trial, err)
		}
		back, err := delta.ApplyClone(res.New, inv)
		if err != nil {
			t.Fatalf("trial %d apply inverse: %v", trial, err)
		}
		if !dom.Equal(back, doc) {
			t.Fatalf("trial %d: inverse of perfect delta broken: %s", trial, dom.Diagnose(back, doc))
		}
	}
}

func TestSimulateDoesNotMutateOriginalStructure(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	doc := Catalog(rng, 1, 4)
	before := doc.String()
	if _, err := Simulate(doc, Uniform(0.3, 7)); err != nil {
		t.Fatal(err)
	}
	if doc.String() != before {
		t.Fatal("Simulate changed the original document")
	}
}

func TestSimulateZeroProbabilitiesIsIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	doc := Catalog(rng, 1, 3)
	res, err := Simulate(doc, Params{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if !dom.Equal(doc, res.New) {
		t.Fatal("zero-probability simulation changed the document")
	}
	if !res.Perfect.Empty() {
		t.Fatalf("zero-probability simulation produced ops:\n%s", res.Perfect)
	}
	if res.Stats != (Stats{}) {
		t.Fatalf("stats = %v, want zeros", res.Stats)
	}
}

func TestSimulateProducesRequestedMix(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	doc := Catalog(rng, 5, 20) // ~1000 nodes
	res, err := Simulate(doc, Uniform(0.1, 11))
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Deletes == 0 || res.Stats.Updates == 0 || res.Stats.Inserts == 0 {
		t.Fatalf("expected a mix of edits, got %v", res.Stats)
	}
	if res.Stats.Moves == 0 {
		t.Fatalf("expected some moves at MoveProb=0.1 with a large pool, got %v", res.Stats)
	}
	c := res.Perfect.Count()
	if c.Total() == 0 {
		t.Fatal("perfect delta empty despite edits")
	}
}

func TestSimulateDeterministicForSeed(t *testing.T) {
	rng1 := rand.New(rand.NewSource(6))
	rng2 := rand.New(rand.NewSource(6))
	doc1 := Catalog(rng1, 2, 6)
	doc2 := Catalog(rng2, 2, 6)
	if !dom.Equal(doc1, doc2) {
		t.Fatal("generator not deterministic")
	}
	r1, err := Simulate(doc1, Uniform(0.2, 99))
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Simulate(doc2, Uniform(0.2, 99))
	if err != nil {
		t.Fatal(err)
	}
	if !dom.Equal(r1.New, r2.New) {
		t.Fatal("simulator not deterministic for equal seeds")
	}
	if r1.New.String() != r2.New.String() {
		t.Fatal("serialization of deterministic runs differs")
	}
}

func TestSimulateNewVersionSurvivesReparse(t *testing.T) {
	// The sibling-type constraint: the new version must not contain
	// adjacent text nodes, or serialize+parse would merge them.
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 10; trial++ {
		doc := Generic(rng, 120, 6, 4)
		res, err := Simulate(doc, Uniform(0.25, int64(trial*13+1)))
		if err != nil {
			t.Fatal(err)
		}
		reparsed, err := dom.ParseString(res.New.String())
		if err != nil {
			t.Fatalf("trial %d: new version does not reparse: %v", trial, err)
		}
		if !dom.Equal(res.New, reparsed) {
			t.Fatalf("trial %d: reparse changed the tree: %s", trial, dom.Diagnose(res.New, reparsed))
		}
	}
}

func TestSimulateRejectsNonDocument(t *testing.T) {
	if _, err := Simulate(dom.NewElement("x"), Uniform(0.1, 1)); err == nil {
		t.Error("element input accepted")
	}
	if _, err := Simulate(nil, Uniform(0.1, 1)); err == nil {
		t.Error("nil input accepted")
	}
}

func TestBULDFindsSimulatedChanges(t *testing.T) {
	// End-to-end: simulator produces (old, new, perfect); BULD's delta
	// must also transform old into new.
	rng := rand.New(rand.NewSource(10))
	for trial := 0; trial < 10; trial++ {
		doc := Catalog(rng, 3, 8)
		res, err := Simulate(doc, Uniform(0.1, int64(trial+100)))
		if err != nil {
			t.Fatal(err)
		}
		old := doc.Clone()
		d, err := diff.Diff(old, res.New.Clone(), diff.Options{})
		if err != nil {
			t.Fatal(err)
		}
		got, err := delta.ApplyClone(old, d)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !dom.Equal(got, res.New) {
			t.Fatalf("trial %d: BULD delta wrong: %s", trial, dom.Diagnose(got, res.New))
		}
	}
}

func TestGenerators(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	cat := Catalog(rng, 2, 3)
	if got := len(dom.Select(cat.Root(), "Category/Product")); got != 6 {
		t.Errorf("catalog products = %d, want 6", got)
	}
	ab := AddressBook(rng, 5)
	if got := len(dom.Select(ab.Root(), "Person")); got != 5 {
		t.Errorf("addressbook people = %d, want 5", got)
	}
	site := Site(rng, 10)
	if got := len(dom.Select(site.Root(), "page")); got != 10 {
		t.Errorf("site pages = %d, want 10", got)
	}
	gen := Generic(rng, 100, 5, 3)
	if got := gen.Size(); got < 50 || got > 120 {
		t.Errorf("generic size = %d, want ~100", got)
	}
	for _, doc := range []*dom.Node{cat, ab, site, gen} {
		if _, err := dom.ParseString(doc.String()); err != nil {
			t.Errorf("generated document does not reparse: %v", err)
		}
	}
}

func TestCatalogOfSize(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for _, target := range []int{2_000, 20_000, 200_000} {
		doc := CatalogOfSize(rng, target)
		size := len(doc.String())
		if size < target/2 || size > target*3 {
			t.Errorf("CatalogOfSize(%d) = %d bytes, want within 0.5x-3x", target, size)
		}
	}
}

func TestWebCorpus(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	docs, err := WebCorpus(rng, 12)
	if err != nil {
		t.Fatal(err)
	}
	if len(docs) != 12 {
		t.Fatalf("corpus size = %d", len(docs))
	}
	kinds := map[string]int{}
	for _, d := range docs {
		kinds[d.Kind]++
		if d.Old == nil || d.New == nil {
			t.Fatal("corpus doc missing versions")
		}
		if dom.Equal(d.Old, d.New) {
			continue // a tiny doc may see no changes; fine
		}
	}
	if len(kinds) < 2 {
		t.Errorf("corpus lacks variety: %v", kinds)
	}
}

func TestSiteSnapshotPair(t *testing.T) {
	oldDoc, newDoc, err := SiteSnapshotPair(1, 200)
	if err != nil {
		t.Fatal(err)
	}
	if dom.Equal(oldDoc, newDoc) {
		t.Fatal("snapshots identical")
	}
	if !strings.Contains(oldDoc.String(), "<page") {
		t.Fatal("snapshot lacks pages")
	}
}

func TestCompensate(t *testing.T) {
	if got := compensate(0.1, 100, 50); got != 0.2 {
		t.Errorf("compensate = %f, want 0.2", got)
	}
	if got := compensate(0.9, 100, 10); got != 1 {
		t.Errorf("compensate clamp = %f, want 1", got)
	}
	if got := compensate(0.5, 100, 0); got != 0 {
		t.Errorf("compensate zero population = %f", got)
	}
}

func TestArticlesGenerator(t *testing.T) {
	rng := rand.New(rand.NewSource(30))
	doc := Articles(rng, 12)
	arts := dom.Select(doc.Root(), "article")
	if len(arts) != 12 {
		t.Fatalf("articles = %d", len(arts))
	}
	for _, a := range arts {
		if len(dom.Select(a, "author")) == 0 {
			t.Fatal("article without authors")
		}
		if _, ok := a.Attribute("key"); !ok {
			t.Fatal("article without key")
		}
	}
	if _, err := dom.ParseString(doc.String()); err != nil {
		t.Fatalf("articles doc does not reparse: %v", err)
	}
	// Simulate + diff round trip on the new shape.
	res, err := Simulate(doc, Uniform(0.15, 31))
	if err != nil {
		t.Fatal(err)
	}
	work := doc.Clone()
	d, err := diff.Diff(work, res.New.Clone(), diff.Options{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := delta.ApplyClone(work, d)
	if err != nil {
		t.Fatal(err)
	}
	if !dom.Equal(got, res.New) {
		t.Fatalf("articles diff round trip: %s", dom.Diagnose(got, res.New))
	}
}

func TestGenericTerminatesWithOneChildSlot(t *testing.T) {
	// maxChildren=1 used to hang: a text node could fill the only open
	// slot and full nodes are never retired from the open list. The
	// clamp to two slots keeps generation terminating for any input.
	for seed := int64(0); seed < 50; seed++ {
		doc := Generic(rand.New(rand.NewSource(seed)), 40, 1, 3)
		if doc.Size() < 2 {
			t.Fatalf("seed %d: degenerate document %s", seed, doc)
		}
	}
}
