package changesim

import (
	"math/rand"
	"testing"

	"xydiff/internal/delta"
	"xydiff/internal/diff"
	"xydiff/internal/dom"
)

func TestHTMLPageDeterministic(t *testing.T) {
	a := HTMLPage(rand.New(rand.NewSource(7)), 5)
	b := HTMLPage(rand.New(rand.NewSource(7)), 5)
	if a.String() != b.String() {
		t.Fatal("same seed produced different pages")
	}
	// No id attributes anywhere: the corpus must not hand matchers an
	// identity shortcut.
	dom.WalkPre(a, func(n *dom.Node) bool {
		if _, ok := n.Attribute("id"); ok {
			t.Fatalf("<%s> has an id attribute", n.Name)
		}
		return true
	})
}

func TestSimulateHTMLPerfectDeltaApplies(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		doc := HTMLPage(rand.New(rand.NewSource(seed)), 6)
		res, err := SimulateHTML(doc, UniformHTML(0.12, seed*31))
		if err != nil {
			t.Fatal(err)
		}
		got, err := delta.ApplyClone(doc, res.Perfect)
		if err != nil {
			t.Fatalf("seed %d: apply: %v", seed, err)
		}
		if !dom.Equal(got, res.New) {
			t.Fatalf("seed %d (%s): perfect delta does not reproduce the mutation: %s",
				seed, res.Stats, dom.Diagnose(got, res.New))
		}
	}
}

func TestSimulateHTMLGroundTruth(t *testing.T) {
	doc := HTMLPage(rand.New(rand.NewSource(3)), 6)
	res, err := SimulateHTML(doc, UniformHTML(0.15, 99))
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Wraps == 0 || res.Stats.AttrChurns == 0 || res.Stats.Reorders == 0 {
		t.Fatalf("mutation mix too thin for a corpus: %s", res.Stats)
	}
	alive := make(map[*dom.Node]bool)
	dom.WalkPre(res.New, func(n *dom.Node) bool { alive[n] = true; return true })
	orig := make(map[*dom.Node]bool)
	dom.WalkPre(doc, func(n *dom.Node) bool { orig[n] = true; return true })
	for o, n := range res.Pairs {
		if !orig[o] {
			t.Fatal("ground-truth key not in the old document")
		}
		if !alive[n] {
			t.Fatal("ground-truth value not in the new document")
		}
		if o.Type != n.Type {
			t.Fatalf("pair changes node type: %v -> %v", o.Type, n.Type)
		}
	}
}

// matchQuality scores a computed matching against the ground truth.
func matchQuality(truth, got map[*dom.Node]*dom.Node) (precision, recall float64) {
	if len(got) == 0 {
		return 0, 0
	}
	correct := 0
	for o, n := range got {
		if truth[o] == n {
			correct++
		}
	}
	return float64(correct) / float64(len(got)), float64(correct) / float64(len(truth))
}

// TestSFTMQualityOnHTMLCorpus is the match-quality smoke in tier-1: on
// the id-less HTML corpus SFTM must stay above an absolute precision
// and recall floor, and must beat BULD-without-IDs on both — the
// regime this PR exists for. The full sweep with delta sizes and
// timings is the bench7 experiment.
func TestSFTMQualityOnHTMLCorpus(t *testing.T) {
	var sftmP, sftmR, buldP, buldR float64
	const runs = 5
	for seed := int64(1); seed <= runs; seed++ {
		doc := HTMLPage(rand.New(rand.NewSource(seed)), 6)
		res, err := SimulateHTML(doc, UniformHTML(0.12, seed*17))
		if err != nil {
			t.Fatal(err)
		}
		sftm, err := diff.Matching(doc, res.New, diff.Options{Matcher: diff.MatcherSFTM})
		if err != nil {
			t.Fatal(err)
		}
		buld, err := diff.Matching(doc, res.New, diff.Options{DisableIDAttributes: true})
		if err != nil {
			t.Fatal(err)
		}
		p, r := matchQuality(res.Pairs, sftm)
		sftmP += p / runs
		sftmR += r / runs
		p, r = matchQuality(res.Pairs, buld)
		buldP += p / runs
		buldR += r / runs
	}
	t.Logf("sftm precision=%.3f recall=%.3f | buld precision=%.3f recall=%.3f",
		sftmP, sftmR, buldP, buldR)
	if sftmP < 0.95 {
		t.Errorf("sftm precision %.3f below the 0.95 floor", sftmP)
	}
	if sftmR < 0.9 {
		t.Errorf("sftm recall %.3f below the 0.9 floor", sftmR)
	}
	if sftmP <= buldP {
		t.Errorf("sftm precision %.3f does not beat buld-without-ids %.3f", sftmP, buldP)
	}
	if sftmR <= buldR {
		t.Errorf("sftm recall %.3f does not beat buld-without-ids %.3f", sftmR, buldR)
	}
}
