package optdelta

import (
	"errors"
	"math/rand"
	"testing"

	"xydiff/internal/changesim"
	"xydiff/internal/diff"
	"xydiff/internal/dom"
)

func mustParse(t *testing.T, s string) *dom.Node {
	t.Helper()
	doc, err := dom.ParseString(s)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return doc
}

func optimal(t *testing.T, oldXML, newXML string) Result {
	t.Helper()
	res, err := Optimal(mustParse(t, oldXML), mustParse(t, newXML), Options{})
	if err != nil {
		t.Fatalf("Optimal(%q, %q): %v", oldXML, newXML, err)
	}
	if !res.Exact {
		t.Fatalf("Optimal(%q, %q): inexact within default budget", oldXML, newXML)
	}
	return res
}

// TestKnownOptima pins the oracle on pairs whose minimum cost is
// derivable by hand under the documented cost model.
func TestKnownOptima(t *testing.T) {
	cases := []struct {
		name     string
		old, new string
		want     int
	}{
		{"identical", `<a><b>x</b><c/></a>`, `<a><b>x</b><c/></a>`, 0},
		{"one text update", `<a><b>x</b></a>`, `<a><b>y</b></a>`, 1},
		{"delete two-node subtree", `<a><b><c/></b><d/></a>`, `<a><d/></a>`, 2},
		{"insert two-node subtree", `<a><d/></a>`, `<a><b><c/></b><d/></a>`, 2},
		{"sibling swap is one move", `<a><b/><c/></a>`, `<a><c/><b/></a>`, 1},
		{"reparent is one move", `<a><b><x/></b><c/></a>`, `<a><b/><c><x/></c></a>`, 1},
		{"subtree move is one move", `<a><b><x y="1"><z/></x></b><c/></a>`, `<a><b/><c><x y="1"><z/></x></c></a>`, 1},
		{"attr update", `<a><b k="1"/></a>`, `<a><b k="2"/></a>`, 1},
		{"attr insert plus delete", `<a k="1"><b/></a>`, `<a j="2"><b/></a>`, 2},
		{"rename forces delete+insert", `<a><b/></a>`, `<a><c/></a>`, 2},
		{"update beats delete+insert", `<a>old text</a>`, `<a>new text</a>`, 1},
		{"empty to empty", `<a/>`, `<a/>`, 0},
		{"three rotated children", `<a><b/><c/><d/></a>`, `<a><d/><b/><c/></a>`, 1},
	}
	for _, tc := range cases {
		if got := optimal(t, tc.old, tc.new).Cost; got != tc.want {
			t.Errorf("%s: cost = %d, want %d", tc.name, got, tc.want)
		}
	}
}

func TestZeroCostMeansEqual(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 30; trial++ {
		oldDoc := changesim.Generic(rng, 6+rng.Intn(12), 3, 4)
		sim, err := changesim.Simulate(oldDoc, changesim.Uniform(0.2, int64(trial)))
		if err != nil {
			t.Fatal(err)
		}
		res, err := Optimal(oldDoc, sim.New, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Exact {
			continue
		}
		if (res.Cost == 0) != dom.Equal(oldDoc, sim.New) {
			t.Fatalf("trial %d: cost %d but Equal=%v\nold: %s\nnew: %s",
				trial, res.Cost, dom.Equal(oldDoc, sim.New), oldDoc, sim.New)
		}
	}
}

// TestSoundAgainstComputedDeltas is the oracle's core contract: on
// random small pairs, the proven optimum never exceeds the cost of any
// delta an actual matcher produces — BULD, SFTM, or changesim's
// scripted perfect delta.
func TestSoundAgainstComputedDeltas(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 60; trial++ {
		oldDoc := changesim.Generic(rng, 8+rng.Intn(14), 3, 5)
		sim, err := changesim.Simulate(oldDoc, changesim.Uniform(0.15, int64(trial*31+7)))
		if err != nil {
			t.Fatal(err)
		}
		if sim.New.Size()-1 > DefaultMaxNodes {
			continue
		}
		costs := map[string]int{"perfect": ScriptCost(sim.Perfect)}
		db, err := diff.Diff(oldDoc.Clone(), sim.New.Clone(), diff.Options{})
		if err != nil {
			t.Fatal(err)
		}
		costs["buld"] = ScriptCost(db)
		ds, err := diff.Diff(oldDoc.Clone(), sim.New.Clone(), diff.Options{Matcher: diff.MatcherSFTM})
		if err != nil {
			t.Fatal(err)
		}
		costs["sftm"] = ScriptCost(ds)
		res, err := Optimal(oldDoc, sim.New, Options{UpperBound: costs["buld"]})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Exact {
			continue
		}
		for name, c := range costs {
			if res.Cost > c {
				t.Errorf("trial %d: optimum %d exceeds %s cost %d\nold: %s\nnew: %s",
					trial, res.Cost, name, c, oldDoc, sim.New)
			}
		}
	}
}

func TestTooLarge(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	big := changesim.Generic(rng, 60, 4, 4)
	small := mustParse(t, `<a/>`)
	if _, err := Optimal(big, small, Options{}); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("old over cap: err = %v, want ErrTooLarge", err)
	}
	if _, err := Optimal(small, big, Options{}); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("new over cap: err = %v, want ErrTooLarge", err)
	}
	if _, err := Optimal(small.Children[0], small, Options{}); err == nil {
		t.Fatal("non-document input accepted")
	}
}

func TestBudgetExhaustionIsHonest(t *testing.T) {
	// Many identically-labeled leaves defeat pruning; a tiny budget
	// must yield Exact=false with a still-achievable cost.
	oldDoc := mustParse(t, `<a><x/><x/><x/><x/><x/><x/><x/><x/></a>`)
	newDoc := mustParse(t, `<a><x/><x/><x/><x/><x/><x/><x/><y/></a>`)
	res, err := Optimal(oldDoc, newDoc, Options{MaxStates: 10})
	if err != nil {
		t.Fatal(err)
	}
	if res.Exact {
		t.Fatalf("Exact=true with a 10-state budget (states=%d)", res.States)
	}
	if res.Cost < 2 || res.Cost > oldDoc.Size()+newDoc.Size() {
		t.Fatalf("budget-limited cost %d outside achievable range", res.Cost)
	}
	full, err := Optimal(oldDoc, newDoc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !full.Exact || full.Cost != 2 {
		t.Fatalf("full search: cost=%d exact=%v, want 2/true (delete x, insert y)", full.Cost, full.Exact)
	}
}

func TestScriptCostCountsSubtreeNodes(t *testing.T) {
	oldDoc := mustParse(t, `<a><b><c>t</c></b></a>`)
	newDoc := mustParse(t, `<a/>`)
	d, err := diff.Diff(oldDoc.Clone(), newDoc.Clone(), diff.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// The b subtree has three nodes (b, c, text); deleting it must
	// cost three no matter how the differ groups the deletes.
	if got := ScriptCost(d); got != 3 {
		t.Fatalf("ScriptCost = %d, want 3 (delta: %s)", got, d)
	}
	if ScriptCost(nil) != 0 {
		t.Fatal("ScriptCost(nil) != 0")
	}
}
