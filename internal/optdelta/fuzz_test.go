package optdelta

import (
	"math/rand"
	"testing"

	"xydiff/internal/changesim"
	"xydiff/internal/diff"
	"xydiff/internal/dom"
)

// FuzzOptDeltaSound turns fuzzer bytes into a (document, churn)
// recipe, diffs the resulting pair with both matchers, and checks the
// oracle's two invariants: the proven optimum never exceeds any
// computed script's cost, and cost zero coincides with tree equality.
func FuzzOptDeltaSound(f *testing.F) {
	f.Add(int64(1), uint8(10), uint8(2))
	f.Add(int64(42), uint8(18), uint8(5))
	f.Add(int64(-77), uint8(24), uint8(9))
	f.Fuzz(func(t *testing.T, seed int64, size, churn uint8) {
		nodes := 4 + int(size)%20
		rng := rand.New(rand.NewSource(seed))
		oldDoc := changesim.Generic(rng, nodes, 3, 4)
		sim, err := changesim.Simulate(oldDoc, changesim.Uniform(float64(churn%10)/20, seed))
		if err != nil {
			t.Fatalf("simulate: %v", err)
		}
		if oldDoc.Size()-1 > DefaultMaxNodes || sim.New.Size()-1 > DefaultMaxNodes {
			return
		}
		db, err := diff.Diff(oldDoc.Clone(), sim.New.Clone(), diff.Options{})
		if err != nil {
			t.Fatalf("buld diff: %v", err)
		}
		ds, err := diff.Diff(oldDoc.Clone(), sim.New.Clone(), diff.Options{Matcher: diff.MatcherSFTM})
		if err != nil {
			t.Fatalf("sftm diff: %v", err)
		}
		res, err := Optimal(oldDoc, sim.New, Options{UpperBound: ScriptCost(db)})
		if err != nil {
			t.Fatalf("optimal: %v", err)
		}
		if !res.Exact {
			return
		}
		for name, c := range map[string]int{
			"buld":    ScriptCost(db),
			"sftm":    ScriptCost(ds),
			"perfect": ScriptCost(sim.Perfect),
		} {
			if res.Cost > c {
				t.Fatalf("optimum %d exceeds %s script cost %d\nold: %s\nnew: %s",
					res.Cost, name, c, oldDoc, sim.New)
			}
		}
		if (res.Cost == 0) != dom.Equal(oldDoc, sim.New) {
			t.Fatalf("cost %d but Equal=%v\nold: %s\nnew: %s",
				res.Cost, dom.Equal(oldDoc, sim.New), oldDoc, sim.New)
		}
	})
}
