// Package optdelta computes the exact minimum cost of an edit script
// between two small XML trees, in the SAT-DIFF spirit of holding a
// heuristic differ against a provably optimal answer. Where the bench
// harness previously compared BULD and SFTM deltas only to changesim's
// scripted "perfect" delta, this oracle gives the true optimum — so
// optimality can be reported as a ratio rather than an article of
// faith.
//
// The search runs over injective matchings between the two node sets
// rather than over scripts: every edit script induces a matching (the
// nodes whose identity survives), and the cost formula below charges
// each induced matching no more than the script pays. Minimizing over
// all matchings therefore lower-bounds every script, and the minimum
// is itself achievable by a script, so it is exact.
//
// Cost model (mirroring ScriptCost, which charges delta operations the
// way package delta serializes them):
//
//   - unmatched old node: 1 (deleted content is carried per node)
//   - unmatched new node: 1 (inserted content is carried per node)
//   - matched text/comment/PI with different value: 1 update
//   - matched elements: 1 per attribute inserted, deleted or updated
//   - matched node whose parents' matches disagree: 1 move (reparent)
//   - per matched parent pair: k − LIS(k) moves to reorder the k
//     children that stay under it (minimum number of single-subtree
//     moves that sorts them)
//
// Elements only match elements with the same tag — no delta operation
// renames a node — and a whole moved subtree costs one move because
// its interior pairs keep consistent parents.
//
// The search is a branch-and-bound over old nodes in BFS order, so
// each node's parent is decided before it (reparent moves price at
// assignment time) and each parent's children occupy a contiguous
// index block (reorder moves price when the block completes).
// Deliberately NOT memoized on (index, used-set) state: move costs
// depend on which old node holds which new node, not just on which new
// nodes are taken, so two search states with equal (index, used-set)
// can have different completion costs and a dominance cache would be
// unsound. Pair costs and candidate lists are precomputed instead, and
// a state budget keeps worst cases bounded at the price of an honest
// Exact=false.
package optdelta

import (
	"errors"
	"fmt"
	"math/bits"
	"sort"

	"xydiff/internal/dom"
)

// ErrTooLarge reports a tree over the node cap. Exact optimal diffing
// is exponential in the worst case; the oracle stays honest by
// refusing rather than silently approximating.
var ErrTooLarge = errors.New("optdelta: tree exceeds MaxNodes")

// DefaultMaxNodes is the per-tree node cap (document root excluded).
const DefaultMaxNodes = 25

// DefaultMaxStates bounds the branch-and-bound search.
const DefaultMaxStates = 2_000_000

// Options tunes the oracle.
type Options struct {
	// MaxNodes caps each tree's node count, document root excluded.
	// Zero means DefaultMaxNodes; values above 63 are clamped (the
	// search keeps the matched set in one machine word).
	MaxNodes int
	// MaxStates caps visited search states; zero means
	// DefaultMaxStates. When exceeded, Result.Exact is false and
	// Result.Cost is the best achievable cost found so far.
	MaxStates int64
	// UpperBound, when positive, is a known achievable script cost
	// (e.g. ScriptCost of a computed delta) used to seed pruning. It
	// must come from a real script or the result may overstate.
	UpperBound int
}

// Result is the oracle's answer.
type Result struct {
	// Cost of the cheapest edit script found; the true optimum when
	// Exact.
	Cost int
	// Exact reports that the search proved minimality within the
	// state budget.
	Exact bool
	// States visited by the branch-and-bound.
	States int64
}

// Optimal returns the minimum edit-script cost transforming oldDoc
// into newDoc. Both must be Document nodes within Options.MaxNodes.
func Optimal(oldDoc, newDoc *dom.Node, opts Options) (Result, error) {
	if oldDoc == nil || newDoc == nil ||
		oldDoc.Type != dom.Document || newDoc.Type != dom.Document {
		return Result{}, errors.New("optdelta: need two Document nodes")
	}
	maxNodes := opts.MaxNodes
	if maxNodes == 0 {
		maxNodes = DefaultMaxNodes
	}
	if maxNodes > 63 {
		maxNodes = 63
	}
	if n := oldDoc.Size() - 1; n > maxNodes {
		return Result{}, fmt.Errorf("%w: old tree has %d nodes, cap %d", ErrTooLarge, n, maxNodes)
	}
	if n := newDoc.Size() - 1; n > maxNodes {
		return Result{}, fmt.Errorf("%w: new tree has %d nodes, cap %d", ErrTooLarge, n, maxNodes)
	}
	s := newSearcher(oldDoc, newDoc, opts)
	s.dfs(0, 0)
	return Result{Cost: s.best, Exact: !s.stopped, States: s.states}, nil
}

type searcher struct {
	oldN, newN  []*dom.Node
	oldParent   []int // index into oldN; -1 = document
	newParent   []int // index into newN; -1 = document
	newChildPos []int // position among the new parent's children
	blockStart  []int // first old index sharing oldParent[i]
	blockLast   []bool
	pairCost    [][]int // -1 = incompatible
	compat      [][]int // candidate js per old node, cheapest first
	suffixMin   []int   // admissible per-old-node cost floor, summed
	assigned    []int
	used        uint64
	best        int
	states      int64
	maxStates   int64
	stopped     bool
}

// bfs lists a document's descendants level by level, so parents
// precede children and each parent's children are contiguous.
func bfs(doc *dom.Node) (nodes []*dom.Node, parent []int) {
	idx := make(map[*dom.Node]int)
	queue := append([]*dom.Node{}, doc.Children...)
	for qi := 0; qi < len(queue); qi++ {
		n := queue[qi]
		idx[n] = len(nodes)
		nodes = append(nodes, n)
		p := -1
		if n.Parent != doc {
			p = idx[n.Parent]
		}
		parent = append(parent, p)
		queue = append(queue, n.Children...)
	}
	return nodes, parent
}

func newSearcher(oldDoc, newDoc *dom.Node, opts Options) *searcher {
	s := &searcher{maxStates: opts.MaxStates}
	if s.maxStates <= 0 {
		s.maxStates = DefaultMaxStates
	}
	s.oldN, s.oldParent = bfs(oldDoc)
	s.newN, s.newParent = bfs(newDoc)
	s.newChildPos = make([]int, len(s.newN))
	for j, n := range s.newN {
		s.newChildPos[j] = n.Index()
	}
	s.blockStart = make([]int, len(s.oldN))
	s.blockLast = make([]bool, len(s.oldN))
	for i := range s.oldN {
		if i > 0 && s.oldParent[i] == s.oldParent[i-1] {
			s.blockStart[i] = s.blockStart[i-1]
		} else {
			s.blockStart[i] = i
		}
		s.blockLast[i] = i == len(s.oldN)-1 || s.oldParent[i+1] != s.oldParent[i]
	}
	s.pairCost = make([][]int, len(s.oldN))
	s.compat = make([][]int, len(s.oldN))
	s.suffixMin = make([]int, len(s.oldN)+1)
	for i := len(s.oldN) - 1; i >= 0; i-- {
		s.pairCost[i] = make([]int, len(s.newN))
		minCost := 1 // deleting is always possible
		for j := range s.newN {
			c := pairCost(s.oldN[i], s.newN[j])
			s.pairCost[i][j] = c
			if c >= 0 {
				s.compat[i] = append(s.compat[i], j)
				if c < minCost {
					minCost = c
				}
			}
		}
		// Candidates cheapest-first so the first complete assignment
		// is already good and prunes aggressively.
		row := s.pairCost[i]
		sort.SliceStable(s.compat[i], func(a, b int) bool {
			return row[s.compat[i][a]] < row[s.compat[i][b]]
		})
		s.suffixMin[i] = s.suffixMin[i+1] + minCost
	}
	s.assigned = make([]int, len(s.oldN))
	// Delete-everything, insert-everything is always achievable.
	s.best = len(s.oldN) + len(s.newN)
	if opts.UpperBound > 0 && opts.UpperBound < s.best {
		s.best = opts.UpperBound
	}
	return s
}

// pairCost is the cost of matching old node a to new node b, or -1
// when no edit script can keep a's identity while producing b.
func pairCost(a, b *dom.Node) int {
	if a.Type != b.Type {
		return -1
	}
	switch a.Type {
	case dom.Element:
		if a.Name != b.Name {
			return -1
		}
		return attrDiff(a, b)
	case dom.Text, dom.Comment:
		if a.Value == b.Value {
			return 0
		}
		return 1
	case dom.ProcInst:
		if a.Name != b.Name {
			return -1
		}
		if a.Value == b.Value {
			return 0
		}
		return 1
	}
	return -1
}

// attrDiff counts the attribute operations turning a's attributes
// into b's: one per inserted, deleted or value-changed attribute.
func attrDiff(a, b *dom.Node) int {
	cost := 0
	for _, attr := range a.Attrs {
		if v, ok := b.Attribute(attr.Name); !ok || v != attr.Value {
			cost++
		}
	}
	for _, attr := range b.Attrs {
		if _, ok := a.Attribute(attr.Name); !ok {
			cost++
		}
	}
	return cost
}

func (s *searcher) dfs(i, cost int) {
	if s.stopped {
		return
	}
	s.states++
	if s.states > s.maxStates {
		s.stopped = true
		return
	}
	matched := bits.OnesCount64(s.used)
	if i == len(s.oldN) {
		if total := cost + len(s.newN) - matched; total < s.best {
			s.best = total
		}
		return
	}
	lb := cost + s.suffixMin[i]
	if extra := (len(s.newN) - matched) - (len(s.oldN) - i); extra > 0 {
		lb += extra
	}
	if lb >= s.best {
		return
	}
	for _, j := range s.compat[i] {
		bit := uint64(1) << uint(j)
		if s.used&bit != 0 {
			continue
		}
		s.assigned[i] = j
		s.used |= bit
		step := s.pairCost[i][j] + s.moveCost(i, j)
		if s.blockLast[i] {
			step += s.orderCost(i)
		}
		s.dfs(i+1, cost+step)
		s.used &^= bit
	}
	s.assigned[i] = -1
	step := 1
	if s.blockLast[i] {
		step += s.orderCost(i)
	}
	s.dfs(i+1, cost+step)
}

// moveCost prices the reparent move for matching old i to new j: one
// move when i's parent's match is not j's parent (including a deleted
// parent). BFS order guarantees the parent was decided first.
func (s *searcher) moveCost(i, j int) int {
	pi := s.oldParent[i]
	pj := s.newParent[j]
	if pi == -1 {
		if pj == -1 {
			return 0
		}
		return 1
	}
	if pm := s.assigned[pi]; pm != -1 && pm == pj {
		return 0
	}
	return 1
}

// orderCost prices sibling reordering once a parent's whole child
// block is decided: among the children that stay under the matched
// parent, every one outside a longest increasing subsequence of new
// positions needs its own move.
func (s *searcher) orderCost(i int) int {
	p := s.oldParent[i]
	pj := -1
	if p != -1 {
		pj = s.assigned[p]
		if pj == -1 {
			return 0 // parent deleted: matched children already paid moves
		}
	}
	var seq []int
	for k := s.blockStart[i]; k <= i; k++ {
		j := s.assigned[k]
		if j >= 0 && s.newParent[j] == pj {
			seq = append(seq, s.newChildPos[j])
		}
	}
	return len(seq) - lisLen(seq)
}

// lisLen is the length of the longest strictly increasing subsequence
// (O(n²), n ≤ 63 here).
func lisLen(seq []int) int {
	if len(seq) == 0 {
		return 0
	}
	best := make([]int, len(seq))
	out := 0
	for i := range seq {
		best[i] = 1
		for k := 0; k < i; k++ {
			if seq[k] < seq[i] && best[k]+1 > best[i] {
				best[i] = best[k] + 1
			}
		}
		if best[i] > out {
			out = best[i]
		}
	}
	return out
}
