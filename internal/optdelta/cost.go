package optdelta

import "xydiff/internal/delta"

// ScriptCost charges a computed delta the way the oracle's cost model
// does: structural inserts and deletes pay per node of the carried
// subtree (that is what the delta serializes), while updates, moves
// and attribute operations pay one each (a move never carries its
// subtree). With this alignment, Optimal(...).Cost ≤ ScriptCost(d)
// holds for every correct delta d over the same pair of documents —
// the soundness invariant bench8 and FuzzOptDeltaSound enforce.
func ScriptCost(d *delta.Delta) int {
	if d == nil {
		return 0
	}
	cost := 0
	for _, op := range d.Ops {
		switch o := op.(type) {
		case delta.Insert:
			cost += o.Subtree.Size()
		case delta.Delete:
			cost += o.Subtree.Size()
		default:
			cost++
		}
	}
	return cost
}
