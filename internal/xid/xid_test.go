package xid

import (
	"testing"
	"testing/quick"

	"xydiff/internal/dom"
)

func doc(t *testing.T, s string) *dom.Node {
	t.Helper()
	d, err := dom.ParseString(s)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestAssignPostorder(t *testing.T) {
	d := doc(t, `<a><b><c/></b><d/></a>`)
	alloc := Assign(d)
	// Post-order: c=1 b=2 d=3 a=4 document=5.
	want := map[string]int64{"c": 1, "b": 2, "d": 3, "a": 4}
	dom.WalkPre(d, func(n *dom.Node) bool {
		if n.Type == dom.Element {
			if n.XID != want[n.Name] {
				t.Errorf("%s XID = %d, want %d", n.Name, n.XID, want[n.Name])
			}
		}
		return true
	})
	if d.XID != 5 {
		t.Errorf("document XID = %d, want 5", d.XID)
	}
	if alloc.Peek() != 6 {
		t.Errorf("allocator next = %d, want 6", alloc.Peek())
	}
}

func TestAllocator(t *testing.T) {
	a := NewAllocator(10)
	if a.Next() != 10 || a.Next() != 11 {
		t.Error("allocator not monotone from start")
	}
	if NewAllocator(-3).Next() != 1 {
		t.Error("allocator should clamp to 1")
	}
	d := doc(t, `<a><b/></a>`)
	Assign(d)
	if got := AllocatorFor(d).Next(); got != 4 {
		t.Errorf("AllocatorFor next = %d, want 4", got)
	}
}

func TestOfContiguous(t *testing.T) {
	d := doc(t, `<a><b><c/></b><d/></a>`)
	Assign(d)
	m := Of(d.Root())
	if got := m.String(); got != "(1-4)" {
		t.Errorf("map = %s, want (1-4)", got)
	}
	if m.Root() != 4 {
		t.Errorf("Root = %d, want 4", m.Root())
	}
	if m.Len() != 4 {
		t.Errorf("Len = %d, want 4", m.Len())
	}
}

func TestMapFragmented(t *testing.T) {
	var m Map
	for _, x := range []int64{3, 4, 5, 9, 12, 13} {
		m.Append(x)
	}
	if got := m.String(); got != "(3-5;9;12-13)" {
		t.Errorf("map = %s", got)
	}
	if m.Root() != 13 {
		t.Errorf("Root = %d", m.Root())
	}
	for _, x := range []int64{3, 5, 9, 13} {
		if !m.Contains(x) {
			t.Errorf("Contains(%d) = false", x)
		}
	}
	for _, x := range []int64{2, 6, 11, 14} {
		if m.Contains(x) {
			t.Errorf("Contains(%d) = true", x)
		}
	}
}

func TestParseMapRoundTrip(t *testing.T) {
	for _, s := range []string{"()", "(1)", "(1-4)", "(3-5;9;12-13)", "(7;9)"} {
		m, err := ParseMap(s)
		if err != nil {
			t.Fatalf("ParseMap(%q): %v", s, err)
		}
		if got := m.String(); got != s {
			t.Errorf("round trip %q -> %q", s, got)
		}
	}
}

func TestParseMapNormalizesAdjacent(t *testing.T) {
	m, err := ParseMap("(1-2;3;4-6)")
	if err != nil {
		t.Fatal(err)
	}
	if got := m.String(); got != "(1-6)" {
		t.Errorf("normalized = %s, want (1-6)", got)
	}
}

func TestParseMapErrors(t *testing.T) {
	for _, bad := range []string{"", "1-4", "(1-", "(x)", "(4-1)", "(1;;2)"} {
		if _, err := ParseMap(bad); err == nil {
			t.Errorf("ParseMap(%q) succeeded", bad)
		}
	}
}

func TestApplyTo(t *testing.T) {
	d := doc(t, `<a><b><c/></b><d/></a>`)
	m, _ := ParseMap("(10;20;30;40)")
	if err := m.ApplyTo(d.Root()); err != nil {
		t.Fatal(err)
	}
	got := map[string]int64{}
	dom.WalkPre(d.Root(), func(n *dom.Node) bool {
		got[n.Name] = n.XID
		return true
	})
	// Post-order c,b,d,a -> 10,20,30,40.
	if got["c"] != 10 || got["b"] != 20 || got["d"] != 30 || got["a"] != 40 {
		t.Errorf("ApplyTo distribution wrong: %v", got)
	}
	short, _ := ParseMap("(1-2)")
	if err := short.ApplyTo(d.Root()); err == nil {
		t.Error("ApplyTo with short map should error")
	}
	long, _ := ParseMap("(1-9)")
	if err := long.ApplyTo(d.Root()); err == nil {
		t.Error("ApplyTo with long map should error")
	}
}

func TestMapAppendPropertyQuick(t *testing.T) {
	// Appending any ascending sequence must round-trip through the
	// string form and preserve membership exactly.
	f := func(deltas []uint8) bool {
		var m Map
		var xs []int64
		cur := int64(0)
		for _, d := range deltas {
			cur += int64(d%7) + 1
			xs = append(xs, cur)
			m.Append(cur)
		}
		parsed, err := ParseMap(m.String())
		if err != nil {
			return false
		}
		got := parsed.XIDs()
		if len(got) != len(xs) {
			return false
		}
		for i := range xs {
			if got[i] != xs[i] {
				return false
			}
		}
		return parsed.Len() == len(xs)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
