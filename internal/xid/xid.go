// Package xid implements persistent node identification for XML
// versioning, following the change model of Marian et al. (VLDB 2001)
// that the paper builds on (its Section 4).
//
// Every node of the first version of a document is given a unique
// identifier, its XID, assigned in postfix (post-order) position. When
// a new version arrives, the diff's matching transfers XIDs from old
// nodes to their matches; unmatched (inserted) nodes draw fresh XIDs
// from a monotone allocator. An XID-map is the compact string attached
// to a subtree that lists the XIDs of its nodes in post-order, e.g.
// "(3-7)" or "(1-2;5;9-10)".
package xid

import (
	"fmt"
	"strconv"
	"strings"

	"xydiff/internal/dom"
)

// Assign gives every node of the document fresh XIDs in post-order,
// starting at 1, and returns the allocator positioned after the last
// assigned identifier. It is the initialization step for version 1 of
// a document.
func Assign(doc *dom.Node) *Allocator {
	next := int64(1)
	dom.WalkPost(doc, func(n *dom.Node) bool {
		n.XID = next
		next++
		return true
	})
	return &Allocator{next: next}
}

// Allocator hands out fresh, never-reused XIDs for inserted nodes.
type Allocator struct {
	next int64
}

// NewAllocator returns an allocator whose first XID is next.
func NewAllocator(next int64) *Allocator {
	if next < 1 {
		next = 1
	}
	return &Allocator{next: next}
}

// AllocatorFor returns an allocator positioned after the largest XID
// present in the document.
func AllocatorFor(doc *dom.Node) *Allocator {
	var max int64
	dom.WalkPre(doc, func(n *dom.Node) bool {
		if n.XID > max {
			max = n.XID
		}
		return true
	})
	return &Allocator{next: max + 1}
}

// Next returns a fresh XID.
func (a *Allocator) Next() int64 {
	x := a.next
	a.next++
	return x
}

// Peek returns the next XID without consuming it.
func (a *Allocator) Peek() int64 { return a.next }

// Map is the post-order list of XIDs of a subtree, stored as sorted,
// non-overlapping ranges in subtree post-order. Because initial
// assignment is post-order, a never-changed subtree compresses to a
// single range such as "(3-7)"; after edits the list may fragment,
// e.g. "(3-5;9;12-14)".
type Map struct {
	ranges []span
}

type span struct{ lo, hi int64 }

// Of collects the XIDs of the subtree rooted at n in post-order.
func Of(n *dom.Node) Map {
	var m Map
	dom.WalkPost(n, func(x *dom.Node) bool {
		m.Append(x.XID)
		return true
	})
	return m
}

// Append adds one XID at the end of the map, merging it into the last
// range when contiguous.
func (m *Map) Append(x int64) {
	if k := len(m.ranges); k > 0 && m.ranges[k-1].hi+1 == x {
		m.ranges[k-1].hi = x
		return
	}
	m.ranges = append(m.ranges, span{x, x})
}

// Len returns the number of XIDs in the map.
func (m Map) Len() int {
	n := 0
	for _, r := range m.ranges {
		n += int(r.hi - r.lo + 1)
	}
	return n
}

// Root returns the XID of the subtree root: the last XID in post-order.
// It returns 0 for an empty map.
func (m Map) Root() int64 {
	if len(m.ranges) == 0 {
		return 0
	}
	return m.ranges[len(m.ranges)-1].hi
}

// XIDs expands the map to the full post-order identifier list.
func (m Map) XIDs() []int64 {
	out := make([]int64, 0, m.Len())
	for _, r := range m.ranges {
		for x := r.lo; x <= r.hi; x++ {
			out = append(out, x)
		}
	}
	return out
}

// Contains reports whether x appears in the map.
func (m Map) Contains(x int64) bool {
	for _, r := range m.ranges {
		if x >= r.lo && x <= r.hi {
			return true
		}
	}
	return false
}

// String renders the map in the paper's syntax: "(3-7)", "(3-5;9)".
// An empty map renders as "()".
func (m Map) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, r := range m.ranges {
		if i > 0 {
			b.WriteByte(';')
		}
		if r.lo == r.hi {
			b.WriteString(strconv.FormatInt(r.lo, 10))
		} else {
			b.WriteString(strconv.FormatInt(r.lo, 10))
			b.WriteByte('-')
			b.WriteString(strconv.FormatInt(r.hi, 10))
		}
	}
	b.WriteByte(')')
	return b.String()
}

// ParseMap parses the "(3-5;9;12-14)" syntax produced by String.
func ParseMap(s string) (Map, error) {
	var m Map
	s = strings.TrimSpace(s)
	if len(s) < 2 || s[0] != '(' || s[len(s)-1] != ')' {
		return m, fmt.Errorf("xid: map %q must be parenthesized", s)
	}
	body := s[1 : len(s)-1]
	if body == "" {
		return m, nil
	}
	for _, part := range strings.Split(body, ";") {
		lo, hi, err := parseSpan(part)
		if err != nil {
			return Map{}, err
		}
		if k := len(m.ranges); k > 0 && m.ranges[k-1].hi+1 == lo {
			// Normalize: merge ranges a caller wrote as "(1-2;3)".
			m.ranges[k-1].hi = hi
			continue
		}
		m.ranges = append(m.ranges, span{lo, hi})
	}
	return m, nil
}

func parseSpan(s string) (lo, hi int64, err error) {
	if dash := strings.IndexByte(s, '-'); dash >= 0 {
		lo, err = strconv.ParseInt(s[:dash], 10, 64)
		if err != nil {
			return 0, 0, fmt.Errorf("xid: bad range %q: %w", s, err)
		}
		hi, err = strconv.ParseInt(s[dash+1:], 10, 64)
		if err != nil {
			return 0, 0, fmt.Errorf("xid: bad range %q: %w", s, err)
		}
		if hi < lo {
			return 0, 0, fmt.Errorf("xid: inverted range %q", s)
		}
		return lo, hi, nil
	}
	lo, err = strconv.ParseInt(s, 10, 64)
	if err != nil {
		return 0, 0, fmt.Errorf("xid: bad id %q: %w", s, err)
	}
	return lo, lo, nil
}

// ApplyTo writes the map's XIDs onto the subtree rooted at n in
// post-order. It returns an error when the node count differs from the
// map length.
func (m Map) ApplyTo(n *dom.Node) error {
	xids := m.XIDs()
	i := 0
	var overflow bool
	dom.WalkPost(n, func(x *dom.Node) bool {
		if i >= len(xids) {
			overflow = true
			return true
		}
		x.XID = xids[i]
		i++
		return true
	})
	if overflow || i != len(xids) {
		return fmt.Errorf("xid: map has %d ids but subtree has %d nodes", len(xids), n.Size())
	}
	return nil
}
