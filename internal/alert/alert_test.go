package alert

import (
	"strings"
	"testing"

	"xydiff/internal/delta"
	"xydiff/internal/diff"
	"xydiff/internal/dom"
	"xydiff/internal/xpathlite"
)

// diffPair runs the real diff so deltas and XIDs are consistent.
func diffPair(t *testing.T, oldXML, newXML string) (*dom.Node, *dom.Node, *delta.Delta) {
	t.Helper()
	oldDoc, err := dom.ParseString(oldXML)
	if err != nil {
		t.Fatal(err)
	}
	newDoc, err := dom.ParseString(newXML)
	if err != nil {
		t.Fatal(err)
	}
	d, err := diff.Diff(oldDoc, newDoc, diff.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return oldDoc, newDoc, d
}

func TestNotifyNewProductSubscription(t *testing.T) {
	// The paper's example: "a new product has been added to a catalog".
	oldDoc, newDoc, d := diffPair(t,
		`<Catalog><Category><Product><Name>a</Name></Product></Category></Catalog>`,
		`<Catalog><Category><Product><Name>a</Name></Product><Product><Name>b9000</Name></Product></Category></Catalog>`)
	a := New(Subscription{
		ID:    "new-products",
		Path:  "Category/Product",
		Kinds: []delta.Kind{delta.KindInsert},
	})
	alerts := a.Notify("catalog", 2, oldDoc, newDoc, d)
	if len(alerts) != 1 {
		t.Fatalf("alerts = %v, want 1", alerts)
	}
	al := alerts[0]
	if al.SubID != "new-products" || al.Op.Kind() != delta.KindInsert {
		t.Errorf("unexpected alert %v", al)
	}
	if !strings.Contains(al.Path, "Product") {
		t.Errorf("alert path = %q", al.Path)
	}
	if !strings.Contains(al.String(), "insert") {
		t.Errorf("String = %q", al.String())
	}
}

func TestNotifyKindAndPathFilters(t *testing.T) {
	oldDoc, newDoc, d := diffPair(t,
		`<r><a><v>1</v></a><b><v>2</v></b></r>`,
		`<r><a><v>9</v></a><b><v>2</v></b></r>`)
	a := New(
		Subscription{ID: "updates-a", Path: "a/v", Kinds: []delta.Kind{delta.KindUpdate}},
		Subscription{ID: "updates-b", Path: "b/v", Kinds: []delta.Kind{delta.KindUpdate}},
		Subscription{ID: "deletes", Kinds: []delta.Kind{delta.KindDelete}},
	)
	alerts := a.Notify("doc", 2, oldDoc, newDoc, d)
	if len(alerts) != 1 || alerts[0].SubID != "updates-a" {
		t.Fatalf("alerts = %v, want only updates-a", alerts)
	}
}

func TestNotifyContainsFilter(t *testing.T) {
	oldDoc, newDoc, d := diffPair(t,
		`<list><item>cheap thing</item></list>`,
		`<list><item>cheap thing</item><item>rare gem</item></list>`)
	a := New(
		Subscription{ID: "gems", Contains: "gem"},
		Subscription{ID: "gold", Contains: "gold"},
	)
	alerts := a.Notify("doc", 2, oldDoc, newDoc, d)
	if len(alerts) != 1 || alerts[0].SubID != "gems" {
		t.Fatalf("alerts = %v, want only gems", alerts)
	}
}

func TestNotifyDocIDFilter(t *testing.T) {
	oldDoc, newDoc, d := diffPair(t, `<r><x>1</x></r>`, `<r><x>2</x></r>`)
	a := New(
		Subscription{ID: "mine", DocID: "doc-1"},
		Subscription{ID: "other", DocID: "doc-2"},
	)
	alerts := a.Notify("doc-1", 2, oldDoc, newDoc, d)
	if len(alerts) != 1 || alerts[0].SubID != "mine" {
		t.Fatalf("alerts = %v", alerts)
	}
}

func TestNotifyDeleteResolvesInOldVersion(t *testing.T) {
	oldDoc, newDoc, d := diffPair(t,
		`<r><gone><deep>x</deep></gone><stay/></r>`,
		`<r><stay/></r>`)
	a := New(Subscription{ID: "del", Kinds: []delta.Kind{delta.KindDelete}})
	alerts := a.Notify("doc", 2, oldDoc, newDoc, d)
	if len(alerts) != 1 {
		t.Fatalf("alerts = %v", alerts)
	}
	if alerts[0].Path != "/r/gone" {
		t.Errorf("delete path = %q, want /r/gone", alerts[0].Path)
	}
}

func TestNotifyEmptyDeltaAndNoSubs(t *testing.T) {
	oldDoc, newDoc, d := diffPair(t, `<r/>`, `<r/>`)
	a := New(Subscription{ID: "any"})
	if got := a.Notify("doc", 2, oldDoc, newDoc, d); got != nil {
		t.Errorf("empty delta alerts = %v", got)
	}
	_, newDoc2, d2 := diffPair(t, `<r/>`, `<r><x/></r>`)
	empty := New()
	if got := empty.Notify("doc", 2, newDoc, newDoc2, d2); got != nil {
		t.Errorf("no-subs alerts = %v", got)
	}
}

func TestSubscribeUnsubscribe(t *testing.T) {
	a := New()
	a.Subscribe(Subscription{ID: "s1"})
	a.Subscribe(Subscription{ID: "s2"})
	a.Subscribe(Subscription{ID: "s1"})
	if got := len(a.Subscriptions()); got != 3 {
		t.Fatalf("subs = %d", got)
	}
	if !a.Unsubscribe("s1") {
		t.Fatal("Unsubscribe existing returned false")
	}
	if got := len(a.Subscriptions()); got != 1 {
		t.Fatalf("after unsubscribe subs = %d", got)
	}
	if a.Unsubscribe("ghost") {
		t.Fatal("Unsubscribe missing returned true")
	}
}

func TestPathMatches(t *testing.T) {
	cases := []struct {
		pattern, path string
		want          bool
	}{
		{"", "/a/b", true},
		{"b", "/a/b", true},
		{"a/b", "/a/b", true},
		{"/a/b", "/a/b", true},
		{"/b", "/a/b", false},
		{"/a", "/a/b", false},
		{"x/b", "/a/b", false},
		{"*/b", "/a/b", true},
		{"/*/b", "/a/b", true},
		{"a/*", "/a/b", true},
		{"Product", "/Catalog/Category[2]/Product[3]", true},
		{"Category/Product", "/Catalog/Category[2]/Product[3]", true},
		{"anything", "", false},
	}
	for _, c := range cases {
		if got := pathMatches(c.pattern, c.path); got != c.want {
			t.Errorf("pathMatches(%q, %q) = %v, want %v", c.pattern, c.path, got, c.want)
		}
	}
}

func TestMoveAlertUsesNodeContent(t *testing.T) {
	oldDoc, newDoc, d := diffPair(t,
		`<r><a><big><x>gemstone</x><y>two</y></big></a><b/></r>`,
		`<r><a/><b><big><x>gemstone</x><y>two</y></big></b></r>`)
	if d.Count().Moves == 0 {
		t.Skip("diff did not produce a move for this input")
	}
	a := New(Subscription{ID: "m", Kinds: []delta.Kind{delta.KindMove}, Contains: "gemstone"})
	alerts := a.Notify("doc", 2, oldDoc, newDoc, d)
	if len(alerts) != 1 {
		t.Fatalf("alerts = %v", alerts)
	}
}

func TestAttrAlerts(t *testing.T) {
	oldDoc, newDoc, d := diffPair(t,
		`<r><e status="ok"/></r>`,
		`<r><e status="fail"/></r>`)
	a := New(Subscription{ID: "attr", Kinds: []delta.Kind{delta.KindUpdateAttr}, Contains: "fail"})
	alerts := a.Notify("doc", 2, oldDoc, newDoc, d)
	if len(alerts) != 1 {
		t.Fatalf("alerts = %v\ndelta:\n%s", alerts, d)
	}
}

func TestQuerySubscription(t *testing.T) {
	oldDoc, newDoc, d := diffPair(t,
		`<Catalog><Product><Name>a</Name><Price>$100</Price></Product></Catalog>`,
		`<Catalog><Product><Name>a</Name><Price>$100</Price></Product><Product><Name>lux</Name><Price>$900</Price></Product></Catalog>`)
	a := New(
		Subscription{ID: "expensive", Query: xpathlite.MustCompile(`//Product[Price>500]`), Kinds: []delta.Kind{delta.KindInsert}},
		Subscription{ID: "cheap", Query: xpathlite.MustCompile(`//Product[Price<=500]`), Kinds: []delta.Kind{delta.KindInsert}},
	)
	alerts := a.Notify("doc", 2, oldDoc, newDoc, d)
	if len(alerts) != 1 || alerts[0].SubID != "expensive" {
		t.Fatalf("alerts = %v, want only expensive", alerts)
	}
}

func TestQuerySubscriptionTextUpdateFallsBackToParent(t *testing.T) {
	oldDoc, newDoc, d := diffPair(t,
		`<Catalog><Product><Name>a</Name><Price>$100</Price></Product></Catalog>`,
		`<Catalog><Product><Name>a</Name><Price>$150</Price></Product></Catalog>`)
	a := New(Subscription{ID: "price-watch", Query: xpathlite.MustCompile(`//Product/Price`), Kinds: []delta.Kind{delta.KindUpdate}})
	alerts := a.Notify("doc", 2, oldDoc, newDoc, d)
	if len(alerts) != 1 {
		t.Fatalf("alerts = %v", alerts)
	}
}
