// Package alert implements the subscription system of the Xyleme
// architecture (the paper's Section 2 and Figure 1): when a new version
// of a document arrives and its delta is computed, the alerter scans
// the delta for patterns of interest — "a new product has been added to
// a catalog" — and raises alerts for the matching subscriptions.
package alert

import (
	"fmt"
	"strings"
	"sync"

	"xydiff/internal/delta"
	"xydiff/internal/dom"
	"xydiff/internal/xpathlite"
)

// Subscription describes a pattern of interest over deltas.
type Subscription struct {
	// ID names the subscription in alerts.
	ID string
	// DocID restricts the subscription to one stored document; empty
	// matches every document.
	DocID string
	// Path is a label path the affected node must match, e.g.
	// "/Catalog/Category/Product" (anchored at the root) or
	// "Category/Product" (suffix match). Position predicates like [2]
	// are ignored; "*" matches any single label. Empty matches any
	// node.
	Path string
	// Query, when non-nil, replaces Path with a full xpathlite
	// expression evaluated against the affected node in its document —
	// e.g. //Product[Price>500] alerts only on expensive products.
	Query *xpathlite.Expr
	// Kinds restricts the operation kinds of interest; empty means all.
	Kinds []delta.Kind
	// Contains, when non-empty, requires the operation's content (the
	// inserted or deleted subtree's text, or the new value of an
	// update) to contain the substring.
	Contains string
}

// Alert reports that one delta operation matched one subscription.
type Alert struct {
	SubID   string
	DocID   string
	Version int
	Op      delta.Op
	// Path locates the affected node (in the new version when it still
	// exists, in the old version for deletions).
	Path string
}

func (a Alert) String() string {
	return fmt.Sprintf("[%s] %s v%d: %s at %s", a.SubID, a.DocID, a.Version, a.Op.Kind(), a.Path)
}

// Alerter evaluates subscriptions against deltas. It is safe for
// concurrent use.
type Alerter struct {
	mu    sync.RWMutex
	subs  []Subscription
	sinks []Notifier
}

// New returns an Alerter with the given initial subscriptions.
func New(subs ...Subscription) *Alerter {
	return &Alerter{subs: subs}
}

// Subscribe adds a subscription.
func (a *Alerter) Subscribe(s Subscription) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.subs = append(a.subs, s)
}

// Unsubscribe removes all subscriptions with the given ID, reporting
// whether any existed.
func (a *Alerter) Unsubscribe(id string) bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	kept := a.subs[:0]
	removed := false
	for _, s := range a.subs {
		if s.ID == id {
			removed = true
			continue
		}
		kept = append(kept, s)
	}
	a.subs = kept
	return removed
}

// Subscriptions returns a snapshot of the registered subscriptions.
func (a *Alerter) Subscriptions() []Subscription {
	a.mu.RLock()
	defer a.mu.RUnlock()
	out := make([]Subscription, len(a.subs))
	copy(out, a.subs)
	return out
}

// Notify evaluates every subscription against the delta that produced
// version newVersion of document docID. oldDoc and newDoc are the
// versions before and after; they are used to resolve the paths of
// affected nodes (XIDs must be consistent with the delta, which is the
// case for documents coming out of diff.Diff or store.Store). Matches
// are returned and also fanned out to any attached Notifier sinks.
func (a *Alerter) Notify(docID string, newVersion int, oldDoc, newDoc *dom.Node, d *delta.Delta) []Alert {
	if d.Empty() {
		return nil
	}
	a.mu.RLock()
	subs := a.subs
	a.mu.RUnlock()
	if len(subs) == 0 {
		return nil
	}
	oldIdx := indexXIDs(oldDoc)
	newIdx := indexXIDs(newDoc)
	var alerts []Alert
	for _, op := range d.Ops {
		node, path := locate(op, oldIdx, newIdx)
		for _, s := range subs {
			if s.DocID != "" && s.DocID != docID {
				continue
			}
			if !kindMatches(s.Kinds, op.Kind()) {
				continue
			}
			if s.Query != nil {
				if node == nil || !queryMatches(s.Query, node) {
					continue
				}
			} else if s.Path != "" && !pathMatches(s.Path, path) {
				continue
			}
			if s.Contains != "" && !contentContains(op, node, s.Contains) {
				continue
			}
			alerts = append(alerts, Alert{SubID: s.ID, DocID: docID, Version: newVersion, Op: op, Path: path})
		}
	}
	a.dispatch(alerts)
	return alerts
}

func indexXIDs(doc *dom.Node) map[int64]*dom.Node {
	idx := make(map[int64]*dom.Node)
	if doc == nil {
		return idx
	}
	dom.WalkPre(doc, func(n *dom.Node) bool {
		if n.XID != 0 {
			idx[n.XID] = n
		}
		return true
	})
	return idx
}

// locate resolves the node an operation is about, preferring the new
// version (deletes resolve in the old version).
func locate(op delta.Op, oldIdx, newIdx map[int64]*dom.Node) (*dom.Node, string) {
	var n *dom.Node
	if op.Kind() == delta.KindDelete {
		n = oldIdx[op.TargetXID()]
	} else {
		n = newIdx[op.TargetXID()]
		if n == nil {
			n = oldIdx[op.TargetXID()]
		}
	}
	if n == nil {
		return nil, ""
	}
	// A text node's value belongs, for subscribers, to its element: an
	// update of <Price>'s character data should match "Product/Price".
	if n.Type == dom.Text && n.Parent != nil {
		return n, n.Parent.Path()
	}
	return n, n.Path()
}

// queryMatches applies an xpathlite expression to the affected node,
// falling back to the parent element for text nodes (an update of
// <Price>'s character data should match //Price).
func queryMatches(q *xpathlite.Expr, n *dom.Node) bool {
	if q.Matches(n) {
		return true
	}
	return n.Type == dom.Text && n.Parent != nil && q.Matches(n.Parent)
}

func kindMatches(kinds []delta.Kind, k delta.Kind) bool {
	if len(kinds) == 0 {
		return true
	}
	for _, want := range kinds {
		if want == k {
			return true
		}
	}
	return false
}

// pathMatches compares a subscription pattern against a node path.
// Both are segmented on "/" with position predicates stripped; an
// anchored pattern (leading "/") must match the full path, otherwise a
// suffix match suffices. "*" matches any single segment.
func pathMatches(pattern, path string) bool {
	if path == "" {
		return false
	}
	p := segments(pattern)
	n := segments(path)
	if len(p) == 0 {
		return true
	}
	if strings.HasPrefix(pattern, "/") {
		if len(p) != len(n) {
			return false
		}
		return segsMatch(p, n)
	}
	if len(p) > len(n) {
		return false
	}
	return segsMatch(p, n[len(n)-len(p):])
}

func segsMatch(pattern, path []string) bool {
	for i := range pattern {
		if pattern[i] != "*" && pattern[i] != path[i] {
			return false
		}
	}
	return true
}

func segments(p string) []string {
	var out []string
	for _, s := range strings.Split(p, "/") {
		if s == "" {
			continue
		}
		if i := strings.IndexByte(s, '['); i >= 0 {
			s = s[:i]
		}
		out = append(out, s)
	}
	return out
}

// contentContains checks the operation's payload for a substring.
func contentContains(op delta.Op, node *dom.Node, substr string) bool {
	switch o := op.(type) {
	case delta.Insert:
		return o.Subtree != nil && strings.Contains(o.Subtree.TextContent(), substr)
	case delta.Delete:
		return o.Subtree != nil && strings.Contains(o.Subtree.TextContent(), substr)
	case delta.Update:
		return strings.Contains(o.New, substr) || strings.Contains(o.Old, substr)
	case delta.InsertAttr:
		return strings.Contains(o.Value, substr)
	case delta.DeleteAttr:
		return strings.Contains(o.Old, substr)
	case delta.UpdateAttr:
		return strings.Contains(o.New, substr) || strings.Contains(o.Old, substr)
	case delta.Move:
		return node != nil && strings.Contains(node.TextContent(), substr)
	default:
		return false
	}
}
