package alert

import "sync"

// Notifier is a sink for alerts as they are raised. Attached notifiers
// receive every batch of alerts a Notify call produces, synchronously
// and in Notify order, so an implementation must not block: buffer or
// drop instead.
type Notifier interface {
	Alerts([]Alert)
}

// Attach registers a sink that receives all future alert batches.
func (a *Alerter) Attach(n Notifier) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.sinks = append(a.sinks, n)
}

// Detach removes a previously attached sink, reporting whether it was
// attached.
func (a *Alerter) Detach(n Notifier) bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	for i, s := range a.sinks {
		if s == n {
			a.sinks = append(a.sinks[:i], a.sinks[i+1:]...)
			return true
		}
	}
	return false
}

// dispatch fans a batch out to the attached sinks.
func (a *Alerter) dispatch(alerts []Alert) {
	if len(alerts) == 0 {
		return
	}
	a.mu.RLock()
	sinks := make([]Notifier, len(a.sinks))
	copy(sinks, a.sinks)
	a.mu.RUnlock()
	for _, s := range sinks {
		s.Alerts(alerts)
	}
}

// ChanNotifier is a channel-backed in-process Notifier: alerts are
// delivered one by one on C without ever blocking the alerter — when
// the buffer is full, alerts are counted as dropped instead. This is
// what lets a server stream matches to a subscriber instead of having
// it poll.
type ChanNotifier struct {
	ch chan Alert

	mu      sync.Mutex
	dropped int
	closed  bool
}

// NewChanNotifier returns a notifier buffering up to buf alerts
// (minimum 1).
func NewChanNotifier(buf int) *ChanNotifier {
	if buf < 1 {
		buf = 1
	}
	return &ChanNotifier{ch: make(chan Alert, buf)}
}

// C is the delivery channel. It is closed by Close.
func (c *ChanNotifier) C() <-chan Alert { return c.ch }

// Alerts implements Notifier with a non-blocking send per alert.
func (c *ChanNotifier) Alerts(alerts []Alert) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		c.dropped += len(alerts)
		return
	}
	for _, a := range alerts {
		select {
		case c.ch <- a:
		default:
			c.dropped++
		}
	}
}

// Dropped returns how many alerts were discarded because the buffer was
// full (or the notifier closed).
func (c *ChanNotifier) Dropped() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.dropped
}

// Close closes the delivery channel. Callers should Detach the notifier
// from the alerter first; alerts arriving after Close are counted as
// dropped. Close is idempotent.
func (c *ChanNotifier) Close() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.closed {
		c.closed = true
		close(c.ch)
	}
}
