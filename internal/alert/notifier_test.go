package alert

import (
	"testing"

	"xydiff/internal/delta"
)

func TestChanNotifierReceivesAlerts(t *testing.T) {
	oldDoc, newDoc, d := diffPair(t,
		`<Catalog><Category><Product><Name>a</Name></Product></Category></Catalog>`,
		`<Catalog><Category><Product><Name>a</Name></Product><Product><Name>b</Name></Product></Category></Catalog>`)
	a := New(Subscription{ID: "new-products", Path: "Category/Product", Kinds: []delta.Kind{delta.KindInsert}})
	n := NewChanNotifier(4)
	a.Attach(n)

	got := a.Notify("catalog", 2, oldDoc, newDoc, d)
	if len(got) != 1 {
		t.Fatalf("Notify returned %d alerts, want 1", len(got))
	}
	select {
	case al := <-n.C():
		if al.SubID != "new-products" || al.DocID != "catalog" || al.Version != 2 {
			t.Errorf("streamed alert = %+v", al)
		}
	default:
		t.Fatal("no alert on the channel")
	}
	if n.Dropped() != 0 {
		t.Errorf("dropped = %d, want 0", n.Dropped())
	}
}

func TestChanNotifierOverflowDrops(t *testing.T) {
	n := NewChanNotifier(1)
	batch := []Alert{{SubID: "s"}, {SubID: "s"}, {SubID: "s"}}
	n.Alerts(batch)
	if n.Dropped() != 2 {
		t.Errorf("dropped = %d, want 2", n.Dropped())
	}
	<-n.C()
	n.Alerts(batch[:1]) // buffer drained: delivers again
	select {
	case <-n.C():
	default:
		t.Error("post-drain alert not delivered")
	}
}

func TestDetachStopsDelivery(t *testing.T) {
	oldDoc, newDoc, d := diffPair(t, `<r><v>1</v></r>`, `<r><v>2</v></r>`)
	a := New(Subscription{ID: "all"})
	n := NewChanNotifier(8)
	a.Attach(n)
	if !a.Detach(n) {
		t.Fatal("Detach = false for an attached sink")
	}
	if a.Detach(n) {
		t.Fatal("Detach = true for a detached sink")
	}
	a.Notify("doc", 2, oldDoc, newDoc, d)
	select {
	case al := <-n.C():
		t.Errorf("received %v after Detach", al)
	default:
	}
}

func TestChanNotifierCloseIdempotent(t *testing.T) {
	n := NewChanNotifier(1)
	n.Close()
	n.Close() // must not panic
	if _, ok := <-n.C(); ok {
		t.Error("channel not closed")
	}
	n.Alerts([]Alert{{SubID: "late"}}) // must not panic; counts as dropped
	if n.Dropped() != 1 {
		t.Errorf("dropped = %d, want 1", n.Dropped())
	}
}
