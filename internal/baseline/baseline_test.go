package baseline

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"xydiff/internal/delta"
	"xydiff/internal/dom"
)

func parse(t *testing.T, s string) *dom.Node {
	t.Helper()
	d, err := dom.ParseString(s)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

type differ struct {
	name string
	run  func(oldDoc, newDoc *dom.Node) (*delta.Delta, error)
}

var differs = []differ{
	{"LuSelkow", LuSelkow},
	{"LaDiff", LaDiff},
}

// roundTrip checks the fundamental correctness property for the
// matching-based baselines: their deltas transform old into new.
func roundTrip(t *testing.T, name, oldXML, newXML string, run func(o, n *dom.Node) (*delta.Delta, error)) *delta.Delta {
	t.Helper()
	oldDoc, newDoc := parse(t, oldXML), parse(t, newXML)
	d, err := run(oldDoc, newDoc)
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	got, err := delta.ApplyClone(oldDoc, d)
	if err != nil {
		t.Fatalf("%s apply: %v\ndelta:\n%s", name, err, d)
	}
	if !dom.Equal(got, newDoc) {
		t.Fatalf("%s: apply != new: %s\ndelta:\n%s", name, dom.Diagnose(got, newDoc), d)
	}
	return d
}

func TestBaselinesBasicEdits(t *testing.T) {
	cases := []struct{ name, oldXML, newXML string }{
		{"identical", `<a><b>x</b></a>`, `<a><b>x</b></a>`},
		{"text update", `<a><b>x</b><c>y</c></a>`, `<a><b>x</b><c>z</c></a>`},
		{"insert leaf", `<a><b>x</b></a>`, `<a><b>x</b><c>y</c></a>`},
		{"delete leaf", `<a><b>x</b><c>y</c></a>`, `<a><b>x</b></a>`},
		{"insert subtree", `<a><b>x</b></a>`, `<a><b>x</b><s><t>1</t><u>2</u></s></a>`},
		{"relabel root", `<a><b>x</b></a>`, `<z><b>x</b></z>`},
		{"reorder", `<a><b>1</b><c>2</c><d>3</d></a>`, `<a><d>3</d><b>1</b><c>2</c></a>`},
		{"nested update", `<a><b><c><d>deep</d></c></b></a>`, `<a><b><c><d>deeper</d></c></b></a>`},
	}
	for _, df := range differs {
		for _, c := range cases {
			t.Run(df.name+"/"+c.name, func(t *testing.T) {
				roundTrip(t, df.name, c.oldXML, c.newXML, df.run)
			})
		}
	}
}

func TestLuSelkowFindsSingleUpdate(t *testing.T) {
	d := roundTrip(t, "lu",
		`<doc><p>one</p><p>two</p><p>three</p></doc>`,
		`<doc><p>one</p><p>2</p><p>three</p></doc>`, LuSelkow)
	c := d.Count()
	if c.Updates != 1 || c.Deletes != 0 || c.Inserts != 0 {
		t.Fatalf("counts = %v:\n%s", c, d)
	}
}

func TestLuSelkowDistanceProperties(t *testing.T) {
	a := parse(t, `<a><b>x</b><c>y</c></a>`)
	if got := Distance(a, a.Clone()); got != 0 {
		t.Errorf("distance to identical copy = %d", got)
	}
	b := parse(t, `<a><b>x</b><c>z</c></a>`)
	if got := Distance(a, b); got != 1 {
		t.Errorf("single text update distance = %d, want 1", got)
	}
	// Deleting <c>y</c> (2 nodes) costs 2.
	c := parse(t, `<a><b>x</b></a>`)
	if got := Distance(a, c); got != 2 {
		t.Errorf("subtree delete distance = %d, want 2", got)
	}
	// Incompatible roots are infinitely far (delete+insert at a higher
	// level is how they'd be handled by a wrapper).
	d := parse(t, `<z/>`)
	if got := Distance(a.Root(), d.Root()); got < luInf {
		t.Errorf("relabel distance = %d, want inf", got)
	}
}

func TestLuSelkowDistanceSymmetricCosts(t *testing.T) {
	a := parse(t, `<a><b>x</b></a>`)
	b := parse(t, `<a><b>x</b><c><d>1</d></c></a>`)
	// Insert of <c><d>1</d></c> (3 nodes) in one direction equals
	// delete in the other.
	if d1, d2 := Distance(a, b), Distance(b, a); d1 != d2 || d1 != 3 {
		t.Errorf("insert/delete distances = %d, %d, want 3, 3", d1, d2)
	}
}

func TestLaDiffMatchesSimilarText(t *testing.T) {
	// Text changed slightly: LaDiff's similarity threshold should match
	// the leaves and emit an update, not delete+insert.
	d := roundTrip(t, "ladiff",
		`<doc><p>a fairly long paragraph about cameras</p></doc>`,
		`<doc><p>a fairly long paragraph about lenses</p></doc>`, LaDiff)
	c := d.Count()
	if c.Updates != 1 || c.Deletes != 0 {
		t.Fatalf("counts = %v:\n%s", c, d)
	}
}

func TestLaDiffBottomUpMatchesParents(t *testing.T) {
	d := roundTrip(t, "ladiff",
		`<r><sec><p>alpha</p><p>beta</p><p>gamma</p></sec></r>`,
		`<r><sec><p>alpha</p><p>beta</p><p>gamma</p><p>delta</p></sec></r>`, LaDiff)
	c := d.Count()
	if c.Inserts != 1 || c.Deletes != 0 {
		t.Fatalf("expected one insert, got %v:\n%s", c, d)
	}
}

func TestSimilarity(t *testing.T) {
	if similarity("", "") != 1 {
		t.Error("empty strings should be identical")
	}
	if s := similarity("abcdef", "abcxef"); s < 0.5 {
		t.Errorf("one-char change similarity = %f", s)
	}
	if s := similarity("abc", "xyz"); s != 0 {
		t.Errorf("disjoint similarity = %f", s)
	}
	if s := similarity("aaaa", "aa"); s <= 0 || s > 1 {
		t.Errorf("prefix similarity out of range: %f", s)
	}
}

func TestDiffMKLossless(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 50; trial++ {
		oldDoc := randomDoc(rng)
		newDoc := randomDoc(rng)
		r := DiffMK(oldDoc, newDoc)
		got := strings.Join(r.Reconstruct(), "\x00")
		want := strings.Join(r.NewTokens, "\x00")
		if got != want {
			t.Fatalf("DiffMK reconstruction mismatch")
		}
	}
}

func TestDiffMKIdentical(t *testing.T) {
	doc := parse(t, `<a><b attr="1">x</b><!--c--><?pi d?></a>`)
	r := DiffMK(doc, doc.Clone())
	if r.Changed() != 0 || r.Size() != 0 {
		t.Errorf("identical docs: changed=%d size=%d", r.Changed(), r.Size())
	}
}

func TestDiffMKCountsChanges(t *testing.T) {
	oldDoc := parse(t, `<a><b>x</b></a>`)
	newDoc := parse(t, `<a><b>y</b></a>`)
	r := DiffMK(oldDoc, newDoc)
	if r.Changed() != 2 { // delete "x", insert "y"
		t.Errorf("changed = %d, want 2", r.Changed())
	}
	if r.Size() <= 0 {
		t.Error("size should be positive")
	}
}

func TestFlattenShape(t *testing.T) {
	doc := parse(t, `<a x="1"><b>t</b></a>`)
	toks := Flatten(doc)
	want := []string{`<a x="1">`, `<b>`, `t`, `</b>`, `</a>`}
	if len(toks) != len(want) {
		t.Fatalf("Flatten = %v, want %v", toks, want)
	}
	for i := range want {
		if toks[i] != want[i] {
			t.Errorf("token %d = %q, want %q", i, toks[i], want[i])
		}
	}
}

func randomDoc(rng *rand.Rand) *dom.Node {
	doc := dom.NewDocument()
	root := dom.NewElement("root")
	doc.Append(root)
	nodes := []*dom.Node{root}
	for i := 0; i < rng.Intn(30); i++ {
		p := nodes[rng.Intn(len(nodes))]
		if rng.Intn(3) == 0 {
			if k := len(p.Children); k == 0 || p.Children[k-1].Type != dom.Text {
				p.Append(dom.NewText(fmt.Sprintf("t%d", rng.Intn(9))))
			}
			continue
		}
		el := dom.NewElement([]string{"a", "b", "c"}[rng.Intn(3)])
		p.Append(el)
		nodes = append(nodes, el)
	}
	return doc
}

func TestBaselinesRandomRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 40; trial++ {
		oldDoc := randomDoc(rng)
		newDoc := randomDoc(rng)
		for _, df := range differs {
			d, err := df.run(oldDoc.Clone(), newDoc.Clone())
			if err != nil {
				t.Fatalf("%s trial %d: %v", df.name, trial, err)
			}
			// Re-run against fresh clones to avoid XID cross-talk.
			o2 := oldDoc.Clone()
			d2, err := df.run(o2, newDoc.Clone())
			if err != nil {
				t.Fatal(err)
			}
			got, err := delta.ApplyClone(o2, d2)
			if err != nil {
				t.Fatalf("%s trial %d apply: %v\nold=%s\nnew=%s\ndelta:\n%s", df.name, trial, err, oldDoc, newDoc, d)
			}
			if !dom.Equal(got, newDoc) {
				t.Fatalf("%s trial %d mismatch: %s", df.name, trial, dom.Diagnose(got, newDoc))
			}
		}
	}
}
