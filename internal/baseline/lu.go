// Package baseline implements the prior-art algorithms the paper
// compares BULD against (Section 3):
//
//   - Lu's algorithm in Selkow's variant: an O(|D1|·|D2|) tree edit
//     distance where insertions and deletions operate on subtrees and
//     matched nodes align their children with a string-edit dynamic
//     program;
//   - a LaDiff-style matcher (Chawathe et al., SIGMOD 1996): leaf
//     matching followed by bottom-up internal matching, quadratic in
//     the worst case;
//   - a DiffMK-style differ: the document flattened to a token list and
//     run through a line diff, losing the tree structure.
//
// The first two produce node matchings that are fed to the shared
// delta constructor (diff.FromMatching), so output quality is directly
// comparable with BULD.
package baseline

import (
	"xydiff/internal/delta"
	"xydiff/internal/diff"
	"xydiff/internal/dom"
)

// LuSelkow computes a delta between two documents using the
// Selkow-variant tree edit distance (recursive child-sequence
// alignment). Time and space are O(|old|·|new|) in the worst case —
// this is the quadratic baseline of the paper's state of the art.
func LuSelkow(oldDoc, newDoc *dom.Node) (*delta.Delta, error) {
	m := &luMatcher{memo: make(map[luKey]int)}
	m.oldN = dom.Postorder(oldDoc)
	m.newN = dom.Postorder(newDoc)
	m.oldIdx = indexOf(m.oldN)
	m.newIdx = indexOf(m.newN)
	m.size = make([]int, len(m.oldN))
	for i, n := range m.oldN {
		m.size[i] = n.Size()
	}
	m.sizeNew = make([]int, len(m.newN))
	for i, n := range m.newN {
		m.sizeNew[i] = n.Size()
	}
	pairs := make(map[*dom.Node]*dom.Node)
	m.align(oldDoc, newDoc, pairs)
	return diff.FromMatching(oldDoc, newDoc, pairs, diff.Options{})
}

type luKey struct{ o, n int32 }

type luMatcher struct {
	oldN, newN []*dom.Node
	oldIdx     map[*dom.Node]int
	newIdx     map[*dom.Node]int
	size       []int
	sizeNew    []int
	memo       map[luKey]int
}

const luInf = int(1) << 30

// relabelCost is the cost of substituting the roots: 0 when identical,
// 1 for a text/value update between same-label nodes, impossible
// otherwise (Selkow: only matching labels align; others are
// delete+insert).
func (m *luMatcher) relabelCost(o, n *dom.Node) int {
	if o.Type != n.Type || o.Name != n.Name {
		return luInf
	}
	if o.Value == n.Value {
		return 0
	}
	return 1
}

// dist is Selkow's recursive distance between the subtrees rooted at o
// and n, memoized on post-order indexes.
func (m *luMatcher) dist(o, n *dom.Node) int {
	rc := m.relabelCost(o, n)
	if rc >= luInf {
		return luInf
	}
	key := luKey{int32(m.oldIdx[o]), int32(m.newIdx[n])}
	if v, ok := m.memo[key]; ok {
		return v
	}
	d := rc + m.childEdit(o, n, nil)
	m.memo[key] = d
	return d
}

// childEdit runs the string-edit dynamic program over the child lists:
// deleting a child costs its subtree size, inserting likewise, and
// substituting recurses. When pairs is non-nil the chosen alignment is
// replayed into the matching.
func (m *luMatcher) childEdit(o, n *dom.Node, pairs map[*dom.Node]*dom.Node) int {
	oc, nc := o.Children, n.Children
	rows, cols := len(oc)+1, len(nc)+1
	dp := make([]int, rows*cols)
	at := func(i, j int) int { return i*cols + j }
	for i := 1; i < rows; i++ {
		dp[at(i, 0)] = dp[at(i-1, 0)] + m.size[m.oldIdx[oc[i-1]]]
	}
	for j := 1; j < cols; j++ {
		dp[at(0, j)] = dp[at(0, j-1)] + m.sizeNew[m.newIdx[nc[j-1]]]
	}
	for i := 1; i < rows; i++ {
		for j := 1; j < cols; j++ {
			del := dp[at(i-1, j)] + m.size[m.oldIdx[oc[i-1]]]
			ins := dp[at(i, j-1)] + m.sizeNew[m.newIdx[nc[j-1]]]
			best := min(del, ins)
			if sub := m.dist(oc[i-1], nc[j-1]); sub < luInf {
				if v := dp[at(i-1, j-1)] + sub; v < best {
					best = v
				}
			}
			dp[at(i, j)] = best
		}
	}
	if pairs != nil {
		// Backtrack to recover the alignment and recurse into
		// substituted pairs.
		i, j := len(oc), len(nc)
		for i > 0 && j > 0 {
			cur := dp[at(i, j)]
			if sub := m.dist(oc[i-1], nc[j-1]); sub < luInf && cur == dp[at(i-1, j-1)]+sub {
				m.align(oc[i-1], nc[j-1], pairs)
				i--
				j--
				continue
			}
			if cur == dp[at(i-1, j)]+m.size[m.oldIdx[oc[i-1]]] {
				i--
				continue
			}
			j--
		}
	}
	return dp[at(len(oc), len(nc))]
}

// align records the root pair and replays the optimal child alignment.
func (m *luMatcher) align(o, n *dom.Node, pairs map[*dom.Node]*dom.Node) {
	if m.relabelCost(o, n) >= luInf {
		return
	}
	pairs[o] = n
	m.childEdit(o, n, pairs)
}

// Distance exposes the raw Selkow edit distance (for tests comparing
// against brute force and for cost-model experiments).
func Distance(oldDoc, newDoc *dom.Node) int {
	m := &luMatcher{memo: make(map[luKey]int)}
	m.oldN = dom.Postorder(oldDoc)
	m.newN = dom.Postorder(newDoc)
	m.oldIdx = indexOf(m.oldN)
	m.newIdx = indexOf(m.newN)
	m.size = make([]int, len(m.oldN))
	for i, n := range m.oldN {
		m.size[i] = n.Size()
	}
	m.sizeNew = make([]int, len(m.newN))
	for i, n := range m.newN {
		m.sizeNew[i] = n.Size()
	}
	return m.dist(oldDoc, newDoc)
}

func indexOf(nodes []*dom.Node) map[*dom.Node]int {
	idx := make(map[*dom.Node]int, len(nodes))
	for i, n := range nodes {
		idx[n] = i
	}
	return idx
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
