package baseline

import (
	"strings"

	"xydiff/internal/dom"
	"xydiff/internal/lcs"
)

// DiffMKResult is the output of the DiffMK-style differ: a flat edit
// script over the linearized document, with no tree semantics, no
// moves, and no persistent identification. The paper criticizes this
// approach ("losing the benefit of tree structure of XML"); it is here
// for the comparison experiments.
type DiffMKResult struct {
	Edits     []lcs.Edit
	OldTokens []string
	NewTokens []string
}

// DiffMK flattens both documents into token lists (start tags with
// attributes, text, end tags) and diffs the lists, mimicking Sun's
// DiffMK built on the Unix diff algorithm.
func DiffMK(oldDoc, newDoc *dom.Node) *DiffMKResult {
	a, b := Flatten(oldDoc), Flatten(newDoc)
	return &DiffMKResult{Edits: lcs.Myers(a, b), OldTokens: a, NewTokens: b}
}

// Changed counts non-Keep edits.
func (r *DiffMKResult) Changed() int {
	n := 0
	for _, e := range r.Edits {
		if e.Kind != lcs.Keep {
			n++
		}
	}
	return n
}

// Size approximates the output size in bytes: every inserted or
// deleted token is carried once, plus a marker byte.
func (r *DiffMKResult) Size() int {
	size := 0
	for _, e := range r.Edits {
		switch e.Kind {
		case lcs.Delete:
			size += len(r.OldTokens[e.AIdx]) + 2
		case lcs.Insert:
			size += len(r.NewTokens[e.BIdx]) + 2
		}
	}
	return size
}

// Reconstruct replays the script, returning the token list of the new
// document; tests use it to show the script is lossless even though the
// representation is structure-blind.
func (r *DiffMKResult) Reconstruct() []string {
	var out []string
	for _, e := range r.Edits {
		switch e.Kind {
		case lcs.Keep:
			out = append(out, r.OldTokens[e.AIdx])
		case lcs.Insert:
			out = append(out, r.NewTokens[e.BIdx])
		}
	}
	return out
}

// Flatten linearizes a document into the token list DiffMK operates on.
func Flatten(doc *dom.Node) []string {
	var out []string
	var walk func(n *dom.Node)
	walk = func(n *dom.Node) {
		switch n.Type {
		case dom.Document:
			for _, c := range n.Children {
				walk(c)
			}
		case dom.Element:
			var b strings.Builder
			b.WriteByte('<')
			b.WriteString(n.Name)
			for _, a := range n.Attrs {
				b.WriteByte(' ')
				b.WriteString(a.Name)
				b.WriteString(`="`)
				b.WriteString(a.Value)
				b.WriteByte('"')
			}
			b.WriteByte('>')
			out = append(out, b.String())
			for _, c := range n.Children {
				walk(c)
			}
			out = append(out, "</"+n.Name+">")
		case dom.Text:
			out = append(out, n.Value)
		case dom.Comment:
			out = append(out, "<!--"+n.Value+"-->")
		case dom.ProcInst:
			out = append(out, "<?"+n.Name+" "+n.Value+"?>")
		}
	}
	walk(doc)
	return out
}
