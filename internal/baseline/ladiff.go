package baseline

import (
	"xydiff/internal/delta"
	"xydiff/internal/diff"
	"xydiff/internal/dom"
	"xydiff/internal/lcs"
)

// LaDiff computes a delta in the spirit of Chawathe et al.'s LaDiff
// (SIGMOD 1996) fast match: leaves are matched first by label and value
// similarity using a longest-common-subsequence pass, then internal
// nodes are matched bottom-up when they share the majority of their
// matched descendants. The matching is handed to the shared delta
// constructor so the output format (including move detection between
// matched nodes) is identical to BULD's.
//
// The LCS over leaf sequences makes the worst case quadratic in the
// number of leaves, which is the complexity regime the paper reports
// for this family of algorithms.
func LaDiff(oldDoc, newDoc *dom.Node) (*delta.Delta, error) {
	pairs := make(map[*dom.Node]*dom.Node)

	oldLeaves := leaves(oldDoc)
	newLeaves := leaves(newDoc)
	// Pass 1: order-respecting leaf matching via LCS with a similarity
	// predicate (equal labels, similar values).
	matchedNew := make(map[*dom.Node]bool)
	for _, p := range lcs.Longest(len(oldLeaves), len(newLeaves), func(i, j int) bool {
		return leafSimilar(oldLeaves[i], newLeaves[j])
	}) {
		pairs[oldLeaves[p.AIdx]] = newLeaves[p.BIdx]
		matchedNew[newLeaves[p.BIdx]] = true
	}
	// Pass 2: leftover exact-equal leaves (out-of-order moves).
	byKey := make(map[leafKey][]*dom.Node)
	for _, l := range newLeaves {
		if !matchedNew[l] {
			k := leafKey{l.Type, l.Name, l.Value}
			byKey[k] = append(byKey[k], l)
		}
	}
	for _, l := range oldLeaves {
		if _, done := pairs[l]; done {
			continue
		}
		k := leafKey{l.Type, l.Name, l.Value}
		if cands := byKey[k]; len(cands) > 0 {
			pairs[l] = cands[0]
			matchedNew[cands[0]] = true
			byKey[k] = cands[1:]
		}
	}

	// Pass 3: bottom-up internal matching. An old element matches the
	// new element that contains the plurality of its matched
	// descendants' counterparts, when labels agree and the overlap
	// clears half of the larger descendant count.
	usedNew := make(map[*dom.Node]bool)
	for _, n := range pairs {
		usedNew[n] = true
	}
	counts := make(map[*dom.Node]int)
	dom.WalkPost(oldDoc, func(o *dom.Node) bool {
		if o.Type != dom.Element || len(o.Children) == 0 {
			return true
		}
		if _, done := pairs[o]; done {
			return true
		}
		clear(counts)
		for _, c := range o.Children {
			cn, ok := pairs[c]
			if !ok || cn.Parent == nil {
				continue
			}
			counts[cn.Parent] += c.Size()
		}
		var best *dom.Node
		bestCount := 0
		for cand, cnt := range counts {
			if cnt > bestCount {
				best, bestCount = cand, cnt
			}
		}
		if best == nil || usedNew[best] || best.Type != dom.Element || best.Name != o.Name {
			return true
		}
		larger := o.Size()
		if s := best.Size(); s > larger {
			larger = s
		}
		if 2*bestCount >= larger { // the FMES "common > 50%" criterion
			pairs[o] = best
			usedNew[best] = true
		}
		return true
	})
	return diff.FromMatching(oldDoc, newDoc, pairs, diff.Options{})
}

type leafKey struct {
	typ   dom.NodeType
	name  string
	value string
}

func leaves(doc *dom.Node) []*dom.Node {
	var out []*dom.Node
	dom.WalkPre(doc, func(n *dom.Node) bool {
		if len(n.Children) == 0 && n.Type != dom.Document {
			out = append(out, n)
		}
		return true
	})
	return out
}

// leafSimilar is LaDiff's leaf comparison: same kind and label, and for
// text nodes a value similarity above 50%.
func leafSimilar(a, b *dom.Node) bool {
	if a.Type != b.Type || a.Name != b.Name {
		return false
	}
	if a.Type != dom.Text || a.Value == b.Value {
		return true
	}
	return similarity(a.Value, b.Value) >= 0.5
}

// similarity is a cheap common-prefix/suffix ratio, a stand-in for
// LaDiff's string comparison that avoids a quadratic inner LCS.
func similarity(a, b string) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	maxLen := len(a)
	if len(b) > maxLen {
		maxLen = len(b)
	}
	prefix := 0
	for prefix < len(a) && prefix < len(b) && a[prefix] == b[prefix] {
		prefix++
	}
	suffix := 0
	for suffix < len(a)-prefix && suffix < len(b)-prefix &&
		a[len(a)-1-suffix] == b[len(b)-1-suffix] {
		suffix++
	}
	return float64(prefix+suffix) / float64(maxLen)
}
