// Package retry is the repo's one retry/backoff policy: capped
// exponential growth with proportional jitter. The crawler uses it to
// space re-attempts against flaky origins and to pace circuit probes;
// the HTTP server uses it to grow the Retry-After hint while its diff
// queue keeps shedding load. Centralizing the arithmetic keeps every
// retry loop honest about the three properties that matter — growth is
// bounded (Max), synchronized callers are de-correlated (Jitter), and
// recovery starts over (Reset).
package retry

import (
	"math/rand"
	"sync"
	"time"
)

// Policy describes a capped exponential backoff. The zero value picks
// the defaults noted on each field.
type Policy struct {
	// Base is the delay before the first retry (default 500ms).
	Base time.Duration
	// Max caps the grown (pre-jitter) delay (default 1m). Jitter never
	// pushes a returned delay beyond Max.
	Max time.Duration
	// Multiplier grows the delay per attempt (default 2; values below 1
	// fall back to the default).
	Multiplier float64
	// Jitter spreads each delay uniformly over ±Jitter of its value, so
	// callers that fail together do not retry together. 0 picks the
	// default 0.2; negative disables jitter; values above 1 clamp to 1.
	Jitter float64
}

func (p Policy) withDefaults() Policy {
	if p.Base <= 0 {
		p.Base = 500 * time.Millisecond
	}
	if p.Max <= 0 {
		p.Max = time.Minute
	}
	if p.Max < p.Base {
		p.Max = p.Base
	}
	if p.Multiplier < 1 {
		p.Multiplier = 2
	}
	switch {
	case p.Jitter == 0:
		p.Jitter = 0.2
	case p.Jitter < 0:
		p.Jitter = 0
	case p.Jitter > 1:
		p.Jitter = 1
	}
	return p
}

// Delay returns the backoff before retry attempt n (0-based: attempt 0
// is the first retry, delayed by about Base). rng drives the jitter; a
// nil rng disables it, making Delay deterministic. The result is always
// in (0, Max].
func (p Policy) Delay(attempt int, rng *rand.Rand) time.Duration {
	p = p.withDefaults()
	d := float64(p.Base)
	for i := 0; i < attempt; i++ {
		d *= p.Multiplier
		if d >= float64(p.Max) {
			break // already at the cap; avoid float overflow
		}
	}
	if d > float64(p.Max) {
		d = float64(p.Max)
	}
	if rng != nil && p.Jitter > 0 {
		d *= 1 + p.Jitter*(2*rng.Float64()-1)
	}
	if d > float64(p.Max) {
		d = float64(p.Max)
	}
	if d < 1 {
		d = 1 // never zero: a zero delay turns a backoff loop into a busy loop
	}
	return time.Duration(d)
}

// Clamp bounds a server-suggested delay (a Retry-After hint) to the
// policy's cap: the server knows how long it wants to shed load, but
// the client's Max stays the final word so a hostile or confused
// origin cannot park a fetcher for hours. Non-positive suggestions
// fall back to Base — "retry soon" without busy-looping.
func (p Policy) Clamp(suggested time.Duration) time.Duration {
	p = p.withDefaults()
	if suggested <= 0 {
		return p.Base
	}
	if suggested > p.Max {
		return p.Max
	}
	return suggested
}

// Backoff is a stateful retry pacer: each Next call returns the delay
// for one more consecutive failure, and Reset (on success) starts the
// progression over. Safe for concurrent use.
type Backoff struct {
	policy Policy

	mu      sync.Mutex
	rng     *rand.Rand
	attempt int
}

// New returns a Backoff over p, with jitter seeded from seed (so tests
// can pin the sequence). p is kept as given — Delay normalizes it on
// every call, so a disabled jitter (negative) stays disabled.
func New(p Policy, seed int64) *Backoff {
	return &Backoff{policy: p, rng: rand.New(rand.NewSource(seed))}
}

// Next returns the delay for the current attempt and advances the
// attempt counter.
func (b *Backoff) Next() time.Duration {
	b.mu.Lock()
	defer b.mu.Unlock()
	d := b.policy.Delay(b.attempt, b.rng)
	b.attempt++
	return d
}

// Attempt reports how many Next calls happened since the last Reset.
func (b *Backoff) Attempt() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.attempt
}

// Reset restarts the progression; the next Next returns ~Base again.
func (b *Backoff) Reset() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.attempt = 0
}
