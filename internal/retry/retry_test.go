package retry

import (
	"math/rand"
	"testing"
	"time"
)

func TestDelayGrowsExponentiallyAndCaps(t *testing.T) {
	p := Policy{Base: 100 * time.Millisecond, Max: 2 * time.Second, Multiplier: 2, Jitter: -1}
	want := []time.Duration{
		100 * time.Millisecond,
		200 * time.Millisecond,
		400 * time.Millisecond,
		800 * time.Millisecond,
		1600 * time.Millisecond,
		2 * time.Second, // capped
		2 * time.Second,
	}
	for i, w := range want {
		if got := p.Delay(i, nil); got != w {
			t.Errorf("Delay(%d) = %v, want %v", i, got, w)
		}
	}
	// A huge attempt count must not overflow past the cap.
	if got := p.Delay(10_000, nil); got != 2*time.Second {
		t.Errorf("Delay(10000) = %v, want cap %v", got, 2*time.Second)
	}
}

func TestDelayJitterBoundsAndSpread(t *testing.T) {
	p := Policy{Base: time.Second, Max: time.Minute, Multiplier: 2, Jitter: 0.2}
	rng := rand.New(rand.NewSource(42))
	seen := map[time.Duration]bool{}
	for i := 0; i < 200; i++ {
		d := p.Delay(2, rng) // nominal 4s, jittered ±20%
		lo, hi := 3200*time.Millisecond, 4800*time.Millisecond
		if d < lo || d > hi {
			t.Fatalf("jittered delay %v outside [%v, %v]", d, lo, hi)
		}
		seen[d] = true
	}
	if len(seen) < 100 {
		t.Errorf("jitter produced only %d distinct delays in 200 draws", len(seen))
	}
}

func TestDelayJitterNeverExceedsMax(t *testing.T) {
	p := Policy{Base: time.Second, Max: 4 * time.Second, Multiplier: 2, Jitter: 0.5}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 500; i++ {
		if d := p.Delay(9, rng); d > p.Max {
			t.Fatalf("delay %v exceeds Max %v", d, p.Max)
		}
	}
}

func TestZeroValueDefaults(t *testing.T) {
	p := Policy{}.withDefaults()
	if p.Base != 500*time.Millisecond || p.Max != time.Minute || p.Multiplier != 2 || p.Jitter != 0.2 {
		t.Errorf("zero-value defaults = %+v", p)
	}
	// The zero-value policy must produce sane delays out of the box.
	if d := (Policy{}).Delay(0, nil); d != 500*time.Millisecond {
		t.Errorf("zero-value Delay(0) = %v", d)
	}
}

func TestMaxBelowBaseClampsToBase(t *testing.T) {
	p := Policy{Base: time.Second, Max: 100 * time.Millisecond, Jitter: -1}
	if d := p.Delay(0, nil); d != time.Second {
		t.Errorf("Delay(0) = %v, want Base %v when Max < Base", d, time.Second)
	}
}

func TestClampBoundsSuggestedDelay(t *testing.T) {
	p := Policy{Base: 10 * time.Millisecond, Max: time.Second}
	cases := []struct {
		suggested, want time.Duration
	}{
		{500 * time.Millisecond, 500 * time.Millisecond}, // inside the cap: taken verbatim
		{time.Hour, time.Second},                         // above Max: the client's cap wins
		{0, 10 * time.Millisecond},                       // absent hint: fall back to Base
		{-time.Second, 10 * time.Millisecond},            // nonsense hint: fall back to Base
	}
	for _, c := range cases {
		if got := p.Clamp(c.suggested); got != c.want {
			t.Errorf("Clamp(%v) = %v, want %v", c.suggested, got, c.want)
		}
	}
	// The zero-value policy clamps to its defaults.
	if got := (Policy{}).Clamp(time.Hour); got != time.Minute {
		t.Errorf("zero-value Clamp(1h) = %v, want default Max 1m", got)
	}
}

func TestBackoffAdvanceAndReset(t *testing.T) {
	b := New(Policy{Base: 10 * time.Millisecond, Max: time.Second, Multiplier: 2, Jitter: -1}, 1)
	if d := b.Next(); d != 10*time.Millisecond {
		t.Fatalf("first Next = %v", d)
	}
	if d := b.Next(); d != 20*time.Millisecond {
		t.Fatalf("second Next = %v", d)
	}
	if got := b.Attempt(); got != 2 {
		t.Fatalf("Attempt = %d, want 2", got)
	}
	b.Reset()
	if got := b.Attempt(); got != 0 {
		t.Fatalf("Attempt after Reset = %d, want 0", got)
	}
	if d := b.Next(); d != 10*time.Millisecond {
		t.Fatalf("Next after Reset = %v, want %v", d, 10*time.Millisecond)
	}
}

func TestBackoffConcurrentUse(t *testing.T) {
	b := New(Policy{}, 1)
	done := make(chan struct{})
	for i := 0; i < 4; i++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for j := 0; j < 100; j++ {
				b.Next()
				b.Reset()
			}
		}()
	}
	for i := 0; i < 4; i++ {
		<-done
	}
}
