package htmlize

import (
	"strings"
	"testing"

	"xydiff/internal/dom"
)

// These tests harden the guarantees the similarity matcher leans on:
// XMLized pages must serialize deterministically (attribute order
// stable across parses, so re-crawled pages only differ where the page
// really changed), and the void/raw-text element rules must hold in
// every spelling a real crawl encounters.

func TestAttributeOrderPreservedAsWritten(t *testing.T) {
	doc := xmlize(t, `<a zeta="1" alpha="2" mid="3">x</a>`)
	a := dom.Select(doc.Root(), "a")
	if len(a) == 0 {
		a = []*dom.Node{doc.Root()}
	}
	var names []string
	for _, at := range a[0].Attrs {
		names = append(names, at.Name)
	}
	if got := strings.Join(names, ","); got != "zeta,alpha,mid" {
		t.Errorf("attribute order = %s, want source order zeta,alpha,mid", got)
	}
}

func TestAttributeOrderStableAcrossReparse(t *testing.T) {
	// parse → serialize → parse → serialize must be a fixed point:
	// downstream diffs treat attribute order as irrelevant, but stores
	// and byte-identity checks need the serialization itself stable.
	cases := []string{
		`<a z="1" a="2">x</a>`,
		`<input type=text value='v' checked>`,
		`<div data-b="2" data-a="1" class="c b a"><span id="s" lang="en">t</span></div>`,
		`<img srcset="a 1x, b 2x" src="a" alt="">`,
	}
	for _, c := range cases {
		first := Parse(c).String()
		re, err := dom.ParseString(first)
		if err != nil {
			t.Fatalf("Parse(%q) output not well-formed: %v", c, err)
		}
		if second := re.String(); second != first {
			t.Errorf("serialization not a fixed point for %q\nfirst:  %s\nsecond: %s", c, first, second)
		}
	}
}

func TestDuplicateAttributeKeepsFirstPosition(t *testing.T) {
	// Last value wins (browser rule) but the attribute stays at its
	// first position, so a repeated attribute cannot shuffle the order
	// of everything after it.
	doc := xmlize(t, `<a b="1" c="2" b="3">x</a>`)
	a := dom.Select(doc.Root(), "a")
	if len(a) == 0 {
		a = []*dom.Node{doc.Root()}
	}
	if len(a[0].Attrs) != 2 {
		t.Fatalf("attrs = %v, want 2 entries", a[0].Attrs)
	}
	if a[0].Attrs[0].Name != "b" || a[0].Attrs[0].Value != "3" {
		t.Errorf("attrs[0] = %v, want b=3 (first position, last value)", a[0].Attrs[0])
	}
	if a[0].Attrs[1].Name != "c" {
		t.Errorf("attrs[1] = %v, want c", a[0].Attrs[1])
	}
}

func TestEveryVoidElementTakesNoChildren(t *testing.T) {
	// All 14 void elements, in each spelling: bare, uppercase,
	// self-closing, with attributes. Following text must land in the
	// parent, never inside the void element.
	for name := range voidElements {
		for _, form := range []string{
			"<" + name + ">",
			"<" + strings.ToUpper(name) + ">",
			"<" + name + "/>",
			`<` + name + ` data-k="v">`,
		} {
			doc := xmlize(t, "<div>before"+form+"after</div>")
			els := dom.Select(doc.Root(), name)
			if len(els) != 1 {
				t.Fatalf("%s via %q: got %d elements: %s", name, form, len(els), doc)
			}
			if len(els[0].Children) != 0 {
				t.Errorf("%s via %q: void element has children: %s", name, form, doc)
			}
			if got := doc.Root().TextContent(); got != "beforeafter" {
				t.Errorf("%s via %q: text = %q, want %q", name, form, got, "beforeafter")
			}
		}
	}
}

func TestVoidElementEndTagIsDropped(t *testing.T) {
	// Legacy markup closes void elements explicitly; the stray end tag
	// must not re-open or split anything.
	doc := xmlize(t, `<p>a<br></br>b</p>`)
	if n := len(dom.Select(doc.Root(), "br")); n != 1 {
		t.Errorf("br count = %d, want 1", n)
	}
	if got := doc.Root().TextContent(); got != "ab" {
		t.Errorf("text = %q, want %q", got, "ab")
	}
}

func TestRawTextElements(t *testing.T) {
	cases := []struct {
		name, html, want string
	}{
		{"style keeps selectors", `<style>a > b { color: red; }</style>`, "a > b { color: red; }"},
		{"script keeps markup", `<script>document.write("<ul><li>x</li></ul>")</script>`, `document.write("<ul><li>x</li></ul>")`},
		{"uppercase end tag", `<script>var x = 1;</SCRIPT><p>after</p>`, "var x = 1;"},
		{"spaced end tag", `<script>var y = 2;</script ><p>after</p>`, "var y = 2;"},
		{"unterminated swallows to EOF", `<script>tail`, "tail"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			doc := xmlize(t, c.html)
			tag := "script"
			if strings.HasPrefix(c.html, "<style") {
				tag = "style"
			}
			els := dom.Select(doc.Root(), tag)
			if len(els) == 0 && doc.Root().Name == tag {
				els = []*dom.Node{doc.Root()}
			}
			if len(els) != 1 {
				t.Fatalf("%d <%s> elements: %s", len(els), tag, doc)
			}
			if got := strings.TrimSpace(els[0].TextContent()); got != c.want {
				t.Errorf("raw text = %q, want %q", got, c.want)
			}
		})
	}
}

func TestRawTextDoesNotSpawnElements(t *testing.T) {
	// Markup inside script/style is data: nothing in the raw body may
	// become an element node.
	doc := xmlize(t, `<body><script>if (a<b) { el = "<div class='x'><p>"; }</script><div>real</div></body>`)
	if n := len(dom.Select(doc.Root(), "div")); n != 1 {
		t.Errorf("div count = %d, want only the real one: %s", n, doc)
	}
	if n := len(dom.Select(doc.Root(), "p")); n != 0 {
		t.Errorf("phantom <p> parsed out of script text: %s", doc)
	}
}
