// Package htmlize converts HTML into well-formed XML trees so the diff
// can process web pages: the paper's Section 1 notes the diff "can also
// be used for HTML documents by XMLizing them, a relatively easy task
// that mostly consists in properly closing tags."
//
// The converter is a lenient tokenizer plus a stack-based tree builder:
//
//   - void elements (<br>, <img>, ...) never take children;
//   - known auto-close pairs are applied (<li> closes an open <li>,
//     <p> closes an open <p>, table rows and cells close each other,
//     ...);
//   - unmatched end tags are dropped; unclosed elements are closed at
//     EOF (or when an ancestor closes);
//   - tag and attribute names are lowercased; attribute values may be
//     unquoted, single-quoted, double-quoted or bare (bare becomes
//     attr="attr").
//
// The result is a dom.Document ready for xydiff.Diff.
package htmlize

import (
	"strings"
	"unicode/utf8"

	"xydiff/internal/dom"
)

// voidElements never have content in HTML.
var voidElements = map[string]bool{
	"area": true, "base": true, "br": true, "col": true, "embed": true,
	"hr": true, "img": true, "input": true, "link": true, "meta": true,
	"param": true, "source": true, "track": true, "wbr": true,
}

// autoClose maps an opening tag to the set of open tags it implicitly
// closes (scanning upward until a non-member is found).
var autoClose = map[string]map[string]bool{
	"li":     {"li": true},
	"dt":     {"dd": true, "dt": true},
	"dd":     {"dd": true, "dt": true},
	"p":      {"p": true},
	"tr":     {"tr": true, "td": true, "th": true},
	"td":     {"td": true, "th": true},
	"th":     {"td": true, "th": true},
	"option": {"option": true},
	"thead":  {"tr": true, "td": true, "th": true},
	"tbody":  {"thead": true, "tr": true, "td": true, "th": true},
}

// blockStartsClosingP lists block elements whose start tag implicitly
// terminates an open paragraph.
var blockStartsClosingP = map[string]bool{
	"div": true, "ul": true, "ol": true, "table": true, "h1": true,
	"h2": true, "h3": true, "h4": true, "h5": true, "h6": true,
	"blockquote": true, "pre": true, "form": true, "section": true,
	"article": true, "header": true, "footer": true,
}

// rawTextElements swallow everything up to their literal end tag.
var rawTextElements = map[string]bool{"script": true, "style": true}

// Parse converts HTML text into a well-formed XML document tree.
// Whitespace-only text is dropped, mirroring dom.Parse defaults.
func Parse(html string) *dom.Node {
	doc := dom.NewDocument()
	cur := doc
	p := &parser{src: html}
	appendText := func(s string) {
		s = sanitizeChars(s)
		if strings.TrimSpace(s) == "" {
			return
		}
		if k := len(cur.Children); k > 0 && cur.Children[k-1].Type == dom.Text {
			cur.Children[k-1].Value += s
			return
		}
		cur.Append(dom.NewText(s))
	}
	for {
		tok, ok := p.next()
		if !ok {
			break
		}
		switch tok.kind {
		case tokText:
			appendText(decodeEntities(tok.text))
		case tokComment:
			cur.Append(&dom.Node{Type: dom.Comment, Value: sanitizeComment(tok.text)})
		case tokDoctype:
			// dropped: the XMLized tree stands alone
		case tokStart, tokSelfClose:
			name := strings.ToLower(tok.text)
			// Implicit closes.
			if members := autoClose[name]; members != nil {
				for cur != doc && members[cur.Name] {
					cur = cur.Parent
				}
			}
			if blockStartsClosingP[name] {
				for n := cur; n != doc; n = n.Parent {
					if n.Name == "p" {
						cur = n.Parent
						break
					}
				}
			}
			el := dom.NewElement(name)
			el.Attrs = tok.attrs
			cur.Append(el)
			if tok.kind == tokSelfClose || voidElements[name] {
				break
			}
			cur = el
			if rawTextElements[name] {
				raw := sanitizeChars(p.rawUntil("</" + name))
				if strings.TrimSpace(raw) != "" {
					el.Append(dom.NewText(raw))
				}
				cur = el.Parent
			}
		case tokEnd:
			name := strings.ToLower(tok.text)
			// Find a matching open element; drop the end tag if none.
			for n := cur; n != doc; n = n.Parent {
				if n.Name == name {
					cur = n.Parent
					break
				}
			}
		}
	}
	if doc.Root() == nil {
		// Guarantee a root element even for fragment or text input.
		html := dom.NewElement("html")
		for len(doc.Children) > 0 {
			c := doc.Children[0]
			doc.RemoveAt(0)
			html.Append(c)
		}
		doc.Append(html)
	}
	return doc
}

type tokKind uint8

const (
	tokText tokKind = iota
	tokStart
	tokEnd
	tokSelfClose
	tokComment
	tokDoctype
)

type tok struct {
	kind  tokKind
	text  string
	attrs []dom.Attr
}

type parser struct {
	src string
	pos int
}

func (p *parser) next() (tok, bool) {
	if p.pos >= len(p.src) {
		return tok{}, false
	}
	if p.src[p.pos] != '<' {
		end := strings.IndexByte(p.src[p.pos:], '<')
		if end < 0 {
			end = len(p.src) - p.pos
		}
		t := tok{kind: tokText, text: p.src[p.pos : p.pos+end]}
		p.pos += end
		return t, true
	}
	rest := p.src[p.pos:]
	switch {
	case strings.HasPrefix(rest, "<!--"):
		end := strings.Index(rest[4:], "-->")
		if end < 0 {
			p.pos = len(p.src)
			return tok{kind: tokComment, text: rest[4:]}, true
		}
		p.pos += 4 + end + 3
		return tok{kind: tokComment, text: rest[4 : 4+end]}, true
	case strings.HasPrefix(rest, "<!"), strings.HasPrefix(rest, "<?"):
		end := strings.IndexByte(rest, '>')
		if end < 0 {
			p.pos = len(p.src)
			return tok{kind: tokDoctype, text: rest}, true
		}
		p.pos += end + 1
		return tok{kind: tokDoctype, text: rest[:end+1]}, true
	case strings.HasPrefix(rest, "</"):
		end := strings.IndexByte(rest, '>')
		if end < 0 {
			p.pos = len(p.src)
			return tok{}, false
		}
		name := strings.TrimSpace(rest[2:end])
		p.pos += end + 1
		return tok{kind: tokEnd, text: name}, true
	default:
		return p.startTag()
	}
}

// startTag scans "<name attr=... >" handling quoted values containing
// '>' correctly.
func (p *parser) startTag() (tok, bool) {
	i := p.pos + 1
	start := i
	for i < len(p.src) && isNameByte(p.src[i]) {
		i++
	}
	if i == start || !isNameStartByte(p.src[start]) {
		// "<" followed by junk or a non-name: literal text.
		p.pos++
		return tok{kind: tokText, text: "<"}, true
	}
	t := tok{kind: tokStart, text: p.src[start:i]}
	// Attributes.
	for i < len(p.src) {
		for i < len(p.src) && isSpace(p.src[i]) {
			i++
		}
		if i >= len(p.src) {
			break
		}
		if p.src[i] == '>' {
			i++
			p.pos = i
			return t, true
		}
		if p.src[i] == '<' {
			// A '<' inside a tag: the tag was never closed. Treat it as
			// implicitly ended here and reparse the '<' (browser-style
			// recovery).
			p.pos = i
			return t, true
		}
		if p.src[i] == '/' {
			i++
			if i < len(p.src) && p.src[i] == '>' {
				i++
				p.pos = i
				t.kind = tokSelfClose
				return t, true
			}
			continue
		}
		// Attribute name: keep only XML-safe name characters so the
		// serialized output stays well-formed.
		nameStart := i
		for i < len(p.src) && isNameByte(p.src[i]) {
			i++
		}
		name := strings.ToLower(p.src[nameStart:i])
		if name == "" {
			i++ // junk byte: skip it
			continue
		}
		if !isNameStartByte(name[0]) {
			continue // "--" and similar junk: not a legal XML name
		}
		for i < len(p.src) && isSpace(p.src[i]) {
			i++
		}
		if i >= len(p.src) || p.src[i] != '=' {
			t.attrs = setAttr(t.attrs, name, name) // bare attribute
			continue
		}
		i++ // consume '='
		for i < len(p.src) && isSpace(p.src[i]) {
			i++
		}
		var value string
		if i < len(p.src) && (p.src[i] == '"' || p.src[i] == '\'') {
			q := p.src[i]
			i++
			vStart := i
			for i < len(p.src) && p.src[i] != q {
				i++
			}
			value = p.src[vStart:i]
			if i < len(p.src) {
				i++
			}
		} else {
			vStart := i
			for i < len(p.src) && !isSpace(p.src[i]) && p.src[i] != '>' {
				i++
			}
			value = p.src[vStart:i]
		}
		t.attrs = setAttr(t.attrs, name, decodeEntities(value))
	}
	p.pos = len(p.src)
	return t, true
}

// rawUntil consumes raw text until the (case-insensitive) marker and
// past the following '>'. The fold is byte-wise ASCII: strings.ToLower
// would re-encode invalid UTF-8 bytes as the multi-byte replacement
// rune, so indexes into the lowered copy would not map back to source
// offsets (a fuzzer-found out-of-bounds on `</sCript` cut off at EOF
// after non-UTF-8 raw text).
func (p *parser) rawUntil(marker string) string {
	idx := asciiIndexFold(p.src[p.pos:], marker)
	if idx < 0 {
		out := p.src[p.pos:]
		p.pos = len(p.src)
		return out
	}
	out := p.src[p.pos : p.pos+idx]
	rest := p.src[p.pos+idx:]
	if gt := strings.IndexByte(rest, '>'); gt >= 0 {
		p.pos += idx + gt + 1
	} else {
		p.pos = len(p.src)
	}
	return out
}

func setAttr(attrs []dom.Attr, name, value string) []dom.Attr {
	value = sanitizeChars(value)
	for i := range attrs {
		if attrs[i].Name == name {
			attrs[i].Value = value // last wins, as browsers do
			return attrs
		}
	}
	return append(attrs, dom.Attr{Name: name, Value: value})
}

// decodeEntities resolves the predefined and numeric entities; unknown
// entities are left as literal text (lenient, like browsers).
func decodeEntities(s string) string {
	if !strings.ContainsRune(s, '&') {
		return s
	}
	var b strings.Builder
	b.Grow(len(s))
	for i := 0; i < len(s); {
		if s[i] != '&' {
			b.WriteByte(s[i])
			i++
			continue
		}
		semi := strings.IndexByte(s[i:], ';')
		if semi < 0 || semi > 10 {
			b.WriteByte('&')
			i++
			continue
		}
		ent := s[i+1 : i+semi]
		switch ent {
		case "amp":
			b.WriteByte('&')
		case "lt":
			b.WriteByte('<')
		case "gt":
			b.WriteByte('>')
		case "quot":
			b.WriteByte('"')
		case "apos":
			b.WriteByte('\'')
		case "nbsp":
			b.WriteByte(' ')
		default:
			if r, ok := numericEntity(ent); ok {
				b.WriteRune(r)
			} else {
				b.WriteByte('&')
				i++
				continue
			}
		}
		i += semi + 1
	}
	return b.String()
}

func numericEntity(ent string) (rune, bool) {
	if len(ent) < 2 || ent[0] != '#' {
		return 0, false
	}
	body := ent[1:]
	base := 10
	if body[0] == 'x' || body[0] == 'X' {
		base = 16
		body = body[1:]
	}
	var v int64
	for i := 0; i < len(body); i++ {
		d := digitVal(body[i])
		if d < 0 || d >= base {
			return 0, false
		}
		v = v*int64(base) + int64(d)
		if v > 0x10FFFF {
			return 0, false
		}
	}
	if v == 0 {
		return 0, false
	}
	return rune(v), true
}

func digitVal(c byte) int {
	switch {
	case c >= '0' && c <= '9':
		return int(c - '0')
	case c >= 'a' && c <= 'f':
		return int(c-'a') + 10
	case c >= 'A' && c <= 'F':
		return int(c-'A') + 10
	default:
		return -1
	}
}

// sanitizeComment makes arbitrary HTML comment text legal as an XML
// comment: no "--" runs and no trailing '-'.
func sanitizeComment(s string) string {
	s = sanitizeChars(s)
	// A single ReplaceAll can re-create "--" at the seams ("---"), so
	// iterate; each pass breaks at least one adjacency.
	for strings.Contains(s, "--") {
		s = strings.ReplaceAll(s, "--", "- -")
	}
	return strings.TrimRight(s, "-")
}

// sanitizeChars removes characters XML 1.0 cannot represent: control
// characters other than tab/newline/CR, invalid UTF-8 sequences, and
// the non-characters U+FFFE/U+FFFF.
func sanitizeChars(s string) string {
	clean := true
	for _, r := range s {
		if !legalXMLRune(r) {
			clean = false
			break
		}
	}
	if clean && utf8.ValidString(s) {
		return s
	}
	var b strings.Builder
	b.Grow(len(s))
	for _, r := range s {
		if r == utf8.RuneError || !legalXMLRune(r) {
			continue
		}
		b.WriteRune(r)
	}
	return b.String()
}

func legalXMLRune(r rune) bool {
	switch {
	case r == '\t' || r == '\n' || r == '\r':
		return true
	case r < 0x20:
		return false
	case r >= 0xD800 && r <= 0xDFFF:
		return false
	case r == 0xFFFE || r == 0xFFFF:
		return false
	default:
		return r <= 0x10FFFF
	}
}

// asciiIndexFold reports the first index of substr in s under
// ASCII-only case folding. Unlike strings.ToLower+Index it never
// changes byte lengths, so the returned index is a valid offset into s
// even when s contains invalid UTF-8.
func asciiIndexFold(s, substr string) int {
	if len(substr) == 0 {
		return 0
	}
	for i := 0; i+len(substr) <= len(s); i++ {
		j := 0
		for j < len(substr) && asciiLower(s[i+j]) == asciiLower(substr[j]) {
			j++
		}
		if j == len(substr) {
			return i
		}
	}
	return -1
}

func asciiLower(c byte) byte {
	if c >= 'A' && c <= 'Z' {
		return c + ('a' - 'A')
	}
	return c
}

func isSpace(c byte) bool { return c == ' ' || c == '\t' || c == '\n' || c == '\r' }

func isNameByte(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' || c == '-' || c == '_' || c == ':'
}

func isNameStartByte(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_'
}
