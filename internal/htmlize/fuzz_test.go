package htmlize

import (
	"testing"

	"xydiff/internal/dom"
)

// FuzzParse: any input yields a well-formed XML document.
func FuzzParse(f *testing.F) {
	seeds := []string{
		`<html><body><p>hi</body></html>`,
		`<ul><li>a<li>b</ul>`,
		`<p<a href='x'>--> =" <br>`,
		`<script>a<b</script>`,
		`<!--- nested -- comment --->`,
		"<a \x00\x0f attr=\x01>",
		`<table><tr><td>1<td>2`,
		`text & more <<< text`,
		`<div id=x id=y>`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		doc := Parse(src)
		if doc == nil {
			t.Fatal("nil document")
		}
		out := doc.String()
		if _, err := dom.ParseString(out); err != nil {
			t.Fatalf("output not well-formed: %v\nsource: %q\noutput: %q", err, src, out)
		}
	})
}
