package htmlize

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"xydiff/internal/delta"
	"xydiff/internal/diff"
	"xydiff/internal/dom"
)

// xmlize parses HTML and asserts the result survives an XML round trip
// (i.e., is genuinely well-formed).
func xmlize(t *testing.T, html string) *dom.Node {
	t.Helper()
	doc := Parse(html)
	out := doc.String()
	re, err := dom.ParseString(out)
	if err != nil {
		t.Fatalf("XMLized output is not well-formed: %v\n%s", err, out)
	}
	if !dom.Equal(doc, re) {
		t.Fatalf("XMLized output changed on reparse: %s", dom.Diagnose(doc, re))
	}
	return doc
}

func TestWellFormedHTMLPassesThrough(t *testing.T) {
	doc := xmlize(t, `<html><body><p>hello <b>world</b></p></body></html>`)
	if got := doc.Root().Name; got != "html" {
		t.Errorf("root = %q", got)
	}
	b := dom.Select(doc.Root(), "body/p/b")
	if len(b) != 1 || b[0].TextContent() != "world" {
		t.Errorf("nested structure lost: %s", doc)
	}
}

func TestUnclosedTagsAreClosed(t *testing.T) {
	doc := xmlize(t, `<html><body><p>one<p>two<p>three</body></html>`)
	ps := dom.Select(doc.Root(), "body/p")
	if len(ps) != 3 {
		t.Fatalf("got %d <p>, want 3 siblings (auto-closed): %s", len(ps), doc)
	}
	for i, want := range []string{"one", "two", "three"} {
		if got := ps[i].TextContent(); got != want {
			t.Errorf("p[%d] = %q, want %q", i, got, want)
		}
	}
}

func TestListItemsAutoClose(t *testing.T) {
	doc := xmlize(t, `<ul><li>a<li>b<li>c</ul>`)
	lis := dom.Select(doc.Root(), "li")
	if len(lis) != 3 {
		t.Fatalf("got %d <li>, want 3: %s", len(lis), doc)
	}
}

func TestTableCellsAutoClose(t *testing.T) {
	doc := xmlize(t, `<table><tr><td>1<td>2<tr><td>3</table>`)
	rows := dom.Select(doc.Root(), "tr")
	if len(rows) != 2 {
		t.Fatalf("rows = %d: %s", len(rows), doc)
	}
	if cells := dom.Select(rows[0], "td"); len(cells) != 2 {
		t.Errorf("row 1 cells = %d", len(cells))
	}
}

func TestVoidElements(t *testing.T) {
	doc := xmlize(t, `<p>a<br>b<img src="x.png">c<hr></p>`)
	if n := len(dom.Select(doc.Root(), "br")); n != 1 {
		t.Errorf("br count = %d", n)
	}
	img := dom.Select(doc.Root(), "img")
	if len(img) != 1 {
		t.Fatalf("img missing: %s", doc)
	}
	if v, _ := img[0].Attribute("src"); v != "x.png" {
		t.Errorf("img src = %q", v)
	}
	if len(img[0].Children) != 0 {
		t.Error("void element has children")
	}
}

func TestAttributeForms(t *testing.T) {
	doc := xmlize(t, `<input type=text VALUE='a b' checked data-x="1&amp;2">`)
	inputs := dom.Select(doc, "input")
	if len(inputs) != 1 {
		t.Fatalf("input element missing: %s", doc)
	}
	in := inputs[0]
	if v, _ := in.Attribute("type"); v != "text" {
		t.Errorf("unquoted attr = %q", v)
	}
	if v, _ := in.Attribute("value"); v != "a b" {
		t.Errorf("single-quoted attr = %q (names lowercased)", v)
	}
	if v, _ := in.Attribute("checked"); v != "checked" {
		t.Errorf("bare attr = %q", v)
	}
	if v, _ := in.Attribute("data-x"); v != "1&2" {
		t.Errorf("entity in attr = %q", v)
	}
}

func TestDuplicateAttributeLastWins(t *testing.T) {
	doc := xmlize(t, `<a href="first" href="second">x</a>`)
	a := dom.Select(doc.Root(), "a")
	if len(a) == 0 {
		a = []*dom.Node{doc.Root()}
	}
	if v, _ := a[0].Attribute("href"); v != "second" {
		t.Errorf("href = %q", v)
	}
}

func TestEntities(t *testing.T) {
	doc := xmlize(t, `<p>a &amp; b &lt;c&gt; &#65;&#x42; &nbsp;&unknown; &broken</p>`)
	got := doc.Root().TextContent()
	if !strings.Contains(got, "a & b <c> AB") {
		t.Errorf("entities decoded to %q", got)
	}
	if !strings.Contains(got, "&unknown;") || !strings.Contains(got, "&broken") {
		t.Errorf("unknown entities should stay literal: %q", got)
	}
}

func TestScriptAndStyleRawText(t *testing.T) {
	doc := xmlize(t, `<html><script>if (a < b && c > d) { x("</p>"); }</script><p>after</p></html>`)
	scripts := dom.Select(doc.Root(), "script")
	if len(scripts) != 1 {
		t.Fatalf("script missing: %s", doc)
	}
	if !strings.Contains(scripts[0].TextContent(), "a < b && c > d") {
		t.Errorf("script body mangled: %q", scripts[0].TextContent())
	}
	if len(dom.Select(doc.Root(), "p")) != 1 {
		t.Error("content after script lost")
	}
}

func TestStrayEndTagsDropped(t *testing.T) {
	doc := xmlize(t, `<div></p></span><b>ok</b></div>`)
	if got := doc.Root().TextContent(); got != "ok" {
		t.Errorf("content = %q", got)
	}
}

func TestCommentsAndDoctype(t *testing.T) {
	doc := xmlize(t, `<!DOCTYPE html><!-- head --><html><body>x</body></html>`)
	if doc.Root().Name != "html" {
		t.Errorf("root = %q", doc.Root().Name)
	}
}

func TestFragmentGetsSyntheticRoot(t *testing.T) {
	doc := xmlize(t, `just text, no markup`)
	if doc.Root() == nil || doc.Root().Name != "html" {
		t.Fatalf("fragment root = %v", doc.Root())
	}
	if doc.Root().TextContent() != "just text, no markup" {
		t.Errorf("content = %q", doc.Root().TextContent())
	}
}

func TestBlockClosesParagraph(t *testing.T) {
	doc := xmlize(t, `<body><p>intro<div>block</div></body>`)
	ps := dom.Select(doc.Root(), "p")
	divs := dom.Select(doc.Root(), "div")
	if len(ps) != 1 || len(divs) != 1 {
		t.Fatalf("structure: %s", doc)
	}
	if len(dom.Select(ps[0], "div")) != 0 {
		t.Error("div should be a sibling of p, not a child")
	}
}

func TestMalformedNeverPanics(t *testing.T) {
	cases := []string{
		"", "<", "<>", "</", "<a", "<a href=", `<a href="unterminated`,
		"<!--unterminated", "<!doctype", "<a/></a></a>", "< notatag",
		"<a b c d>", "<script>never closed", strings.Repeat("<div>", 100),
	}
	for _, c := range cases {
		doc := Parse(c)
		if doc == nil {
			t.Fatalf("Parse(%q) = nil", c)
		}
		if _, err := dom.ParseString(doc.String()); err != nil {
			t.Errorf("Parse(%q) output not well-formed: %v", c, err)
		}
	}
}

func TestDiffTwoHTMLVersions(t *testing.T) {
	// The paper's use case: XMLize two HTML page versions and diff them.
	v1 := Parse(`<html><body><h1>News</h1><ul><li>story one<li>story two</ul></body></html>`)
	v2 := Parse(`<html><body><h1>News</h1><ul><li>story two<li>story three</ul></body></html>`)
	d, err := diff.Diff(v1, v2, diff.Options{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := delta.ApplyClone(v1, d)
	if err != nil {
		t.Fatal(err)
	}
	if !dom.Equal(got, v2) {
		t.Fatalf("HTML diff round trip failed: %s", dom.Diagnose(got, v2))
	}
	if d.Empty() {
		t.Error("expected changes between page versions")
	}
}

func TestQuickNeverPanicsAlwaysWellFormed(t *testing.T) {
	f := func(s string) bool {
		if len(s) > 300 {
			s = s[:300]
		}
		doc := Parse(s)
		if doc == nil {
			return false
		}
		_, err := dom.ParseString(doc.String())
		return err == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickHTMLishInputs(t *testing.T) {
	// Bias the generator toward markup-looking strings.
	pieces := []string{"<div>", "</div>", "<p", ">", "text", "<br>", "&amp;",
		"<a href='x'>", "=\"v\"", "<!--", "-->", "<li>", "</ul>", "<script>", "x<y"}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var b strings.Builder
		for i := 0; i < rng.Intn(30); i++ {
			b.WriteString(pieces[rng.Intn(len(pieces))])
		}
		doc := Parse(b.String())
		_, err := dom.ParseString(doc.String())
		return err == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
