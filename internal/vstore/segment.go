package vstore

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"

	"xydiff/internal/faultfs"
)

// Each shard's write-ahead log is a sequence of segment files shared
// by every document in the shard, instead of one journal per document.
// Records carry the document id so replay can demultiplex them. The
// framing is the same as the per-document journal — length-prefixed,
// CRC32-C checksummed, torn tails truncated — so crash recovery keeps
// the same failure taxonomy.
//
// On-disk record layout, all integers big-endian:
//
//	+0  uint32  payload length
//	+4  uint32  CRC32-C (Castagnoli) of the payload
//	+8  payload:
//	      1 byte   record kind (recordBase | recordDelta)
//	      uvarint  document id length
//	      bytes    document id
//	      uvarint  version number the record produces
//	      bytes    XML body — the version-1 document for recordBase,
//	               the completed delta for recordDelta
//
// A shard's segments are shard-NNN/seg-%08d.log, replayed in sequence
// order. A group-committed batch is written with a single Write call
// and never straddles a segment boundary (the writer rotates first),
// so a crash leaves at most one torn tail in the highest-numbered
// segment.

// Record kinds (same values as the per-document journal).
const (
	recordBase  byte = 1 // full document, always version 1
	recordDelta byte = 2 // completed delta producing its version
)

const (
	segHeaderLen = 8
	segPrefix    = "seg-"
	segSuffix    = ".log"
	// maxRecordLen bounds a single record; anything larger is treated
	// as corruption (a random length field from zeroed or flipped bytes
	// would otherwise make recovery read gigabytes).
	maxRecordLen = 1 << 30
)

// castagnoli is the CRC32-C table used by the segments (same
// polynomial as the per-document journal).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// segName renders a segment file name for a sequence number.
func segName(seq int) string { return fmt.Sprintf("%s%08d%s", segPrefix, seq, segSuffix) }

// parseSegName extracts the sequence number from a segment file name,
// or ok=false when the name is not a segment's.
func parseSegName(name string) (seq int, ok bool) {
	if !strings.HasPrefix(name, segPrefix) || !strings.HasSuffix(name, segSuffix) {
		return 0, false
	}
	mid := strings.TrimSuffix(strings.TrimPrefix(name, segPrefix), segSuffix)
	n, err := strconv.Atoi(mid)
	if err != nil || n < 1 {
		return 0, false
	}
	return n, true
}

// encodeRecord renders one segment record: header plus payload.
func encodeRecord(kind byte, id string, version int, body []byte) []byte {
	payload := make([]byte, 0, 1+2*binary.MaxVarintLen64+len(id)+len(body))
	payload = append(payload, kind)
	payload = binary.AppendUvarint(payload, uint64(len(id)))
	payload = append(payload, id...)
	payload = binary.AppendUvarint(payload, uint64(version))
	payload = append(payload, body...)
	rec := make([]byte, segHeaderLen, segHeaderLen+len(payload))
	binary.BigEndian.PutUint32(rec[0:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(rec[4:8], crc32.Checksum(payload, castagnoli))
	return append(rec, payload...)
}

// decodePayload splits a verified payload into kind, document id,
// version and body.
func decodePayload(payload []byte) (kind byte, id string, version int, body []byte, err error) {
	if len(payload) < 3 {
		return 0, "", 0, nil, fmt.Errorf("payload too short (%d bytes)", len(payload))
	}
	kind = payload[0]
	rest := payload[1:]
	idLen, n := binary.Uvarint(rest)
	if n <= 0 || idLen > uint64(len(rest)-n) {
		return 0, "", 0, nil, fmt.Errorf("bad id length varint")
	}
	rest = rest[n:]
	id = string(rest[:idLen])
	rest = rest[idLen:]
	v, n := binary.Uvarint(rest)
	if n <= 0 || v == 0 || v > 1<<31 {
		return 0, "", 0, nil, fmt.Errorf("bad version varint")
	}
	return kind, id, int(v), rest[n:], nil
}

// segmentWriter owns a shard's active segment: an append-only handle,
// the offset of the last fully written batch (so a failed append can
// be cut back off), and rotation once the segment outgrows maxBytes.
// The file is opened lazily on the first append, so a read-only reopen
// creates no empty segments.
type segmentWriter struct {
	mu       sync.Mutex
	fs       faultfs.FS
	dir      string // the shard directory
	seq      int    // sequence number of the active (possibly unopened) segment
	f        faultfs.File
	off      int64 // end of the last complete batch on disk
	maxBytes int64
	// onSeal, if set, is called (outside mu? no — under mu, must not
	// call back into the writer) after a rotation seals a segment.
	onSeal func()
}

// newSegmentWriter prepares a writer whose first append lands in the
// segment numbered nextSeq.
func newSegmentWriter(fsys faultfs.FS, dir string, nextSeq int, maxBytes int64) *segmentWriter {
	if nextSeq < 1 {
		nextSeq = 1
	}
	return &segmentWriter{fs: fsys, dir: dir, seq: nextSeq, maxBytes: maxBytes}
}

// open creates the active segment file; the caller holds w.mu.
func (w *segmentWriter) open() error {
	path := filepath.Join(w.dir, segName(w.seq))
	f, err := w.fs.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("open segment %s: %w", path, err)
	}
	w.f = f
	w.off = 0
	if fi, err := w.fs.Stat(path); err == nil {
		w.off = fi.Size()
	}
	return nil
}

// appendBatch writes a group-committed batch — the concatenation of
// pre-encoded records — as a single Write, optionally fsyncing before
// returning. If the batch would push the active segment past maxBytes
// the writer rotates first, so a batch never straddles segments and a
// crash tears at most the final batch of the final segment. On write
// failure the segment is truncated back to the last good offset and
// the whole batch fails (no record of it is acknowledged).
func (w *segmentWriter) appendBatch(batch []byte, syncNow bool) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f != nil && w.off > 0 && w.off+int64(len(batch)) > w.maxBytes {
		if err := w.rotateLocked(); err != nil {
			return err
		}
	}
	if w.f == nil {
		if err := w.open(); err != nil {
			return err
		}
	}
	if _, err := w.f.Write(batch); err != nil {
		path := filepath.Join(w.dir, segName(w.seq))
		if terr := w.fs.Truncate(path, w.off); terr != nil {
			return fmt.Errorf("segment append failed (%w) and truncate back to %d failed (%w)", err, w.off, terr)
		}
		return fmt.Errorf("segment append: %w", err)
	}
	w.off += int64(len(batch))
	if syncNow {
		if err := w.f.Sync(); err != nil {
			return fmt.Errorf("segment sync: %w", err)
		}
	}
	return nil
}

// rotateLocked seals the active segment (fsync + close) and points the
// writer at the next sequence number; the caller holds w.mu.
func (w *segmentWriter) rotateLocked() error {
	if w.f != nil {
		syncErr := w.f.Sync()
		if err := w.f.Close(); err != nil {
			return fmt.Errorf("seal segment %d: %w", w.seq, err)
		}
		if syncErr != nil {
			return fmt.Errorf("seal segment %d: %w", w.seq, syncErr)
		}
		w.f = nil
	}
	w.seq++
	w.off = 0
	if w.onSeal != nil {
		w.onSeal()
	}
	return nil
}

// seal closes the active segment, if any, so compaction can fold every
// on-disk segment; the next append opens a fresh one.
func (w *segmentWriter) seal() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return nil
	}
	return w.rotateLocked()
}

// activeSeq returns the sequence number the next append writes to, and
// whether that segment file exists yet.
func (w *segmentWriter) activeSeq() (seq int, open bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.seq, w.f != nil
}

// sync flushes the active segment (SyncInterval policy).
func (w *segmentWriter) sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return nil
	}
	return w.f.Sync()
}

// close flushes and closes the active segment.
func (w *segmentWriter) close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return nil
	}
	syncErr := w.f.Sync()
	if err := w.f.Close(); err != nil {
		return err
	}
	w.f = nil
	return syncErr
}

// escapeID makes a document identifier safe as a directory name (same
// escaping as the per-document engine, so migrated snapshots keep
// their names).
func escapeID(id string) string {
	var b strings.Builder
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '-', c == '.':
			b.WriteByte(c)
		default:
			fmt.Fprintf(&b, "_%02x", c)
		}
	}
	return b.String()
}

func unescapeID(s string) string {
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		if s[i] == '_' && i+2 < len(s) {
			if v, err := strconv.ParseUint(s[i+1:i+3], 16, 8); err == nil {
				b.WriteByte(byte(v))
				i += 2
				continue
			}
		}
		b.WriteByte(s[i])
	}
	return b.String()
}
