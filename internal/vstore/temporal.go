package vstore

import (
	"fmt"

	"xydiff/internal/delta"
	"xydiff/internal/diff"
	"xydiff/internal/dom"
	"xydiff/internal/store"
	"xydiff/internal/xpathlite"
)

// "Querying the past" over the sharded engine: the same API as the
// per-document store, with deltas parsed on demand from their stored
// bytes. Result types (store.VersionValue, store.NodeState,
// store.ChangeHit) are shared so callers are engine-agnostic.

// Query evaluates a path expression against version n of the document.
func (s *Store) Query(id string, version int, expr *xpathlite.Expr) ([]*dom.Node, error) {
	doc, err := s.Version(id, version)
	if err != nil {
		return nil, err
	}
	return expr.Select(doc), nil
}

// ValueAt returns the text content of the first node matching expr in
// version n ("" when nothing matches).
func (s *Store) ValueAt(id string, version int, expr *xpathlite.Expr) (string, error) {
	doc, err := s.Version(id, version)
	if err != nil {
		return "", err
	}
	return expr.Value(doc), nil
}

// Timeline evaluates the expression at every version, oldest first.
// Versions are reconstructed incrementally (one delta apply per step),
// not from scratch per version.
func (s *Store) Timeline(id string, expr *xpathlite.Expr) ([]store.VersionValue, error) {
	st, err := s.reading(id)
	if err != nil {
		return nil, err
	}
	defer st.mu.RUnlock()
	latest, err := s.materializeLocked(id, st)
	if err != nil {
		return nil, err
	}
	out := make([]store.VersionValue, st.versions)
	doc := latest.Clone()
	for v := st.versions; v >= 1; v-- {
		first := expr.SelectFirst(doc)
		out[v-1] = store.VersionValue{Version: v, Found: first != nil}
		if first != nil {
			out[v-1].Value = first.TextContent()
		}
		if v > 1 {
			d, err := st.parseDelta(v - 2)
			if err != nil {
				return nil, fmt.Errorf("vstore: timeline %s at version %d: %w", id, v-1, err)
			}
			if err := applyInverse(doc, d); err != nil {
				return nil, fmt.Errorf("vstore: timeline %s at version %d: %w", id, v-1, err)
			}
		}
	}
	return out, nil
}

// NodeHistory tracks a node across every version by its persistent
// identifier: present or not, where it lives, and what it contains.
func (s *Store) NodeHistory(id string, xid int64) ([]store.NodeState, error) {
	st, err := s.reading(id)
	if err != nil {
		return nil, err
	}
	defer st.mu.RUnlock()
	latest, err := s.materializeLocked(id, st)
	if err != nil {
		return nil, err
	}
	out := make([]store.NodeState, st.versions)
	doc := latest.Clone()
	for v := st.versions; v >= 1; v-- {
		ns := store.NodeState{Version: v}
		if n := dom.FindByXID(doc, xid); n != nil {
			ns.Present = true
			ns.Path = n.Path()
			ns.Value = n.TextContent()
		}
		out[v-1] = ns
		if v > 1 {
			d, err := st.parseDelta(v - 2)
			if err != nil {
				return nil, fmt.Errorf("vstore: history %s at version %d: %w", id, v-1, err)
			}
			if err := applyInverse(doc, d); err != nil {
				return nil, fmt.Errorf("vstore: history %s at version %d: %w", id, v-1, err)
			}
		}
	}
	return out, nil
}

// ChangesMatching scans the deltas between versions from and to
// (forward, from < to) and returns the operations whose affected node
// matches the pattern. An empty kinds list selects every operation
// kind.
func (s *Store) ChangesMatching(id string, from, to int, pattern *xpathlite.Expr, kinds ...delta.Kind) ([]store.ChangeHit, error) {
	st, err := s.reading(id)
	if err != nil {
		return nil, err
	}
	defer st.mu.RUnlock()
	if from < 1 || to > st.versions || from >= to {
		return nil, fmt.Errorf("vstore: bad version range %d..%d (have 1..%d): %w", from, to, st.versions, store.ErrNoSuchVersion)
	}
	kindOK := func(k delta.Kind) bool {
		if len(kinds) == 0 {
			return true
		}
		for _, want := range kinds {
			if want == k {
				return true
			}
		}
		return false
	}
	latest, err := s.materializeLocked(id, st)
	if err != nil {
		return nil, err
	}
	// Reconstruct version `from` backward from latest, then replay
	// forward, inspecting each delta against the version before and
	// after it.
	doc := latest.Clone()
	for v := st.versions; v > from; v-- {
		d, err := st.parseDelta(v - 2)
		if err != nil {
			return nil, err
		}
		if err := applyInverse(doc, d); err != nil {
			return nil, fmt.Errorf("vstore: reconstruct %s version %d: %w", id, from, err)
		}
	}
	var hits []store.ChangeHit
	for v := from; v < to; v++ {
		d, err := st.parseDelta(v - 1)
		if err != nil {
			return nil, err
		}
		oldIdx := indexXIDs(doc)
		next := doc.Clone()
		if err := delta.Apply(next, d); err != nil {
			return nil, fmt.Errorf("vstore: replay %s delta %d: %w", id, v, err)
		}
		newIdx := indexXIDs(next)
		for _, op := range d.Ops {
			if !kindOK(op.Kind()) {
				continue
			}
			node := newIdx[op.TargetXID()]
			if node == nil || op.Kind() == delta.KindDelete {
				node = oldIdx[op.TargetXID()]
			}
			if node == nil || !matchesWithTextParent(pattern, node) {
				continue
			}
			path := node.Path()
			if node.Type == dom.Text && node.Parent != nil {
				path = node.Parent.Path()
			}
			hits = append(hits, store.ChangeHit{Version: v + 1, Op: op, Path: path})
		}
		doc = next
	}
	return hits, nil
}

// matchesWithTextParent applies the pattern to the node, falling back
// to the parent element for text nodes.
func matchesWithTextParent(pattern *xpathlite.Expr, n *dom.Node) bool {
	if pattern.Matches(n) {
		return true
	}
	return n.Type == dom.Text && n.Parent != nil && pattern.Matches(n.Parent)
}

func indexXIDs(doc *dom.Node) map[int64]*dom.Node {
	idx := make(map[int64]*dom.Node)
	dom.WalkPre(doc, func(n *dom.Node) bool {
		if n.XID != 0 {
			idx[n.XID] = n
		}
		return true
	})
	return idx
}

// Aggregate returns one delta with the combined effect of the chain
// from version from to version to. from > to yields the inverted
// aggregate.
func (s *Store) Aggregate(id string, from, to int) (*delta.Delta, error) {
	if from == to {
		return &delta.Delta{}, nil
	}
	lo, hi := from, to
	if lo > hi {
		lo, hi = hi, lo
	}
	base, err := s.Version(id, lo)
	if err != nil {
		return nil, err
	}
	chain, err := s.DeltasBetween(id, lo, hi)
	if err != nil {
		return nil, err
	}
	d, err := diff.Compose(base, chain...)
	if err != nil {
		return nil, err
	}
	if from > to {
		if d, err = d.Invert(); err != nil {
			return nil, fmt.Errorf("vstore: aggregate %s %d..%d: %w", id, from, to, err)
		}
	}
	return d, nil
}
