package vstore

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"xydiff/internal/delta"
	"xydiff/internal/diff"
	"xydiff/internal/dom"
	"xydiff/internal/store"
	"xydiff/internal/xpathlite"
)

func parse(t *testing.T, s string) *dom.Node {
	t.Helper()
	d, err := dom.ParseString(s)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// openTest opens a store under a fresh temp dir with small, fast
// defaults for unit tests.
func openTest(t *testing.T, cfg Config) (*Store, string) {
	t.Helper()
	dir := t.TempDir()
	s, err := Open(dir, diff.Options{}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s, dir
}

func TestPutAndLatest(t *testing.T) {
	s, _ := openTest(t, Config{Shards: 4})
	v, d, err := s.Put("doc", parse(t, `<a><b>1</b></a>`))
	if err != nil || v != 1 || d != nil {
		t.Fatalf("first Put = %d,%v,%v", v, d, err)
	}
	v, d, err = s.Put("doc", parse(t, `<a><b>2</b></a>`))
	if err != nil || v != 2 {
		t.Fatalf("second Put = %d,%v", v, err)
	}
	if d == nil || d.Count().Updates != 1 {
		t.Fatalf("second delta = %v", d)
	}
	latest, n, err := s.Latest("doc")
	if err != nil || n != 2 {
		t.Fatalf("Latest = %d,%v", n, err)
	}
	if latest.Root().Children[0].Children[0].Value != "2" {
		t.Fatal("Latest content wrong")
	}
	if s.Versions("doc") != 2 || s.Versions("nope") != 0 {
		t.Fatal("Versions wrong")
	}
	if ids := s.IDs(); len(ids) != 1 || ids[0] != "doc" {
		t.Fatalf("IDs = %v", ids)
	}
	if _, _, err := s.Latest("nope"); !errors.Is(err, store.ErrUnknownDocument) {
		t.Fatalf("Latest(nope) = %v, want ErrUnknownDocument", err)
	}
	if _, err := s.Version("doc", 9); !errors.Is(err, store.ErrNoSuchVersion) {
		t.Fatalf("Version(doc,9) = %v, want ErrNoSuchVersion", err)
	}
}

func TestVersionsReconstructAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, diff.Options{}, Config{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	texts := []string{
		`<log><e>one</e></log>`,
		`<log><e>one</e><e>two</e></log>`,
		`<log><e>two</e><e>three</e></log>`,
		`<log><e>three</e></log>`,
	}
	// Several documents spread across shards, same version chain.
	ids := []string{"alpha", "beta", "gamma", "delta", "epsilon"}
	for _, id := range ids {
		for _, x := range texts {
			if _, _, err := s.Put(id, parse(t, x)); err != nil {
				t.Fatal(err)
			}
		}
	}
	check := func(s *Store, label string) {
		t.Helper()
		for _, id := range ids {
			if got := s.Versions(id); got != len(texts) {
				t.Fatalf("%s: %s has %d versions, want %d", label, id, got, len(texts))
			}
			for v, want := range texts {
				doc, err := s.Version(id, v+1)
				if err != nil {
					t.Fatalf("%s: %s v%d: %v", label, id, v+1, err)
				}
				if doc.String() != want {
					t.Fatalf("%s: %s v%d = %s, want %s", label, id, v+1, doc.String(), want)
				}
			}
		}
	}
	check(s, "live")
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir, diff.Options{}, Config{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	check(s2, "reopened")
	rec := s2.RecoveryStats()
	if rec.Documents != len(ids) || rec.JournalRecords != len(ids)*len(texts) {
		t.Fatalf("recovery stats = %+v, want %d documents, %d journal records", rec, len(ids), len(ids)*len(texts))
	}
}

func TestManifestPinsShardCount(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, diff.Options{}, Config{Shards: 3})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Put("doc", parse(t, `<a/>`)); err != nil {
		t.Fatal(err)
	}
	s.Close()
	// Reopen asking for a different count: the manifest wins.
	s2, err := Open(dir, diff.Options{}, Config{Shards: 11})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := len(s2.shards); got != 3 {
		t.Fatalf("reopened with %d shards, manifest says 3", got)
	}
	if s2.Versions("doc") != 1 {
		t.Fatal("document lost across reopen")
	}
}

func TestGroupCommitBatchesFsyncs(t *testing.T) {
	s, _ := openTest(t, Config{Shards: 2, Sync: store.SyncAlways, MaxDelay: 5 * time.Millisecond})
	const writers = 64
	const putsEach = 4
	var wg sync.WaitGroup
	errs := make(chan error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			id := fmt.Sprintf("doc-%02d", w)
			for v := 1; v <= putsEach; v++ {
				doc, err := dom.ParseString(fmt.Sprintf(`<r><w>%d</w><v>%d</v></r>`, w, v))
				if err != nil {
					errs <- err
					return
				}
				if _, _, err := s.Put(id, doc); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	ds := s.DurabilityStats()
	if ds.Appends != writers*putsEach {
		t.Fatalf("appends = %d, want %d", ds.Appends, writers*putsEach)
	}
	if ds.Syncs >= ds.Appends {
		t.Fatalf("group commit did not batch: %d fsyncs for %d appends", ds.Syncs, ds.Appends)
	}
	ss := s.StorageStats()
	if ss.MaxBatch < 2 {
		t.Fatalf("no batch ever held more than one record (max %d)", ss.MaxBatch)
	}
	if ss.MeanBatch() <= 1 {
		t.Fatalf("mean batch = %f, want > 1", ss.MeanBatch())
	}
	// Everything acked must be readable.
	for w := 0; w < writers; w++ {
		if got := s.Versions(fmt.Sprintf("doc-%02d", w)); got != putsEach {
			t.Fatalf("doc-%02d has %d versions, want %d", w, got, putsEach)
		}
	}
}

func TestQueueSaturationFailsFast(t *testing.T) {
	// White box: a shard with a full queue and no committer draining it
	// must shed the next submission with ErrBusy, not block.
	s := &Store{cfg: Config{QueueDepth: 1}.withDefaults()}
	s.cfg.QueueDepth = 1
	sh := &shard{idx: 0, commitCh: make(chan *commitReq, 1)}
	sh.commitCh <- &commitReq{} // fill the queue
	done := make(chan error, 1)
	go func() { done <- s.appendDurable(sh, []byte("rec")) }()
	select {
	case err := <-done:
		if !errors.Is(err, ErrBusy) {
			t.Fatalf("err = %v, want ErrBusy", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("appendDurable blocked on a saturated queue")
	}
	if got := sh.stats.rejected.Load(); got != 1 {
		t.Fatalf("rejected counter = %d, want 1", got)
	}
}

func TestCheckpointFoldsSegmentsIntoSnapshots(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, diff.Options{}, Config{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		id := fmt.Sprintf("doc-%d", i)
		for v := 1; v <= 3; v++ {
			if _, _, err := s.Put(id, parse(t, fmt.Sprintf(`<r><v>%d</v></r>`, v))); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if got := s.StorageStats().Segments; got != 0 {
		t.Fatalf("%d segments remain after Checkpoint, want 0", got)
	}
	// Puts after the checkpoint land in fresh segments.
	if _, _, err := s.Put("doc-0", parse(t, `<r><v>4</v></r>`)); err != nil {
		t.Fatal(err)
	}
	s.Close()
	s2, err := Open(dir, diff.Options{}, Config{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	rec := s2.RecoveryStats()
	if rec.SnapshotVersions != 18 || rec.JournalRecords != 1 {
		t.Fatalf("recovery stats = %+v, want 18 snapshot versions + 1 journal record", rec)
	}
	doc, err := s2.Version("doc-0", 4)
	if err != nil || doc.String() != `<r><v>4</v></r>` {
		t.Fatalf("doc-0 v4 after reopen = %v, %v", doc, err)
	}
	if doc, err := s2.Version("doc-0", 2); err != nil || doc.String() != `<r><v>2</v></r>` {
		t.Fatalf("doc-0 v2 after reopen = %v, %v", doc, err)
	}
}

func TestBackgroundCompaction(t *testing.T) {
	// Tiny segments force rotations; CompactSegments=2 makes the
	// background compactor fold them soon after.
	s, _ := openTest(t, Config{Shards: 1, SegmentBytes: 256, CompactSegments: 2})
	big := `<r><pad>` + strings.Repeat("x", 100) + `</pad><v>%d</v></r>`
	for v := 1; v <= 12; v++ {
		if _, _, err := s.Put("doc", parse(t, fmt.Sprintf(big, v))); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for s.stats.compactions.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("background compaction never ran")
		}
		time.Sleep(10 * time.Millisecond)
	}
	// The store stays correct regardless of when compaction landed.
	for v := 1; v <= 12; v++ {
		doc, err := s.Version("doc", v)
		if err != nil {
			t.Fatalf("v%d: %v", v, err)
		}
		if want := fmt.Sprintf(big, v); doc.String() != want {
			t.Fatalf("v%d reconstructed wrong", v)
		}
	}
	ss := s.StorageStats()
	if ss.CompactionSeconds <= 0 {
		t.Fatalf("compaction seconds = %f, want > 0", ss.CompactionSeconds)
	}
}

func TestVersionCacheHitsAndEviction(t *testing.T) {
	s, _ := openTest(t, Config{Shards: 1, CacheSize: 2})
	ids := []string{"a", "b", "c"}
	for _, id := range ids {
		for v := 1; v <= 3; v++ {
			if _, _, err := s.Put(id, parse(t, fmt.Sprintf(`<r><v>%d</v></r>`, v))); err != nil {
				t.Fatal(err)
			}
		}
	}
	if got := s.cache.len(); got != 2 {
		t.Fatalf("cache holds %d trees, want 2 (capacity)", got)
	}
	// Reading every document cycles through the cache; evicted entries
	// re-materialize from bytes and stay correct.
	for round := 0; round < 3; round++ {
		for _, id := range ids {
			doc, _, err := s.Latest(id)
			if err != nil {
				t.Fatal(err)
			}
			if doc.String() != `<r><v>3</v></r>` {
				t.Fatalf("%s latest = %s", id, doc.String())
			}
		}
	}
	ss := s.StorageStats()
	if ss.CacheMisses == 0 {
		t.Fatal("capacity-2 cache over 3 documents never missed")
	}
	if ss.CacheHits == 0 {
		t.Fatal("cache never hit")
	}
}

func TestOldLayoutRefusedWithMigrationHint(t *testing.T) {
	dir := t.TempDir()
	old, err := store.Open(dir, diff.Options{}, store.Durability{Sync: store.SyncOff})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := old.Put("doc", parse(t, `<a/>`)); err != nil {
		t.Fatal(err)
	}
	old.Close()
	if _, err := Open(dir, diff.Options{}, Config{}); !errors.Is(err, ErrNeedsMigration) {
		t.Fatalf("Open(old layout) = %v, want ErrNeedsMigration", err)
	}
}

func TestTemporalQueries(t *testing.T) {
	s, _ := openTest(t, Config{Shards: 2})
	texts := []string{
		`<log><e>one</e></log>`,
		`<log><e>one</e><e>two</e></log>`,
		`<log><e>three</e></log>`,
	}
	for _, x := range texts {
		if _, _, err := s.Put("log", parse(t, x)); err != nil {
			t.Fatal(err)
		}
	}
	expr := xpathlite.MustCompile("/log/e")
	tl, err := s.Timeline("log", expr)
	if err != nil {
		t.Fatal(err)
	}
	if len(tl) != 3 || tl[0].Value != "one" || tl[2].Value != "three" {
		t.Fatalf("timeline = %+v", tl)
	}
	hits, err := s.ChangesMatching("log", 1, 3, expr, delta.KindInsert)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) == 0 {
		t.Fatal("no insert hits across versions 1..3")
	}
	agg, err := s.Aggregate("log", 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	v1, err := s.Version("log", 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := delta.Apply(v1, agg); err != nil {
		t.Fatal(err)
	}
	if v1.String() != texts[2] {
		t.Fatalf("aggregate(1,3) applied to v1 = %s, want %s", v1.String(), texts[2])
	}
}

func TestObserverSeesEveryVersion(t *testing.T) {
	s, _ := openTest(t, Config{Shards: 2})
	type obsCall struct {
		id      string
		version int
	}
	var mu sync.Mutex
	var calls []obsCall
	s.SetObserver(func(id string, version int, oldDoc, newDoc *dom.Node, r *diff.Result) {
		mu.Lock()
		calls = append(calls, obsCall{id, version})
		mu.Unlock()
	})
	for v := 1; v <= 3; v++ {
		if _, _, err := s.Put("doc", parse(t, fmt.Sprintf(`<r><v>%d</v></r>`, v))); err != nil {
			t.Fatal(err)
		}
	}
	mu.Lock()
	defer mu.Unlock()
	// The observer fires for versioning diffs only (not the first Put).
	if len(calls) != 2 || calls[0] != (obsCall{"doc", 2}) || calls[1] != (obsCall{"doc", 3}) {
		t.Fatalf("observer calls = %+v", calls)
	}
}
