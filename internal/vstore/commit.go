package vstore

import (
	"errors"
	"fmt"
	"time"

	"xydiff/internal/store"
)

// Group commit: every Put encodes its record and submits it to the
// shard's committer goroutine, which gathers whatever is pending into
// one batch, writes it with a single segment append and — under
// SyncAlways — a single fsync, then acknowledges every Put in the
// batch. Durability semantics are exactly the per-document journal's
// (no Put acknowledged before its record is on stable storage); only
// the fsync count changes, from one per Put to one per batch.
//
// Batching is adaptive: a lone writer's record is committed
// immediately (no latency tax), while concurrent writers pile up
// behind the in-progress fsync and commit together. The committer
// lingers up to MaxDelay only while the in-flight counter says more
// writers are coming than it has gathered.

// ErrBusy reports that a shard's group-commit queue is saturated: the
// Put was not applied and can be retried after a backoff. The HTTP
// layer maps it to 503 + Retry-After.
var ErrBusy = errors.New("vstore: group-commit queue saturated")

// errClosed fails writes after Close.
var errClosed = errors.New("vstore: store closed")

// commitReq is one record waiting for durability; errc (buffered)
// receives the batch outcome.
type commitReq struct {
	rec  []byte
	errc chan error
}

// appendDurable submits one encoded record to the shard's group-commit
// writer and blocks until the record's batch is durable (SyncAlways)
// or at least written (other policies). Called from PutContext under
// the document's write lock, before the in-memory commit. When the
// shard's queue is full it fails fast with ErrBusy instead of
// blocking, so the HTTP layer can shed load.
func (s *Store) appendDurable(sh *shard, rec []byte) error {
	sh.inflight.Add(1)
	defer sh.inflight.Add(-1)
	req := &commitReq{rec: rec, errc: make(chan error, 1)}
	if err := s.enqueue(sh, req); err != nil {
		return err
	}
	return <-req.errc
}

// enqueue hands req to the shard's committer without blocking. The
// read lock pairs with Close's write lock so the send can never race
// the channel close.
func (s *Store) enqueue(sh *shard, req *commitReq) error {
	sh.sendMu.RLock()
	defer sh.sendMu.RUnlock()
	if sh.sendClosed {
		return errClosed
	}
	select {
	case sh.commitCh <- req:
		return nil
	default:
		sh.stats.rejected.Add(1)
		return fmt.Errorf("shard %d: %w", sh.idx, ErrBusy)
	}
}

// committer is a shard's group-commit goroutine: it owns all writes to
// the shard's segment journal. It exits when the commit channel closes
// (Close), after flushing everything already queued.
func (s *Store) committer(sh *shard) {
	defer close(sh.writerDone)
	for {
		req, ok := <-sh.commitCh
		if !ok {
			return
		}
		batch, closed := s.gather(sh, req)
		s.commitBatch(sh, batch)
		if closed {
			return
		}
	}
}

// gather collects the batch starting at first: everything already
// queued, then — while the in-flight counter shows more writers are
// racing toward the queue than the batch holds — up to MaxDelay of
// lingering for them. Returns closed=true when the commit channel
// closed during gathering (the batch still commits).
func (s *Store) gather(sh *shard, first *commitReq) (batch []*commitReq, closed bool) {
	batch = append(batch, first)
	var timer *time.Timer
	defer func() {
		if timer != nil {
			timer.Stop()
		}
	}()
	for len(batch) < s.cfg.MaxBatch {
		select {
		case req, ok := <-sh.commitCh:
			if !ok {
				return batch, true
			}
			batch = append(batch, req)
			continue
		default:
		}
		// Queue drained. Linger only when writers beyond this batch are
		// in flight (between their inflight.Add and their send, or about
		// to retry); a lone writer commits immediately.
		if sh.inflight.Load() <= int64(len(batch)) {
			return batch, false
		}
		if timer == nil {
			timer = time.NewTimer(s.cfg.MaxDelay)
		}
		select {
		case req, ok := <-sh.commitCh:
			if !ok {
				return batch, true
			}
			batch = append(batch, req)
		case <-timer.C:
			return batch, false
		}
	}
	return batch, false
}

// commitBatch writes the batch as one segment append (one fsync under
// SyncAlways) and acknowledges every request with the outcome. The
// segment writer either persists the whole batch or truncates it back
// entirely, so acknowledgements stay all-or-nothing.
func (s *Store) commitBatch(sh *shard, batch []*commitReq) {
	var buf []byte
	if len(batch) == 1 {
		buf = batch[0].rec
	} else {
		total := 0
		for _, req := range batch {
			total += len(req.rec)
		}
		buf = make([]byte, 0, total)
		for _, req := range batch {
			buf = append(buf, req.rec...)
		}
	}
	err := sh.seg.appendBatch(buf, s.cfg.Sync == store.SyncAlways)
	if err == nil {
		sh.stats.appends.Add(int64(len(batch)))
		sh.stats.appendedBytes.Add(int64(len(buf)))
		sh.stats.batches.Add(1)
		sh.stats.batchRecords.Add(int64(len(batch)))
		if s.cfg.Sync == store.SyncAlways {
			sh.stats.syncs.Add(1)
		}
		for {
			max := sh.stats.maxBatch.Load()
			if int64(len(batch)) <= max || sh.stats.maxBatch.CompareAndSwap(max, int64(len(batch))) {
				break
			}
		}
	}
	for _, req := range batch {
		req.errc <- err
	}
}

// syncLoop is the SyncInterval flusher: it fsyncs every shard's active
// segment once per interval until Close.
func (s *Store) syncLoop() {
	defer close(s.syncDone)
	t := time.NewTicker(s.cfg.SyncInterval)
	defer t.Stop()
	for {
		select {
		case <-s.stopSync:
			return
		case <-t.C:
			for _, sh := range s.shards {
				if err := sh.seg.sync(); err == nil {
					sh.stats.syncs.Add(1)
				}
			}
		}
	}
}
