package vstore

import (
	"sync/atomic"

	"xydiff/internal/store"
)

// engineCounters are the store-wide lock-free counters.
type engineCounters struct {
	cacheHits, cacheMisses atomic.Int64
	checkpoints            atomic.Int64
	compactions            atomic.Int64
	compactNanos           atomic.Int64

	// Scrub cycle accounting, cumulative across background and manual
	// passes.
	scrubCycles      atomic.Int64
	scrubBytes       atomic.Int64
	scrubRecords     atomic.Int64
	scrubFound       atomic.Int64
	scrubRepaired    atomic.Int64
	scrubQuarantined atomic.Int64
	scrubLastUnix    atomic.Int64
	scrubLastNanos   atomic.Int64
}

// shardCounters are one shard's lock-free durability counters.
type shardCounters struct {
	appends       atomic.Int64 // records written
	appendedBytes atomic.Int64 // record bytes, headers included
	syncs         atomic.Int64 // fsyncs completed
	batches       atomic.Int64 // group commits performed
	batchRecords  atomic.Int64 // records across all group commits
	maxBatch      atomic.Int64 // largest batch committed so far
	rejected      atomic.Int64 // Puts shed with ErrBusy
	quarantined   atomic.Int64 // files the scrubber (or recovery) set aside
	degraded      atomic.Int64 // documents currently serving degraded
}

// DurabilityStats aggregates every shard's counters into the same
// shape the per-document engine reports, so the HTTP layer and CLI
// work against either engine.
func (s *Store) DurabilityStats() store.DurabilityStats {
	var out store.DurabilityStats
	for _, sh := range s.shards {
		out.Appends += sh.stats.appends.Load()
		out.AppendedBytes += sh.stats.appendedBytes.Load()
		out.Syncs += sh.stats.syncs.Load()
	}
	out.Checkpoints = s.stats.checkpoints.Load()
	return out
}

// RecoveryStats returns what the store reconstructed when it opened
// (all zero for a freshly created directory).
func (s *Store) RecoveryStats() store.RecoveryStats { return s.recovery }

// ShardStats is one shard's slice of StorageStats.
type ShardStats struct {
	// Shard is the shard index.
	Shard int
	// Docs is how many documents hash into the shard.
	Docs int
	// Segments is how many segment files are on disk (sealed + active).
	Segments int
	// Appends, AppendedBytes and Syncs mirror DurabilityStats for this
	// shard alone.
	Appends       int64
	AppendedBytes int64
	Syncs         int64
	// Batches is how many group commits the shard performed;
	// BatchRecords how many records they carried in total; MaxBatch the
	// largest single batch.
	Batches      int64
	BatchRecords int64
	MaxBatch     int64
	// Rejected is how many Puts were shed with ErrBusy.
	Rejected int64
	// SealedSegments is how many on-disk segments await compaction; a
	// steadily growing count with an old LastCompactUnix means the
	// compactor is stuck.
	SealedSegments int
	// LastCompactUnix is when the shard last completed a compaction
	// pass (unix seconds; 0 = none this run).
	LastCompactUnix int64
	// Quarantined counts corrupt files the scrubber set aside for this
	// shard; DegradedDocs how many of its documents serve degraded.
	Quarantined  int64
	DegradedDocs int64
}

// ScrubStats is the integrity scrubber's cumulative accounting,
// surfaced in /healthz and as xydiffd_scrub_* metrics.
type ScrubStats struct {
	// Cycles counts completed scrub passes (background and manual).
	Cycles int64
	// BytesScanned and RecordsVerified are cumulative verification
	// volume.
	BytesScanned    int64
	RecordsVerified int64
	// Found/Repaired/Quarantined count corruptions by outcome.
	Found       int64
	Repaired    int64
	Quarantined int64
	// LastUnix is when the last pass finished (unix seconds; 0 = no
	// pass yet); LastSeconds its duration.
	LastUnix    int64
	LastSeconds float64
}

// StorageStats is the engine-level view the daemon surfaces in
// /healthz and /metrics: group-commit effectiveness, version-cache hit
// ratio and compaction activity, overall and per shard.
type StorageStats struct {
	// Shards is the shard count fixed in the manifest.
	Shards int
	// Documents is the total stored document count.
	Documents int
	// Segments is the total on-disk segment file count.
	Segments int
	// FsyncTotal is how many segment fsyncs group commit performed.
	FsyncTotal int64
	// Batches and BatchRecords describe group-commit effectiveness:
	// BatchRecords/Batches is the mean records per fsync.
	Batches      int64
	BatchRecords int64
	// MaxBatch is the largest batch any shard committed.
	MaxBatch int64
	// Rejected is how many Puts were shed with ErrBusy.
	Rejected int64
	// CacheHits/CacheMisses count materializations served from /
	// missing the version LRU; CacheLen and CacheCap are its current
	// and maximum residency.
	CacheHits   int64
	CacheMisses int64
	CacheLen    int
	CacheCap    int
	// Compactions counts completed compaction passes (checkpoints
	// included); CompactionSeconds is their cumulative duration.
	Compactions       int64
	CompactionSeconds float64
	// SealedSegments is how many on-disk segments await compaction
	// across all shards.
	SealedSegments int
	// DegradedDocs is how many documents currently serve degraded;
	// Quarantined how many corrupt files are set aside on disk.
	DegradedDocs int64
	Quarantined  int64
	// Scrub is the integrity scrubber's cumulative accounting.
	Scrub ScrubStats
	// PerShard has one entry per shard, in shard order.
	PerShard []ShardStats
}

// MeanBatch returns the mean records per group commit (0 when none
// committed yet).
func (st StorageStats) MeanBatch() float64 {
	if st.Batches == 0 {
		return 0
	}
	return float64(st.BatchRecords) / float64(st.Batches)
}

// CacheHitRatio returns the version-cache hit ratio in [0,1] (0 when
// the cache is untouched).
func (st StorageStats) CacheHitRatio() float64 {
	total := st.CacheHits + st.CacheMisses
	if total == 0 {
		return 0
	}
	return float64(st.CacheHits) / float64(total)
}

// StorageStats snapshots the engine counters. Segment counts come from
// a directory listing, so the call does a little I/O per shard.
func (s *Store) StorageStats() StorageStats {
	out := StorageStats{
		Shards:            len(s.shards),
		CacheHits:         s.stats.cacheHits.Load(),
		CacheMisses:       s.stats.cacheMisses.Load(),
		CacheLen:          s.cache.len(),
		CacheCap:          s.cfg.CacheSize,
		Compactions:       s.stats.compactions.Load(),
		CompactionSeconds: float64(s.stats.compactNanos.Load()) / 1e9,
		Scrub: ScrubStats{
			Cycles:          s.stats.scrubCycles.Load(),
			BytesScanned:    s.stats.scrubBytes.Load(),
			RecordsVerified: s.stats.scrubRecords.Load(),
			Found:           s.stats.scrubFound.Load(),
			Repaired:        s.stats.scrubRepaired.Load(),
			Quarantined:     s.stats.scrubQuarantined.Load(),
			LastUnix:        s.stats.scrubLastUnix.Load(),
			LastSeconds:     float64(s.stats.scrubLastNanos.Load()) / 1e9,
		},
	}
	for _, sh := range s.shards {
		sh.mu.RLock()
		docs := len(sh.docs)
		sh.mu.RUnlock()
		ss := ShardStats{
			Shard:           sh.idx,
			Docs:            docs,
			Segments:        len(sh.segmentsOnDisk(s.fs)),
			Appends:         sh.stats.appends.Load(),
			AppendedBytes:   sh.stats.appendedBytes.Load(),
			Syncs:           sh.stats.syncs.Load(),
			Batches:         sh.stats.batches.Load(),
			BatchRecords:    sh.stats.batchRecords.Load(),
			MaxBatch:        sh.stats.maxBatch.Load(),
			Rejected:        sh.stats.rejected.Load(),
			SealedSegments:  len(s.sealedSegments(sh)),
			LastCompactUnix: sh.lastCompact.Load(),
			Quarantined:     sh.stats.quarantined.Load(),
			DegradedDocs:    sh.stats.degraded.Load(),
		}
		out.Documents += ss.Docs
		out.Segments += ss.Segments
		out.FsyncTotal += ss.Syncs
		out.Batches += ss.Batches
		out.BatchRecords += ss.BatchRecords
		out.Rejected += ss.Rejected
		out.SealedSegments += ss.SealedSegments
		out.DegradedDocs += ss.DegradedDocs
		out.Quarantined += ss.Quarantined
		if ss.MaxBatch > out.MaxBatch {
			out.MaxBatch = ss.MaxBatch
		}
		out.PerShard = append(out.PerShard, ss)
	}
	return out
}
