package vstore

import (
	"sync/atomic"

	"xydiff/internal/store"
)

// engineCounters are the store-wide lock-free counters.
type engineCounters struct {
	cacheHits, cacheMisses atomic.Int64
	checkpoints            atomic.Int64
	compactions            atomic.Int64
	compactNanos           atomic.Int64
}

// shardCounters are one shard's lock-free durability counters.
type shardCounters struct {
	appends       atomic.Int64 // records written
	appendedBytes atomic.Int64 // record bytes, headers included
	syncs         atomic.Int64 // fsyncs completed
	batches       atomic.Int64 // group commits performed
	batchRecords  atomic.Int64 // records across all group commits
	maxBatch      atomic.Int64 // largest batch committed so far
	rejected      atomic.Int64 // Puts shed with ErrBusy
}

// DurabilityStats aggregates every shard's counters into the same
// shape the per-document engine reports, so the HTTP layer and CLI
// work against either engine.
func (s *Store) DurabilityStats() store.DurabilityStats {
	var out store.DurabilityStats
	for _, sh := range s.shards {
		out.Appends += sh.stats.appends.Load()
		out.AppendedBytes += sh.stats.appendedBytes.Load()
		out.Syncs += sh.stats.syncs.Load()
	}
	out.Checkpoints = s.stats.checkpoints.Load()
	return out
}

// RecoveryStats returns what the store reconstructed when it opened
// (all zero for a freshly created directory).
func (s *Store) RecoveryStats() store.RecoveryStats { return s.recovery }

// ShardStats is one shard's slice of StorageStats.
type ShardStats struct {
	// Shard is the shard index.
	Shard int
	// Docs is how many documents hash into the shard.
	Docs int
	// Segments is how many segment files are on disk (sealed + active).
	Segments int
	// Appends, AppendedBytes and Syncs mirror DurabilityStats for this
	// shard alone.
	Appends       int64
	AppendedBytes int64
	Syncs         int64
	// Batches is how many group commits the shard performed;
	// BatchRecords how many records they carried in total; MaxBatch the
	// largest single batch.
	Batches      int64
	BatchRecords int64
	MaxBatch     int64
	// Rejected is how many Puts were shed with ErrBusy.
	Rejected int64
}

// StorageStats is the engine-level view the daemon surfaces in
// /healthz and /metrics: group-commit effectiveness, version-cache hit
// ratio and compaction activity, overall and per shard.
type StorageStats struct {
	// Shards is the shard count fixed in the manifest.
	Shards int
	// Documents is the total stored document count.
	Documents int
	// Segments is the total on-disk segment file count.
	Segments int
	// FsyncTotal is how many segment fsyncs group commit performed.
	FsyncTotal int64
	// Batches and BatchRecords describe group-commit effectiveness:
	// BatchRecords/Batches is the mean records per fsync.
	Batches      int64
	BatchRecords int64
	// MaxBatch is the largest batch any shard committed.
	MaxBatch int64
	// Rejected is how many Puts were shed with ErrBusy.
	Rejected int64
	// CacheHits/CacheMisses count materializations served from /
	// missing the version LRU; CacheLen and CacheCap are its current
	// and maximum residency.
	CacheHits   int64
	CacheMisses int64
	CacheLen    int
	CacheCap    int
	// Compactions counts completed compaction passes (checkpoints
	// included); CompactionSeconds is their cumulative duration.
	Compactions       int64
	CompactionSeconds float64
	// PerShard has one entry per shard, in shard order.
	PerShard []ShardStats
}

// MeanBatch returns the mean records per group commit (0 when none
// committed yet).
func (st StorageStats) MeanBatch() float64 {
	if st.Batches == 0 {
		return 0
	}
	return float64(st.BatchRecords) / float64(st.Batches)
}

// CacheHitRatio returns the version-cache hit ratio in [0,1] (0 when
// the cache is untouched).
func (st StorageStats) CacheHitRatio() float64 {
	total := st.CacheHits + st.CacheMisses
	if total == 0 {
		return 0
	}
	return float64(st.CacheHits) / float64(total)
}

// StorageStats snapshots the engine counters. Segment counts come from
// a directory listing, so the call does a little I/O per shard.
func (s *Store) StorageStats() StorageStats {
	out := StorageStats{
		Shards:            len(s.shards),
		CacheHits:         s.stats.cacheHits.Load(),
		CacheMisses:       s.stats.cacheMisses.Load(),
		CacheLen:          s.cache.len(),
		CacheCap:          s.cfg.CacheSize,
		Compactions:       s.stats.compactions.Load(),
		CompactionSeconds: float64(s.stats.compactNanos.Load()) / 1e9,
	}
	for _, sh := range s.shards {
		sh.mu.RLock()
		docs := len(sh.docs)
		sh.mu.RUnlock()
		ss := ShardStats{
			Shard:         sh.idx,
			Docs:          docs,
			Segments:      len(sh.segmentsOnDisk(s.fs)),
			Appends:       sh.stats.appends.Load(),
			AppendedBytes: sh.stats.appendedBytes.Load(),
			Syncs:         sh.stats.syncs.Load(),
			Batches:       sh.stats.batches.Load(),
			BatchRecords:  sh.stats.batchRecords.Load(),
			MaxBatch:      sh.stats.maxBatch.Load(),
			Rejected:      sh.stats.rejected.Load(),
		}
		out.Documents += ss.Docs
		out.Segments += ss.Segments
		out.FsyncTotal += ss.Syncs
		out.Batches += ss.Batches
		out.BatchRecords += ss.BatchRecords
		out.Rejected += ss.Rejected
		if ss.MaxBatch > out.MaxBatch {
			out.MaxBatch = ss.MaxBatch
		}
		out.PerShard = append(out.PerShard, ss)
	}
	return out
}
