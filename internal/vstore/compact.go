package vstore

import (
	"bytes"
	"fmt"
	"io"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"xydiff/internal/faultfs"
	"xydiff/internal/scrub"
)

// Compaction folds a shard's sealed segments into per-document
// snapshots and deletes the segments, bounding both recovery replay
// and disk growth. The crash-safety discipline is the same as the
// per-document engine's checkpoint, applied per shard:
//
//  1. seal the active segment, so every on-disk segment is frozen;
//  2. snapshot every document whose snapshot is behind, each file
//     written to a temp name, fsynced, and renamed into place, with
//     the version counter renamed last;
//  3. only then retire (delete) the sealed segments.
//
// A crash at any point leaves either the segments (snapshot not yet
// authoritative — replay covers everything) or the snapshot plus
// not-yet-deleted segments (replay skips covered records). The xyvet
// segorder analyzer enforces the snapshot-before-retire and
// sync-before-rename orderings in this file.

// Checkpoint compacts every shard: after it returns, the snapshots
// alone reconstruct every version, and the segment journals hold only
// versions installed after the checkpoint began.
func (s *Store) Checkpoint() error {
	start := time.Now()
	for _, sh := range s.shards {
		if err := s.compactShard(sh); err != nil {
			return err
		}
	}
	s.stats.checkpoints.Add(1)
	s.stats.compactions.Add(1)
	s.stats.compactNanos.Add(time.Since(start).Nanoseconds())
	return nil
}

// signalCompact nudges the background compaction loop; called from the
// segment writer's onSeal hook whenever a rotation seals a segment.
func (s *Store) signalCompact() {
	if s.compactCh == nil {
		return
	}
	s.mu.Lock()
	closed := s.closed
	if !closed {
		select {
		case s.compactCh <- struct{}{}:
		default:
		}
	}
	s.mu.Unlock()
}

// compactLoop is the background compactor: whenever a segment seals it
// scans the shards and compacts any that accumulated CompactSegments
// or more sealed segments.
func (s *Store) compactLoop() {
	defer close(s.compactDone)
	for range s.compactCh {
		for _, sh := range s.shards {
			if len(s.sealedSegments(sh)) < s.cfg.CompactSegments {
				continue
			}
			start := time.Now()
			if err := s.compactShard(sh); err != nil {
				// Background compaction is advisory; the segments stay
				// and the next seal retries. Durability is unaffected.
				continue
			}
			s.stats.compactions.Add(1)
			s.stats.compactNanos.Add(time.Since(start).Nanoseconds())
		}
	}
}

// segmentsOnDisk lists the shard's segment sequence numbers, sorted.
func (sh *shard) segmentsOnDisk(fsys faultfs.FS) []int {
	entries, err := fsys.ReadDir(sh.dir)
	if err != nil {
		return nil
	}
	var seqs []int
	for _, e := range entries {
		if seq, ok := parseSegName(e.Name()); ok && !e.IsDir() {
			seqs = append(seqs, seq)
		}
	}
	sort.Ints(seqs)
	return seqs
}

// sealedSegments lists the shard's sealed (non-active) segment
// sequence numbers.
func (s *Store) sealedSegments(sh *shard) []int {
	active, open := sh.seg.activeSeq()
	var sealed []int
	for _, seq := range sh.segmentsOnDisk(s.fs) {
		if open && seq == active {
			continue
		}
		sealed = append(sealed, seq)
	}
	return sealed
}

// compactShard folds one shard's sealed segments into snapshots and
// retires them. compactMu serializes Checkpoint with the background
// compactor for this shard; Puts keep flowing into the (new) active
// segment throughout, pausing only per document while its snapshot is
// written.
func (s *Store) compactShard(sh *shard) error {
	sh.compactMu.Lock()
	defer sh.compactMu.Unlock()
	if err := sh.seg.seal(); err != nil {
		return fmt.Errorf("vstore: seal shard %d: %w", sh.idx, err)
	}
	// Everything on disk is now frozen: records still arriving go to
	// the next sequence number. List the sealed set BEFORE snapshotting
	// so a rotation during the snapshots cannot retire unfolded data.
	sealed := s.sealedSegments(sh)
	sh.mu.RLock()
	ids := make([]string, 0, len(sh.docs))
	for id := range sh.docs {
		ids = append(ids, id)
	}
	sh.mu.RUnlock()
	sort.Strings(ids)
	for _, id := range ids {
		st := sh.lookup(id)
		if st == nil {
			continue
		}
		if err := s.snapshotDoc(sh, id, st, false); err != nil {
			return fmt.Errorf("vstore: snapshot %s: %w", id, err)
		}
	}
	if err := s.retireSegments(sh, sealed); err != nil {
		return fmt.Errorf("vstore: retire shard %d segments: %w", sh.idx, err)
	}
	sh.lastCompact.Store(time.Now().Unix())
	return nil
}

// snapshotDoc persists one document's state under
// shard-NNN/docs/<escaped id>/: the base version, any delta files the
// previous snapshot lacked, the per-file checksum manifest, and —
// last — the version counter, each fsynced and renamed into place.
// With full set, every file is rewritten from the resident chain even
// when the counter says it is current: that is the scrubber's repair
// path for a snapshot whose on-disk bytes rotted. The document's lock
// blocks Puts for the duration, so the snapshot is a consistent cut at
// or after the seal point (covering makes sealed records redundant;
// covering more is harmless, replay skips them).
func (s *Store) snapshotDoc(sh *shard, id string, st *docState, full bool) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.versions == 0 || (!full && st.versions == st.snapVersions) {
		return nil // nothing new to fold
	}
	sub := filepath.Join(sh.dir, docsDirName, escapeID(id))
	if err := s.fs.MkdirAll(sub, 0o755); err != nil {
		return err
	}
	if full || st.snapVersions == 0 {
		if err := writeAtomic(s.fs, filepath.Join(sub, "v1.xml"), writeBytes(st.base)); err != nil {
			return err
		}
	}
	from := st.snapVersions
	if full || from < 1 {
		from = 1
	}
	for v := from; v < st.versions; v++ {
		if err := writeAtomic(s.fs, filepath.Join(sub, deltaFile(v)), writeBytes(st.deltas[v-1])); err != nil {
			return err
		}
	}
	// The checksum manifest goes down after the content files and
	// before the counter: a counter that points at files always points
	// at verifiable ones. Content rewrites reproduce the originally
	// acknowledged bytes, so existing entries stay valid across repair.
	if err := writeAtomic(s.fs, filepath.Join(sub, sumsName), writeBytes(snapshotSums(st))); err != nil {
		return err
	}
	counter := func(w io.Writer) (int64, error) {
		n, err := io.WriteString(w, strconv.Itoa(st.versions))
		return int64(n), err
	}
	if err := writeAtomic(s.fs, filepath.Join(sub, "versions"), counter); err != nil {
		return err
	}
	st.snapVersions = st.versions
	return nil
}

// sumsName is the snapshot checksum manifest: one "<file> <crc32c>"
// line per snapshot content file. Recovery and the scrubber verify
// against it; its absence is tolerated (snapshots written before the
// manifest existed, migrated layouts).
const sumsName = "sums"

// snapshotSums renders the manifest for the resident chain; the caller
// holds st.mu.
func snapshotSums(st *docState) []byte {
	var b bytes.Buffer
	fmt.Fprintf(&b, "v1.xml %08x\n", scrub.Checksum(st.base))
	for v := 1; v < st.versions; v++ {
		fmt.Fprintf(&b, "%s %08x\n", deltaFile(v), scrub.Checksum(st.deltas[v-1]))
	}
	return b.Bytes()
}

// parseSums decodes a checksum manifest into file → CRC32-C.
func parseSums(raw []byte) (map[string]uint32, error) {
	out := make(map[string]uint32)
	for _, line := range strings.Split(string(raw), "\n") {
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		name, sum, ok := strings.Cut(line, " ")
		if !ok {
			return nil, fmt.Errorf("bad sums line %q", line)
		}
		v, err := strconv.ParseUint(sum, 16, 32)
		if err != nil {
			return nil, fmt.Errorf("bad sums line %q: %w", line, err)
		}
		out[name] = uint32(v)
	}
	return out, nil
}

// retireSegments deletes sealed segment files whose content the
// snapshots now cover. Runs strictly after every snapshotDoc of the
// pass (the segorder analyzer checks this ordering).
func (s *Store) retireSegments(sh *shard, seqs []int) error {
	for _, seq := range seqs {
		path := filepath.Join(sh.dir, segName(seq))
		if err := s.fs.Remove(path); err != nil {
			if _, statErr := s.fs.Stat(path); statErr != nil {
				continue // already gone
			}
			return err
		}
	}
	return nil
}

// writeBytes adapts a byte slice to writeAtomic's writer callback.
func writeBytes(b []byte) func(io.Writer) (int64, error) {
	return func(w io.Writer) (int64, error) {
		n, err := w.Write(b)
		return int64(n), err
	}
}
