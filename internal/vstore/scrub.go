package vstore

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"xydiff/internal/scrub"
)

// The scrubber turns the engine's passive corruption detection (a bad
// CRC surfaces whenever recovery or a read happens to touch it) into
// active self-healing: every sealed segment and every snapshot is
// re-verified on a timer, while the redundancy needed to repair damage
// still exists.
//
// The key property making runtime repair always possible: every
// acknowledged byte is resident. A document's state holds its full
// serialized chain (base + deltas), loaded at recovery and appended at
// Put, so a damaged file is never the only copy while the store is
// open — repair re-materializes from the resident chain through the
// same write → fsync → rename → retire path compaction uses. Only
// when repair is disabled (or itself fails) does the scrubber fall
// back to quarantine: the file is renamed aside — never deleted — and
// the documents it may have covered enter degraded mode.

// ScrubPass runs one full integrity cycle over every shard: sealed
// segments are CRC-walked record by record, snapshots are cross-checked
// byte-for-byte against the resident version chains and their checksum
// manifests. Reads are paced by Config.Scrub.Throttle. Damage is
// repaired or quarantined per Config.Scrub.NoRepair. Safe to call
// concurrently with Puts and reads; a canceled ctx ends the pass early
// (the partial report is still returned and counted).
func (s *Store) ScrubPass(ctx context.Context) (scrub.Report, error) {
	start := time.Now()
	th := scrub.NewThrottle(s.scrubRate())
	var rep scrub.Report
	for _, sh := range s.shards {
		if ctx.Err() != nil {
			break
		}
		s.scrubSegments(ctx, sh, th, &rep)
		s.scrubSnapshots(ctx, sh, th, &rep)
	}
	rep.Duration = time.Since(start)
	s.stats.scrubCycles.Add(1)
	s.stats.scrubBytes.Add(rep.BytesScanned)
	s.stats.scrubRecords.Add(rep.RecordsVerified)
	s.stats.scrubFound.Add(rep.Found)
	s.stats.scrubRepaired.Add(rep.Repaired)
	s.stats.scrubQuarantined.Add(rep.Quarantined)
	s.stats.scrubLastUnix.Store(time.Now().Unix())
	s.stats.scrubLastNanos.Store(int64(rep.Duration))
	return rep, ctx.Err()
}

// scrubRate resolves the configured throttle: 0 means the package
// default, negative means unlimited.
func (s *Store) scrubRate() int64 {
	if s.cfg.Scrub.Throttle == 0 {
		return scrub.DefaultThrottle
	}
	return s.cfg.Scrub.Throttle
}

// scrubSegments verifies one shard's sealed segments. The active
// segment is skipped — it has a writer and a legitimate torn tail is
// possible mid-append; it becomes scannable once sealed. A segment
// retired by compaction between listing and read is silently skipped.
func (s *Store) scrubSegments(ctx context.Context, sh *shard, th *scrub.Throttle, rep *scrub.Report) {
	seqs := sh.segmentsOnDisk(s.fs)
	// Read the active sequence AFTER listing: sealed sequence numbers
	// are always below it, so a rotation racing the listing can only
	// reclassify a just-sealed segment as still-active (scanned next
	// cycle), never the reverse.
	active, _ := sh.seg.activeSeq()
	for _, seq := range seqs {
		if seq >= active || ctx.Err() != nil {
			continue
		}
		path := filepath.Join(sh.dir, segName(seq))
		fi, err := s.fs.Stat(path)
		if err != nil {
			continue // retired since the listing
		}
		if th.Take(ctx, fi.Size()) != nil {
			return
		}
		data, err := s.fs.ReadFile(path)
		if err != nil {
			if os.IsNotExist(err) {
				continue
			}
			s.segmentDamage(sh, path, rep, -1, fmt.Sprintf("read failed: %v", err))
			continue
		}
		rep.SegmentsScanned++
		rep.BytesScanned += int64(len(data))
		records := int64(0)
		d := scrub.WalkLog(data, func(off int64, payload []byte) error {
			if _, _, _, _, derr := decodePayload(payload); derr != nil {
				return derr
			}
			records++
			return nil
		})
		rep.RecordsVerified += records
		if d != nil {
			// A sealed segment has no writer: even a "torn tail" here
			// is at-rest damage, not a crash artifact (recovery
			// truncated genuine torn tails before the seal).
			s.segmentDamage(sh, path, rep, d.Offset, d.Reason)
		}
	}
}

// segmentDamage handles one damaged sealed segment: repair when
// allowed, quarantine + degrade otherwise.
func (s *Store) segmentDamage(sh *shard, path string, rep *scrub.Report, off int64, reason string) {
	f := scrub.Finding{Path: path, Offset: off, Reason: reason, Action: scrub.ActionDetected}
	if !s.cfg.Scrub.NoRepair {
		if err := s.repairShard(sh); err == nil {
			if _, serr := s.fs.Stat(path); serr != nil {
				// The repair's retire step removed the damaged file:
				// everything it held is re-secured in fresh snapshots.
				f.Action = scrub.ActionRepaired
				rep.Note(f)
				return
			}
		}
	}
	sh.compactMu.Lock()
	if _, err := s.fs.Stat(path); err == nil {
		if _, qerr := scrub.Quarantine(s.fs, path); qerr == nil {
			f.Action = scrub.ActionQuarantined
			sh.stats.quarantined.Add(1)
		}
	}
	rep.Degraded += int64(s.degradeUncovered(sh, fmt.Sprintf("segment %s quarantined: %s", filepath.Base(path), reason)))
	sh.compactMu.Unlock()
	rep.Note(f)
}

// repairShard re-secures a shard after a sealed segment failed
// verification. Every acknowledged byte is still resident, so repair
// is exactly a compaction pass: seal, fold every document into fresh
// snapshots (write → fsync → rename), then retire the sealed segments
// — the damaged one is superseded and removed by the same retire step
// compaction always uses.
func (s *Store) repairShard(sh *shard) error {
	if err := s.compactShard(sh); err != nil {
		return err
	}
	s.stats.compactions.Add(1)
	return nil
}

// degradeUncovered flags every document whose history extends beyond
// its intact snapshot: with a segment quarantined, those tail versions
// can no longer be proven durable. The marking is conservative — the
// quarantined records' document ids are unreadable, so any document
// relying on segments is flagged. The caller holds sh.compactMu.
func (s *Store) degradeUncovered(sh *shard, reason string) int {
	sh.mu.RLock()
	states := make([]*docState, 0, len(sh.docs))
	for _, st := range sh.docs {
		states = append(states, st)
	}
	sh.mu.RUnlock()
	n := 0
	for _, st := range states {
		st.mu.Lock()
		if st.versions == 0 || st.snapVersions < st.versions {
			if s.markDegradedLocked(sh, st, reason) {
				n++
			}
		}
		st.mu.Unlock()
	}
	return n
}

// scrubSnapshots verifies one shard's snapshot directories against the
// resident version chains.
func (s *Store) scrubSnapshots(ctx context.Context, sh *shard, th *scrub.Throttle, rep *scrub.Report) {
	docsDir := filepath.Join(sh.dir, docsDirName)
	entries, err := s.fs.ReadDir(docsDir)
	if err != nil {
		return
	}
	for _, e := range entries {
		if !e.IsDir() || strings.Contains(e.Name(), scrub.QuarantineSuffix) || ctx.Err() != nil {
			continue
		}
		id := unescapeID(e.Name())
		st := sh.lookup(id)
		if st == nil {
			continue // orphan directory; not ours to judge
		}
		sub := filepath.Join(docsDir, e.Name())
		reason, ok := s.verifySnapshot(ctx, st, sub, th, rep)
		if ok {
			continue
		}
		if reason == "" {
			return // canceled mid-verify, not damage
		}
		s.snapshotDamage(sh, id, st, sub, rep, reason)
	}
}

// verifySnapshot checks one document's on-disk snapshot under the
// document's read lock (which excludes a concurrent rewrite): the
// counter must match the resident snapshot point, every content file
// must byte-match the resident chain — the chain that reconstructs
// every version — and the checksum manifest, when present, must agree
// with the files so recovery can keep trusting it. Returns ok=true
// when intact; otherwise a damage reason ("" for a canceled pass).
func (s *Store) verifySnapshot(ctx context.Context, st *docState, sub string, th *scrub.Throttle, rep *scrub.Report) (string, bool) {
	st.mu.RLock()
	defer st.mu.RUnlock()
	if st.snapVersions == 0 {
		// No authoritative snapshot expected: nothing to verify. (A
		// half-written directory without a counter is replaced wholesale
		// by the next compaction.)
		return "", true
	}
	read := func(name string) ([]byte, string) {
		path := filepath.Join(sub, name)
		fi, err := s.fs.Stat(path)
		if err != nil {
			return nil, fmt.Sprintf("%s missing: %v", name, err)
		}
		if th.Take(ctx, fi.Size()) != nil {
			return nil, ""
		}
		b, err := s.fs.ReadFile(path)
		if err != nil {
			return nil, fmt.Sprintf("%s unreadable: %v", name, err)
		}
		rep.BytesScanned += int64(len(b))
		return b, ""
	}
	counterRaw, bad := read("versions")
	if counterRaw == nil {
		return bad, false
	}
	c, err := strconv.Atoi(strings.TrimSpace(string(counterRaw)))
	if err != nil || c < 1 {
		return fmt.Sprintf("bad version counter %q", counterRaw), false
	}
	if c != st.snapVersions {
		return fmt.Sprintf("version counter reads %d, resident snapshot point is %d", c, st.snapVersions), false
	}
	files := make(map[string][]byte, c)
	base, bad := read("v1.xml")
	if base == nil {
		return bad, false
	}
	if !bytes.Equal(base, st.base) {
		return "v1.xml diverges from the resident version chain", false
	}
	files["v1.xml"] = base
	for v := 1; v < c; v++ {
		d, bad := read(deltaFile(v))
		if d == nil {
			return bad, false
		}
		if !bytes.Equal(d, st.deltas[v-1]) {
			return fmt.Sprintf("%s diverges from the resident version chain", deltaFile(v)), false
		}
		files[deltaFile(v)] = d
	}
	if raw, err := s.fs.ReadFile(filepath.Join(sub, sumsName)); err == nil {
		sums, perr := parseSums(raw)
		if perr != nil {
			return fmt.Sprintf("bad checksum manifest: %v", perr), false
		}
		for name, b := range files {
			want, okSum := sums[name]
			if !okSum {
				return fmt.Sprintf("checksum manifest has no entry for %s", name), false
			}
			if got := scrub.Checksum(b); got != want {
				return fmt.Sprintf("%s checksum mismatch (manifest %08x, computed %08x)", name, want, got), false
			}
		}
	} else if !os.IsNotExist(err) {
		return fmt.Sprintf("checksum manifest unreadable: %v", err), false
	}
	rep.SnapshotsScanned++
	return "", true
}

// snapshotDamage handles one damaged snapshot: a full rewrite from the
// resident chain when repair is allowed, quarantine + degraded mode
// otherwise.
func (s *Store) snapshotDamage(sh *shard, id string, st *docState, sub string, rep *scrub.Report, reason string) {
	f := scrub.Finding{Path: sub, Offset: -1, Reason: reason, Action: scrub.ActionDetected}
	if !s.cfg.Scrub.NoRepair {
		sh.compactMu.Lock()
		err := s.snapshotDoc(sh, id, st, true)
		sh.compactMu.Unlock()
		if err == nil {
			f.Action = scrub.ActionRepaired
			rep.Note(f)
			return
		}
	}
	sh.compactMu.Lock()
	if _, err := s.fs.Stat(sub); err == nil {
		if _, qerr := scrub.Quarantine(s.fs, sub); qerr == nil {
			f.Action = scrub.ActionQuarantined
			sh.stats.quarantined.Add(1)
		}
	}
	sh.compactMu.Unlock()
	st.mu.Lock()
	if s.markDegradedLocked(sh, st, fmt.Sprintf("snapshot quarantined: %s", reason)) {
		rep.Degraded++
	}
	// No snapshot on disk anymore: the next compaction pass writes a
	// fresh full one from the resident chain.
	st.snapVersions = 0
	st.mu.Unlock()
	rep.Note(f)
}
