package vstore

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"xydiff/internal/diff"
	"xydiff/internal/faultfs"
)

// The bit-rot chaos harness: every fault class the scrubber claims to
// handle (bit flip, torn record, truncated snapshot, read IO error) is
// injected against both targets (sealed segments, snapshots), in both
// repair and quarantine-only mode, and the outcome is byte-compared
// against the pre-corruption corpus. The invariant under test is the
// strongest one the ISSUE states: a read NEVER returns corrupt bytes —
// every version is either byte-identical to what was acknowledged or
// refused with a typed error.

var errChaosRead = errors.New("chaos: injected read error")

// seedChaosCorpus puts two documents through the store and returns the
// ground-truth serialization of every acknowledged version.
func seedChaosCorpus(t *testing.T, s *Store) map[string][]string {
	t.Helper()
	return map[string][]string{
		"alpha": seedDoc(t, s, "alpha", 3),
		"beta":  seedDoc(t, s, "beta", 2),
	}
}

// verifyNoCorruptBytes walks the full corpus: a version either
// reconstructs byte-identically or errors — serving different bytes is
// the one unforgivable outcome. Returns how many versions errored.
func verifyNoCorruptBytes(t *testing.T, s *Store, ground map[string][]string, scenario string) int {
	t.Helper()
	lost := 0
	for id, want := range ground {
		for v := 1; v <= len(want); v++ {
			doc, err := s.Version(id, v)
			if err != nil {
				lost++
				continue
			}
			if got := doc.String(); got != want[v-1] {
				t.Errorf("%s: %s v%d served corrupt bytes:\n got %s\nwant %s", scenario, id, v, got, want[v-1])
			}
		}
	}
	return lost
}

// snapshotFile returns one on-disk snapshot content file matching the
// glob pattern (relative to the docs dirs), e.g. "v1.xml".
func snapshotFile(t *testing.T, dir, pattern string) string {
	t.Helper()
	matches, err := filepath.Glob(filepath.Join(dir, "shard-*", docsDirName, "*", pattern))
	if err != nil || len(matches) == 0 {
		t.Fatalf("no snapshot file matches %s: %v", pattern, err)
	}
	sort.Strings(matches)
	return matches[0]
}

func TestScrubChaosMatrix(t *testing.T) {
	type scenario struct {
		name      string
		snapshots bool // checkpoint first so the damage target is a snapshot
		inject    func(t *testing.T, dir string, armed *faultfs.Fault)
	}
	scenarios := []scenario{
		{"bit-flip/sealed-segment", false, func(t *testing.T, dir string, _ *faultfs.Fault) {
			if err := faultfs.FlipBit(faultfs.OS{}, sealedSegs(t, dir)[0], 12, 5); err != nil {
				t.Fatal(err)
			}
		}},
		{"torn-record/sealed-segment", false, func(t *testing.T, dir string, _ *faultfs.Fault) {
			// A sealed segment has no writer: losing its tail mid-record
			// is at-rest damage, not a crash artifact.
			if err := faultfs.TruncateTail(faultfs.OS{}, sealedSegs(t, dir)[1], 3); err != nil {
				t.Fatal(err)
			}
		}},
		{"read-error/sealed-segment", false, func(t *testing.T, dir string, armed *faultfs.Fault) {
			// First ReadFile of the pass is the lowest sealed segment.
			armed.Countdown = 1
		}},
		{"bit-flip/snapshot", true, func(t *testing.T, dir string, _ *faultfs.Fault) {
			if err := faultfs.FlipBit(faultfs.OS{}, snapshotFile(t, dir, "v1.xml"), 4, 2); err != nil {
				t.Fatal(err)
			}
		}},
		{"bit-flip/snapshot-delta", true, func(t *testing.T, dir string, _ *faultfs.Fault) {
			if err := faultfs.FlipBit(faultfs.OS{}, snapshotFile(t, dir, "delta-*.xml"), 6, 1); err != nil {
				t.Fatal(err)
			}
		}},
		{"truncated/snapshot", true, func(t *testing.T, dir string, _ *faultfs.Fault) {
			if err := faultfs.TruncateTail(faultfs.OS{}, snapshotFile(t, dir, "v1.xml"), 5); err != nil {
				t.Fatal(err)
			}
		}},
		{"read-error/snapshot", true, func(t *testing.T, dir string, armed *faultfs.Fault) {
			// Second ReadFile of the pass: the first is the version
			// counter, the second is v1.xml.
			armed.Countdown = 2
		}},
	}

	for _, sc := range scenarios {
		for _, noRepair := range []bool{false, true} {
			mode := "repair"
			if noRepair {
				mode = "quarantine"
			}
			t.Run(sc.name+"/"+mode, func(t *testing.T) {
				// The armed fault starts inert (Countdown 0); read-error
				// scenarios arm it after seeding so recovery and the
				// workload never trip it.
				armed := &faultfs.Fault{Op: faultfs.OpRead, Err: errChaosRead}
				dir := t.TempDir()
				cfg := scrubCfg()
				cfg.Scrub.NoRepair = noRepair
				cfg.FS = faultfs.Wrap(faultfs.OS{}, armed)
				s, err := Open(dir, diff.Options{}, cfg)
				if err != nil {
					t.Fatal(err)
				}
				defer s.Close()
				ground := seedChaosCorpus(t, s)
				if sc.snapshots {
					if err := s.Checkpoint(); err != nil {
						t.Fatal(err)
					}
				}
				sc.inject(t, dir, armed)

				// Detection within one cycle.
				rep, err := s.ScrubPass(context.Background())
				if err != nil {
					t.Fatal(err)
				}
				if rep.Found == 0 {
					t.Fatalf("damage not detected in one cycle: %+v", rep)
				}
				if noRepair {
					if rep.Quarantined == 0 || rep.Repaired != 0 {
						t.Fatalf("quarantine mode outcome = %+v", rep)
					}
					if s.DegradedDocs() == 0 {
						t.Fatal("no document degraded after quarantine")
					}
				} else {
					if rep.Repaired == 0 || rep.Quarantined != 0 {
						t.Fatalf("repair mode outcome = %+v", rep)
					}
					if s.DegradedDocs() != 0 {
						t.Fatal("repair left documents degraded")
					}
				}
				// While open the resident chains keep serving everything,
				// and never with corrupt bytes.
				if lost := verifyNoCorruptBytes(t, s, ground, sc.name+" open"); lost != 0 {
					t.Errorf("%d versions unreadable while the store is open", lost)
				}
				if !noRepair {
					// A repaired store is clean again on the next cycle.
					if rep2, _ := s.ScrubPass(context.Background()); rep2.Found != 0 {
						t.Fatalf("second cycle still reports damage: %+v", rep2.Findings)
					}
				}

				// Survives a reopen: repaired layouts strictly, quarantined
				// layouts degraded — either way no corrupt bytes.
				if err := s.Close(); err != nil {
					t.Fatal(err)
				}
				recfg := scrubCfg()
				recfg.OpenDegraded = noRepair
				s2, err := Open(dir, diff.Options{}, recfg)
				if err != nil {
					t.Fatalf("reopen after %s: %v", mode, err)
				}
				defer s2.Close()
				lost := verifyNoCorruptBytes(t, s2, ground, sc.name+" reopened")
				if !noRepair && lost != 0 {
					t.Errorf("repaired store lost %d versions across reopen", lost)
				}
			})
		}
	}
}

// TestCrashDuringScrubRepairRewrite kills the filesystem at every
// write, sync, rename, remove and open issued by an in-flight scrub
// repair (the re-materialize → fsync → rename → retire rewrite of a
// corrupt sealed segment). Recovery must come up with either the old
// (corrupt, quarantined at open) state or the repaired one — never a
// torn hybrid that serves wrong bytes.
func TestCrashDuringScrubRepairRewrite(t *testing.T) {
	// Counting pass: how many ops does the repair itself issue? The
	// fault stays inert (Countdown 0) through seeding, so arming it
	// with k counts only scrub-time operations.
	seed := func(t *testing.T, fsys faultfs.FS) (*Store, string, map[string][]string) {
		dir := t.TempDir()
		cfg := scrubCfg()
		cfg.FS = fsys
		s, err := Open(dir, diff.Options{}, cfg)
		if err != nil {
			t.Fatal(err)
		}
		ground := seedChaosCorpus(t, s)
		if err := faultfs.FlipBit(faultfs.OS{}, sealedSegs(t, dir)[0], 12, 5); err != nil {
			t.Fatal(err)
		}
		return s, dir, ground
	}

	clean := faultfs.Wrap(faultfs.OS{})
	s, _, _ := seed(t, clean)
	before := map[faultfs.Op]int{}
	ops := []faultfs.Op{faultfs.OpWrite, faultfs.OpSync, faultfs.OpRename, faultfs.OpRemove, faultfs.OpOpen}
	for _, op := range ops {
		before[op] = clean.Count(op)
	}
	if rep, err := s.ScrubPass(context.Background()); err != nil || rep.Repaired == 0 {
		t.Fatalf("counting pass did not repair: %+v, %v", rep, err)
	}
	s.Close()

	for _, op := range ops {
		total := clean.Count(op) - before[op]
		if total == 0 {
			t.Fatalf("repair issues no %s ops; matrix would be vacuous", op)
		}
		for k := 1; k <= total; k++ {
			scenario := fmt.Sprintf("crash at repair %s #%d/%d", op, k, total)
			fault := &faultfs.Fault{Op: op, Crash: true} // armed below
			s, dir, ground := seed(t, faultfs.Wrap(faultfs.OS{}, fault))
			fault.Countdown = k
			_, _ = s.ScrubPass(context.Background()) // the process "dies" somewhere in here
			_ = s.Close()                            // crashed fs: errors are the point

			// Reopen through the real filesystem. The damaged segment may
			// still be present (crash before the retire), so recovery must
			// be the degraded-tolerant open — but whatever it finds, it
			// serves either the acknowledged bytes or a refusal.
			s2, err := Open(dir, diff.Options{}, Config{
				Shards: 1, CompactSegments: -1, OpenDegraded: true,
			})
			if err != nil {
				t.Fatalf("%s: reopen: %v", scenario, err)
			}
			lost := verifyNoCorruptBytes(t, s2, ground, scenario)
			if lost > 0 && s2.DegradedDocs() == 0 {
				// Losing versions is only legitimate as declared
				// degradation from quarantining the corrupt original.
				t.Errorf("%s: %d versions lost without a degraded marker", scenario, lost)
			}
			// Leftover temp files or a half-renamed segment must not
			// resurface as damage on the next cycle after a clean repair.
			if lost == 0 {
				if rep, _ := s2.ScrubPass(context.Background()); rep.Found != 0 && rep.Repaired != rep.Found {
					t.Errorf("%s: post-crash cycle found unrepairable damage: %+v", scenario, rep.Findings)
				}
			}
			s2.Close()
			_ = os.RemoveAll(dir)
		}
	}
}
